package dynaplat

import (
	"dynaplat/internal/admission"
	"dynaplat/internal/clocksync"
	"dynaplat/internal/dse"
	"dynaplat/internal/gateway"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/monitor"
	"dynaplat/internal/safety/update"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
)

// Facade over the extension subsystems: network gateways (Fig. 1
// migration), clock synchronization (§3.2/§5.3), operating-mode
// degradation (§3.3), alive supervision (§3.4), E2E-protected
// communication (§3), timed service discovery (§2.1/§4.2), fleet update
// campaigns (§3.4) and multi-objective exploration (§2.3).

type (
	// Gateway bridges two heterogeneous in-vehicle networks.
	Gateway = gateway.Gateway
	// GatewayRoute is one gateway forwarding rule.
	GatewayRoute = gateway.Route
	// ClockDomain synchronizes ECU clocks over a network (gPTP-style).
	ClockDomain = clocksync.Domain
	// Clock is one ECU's drifting local clock.
	Clock = clocksync.Clock
	// ModeManager supervises degradation modes (normal/degraded/limp-home).
	ModeManager = platform.ModeManager
	// ModePolicy defines one operating mode's minimum ASIL.
	ModePolicy = platform.ModePolicy
	// AliveSupervision is the watchdog for non-deterministic apps.
	AliveSupervision = monitor.AliveSupervision
	// E2ESender and E2EReceiver protect payloads end to end.
	E2ESender = soa.E2ESender
	// E2EReceiver validates protected payloads.
	E2EReceiver = soa.E2EReceiver
	// QoS carries per-subscription history/deadline qualities of service.
	QoS = soa.QoS
	// DiscoveryResult reports a timed FindService outcome.
	DiscoveryResult = soa.DiscoveryResult
	// CampaignConfig tunes fleet-wide update rollouts.
	CampaignConfig = update.CampaignConfig
	// CampaignReport summarizes a rollout.
	CampaignReport = update.CampaignReport
	// ParetoPoint is one non-dominated DSE placement.
	ParetoPoint = dse.ParetoPoint
	// AdmissionController runs online admission tests (§5.3).
	AdmissionController = admission.Controller
	// AdmissionRequest is one app+interfaces admission request.
	AdmissionRequest = admission.Request
	// AdmissionDecision is the outcome of an admission test.
	AdmissionDecision = admission.Decision
)

// NewAdmissionController creates an online admission controller over the
// simulation's system model.
func NewAdmissionController(s *Simulation) *AdmissionController {
	return admission.NewController(s.Model)
}

// NewGateway creates a store-and-forward gateway; attach ports with
// Gateway.AttachPort and install GatewayRoutes.
func NewGateway(s *Simulation, name string, procDelay Duration) *Gateway {
	return gateway.New(s.Kernel, gateway.Config{Name: name, ProcDelay: procDelay})
}

// NewClockDomain creates a synchronization domain with the named
// grandmaster station on one of the simulation's networks.
func NewClockDomain(s *Simulation, netName, master string) (*ClockDomain, error) {
	n, ok := s.Networks[netName]
	if !ok {
		return nil, &unknownNetworkError{netName}
	}
	return clocksync.NewDomain(s.Kernel, n, master, clocksync.DefaultConfig()), nil
}

type unknownNetworkError struct{ name string }

func (e *unknownNetworkError) Error() string {
	return "dynaplat: unknown network " + e.name
}

// NewModeManager creates a degradation-mode manager with the canonical
// normal/degraded/limp-home policies.
func NewModeManager(s *Simulation) *ModeManager {
	return platform.NewModeManager(s.Platform, platform.DefaultModes())
}

// NewAliveSupervision creates a watchdog on a node with the given window.
func NewAliveSupervision(n *Node, window Duration) *AliveSupervision {
	return monitor.NewAliveSupervision(n, window)
}

// RunCampaign rolls an update across a fleet in canary waves.
func RunCampaign(k *Kernel, fleet []string, updater update.VehicleUpdater,
	cfg CampaignConfig, done func(CampaignReport)) error {
	return update.RunCampaign(k, fleet, updater, cfg, done)
}

// ParetoFront returns the non-dominated placements of a system model
// over (ECU cost, peak utilization, cross-ECU traffic).
func ParetoFront(sys *System, budget int64, seed uint64) []ParetoPoint {
	return dse.ParetoFront(sys, budget, seed)
}

// DefaultCampaignConfig returns the 1% canary / 10% / full-rollout waves.
func DefaultCampaignConfig() CampaignConfig { return update.DefaultCampaignConfig() }

// NewDriftingClock creates a local clock with initial offset and drift in
// parts per billion, for use with a ClockDomain.
func NewDriftingClock(offset Duration, driftPPB float64) *Clock {
	return clocksync.NewClock(sim.Duration(offset), driftPPB)
}
