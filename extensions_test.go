package dynaplat

import (
	"fmt"
	"testing"
)

func TestFacadeClockDomain(t *testing.T) {
	s, err := FromDSL(demoDSL, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewClockDomain(s, "Backbone", "CPM")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSlave("Zone", NewDriftingClock(2*Millisecond, 50_000)); err != nil {
		t.Fatal(err)
	}
	d.Start()
	s.Run(2 * Second)
	e, err := d.SlaveError("Zone")
	if err != nil {
		t.Fatal(err)
	}
	if e < 0 {
		e = -e
	}
	if e > 100*Microsecond {
		t.Errorf("residual error = %v", e)
	}
	if _, err := NewClockDomain(s, "Ghost", "CPM"); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestFacadeModeManagerAndAlive(t *testing.T) {
	s, err := FromDSL(demoDSL, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.StartAll()
	mm := NewModeManager(s)
	ws := NewAliveSupervision(s.Node("Head"), 100*Millisecond)
	if err := ws.Supervise("Media", 1, 100); err != nil {
		t.Fatal(err)
	}
	// Media never reports alive → violation; three misses of the
	// escalation kind would flip the mode (exercised in platform tests).
	s.Run(500 * Millisecond)
	if len(ws.Violations) == 0 {
		t.Error("silent app not flagged")
	}
	mm.Escalate("test")
	if mm.Current() != "degraded" {
		t.Errorf("mode = %s", mm.Current())
	}
	if s.App("Media").State.String() != "stopped" {
		t.Error("Media kept running in degraded mode")
	}
}

func TestFacadeCampaign(t *testing.T) {
	s, err := FromDSL(demoDSL, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fleet := make([]string, 50)
	for i := range fleet {
		fleet[i] = fmt.Sprintf("vin%02d", i)
	}
	var rep CampaignReport
	err = RunCampaign(s.Kernel, fleet, func(v string, done func(bool)) {
		s.Kernel.After(Millisecond, func() { done(true) })
	}, DefaultCampaignConfig(), func(r CampaignReport) { rep = r })
	if err != nil {
		t.Fatal(err)
	}
	s.Run(time10s())
	if rep.Updated != 50 || rep.Halted {
		t.Errorf("campaign = %+v", rep)
	}
}

func time10s() Duration { return 10 * Second }

func TestFacadeParetoFront(t *testing.T) {
	sys, err := ParseModel(demoDSL)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(sys, 0, 1)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
}

func TestFacadeE2E(t *testing.T) {
	tx := &E2ESender{DataID: 1}
	rx := &E2EReceiver{DataID: 1}
	if st, _ := rx.Check(tx.Protect([]byte("x"))); st.String() != "ok" {
		t.Errorf("status = %v", st)
	}
}
