#!/usr/bin/env bash
# bench.sh — run the sim kernel micro-benchmarks and the E1–E22
# experiment benchmarks (whose `holds` metric doubles as a reproduction
# check), then write a machine-readable summary to BENCH_sim.json.
#
#   scripts/bench.sh            # full run
#   BENCHTIME=2s scripts/bench.sh
#
# The JSON has three sections:
#   kernel:      ns/op, B/op, allocs/op per micro-benchmark
#   overhead:    SOA publish→deliver with observability hooks disabled
#                vs. an enabled metrics/trace plane — hooks-disabled is
#                the production default and must track the baseline
#   experiments: holds (1|0) and ns/op per experiment benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="BENCH_sim.json"

# --smoke: one iteration per benchmark and no BENCH_sim.json rewrite —
# a fast CI gate that still compiles and executes every benchmark
# (and therefore every experiment's `holds` reproduction check).
SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
  BENCHTIME=1x
  OUT="$(mktemp)"
  trap 'rm -f "$OUT"' EXIT
fi

kernel_raw=$(go test -run '^$' \
  -bench 'BenchmarkScheduleFire|BenchmarkCancelHeavy|BenchmarkTickerHeavy|BenchmarkMixed|BenchmarkKernelScheduleRun' \
  -benchmem -benchtime "$BENCHTIME" ./internal/sim/)

overhead_raw=$(go test -run '^$' -bench 'BenchmarkPublishDeliver' \
  -benchmem -benchtime "$BENCHTIME" ./internal/soa/)

exp_raw=$(go test -run '^$' -bench 'BenchmarkE[0-9]+' -benchtime 1x .)

{
  echo '{'
  echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo '  "kernel": ['
  echo "$kernel_raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""
      for (i=2; i<=NF; i++) {
        if ($i == "ns/op")     ns=$(i-1)
        if ($i == "B/op")      bytes=$(i-1)
        if ($i == "allocs/op") allocs=$(i-1)
      }
      line=sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                   name, ns==""?"null":ns, bytes==""?"null":bytes, allocs==""?"null":allocs)
      lines[n++]=line
    }
    END { for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1?",":"") }'
  echo '  ],'
  echo '  "overhead": ['
  echo "$overhead_raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""
      for (i=2; i<=NF; i++) {
        if ($i == "ns/op")     ns=$(i-1)
        if ($i == "B/op")      bytes=$(i-1)
        if ($i == "allocs/op") allocs=$(i-1)
      }
      line=sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                   name, ns==""?"null":ns, bytes==""?"null":bytes, allocs==""?"null":allocs)
      lines[n++]=line
    }
    END { for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1?",":"") }'
  echo '  ],'
  echo '  "experiments": ['
  echo "$exp_raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; holds=""
      for (i=2; i<=NF; i++) {
        if ($i == "ns/op") ns=$(i-1)
        if ($i == "holds") holds=$(i-1)
      }
      line=sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"holds\": %s}",
                   name, ns==""?"null":ns, holds==""?"null":holds)
      lines[n++]=line
    }
    END { for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1?",":"") }'
  echo '  ]'
  echo '}'
} > "$OUT"

violated=$(grep -c '"holds": 0' "$OUT" || true)
if [ "$SMOKE" = "1" ]; then
  echo "bench.sh --smoke: benchmarks ran (BENCH_sim.json left untouched)"
else
  echo "wrote $OUT"
fi
if [ "$violated" != "0" ]; then
  echo "bench.sh: $violated experiment expectation(s) VIOLATED" >&2
  exit 1
fi
