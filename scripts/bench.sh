#!/usr/bin/env bash
# bench.sh — run the sim kernel micro-benchmarks and the E1–E24
# experiment benchmarks (whose `holds` metric doubles as a reproduction
# check), then write a machine-readable summary to BENCH_sim.json.
#
#   scripts/bench.sh            # full run, rewrites BENCH_sim.json
#   scripts/bench.sh --smoke    # one iteration each, no rewrite (CI gate)
#   scripts/bench.sh --compare  # kernel benches vs committed baseline
#   BENCHTIME=2s scripts/bench.sh
#
# --compare re-runs the kernel micro-benchmarks and fails when any is
# more than 20% slower (ns/op) than the committed BENCH_sim.json —
# the pre-merge guard for kernel hot-path work. Benchmarks absent from
# the baseline are reported and skipped. ns/op comparisons are only
# meaningful on the machine that recorded the baseline; rewrite the
# baseline (plain run) when switching hardware.
#
# The JSON has three sections:
#   kernel:      ns/op, B/op, allocs/op per micro-benchmark
#   overhead:    SOA publish→deliver with observability hooks disabled
#                vs. an enabled metrics/trace plane — hooks-disabled is
#                the production default and must track the baseline
#   experiments: holds (1|0) and ns/op per experiment benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="BENCH_sim.json"

# Kernel micro-benchmark set. BenchmarkTickerHeavy also matches its
# HeapOnly and 1024 variants; the heap-only number is the denominator of
# the timing wheel's measured speedup.
KERNEL_PAT='BenchmarkScheduleFire|BenchmarkCancelHeavy|BenchmarkTickerHeavy|BenchmarkWheelCascade|BenchmarkMixed|BenchmarkKernelScheduleRun'

# --smoke: one iteration per benchmark and no BENCH_sim.json rewrite —
# a fast CI gate that still compiles and executes every benchmark
# (and therefore every experiment's `holds` reproduction check).
SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
  BENCHTIME=1x
  OUT="$(mktemp)"
  DLDIR="$(mktemp -d)"
  trap 'rm -f "$OUT"; rm -rf "$DLDIR"' EXIT

  # Whole-tree dynalint runtime budget: the interprocedural suite
  # (call graph + fact propagation over every non-test package) must
  # stay interactive. Build the driver first so only analysis time is
  # measured, not compilation.
  go build -o "$DLDIR/dynalint" ./cmd/dynalint
  dl_start=$(date +%s)
  "$DLDIR/dynalint" ./...
  dl_elapsed=$(( $(date +%s) - dl_start ))
  if [ "$dl_elapsed" -ge 30 ]; then
    echo "bench.sh --smoke: whole-tree dynalint took ${dl_elapsed}s, budget is 30s" >&2
    exit 1
  fi
  echo "bench.sh --smoke: whole-tree dynalint in ${dl_elapsed}s (budget 30s)"
fi

if [ "${1:-}" = "--compare" ]; then
  if [ ! -f "$OUT" ]; then
    echo "bench.sh --compare: no $OUT baseline" >&2
    exit 1
  fi
  kernel_raw=$(go test -run '^$' -bench "$KERNEL_PAT" \
    -benchmem -benchtime "$BENCHTIME" ./internal/sim/)
  echo "$kernel_raw" | awk -v basefile="$OUT" '
    BEGIN {
      while ((getline line < basefile) > 0) {
        if (line ~ /"name": "Benchmark/) {
          match(line, /"name": "[^"]+"/)
          name = substr(line, RSTART+9, RLENGTH-10)
          if (match(line, /"ns_per_op": [0-9.]+/))
            base[name] = substr(line, RSTART+13, RLENGTH-13) + 0
        }
      }
      close(basefile)
    }
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""
      for (i=2; i<=NF; i++) if ($i == "ns/op") ns=$(i-1)
      if (ns == "") next
      if (!(name in base)) {
        printf "  %-40s %14.0f ns/op   (new, no baseline)\n", name, ns
        next
      }
      r = ns / base[name]
      flag = (r > 1.20) ? "  REGRESSION >20%" : ""
      printf "  %-40s %14.0f ns/op   baseline %14.0f   ratio %.2f%s\n", name, ns, base[name], r, flag
      if (r > 1.20) bad++
    }
    END {
      if (bad > 0) {
        printf "bench.sh --compare: %d kernel benchmark regression(s) exceed 20%% vs %s\n", bad, basefile > "/dev/stderr"
        exit 1
      }
      print "bench.sh --compare: kernel benchmarks within 20% of baseline"
    }'
  exit $?
fi

kernel_raw=$(go test -run '^$' -bench "$KERNEL_PAT" \
  -benchmem -benchtime "$BENCHTIME" ./internal/sim/)

overhead_raw=$(go test -run '^$' -bench 'BenchmarkPublishDeliver' \
  -benchmem -benchtime "$BENCHTIME" ./internal/soa/)

exp_raw=$(go test -run '^$' -bench 'BenchmarkE[0-9]+|BenchmarkFleetRollout' -benchtime 1x .)

{
  echo '{'
  echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo '  "kernel": ['
  echo "$kernel_raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""
      for (i=2; i<=NF; i++) {
        if ($i == "ns/op")     ns=$(i-1)
        if ($i == "B/op")      bytes=$(i-1)
        if ($i == "allocs/op") allocs=$(i-1)
      }
      line=sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                   name, ns==""?"null":ns, bytes==""?"null":bytes, allocs==""?"null":allocs)
      lines[n++]=line
    }
    END { for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1?",":"") }'
  echo '  ],'
  echo '  "overhead": ['
  echo "$overhead_raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""
      for (i=2; i<=NF; i++) {
        if ($i == "ns/op")     ns=$(i-1)
        if ($i == "B/op")      bytes=$(i-1)
        if ($i == "allocs/op") allocs=$(i-1)
      }
      line=sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                   name, ns==""?"null":ns, bytes==""?"null":bytes, allocs==""?"null":allocs)
      lines[n++]=line
    }
    END { for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1?",":"") }'
  echo '  ],'
  echo '  "experiments": ['
  echo "$exp_raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; holds=""
      for (i=2; i<=NF; i++) {
        if ($i == "ns/op") ns=$(i-1)
        if ($i == "holds") holds=$(i-1)
      }
      line=sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"holds\": %s}",
                   name, ns==""?"null":ns, holds==""?"null":holds)
      lines[n++]=line
    }
    END { for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1?",":"") }'
  echo '  ]'
  echo '}'
} > "$OUT"

violated=$(grep -c '"holds": 0' "$OUT" || true)
if [ "$SMOKE" = "1" ]; then
  echo "bench.sh --smoke: benchmarks ran (BENCH_sim.json left untouched)"
else
  echo "wrote $OUT"
fi
if [ "$violated" != "0" ]; then
  echo "bench.sh: $violated experiment expectation(s) VIOLATED" >&2
  exit 1
fi
