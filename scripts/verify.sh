#!/usr/bin/env bash
# verify.sh — the tier-1 verification path.
#
# Extends the historic `go build ./... && go test ./...` gate with
# `go vet` and the race detector; `go test -race ./...` exercises the
# parallel experiment harness (internal/experiments fans E1–E24 across
# GOMAXPROCS workers), so a data race between experiments fails CI here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt: unformatted files:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

# dynalint: the determinism & lifecycle static-analysis suite
# (DESIGN.md §8). Enforces the seven contracts — walltime, seededrand,
# maporder, nogoroutine, droppedref, sharedrng, parshared —
# interprocedurally over a whole-program call graph; the soak tests
# below can only sample these invariants, so violating any of them is a
# build failure here.
echo "==> dynalint ./..."
go run ./cmd/dynalint ./...

# Allow-budget gate: the committed baseline scripts/dynalint_allows.max
# caps the number of //dynalint:allow exceptions in the tree. Growth
# must be deliberate (raise the baseline in the same PR, with review of
# the new reason); shrinkage is surfaced so the budget gets ratcheted
# down.
echo "==> dynalint allow budget"
allow_budget=$(cat scripts/dynalint_allows.max)
allow_count=$(go run ./cmd/dynalint -allows -json ./... | grep -c '"check"' || true)
if [ "$allow_count" -gt "$allow_budget" ]; then
  echo "dynalint: $allow_count allow directive(s) exceed the committed budget of $allow_budget" >&2
  echo "  (inspect with: go run ./cmd/dynalint -allows ./... ; if the new exception is justified," >&2
  echo "   raise scripts/dynalint_allows.max in the same change)" >&2
  exit 1
fi
if [ "$allow_count" -lt "$allow_budget" ]; then
  echo "dynalint: $allow_count allow directive(s), below the budget of $allow_budget — consider lowering scripts/dynalint_allows.max"
else
  echo "dynalint: $allow_count allow directive(s), at budget"
fi

echo "==> go test ./..."
go test ./...

# The race build of the full E1–E24 suite (internal/experiments alone
# re-runs every experiment several times for the parallel/serial and
# observed/plain byte-identity proofs) outgrew go test's default
# 10-minute per-package timeout; raise it rather than thin the suite.
echo "==> go test -race ./..."
go test -race -timeout 30m ./...

# Seeded fault soak: the E21 fault-campaign sweep (ECU crash/hang/reboot,
# frame loss/corruption, partitions, babbling idiot) must render
# byte-identically on repeated runs — the determinism contract of the
# fault-injection engine (internal/faults).
echo "==> fault-campaign determinism soak (E21 x2)"
go test -run TestFaultCampaignDeterministic -count=2 ./internal/experiments/

# Self-healing soak: the E22 recovery sweep (silence detection,
# admission-checked re-placement, shedding, endpoint migration,
# re-balancing) must render byte-identically on repeated runs — the
# determinism contract of the reconfiguration orchestrator
# (internal/reconfig).
echo "==> self-healing determinism soak (E22 x2)"
go test -run TestE22Deterministic -count=2 ./internal/experiments/

# Service-mesh soak: the E24 overload sweep (replicated providers,
# client-side balancing, circuit breakers, criticality-aware shedding)
# must render byte-identically on repeated runs, and the fully
# instrumented run must match the plain one byte for byte — the
# determinism contract of the mesh routing plane (internal/soa mesh).
echo "==> service-mesh determinism soak (E24 x2)"
go test -run TestE24Deterministic -count=2 ./internal/experiments/
echo "==> service-mesh observed-matches-plain (E24)"
go test -run TestE24ObservedMatchesPlain -count=1 ./internal/experiments/

# Fleet-rollout soak: the E23 staged-OTA sweep (twelve cloud campaigns
# over 3000 heterogeneous vehicle simulations) must render
# byte-identically on repeated runs — the determinism contract of the
# fleet layer (internal/fleet).
echo "==> fleet-rollout determinism soak (E23 x2)"
go test -run TestE23Deterministic -count=2 ./internal/experiments/

# Per-vehicle seed independence: a vehicle's rendered report must be
# byte-identical whether it runs alone, in a 10-vehicle fleet, or in a
# 1000-vehicle sharded fleet, at any worker count — and a whole
# campaign's rendering must not depend on the worker count.
echo "==> fleet per-vehicle seed-independence gate"
go test -run 'TestVehicleSeedIndependence|TestCampaignShardedByteIdentical' ./internal/fleet/

# Observability determinism soak: the Chrome trace and metrics dump of
# an observed E21 run must be byte-identical across runs and across
# fresh processes (DESIGN.md §7). -count=2 re-runs the whole
# double-comparison, so four observed sweeps are compared in total.
echo "==> observed-trace determinism soak (x2)"
go test -run TestObservedArtifactsByteIdentical -count=2 ./internal/experiments/

# Scenario-fuzz gate: 200 seeded scenarios through the universal-property
# oracle (internal/fuzz, DESIGN.md §12) — re-run identity, wheel-vs-heap
# kernel differential, observation neutrality, mesh conservation,
# quiesce, rollback byte-identity. A failure prints a shrunk minimal
# spec and reproduces from (generator version, seed) alone. The corpus
# replay pins the tier-coverage seeds in testdata/fuzzcorpus.
echo "==> scenario-fuzz gate (dynafuzz -seeds 200)"
go run ./cmd/dynafuzz -seeds 200
echo "==> fuzz corpus replay"
go test -run TestCorpusReplay -count=1 ./internal/fuzz/

echo "verify.sh: all green"
