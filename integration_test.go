package dynaplat

// Whole-lifecycle integration test: one vehicle goes through the entire
// story the paper tells — modeled, explored, deployed, run under mixed
// criticality, updated at runtime with verification, degraded after
// faults, and kept operating through an ECU failure. Every subsystem
// participates; the test asserts the cross-cutting invariants.

import (
	"testing"

	"dynaplat/internal/dse"
	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/monitor"
	"dynaplat/internal/safety/redundancy"
)

const lifecycleDSL = `
system Lifecycle
ecu CPM1 cpu=400MHz mem=8MB mmu crypto os=rtos cost=40
ecu CPM2 cpu=400MHz mem=8MB mmu os=rtos cost=40
ecu Head cpu=1GHz mem=128MB mmu os=posix cost=30
network Backbone type=ethernet rate=100Mbps attach=CPM1,CPM2,Head

app Brake   kind=da  asil=D period=10ms wcet=2ms deadline=10ms jitter=2ms mem=256KB candidates=CPM1
app Lane    kind=da  asil=C period=20ms wcet=5ms deadline=20ms mem=512KB candidates=CPM1,CPM2
app Wiper   kind=da  asil=B period=50ms wcet=4ms mem=64KB candidates=CPM1,CPM2
app Media   kind=nda asil=QM mem=16MB candidates=Head

iface BrakeStatus owner=Brake paradigm=event payload=16B period=10ms latency=9ms net=Backbone
bind Media -> BrakeStatus
bind Lane  -> BrakeStatus
`

func TestVehicleLifecycle(t *testing.T) {
	// --- Phase 1: model → DSE placement (§2.2, §2.3).
	sys, err := ParseModel(lifecycleDSL)
	if err != nil {
		t.Fatal(err)
	}
	res := dse.Greedy(sys, dse.DefaultWeights())
	if !res.Feasible {
		t.Fatal("DSE found no feasible placement")
	}
	for app, ecu := range res.Placement {
		sys.Placement[app] = ecu
	}
	if findings, ok := ValidateModel(sys); !ok {
		t.Fatalf("placed model invalid: %v", findings)
	}

	// --- Phase 2: deploy and run under infotainment pressure (Fig. 2).
	s, err := FromModel(sys, Options{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	brakeEp, _ := s.Endpoint("Brake")
	s.App("Brake").Behavior.OnActivate = func(job int64) {
		brakeEp.Publish("BrakeStatus", 16, job)
	}
	statusRx := 0
	mediaEp, _ := s.Endpoint("Media")
	if err := mediaEp.Subscribe("BrakeStatus", func(Event) { statusRx++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.StartAll(); err != nil {
		t.Fatal(err)
	}
	var pump func()
	pump = func() { s.App("Media").Submit(20*Millisecond, pump) }
	pump()

	// Runtime monitoring on the brake's node (§3.4).
	brakeNode := s.Node(sys.Placement["Brake"])
	mon := monitor.New(brakeNode, monitor.DefaultConfig())
	if err := mon.Watch("Brake"); err != nil {
		t.Fatal(err)
	}

	s.Run(2 * Second)
	if got := s.App("Brake").Activations; got != 200 {
		t.Fatalf("brake activations = %d, want 200", got)
	}
	if s.App("Brake").Misses != 0 {
		t.Fatal("brake missed deadlines under infotainment load")
	}
	if statusRx < 190 {
		t.Fatalf("status events = %d", statusRx)
	}

	// --- Phase 3: verified staged update of the brake (§3.2).
	mgr := NewUpdateManager(s)
	newSpec := s.App("Brake").Spec
	newSpec.Version = 2
	updated := false
	err = mgr.StagedVerified("Brake", newSpec, Behavior{
		OnActivate: func(job int64) { brakeEp.Publish("BrakeStatus", 16, job) },
	}, []UpdateOffers{{Iface: "BrakeStatus", Opts: OfferOpts{Network: "Backbone"}}},
		100*Millisecond,
		func() error { return nil },
		func(r UpdateReport) { updated = !r.RolledBack })
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1 * Second)
	if !updated {
		t.Fatal("staged update did not complete")
	}
	brake2 := s.App("Brake@2")
	if brake2 == nil || brake2.State != platform.StateRunning {
		t.Fatal("updated brake not running")
	}
	if brake2.Misses != 0 {
		t.Fatal("updated brake missing deadlines")
	}

	// --- Phase 4: replicate a steering function and survive an ECU
	// failure (§3.3).
	red := redundancy.NewManager(s.Platform)
	steer := model.App{Name: "Steer", Kind: model.Deterministic, ASIL: model.ASILD,
		Period: 10 * Millisecond, WCET: Millisecond, Deadline: 10 * Millisecond,
		MemoryKB: 128}
	// Master replica on CPM2 so that killing CPM2 exercises failover
	// without taking the (unreplicated) brake on CPM1 down with it.
	grp, err := red.Replicate(steer, []string{"CPM2", "CPM1"}, Behavior{},
		redundancy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := grp.Start(); err != nil {
		t.Fatal(err)
	}
	s.Run(500 * Millisecond)
	red.FailECU("CPM2")
	s.Run(1 * Second)
	if len(grp.Failovers) != 1 {
		t.Fatalf("failovers = %d", len(grp.Failovers))
	}
	outputsBefore := grp.Outputs
	s.Run(500 * Millisecond)
	if grp.Outputs <= outputsBefore {
		t.Fatal("steering dead after failover")
	}

	// --- Phase 5: faults escalate the operating mode; QM load is shed
	// (§3.3 safe-state handling). Media may live on the failed ECU's
	// platform or the head unit; escalate and confirm shedding.
	mm := platform.NewModeManager(s.Platform, platform.DefaultModes())
	mm.Escalate("post-failure load shedding")
	if mm.Current() != "degraded" {
		t.Fatalf("mode = %s", mm.Current())
	}
	media := s.App("Media")
	if media.State != platform.StateStopped {
		t.Fatal("QM app still running in degraded mode")
	}
	// The updated ASIL-D brake keeps running through all of it.
	if brake2.State != platform.StateRunning {
		t.Fatal("brake stopped by degradation")
	}
	missesBefore := brake2.Misses
	s.Run(1 * Second)
	if brake2.Misses != missesBefore {
		t.Fatal("brake degraded after mode change")
	}

	// Monitoring collected a certification record over the whole run.
	if rec, err := mon.Certify("Brake@2"); err == nil {
		if rec.Activations == 0 {
			t.Error("certification record empty")
		}
	}
}
