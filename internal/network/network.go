// Package network defines the common abstraction over dynaplat's simulated
// in-vehicle communication systems (CAN, FlexRay, Ethernet/TSN).
//
// Networks move opaque payloads between named ECU stations on virtual
// time; the per-technology packages model the medium's arbitration and
// timing. Payload *content* never affects timing — only its size does —
// which keeps the simulators honest about what the wire sees.
package network

import (
	"dynaplat/internal/sim"
)

// Class is a traffic class. Interpretation is per technology: CAN maps it
// to arbitration priority, TSN to an 802.1Q priority queue, FlexRay to
// static (deterministic) versus dynamic (priority) segment.
type Class int

const (
	// ClassControl is deterministic, safety-critical traffic
	// (time-triggered where the technology supports it).
	ClassControl Class = iota
	// ClassPriority is latency-sensitive but event-driven traffic.
	ClassPriority
	// ClassBulk is best-effort bulk/streaming traffic.
	ClassBulk
)

func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassPriority:
		return "priority"
	case ClassBulk:
		return "bulk"
	}
	return "unknown"
}

// Message is one transfer request handed to a network.
type Message struct {
	// ID is the technology-level identifier (CAN arbitration ID, FlexRay
	// frame ID, TSN stream handle). For CAN, lower ID wins arbitration.
	ID uint32
	// Src and Dst name attached stations; empty Dst broadcasts.
	Src, Dst string
	Class    Class
	// Bytes is the payload size on the wire.
	Bytes int
	// Payload is delivered opaquely to the receiver(s).
	Payload any
}

// Delivery reports a completed transfer to a receiver.
type Delivery struct {
	Msg Message
	// Enqueued is when the sender handed the message to the network.
	Enqueued sim.Time
	// Delivered is when the last bit arrived at the receiver.
	Delivered sim.Time
}

// Latency returns the enqueue-to-delivery latency.
func (d Delivery) Latency() sim.Duration { return d.Delivered.Sub(d.Enqueued) }

// Receiver consumes deliveries at a station.
type Receiver func(Delivery)

// Network is the technology-independent interface the SOA middleware and
// the platform use.
type Network interface {
	// Name identifies the network instance.
	Name() string
	// Attach registers a station; rx receives its deliveries.
	Attach(station string, rx Receiver)
	// Send enqueues a message. It panics if the source is not attached.
	Send(msg Message)
}

// TxTime returns the serialization time of n bytes at rate bits/s,
// rounded up to whole nanoseconds.
func TxTime(bytes int, bitsPerSecond int64) sim.Duration {
	if bitsPerSecond <= 0 {
		return 0
	}
	bits := int64(bytes) * 8
	return sim.Duration((bits*1_000_000_000 + bitsPerSecond - 1) / bitsPerSecond)
}
