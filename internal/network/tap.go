package network

import "dynaplat/internal/sim"

// Tap observes the lifecycle of frames inside a network implementation.
// CAN, FlexRay, and TSN each accept one tap via their SetTap method and
// invoke it behind nil checks, so an untapped network pays only a
// pointer comparison per event (no allocation, no call).
//
// The uint64 returned by FrameEnqueued is an opaque span handle the
// network threads through the frame's life and hands back on TxStart /
// Delivered / Lost. Implementations that do not track spans return 0;
// networks must tolerate (and pass back) 0.
//
// Tap is defined here — rather than in internal/obs — so that the
// network technologies do not depend on the observability layer; obs
// provides the canonical implementation (obs.NetTap).
type Tap interface {
	// FrameEnqueued fires when the sender hands the frame to the medium.
	FrameEnqueued(net string, msg *Message, at sim.Time) uint64
	// FrameTxStart fires when the frame wins arbitration / its gate
	// opens and serialization onto the wire begins. Best-effort: some
	// technologies fold it into delivery.
	FrameTxStart(net string, span uint64, at sim.Time)
	// FrameDelivered fires once per receiving station.
	FrameDelivered(net string, span uint64, msg *Message, station string, at sim.Time)
	// FrameLost fires when the frame is dropped (queue overflow, fault
	// injection, no receiver). reason is a short stable token such as
	// "overflow", "loss", "partition", "no-receiver".
	FrameLost(net string, span uint64, msg *Message, reason string, at sim.Time)
}
