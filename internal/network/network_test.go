package network

import (
	"testing"
	"testing/quick"

	"dynaplat/internal/sim"
)

func TestTxTime(t *testing.T) {
	cases := []struct {
		bytes int
		bps   int64
		want  sim.Duration
	}{
		{1, 8, sim.Second},                // 8 bits at 8 bps
		{125, 1_000_000, sim.Millisecond}, // 1000 bits at 1 Mbps
		{1500, 100_000_000, 120 * sim.Microsecond},
		{0, 1_000_000, 0},
		{10, 0, 0}, // degenerate rate
	}
	for _, c := range cases {
		if got := TxTime(c.bytes, c.bps); got != c.want {
			t.Errorf("TxTime(%d, %d) = %v, want %v", c.bytes, c.bps, got, c.want)
		}
	}
}

func TestTxTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps = 2.66...s → must round up, never under-account.
	if got := TxTime(1, 3); got < sim.Duration(2_666_666_666) {
		t.Errorf("TxTime rounded down: %v", got)
	}
}

func TestTxTimeMonotoneProperty(t *testing.T) {
	err := quick.Check(func(b1, b2 uint16, rate uint32) bool {
		bps := int64(rate%10_000_000) + 1
		lo, hi := int(b1), int(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return TxTime(lo, bps) <= TxTime(hi, bps)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDeliveryLatency(t *testing.T) {
	d := Delivery{Enqueued: 100, Delivered: 350}
	if d.Latency() != 250 {
		t.Errorf("latency = %v", d.Latency())
	}
}

func TestClassString(t *testing.T) {
	if ClassControl.String() != "control" || ClassPriority.String() != "priority" ||
		ClassBulk.String() != "bulk" || Class(99).String() != "unknown" {
		t.Error("Class strings wrong")
	}
}
