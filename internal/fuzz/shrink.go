package fuzz

import (
	"encoding/json"

	"dynaplat/internal/sim"
)

// Shrink greedily reduces a failing spec to a smaller one that still
// fails, re-checking candidates with the caller's predicate (normally
// func(s Spec) bool { return Check(s).Failed() }). Reductions are tried
// big-to-small — drop a whole tier before trimming inside one — and the
// first still-failing candidate is adopted, to a fixpoint. Every
// reduction is deterministic, so the shrunk spec is itself a pure
// function of (Version, seed, predicate).
func Shrink(sp Spec, failing func(Spec) bool) Spec {
	cur := sp
	for round := 0; round < 24; round++ {
		reduced := false
		for _, cand := range reductions(cur) {
			if failing(cand) {
				cur = cand
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}
	return cur
}

// reductions proposes strictly smaller variants of s, most aggressive
// first. Each candidate keeps the generator's validity invariants:
// memory is re-sized, dangling migrations are dropped, homes stay on
// live ECUs.
func reductions(s Spec) []Spec {
	var out []Spec
	add := func(f func(*Spec) bool) {
		c := cloneSpec(s)
		if f(&c) {
			sizeMemory(&c)
			out = append(out, c)
		}
	}

	add(func(c *Spec) bool { // drop the update tier
		if c.Update == nil {
			return false
		}
		c.Update = nil
		return true
	})
	add(func(c *Spec) bool { // drop the reconfig tier
		if c.Reconfig == nil {
			return false
		}
		c.Reconfig = nil
		return true
	})
	add(func(c *Spec) bool { // drop the mesh tier
		if c.Mesh == nil {
			return false
		}
		c.Mesh = nil
		return true
	})
	add(func(c *Spec) bool { // drop the fault campaign
		if c.Campaign == nil {
			return false
		}
		c.Campaign = nil
		return true
	})
	add(func(c *Spec) bool { // drop network-level noise only
		if c.Campaign == nil ||
			(c.Campaign.Loss == 0 && c.Campaign.Corrupt == 0 && c.Campaign.Babble == nil) {
			return false
		}
		c.Campaign.Loss, c.Campaign.Corrupt, c.Campaign.Babble = 0, 0, nil
		return true
	})
	add(func(c *Spec) bool { // drop all migrations
		if len(c.Migrations) == 0 {
			return false
		}
		c.Migrations = nil
		return true
	})
	add(func(c *Spec) bool { // drop the aux bus (and dual-homing)
		if c.Aux == nil {
			return false
		}
		c.Aux = nil
		for i := range c.Pubs {
			c.Pubs[i].AuxIface = ""
		}
		return true
	})
	add(func(c *Spec) bool { // halve the publishers
		if len(c.Pubs) <= 1 {
			return false
		}
		c.Pubs = c.Pubs[:(len(c.Pubs)+1)/2]
		kept := map[string]bool{}
		for _, p := range c.Pubs {
			kept[p.App] = true
		}
		var migs []MigrationSpec
		for _, m := range c.Migrations {
			if kept[m.App] {
				migs = append(migs, m)
			}
		}
		c.Migrations = migs
		return true
	})
	add(func(c *Spec) bool { // halve the mesh services
		if c.Mesh == nil || len(c.Mesh.Services) <= 1 {
			return false
		}
		c.Mesh.Services = c.Mesh.Services[:(len(c.Mesh.Services)+1)/2]
		kept := map[string]bool{}
		for _, svc := range c.Mesh.Services {
			kept[svc.Name] = true
		}
		var streams []StreamSpec
		for _, st := range c.Mesh.Streams {
			if kept[st.Service] {
				streams = append(streams, st)
			}
		}
		c.Mesh.Streams = streams
		return true
	})
	add(func(c *Spec) bool { // halve the call streams
		if c.Mesh == nil || len(c.Mesh.Streams) <= 1 {
			return false
		}
		c.Mesh.Streams = c.Mesh.Streams[:(len(c.Mesh.Streams)+1)/2]
		return true
	})
	add(func(c *Spec) bool { // halve the NDAs
		if c.Reconfig == nil || len(c.Reconfig.NDAs) <= 1 {
			return false
		}
		c.Reconfig.NDAs = c.Reconfig.NDAs[:(len(c.Reconfig.NDAs)+1)/2]
		return true
	})
	add(func(c *Spec) bool { // halve the ECU count (>= 3 stay)
		if len(c.ECUs) <= 3 {
			return false
		}
		m := len(c.ECUs) / 2
		if m < 3 {
			m = 3
		}
		remap := map[string]string{}
		for i, e := range c.ECUs {
			remap[e.Name] = c.ECUs[i%m].Name
		}
		c.ECUs = c.ECUs[:m]
		for i := range c.Pubs {
			c.Pubs[i].Home = remap[c.Pubs[i].Home]
		}
		if c.Mesh != nil {
			for i := range c.Mesh.Services {
				for j := range c.Mesh.Services[i].Homes {
					c.Mesh.Services[i].Homes[j] = remap[c.Mesh.Services[i].Homes[j]]
				}
			}
		}
		if c.Reconfig != nil {
			for i := range c.Reconfig.NDAs {
				c.Reconfig.NDAs[i].Home = remap[c.Reconfig.NDAs[i].Home]
			}
		}
		return true
	})
	add(func(c *Spec) bool { // halve the horizon
		if c.Horizon <= 120*sim.Millisecond {
			return false
		}
		c.Horizon /= 2
		if c.Horizon < 120*sim.Millisecond {
			c.Horizon = 120 * sim.Millisecond
		}
		if c.Update != nil {
			c.Update.Start = c.Horizon / 3
			c.Update.Soak = c.Horizon / 6
		}
		for i := range c.Migrations {
			if c.Migrations[i].At >= c.Horizon {
				c.Migrations[i].At = 3 * c.Horizon / 4
			}
		}
		return true
	})
	return out
}

// cloneSpec deep-copies via the spec's own JSON form — Spec is pure
// serializable data, so the round-trip is lossless.
func cloneSpec(s Spec) Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		panic(err)
	}
	return out
}
