package fuzz

import (
	"testing"

	"dynaplat/internal/safety/update"
	"dynaplat/internal/soa"
)

// The oracle must catch the ghost-service rollback leak (the defect
// StagedVerified originally shipped with, reintroducible via
// update.BugRollbackReofferAll): a failing update whose v2 introduced a
// new interface re-offers that interface onto the v1 provider during
// rollback, so post-rollback service state differs from the pre-update
// capture. Detection is deterministic — any update-tier seed with a bad
// image and an extra v2 interface trips property 6 on its first run.
func TestOracleCatchesRollbackReofferAll(t *testing.T) {
	var eligible []uint64
	for seed := uint64(1); seed <= 500 && len(eligible) < 3; seed++ {
		sp := Generate(seed)
		if sp.Update != nil && sp.Update.Bad && sp.Update.ExtraIface {
			eligible = append(eligible, seed)
		}
	}
	if len(eligible) == 0 {
		t.Fatal("no eligible update seed in 1..500 — generator distribution changed?")
	}

	for _, seed := range eligible {
		if CheckSeed(seed).Failed() {
			t.Fatalf("seed %d: oracle fails with the bug flag off", seed)
		}
	}

	update.BugRollbackReofferAll = true
	defer func() { update.BugRollbackReofferAll = false }()
	for _, seed := range eligible {
		rep := CheckSeed(seed)
		found := false
		for _, v := range rep.Violations {
			if v.Property == PropRollback {
				found = true
			}
		}
		if !found {
			t.Errorf("seed %d: ghost-service rollback leak not caught: %+v",
				seed, rep.Violations)
		}
	}
}

// The oracle must catch the unsorted-migration attach order (the map-
// iteration defect Endpoint.Migrate originally shipped with,
// reintroducible via soa.BugUnsortedMigrateAttach): a dual-homed
// endpoint migrating to a fresh station attaches it to its networks in
// map-iteration order, which differs between runs of the same seed —
// property 1 (re-run identity) trips on the attach-order trace. Each
// re-run comparison catches an eligible seed with probability 1/2 per
// two-network migration; across the oracle's three fingerprint
// comparisons and a handful of eligible seeds the miss probability is
// negligible (< 1e-6).
func TestOracleCatchesUnsortedMigrateAttach(t *testing.T) {
	var eligible []uint64
	for seed := uint64(1); seed <= 2000 && len(eligible) < 8; seed++ {
		sp := Generate(seed)
		if sp.Aux == nil || len(sp.Migrations) == 0 {
			continue
		}
		dual := map[string]bool{}
		for _, p := range sp.Pubs {
			if p.AuxIface != "" {
				dual[p.App] = true
			}
		}
		for _, m := range sp.Migrations {
			if dual[m.App] {
				eligible = append(eligible, seed)
				break
			}
		}
	}
	if len(eligible) == 0 {
		t.Fatal("no dual-homed migration seed in 1..2000 — generator distribution changed?")
	}

	soa.BugUnsortedMigrateAttach = true
	defer func() { soa.BugUnsortedMigrateAttach = false }()
	for _, seed := range eligible {
		rep := CheckSeed(seed)
		for _, v := range rep.Violations {
			if v.Property == PropRerun || v.Property == PropBackend ||
				v.Property == PropObsNeutral {
				return // caught
			}
		}
	}
	t.Errorf("unsorted migrate attach not caught across %d eligible seeds %v",
		len(eligible), eligible)
}
