package fuzz

import (
	"bytes"
	"fmt"
	"strings"
)

// Report is the oracle's verdict on one scenario. Violations is empty
// for a healthy spec; every entry reproduces from (Version, Spec.Seed)
// alone via Generate + Check.
type Report struct {
	Spec        Spec        `json:"spec"`
	Violations  []Violation `json:"violations,omitempty"`
	Fingerprint string      `json:"-"`
}

// Failed reports whether any property was violated.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// Check runs a spec through the universal-property oracle:
//
//  1. rerun-identity        — two plain runs fingerprint byte-identically
//  2. backend-differential  — wheel and heap-only kernels agree
//  3. observation-neutrality — a fully observed run matches the plain
//     fingerprint, and two observed runs emit byte-identical trace and
//     metrics artifacts
//  4. conservation          — checked inside each run (mesh accounts)
//  5. quiesce               — checked inside each run (leaked timers)
//  6. rollback-identity     — checked inside each run (update/reconfig)
//
// Five executions total; in-run violations are taken from the first
// plain run only (re-runs would report duplicates of the same breach).
func Check(sp Spec) Report {
	rep := Report{Spec: sp}
	base := runScenario(sp, runOpts{})
	rep.Fingerprint = base.fingerprint
	rep.Violations = append(rep.Violations, base.violations...)

	again := runScenario(sp, runOpts{})
	if again.fingerprint != base.fingerprint {
		rep.Violations = append(rep.Violations, Violation{
			Property: PropRerun,
			Detail: "two runs of the same spec diverge: " +
				firstDiff(base.fingerprint, again.fingerprint),
		})
	}
	heap := runScenario(sp, runOpts{heapOnly: true})
	if heap.fingerprint != base.fingerprint {
		rep.Violations = append(rep.Violations, Violation{
			Property: PropBackend,
			Detail: "timing-wheel and heap-only kernels diverge: " +
				firstDiff(base.fingerprint, heap.fingerprint),
		})
	}
	obs1 := runScenario(sp, runOpts{observe: true})
	if obs1.fingerprint != base.fingerprint {
		rep.Violations = append(rep.Violations, Violation{
			Property: PropObsNeutral,
			Detail: "observed run diverges from plain run: " +
				firstDiff(base.fingerprint, obs1.fingerprint),
		})
	}
	obs2 := runScenario(sp, runOpts{observe: true})
	if !bytes.Equal(obs1.trace, obs2.trace) {
		rep.Violations = append(rep.Violations, Violation{
			Property: PropObsNeutral,
			Detail:   "chrome-trace artifacts differ between two observed runs",
		})
	}
	if !bytes.Equal(obs1.metrics, obs2.metrics) {
		rep.Violations = append(rep.Violations, Violation{
			Property: PropObsNeutral,
			Detail: "metrics artifacts differ between two observed runs: " +
				firstDiff(string(obs1.metrics), string(obs2.metrics)),
		})
	}
	return rep
}

// CheckSeed generates and checks the scenario for one seed.
func CheckSeed(seed uint64) Report { return Check(Generate(seed)) }

// firstDiff locates the first line where two fingerprints disagree.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}
