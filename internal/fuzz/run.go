package fuzz

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strings"

	"dynaplat/internal/admission"
	"dynaplat/internal/can"
	"dynaplat/internal/faults"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/obs"
	"dynaplat/internal/platform"
	"dynaplat/internal/reconfig"
	"dynaplat/internal/safety/update"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

// Universal-property names (DESIGN.md §12).
const (
	PropRerun        = "rerun-identity"
	PropBackend      = "backend-differential"
	PropObsNeutral   = "observation-neutrality"
	PropConservation = "conservation"
	PropQuiesce      = "quiesce"
	PropRollback     = "rollback-identity"
)

// Violation is one property breach found for a scenario.
type Violation struct {
	Property string `json:"property"`
	Detail   string `json:"detail"`
}

// runOpts selects the kernel backend and observation plane for one run.
type runOpts struct {
	// heapOnly disables the timing-wheel fast path (property 2's
	// differential arm). Per-kernel, so parallel seeds stay race-free.
	heapOnly bool
	// observe wires the full obs plane (property 3).
	observe bool
}

// runResult is the outcome of one scenario execution.
type runResult struct {
	fingerprint string
	violations  []Violation
	trace       []byte // observed runs only
	metrics     []byte
}

const (
	// runTail bounds settling after the horizon: mesh call budgets are
	// <= 200 ms, so every conservation account is closed by then.
	runTail = 300 * sim.Millisecond
	// quiesceSettle is how long after teardown the kernel may still
	// drain in-flight frames and one-shot timers before the leak audit.
	quiesceSettle = 400 * sim.Millisecond
)

// fuzzTarget absorbs campaign control calls for a non-platform ECU; the
// observable fault effect is the campaign's network partition.
type fuzzTarget struct{ hung bool }

func (t *fuzzTarget) Crash() []string     { return nil }
func (t *fuzzTarget) Restore([]string)    {}
func (t *fuzzTarget) SetHung(h bool)      { t.hung = h }
func (t *fuzzTarget) SetSlowdown(float64) {}

// pubState accumulates one publisher's observable outcome.
type pubState struct {
	published    int64
	delivered    int64
	auxDelivered int64
	misses       int64
	seen         []bool
	rel          *soa.ReliableSub
}

// runScenario executes one spec through the full stack and returns its
// behavioral fingerprint plus any in-run property violations
// (conservation, quiesce, rollback identity). The fingerprint is
// backend-invariant and observation-invariant by construction: it reads
// only application-visible state, never kernel internals or obs data.
func runScenario(sp Spec, opt runOpts) *runResult {
	res := &runResult{}
	violate := func(prop, format string, args ...any) {
		res.violations = append(res.violations, Violation{
			Property: prop, Detail: fmt.Sprintf(format, args...),
		})
	}

	k := sim.NewKernel(sp.Seed)
	if opt.heapOnly {
		k.DisableWheel()
	}
	var o *obs.Obs
	if opt.observe {
		o = obs.New(k)
		o.T.Cap = 4096
		o.BridgeKernelTrace(k)
	}

	// Buses, each wrapped in the fault interceptor (zero-rate when no
	// campaign) so partitions and babble have somewhere to act.
	var cs CampaignSpec
	if sp.Campaign != nil {
		cs = *sp.Campaign
	}
	mkNet := func(ns NetSpec) (*faults.NetFaults, int) {
		var medium network.Network
		mtu := 1400
		if ns.Kind == "can" {
			medium = can.New(k, can.Config{Name: ns.Name, BitsPerSecond: ns.BPS,
				WorstCaseStuffing: true})
			mtu = 8
		} else {
			cfg := tsn.DefaultConfig(ns.Name)
			cfg.BitsPerSecond = ns.BPS
			medium = tsn.New(k, cfg)
		}
		nf := faults.WrapNetwork(k, medium, faults.NetConfig{
			LossRate: cs.Loss, CorruptRate: cs.Corrupt,
		})
		if o != nil {
			tap := obs.NewNetTap(o)
			if tappable, ok := medium.(interface{ SetTap(network.Tap) }); ok {
				tappable.SetTap(tap)
			}
			nf.SetTap(tap)
		}
		return nf, mtu
	}
	nfBB, mtuBB := mkNet(sp.Backbone)
	nets := []*faults.NetFaults{nfBB}
	mw := soa.New(k, nil)
	mw.SetObs(o)
	mw.SetJitterSeed(sp.Seed ^ 0x5A5A5A5A)
	mw.AddNetwork(nfBB, mtuBB)
	if sp.Aux != nil {
		nfAux, mtuAux := mkNet(*sp.Aux)
		nets = append(nets, nfAux)
		mw.AddNetwork(nfAux, mtuAux)
	}

	// Platform tier (update / reconfig scenarios install apps for real).
	platformOn := sp.Update != nil || sp.Reconfig != nil
	var p *platform.Platform
	if platformOn {
		p = platform.New(k, mw)
		for _, e := range sp.ECUs {
			ecu := model.ECU{Name: e.Name, CPUMHz: e.CPUMHz, MemoryKB: e.MemKB,
				HasMMU: true, OS: model.OSRTOS}
			if _, err := p.AddNode(ecu, platform.ModeIsolated, 250*sim.Microsecond); err != nil {
				panic(fmt.Sprintf("fuzz: add node %s: %v", e.Name, err))
			}
		}
		platform.ObservePlatform(o, p)
	}

	// Publishers and the sink's delivery bitmaps. Self-rearming tickers
	// park their latest EventRef here so teardown can cancel any that
	// are still pending (they stop re-arming at the horizon on their
	// own; the cancel keeps the quiesce property about the platform
	// under test, not about the harness's own timers).
	var tickerRefs []*sim.EventRef
	sink := mw.Endpoint("dash", "sink")
	pubs := make([]*pubState, len(sp.Pubs))
	for i, pub := range sp.Pubs {
		i, pub := i, pub
		st := &pubState{}
		pubs[i] = st
		periods := int(int64(sp.Horizon) / int64(pub.Period))
		st.seen = make([]bool, periods)

		ep := mw.Endpoint(pub.App, pub.Home)
		ep.Offer(pub.Iface, soa.OfferOpts{Network: sp.Backbone.Name,
			Class: network.ClassControl})
		if pub.History > 0 {
			if err := ep.EnableHistory(pub.Iface, pub.History); err != nil {
				panic(err)
			}
		}
		if pub.AuxIface != "" {
			ep.Offer(pub.AuxIface, soa.OfferOpts{Network: sp.Aux.Name,
				Class: network.ClassPriority})
		}

		publish := func() {
			idx := int(int64(k.Now()) / int64(pub.Period))
			if idx >= periods {
				return
			}
			st.published++
			if pub.Reliable {
				ep.PublishSeq(pub.Iface, pub.Payload, idx)
			} else {
				ep.Publish(pub.Iface, pub.Payload, idx)
			}
			if pub.AuxIface != "" {
				ep.Publish(pub.AuxIface, pub.Payload, idx)
			}
		}

		onEvent := func(ev soa.Event) {
			if idx, ok := ev.Payload.(int); ok && idx >= 0 && idx < periods {
				st.seen[idx] = true
				st.delivered++
			}
		}
		qos := soa.QoS{History: pub.History, Deadline: pub.QoSDeadline,
			OnDeadlineMiss: func(string, sim.Duration) { st.misses++ }}
		if pub.Reliable {
			rel, err := sink.SubscribeReliable(pub.Iface, qos, true, onEvent)
			if err != nil {
				panic(err)
			}
			st.rel = rel
		} else if pub.QoSDeadline > 0 || pub.History > 0 {
			if err := sink.SubscribeQoS(pub.Iface, qos, onEvent); err != nil {
				panic(err)
			}
		} else {
			if err := sink.Subscribe(pub.Iface, onEvent); err != nil {
				panic(err)
			}
		}
		if pub.AuxIface != "" {
			if err := sink.Subscribe(pub.AuxIface, func(ev soa.Event) {
				if _, ok := ev.Payload.(int); ok {
					st.auxDelivered++
				}
			}); err != nil {
				panic(err)
			}
		}

		if platformOn {
			spec := model.App{Name: pub.App, Kind: model.Deterministic,
				ASIL: model.ASILD, Period: pub.Period, WCET: pub.WCET,
				Deadline: pub.Period, MemoryKB: pub.MemKB, Version: 1}
			inst, err := p.Node(pub.Home).Install(spec,
				platform.Behavior{OnActivate: func(int64) { publish() }})
			if err != nil {
				panic(fmt.Sprintf("fuzz: install %s: %v", pub.App, err))
			}
			if err := inst.Start(); err != nil {
				panic(err)
			}
		} else {
			phase := sim.Duration(i+1) * 97 * sim.Microsecond
			ref := new(sim.EventRef)
			var tick func()
			tick = func() {
				if k.Now() >= sim.Time(sp.Horizon) {
					return
				}
				publish()
				*ref = k.After(pub.Period, tick)
			}
			*ref = k.At(sim.Time(phase), tick)
			tickerRefs = append(tickerRefs, ref)
		}
	}

	// Scheduled endpoint migrations (plain scenarios).
	for _, mig := range sp.Migrations {
		mig := mig
		k.At(sim.Time(mig.At), func() {
			if ep := mw.EndpointOf(mig.App); ep != nil {
				ep.Migrate(mig.To)
			}
		})
	}

	// Mesh tier.
	var ms *soa.Mesh
	if sp.Mesh != nil {
		m := sp.Mesh
		var breaker *soa.BreakerConfig
		switch m.Breaker {
		case "default":
			b := soa.DefaultBreakerConfig()
			breaker = &b
		case "fast":
			breaker = &soa.BreakerConfig{Window: 6, MinSamples: 3,
				FailureRate: 0.5, OpenFor: 20 * sim.Millisecond}
		}
		ms = soa.NewMesh(mw, soa.MeshConfig{
			Policy:      soa.BalancePolicy(m.Policy),
			Breaker:     breaker,
			QueueDepth:  m.QueueDepth,
			Concurrency: m.Concurrency,
		})
		for _, e := range sp.ECUs {
			ms.SetZone(e.Name, e.Zone)
		}
		ms.SetZone("cliF", "front")
		ms.SetZone("cliR", "rear")
		for _, svc := range m.Services {
			svc := svc
			for r, home := range svc.Homes {
				ep := mw.Endpoint(fmt.Sprintf("%s-r%d", svc.Name, r), home)
				ms.Offer(ep, svc.Name, soa.OfferOpts{
					Network: sp.Backbone.Name, Class: network.ClassPriority,
					Handler: func(any) (int, any, sim.Duration) { return 64, "ok", svc.Proc },
				})
			}
		}
		daPol := soa.RetryPolicy{MaxAttempts: 3, Backoff: 4 * sim.Millisecond,
			MaxBackoff: 16 * sim.Millisecond, Multiplier: 2, JitterFrac: 0.2,
			Budget: 100 * sim.Millisecond}
		bePol := soa.RetryPolicy{MaxAttempts: 2, Backoff: 4 * sim.Millisecond,
			MaxBackoff: 8 * sim.Millisecond, Multiplier: 2, JitterFrac: 0.2,
			Budget: 200 * sim.Millisecond}
		clients := map[string]*soa.Endpoint{
			"cliF": mw.Endpoint("cli-front", "cliF"),
			"cliR": mw.Endpoint("cli-rear", "cliR"),
		}
		for si, stream := range m.Streams {
			stream := stream
			cl := clients[stream.Client]
			if cl == nil {
				panic(fmt.Sprintf("fuzz: stream client %q unknown", stream.Client))
			}
			pol := bePol
			crit := soa.Criticality(stream.Crit)
			if crit >= soa.CritASILD {
				pol = daPol
			}
			interval := sim.Second / sim.Duration(stream.Rate)
			phase := sim.Duration(si+1) * 73 * sim.Microsecond
			ref := new(sim.EventRef)
			var tick func()
			tick = func() {
				if k.Now() >= sim.Time(sp.Horizon) {
					return
				}
				err := ms.Call(cl, stream.Service, soa.MeshCallOpts{
					Criticality: crit, ReqBytes: 48,
					PerTry: 25 * sim.Millisecond, Retry: pol,
				}, func(soa.Event) {}, nil)
				if err != nil {
					panic(err)
				}
				*ref = k.After(interval, tick)
			}
			*ref = k.At(sim.Time(phase), tick)
			tickerRefs = append(tickerRefs, ref)
		}
	}

	// Fault campaign.
	var camp *faults.Campaign
	var babbler *faults.Babbler
	if sp.Campaign != nil {
		camp = faults.NewCampaign(k, faults.Spec{
			Seed:        sp.Seed ^ 0xC0FFEE,
			Horizon:     sp.Horizon,
			MTBF:        cs.MTBF,
			RepairMean:  cs.RepairMean,
			RebootDelay: cs.RebootDelay,
			Weights: faults.Weights{Crash: cs.WCrash, Hang: cs.WHang,
				Slowdown: cs.WSlow, Reboot: cs.WReboot},
		})
		hostExcluded := ""
		if sp.Update != nil {
			// The OTA host stays healthy: rollback identity is then a
			// pure function of the update machinery, not of whichever
			// fault happened to hit the host mid-update.
			hostExcluded = sp.Pubs[0].Home
		}
		for _, e := range sp.ECUs {
			if e.Name == hostExcluded {
				continue
			}
			if platformOn {
				camp.AddTarget(e.Name, p.Node(e.Name))
			} else {
				camp.AddTarget(e.Name, &fuzzTarget{})
			}
		}
		for _, nf := range nets {
			camp.AddNetwork(nf)
		}
		if ms != nil && sp.Mesh.Evict {
			camp.HookECULifecycle(ms.ECULifecycle())
		}
		if cs.Babble != nil {
			babbler = nfBB.StartBabble("bbl", cs.Babble.ID,
				network.ClassPriority, cs.Babble.Bytes, cs.Babble.Period)
		}
		camp.Start()
	}

	// Staged-verified update tier (property 6a: rollback byte-identity).
	var updRep update.Report
	updDone := false
	if sp.Update != nil {
		us := *sp.Update
		target := sp.Pubs[0]
		node := p.Node(target.Home)
		mgr := update.NewManager(p, mw, update.DefaultConfig())
		// Seed persistent state so the sync and drop paths do real work.
		node.Store().Put(target.App, "calibration", []byte("v1-tables"))
		node.Store().Put(target.App, "odometer", []byte("42"))

		newName := target.App + "@2"
		ifaces := []string{target.Iface}
		offers := []update.Offers{{Iface: target.Iface,
			Opts: soa.OfferOpts{Network: sp.Backbone.Name,
				Class: network.ClassControl, Version: 2}}}
		if target.AuxIface != "" {
			ifaces = append(ifaces, target.AuxIface)
			offers = append(offers, update.Offers{Iface: target.AuxIface,
				Opts: soa.OfferOpts{Network: sp.Aux.Name,
					Class: network.ClassPriority, Version: 2}})
		}
		if us.ExtraIface {
			ifaces = append(ifaces, target.App+".v2extra")
			offers = append(offers, update.Offers{Iface: target.App + ".v2extra",
				Opts: soa.OfferOpts{Network: sp.Backbone.Name,
					Class: network.ClassPriority, Version: 2}})
		}
		v2 := model.App{Name: target.App, Kind: model.Deterministic,
			ASIL: model.ASILD, Period: target.Period, WCET: target.WCET,
			Deadline: target.Period, MemoryKB: target.MemKB, Version: 2}
		behavior := platform.Behavior{OnActivate: func(int64) {
			idx := int(int64(k.Now()) / int64(target.Period))
			if idx >= len(pubs[0].seen) {
				return
			}
			ep := mw.Endpoint(newName, target.Home)
			if target.Reliable {
				ep.PublishSeq(target.Iface, target.Payload, idx)
			} else {
				ep.Publish(target.Iface, target.Payload, idx)
			}
		}}
		verify := func() error {
			if us.Bad {
				return fmt.Errorf("soak regression: bad image")
			}
			return nil
		}
		k.At(sim.Time(us.Start), func() {
			pre := updateStateFingerprint(p, mw, mgr, target.App, newName, ifaces)
			err := mgr.StagedVerified(target.App, v2, behavior, offers, us.Soak,
				verify, func(rp update.Report) {
					updRep, updDone = rp, true
					if rp.RolledBack {
						post := updateStateFingerprint(p, mw, mgr, target.App, newName, ifaces)
						if post != pre {
							violate(PropRollback,
								"update rollback state differs from pre-update:\n--- pre ---\n%s--- post ---\n%s",
								pre, post)
						}
					}
				})
			if err != nil {
				panic(fmt.Sprintf("fuzz: staged update: %v", err))
			}
		})
	}

	// Reconfig tier (property 6b: model rollback byte-identity under
	// injected install failure).
	var orc *reconfig.Orchestrator
	var sys *model.System
	var initialModel []byte
	if sp.Reconfig != nil {
		sys = model.NewSystem("fuzz-vehicle")
		for _, e := range sp.ECUs {
			ecu := model.ECU{Name: e.Name, CPUMHz: e.CPUMHz, MemoryKB: e.MemKB,
				HasMMU: true, OS: model.OSRTOS}
			sys.ECUs = append(sys.ECUs, &ecu)
		}
		for _, pub := range sp.Pubs {
			app := model.App{Name: pub.App, Kind: model.Deterministic,
				ASIL: model.ASILD, Period: pub.Period, WCET: pub.WCET,
				Deadline: pub.Period, MemoryKB: pub.MemKB, Version: 1}
			sys.Apps = append(sys.Apps, &app)
			sys.Placement[app.Name] = pub.Home
		}
		for _, n := range sp.Reconfig.NDAs {
			asil := model.QM
			if n.ASIL == "B" {
				asil = model.ASILB
			}
			spec := model.App{Name: n.Name, Kind: model.NonDeterministic,
				ASIL: asil, MemoryKB: n.MemKB}
			inst, err := p.Node(n.Home).Install(spec, platform.Behavior{})
			if err != nil {
				panic(fmt.Sprintf("fuzz: install %s: %v", n.Name, err))
			}
			if err := inst.Start(); err != nil {
				panic(err)
			}
			specCopy := spec
			sys.Apps = append(sys.Apps, &specCopy)
			sys.Placement[spec.Name] = n.Home
		}
		if sp.Reconfig.InjectInstallFail {
			// Ghost apps: physically resident, invisible to the model.
			// Admission then approves moves whose physical install must
			// fail — every recovery is forced down the rollback path.
			for _, e := range sp.ECUs {
				node := p.Node(e.Name)
				free := e.MemKB - node.Memory().CommittedKB()
				if free <= 0 {
					continue
				}
				inst, err := node.Install(model.App{Name: "ghost-" + e.Name,
					Kind: model.NonDeterministic, ASIL: model.QM, MemoryKB: free},
					platform.Behavior{})
				if err != nil {
					panic(fmt.Sprintf("fuzz: ghost install: %v", err))
				}
				if err := inst.Start(); err != nil {
					panic(err)
				}
			}
		}
		var err error
		initialModel, err = model.MarshalJSONSystem(sys)
		if err != nil {
			panic(err)
		}
		ctrl := admission.NewController(sys)
		orc = reconfig.New(p, ctrl, reconfig.Config{
			CheckPeriod:      2 * sim.Millisecond,
			SilenceThreshold: 25 * sim.Millisecond,
			ReplanDelay:      sim.Millisecond,
			SettleTimeout:    100 * sim.Millisecond,
			Rehome:           true,
		})
		orc.SetObs(o)
		ecuNames := make([]string, 0, len(sp.ECUs))
		for _, e := range sp.ECUs {
			ecuNames = append(ecuNames, e.Name)
		}
		if err := orc.Watch(ecuNames...); err != nil {
			panic(err)
		}
		orc.Start()
	}

	// Run to the post-horizon tail, then audit the closed accounts
	// (property 4) while everything is still wired.
	tq := sim.Time(sp.Horizon + runTail)
	if camp != nil {
		if q := camp.QuiesceAt().Add(50 * sim.Millisecond); q > tq {
			tq = q
		}
	}
	k.RunUntil(tq)

	if ms != nil {
		if !ms.Conserved() {
			violate(PropConservation,
				"mesh account open at tail: offered=%d served=%d shed=%d dead=%d outstanding=%d",
				ms.Offered, ms.Served, ms.Shed, ms.DeadLettered, ms.Outstanding())
		}
		if ms.ShedProtected != 0 {
			violate(PropConservation, "%d protected-criticality calls shed", ms.ShedProtected)
		}
	}

	// Teardown: stop supervision, apps, the babbler, and every endpoint,
	// then let the kernel drain. Anything still live afterwards is a
	// leaked timer (property 5).
	if orc != nil {
		orc.Stop()
	}
	if platformOn {
		for _, ecuName := range p.Nodes() {
			node := p.Node(ecuName)
			for _, app := range node.Apps() {
				node.App(app).Stop()
			}
		}
	}
	if babbler != nil {
		babbler.Stop()
	}
	for _, ref := range tickerRefs {
		ref.Cancel()
	}
	deadBefore := mw.DeadLetters
	for _, app := range mw.Endpoints() {
		mw.RemoveEndpoint(app)
	}
	k.RunUntil(tq.Add(quiesceSettle))

	leaked := k.QueueLen()
	if ms != nil && !ms.Conserved() {
		violate(PropQuiesce,
			"mesh account drifted across teardown: offered=%d served=%d shed=%d dead=%d outstanding=%d",
			ms.Offered, ms.Served, ms.Shed, ms.DeadLettered, ms.Outstanding())
	}
	if leaked != 0 {
		// Step the leaked events to timestamp them — the fire times
		// usually name the guilty subsystem. This runs after every other
		// audit and fingerprint input has been captured.
		var fired []string
		for i := 0; i < 8 && k.QueueLen() > 0; i++ {
			k.Step()
			fired = append(fired, fmt.Sprint(k.Now()))
		}
		violate(PropQuiesce, "%d kernel events still live %v after teardown (fire times: %s)",
			leaked, quiesceSettle, strings.Join(fired, ", "))
	}

	// Reconfig rollback audit (property 6b).
	var finalModel []byte
	if orc != nil {
		var err error
		finalModel, err = model.MarshalJSONSystem(sys)
		if err != nil {
			panic(err)
		}
		allRolledBack := true
		for i, rec := range orc.Recoveries {
			if rec.RolledBack {
				if len(rec.Moves)+len(rec.Sheds)+len(rec.Stranded) != 0 {
					violate(PropRollback,
						"rolled-back recovery %d (%s) kept %d moves / %d sheds / %d stranded",
						i, rec.ECU, len(rec.Moves), len(rec.Sheds), len(rec.Stranded))
				}
				continue
			}
			if len(rec.Moves)+len(rec.Sheds)+len(rec.Stranded) > 0 {
				allRolledBack = false
			}
		}
		if sp.Reconfig.InjectInstallFail {
			if allRolledBack && len(orc.Rebalances) == 0 &&
				!bytes.Equal(finalModel, initialModel) {
				violate(PropRollback,
					"model changed although every recovery rolled back:\n--- before ---\n%s\n--- after ---\n%s",
					initialModel, finalModel)
			}
		} else {
			for i, rec := range orc.Recoveries {
				if rec.RolledBack {
					violate(PropRollback,
						"recovery %d (%s) rolled back with no install failure injected: model/platform drift",
						i, rec.ECU)
				}
			}
		}
	}

	// Fingerprint: every application-visible outcome, rendered
	// deterministically. Kernel internals and obs state are excluded on
	// purpose — the same fingerprint must come out of the wheel backend,
	// the heap backend, and fully observed runs.
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz spec seed=%d v=%d horizon=%v\n", sp.Seed, sp.Version, sp.Horizon)
	for i, pub := range sp.Pubs {
		st := pubs[i]
		fmt.Fprintf(&b, "pub %s: published=%d delivered=%d aux=%d misses=%d bitmap=%x",
			pub.App, st.published, st.delivered, st.auxDelivered, st.misses,
			bitmapHash(st.seen))
		if st.rel != nil {
			fmt.Fprintf(&b, " gaps=%d missing=%d recovered=%d unrecoverable=%d",
				st.rel.Gaps, st.rel.Missing, st.rel.Recovered, st.rel.Unrecoverable)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "mw: dead=%d qosmiss=%d stale=%d denied=%d retry=%d/%d/%d seqgaps=%d rec=%d unrec=%d\n",
		mw.DeadLetters, mw.QoSDeadlineMisses, mw.StalePublishes, mw.DeniedBindings,
		mw.RetryAttempts, mw.RetryRecovered, mw.RetryExhausted,
		mw.SeqGaps, mw.GapEventsRecovered, mw.GapEventsUnrecoverable)
	fmt.Fprintf(&b, "teardown dead-letters=%d\n", mw.DeadLetters-deadBefore)
	for _, svc := range mw.Services() {
		prov, ver, _ := mw.Find(svc)
		fmt.Fprintf(&b, "svc %s provider=%s v%d\n", svc, prov, ver)
	}
	fmt.Fprintf(&b, "attach: %s\n", strings.Join(mw.AttachOrder(), ","))
	for i, nf := range nets {
		fmt.Fprintf(&b, "net %d: dropped=%d corrupted=%d corruptdrop=%d blocked=%d babble=%d passed=%d\n",
			i, nf.FramesDropped, nf.FramesCorrupted, nf.CorruptDropped,
			nf.FramesBlocked, nf.BabbleFrames, nf.Passed)
	}
	if ms != nil {
		fmt.Fprintf(&b, "mesh: offered=%d served=%d shed=%d dead=%d prot=%d timeouts=%d retries=%d reroutes=%d trips=%d conserved=%v\n",
			ms.Offered, ms.Served, ms.Shed, ms.DeadLettered, ms.ShedProtected,
			ms.Timeouts, ms.Retries, ms.Reroutes, ms.BreakerTrips, ms.Conserved())
		for _, svc := range sp.Mesh.Services {
			for _, stat := range ms.InstanceStats(svc.Name) {
				fmt.Fprintf(&b, "inst %s@%s: dispatched=%d pending=%d\n",
					stat.App, stat.ECU, stat.Dispatched, stat.Pending)
			}
		}
	}
	if camp != nil {
		var lh = fnv.New64a()
		for _, r := range camp.Log {
			lh.Write([]byte(r.String()))
			lh.Write([]byte{'\n'})
		}
		fmt.Fprintf(&b, "campaign: injections=%d skipped=%d log=%d loghash=%x\n",
			camp.Injections(), camp.Skipped, len(camp.Log), lh.Sum64())
	}
	if sp.Update != nil {
		fmt.Fprintf(&b, "update: done=%v rolledback=%v from=%d to=%d synced=%d stamps=%d active=%s\n",
			updDone, updRep.RolledBack, updRep.From, updRep.To,
			updRep.SyncedKeys, len(updRep.Stamps), "")
	}
	if orc != nil {
		rolled, shed, stranded := 0, 0, 0
		for _, rec := range orc.Recoveries {
			if rec.RolledBack {
				rolled++
			}
			shed += len(rec.Sheds)
			stranded += len(rec.Stranded)
		}
		fmt.Fprintf(&b, "reconfig: recoveries=%d rolledback=%d shed=%d stranded=%d rebalances=%d modelhash=%x\n",
			len(orc.Recoveries), rolled, shed, stranded, len(orc.Rebalances),
			byteHash(finalModel))
	}
	fmt.Fprintf(&b, "quiesce: leaked=%d\n", leaked)
	res.fingerprint = b.String()

	// Observed runs also dump their artifacts (property 3 compares two
	// observed runs of the same seed byte-for-byte).
	if o != nil {
		o.SnapshotKernel(k)
		var tb bytes.Buffer
		if err := obs.WriteChromeTrace(&tb, []obs.Scope{{Name: "fuzz", Trace: o.Tracer()}}); err != nil {
			panic(err)
		}
		res.trace = tb.Bytes()
		var mb bytes.Buffer
		if err := o.Metrics().WriteText(&mb); err != nil {
			panic(err)
		}
		res.metrics = mb.Bytes()
	}
	return res
}

// updateStateFingerprint renders the update-scoped externally visible
// state: the logical app and its staged twin, the host's committed
// memory, the persistence store, endpoint registry, service discovery
// for the campaign's interfaces, and the active-version map. Rollback
// must leave this byte-identical to the pre-update capture.
func updateStateFingerprint(p *platform.Platform, mw *soa.Middleware,
	mgr *update.Manager, logical, newName string, ifaces []string) string {

	var b strings.Builder
	var host *platform.Node
	for _, name := range []string{logical, newName} {
		inst, node := p.FindApp(name)
		if inst == nil {
			fmt.Fprintf(&b, "app %s: absent\n", name)
			continue
		}
		if name == logical {
			host = node
		}
		fmt.Fprintf(&b, "app %s: v%d state=%v mem=%d\n",
			name, inst.Spec.Version, inst.State, inst.Spec.MemoryKB)
	}
	if host != nil {
		fmt.Fprintf(&b, "committed=%dKB\n", host.Memory().CommittedKB())
		for _, app := range []string{logical, newName} {
			for _, key := range host.Store().Keys(app) {
				v, _ := host.Store().Get(app, key)
				fmt.Fprintf(&b, "store %s/%s=%q\n", app, key, v)
			}
		}
	}
	for _, app := range []string{logical, newName} {
		fmt.Fprintf(&b, "endpoint %s: %v\n", app, mw.EndpointOf(app) != nil)
	}
	for _, iface := range ifaces {
		prov, ver, err := mw.Find(iface)
		if err != nil {
			fmt.Fprintf(&b, "iface %s: absent\n", iface)
			continue
		}
		fmt.Fprintf(&b, "iface %s: provider=%s v%d\n", iface, prov, ver)
	}
	fmt.Fprintf(&b, "active=%s\n", mgr.InstanceName(logical))
	return b.String()
}

// bitmapHash hashes a delivery bitmap.
func bitmapHash(seen []bool) uint64 {
	h := fnv.New64a()
	for _, s := range seen {
		if s {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// byteHash hashes an artifact.
func byteHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
