package fuzz

import (
	"fmt"
	"testing"
)

// Two Generate calls with the same seed must render identical specs —
// (Version, seed) is the entire reproduction handle.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Render() != b.Render() {
			t.Fatalf("seed %d: Generate is not a pure function of the seed", seed)
		}
	}
}

// Generated specs must satisfy the validity invariants run.go relies on.
func TestGenerateValid(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		sp := Generate(seed)
		ecus := map[string]bool{}
		for _, e := range sp.ECUs {
			ecus[e.Name] = true
			if e.MemKB <= 128 {
				t.Fatalf("seed %d: ECU %s undersized (%d KB)", seed, e.Name, e.MemKB)
			}
		}
		if len(sp.Pubs) == 0 {
			t.Fatalf("seed %d: no publishers", seed)
		}
		for _, p := range sp.Pubs {
			if !ecus[p.Home] {
				t.Fatalf("seed %d: pub %s homed on unknown ECU %s", seed, p.App, p.Home)
			}
			if p.AuxIface != "" && sp.Aux == nil {
				t.Fatalf("seed %d: pub %s dual-homed with no aux bus", seed, p.App)
			}
		}
		if sp.Mesh != nil {
			for _, svc := range sp.Mesh.Services {
				for _, h := range svc.Homes {
					if !ecus[h] {
						t.Fatalf("seed %d: service %s replica on unknown ECU %s", seed, svc.Name, h)
					}
				}
			}
		}
		if sp.Update != nil && sp.Reconfig != nil {
			t.Fatalf("seed %d: update and reconfig tiers are mutually exclusive", seed)
		}
		if len(sp.Migrations) > 0 && (sp.Update != nil || sp.Reconfig != nil) {
			t.Fatalf("seed %d: migrations in a platform tier", seed)
		}
		if sp.Reconfig != nil && sp.Campaign == nil {
			t.Fatalf("seed %d: reconfig tier without a fault campaign", seed)
		}
	}
}

// The full oracle must pass on clean seeds: every universal property
// holds on the unmutated stack. The wide sweep lives in scripts/verify.sh
// (dynafuzz -seeds 200); this keeps go test fast while still exercising
// all five runs per seed.
func TestOracleCleanSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rep := CheckSeed(seed)
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s: %s", seed, v.Property, v.Detail)
		}
	}
}

// Shrink must strip everything irrelevant to a failure predicate while
// preserving the failure itself.
func TestShrinkReduces(t *testing.T) {
	// Find a busy spec: mesh plus campaign plus a platform tier.
	var sp Spec
	found := false
	for seed := uint64(1); seed <= 500; seed++ {
		sp = Generate(seed)
		if sp.Mesh != nil && sp.Campaign != nil &&
			(sp.Update != nil || sp.Reconfig != nil) && len(sp.Pubs) > 1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no busy seed in 1..500 — generator distribution changed?")
	}
	// Pretend the bug needs only the mesh tier.
	failing := func(s Spec) bool { return s.Mesh != nil }
	shrunk := Shrink(sp, failing)
	if !failing(shrunk) {
		t.Fatal("shrink lost the failure")
	}
	if shrunk.Campaign != nil || shrunk.Update != nil || shrunk.Reconfig != nil {
		t.Errorf("shrink kept irrelevant tiers: campaign=%v update=%v reconfig=%v",
			shrunk.Campaign != nil, shrunk.Update != nil, shrunk.Reconfig != nil)
	}
	if len(shrunk.Pubs) != 1 {
		t.Errorf("shrink kept %d publishers, want 1", len(shrunk.Pubs))
	}
	if len(shrunk.Mesh.Streams) != 1 {
		t.Errorf("shrink kept %d streams, want 1", len(shrunk.Mesh.Streams))
	}
	if len(shrunk.ECUs) != 3 && len(sp.ECUs) > 3 {
		t.Errorf("shrink kept %d ECUs, want 3", len(shrunk.ECUs))
	}
}

// The oracle's verdict itself must be reproducible: same seed, same
// report rendering.
func TestCheckDeterministic(t *testing.T) {
	a, b := CheckSeed(3), CheckSeed(3)
	if fmt.Sprintf("%+v", a.Violations) != fmt.Sprintf("%+v", b.Violations) {
		t.Fatalf("oracle verdict differs between invocations:\n%v\n%v", a.Violations, b.Violations)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatal("fingerprint differs between oracle invocations")
	}
}
