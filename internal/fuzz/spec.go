// Package fuzz generates random-but-valid dynamic-platform scenarios as
// a pure function of one seed, runs them through the full stack (sim
// kernel, CAN/TSN, SOA middleware + mesh, fault campaigns, platform,
// staged updates, reconfig), and checks every scenario against the
// platform's universal properties (DESIGN.md §12):
//
//  1. re-run byte-identity
//  2. wheel-vs-heap-only kernel differential
//  3. observed-vs-plain neutrality + byte-identical artifacts
//  4. mesh conservation (offered == served + shed + dead-lettered)
//  5. no leaked timers / dead-letter drift at quiesce
//  6. rollback byte-identity (staged update + reconfig install failure)
//
// A failure reproduces from (generator version, seed) alone and is
// shrunk to a minimal failing spec before reporting (shrink.go).
package fuzz

import (
	"encoding/json"
	"fmt"

	"dynaplat/internal/sim"
)

// Version is the generator version. Bump it whenever Generate's draw
// sequence changes: a reproduction handle is (Version, Seed), and stored
// corpus seeds are only meaningful against the version that drew them.
const Version = 1

// Spec is a complete scenario description: pure serializable data, no
// live objects. Generate derives one from a seed; run.go executes it.
type Spec struct {
	Seed    uint64       `json:"seed"`
	Version int          `json:"version"`
	Horizon sim.Duration `json:"horizon"`

	// ECUs hosts publishers, mesh providers, and (platform tiers)
	// installed apps. Clients, the sink, spares, and the babbler are
	// separate stations and never fault-campaign targets.
	ECUs     []ECUSpec `json:"ecus"`
	Backbone NetSpec   `json:"backbone"`
	Aux      *NetSpec  `json:"aux,omitempty"`

	Pubs       []PubSpec       `json:"pubs"`
	Migrations []MigrationSpec `json:"migrations,omitempty"`

	Mesh     *MeshSpec     `json:"mesh,omitempty"`
	Campaign *CampaignSpec `json:"campaign,omitempty"`
	Update   *UpdateSpec   `json:"update,omitempty"`
	Reconfig *ReconfigSpec `json:"reconfig,omitempty"`
}

// ECUSpec is one faultable compute node.
type ECUSpec struct {
	Name   string `json:"name"`
	Zone   string `json:"zone"`
	CPUMHz int    `json:"cpu_mhz"`
	MemKB  int    `json:"mem_kb"`
}

// NetSpec is one bus. Kind is "can" or "tsn".
type NetSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	BPS  int64  `json:"bps"`
}

// PubSpec is one periodic publisher: a ticker-driven endpoint in plain
// scenarios, an installed deterministic app in platform tiers. The sink
// station subscribes and records a per-period delivery bitmap.
type PubSpec struct {
	App     string       `json:"app"`
	Home    string       `json:"home"`
	Iface   string       `json:"iface"`
	Period  sim.Duration `json:"period"`
	Payload int          `json:"payload"`
	WCET    sim.Duration `json:"wcet"`
	MemKB   int          `json:"mem_kb"`

	// QoSDeadline, when non-zero, supervises the sink's subscription.
	QoSDeadline sim.Duration `json:"qos_deadline,omitempty"`
	// Reliable publishes with sequence numbers; the sink subscribes
	// with gap detection and history re-request.
	Reliable bool `json:"reliable,omitempty"`
	// History is the provider's retained-sample depth (0 = none).
	History int `json:"history,omitempty"`
	// AuxIface, when non-empty, dual-homes the publisher: a second
	// interface offered on the aux network (requires Spec.Aux).
	AuxIface string `json:"aux_iface,omitempty"`
}

// MigrationSpec moves a publisher's endpoint to a spare station at a
// fixed instant (plain scenarios only — platform tiers own placement).
type MigrationSpec struct {
	App string       `json:"app"`
	To  string       `json:"to"`
	At  sim.Duration `json:"at"`
}

// MeshSpec is a replicated-service tier in the e24 shape.
type MeshSpec struct {
	Policy      int    `json:"policy"`  // soa.BalancePolicy
	Breaker     string `json:"breaker"` // "none", "default", "fast"
	QueueDepth  int    `json:"queue_depth"`
	Concurrency int    `json:"concurrency"`
	// Evict wires the campaign's ECU lifecycle into mesh routing.
	Evict bool `json:"evict,omitempty"`

	Services []MeshServiceSpec `json:"services"`
	Streams  []StreamSpec      `json:"streams"`
}

// MeshServiceSpec is one replicated service.
type MeshServiceSpec struct {
	Name  string       `json:"name"`
	Homes []string     `json:"homes"`
	Proc  sim.Duration `json:"proc"`
}

// StreamSpec is one client call stream. Crit is a soa.Criticality.
type StreamSpec struct {
	Service string `json:"service"`
	Client  string `json:"client"`
	Crit    int    `json:"crit"`
	Rate    int    `json:"rate"` // calls per virtual second
}

// CampaignSpec seeds a fault campaign plus network-level fault rates.
type CampaignSpec struct {
	MTBF        sim.Duration `json:"mtbf"`
	RepairMean  sim.Duration `json:"repair_mean"`
	RebootDelay sim.Duration `json:"reboot_delay"`
	WCrash      float64      `json:"w_crash"`
	WHang       float64      `json:"w_hang"`
	WSlow       float64      `json:"w_slow"`
	WReboot     float64      `json:"w_reboot"`

	Loss    float64 `json:"loss,omitempty"`
	Corrupt float64 `json:"corrupt,omitempty"`
	// Babble arms a babbling-idiot station on the backbone.
	Babble *BabbleSpec `json:"babble,omitempty"`
}

// BabbleSpec is one babbling-idiot stream.
type BabbleSpec struct {
	ID     uint32       `json:"id"`
	Bytes  int          `json:"bytes"`
	Period sim.Duration `json:"period"`
}

// UpdateSpec stages a verified update of the first publisher (platform
// tier). Bad images fail verification and must roll back
// byte-identically; ExtraIface ships a v2-only interface — the ghost-
// service shape rollback must not leak.
type UpdateSpec struct {
	Bad        bool         `json:"bad"`
	ExtraIface bool         `json:"extra_iface"`
	Start      sim.Duration `json:"start"`
	Soak       sim.Duration `json:"soak"`
}

// ReconfigSpec runs the self-healing orchestrator over the platform
// tier (implies a fault campaign). InjectInstallFail fills every node's
// free physical memory with ghost apps invisible to the admission
// model, so every recovery's physical install fails and must roll the
// model back byte-identically.
type ReconfigSpec struct {
	InjectInstallFail bool      `json:"inject_install_fail"`
	NDAs              []NDASpec `json:"ndas,omitempty"`
}

// NDASpec is one best-effort app in the reconfig tier's model.
type NDASpec struct {
	Name  string `json:"name"`
	Home  string `json:"home"`
	ASIL  string `json:"asil"` // "QM" or "B"
	MemKB int    `json:"mem_kb"`
}

// Render returns the spec as deterministic, indented JSON — the
// artifact dynafuzz reports for a shrunk failing scenario.
func (s Spec) Render() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Spec is plain data; MarshalIndent cannot fail on it.
		panic(fmt.Sprintf("fuzz: render spec: %v", err))
	}
	return string(b)
}

// Generate derives a scenario from (Version, seed) alone: every
// dimension is drawn from one seeded RNG stream, so the same seed
// always yields the same spec. Validity invariants (DESIGN.md §12):
// every referenced ECU/network/service exists, per-ECU deterministic
// utilization stays <= 0.5, ECU memory is sized to fit its apps plus
// replacement headroom, replicas live on distinct ECUs, and update /
// reconfig tiers are mutually exclusive (both own app lifecycles).
func Generate(seed uint64) Spec {
	rng := sim.NewRNG(seed)
	sp := Spec{Seed: seed, Version: Version}
	sp.Horizon = rng.DurationRange(250*sim.Millisecond, 450*sim.Millisecond)

	// Topology.
	necu := 3 + rng.Intn(4)
	for i := 0; i < necu; i++ {
		zone := "front"
		if i%2 == 1 {
			zone = "rear"
		}
		sp.ECUs = append(sp.ECUs, ECUSpec{
			Name: fmt.Sprintf("ecu%d", i), Zone: zone, CPUMHz: 100,
		})
	}
	sp.Backbone = drawNet(rng, "bb")
	if rng.Bool(0.35) {
		aux := drawNet(rng, "aux")
		sp.Aux = &aux
	}

	// Tier selection. Reconfig implies a campaign (failures to heal);
	// update and reconfig are mutually exclusive.
	wantMesh := rng.Bool(0.6)
	wantCampaign := rng.Bool(0.7)
	tier := rng.Intn(5) // 0,1: plain; 2: update; 3,4: reconfig
	wantUpdate := tier == 2
	wantReconfig := tier >= 3
	if wantReconfig {
		wantCampaign = true
	}

	// Publishers. Offered load is sized to the slowest bus a publisher
	// touches: a 500 kbit/s CAN backbone carries single-frame payloads at
	// tens-of-milliseconds periods or it saturates, and a saturated bus
	// never quiesces (the TX backlog outlives any fixed settle window).
	npub := 1 + rng.Intn(4)
	for i := 0; i < npub; i++ {
		p := PubSpec{
			App:   fmt.Sprintf("pub%d", i),
			Home:  sp.ECUs[i%necu].Name,
			Iface: fmt.Sprintf("pub%d.state", i),
			WCET:  rng.DurationRange(200*sim.Microsecond, 500*sim.Microsecond),
			MemKB: 32 + 16*rng.Intn(3),
		}
		if sp.Aux != nil && rng.Bool(0.5) {
			p.AuxIface = fmt.Sprintf("pub%d.aux", i)
		}
		canScale := sp.Backbone.Kind == "can" ||
			(p.AuxIface != "" && sp.Aux.Kind == "can")
		if canScale {
			p.Period = []sim.Duration{10, 20, 50}[rng.Intn(3)] * sim.Millisecond
			p.Payload = 4 + rng.Intn(5) // one CAN frame
		} else {
			p.Period = []sim.Duration{2, 5, 10}[rng.Intn(3)] * sim.Millisecond
			p.Payload = 8 + rng.Intn(57)
		}
		if rng.Bool(0.4) {
			p.QoSDeadline = 3 * p.Period
		}
		if rng.Bool(0.25) {
			p.Reliable = true
			p.History = 4
		} else if rng.Bool(0.2) {
			p.History = 2
		}
		sp.Pubs = append(sp.Pubs, p)
	}

	// Migrations: plain scenarios only — the platform tiers own app
	// placement. Dual-homed publishers are preferred so a migration
	// attaches the spare station to two networks at once (the attach-
	// order hazard surface).
	if !wantUpdate && !wantReconfig {
		nmig := rng.Intn(3)
		if nmig > npub {
			nmig = npub
		}
		var dual, single []int
		for i, p := range sp.Pubs {
			if p.AuxIface != "" {
				dual = append(dual, i)
			} else {
				single = append(single, i)
			}
		}
		order := append(dual, single...)
		for m := 0; m < nmig; m++ {
			sp.Migrations = append(sp.Migrations, MigrationSpec{
				App: sp.Pubs[order[m]].App,
				To:  fmt.Sprintf("mig%d", m),
				At:  rng.DurationRange(sp.Horizon/4, 3*sp.Horizon/4),
			})
		}
	}

	if wantMesh {
		sp.Mesh = drawMesh(rng, sp.ECUs, sp.Backbone.Kind)
	}
	if wantCampaign {
		sp.Campaign = drawCampaign(rng, sp.Horizon, wantUpdate || wantReconfig)
	}
	if wantUpdate {
		sp.Update = &UpdateSpec{
			Bad:        rng.Bool(0.5),
			ExtraIface: rng.Bool(0.5),
			Start:      sp.Horizon / 3,
			Soak:       sp.Horizon / 6,
		}
	}
	if wantReconfig {
		rc := &ReconfigSpec{InjectInstallFail: rng.Bool(0.5)}
		nnda := 1 + rng.Intn(3)
		for i := 0; i < nnda; i++ {
			asil := "QM"
			if rng.Bool(0.4) {
				asil = "B"
			}
			rc.NDAs = append(rc.NDAs, NDASpec{
				Name: fmt.Sprintf("nda%d", i),
				Home: sp.ECUs[(i+1)%necu].Name,
				ASIL: asil, MemKB: 32 + 16*rng.Intn(3),
			})
		}
		sp.Reconfig = rc
	}

	sizeMemory(&sp)
	return sp
}

// drawNet draws one bus spec.
func drawNet(rng *sim.RNG, name string) NetSpec {
	if rng.Bool(0.5) {
		return NetSpec{Name: name, Kind: "tsn",
			BPS: []int64{100_000_000, 1_000_000_000}[rng.Intn(2)]}
	}
	return NetSpec{Name: name, Kind: "can",
		BPS: []int64{500_000, 1_000_000}[rng.Intn(2)]}
}

// drawMesh draws the replicated-service tier. Stream rates scale with
// the backbone: a 500 kbit/s CAN bus saturates at call rates a TSN
// backbone shrugs off.
func drawMesh(rng *sim.RNG, ecus []ECUSpec, backboneKind string) *MeshSpec {
	m := &MeshSpec{
		Policy:      rng.Intn(3),
		Breaker:     []string{"none", "default", "fast"}[rng.Intn(3)],
		QueueDepth:  []int{0, 4, 8}[rng.Intn(3)],
		Concurrency: 1 + rng.Intn(2),
		Evict:       rng.Bool(0.5),
	}
	rates := []int{20, 40, 80}
	if backboneKind == "can" {
		rates = []int{5, 10}
	}
	nsvc := 1 + rng.Intn(3)
	replicas := 1 + rng.Intn(3)
	for s := 0; s < nsvc; s++ {
		svc := MeshServiceSpec{
			Name: fmt.Sprintf("svc%d", s),
			Proc: rng.DurationRange(sim.Millisecond, 4*sim.Millisecond),
		}
		off := rng.Intn(len(ecus))
		for r := 0; r < replicas; r++ {
			svc.Homes = append(svc.Homes, ecus[(off+r)%len(ecus)].Name)
		}
		m.Services = append(m.Services, svc)
		for _, cl := range []string{"cliF", "cliR"} {
			m.Streams = append(m.Streams, StreamSpec{
				Service: svc.Name, Client: cl,
				Crit: []int{3, 2, 0}[rng.Intn(3)], // ASILD, ASILB, QM
				Rate: rates[rng.Intn(len(rates))],
			})
		}
	}
	return m
}

// drawCampaign draws the fault-campaign tier. Repairs are always armed
// (RepairMean > 0) so quiesce audits have a bounded settle point.
func drawCampaign(rng *sim.RNG, horizon sim.Duration, platform bool) *CampaignSpec {
	c := &CampaignSpec{
		MTBF:        rng.DurationRange(horizon/8, horizon/2),
		RepairMean:  rng.DurationRange(20*sim.Millisecond, 80*sim.Millisecond),
		RebootDelay: rng.DurationRange(20*sim.Millisecond, 60*sim.Millisecond),
		WCrash:      0.5, WHang: 0.2, WReboot: 0.3,
	}
	if platform {
		// Slowdowns only bite where a CPU model exists.
		c.WSlow, c.WReboot = 0.1, 0.2
	}
	if rng.Bool(0.6) {
		c.Loss = rng.Float64() * 0.08
	}
	if rng.Bool(0.4) {
		c.Corrupt = rng.Float64() * 0.04
	}
	if rng.Bool(0.3) {
		c.Babble = &BabbleSpec{
			ID: 0x7F0, Bytes: 8,
			Period: rng.DurationRange(2*sim.Millisecond, 8*sim.Millisecond),
		}
	}
	return c
}

// sizeMemory sizes every ECU to fit its resident apps plus replacement
// headroom: a staged update doubles the target's footprint, and the
// reconfig tier needs room for any single re-placed app. The admission
// model mirrors these numbers exactly; InjectInstallFail later consumes
// the *physical* headroom with ghost apps the model cannot see.
func sizeMemory(sp *Spec) {
	resident := map[string]int{}
	for _, p := range sp.Pubs {
		resident[p.Home] += p.MemKB
	}
	if sp.Reconfig != nil {
		for _, n := range sp.Reconfig.NDAs {
			resident[n.Home] += n.MemKB
		}
	}
	for i := range sp.ECUs {
		mem := 128 + resident[sp.ECUs[i].Name] + 96
		if sp.Update != nil && sp.ECUs[i].Name == sp.Pubs[0].Home {
			mem += sp.Pubs[0].MemKB // parallel-install headroom
		}
		sp.ECUs[i].MemKB = mem
	}
}
