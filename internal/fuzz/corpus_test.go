package fuzz

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// corpusSeeds parses testdata/fuzzcorpus/seeds.txt: one seed per line,
// '#' starts a comment.
func corpusSeeds(t *testing.T) []uint64 {
	t.Helper()
	raw, err := os.ReadFile("../../testdata/fuzzcorpus/seeds.txt")
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	var seeds []uint64
	for lineNo, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		seed, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("corpus line %d: %v", lineNo+1, err)
		}
		seeds = append(seeds, seed)
	}
	if len(seeds) == 0 {
		t.Fatal("empty corpus")
	}
	return seeds
}

// Every corpus seed must stay clean under the full oracle — the corpus
// pins the scenarios that cover each tier (and any future seed that once
// reproduced a real bug).
func TestCorpusReplay(t *testing.T) {
	for _, seed := range corpusSeeds(t) {
		rep := CheckSeed(seed)
		for _, v := range rep.Violations {
			t.Errorf("corpus seed %d: %s: %s", seed, v.Property, v.Detail)
		}
	}
}
