package xil

import (
	"math"

	"dynaplat/internal/sim"
)

// Standard driving-cycle scenarios for the cruise function, standing in
// for the homologation cycles a real OEM test bench replays. Each returns
// a Scenario whose setpoint profiles speed over time.

// UrbanCycle is stop-and-go city driving: accelerate to 14 m/s, stop at a
// light, pull away again, with a 90-second horizon.
func UrbanCycle() Scenario {
	return Scenario{
		Name:     "urban-cycle",
		Duration: 90 * sim.Second,
		Setpoint: func(t sim.Time) float64 {
			switch {
			case t < sim.Time(30*sim.Second):
				return 14
			case t < sim.Time(45*sim.Second):
				return 0 // red light
			default:
				return 14
			}
		},
		SettleBand: 0.7,
	}
}

// HighwayCruise ramps onto the highway at 33 m/s and drops to 22 m/s for
// a construction zone.
func HighwayCruise() Scenario {
	return Scenario{
		Name:     "highway-cruise",
		Duration: 120 * sim.Second,
		Setpoint: func(t sim.Time) float64 {
			if t >= sim.Time(80*sim.Second) {
				return 22 // construction zone
			}
			return 33
		},
		SettleBand: 0.7,
	}
}

// NewAdaptiveCruisePID returns gains for profile tracking with braking
// authority: unlike the plain cruise PID (whose actuator floor is zero —
// it can only coast), the adaptive variant commands negative force, as a
// cruise system integrated with the brake actuator does.
func NewAdaptiveCruisePID() *PID {
	p := NewCruisePID()
	p.OutMin = -5000
	return p
}

// TrackingResult measures how well a run followed a changing profile.
type TrackingResult struct {
	// RMSError is the root-mean-square speed error over the run,
	// excluding an initial ramp-in window.
	RMSError float64
	// MaxError is the largest error after the ramp-in window.
	MaxError float64
}

// TrackProfile runs a MiL loop over the scenario and reports tracking
// quality, skipping the first rampIn of each setpoint change (a step
// change necessarily opens a transient error).
func TrackProfile(plant Plant, pid *PID, sc Scenario, cfg Config, rampIn sim.Duration) TrackingResult {
	var sumSq float64
	var n int
	var maxErr float64
	lastSetpoint := sc.Setpoint(0)
	changeAt := sim.Time(0)
	for t := sim.Time(0); t < sim.Time(sc.Duration); t = t.Add(cfg.ControlPeriod) {
		sp := sc.Setpoint(t)
		if sp != lastSetpoint {
			lastSetpoint = sp
			changeAt = t
		}
		u := pid.Step(sp, plant.Output(), cfg.ControlPeriod)
		plant.Step(u, cfg.ControlPeriod)
		if t.Sub(changeAt) < rampIn {
			continue
		}
		err := sp - plant.Output()
		if err < 0 {
			err = -err
		}
		sumSq += err * err
		n++
		if err > maxErr {
			maxErr = err
		}
	}
	res := TrackingResult{MaxError: maxErr}
	if n > 0 {
		res.RMSError = math.Sqrt(sumSq / float64(n))
	}
	return res
}
