// Package xil implements the X-in-the-loop testing harness of the
// paper's Section 2.4 (and reference [17]): the same control function is
// exercised at three test levels — Model-in-the-Loop (controller and
// plant coupled directly), Software-in-the-Loop (controller hosted as a
// deterministic app on the dynamic platform) and a HiL-equivalent level
// that additionally routes sensor and actuator signals over a simulated
// bus. Earlier levels run long before target hardware exists and are much
// cheaper per simulated second, which is exactly the shift-left argument
// the paper makes.
package xil

import (
	"fmt"
	"math"

	"dynaplat/internal/can"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// Level is the X in XiL.
type Level int

const (
	// MiL couples controller and plant directly.
	MiL Level = iota
	// SiL hosts the controller as a platform DA; signals stay ECU-local.
	SiL
	// HiL adds the communication system between sensor, controller and
	// actuator (our hardware substitute: the simulated CAN bus).
	HiL
)

func (l Level) String() string {
	switch l {
	case MiL:
		return "MiL"
	case SiL:
		return "SiL"
	case HiL:
		return "HiL"
	}
	return "unknown"
}

// Plant is a continuous process integrated at a fixed step.
type Plant interface {
	// Step advances the plant by dt under actuator input u.
	Step(u float64, dt sim.Duration)
	// Output returns the measured process variable.
	Output() float64
}

// Vehicle is a longitudinal vehicle model: u is traction force [N],
// output is speed [m/s]; quadratic drag plus rolling resistance.
type Vehicle struct {
	MassKg  float64
	DragCd  float64 // lumped 0.5*rho*cd*A
	Rolling float64 // rolling-resistance force
	V       float64
}

// NewVehicle returns a mid-size car model.
func NewVehicle() *Vehicle {
	return &Vehicle{MassKg: 1500, DragCd: 0.8, Rolling: 120}
}

// Step implements Plant.
func (v *Vehicle) Step(u float64, dt sim.Duration) {
	drag := v.DragCd*v.V*v.V + v.Rolling
	if v.V <= 0 && u < drag {
		drag = u // no reverse from resistance alone
	}
	acc := (u - drag) / v.MassKg
	v.V += acc * dt.Seconds()
	if v.V < 0 {
		v.V = 0
	}
}

// Output implements Plant.
func (v *Vehicle) Output() float64 { return v.V }

// PID is the controller under test.
type PID struct {
	Kp, Ki, Kd float64
	OutMin     float64
	OutMax     float64
	integ      float64
	prevErr    float64
	first      bool
}

// NewCruisePID returns gains tuned for the Vehicle plant at 10 ms steps.
func NewCruisePID() *PID {
	return &PID{Kp: 800, Ki: 120, Kd: 40, OutMin: 0, OutMax: 6000, first: true}
}

// Step computes the actuator command for a setpoint/measurement pair.
func (p *PID) Step(setpoint, measurement float64, dt sim.Duration) float64 {
	err := setpoint - measurement
	p.integ += err * dt.Seconds()
	d := 0.0
	if !p.first {
		d = (err - p.prevErr) / dt.Seconds()
	}
	p.first = false
	p.prevErr = err
	u := p.Kp*err + p.Ki*p.integ + p.Kd*d
	if u < p.OutMin {
		u = p.OutMin
	}
	if u > p.OutMax {
		u = p.OutMax
	}
	return u
}

// FaultKind selects an injected fault (Section 2.4: incremental testing
// must expose faults before the system prototype exists).
type FaultKind int

const (
	// FaultNone runs the nominal scenario.
	FaultNone FaultKind = iota
	// FaultSensorStuck freezes the measurement at its current value.
	FaultSensorStuck
	// FaultActuatorLoss zeroes the actuator command.
	FaultActuatorLoss
)

// Scenario is one test case.
type Scenario struct {
	Name     string
	Duration sim.Duration
	// Setpoint profiles the target speed over time.
	Setpoint func(t sim.Time) float64
	// Fault injects a fault at FaultAt.
	Fault   FaultKind
	FaultAt sim.Time
	// SettleBand is the ±band around the setpoint counted as settled.
	SettleBand float64
}

// CruiseStep returns a standard 0→25 m/s step scenario.
func CruiseStep() Scenario {
	return Scenario{
		Name:       "cruise-step-25",
		Duration:   60 * sim.Second,
		Setpoint:   func(sim.Time) float64 { return 25 },
		SettleBand: 0.5,
	}
}

// Result aggregates one run's verdict.
type Result struct {
	Level    Level
	Scenario string
	// Settled and SettlingTime report whether/when the output entered
	// and stayed in the settle band.
	Settled      bool
	SettlingTime sim.Duration
	Overshoot    float64
	SteadyErr    float64
	// FaultDetected and DetectionLatency report the residual monitor's
	// verdict on injected faults.
	FaultDetected    bool
	DetectionLatency sim.Duration
	// Events is the simulation-event cost of the run — the "speed"
	// axis of E13 (fewer events per simulated second = faster testing).
	Events uint64
}

// Config tunes the harness.
type Config struct {
	// ControlPeriod is the controller step (and DA period at SiL/HiL).
	ControlPeriod sim.Duration
	// ResidualThreshold flags a fault when |setpoint−measurement| stays
	// above it after the settling phase.
	ResidualThreshold float64
}

// DefaultConfig returns the standard 10 ms loop.
func DefaultConfig() Config {
	return Config{ControlPeriod: 10 * sim.Millisecond, ResidualThreshold: 3}
}

// Run executes a scenario at the given level and returns its result.
func Run(level Level, plant Plant, pid *PID, sc Scenario, cfg Config) (Result, error) {
	if sc.Duration <= 0 || cfg.ControlPeriod <= 0 {
		return Result{}, fmt.Errorf("xil: invalid scenario/config")
	}
	k := sim.NewKernel(1)
	res := Result{Level: level, Scenario: sc.Name}
	dt := cfg.ControlPeriod

	// Shared measurement state, possibly faulted.
	stuck := false
	stuckVal := 0.0
	actuatorDead := false
	if sc.Fault != FaultNone {
		k.At(sc.FaultAt, func() {
			switch sc.Fault {
			case FaultSensorStuck:
				stuck = true
				stuckVal = plant.Output()
			case FaultActuatorLoss:
				actuatorDead = true
			}
		})
	}
	measure := func() float64 {
		if stuck {
			return stuckVal
		}
		return plant.Output()
	}

	var settledAt sim.Time = -1
	peak := 0.0
	var lastMeas float64
	faultDetectedAt := sim.Time(-1)
	inBandSince := sim.Time(-1)

	evaluate := func(meas float64) {
		t := k.Now()
		sp := sc.Setpoint(t)
		lastMeas = meas
		if meas > peak {
			peak = meas
		}
		if math.Abs(sp-meas) <= sc.SettleBand {
			if inBandSince < 0 {
				inBandSince = t
			}
			if settledAt < 0 && t.Sub(inBandSince) >= 2*sim.Second {
				settledAt = inBandSince
			}
		} else {
			inBandSince = -1
			// Residual monitor: large error long after start.
			if t > sim.Time(20*sim.Second) && math.Abs(sp-meas) > cfg.ResidualThreshold &&
				faultDetectedAt < 0 {
				faultDetectedAt = t
			}
		}
	}

	apply := func(u float64) float64 {
		if actuatorDead {
			return 0
		}
		return u
	}

	switch level {
	case MiL:
		loop := k.Every(0, dt, func() {
			meas := measure()
			u := pid.Step(sc.Setpoint(k.Now()), meas, dt)
			plant.Step(apply(u), dt)
			evaluate(measure())
		})
		// The control loop ends with the scenario: stop the ticker so
		// it cannot outlive the bounded run below.
		defer loop.Stop()
	case SiL, HiL:
		// The controller runs as a deterministic app on a platform node.
		node := platform.NewNode(k, model.ECU{Name: "ecu", CPUMHz: 100,
			MemoryKB: 1024, HasMMU: true, OS: model.OSRTOS},
			platform.ModeIsolated, dt/10)
		var bus *can.Bus
		sensorDelay := func(fn func(float64)) { fn(measure()) }
		actuate := func(u float64) {
			plant.Step(apply(u), dt)
			evaluate(measure())
		}
		if level == HiL {
			bus = can.New(k, can.Config{Name: "hil", BitsPerSecond: 500_000})
			bus.Attach("sensor", func(network.Delivery) {})
			bus.Attach("ecu", func(network.Delivery) {})
			bus.Attach("act", func(network.Delivery) {})
			sensorDelay = func(fn func(float64)) {
				v := measure()
				bus.Attach("ecu", func(d network.Delivery) {
					if f, ok := d.Msg.Payload.(float64); ok {
						fn(f)
					}
				})
				bus.Send(network.Message{ID: 0x10, Src: "sensor", Dst: "ecu",
					Bytes: 8, Payload: v})
			}
			actuate = func(u float64) {
				bus.Attach("act", func(d network.Delivery) {
					if f, ok := d.Msg.Payload.(float64); ok {
						plant.Step(apply(f), dt)
						evaluate(measure())
					}
				})
				bus.Send(network.Message{ID: 0x20, Src: "ecu", Dst: "act",
					Bytes: 8, Payload: u})
			}
		}
		app := model.App{Name: "cruise", Kind: model.Deterministic,
			ASIL: model.ASILC, Period: dt, WCET: dt / 20, Deadline: dt, MemoryKB: 64}
		inst, err := node.Install(app, platform.Behavior{
			OnActivate: func(int64) {
				sensorDelay(func(meas float64) {
					u := pid.Step(sc.Setpoint(k.Now()), meas, dt)
					actuate(u)
				})
			},
		})
		if err != nil {
			return Result{}, err
		}
		if err := inst.Start(); err != nil {
			return Result{}, err
		}
	}

	k.RunUntil(sim.Time(sc.Duration))
	res.Events = k.EventCount
	sp := sc.Setpoint(k.Now())
	res.SteadyErr = math.Abs(sp - lastMeas)
	if settledAt >= 0 {
		res.Settled = true
		res.SettlingTime = settledAt.Sub(0)
	}
	if sp > 0 {
		res.Overshoot = (peak - sp) / sp
		if res.Overshoot < 0 {
			res.Overshoot = 0
		}
	}
	if faultDetectedAt >= 0 {
		res.FaultDetected = true
		if faultDetectedAt > sc.FaultAt {
			res.DetectionLatency = faultDetectedAt.Sub(sc.FaultAt)
		}
	}
	return res, nil
}
