package xil

import (
	"testing"

	"dynaplat/internal/sim"
)

func TestUrbanCycleTracking(t *testing.T) {
	res := TrackProfile(NewVehicle(), NewAdaptiveCruisePID(), UrbanCycle(),
		DefaultConfig(), 15*sim.Second)
	if res.RMSError > 1.0 {
		t.Errorf("urban RMS error = %.2f m/s", res.RMSError)
	}
	if res.MaxError > 3.0 {
		t.Errorf("urban max error = %.2f m/s", res.MaxError)
	}
}

func TestHighwayCruiseTracking(t *testing.T) {
	res := TrackProfile(NewVehicle(), NewAdaptiveCruisePID(), HighwayCruise(),
		DefaultConfig(), 35*sim.Second)
	if res.RMSError > 1.0 {
		t.Errorf("highway RMS error = %.2f m/s", res.RMSError)
	}
}

func TestProfilesChangeSetpoint(t *testing.T) {
	u := UrbanCycle()
	if u.Setpoint(0) != 14 || u.Setpoint(sim.Time(35*sim.Second)) != 0 ||
		u.Setpoint(sim.Time(60*sim.Second)) != 14 {
		t.Error("urban profile wrong")
	}
	h := HighwayCruise()
	if h.Setpoint(0) != 33 || h.Setpoint(sim.Time(90*sim.Second)) != 22 {
		t.Error("highway profile wrong")
	}
}

func TestUrbanCycleSettlesAtEveryLevel(t *testing.T) {
	// The stop-and-go cycle also runs through the full XiL harness (the
	// settle check applies to the final setpoint segment).
	for _, level := range []Level{MiL, SiL} {
		res, err := Run(level, NewVehicle(), NewAdaptiveCruisePID(), UrbanCycle(),
			DefaultConfig())
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if res.SteadyErr > 1.0 {
			t.Errorf("%v: steady error %.2f", level, res.SteadyErr)
		}
	}
}
