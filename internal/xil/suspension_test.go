package xil

import (
	"math"
	"testing"

	"dynaplat/internal/sim"
)

func potholeCar() *QuarterCar {
	q := NewQuarterCar()
	q.Road = Pothole(0.05, 500*sim.Millisecond, 600*sim.Millisecond)
	return q
}

func TestQuarterCarAtRestStaysAtRest(t *testing.T) {
	q := NewQuarterCar()
	for i := 0; i < 1000; i++ {
		q.Step(0, sim.Millisecond)
	}
	if math.Abs(q.BodyPosition()) > 1e-9 || math.Abs(q.Output()) > 1e-9 {
		t.Errorf("flat road moved the body: z=%v v=%v", q.BodyPosition(), q.Output())
	}
}

func TestQuarterCarRespondsToPothole(t *testing.T) {
	q := potholeCar()
	peak := 0.0
	for i := 0; i < 2000; i++ {
		q.Step(0, sim.Millisecond)
		if m := math.Abs(q.BodyPosition()); m > peak {
			peak = m
		}
	}
	if peak < 0.005 {
		t.Errorf("pothole barely moved the body: peak %vm", peak)
	}
	if peak > 0.2 {
		t.Errorf("unstable response: peak %vm", peak)
	}
}

func TestQuarterCarSettlesAfterDisturbance(t *testing.T) {
	q := potholeCar()
	for i := 0; i < 10000; i++ { // 10s, pothole long past
		q.Step(0, sim.Millisecond)
	}
	if math.Abs(q.Output()) > 0.005 {
		t.Errorf("body still moving 9s after pothole: v=%v", q.Output())
	}
}

func TestSkyhookImprovesComfort(t *testing.T) {
	period := sim.Millisecond
	dur := 5 * sim.Second

	passive := RideTest(potholeCar(), &Skyhook{Active: false}, dur, period)
	active := RideTest(potholeCar(), NewSkyhook(), dur, period)

	if passive.Steps != active.Steps || passive.Steps == 0 {
		t.Fatalf("steps: %d vs %d", passive.Steps, active.Steps)
	}
	if active.AccelRMS >= passive.AccelRMS {
		t.Errorf("skyhook did not improve comfort: active %.4f vs passive %.4f m/s²",
			active.AccelRMS, passive.AccelRMS)
	}
	// Meaningful improvement, not noise.
	if active.AccelRMS > 0.9*passive.AccelRMS {
		t.Errorf("improvement below 10%%: active %.4f passive %.4f",
			active.AccelRMS, passive.AccelRMS)
	}
}

func TestSkyhookForceClamped(t *testing.T) {
	s := NewSkyhook()
	if f := s.Force(100); f != -s.MaxF {
		t.Errorf("force = %v, want clamp at %v", f, -s.MaxF)
	}
	if f := s.Force(-100); f != s.MaxF {
		t.Errorf("force = %v, want clamp at %v", f, s.MaxF)
	}
}

func TestQuarterCarAsXiLPlant(t *testing.T) {
	// The quarter car satisfies the Plant interface, so the SiL level
	// can host a suspension controller like any other.
	q := potholeCar()
	ctl := NewSkyhook()
	sc := Scenario{
		Name:     "suspension-sil",
		Duration: 3 * sim.Second,
		// The "setpoint" for a suspension is zero body velocity.
		Setpoint:   func(sim.Time) float64 { return 0 },
		SettleBand: 0.05,
	}
	cfg := DefaultConfig()
	cfg.ControlPeriod = sim.Millisecond
	pid := &PID{Kp: ctl.CSky, OutMin: -ctl.MaxF, OutMax: ctl.MaxF, first: true}
	res, err := Run(SiL, q, pid, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Settled {
		t.Errorf("suspension did not settle at SiL: %+v", res)
	}
}
