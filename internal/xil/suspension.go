package xil

import (
	"math"

	"dynaplat/internal/sim"
)

// QuarterCar is the classic quarter-car suspension model: a sprung body
// mass over an unsprung wheel mass, connected by a spring, a passive
// damper and an active actuator; the wheel rides a road profile through
// the tire stiffness. The motor/suspension domain is the paper's example
// of a hard deterministic workload (Section 3.1), and this plant lets a
// suspension controller be tested at every XiL level.
type QuarterCar struct {
	// Masses [kg], stiffnesses [N/m], damping [Ns/m].
	BodyMass, WheelMass     float64
	SpringK, TireK, DamperC float64

	// Road returns the road height [m] at time t (set by the scenario).
	Road func(t sim.Duration) float64

	// State: body/wheel positions and velocities (relative to rest).
	zb, zbDot, zw, zwDot float64
	elapsed              sim.Duration

	// BodyAccel is the last computed body acceleration [m/s²] — ride
	// comfort is its RMS.
	BodyAccel float64
}

// NewQuarterCar returns a mid-size passenger-car corner.
func NewQuarterCar() *QuarterCar {
	return &QuarterCar{
		BodyMass:  300,
		WheelMass: 40,
		SpringK:   16_000,
		TireK:     160_000,
		DamperC:   400,
		Road:      func(sim.Duration) float64 { return 0 },
	}
}

// Step implements Plant: u is the active actuator force [N] between body
// and wheel (positive pushes them apart).
func (q *QuarterCar) Step(u float64, dt sim.Duration) {
	h := dt.Seconds()
	// Sub-step for numerical stability at control-period rates.
	const sub = 10
	h /= sub
	for i := 0; i < sub; i++ {
		q.elapsed += dt / sub
		road := q.Road(q.elapsed)
		springF := q.SpringK * (q.zw - q.zb)
		damperF := q.DamperC * (q.zwDot - q.zbDot)
		tireF := q.TireK * (road - q.zw)
		bodyAcc := (springF + damperF + u) / q.BodyMass
		wheelAcc := (tireF - springF - damperF - u) / q.WheelMass
		q.zb += q.zbDot * h
		q.zbDot += bodyAcc * h
		q.zw += q.zwDot * h
		q.zwDot += wheelAcc * h
		q.BodyAccel = bodyAcc
	}
}

// Output implements Plant: the measured body velocity [m/s], which a
// skyhook controller uses directly.
func (q *QuarterCar) Output() float64 { return q.zbDot }

// BodyPosition returns the body displacement [m].
func (q *QuarterCar) BodyPosition() float64 { return q.zb }

// Skyhook is the classic semi-active suspension law: the actuator
// emulates a damper fixed to the "sky", u = −C_sky · ż_body, clamped to
// the actuator authority.
type Skyhook struct {
	CSky   float64
	MaxF   float64
	lastU  float64
	Active bool
}

// NewSkyhook returns a tuned skyhook controller.
func NewSkyhook() *Skyhook { return &Skyhook{CSky: 4_000, MaxF: 3_000, Active: true} }

// Force computes the actuator command from the measured body velocity.
func (s *Skyhook) Force(bodyVel float64) float64 {
	if !s.Active {
		return 0
	}
	u := -s.CSky * bodyVel
	if u > s.MaxF {
		u = s.MaxF
	}
	if u < -s.MaxF {
		u = -s.MaxF
	}
	s.lastU = u
	return u
}

// Pothole returns a road profile with a rectangular pothole of the given
// depth [m] between start and end.
func Pothole(depth float64, start, end sim.Duration) func(sim.Duration) float64 {
	return func(t sim.Duration) float64 {
		if t >= start && t < end {
			return -depth
		}
		return 0
	}
}

// RideResult summarizes a suspension run.
type RideResult struct {
	// AccelRMS is the body-acceleration RMS [m/s²] — the comfort metric.
	AccelRMS float64
	// PeakBody is the maximum body displacement magnitude [m].
	PeakBody float64
	Steps    int
}

// RideTest runs the quarter car over a scenario road for duration at the
// control period, with or without the skyhook active, and returns the
// comfort metrics. It is a self-contained MiL loop; the full XiL levels
// reuse QuarterCar via the Plant interface.
func RideTest(q *QuarterCar, ctl *Skyhook, duration, period sim.Duration) RideResult {
	res := RideResult{}
	sumSq := 0.0
	for t := sim.Duration(0); t < duration; t += period {
		u := ctl.Force(q.Output())
		q.Step(u, period)
		sumSq += q.BodyAccel * q.BodyAccel
		if m := math.Abs(q.BodyPosition()); m > res.PeakBody {
			res.PeakBody = m
		}
		res.Steps++
	}
	if res.Steps > 0 {
		res.AccelRMS = math.Sqrt(sumSq / float64(res.Steps))
	}
	return res
}
