package xil

import (
	"testing"

	"dynaplat/internal/sim"
)

func TestVehiclePhysics(t *testing.T) {
	v := NewVehicle()
	// Full thrust accelerates.
	for i := 0; i < 100; i++ {
		v.Step(6000, 10*sim.Millisecond)
	}
	if v.V <= 0 {
		t.Fatalf("no acceleration: v = %v", v.V)
	}
	// Coasting decelerates but never reverses.
	for i := 0; i < 100000; i++ {
		v.Step(0, 10*sim.Millisecond)
	}
	if v.V != 0 {
		t.Errorf("coast-down should reach 0, got %v", v.V)
	}
}

func TestPIDClamps(t *testing.T) {
	p := NewCruisePID()
	u := p.Step(1000, 0, 10*sim.Millisecond)
	if u != p.OutMax {
		t.Errorf("u = %v, want clamp at %v", u, p.OutMax)
	}
	p2 := NewCruisePID()
	u2 := p2.Step(-1000, 0, 10*sim.Millisecond)
	if u2 != p2.OutMin {
		t.Errorf("u = %v, want clamp at %v", u2, p2.OutMin)
	}
}

func TestMiLCruiseSettles(t *testing.T) {
	res, err := Run(MiL, NewVehicle(), NewCruisePID(), CruiseStep(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Settled {
		t.Fatalf("cruise did not settle: %+v", res)
	}
	if res.SettlingTime <= 0 || res.SettlingTime > 40*sim.Second {
		t.Errorf("settling time = %v", res.SettlingTime)
	}
	if res.SteadyErr > 0.5 {
		t.Errorf("steady error = %v", res.SteadyErr)
	}
	if res.FaultDetected {
		t.Error("false positive fault detection")
	}
}

func TestAllLevelsSettleNominal(t *testing.T) {
	for _, level := range []Level{MiL, SiL, HiL} {
		res, err := Run(level, NewVehicle(), NewCruisePID(), CruiseStep(), DefaultConfig())
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if !res.Settled {
			t.Errorf("%v: did not settle (steady err %v)", level, res.SteadyErr)
		}
	}
}

func TestEventCostOrdering(t *testing.T) {
	// E13's speed axis: MiL must be cheapest, HiL most expensive.
	cost := map[Level]uint64{}
	for _, level := range []Level{MiL, SiL, HiL} {
		res, err := Run(level, NewVehicle(), NewCruisePID(), CruiseStep(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cost[level] = res.Events
	}
	if !(cost[MiL] < cost[SiL] && cost[SiL] < cost[HiL]) {
		t.Errorf("event cost ordering violated: MiL=%d SiL=%d HiL=%d",
			cost[MiL], cost[SiL], cost[HiL])
	}
}

func TestSensorStuckDetected(t *testing.T) {
	sc := CruiseStep()
	sc.Fault = FaultSensorStuck
	sc.FaultAt = sim.Time(5 * sim.Second) // during acceleration
	res, err := Run(MiL, NewVehicle(), NewCruisePID(), sc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FaultDetected {
		t.Fatalf("stuck sensor not detected: %+v", res)
	}
	if res.DetectionLatency <= 0 {
		t.Errorf("detection latency = %v", res.DetectionLatency)
	}
}

func TestActuatorLossDetected(t *testing.T) {
	sc := CruiseStep()
	sc.Fault = FaultActuatorLoss
	sc.FaultAt = sim.Time(30 * sim.Second) // after settling
	res, err := Run(MiL, NewVehicle(), NewCruisePID(), sc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FaultDetected {
		t.Fatalf("actuator loss not detected: %+v", res)
	}
}

func TestFaultDetectedAtEveryLevel(t *testing.T) {
	// The shift-left claim only helps if earlier levels catch the same
	// faults the expensive level does.
	sc := CruiseStep()
	sc.Fault = FaultSensorStuck
	sc.FaultAt = sim.Time(5 * sim.Second)
	for _, level := range []Level{MiL, SiL, HiL} {
		res, err := Run(level, NewVehicle(), NewCruisePID(), sc, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !res.FaultDetected {
			t.Errorf("%v: fault not detected", level)
		}
	}
}

func TestRunValidation(t *testing.T) {
	sc := CruiseStep()
	sc.Duration = 0
	if _, err := Run(MiL, NewVehicle(), NewCruisePID(), sc, DefaultConfig()); err == nil {
		t.Error("zero-duration scenario accepted")
	}
	cfg := DefaultConfig()
	cfg.ControlPeriod = 0
	if _, err := Run(MiL, NewVehicle(), NewCruisePID(), CruiseStep(), cfg); err == nil {
		t.Error("zero control period accepted")
	}
}
