package soa

import "fmt"

// Reliable subscriptions: the pub/sub half of the resilience layer.
// Publishers number their samples (PublishSeq); subscribers detect
// sequence gaps caused by frame loss, corruption-drops or provider
// outages and — when the provider retains history — re-request the
// missing samples over the wire. Recovered events are delivered late and
// flagged, so consumers distinguish "fresh" from "back-filled" data.

// gapReqBytes is the on-wire size of one re-request control message.
const gapReqBytes = 16

// PublishSeq publishes like Publish but stamps the event with the
// interface's auto-incrementing sequence number (shared with any Stream
// on the same interface is a caller error; use one numbering scheme per
// interface). It returns the sequence used.
func (e *Endpoint) PublishSeq(iface string, bytes int, payload any) uint32 {
	svc, ok := e.m.svcs[iface]
	if !ok {
		panic(fmt.Sprintf("soa: %s publishes unoffered interface %s", e.app, iface))
	}
	if svc.provider != e {
		// Stale provider during an update redirect: publish() drops the
		// sample, so the interface's sequence counter must NOT advance.
		// Burning sequence numbers here made the retained history
		// non-consecutive, which late-joining reliable subscribers then
		// misread as a wire gap (spurious re-requests). The stale
		// publication is still routed through publish() so it is
		// accounted in StalePublishes.
		e.publish(iface, 0, bytes, payload)
		return 0
	}
	seq := svc.pubSeq
	svc.pubSeq++
	e.publish(iface, seq, bytes, payload)
	return seq
}

// ReliableSub tracks one gap-supervised subscription.
type ReliableSub struct {
	ep    *Endpoint
	iface string

	started bool
	expect  uint32

	// Gaps counts discontinuity episodes; Missing the total missing
	// events; Recovered / Unrecoverable their re-request outcomes.
	Gaps          int64
	Missing       int64
	Recovered     int64
	Unrecoverable int64
}

// SubscribeReliable subscribes with sequence-gap detection on top of the
// usual QoS options. When reRequest is true and the provider retains
// history (EnableHistory), missing events are re-requested over the wire
// and delivered late with Event.Recovered set. Gap statistics accumulate
// on the returned ReliableSub and on the middleware counters.
func (e *Endpoint) SubscribeReliable(iface string, qos QoS, reRequest bool, fn func(Event)) (*ReliableSub, error) {
	rs := &ReliableSub{ep: e, iface: iface}
	if svc, ok := e.m.svcs[iface]; ok {
		// Anchor the expected sequence at subscription time. Historical
		// samples delivered for a late join carry sequences below this
		// anchor and are ignored by gap accounting (they are a courtesy
		// replay, not a wire loss); previously the first history sample
		// initialized the tracker and the jump to live traffic was
		// misflagged as a gap whenever history was non-contiguous with
		// the live stream.
		rs.started = true
		rs.expect = svc.pubSeq
	}
	wrapped := func(ev Event) {
		if ev.Recovered {
			fn(ev)
			return
		}
		rs.observe(ev, reRequest, fn)
		fn(ev)
	}
	if err := e.SubscribeQoS(iface, qos, wrapped); err != nil {
		return nil, err
	}
	return rs, nil
}

// observe advances the expected sequence and triggers re-requests.
func (rs *ReliableSub) observe(ev Event, reRequest bool, fn func(Event)) {
	m := rs.ep.m
	if !rs.started {
		rs.started = true
		rs.expect = ev.Seq + 1
		return
	}
	switch delta := ev.Seq - rs.expect; {
	case delta == 0:
		rs.expect = ev.Seq + 1
	case delta < 1<<31: // forward jump: delta events missing
		rs.Gaps++
		rs.Missing += int64(delta)
		m.SeqGaps++
		m.k.Trace("soa", "%s gap on %s: missing [%d,%d)", rs.ep.app, rs.iface, rs.expect, ev.Seq)
		if reRequest {
			rs.reRequest(rs.expect, ev.Seq, fn)
		} else {
			rs.Unrecoverable += int64(delta)
			m.GapEventsUnrecoverable += int64(delta)
		}
		rs.expect = ev.Seq + 1
	default:
		// Stale or duplicate (seq behind): ignore for gap accounting.
	}
}

// reRequest fetches [from, to) from the provider's history: one control
// message to the provider, then the found events ride back over the same
// interface's network path, delivered with Recovered set.
func (rs *ReliableSub) reRequest(from, to uint32, fn func(Event)) {
	m := rs.ep.m
	svc, ok := m.svcs[rs.iface]
	if !ok {
		return
	}
	want := int64(to - from)
	provider := svc.provider
	m.transfer(svc, rs.ep, provider, HeaderSize+gapReqBytes, func() {
		// Provider-side lookup at request arrival time.
		var found []Event
		for _, h := range svc.history {
			if h.Seq >= from && h.Seq < to {
				found = append(found, h)
			}
		}
		missing := want - int64(len(found))
		if missing > 0 {
			rs.Unrecoverable += missing
			m.GapEventsUnrecoverable += missing
		}
		if len(found) == 0 {
			return
		}
		total := 0
		for _, h := range found {
			total += HeaderSize + h.Bytes
		}
		m.transfer(svc, provider, rs.ep, total, func() {
			now := m.k.Now()
			for _, h := range found {
				ev := h
				ev.Delivered = now
				ev.Recovered = true
				rs.Recovered++
				m.GapEventsRecovered++
				fn(ev)
			}
		})
	})
}
