package soa

import (
	"fmt"
	"sort"

	"dynaplat/internal/network"
	"dynaplat/internal/obs"
	"dynaplat/internal/sim"
)

// Authorizer decides whether a client application may bind an interface.
// The security/auth package provides the model-derived implementation
// (Section 4.2); AllowAll is the permissive default.
type Authorizer interface {
	Authorize(client, iface string) bool
}

// AllowAll authorizes every binding.
type AllowAll struct{}

// Authorize implements Authorizer.
func (AllowAll) Authorize(string, string) bool { return true }

// ErrUnauthorized reports a binding rejected by the Authorizer.
type ErrUnauthorized struct{ Client, Iface string }

func (e *ErrUnauthorized) Error() string {
	return fmt.Sprintf("soa: %s is not authorized for %s", e.Client, e.Iface)
}

// ErrNoService reports a find/bind against an interface nobody offers.
type ErrNoService struct{ Iface string }

func (e *ErrNoService) Error() string { return fmt.Sprintf("soa: no provider offers %s", e.Iface) }

// LocalDelay is the IPC cost of same-ECU delivery.
const LocalDelay = 5 * sim.Microsecond

// Middleware is the communication core of the dynamic platform. One
// instance spans the whole vehicle (it is "logically located across
// multiple hardware elements", Section 1.1).
type Middleware struct {
	k    *sim.Kernel
	auth Authorizer
	nets map[string]*netInfo
	svcs map[string]*service
	eps  map[string]*Endpoint // by app name
	next struct {
		serviceID uint32
		session   uint32
	}

	// DeniedBindings counts authorization rejections.
	DeniedBindings int64
	// QoSDeadlineMisses counts supervised subscription-gap violations.
	QoSDeadlineMisses int64
	// StalePublishes counts publications by superseded providers that
	// were dropped during update redirects.
	StalePublishes int64
	// RPCTimeouts counts CallTimeout expirations.
	RPCTimeouts int64

	// Resilience counters (see retry.go and reliable.go).

	// RetryAttempts counts re-issued RPC attempts (excluding firsts).
	RetryAttempts int64
	// RetryRecovered counts calls that succeeded after >= 1 retry.
	RetryRecovered int64
	// RetryExhausted counts calls that failed after the retry policy
	// ran out of attempts or budget.
	RetryExhausted int64
	// DuplicatesSuppressed counts provider-side handler invocations
	// skipped because the session was already served (idempotent
	// retries: the cached response is replayed instead).
	DuplicatesSuppressed int64
	// SeqGaps counts sequence discontinuities observed by reliable
	// subscriptions; GapEventsRecovered / GapEventsUnrecoverable split
	// the missing events by re-request outcome.
	SeqGaps                int64
	GapEventsRecovered     int64
	GapEventsUnrecoverable int64
	// DeadLetters counts deliveries dropped because the subscribing
	// endpoint was unsubscribed or removed while the frame was in
	// flight (dropped-with-account, never delivered to a dead
	// subscriber).
	DeadLetters int64

	attachedStations map[string]bool
	// attachOrder records every station attachment as "net/ecu" in the
	// order ensureAttached performed it. Attach order is visible in
	// delivery dispatch and trace output, so differential oracles
	// (internal/fuzz) fingerprint it through AttachOrder to catch
	// iteration-order regressions mechanically.
	attachOrder []string

	// ecuDown marks ECUs silenced by a fault (crash/hang/reboot): their
	// providers stop answering service discovery until repair (see
	// SetECUDown and discovery.go). Routing layers above — the mesh —
	// additionally stop selecting instances hosted there.
	ecuDown map[string]bool

	// jitterSeed salts the per-session retry-jitter streams
	// (sessionJitter); fixed per middleware so jitter draws are a pure
	// function of (seed, session) regardless of global RNG ordering.
	jitterSeed uint64

	// o, when non-nil, receives metrics and publish→deliver spans
	// (see SetObs). All uses are nil-checked.
	o *obs.Obs

	// freeDel / freeSeg are free lists of pooled delivery and
	// segmentation records, so the publish→deliver hot path is
	// allocation-free in steady state (the kernel is single-threaded, so
	// plain intrusive lists suffice).
	freeDel *delivery
	freeSeg *segState

	// Service-discovery state (see discovery.go).
	sdToken   uint64
	sdWaiters map[uint64]func(sdOffer)
}

type netInfo struct {
	net network.Network
	mtu int
}

// service is one offered interface.
type service struct {
	name     string
	id       uint32
	provider *Endpoint
	class    network.Class
	netName  string // "" = local-only
	handler  Handler
	subs     []*subscription
	version  int

	// Latency samples enqueue→handler delivery for events and frames,
	// and round-trip time for RPC.
	Latency sim.Sample

	// History retention for late joiners (see qos.go).
	historyDepth int
	history      []Event

	// pubSeq numbers PublishSeq publications (gap detection,
	// reliable.go).
	pubSeq uint32

	// Cached observability instruments (created on first publish when
	// the middleware has an obs plane; nil otherwise).
	obsPub     *obs.Counter
	obsDeliver *obs.Counter
	obsDead    *obs.Counter
	obsLat     *obs.Histogram

	// served caches responses by session for idempotent retries
	// (bounded FIFO; see retry.go).
	served      map[uint32]servedResp
	servedOrder []uint32
}

// servedResp is one cached RPC response for duplicate suppression.
type servedResp struct {
	bytes   int
	payload any
}

// servedCap bounds the per-service duplicate-suppression cache. Sessions
// evicted here can in principle be re-executed by a very late retry;
// handlers relying on exactly-once beyond this window must deduplicate
// themselves.
const servedCap = 4096

type subscription struct {
	ep *Endpoint
	fn func(Event)
	// QoS deadline supervision (see qos.go).
	deadline       sim.Duration
	lastRx         sim.Time
	deadlineMisses int64
	// superRef is the currently armed supervision timer; canceled when
	// the subscription is dropped so no kernel event leaks.
	superRef sim.EventRef
	// gone marks the subscription as dropped (Unsubscribe /
	// RemoveEndpoint). In-flight deliveries check it and dead-letter
	// instead of invoking fn.
	gone bool
}

// drop marks the subscription dead and cancels its supervision timer.
func (s *subscription) drop() {
	s.gone = true
	if s.superRef.Pending() {
		s.superRef.Cancel()
	}
}

// Event is a delivered publication or stream frame.
type Event struct {
	Iface   string
	Seq     uint32
	Bytes   int
	Payload any
	// Published is when the producer published; Delivered is receipt.
	Published sim.Time
	Delivered sim.Time
	// Recovered marks an event back-filled by a reliable subscription's
	// re-request (reliable.go) rather than delivered fresh.
	Recovered bool
}

// Latency returns publish→delivery latency.
func (e Event) Latency() sim.Duration { return e.Delivered.Sub(e.Published) }

// Handler serves RPC requests: it receives the request payload and
// returns the response payload size and value, plus the virtual
// processing time the provider needs.
type Handler func(req any) (respBytes int, resp any, proc sim.Duration)

// New creates a middleware on the kernel with the given authorizer
// (nil means AllowAll).
func New(k *sim.Kernel, auth Authorizer) *Middleware {
	if auth == nil {
		auth = AllowAll{}
	}
	return &Middleware{
		k:         k,
		auth:      auth,
		nets:      map[string]*netInfo{},
		svcs:      map[string]*service{},
		eps:       map[string]*Endpoint{},
		sdWaiters: map[uint64]func(sdOffer){},
	}
}

// SetECUDown marks (or clears) an ECU as silenced by a fault. While
// down, its providers do not answer service discovery — neither the
// instant local-registry path nor the wire SOME/IP-SD path — so a
// Discover against a crashed provider times out instead of returning a
// stale listing. Fault campaigns drive this via Mesh.HookCampaign (or
// directly from their own OnInject/OnRepair hooks).
func (m *Middleware) SetECUDown(ecu string, down bool) {
	if m.ecuDown == nil {
		m.ecuDown = map[string]bool{}
	}
	m.ecuDown[ecu] = down
}

// ECUDown reports whether an ECU is currently marked down.
func (m *Middleware) ECUDown(ecu string) bool { return m.ecuDown[ecu] }

// SetJitterSeed salts the per-session retry-jitter streams. The default
// (zero) is valid; experiments set a distinct seed per run so jitter
// decorrelates across cells while staying reproducible.
func (m *Middleware) SetJitterSeed(seed uint64) { m.jitterSeed = seed }

// sessionJitter returns the seeded jitter stream of one RPC session.
// Each session gets its own splitmix-derived stream, so the draws a
// retrying call makes are independent of every other session's —
// interleaved retries consume nothing from a shared RNG, which keeps
// parallel experiment replays byte-identical (RunAllParallel).
func (m *Middleware) sessionJitter(session uint32) *sim.RNG {
	return sim.NewRNG(m.jitterSeed ^ 0x9E3779B97F4A7C15*uint64(session) ^ 0xD1B54A32D192ED03)
}

// SetAuthorizer swaps the binding authorizer (runtime permission updates,
// Section 4.2).
func (m *Middleware) SetAuthorizer(a Authorizer) {
	if a == nil {
		a = AllowAll{}
	}
	m.auth = a
}

// AddNetwork registers a simulated network and its MTU for payload
// segmentation.
func (m *Middleware) AddNetwork(n network.Network, mtu int) {
	if mtu <= 0 {
		panic("soa: MTU must be positive")
	}
	m.nets[n.Name()] = &netInfo{net: n, mtu: mtu}
}

// Endpoint registers (or returns) the endpoint for an application
// instance on an ECU. The middleware attaches the endpoint's station to
// every registered network lazily on first use.
func (m *Middleware) Endpoint(app, ecu string) *Endpoint {
	if ep, ok := m.eps[app]; ok {
		return ep
	}
	ep := &Endpoint{m: m, app: app, ecu: ecu}
	m.eps[app] = ep
	return ep
}

// EndpointOf returns an application's registered endpoint, or nil when
// the app never touched the middleware — unlike Endpoint it never
// creates one (the reconfig orchestrator uses it to migrate only the
// endpoints that exist).
func (m *Middleware) EndpointOf(app string) *Endpoint { return m.eps[app] }

// RemoveEndpoint tears an application's endpoint down: its offers vanish
// from discovery and its subscriptions are dropped (used when stopping or
// updating apps).
func (m *Middleware) RemoveEndpoint(app string) {
	ep, ok := m.eps[app]
	if !ok {
		return
	}
	delete(m.eps, app)
	for name, svc := range m.svcs {
		if svc.provider == ep {
			// The whole service vanishes: every remaining subscription
			// dies with it (supervision timers must not leak).
			for _, s := range svc.subs {
				s.drop()
			}
			delete(m.svcs, name)
			continue
		}
		kept := svc.subs[:0]
		for _, s := range svc.subs {
			if s.ep != ep {
				kept = append(kept, s)
			} else {
				s.drop()
			}
		}
		svc.subs = kept
	}
}

// Find looks an offered interface up (service discovery). It returns the
// provider app name and interface version.
func (m *Middleware) Find(iface string) (provider string, version int, err error) {
	svc, ok := m.svcs[iface]
	if !ok {
		return "", 0, &ErrNoService{Iface: iface}
	}
	return svc.provider.app, svc.version, nil
}

// Services returns the sorted names of all offered interfaces.
func (m *Middleware) Services() []string {
	out := make([]string, 0, len(m.svcs))
	for n := range m.svcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AttachOrder returns the station-attachment history ("net/ecu" per
// entry) in the order the attachments happened. The sequence is part of
// the externally visible behavior — it decides receiver registration
// order on every bus — so it must be a pure function of the scenario;
// internal/fuzz folds it into the run fingerprint.
func (m *Middleware) AttachOrder() []string {
	return append([]string(nil), m.attachOrder...)
}

// Endpoints returns the sorted names of all registered endpoints, so
// teardown code (quiesce audits) can remove every endpoint without
// tracking them separately.
func (m *Middleware) Endpoints() []string {
	out := make([]string, 0, len(m.eps))
	for n := range m.eps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ServiceLatency returns the latency sample recorded for an interface.
func (m *Middleware) ServiceLatency(iface string) *sim.Sample {
	if svc, ok := m.svcs[iface]; ok {
		return &svc.Latency
	}
	return &sim.Sample{}
}

// Endpoint is an application's port into the middleware.
type Endpoint struct {
	m   *Middleware
	app string
	ecu string

	attached map[string]bool // networks this station is attached to
	inflight map[uint32]func(Event)
}

// App returns the owning application name.
func (e *Endpoint) App() string { return e.app }

// ECU returns the hosting ECU name.
func (e *Endpoint) ECU() string { return e.ecu }

// Migrate moves the endpoint to another ECU (used by failover and DSE
// what-if simulation). Offered services keep their identity. The
// destination ECU's station is attached to every network the endpoint's
// offers use, so the migrated provider answers service discovery and
// publishes immediately — without waiting for a first transfer to attach
// it lazily.
func (e *Endpoint) Migrate(ecu string) {
	e.ecu = ecu
	// Attach in sorted network order: station attach order is visible in
	// delivery dispatch and trace output, so it must not follow map
	// iteration order.
	var nets []string
	for _, svc := range e.m.svcs {
		if svc.provider == e && svc.netName != "" {
			nets = append(nets, svc.netName)
		}
	}
	if !BugUnsortedMigrateAttach {
		sort.Strings(nets)
	}
	for _, name := range nets {
		e.m.ensureAttached(e.m.nets[name], ecu)
	}
}

// OfferOpts configures an offered interface.
type OfferOpts struct {
	// Class is the traffic class on the wire (default ClassPriority).
	Class network.Class
	// Network names the carrying network for cross-ECU consumers;
	// "" restricts the service to same-ECU consumers.
	Network string
	// Handler serves RPC requests (Message paradigm only).
	Handler Handler
	// Version is the interface contract version (default 1).
	Version int
}

// Offer publishes an interface into service discovery. Re-offering an
// interface updates its provider (used by staged updates).
func (e *Endpoint) Offer(iface string, opts OfferOpts) {
	if opts.Network != "" {
		if _, ok := e.m.nets[opts.Network]; !ok {
			panic(fmt.Sprintf("soa: offer %s on unregistered network %q", iface, opts.Network))
		}
	}
	if opts.Version == 0 {
		opts.Version = 1
	}
	svc, ok := e.m.svcs[iface]
	if !ok {
		e.m.next.serviceID++
		svc = &service{name: iface, id: e.m.next.serviceID}
		e.m.svcs[iface] = svc
	}
	svc.provider = e
	svc.class = opts.Class
	svc.netName = opts.Network
	svc.handler = opts.Handler
	svc.version = opts.Version
	if opts.Network != "" {
		// Attach eagerly so the provider's station answers discovery.
		e.m.ensureAttached(e.m.nets[opts.Network], e.ecu)
	}
	e.m.k.Trace("soa", "%s offers %s v%d on %q", e.app, iface, svc.version, opts.Network)
}

// Subscribe binds the endpoint to an Event or Stream interface. The
// binding is authorized first (Section 4.2); unauthorized bindings fail
// and are counted.
func (e *Endpoint) Subscribe(iface string, fn func(Event)) error {
	svc, ok := e.m.svcs[iface]
	if !ok {
		return &ErrNoService{Iface: iface}
	}
	if !e.m.auth.Authorize(e.app, iface) {
		e.m.DeniedBindings++
		e.m.k.Trace("soa", "DENIED subscribe %s -> %s", e.app, iface)
		return &ErrUnauthorized{Client: e.app, Iface: iface}
	}
	svc.subs = append(svc.subs, &subscription{ep: e, fn: fn})
	e.m.k.Trace("soa", "%s subscribed to %s", e.app, iface)
	return nil
}

// Unsubscribe removes this endpoint's subscriptions to iface.
func (e *Endpoint) Unsubscribe(iface string) {
	svc, ok := e.m.svcs[iface]
	if !ok {
		return
	}
	kept := svc.subs[:0]
	for _, s := range svc.subs {
		if s.ep != e {
			kept = append(kept, s)
		} else {
			s.drop()
		}
	}
	svc.subs = kept
}

// Publish sends bytes (with an opaque payload value) to every subscriber
// of an Event interface the endpoint owns.
func (e *Endpoint) Publish(iface string, bytes int, payload any) {
	e.publish(iface, 0, bytes, payload)
}

func (e *Endpoint) publish(iface string, seq uint32, bytes int, payload any) {
	svc, ok := e.m.svcs[iface]
	if !ok {
		panic(fmt.Sprintf("soa: %s publishes unoffered interface %s", e.app, iface))
	}
	if svc.provider != e {
		// A previous provider still emitting during an update's redirect
		// window (Section 3.2): traffic has been redirected, so the
		// stale publication is dropped, not delivered twice.
		e.m.StalePublishes++
		e.m.k.Trace("soa", "dropped stale publish of %s by %s", iface, e.app)
		return
	}
	now := e.m.k.Now()
	if e.m.o != nil {
		e.m.observePublish(svc, e)
	}
	if svc.historyDepth > 0 {
		svc.history = append(svc.history, Event{
			Iface: iface, Seq: seq, Bytes: bytes, Payload: payload, Published: now,
		})
		if len(svc.history) > svc.historyDepth {
			svc.history = svc.history[len(svc.history)-svc.historyDepth:]
		}
	}
	for _, sub := range svc.subs {
		d := e.m.getDelivery()
		d.svc = svc
		d.sub = sub
		d.ev = Event{Iface: iface, Seq: seq, Bytes: bytes, Payload: payload, Published: now}
		if e.m.o != nil {
			d.sp = e.m.o.T.Begin("soa", "deliver", "soa:"+iface, e.app+"->"+sub.ep.app)
		}
		e.m.transferCall(svc, e, sub.ep, HeaderSize+bytes, deliverEvent, d)
	}
}

// delivery is a pooled publish→deliver record: everything the delivery
// callback needs, flattened so the hot path schedules one pre-bound
// handler with a pooled pointer instead of a fresh closure plus a boxed
// Event per subscriber.
type delivery struct {
	m    *Middleware
	svc  *service
	sub  *subscription
	sp   obs.Span
	ev   Event
	next *delivery
}

func (m *Middleware) getDelivery() *delivery {
	if d := m.freeDel; d != nil {
		m.freeDel = d.next
		d.next = nil
		return d
	}
	return &delivery{m: m}
}

func (m *Middleware) putDelivery(d *delivery) {
	d.svc = nil
	d.sub = nil
	d.sp = obs.Span{}
	d.ev = Event{}
	d.next = m.freeDel
	m.freeDel = d
}

// deliverEvent completes one publish→deliver: it is the pre-bound
// delivery handler scheduled by publish via transferCall, receiving its
// pooled *delivery record. The record returns to the pool before the
// subscriber callback runs, so a callback that publishes re-uses it
// immediately.
func deliverEvent(arg any) {
	d := arg.(*delivery)
	m, svc, sub := d.m, d.svc, d.sub
	if sub.gone {
		// The subscriber was unsubscribed or removed while the frame
		// was in flight: drop with account, never invoke a dead
		// subscriber.
		m.DeadLetters++
		if svc.obsDead != nil {
			svc.obsDead.Inc()
		}
		if m.o != nil {
			m.o.Tracer().End("soa", "deliver", "soa:"+svc.name, d.sp, "dead-letter")
		}
		m.k.Trace("soa", "dead-lettered %s event for removed %s", svc.name, sub.ep.app)
		m.putDelivery(d)
		return
	}
	ev := d.ev
	ev.Delivered = m.k.Now()
	svc.Latency.AddDuration(ev.Latency())
	if svc.obsDeliver != nil {
		svc.obsDeliver.Inc()
		svc.obsLat.Observe(ev.Latency())
	}
	if m.o != nil {
		m.o.Tracer().End("soa", "deliver", "soa:"+svc.name, d.sp, "")
	}
	fn := sub.fn
	m.putDelivery(d)
	fn(ev)
}

// observePublish lazily wires the per-service instruments and counts one
// publication. Only called when an obs plane is installed.
func (m *Middleware) observePublish(svc *service, provider *Endpoint) {
	if svc.obsPub == nil {
		l := obs.Labels{Layer: "soa", ECU: provider.ecu, Iface: svc.name}
		reg := m.o.Metrics()
		svc.obsPub = reg.Counter("soa_publishes", l)
		svc.obsDeliver = reg.Counter("soa_deliveries", l)
		svc.obsDead = reg.Counter("soa_dead_letters", l)
		svc.obsLat = reg.Histogram("soa_deliver_latency", l)
	}
	svc.obsPub.Inc()
}

// SetObs installs (or clears, with nil) the observability plane. Metrics
// and spans are recorded only while a plane is installed; the disabled
// path costs one nil check per operation.
func (m *Middleware) SetObs(o *obs.Obs) {
	m.o = o
	for _, svc := range m.svcs {
		svc.obsPub, svc.obsDeliver, svc.obsDead, svc.obsLat = nil, nil, nil, nil
	}
}

// CallTimeout performs an RPC like Call but invokes onTimeout (instead
// of done) if the response has not arrived within d — the guard a client
// needs when its provider may be stopped or updated mid-call.
func (e *Endpoint) CallTimeout(iface string, reqBytes int, req any,
	d sim.Duration, done func(Event), onTimeout func()) error {
	if d <= 0 {
		return fmt.Errorf("soa: non-positive RPC timeout")
	}
	fired := false
	ref := e.m.k.After(d, func() {
		if fired {
			return
		}
		fired = true
		e.m.RPCTimeouts++
		if onTimeout != nil {
			onTimeout()
		}
	})
	return e.Call(iface, reqBytes, req, func(ev Event) {
		if fired {
			return // too late; the caller already handled the timeout
		}
		fired = true
		ref.Cancel()
		if done != nil {
			done(ev)
		}
	})
}

// Call performs the Message (RPC) paradigm: request to the provider,
// response back. done receives the response event. The call is
// authorized like a subscription.
func (e *Endpoint) Call(iface string, reqBytes int, req any, done func(Event)) error {
	return e.call(iface, 0, reqBytes, req, done)
}

// call is the shared RPC core. dedupe, when non-zero, identifies a
// logical call across retries: the provider executes the handler once
// per session and replays the cached response for duplicates, so a
// retried request whose original was delivered (but whose response was
// lost) does not re-execute side effects.
func (e *Endpoint) call(iface string, dedupe uint32, reqBytes int, req any, done func(Event)) error {
	svc, ok := e.m.svcs[iface]
	if !ok {
		return &ErrNoService{Iface: iface}
	}
	if !e.m.auth.Authorize(e.app, iface) {
		e.m.DeniedBindings++
		e.m.k.Trace("soa", "DENIED call %s -> %s", e.app, iface)
		return &ErrUnauthorized{Client: e.app, Iface: iface}
	}
	if svc.handler == nil {
		return fmt.Errorf("soa: interface %s has no RPC handler", iface)
	}
	e.m.next.session++
	start := e.m.k.Now()
	provider := svc.provider
	respond := func(respBytes int, resp any, proc sim.Duration) {
		e.m.k.After(proc, func() {
			e.m.transfer(svc, provider, e, HeaderSize+respBytes, func() {
				now := e.m.k.Now()
				svc.Latency.AddDuration(now.Sub(start))
				if done != nil {
					done(Event{Iface: iface, Bytes: respBytes, Payload: resp,
						Published: start, Delivered: now})
				}
			})
		})
	}
	e.m.transfer(svc, e, provider, HeaderSize+reqBytes, func() {
		if dedupe != 0 {
			if cached, ok := svc.served[dedupe]; ok {
				// Idempotency via the session number: the handler already
				// ran for this logical call; replay its response without
				// re-executing (and without re-paying processing time).
				e.m.DuplicatesSuppressed++
				e.m.k.Trace("soa", "suppressed duplicate session %d of %s", dedupe, iface)
				respond(cached.bytes, cached.payload, 0)
				return
			}
		}
		respBytes, resp, proc := svc.handler(req)
		if proc < 0 {
			proc = 0
		}
		if dedupe != 0 {
			if svc.served == nil {
				svc.served = map[uint32]servedResp{}
			}
			svc.served[dedupe] = servedResp{bytes: respBytes, payload: resp}
			svc.servedOrder = append(svc.servedOrder, dedupe)
			if len(svc.servedOrder) > servedCap {
				delete(svc.served, svc.servedOrder[0])
				svc.servedOrder = svc.servedOrder[1:]
			}
		}
		respond(respBytes, resp, proc)
	})
	return nil
}

// transfer moves n wire bytes from src to dst endpoint, invoking done at
// full delivery. Same-ECU transfers cost LocalDelay; cross-ECU transfers
// are segmented to the network MTU and ride the simulated network.
func (m *Middleware) transfer(svc *service, src, dst *Endpoint, wireBytes int, done func()) {
	m.transferCall(svc, src, dst, wireBytes, callDone, done)
}

// callDone invokes a plain func() carried as a transferCall argument
// (func values are pointer-shaped, so the conversion does not allocate).
func callDone(arg any) { arg.(func())() }

// transferCall is transfer with a pre-bound completion: fn(arg) runs at
// full delivery. The local fast path schedules it closure-free via
// AfterCall; the cross-ECU path rides the simulated network, segmented
// to the MTU, with a pooled countdown record shared by the segments.
func (m *Middleware) transferCall(svc *service, src, dst *Endpoint, wireBytes int, fn func(any), arg any) {
	if src.ecu == dst.ecu {
		m.k.AfterCall(LocalDelay, fn, arg)
		return
	}
	if svc.netName == "" {
		panic(fmt.Sprintf("soa: interface %s is local-only but %s(%s) -> %s(%s)",
			svc.name, src.app, src.ecu, dst.app, dst.ecu))
	}
	ni := m.nets[svc.netName]
	m.ensureAttached(ni, src.ecu)
	m.ensureAttached(ni, dst.ecu)
	segments := (wireBytes + ni.mtu - 1) / ni.mtu
	if segments == 0 {
		segments = 1
	}
	st := m.getSeg()
	st.remaining = segments
	st.fn = fn
	st.arg = arg
	for i := 0; i < segments; i++ {
		bytes := ni.mtu
		if i == segments-1 {
			bytes = wireBytes - (segments-1)*ni.mtu
		}
		ni.net.Send(network.Message{
			ID:      svc.id,
			Src:     src.ecu,
			Dst:     dst.ecu,
			Class:   svc.class,
			Bytes:   bytes,
			Payload: st,
		})
	}
}

// segState is a pooled per-transfer countdown shared by a transfer's
// segments as their network payload; the last segment to arrive fires
// the completion and recycles the record.
type segState struct {
	remaining int
	fn        func(any)
	arg       any
	next      *segState
}

func (m *Middleware) getSeg() *segState {
	if st := m.freeSeg; st != nil {
		m.freeSeg = st.next
		st.next = nil
		return st
	}
	return &segState{}
}

func (m *Middleware) putSeg(st *segState) {
	st.fn = nil
	st.arg = nil
	st.next = m.freeSeg
	m.freeSeg = st
}

// ensureAttached attaches an ECU station to a network on first use. The
// receiver dispatches segment completions.
func (m *Middleware) ensureAttached(ni *netInfo, ecu string) {
	key := ni.net.Name() + "/" + ecu
	if m.attachedStations == nil {
		m.attachedStations = map[string]bool{}
	}
	if m.attachedStations[key] {
		return
	}
	m.attachedStations[key] = true
	m.attachOrder = append(m.attachOrder, key)
	ni.net.Attach(ecu, func(d network.Delivery) {
		if m.handleSD(ecu, d) {
			return
		}
		if st, ok := d.Msg.Payload.(*segState); ok {
			st.remaining--
			if st.remaining == 0 {
				fn, arg := st.fn, st.arg
				m.putSeg(st)
				fn(arg)
			}
		}
	})
}
