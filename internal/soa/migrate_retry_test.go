package soa

import (
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
	"dynaplat/internal/tsn"
)

// Satellite: Endpoint.Migrate of an RPC provider mid-CallRetry. The
// reconfig orchestrator re-homes providers while clients may be inside a
// retry ladder; the session-keyed dedupe cache is per *service*, not per
// ECU, so a retried request reaching the provider's new home must never
// re-execute the handler when the original request was already served.

// dropNet wraps a network and silently discards every message addressed
// to a station in dropDst — a deterministic stand-in for one-way loss
// (e.g. only the response leg of an RPC disappearing).
type dropNet struct {
	inner   network.Network
	dropDst map[string]bool
	dropped int
}

func (d *dropNet) Name() string                               { return d.inner.Name() }
func (d *dropNet) Attach(station string, rx network.Receiver) { d.inner.Attach(station, rx) }
func (d *dropNet) Send(msg network.Message) {
	if d.dropDst[msg.Dst] {
		d.dropped++
		return
	}
	d.inner.Send(msg)
}

type migrateRig struct {
	k           *sim.Kernel
	mw          *Middleware
	dn          *dropNet
	srv, cli    *Endpoint
	handlerRuns int
}

func newMigrateRig(seed uint64) *migrateRig {
	k := sim.NewKernel(seed)
	dn := &dropNet{
		inner:   tsn.New(k, tsn.DefaultConfig("backbone")),
		dropDst: map[string]bool{},
	}
	mw := New(k, nil)
	mw.AddNetwork(dn, 1400)
	r := &migrateRig{k: k, mw: mw, dn: dn}
	r.srv = mw.Endpoint("server", "ecu1")
	r.cli = mw.Endpoint("client", "ecu2")
	r.srv.Offer("cfg.get", OfferOpts{Network: "backbone",
		Handler: func(any) (int, any, sim.Duration) {
			r.handlerRuns++
			return 16, "v42", 100 * sim.Microsecond
		}})
	return r
}

// noJitterPolicy keeps the retry schedule exact so the test can place
// the migration precisely between the first timeout and the retry.
func noJitterPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, Backoff: 2 * sim.Millisecond, Multiplier: 2}
}

// TestMigrateMidRetryResponseLost: the first request is delivered and
// served, but the response is lost; the provider migrates before the
// retry. The duplicate request must hit the served-session cache at the
// provider's new home — handler exactly once, response replayed.
func TestMigrateMidRetryResponseLost(t *testing.T) {
	r := newMigrateRig(7)
	// Requests to ecu1 pass; responses back to the client are dropped.
	r.dn.dropDst["ecu2"] = true

	var got []Event
	failed := false
	err := r.cli.CallRetry("cfg.get", 32, nil, 5*sim.Millisecond, noJitterPolicy(),
		func(ev Event) { got = append(got, ev) }, func() { failed = true })
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1 times out at 5 ms; the retry fires at 7 ms. In between,
	// heal the wire and migrate the provider to a brand-new ECU — the
	// exact window a reconfig re-placement hits a mid-flight call.
	r.k.At(sim.Time(6*sim.Millisecond), func() {
		delete(r.dn.dropDst, "ecu2")
		r.srv.Migrate("ecu3")
	})
	r.k.Run()

	if failed || len(got) != 1 {
		t.Fatalf("done=%d failed=%v, want exactly one response", len(got), failed)
	}
	if got[0].Payload != "v42" {
		t.Errorf("payload = %v, want replay of the original response", got[0].Payload)
	}
	if r.handlerRuns != 1 {
		t.Errorf("handler ran %d times across the migration, want exactly 1", r.handlerRuns)
	}
	if r.mw.DuplicatesSuppressed != 1 {
		t.Errorf("DuplicatesSuppressed = %d, want 1 (retry served from cache)",
			r.mw.DuplicatesSuppressed)
	}
	if r.mw.RPCTimeouts != 1 || r.mw.RetryAttempts != 1 || r.mw.RetryRecovered != 1 {
		t.Errorf("timeouts=%d attempts=%d recovered=%d, want 1/1/1",
			r.mw.RPCTimeouts, r.mw.RetryAttempts, r.mw.RetryRecovered)
	}
	if r.dn.dropped == 0 {
		t.Error("loss injection inert — the first response was never dropped")
	}
	if !r.mw.attachedStations["backbone/ecu3"] {
		t.Error("migrated provider's station not attached")
	}
}

// TestMigrateMidRetryRequestLost: the mirror case — the first *request*
// never reaches the provider, so nothing was served before the
// migration. The retry re-resolves the provider at its new home and the
// handler runs there exactly once, with no duplicate to suppress.
func TestMigrateMidRetryRequestLost(t *testing.T) {
	r := newMigrateRig(7)
	// Drop the request leg: nothing addressed to the provider arrives.
	r.dn.dropDst["ecu1"] = true

	var got []Event
	failed := false
	err := r.cli.CallRetry("cfg.get", 32, nil, 5*sim.Millisecond, noJitterPolicy(),
		func(ev Event) { got = append(got, ev) }, func() { failed = true })
	if err != nil {
		t.Fatal(err)
	}
	r.k.At(sim.Time(6*sim.Millisecond), func() {
		delete(r.dn.dropDst, "ecu1")
		r.srv.Migrate("ecu3")
	})
	r.k.Run()

	if failed || len(got) != 1 {
		t.Fatalf("done=%d failed=%v, want exactly one response", len(got), failed)
	}
	if r.handlerRuns != 1 {
		t.Errorf("handler ran %d times, want exactly 1 (at the new home)", r.handlerRuns)
	}
	if r.mw.DuplicatesSuppressed != 0 {
		t.Errorf("DuplicatesSuppressed = %d, want 0 (original request was lost)",
			r.mw.DuplicatesSuppressed)
	}
	if r.mw.RetryRecovered != 1 {
		t.Errorf("RetryRecovered = %d, want 1", r.mw.RetryRecovered)
	}
}
