package soa

import (
	"dynaplat/internal/sim"
)

// Circuit breakers guard every client→instance edge of the service mesh
// (mesh.go). A crashed, hung or partitioned provider instance surfaces
// to its callers as per-attempt timeouts; without a breaker each caller
// keeps burning full timeout windows on the dead edge. The breaker
// watches a sliding window of attempt outcomes, opens the edge when the
// failure rate crosses the configured threshold, and probes it again
// after a virtual-time cool-down — so retries route around the dead
// instance instead of queueing behind it, and recovered instances are
// re-admitted by a single successful probe rather than by luck.
//
// Everything is kernel-resident and deterministic: state transitions
// happen on attempt outcomes and on one sim timer (open→half-open),
// whose EventRef is kept on the breaker for the droppedref lifecycle
// contract (DESIGN.md §8).

// BreakerState is the circuit-breaker state machine position.
type BreakerState uint8

const (
	// BreakerClosed passes calls and records their outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects the edge until the reopen timer fires.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe call; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// BreakerConfig tunes the per-edge circuit breakers of a mesh.
type BreakerConfig struct {
	// Window is the sliding outcome window length (attempts).
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// failure rate is considered meaningful.
	MinSamples int
	// FailureRate opens the breaker when failures/window reaches it.
	FailureRate float64
	// OpenFor is the open→half-open cool-down in virtual time.
	OpenFor sim.Duration
}

// DefaultBreakerConfig returns an 8-attempt window, 4 minimum samples,
// a 50% trip threshold and a 40 ms cool-down.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Window: 8, MinSamples: 4, FailureRate: 0.5, OpenFor: 40 * sim.Millisecond}
}

func (c BreakerConfig) normalized() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 40 * sim.Millisecond
	}
	return c
}

// Breaker is the circuit breaker of one client→instance edge. Created
// lazily by the mesh on first dispatch over the edge; survives provider
// migration because the edge is keyed by application identity, not ECU
// (an instance that moves home keeps its breaker window and state).
type Breaker struct {
	ms   *Mesh
	inst *meshInstance
	// client is the calling application (edge identity with inst).
	client string

	cfg   BreakerConfig
	state BreakerState

	// ring is the sliding outcome window (true = failure).
	ring  []bool
	ringN int // outcomes recorded (saturates at len(ring))
	ringI int // next write position
	fails int // failures currently in the window

	// probing marks the single admitted half-open probe in flight.
	probing bool
	trips   int64

	// reopenRef is the armed open→half-open transition timer. The
	// handler is a durable method value, so the ref is kept here —
	// the droppedref contract (DESIGN.md §8) — and canceled if the
	// mesh tears the edge down.
	reopenRef sim.EventRef
}

func newBreaker(ms *Mesh, client string, inst *meshInstance, cfg BreakerConfig) *Breaker {
	return &Breaker{
		ms: ms, inst: inst, client: client,
		cfg:  cfg.normalized(),
		ring: make([]bool, cfg.normalized().Window),
	}
}

// State returns the current state machine position.
func (b *Breaker) State() BreakerState { return b.state }

// Trips counts closed→open (and half-open→open) transitions.
func (b *Breaker) Trips() int64 { return b.trips }

// Window returns the recorded outcome count and the failures among them.
func (b *Breaker) Window() (samples, failures int) { return b.ringN, b.fails }

// Probing reports whether the half-open probe slot is taken.
func (b *Breaker) Probing() bool { return b.probing }

// push records one outcome into the sliding window.
func (b *Breaker) push(failure bool) {
	if b.ringN == len(b.ring) {
		if b.ring[b.ringI] {
			b.fails--
		}
	} else {
		b.ringN++
	}
	b.ring[b.ringI] = failure
	if failure {
		b.fails++
	}
	b.ringI = (b.ringI + 1) % len(b.ring)
}

// resetWindow clears the outcome window (on close).
func (b *Breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringN, b.ringI, b.fails = 0, 0, 0
}

// success records a completed attempt over the edge.
func (b *Breaker) success(probe bool) {
	switch b.state {
	case BreakerClosed:
		b.push(false)
	case BreakerHalfOpen:
		if probe {
			// The probe came back: the instance is reachable again.
			b.close()
		}
	case BreakerOpen:
		// A straggler response from before the trip: the timer decides.
	}
}

// failure records a failed attempt (per-try timeout or synchronous
// dispatch error) over the edge.
func (b *Breaker) failure(probe bool) {
	switch b.state {
	case BreakerClosed:
		b.push(true)
		if b.ringN >= b.cfg.MinSamples &&
			float64(b.fails) >= b.cfg.FailureRate*float64(b.ringN) {
			b.trip()
		}
	case BreakerHalfOpen:
		if probe {
			// The probe died too: back to open for another cool-down.
			b.trip()
		}
	case BreakerOpen:
		// Stragglers from pre-trip dispatches change nothing.
	}
}

// trip opens the edge and arms the half-open transition timer.
func (b *Breaker) trip() {
	from := b.state
	b.state = BreakerOpen
	b.probing = false
	b.trips++
	if b.reopenRef.Pending() {
		b.reopenRef.Cancel()
	}
	b.reopenRef = b.ms.k.After(b.cfg.OpenFor, b.halfOpen)
	b.ms.onBreakerTrip(b, from)
}

// halfOpen is the reopen-timer handler: admit one probe.
func (b *Breaker) halfOpen() {
	if b.state != BreakerOpen {
		return
	}
	b.state = BreakerHalfOpen
	b.probing = false
	b.ms.k.Trace("mesh", "breaker %s->%s half-open", b.client, b.inst.app)
}

// close re-closes the edge after a successful probe.
func (b *Breaker) close() {
	b.state = BreakerClosed
	b.probing = false
	b.resetWindow()
	if b.reopenRef.Pending() {
		b.reopenRef.Cancel()
	}
	b.ms.k.Trace("mesh", "breaker %s->%s closed", b.client, b.inst.app)
}
