package soa

import (
	"testing"

	"dynaplat/internal/can"
	"dynaplat/internal/sim"
)

func TestDiscoverRemoteProvider(t *testing.T) {
	r := newRig(nil)
	prov := r.mw.Endpoint("p", "ecu1")
	prov.Offer("Climate", OfferOpts{Network: "backbone", Version: 3})
	var res DiscoveryResult
	r.mw.Endpoint("c", "ecu2").Discover("Climate", sim.Second, func(dr DiscoveryResult) {
		res = dr
	})
	r.k.Run()
	if !res.Found || res.Provider != "p" || res.Version != 3 {
		t.Fatalf("result = %+v", res)
	}
	// RTT must be a real wire round trip: two SD messages over TSN.
	if res.RTT <= 10*sim.Microsecond || res.RTT >= sim.Millisecond {
		t.Errorf("rtt = %v", res.RTT)
	}
}

func TestDiscoverLocalProvider(t *testing.T) {
	r := newRig(nil)
	prov := r.mw.Endpoint("p", "ecu1")
	prov.Offer("Climate", OfferOpts{Network: "backbone"})
	var res DiscoveryResult
	r.mw.Endpoint("c", "ecu1").Discover("Climate", sim.Second, func(dr DiscoveryResult) {
		res = dr
	})
	r.k.Run()
	if !res.Found || res.RTT != 0 {
		t.Errorf("local discovery = %+v", res)
	}
}

func TestDiscoverTimeout(t *testing.T) {
	r := newRig(nil)
	var res DiscoveryResult
	fired := sim.Time(0)
	r.mw.Endpoint("c", "ecu1").Discover("Nothing", 50*sim.Millisecond, func(dr DiscoveryResult) {
		res = dr
		fired = r.k.Now()
	})
	r.k.Run()
	if res.Found {
		t.Fatal("found a service nobody offers")
	}
	if fired != sim.Time(50*sim.Millisecond) {
		t.Errorf("timeout fired at %v", fired)
	}
}

func TestDiscoverOverCANIsSlower(t *testing.T) {
	rtt := func(mkRig func() (*sim.Kernel, *Middleware)) sim.Duration {
		k, mw := mkRig()
		mw.Endpoint("p", "ecu1").Offer("S", OfferOpts{Network: "net"})
		var res DiscoveryResult
		mw.Endpoint("c", "ecu2").Discover("S", sim.Second, func(dr DiscoveryResult) { res = dr })
		k.Run()
		if !res.Found {
			return 0
		}
		return res.RTT
	}
	canRTT := rtt(func() (*sim.Kernel, *Middleware) {
		k := sim.NewKernel(1)
		bus := can.NewFD(k, can.Config{Name: "net", BitsPerSecond: 500_000}, 2_000_000)
		mw := New(k, nil)
		mw.AddNetwork(bus, can.MaxPayloadFD)
		return k, mw
	})
	if canRTT == 0 {
		t.Fatal("CAN discovery failed")
	}
	// SD entry (60B) over CAN FD takes ≫ 100us per direction.
	if canRTT < 200*sim.Microsecond {
		t.Errorf("CAN rtt = %v, implausibly fast", canRTT)
	}
}

func TestDiscoverTwoClientsIndependentTokens(t *testing.T) {
	r := newRig(nil)
	r.mw.Endpoint("p", "ecu1").Offer("S", OfferOpts{Network: "backbone"})
	got := map[string]bool{}
	r.mw.Endpoint("c1", "ecu2").Discover("S", sim.Second, func(dr DiscoveryResult) {
		got["c1"] = dr.Found
	})
	r.mw.Endpoint("c2", "ecu3").Discover("S", sim.Second, func(dr DiscoveryResult) {
		got["c2"] = dr.Found
	})
	r.k.Run()
	if !got["c1"] || !got["c2"] {
		t.Errorf("results = %v", got)
	}
}
