package soa

import (
	"testing"
)

func TestStalePublishDroppedAfterProviderSwitch(t *testing.T) {
	// Simulates the staged-update redirect window: v1 offers, v2
	// re-offers (taking over the service), v1 keeps publishing briefly.
	r := newRig(nil)
	v1 := r.mw.Endpoint("brake", "ecu1")
	v2 := r.mw.Endpoint("brake@2", "ecu1")
	v1.Offer("Status", OfferOpts{})
	var got []string
	r.mw.Endpoint("dash", "ecu1").Subscribe("Status", func(ev Event) {
		got = append(got, ev.Payload.(string))
	})
	v1.Publish("Status", 4, "v1")
	r.k.Run()
	// Redirect: v2 takes over the interface.
	v2.Offer("Status", OfferOpts{Version: 2})
	v1.Publish("Status", 4, "v1-stale") // must be dropped
	v2.Publish("Status", 4, "v2")
	r.k.Run()
	if len(got) != 2 || got[0] != "v1" || got[1] != "v2" {
		t.Fatalf("deliveries = %v", got)
	}
	if r.mw.StalePublishes != 1 {
		t.Errorf("StalePublishes = %d", r.mw.StalePublishes)
	}
	// Subscriptions survived the provider switch.
	v2.Publish("Status", 4, "v2b")
	r.k.Run()
	if len(got) != 3 {
		t.Errorf("post-switch deliveries = %v", got)
	}
}
