package soa

import (
	"testing"

	"dynaplat/internal/obs"
	"dynaplat/internal/sim"
)

// Overhead of the observability hooks on the SOA publish→deliver path.
//
//	go test -run '^$' -bench 'BenchmarkPublishDeliver' -benchmem ./internal/soa/
//
// The hooks-disabled variant is the default production configuration:
// every hook reduces to one nil check, so its numbers must track the
// pre-observability baseline. The observed variant bounds its trace
// (Cap) so the comparison measures hook cost, not slice growth.
func benchPublishDeliver(b *testing.B, observed bool) {
	k := sim.NewKernel(1)
	mw := New(k, nil)
	if observed {
		o := obs.New(k)
		o.T.Cap = 1 << 12
		mw.SetObs(o)
	}
	prod := mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{})
	cons := mw.Endpoint("c", "ecu1")
	if err := cons.Subscribe("Speed", func(Event) {}); err != nil {
		b.Fatal(err)
	}
	// Warm the kernel pool and the per-service instrument cache.
	for i := 0; i < 64; i++ {
		prod.Publish("Speed", 8, nil)
	}
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prod.Publish("Speed", 8, nil)
		k.Run()
	}
}

func BenchmarkPublishDeliverHooksDisabled(b *testing.B) { benchPublishDeliver(b, false) }
func BenchmarkPublishDeliverObserved(b *testing.B)      { benchPublishDeliver(b, true) }
