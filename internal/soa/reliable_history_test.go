package soa

import (
	"testing"

	"dynaplat/internal/sim"
)

// Regression tests for the History × SubscribeReliable interaction: a
// late joiner that receives retained history must not flag those
// courtesy samples as a wire gap, and a superseded provider must not
// burn sequence numbers (which made the retained history
// non-consecutive and produced exactly that spurious gap).

// Late joiner with History=3 on a 6-sample backlog, then live traffic.
// The replayed samples (3,4,5) precede the live ones (6,7,8); none of
// this is a gap.
func TestReliableLateJoinerHistoryNoSpuriousGap(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Wheel", OfferOpts{Network: "backbone"})
	if err := prod.EnableHistory("Wheel", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		prod.PublishSeq("Wheel", 8, i)
	}
	r.k.Run()
	cons := r.mw.Endpoint("c", "ecu2")
	var seqs []uint32
	rs, err := cons.SubscribeReliable("Wheel", QoS{History: 3}, true, func(ev Event) {
		seqs = append(seqs, ev.Seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	for i := 6; i < 9; i++ {
		prod.PublishSeq("Wheel", 8, i)
		r.k.Run()
	}
	want := []uint32{3, 4, 5, 6, 7, 8}
	if len(seqs) != len(want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}
	for i, s := range seqs {
		if s != want[i] {
			t.Fatalf("seqs = %v, want %v", seqs, want)
		}
	}
	if rs.Gaps != 0 || rs.Missing != 0 || rs.Unrecoverable != 0 {
		t.Errorf("spurious gap: gaps=%d missing=%d unrecoverable=%d, want 0/0/0",
			rs.Gaps, rs.Missing, rs.Unrecoverable)
	}
	if r.mw.SeqGaps != 0 {
		t.Errorf("middleware SeqGaps = %d, want 0", r.mw.SeqGaps)
	}
}

// Pre-fix: PublishSeq advanced svc.pubSeq even when publish() dropped
// the sample as a stale publication, so a staged update in which the old
// provider kept publishing left sequence holes in the retained history —
// and a late joiner's reliable subscription misread the hole as frame
// loss, issuing spurious (unrecoverable) re-requests.
func TestStalePublishSeqDoesNotBurnSequence(t *testing.T) {
	r := newRig(nil)
	prodA := r.mw.Endpoint("pA", "ecu1")
	prodA.Offer("Pos", OfferOpts{Network: "backbone"})
	if err := prodA.EnableHistory("Pos", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		prodA.PublishSeq("Pos", 8, i) // seqs 0,1,2
	}
	r.k.Run()
	// Staged update: B takes the offer over; stale A keeps publishing
	// during the redirect window.
	prodB := r.mw.Endpoint("pB", "ecu1")
	prodB.Offer("Pos", OfferOpts{Network: "backbone"})
	if got := prodA.PublishSeq("Pos", 8, nil); got != 0 {
		t.Errorf("stale PublishSeq returned seq %d, want 0", got)
	}
	prodA.PublishSeq("Pos", 8, nil) // dropped too
	seqB := prodB.PublishSeq("Pos", 8, nil)
	if seqB != 3 {
		t.Errorf("first post-takeover seq = %d, want 3 (stale publishes burned numbers)", seqB)
	}
	r.k.Run()
	if r.mw.StalePublishes != 2 {
		t.Errorf("StalePublishes = %d, want 2", r.mw.StalePublishes)
	}
	// Late joiner with History=3, then live traffic: consecutive, no gap.
	cons := r.mw.Endpoint("c", "ecu2")
	var seqs []uint32
	rs, err := cons.SubscribeReliable("Pos", QoS{History: 3}, true, func(ev Event) {
		seqs = append(seqs, ev.Seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	prodB.PublishSeq("Pos", 8, nil)
	r.k.Run()
	want := []uint32{1, 2, 3, 4}
	if len(seqs) != len(want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}
	for i, s := range seqs {
		if s != want[i] {
			t.Fatalf("seqs = %v, want %v", seqs, want)
		}
	}
	if rs.Gaps != 0 || rs.Missing != 0 || rs.Unrecoverable != 0 {
		t.Errorf("spurious gap on stale-provider history: gaps=%d missing=%d unrecoverable=%d",
			rs.Gaps, rs.Missing, rs.Unrecoverable)
	}
}

// The subscription-time sequence anchor also closes a blind spot: a
// sample lost between subscription and the first delivery is now
// detected (previously the first delivered sample silently initialized
// the tracker past the hole).
func TestReliableDetectsLossBeforeFirstDelivery(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Yaw", OfferOpts{Network: "backbone"})
	if err := prod.EnableHistory("Yaw", 4); err != nil {
		t.Fatal(err)
	}
	prod.PublishSeq("Yaw", 8, nil) // seq 0, no subscriber yet
	r.k.Run()
	cons := r.mw.Endpoint("c", "ecu2")
	rs, err := cons.SubscribeReliable("Yaw", QoS{}, true, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a lost first sample: the provider publishes seq 1 while
	// the consumer's subscription is suppressed, then seq 2 normally.
	r.suppress("Yaw", func() {
		prod.PublishSeq("Yaw", 8, nil) // seq 1, lost
	})
	prod.PublishSeq("Yaw", 8, nil) // seq 2
	r.k.Run()
	if rs.Gaps != 1 || rs.Missing != 1 {
		t.Errorf("gaps=%d missing=%d, want 1/1 (loss before first delivery undetected)", rs.Gaps, rs.Missing)
	}
	if rs.Recovered != 1 {
		t.Errorf("recovered=%d, want 1 (history re-request should back-fill)", rs.Recovered)
	}
}

// Satellite: Endpoint.Migrate must carry QoS state with the endpoint —
// retained history and live sequence numbering follow a migrating
// provider, and deadline supervision plus middleware counters follow a
// migrating consumer.
func TestMigrateProviderKeepsHistoryAndSequence(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Map", OfferOpts{Network: "backbone"})
	if err := prod.EnableHistory("Map", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		prod.PublishSeq("Map", 8, i)
	}
	r.k.Run()
	prod.Migrate("ecu3")
	// Sequence numbering continues across the migration.
	if seq := prod.PublishSeq("Map", 8, nil); seq != 3 {
		t.Errorf("post-migrate seq = %d, want 3", seq)
	}
	r.k.Run()
	// A late joiner still receives the retained history (published from
	// the pre-migration ECU) plus live traffic, gap-free.
	cons := r.mw.Endpoint("c", "ecu2")
	var seqs []uint32
	rs, err := cons.SubscribeReliable("Map", QoS{History: 3}, true, func(ev Event) {
		seqs = append(seqs, ev.Seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	prod.PublishSeq("Map", 8, nil)
	r.k.Run()
	want := []uint32{1, 2, 3, 4}
	if len(seqs) != len(want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}
	for i, s := range seqs {
		if s != want[i] {
			t.Fatalf("seqs = %v, want %v", seqs, want)
		}
	}
	if rs.Gaps != 0 {
		t.Errorf("gaps = %d after provider migration, want 0", rs.Gaps)
	}
}

func TestMigrateConsumerKeepsDeadlineSupervision(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{Network: "backbone"})
	cons := r.mw.Endpoint("c", "ecu2")
	misses := 0
	delivered := 0
	if err := cons.SubscribeQoS("Speed", QoS{
		Deadline:       20 * sim.Millisecond,
		OnDeadlineMiss: func(string, sim.Duration) { misses++ },
	}, func(Event) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	// Regular traffic, then migrate the consumer and stop publishing:
	// supervision must keep firing misses for the migrated endpoint.
	pub := r.k.Every(0, 10*sim.Millisecond, func() {
		if r.k.Now() < sim.Time(100*sim.Millisecond) {
			prod.Publish("Speed", 8, nil)
		}
	})
	r.k.RunUntil(sim.Time(100 * sim.Millisecond))
	if misses != 0 {
		t.Fatalf("misses during regular traffic = %d, want 0", misses)
	}
	preDelivered := delivered
	if preDelivered == 0 {
		t.Fatal("no deliveries before migration")
	}
	cons.Migrate("ecu3")
	r.k.RunUntil(sim.Time(200 * sim.Millisecond))
	if misses == 0 {
		t.Error("deadline supervision stopped following the migrated consumer")
	}
	if r.mw.QoSDeadlineMisses != int64(misses) {
		t.Errorf("middleware QoSDeadlineMisses = %d, want %d", r.mw.QoSDeadlineMisses, misses)
	}
	// Traffic resumes: deliveries reach the consumer on its new ECU.
	// (RunUntil, not Run: the deadline supervision re-arms forever.)
	pub.Stop()
	prod.Publish("Speed", 8, nil)
	r.k.RunUntil(sim.Time(210 * sim.Millisecond))
	if delivered != preDelivered+1 {
		t.Errorf("delivered = %d after resume, want %d (event did not follow migration)",
			delivered, preDelivered+1)
	}
}
