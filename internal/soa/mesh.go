package soa

import (
	"fmt"
	"sort"

	"dynaplat/internal/obs"
	"dynaplat/internal/sim"
)

// Mesh grows the point-to-point middleware into an in-vehicle service
// mesh (CARISMA-style): multiple provider instances register under one
// logical service, clients balance across them (balance.go), circuit
// breakers isolate dead client→instance edges (breaker.go), and
// backpressure-bounded per-instance queues shed overload in strict
// criticality order (shed.go). The mesh is a routing layer over the
// existing endpoints: each instance is an ordinary middleware service
// offered under "<iface>#<app>", so segmentation, wire timing, session
// dedupe and endpoint migration all keep working unchanged underneath.
//
// Like every kernel-resident component, the mesh is deterministic:
// virtual time only, no goroutines, balancing state is explicit, and
// retry jitter draws from per-session seeded streams (retry.go) — so a
// full overload sweep (E24) renders byte-identically under the serial,
// parallel and observed harnesses.

// MeshConfig tunes a mesh.
type MeshConfig struct {
	// Policy is the client-side balancing policy (default round-robin).
	Policy BalancePolicy
	// Breaker enables per-edge circuit breakers when non-nil.
	Breaker *BreakerConfig
	// QueueDepth bounds each instance's wait queue; 0 keeps the queue
	// unbounded (no shedding — the point-to-point baseline behaviour).
	QueueDepth int
	// Concurrency is the number of service slots per instance: calls
	// dispatched beyond it wait in the instance queue (default 1, which
	// serializes the provider like a single-threaded handler).
	Concurrency int
	// ProtectFrom is the criticality at or above which a call is never
	// shed (default ASIL-D).
	ProtectFrom Criticality
}

// FailReason classifies a failed mesh call for the onFail callback.
type FailReason uint8

const (
	// FailShed is an overload-admission rejection (counted as shed).
	FailShed FailReason = iota
	// FailDeadLetter is exhaustion: attempts, budget, or no reachable
	// instance (counted as dead-lettered, never silently dropped).
	FailDeadLetter
)

func (r FailReason) String() string {
	if r == FailShed {
		return "shed"
	}
	return "dead-letter"
}

// MeshCallOpts parameterizes one logical mesh call.
type MeshCallOpts struct {
	// Criticality ranks the call for overload admission.
	Criticality Criticality
	// ReqBytes / Req are the request size and opaque payload.
	ReqBytes int
	Req      any
	// PerTry is the per-attempt response timeout (required).
	PerTry sim.Duration
	// Retry is the attempt/backoff policy; Retry.Budget additionally
	// bounds the whole call including queue wait, so every offered call
	// settles (served, shed or dead-lettered) within Budget.
	Retry RetryPolicy
}

// Mesh is the vehicle-wide service-mesh plane over a Middleware.
type Mesh struct {
	m   *Middleware
	k   *sim.Kernel
	cfg MeshConfig

	svcs     map[string]*meshService
	svcNames []string // sorted; deterministic iteration order
	breakers map[string]*Breaker
	zones    map[string]string
	downECU  map[string]bool

	// notify, when non-nil, receives breaker-trip failure signals —
	// wired to reconfig.Orchestrator.NotifyFailure so the orchestrator
	// re-places crashed providers while the mesh routes around them.
	notify func(ecu, reason string)

	// Conservation accounting: Offered == Served + Shed + DeadLettered
	// + Outstanding() at every instant, and Outstanding() == 0 at
	// quiescence (Conserved).
	Offered      int64
	Served       int64
	Shed         int64
	DeadLettered int64
	// ShedByCrit splits sheds by call criticality; ShedProtected counts
	// sheds at or above ProtectFrom and must stay zero.
	ShedByCrit    [CritASILD + 1]int64
	ShedProtected int64
	// Timeouts counts per-attempt expirations; Retries counts re-routed
	// attempts; Reroutes counts queued calls moved off a failed
	// instance; BreakerTrips counts edge trips.
	Timeouts     int64
	Retries      int64
	Reroutes     int64
	BreakerTrips int64

	outstanding int64
}

// meshService is one logical replicated service.
type meshService struct {
	name  string
	insts []*meshInstance // sorted by app name
	rr    int             // round-robin cursor
	// crossZone counts zone-local picks that had to leave the caller's
	// zone (gateway-crossing fallbacks).
	crossZone int64

	// Cached observability instruments (lazy; see observeOffered).
	obsOffered *obs.Counter
	obsServed  *obs.Counter
	obsShed    *obs.Counter
	obsDead    *obs.Counter
	obsLat     *obs.Histogram
}

// meshInstance is one provider replica of a logical service.
type meshInstance struct {
	ms    *Mesh
	svc   *meshService
	ep    *Endpoint
	app   string
	iface string // underlying middleware interface: "<logical>#<app>"

	active int         // dispatched calls not yet resolved
	queue  []*meshCall // bounded wait queue (shed.go)

	// Dispatched counts attempts sent to this instance (test hook: a
	// down instance must not move this counter).
	Dispatched int64
}

// NewMesh creates a service-mesh plane over the middleware.
func NewMesh(m *Middleware, cfg MeshConfig) *Mesh {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.ProtectFrom == 0 {
		cfg.ProtectFrom = CritASILD
	}
	if cfg.Breaker != nil {
		bc := cfg.Breaker.normalized()
		cfg.Breaker = &bc
	}
	return &Mesh{
		m:        m,
		k:        m.k,
		cfg:      cfg,
		svcs:     map[string]*meshService{},
		breakers: map[string]*Breaker{},
		zones:    map[string]string{},
		downECU:  map[string]bool{},
	}
}

// SetZone assigns an ECU to a zone for PolicyZoneLocal routing.
func (ms *Mesh) SetZone(ecu, zone string) { ms.zones[ecu] = zone }

// SetFailureNotifier wires breaker trips to an external failure
// detector — typically reconfig.Orchestrator.NotifyFailure, so a
// tripped edge both routes around the instance (mesh) and triggers
// re-placement of the provider (orchestrator).
func (ms *Mesh) SetFailureNotifier(fn func(ecu, reason string)) { ms.notify = fn }

// Offer registers ep as a provider instance of the logical service
// iface. Multiple endpoints may offer the same iface; each becomes a
// balancing target. The instance is carried by an ordinary middleware
// service named "<iface>#<app>", so discovery, wire transfer, dedupe
// and Endpoint.Migrate apply per instance.
func (ms *Mesh) Offer(ep *Endpoint, iface string, opts OfferOpts) {
	svc, ok := ms.svcs[iface]
	if !ok {
		svc = &meshService{name: iface}
		ms.svcs[iface] = svc
		ms.svcNames = append(ms.svcNames, iface)
		sort.Strings(ms.svcNames)
	}
	for _, inst := range svc.insts {
		if inst.app == ep.App() {
			panic(fmt.Sprintf("soa: %s already offers mesh service %s", ep.App(), iface))
		}
	}
	instIface := iface + "#" + ep.App()
	ep.Offer(instIface, opts)
	inst := &meshInstance{ms: ms, svc: svc, ep: ep, app: ep.App(), iface: instIface}
	svc.insts = append(svc.insts, inst)
	sort.Slice(svc.insts, func(i, j int) bool { return svc.insts[i].app < svc.insts[j].app })
	ms.k.Trace("mesh", "%s offers %s (instance %d)", ep.App(), iface, len(svc.insts))
}

// Instances returns the provider application names of a logical
// service, sorted.
func (ms *Mesh) Instances(iface string) []string {
	svc := ms.svcs[iface]
	if svc == nil {
		return nil
	}
	out := make([]string, len(svc.insts))
	for i, inst := range svc.insts {
		out[i] = inst.app
	}
	return out
}

// InstanceStat is one replica's routing view (test and table hook).
type InstanceStat struct {
	App        string
	ECU        string
	Down       bool
	Dispatched int64
	Pending    int // dispatched + queued
}

// InstanceStats returns the per-replica routing state of a service in
// instance order.
func (ms *Mesh) InstanceStats(iface string) []InstanceStat {
	svc := ms.svcs[iface]
	if svc == nil {
		return nil
	}
	out := make([]InstanceStat, len(svc.insts))
	for i, inst := range svc.insts {
		out[i] = InstanceStat{
			App: inst.app, ECU: inst.ep.ECU(),
			Down:       ms.downECU[inst.ep.ECU()],
			Dispatched: inst.Dispatched,
			Pending:    inst.load(),
		}
	}
	return out
}

// CrossZone counts zone-local fallbacks that crossed zones for iface.
func (ms *Mesh) CrossZone(iface string) int64 {
	if svc := ms.svcs[iface]; svc != nil {
		return svc.crossZone
	}
	return 0
}

// Outstanding counts offered calls not yet settled.
func (ms *Mesh) Outstanding() int64 { return ms.outstanding }

// Conserved reports the admission arithmetic at quiescence: every
// offered call was served, shed or dead-lettered — nothing vanished.
func (ms *Mesh) Conserved() bool {
	return ms.outstanding == 0 &&
		ms.Offered == ms.Served+ms.Shed+ms.DeadLettered
}

// MarkECUDown evicts (down=true) or re-admits (down=false) every
// instance hosted on ecu: the balancer stops selecting evicted
// instances immediately, their queued calls re-route to surviving
// replicas, and middleware service discovery stops answering for the
// dead ECU (Middleware.SetECUDown). Location is read through the
// instance's endpoint, so a provider migrated off a down ECU is
// eligible again without bookkeeping.
func (ms *Mesh) MarkECUDown(ecu string, down bool) {
	ms.downECU[ecu] = down
	ms.m.SetECUDown(ecu, down)
	if !down {
		return
	}
	for _, name := range ms.svcNames {
		for _, inst := range ms.svcs[name].insts {
			if inst.ep.ECU() != ecu || len(inst.queue) == 0 {
				continue
			}
			q := inst.queue
			inst.queue = nil
			for _, c := range q {
				if c.settled {
					continue
				}
				c.queuedOn = nil
				ms.Reroutes++
				c.route()
			}
		}
	}
}

// ECULifecycle returns the eviction/re-admission hook pair for a fault
// campaign: pass it to faults.Campaign.HookECULifecycle so silencing
// ECU faults (crash, hang, reboot) evict the ECU's instances from
// routing and discovery at the exact injection instant, and repair
// re-admits them. (The mesh deliberately does not import the faults
// package; the campaign's generic up/down hook carries the glue.)
func (ms *Mesh) ECULifecycle() (onDown, onUp func(ecu string)) {
	return func(ecu string) { ms.MarkECUDown(ecu, true) },
		func(ecu string) { ms.MarkECUDown(ecu, false) }
}

// Call performs one logical RPC through the mesh: select an instance
// (balance.go, skipping down instances and open breakers), admit it
// against the instance queue (shed.go), dispatch with a per-attempt
// timeout, and retry around failures per opts.Retry. done receives the
// response; onFail receives the terminal classification (shed or
// dead-letter). Exactly one of them fires for every call that Call
// accepts, within Retry.Budget when set — the conservation contract.
func (ms *Mesh) Call(client *Endpoint, iface string, opts MeshCallOpts,
	done func(Event), onFail func(FailReason)) error {
	svc, ok := ms.svcs[iface]
	if !ok {
		return &ErrNoService{Iface: iface}
	}
	if opts.PerTry <= 0 {
		return fmt.Errorf("soa: non-positive mesh per-attempt timeout")
	}
	if !ms.m.auth.Authorize(client.app, iface) {
		ms.m.DeniedBindings++
		ms.k.Trace("mesh", "DENIED call %s -> %s", client.app, iface)
		return &ErrUnauthorized{Client: client.app, Iface: iface}
	}
	pol := opts.Retry.normalized()
	ms.m.next.session++
	c := &meshCall{
		ms: ms, client: client, svc: svc,
		crit:    opts.Criticality,
		opts:    opts,
		pol:     pol,
		session: ms.m.next.session,
		issued:  ms.k.Now(),
		backoff: pol.Backoff,
		done:    done,
		onFail:  onFail,
	}
	ms.Offered++
	ms.outstanding++
	ms.observeOffered(svc)
	if pol.Budget > 0 {
		c.deadline = c.issued.Add(pol.Budget)
		c.budgetRef = ms.k.After(pol.Budget, c.onBudget)
	}
	c.route()
	return nil
}

// meshCall is one logical call moving through the mesh: routed,
// possibly queued, dispatched (meshDispatch per attempt), and finally
// settled exactly once as served, shed or dead-lettered.
type meshCall struct {
	ms      *Mesh
	client  *Endpoint
	svc     *meshService
	crit    Criticality
	opts    MeshCallOpts
	pol     RetryPolicy
	session uint32
	issued  sim.Time

	deadline sim.Time
	attempt  int
	backoff  sim.Duration
	// jr is the per-session jitter stream (created on first retry); the
	// same decorrelated-but-deterministic stream CallRetry uses.
	jr *sim.RNG

	settled  bool
	queuedOn *meshInstance
	disp     *meshDispatch

	// budgetRef / retryRef are durable timer handles, kept so settling
	// cancels them (droppedref contract).
	budgetRef sim.EventRef
	retryRef  sim.EventRef

	done   func(Event)
	onFail func(FailReason)
}

// eligible filters the service's instances by health and breaker state.
func (c *meshCall) eligible() []*meshInstance {
	var elig []*meshInstance
	for _, inst := range c.svc.insts {
		if c.ms.downECU[inst.ep.ECU()] {
			continue
		}
		if br := c.ms.breakers[edgeKey(c.client.app, inst.iface)]; br != nil {
			if br.state == BreakerOpen || (br.state == BreakerHalfOpen && br.probing) {
				continue
			}
		}
		elig = append(elig, inst)
	}
	return elig
}

// route selects an instance for the current attempt and admits the
// call there; with no eligible instance the attempt fails and the
// retry ladder decides (routing around the outage or dead-lettering).
func (c *meshCall) route() {
	if c.settled {
		return
	}
	elig := c.eligible()
	if len(elig) == 0 {
		c.retryOrFail()
		return
	}
	c.ms.admit(c.ms.pick(c.svc, c.client, elig), c)
}

// retryOrFail advances the retry ladder after a failed attempt.
func (c *meshCall) retryOrFail() {
	if c.settled {
		return
	}
	c.attempt++
	if c.attempt >= c.pol.MaxAttempts {
		c.deadLetter("attempts exhausted")
		return
	}
	wait := c.backoff
	if c.pol.JitterFrac > 0 {
		if c.jr == nil {
			c.jr = c.ms.m.sessionJitter(c.session)
		}
		span := sim.Duration(float64(wait) * c.pol.JitterFrac)
		wait += c.jr.DurationRange(-span, span)
		if wait < 0 {
			wait = 0
		}
	}
	if c.deadline > 0 && c.ms.k.Now().Add(wait) >= c.deadline {
		c.deadLetter("budget exhausted")
		return
	}
	next := sim.Duration(float64(c.backoff) * c.pol.Multiplier)
	if c.pol.MaxBackoff > 0 && next > c.pol.MaxBackoff {
		next = c.pol.MaxBackoff
	}
	c.backoff = next
	c.ms.Retries++
	c.retryRef = c.ms.k.After(wait, c.route)
}

// onBudget fires when the whole-call budget expires: wherever the call
// is (queued, between attempts, or with a response still possible), it
// settles as dead-lettered. An in-flight dispatch keeps its own timer,
// which releases the instance slot and records the breaker outcome.
func (c *meshCall) onBudget() {
	c.deadLetter("budget expired")
}

// settle flips the call settled and cancels its durable timers.
func (c *meshCall) settle() {
	c.settled = true
	if c.budgetRef.Pending() {
		c.budgetRef.Cancel()
	}
	if c.retryRef.Pending() {
		c.retryRef.Cancel()
	}
	if c.queuedOn != nil {
		c.queuedOn.removeQueued(c)
	}
}

// serve settles the call with a response.
func (c *meshCall) serve(ev Event) {
	if c.settled {
		return
	}
	c.settle()
	ms := c.ms
	ms.Served++
	ms.outstanding--
	now := ms.k.Now()
	// The event reports whole-call latency (queue wait + retries +
	// wire), not just the final attempt's round trip.
	ev.Published = c.issued
	ev.Delivered = now
	if c.svc.obsServed != nil {
		c.svc.obsServed.Inc()
		c.svc.obsLat.Observe(now.Sub(c.issued))
	}
	if c.done != nil {
		c.done(ev)
	}
}

// shedCall settles a call as shed by overload admission.
func (ms *Mesh) shedCall(c *meshCall) {
	if c.settled {
		return
	}
	c.settle()
	ms.Shed++
	ms.ShedByCrit[c.crit]++
	if c.crit >= ms.cfg.ProtectFrom {
		ms.ShedProtected++
	}
	ms.outstanding--
	if c.svc.obsShed != nil {
		c.svc.obsShed.Inc()
	}
	ms.k.Trace("mesh", "shed %s call of %s (%s)", c.svc.name, c.client.app, c.crit)
	if c.onFail != nil {
		c.onFail(FailShed)
	}
}

// deadLetter settles a call as dead-lettered (dropped with account).
func (c *meshCall) deadLetter(why string) {
	if c.settled {
		return
	}
	c.settle()
	ms := c.ms
	ms.DeadLettered++
	ms.outstanding--
	if c.svc.obsDead != nil {
		c.svc.obsDead.Inc()
	}
	ms.k.Trace("mesh", "dead-lettered %s call of %s: %s", c.svc.name, c.client.app, why)
	if c.onFail != nil {
		c.onFail(FailDeadLetter)
	}
}

// meshDispatch is one attempt of a call at one instance. Its timer and
// response closure resolve exactly once: the instance slot is released
// and the breaker outcome recorded on whichever comes first.
type meshDispatch struct {
	c       *meshCall
	inst    *meshInstance
	probe   bool
	settled bool
	// timer is the per-attempt timeout; kept so a response cancels it.
	timer sim.EventRef
}

// edgeKey identifies a client→instance breaker edge.
func edgeKey(client, instIface string) string { return client + "\x00" + instIface }

// breaker returns (creating lazily) the edge breaker, or nil when
// breakers are disabled.
func (ms *Mesh) breaker(client *Endpoint, inst *meshInstance) *Breaker {
	if ms.cfg.Breaker == nil {
		return nil
	}
	key := edgeKey(client.app, inst.iface)
	br := ms.breakers[key]
	if br == nil {
		br = newBreaker(ms, client.app, inst, *ms.cfg.Breaker)
		ms.breakers[key] = br
	}
	return br
}

// dispatch issues one attempt at inst. Called with a free service slot
// (admission) or from the queue pump.
func (ms *Mesh) dispatch(inst *meshInstance, c *meshCall) {
	if c.settled {
		return
	}
	br := ms.breaker(c.client, inst)
	if br != nil {
		if br.state == BreakerOpen || (br.state == BreakerHalfOpen && br.probing) {
			// The edge tripped while the call waited: route around it.
			c.route()
			return
		}
	}
	tryTimeout := c.opts.PerTry
	if c.deadline > 0 {
		if remaining := c.deadline.Sub(ms.k.Now()); remaining < tryTimeout {
			tryTimeout = remaining
		}
		if tryTimeout <= 0 {
			c.deadLetter("budget exhausted before dispatch")
			return
		}
	}
	probe := false
	if br != nil && br.state == BreakerHalfOpen {
		probe = true
		br.probing = true
	}
	inst.active++
	inst.Dispatched++
	d := &meshDispatch{c: c, inst: inst, probe: probe}
	c.disp = d
	d.timer = ms.k.After(tryTimeout, d.onTimeout)
	if err := c.client.call(inst.iface, c.session, c.opts.ReqBytes, c.opts.Req, d.onResponse); err != nil {
		// Synchronous dispatch failure (no handler at the instance):
		// resolve this attempt immediately as failed.
		d.resolve(true)
		c.retryOrFail()
	}
}

// resolve releases the dispatch exactly once: slot back, queue pumped,
// breaker outcome recorded.
func (d *meshDispatch) resolve(failure bool) {
	if d.settled {
		return
	}
	d.settled = true
	if d.timer.Pending() {
		d.timer.Cancel()
	}
	ms := d.c.ms
	d.inst.active--
	if br := ms.breakers[edgeKey(d.c.client.app, d.inst.iface)]; br != nil {
		if failure {
			br.failure(d.probe)
		} else {
			br.success(d.probe)
		}
	}
	ms.pump(d.inst)
}

// onResponse completes an attempt with the provider's answer. A late
// response — after the attempt's timeout already resolved it — still
// serves the logical call if nothing else settled it first (the same
// any-response-wins semantics as CallRetry).
func (d *meshDispatch) onResponse(ev Event) {
	d.resolve(false)
	d.c.serve(ev)
}

// onTimeout expires an attempt: failure on the edge, next rung of the
// retry ladder for the call.
func (d *meshDispatch) onTimeout() {
	if d.settled {
		return
	}
	d.c.ms.Timeouts++
	d.resolve(true)
	d.c.retryOrFail()
}

// pump dispatches queued calls into freed service slots, discarding
// settled tombstones.
func (ms *Mesh) pump(inst *meshInstance) {
	for inst.active < ms.cfg.Concurrency && len(inst.queue) > 0 {
		c := inst.queue[0]
		inst.queue = inst.queue[1:]
		c.queuedOn = nil
		if c.settled {
			continue
		}
		ms.dispatch(inst, c)
	}
}

// onBreakerTrip fans a trip out to counters, traces and the failure
// notifier (reconfig integration).
func (ms *Mesh) onBreakerTrip(b *Breaker, from BreakerState) {
	ms.BreakerTrips++
	ms.k.Trace("mesh", "breaker %s->%s OPEN (from %s)", b.client, b.inst.app, from)
	if ms.notify != nil {
		ms.notify(b.inst.ep.ECU(), "mesh-breaker "+b.client+"->"+b.inst.app)
	}
}

// observeOffered lazily wires the per-service mesh instruments and
// counts one offered call. Instruments exist only while the middleware
// has an obs plane; the disabled path costs one nil check.
func (ms *Mesh) observeOffered(svc *meshService) {
	if ms.m.o == nil {
		return
	}
	if svc.obsOffered == nil {
		l := obs.Labels{Layer: "mesh", Iface: svc.name}
		reg := ms.m.o.Metrics()
		svc.obsOffered = reg.Counter("mesh_offered", l)
		svc.obsServed = reg.Counter("mesh_served", l)
		svc.obsShed = reg.Counter("mesh_shed", l)
		svc.obsDead = reg.Counter("mesh_dead_letters", l)
		svc.obsLat = reg.Histogram("mesh_call_latency", l)
	}
	svc.obsOffered.Inc()
}
