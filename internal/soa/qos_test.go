package soa

import (
	"errors"
	"testing"

	"dynaplat/internal/sim"
)

func TestQoSHistoryLateJoiner(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Gear", OfferOpts{})
	if err := prod.EnableHistory("Gear", 3); err != nil {
		t.Fatal(err)
	}
	for gear := 1; gear <= 5; gear++ {
		prod.Publish("Gear", 1, gear)
	}
	r.k.Run()
	// Late joiner asks for the last 2 samples.
	var got []any
	cons := r.mw.Endpoint("c", "ecu1")
	err := cons.SubscribeQoS("Gear", QoS{History: 2}, func(ev Event) {
		got = append(got, ev.Payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("history = %v, want [4 5]", got)
	}
	// Future publications still arrive.
	prod.Publish("Gear", 1, 6)
	r.k.Run()
	if len(got) != 3 || got[2] != 6 {
		t.Errorf("live after history = %v", got)
	}
}

func TestQoSHistoryRequiresProviderOptIn(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Gear", OfferOpts{})
	prod.Publish("Gear", 1, 1)
	r.k.Run()
	got := 0
	cons := r.mw.Endpoint("c", "ecu1")
	// No EnableHistory → subscriber gets nothing retroactively.
	if err := cons.SubscribeQoS("Gear", QoS{History: 5}, func(Event) { got++ }); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if got != 0 {
		t.Errorf("history delivered without provider opt-in: %d", got)
	}
}

func TestQoSHistoryValidation(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Gear", OfferOpts{})
	if err := prod.EnableHistory("Ghost", 1); err == nil {
		t.Error("unknown iface accepted")
	}
	if err := prod.EnableHistory("Gear", 0); err == nil {
		t.Error("zero depth accepted")
	}
	if err := prod.EnableHistory("Gear", historyCap+1); err == nil {
		t.Error("huge depth accepted")
	}
	other := r.mw.Endpoint("x", "ecu1")
	if err := other.EnableHistory("Gear", 1); err == nil {
		t.Error("non-provider enabled history")
	}
}

func TestQoSDeadlineSupervision(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{})
	cons := r.mw.Endpoint("c", "ecu1")
	var misses []sim.Duration
	err := cons.SubscribeQoS("Speed", QoS{
		Deadline:       50 * sim.Millisecond,
		OnDeadlineMiss: func(_ string, gap sim.Duration) { misses = append(misses, gap) },
	}, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	// Publish regularly, then go silent for 300ms, then resume.
	tick := r.k.Every(0, 20*sim.Millisecond, func() { prod.Publish("Speed", 4, nil) })
	r.k.At(sim.Time(200*sim.Millisecond), func() { tick.Stop() })
	r.k.At(sim.Time(500*sim.Millisecond), func() {
		r.k.Every(r.k.Now(), 20*sim.Millisecond, func() { prod.Publish("Speed", 4, nil) })
	})
	r.k.RunUntil(sim.Time(700 * sim.Millisecond))
	if len(misses) == 0 {
		t.Fatal("silence not detected")
	}
	// ~300ms silence with 50ms deadline → a handful of misses, not 1,
	// not dozens.
	if len(misses) < 3 || len(misses) > 8 {
		t.Errorf("misses = %d (%v)", len(misses), misses)
	}
	if r.mw.QoSDeadlineMisses != int64(len(misses)) {
		t.Errorf("counter = %d, want %d", r.mw.QoSDeadlineMisses, len(misses))
	}
}

func TestQoSDeadlineStopsAfterUnsubscribe(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{})
	cons := r.mw.Endpoint("c", "ecu1")
	misses := 0
	cons.SubscribeQoS("Speed", QoS{
		Deadline:       20 * sim.Millisecond,
		OnDeadlineMiss: func(string, sim.Duration) { misses++ },
	}, func(Event) {})
	r.k.At(sim.Time(10*sim.Millisecond), func() { cons.Unsubscribe("Speed") })
	r.k.RunUntil(sim.Time(500 * sim.Millisecond))
	if misses != 0 {
		t.Errorf("misses after unsubscribe = %d", misses)
	}
}

func TestQoSSubscribeUnknownAndUnauthorized(t *testing.T) {
	r := newRig(nil)
	cons := r.mw.Endpoint("c", "ecu1")
	var ns *ErrNoService
	if err := cons.SubscribeQoS("Ghost", QoS{}, func(Event) {}); !errors.As(err, &ns) {
		t.Errorf("err = %v", err)
	}
	r2 := newRig(denyAll{})
	p2 := r2.mw.Endpoint("p", "ecu1")
	p2.Offer("S", OfferOpts{})
	var ua *ErrUnauthorized
	if err := r2.mw.Endpoint("c", "ecu1").SubscribeQoS("S", QoS{}, func(Event) {}); !errors.As(err, &ua) {
		t.Errorf("err = %v", err)
	}
}
