package soa

import (
	"fmt"

	"dynaplat/internal/obs"
	"dynaplat/internal/sim"
)

// QoS carries the DDS-inspired per-subscription qualities of service the
// paper's Section 2.1 alludes to ("Data Distribution Service … among many
// others"). Two policies matter for automotive services and are
// implemented here:
//
//   - History: a late-joining subscriber immediately receives the last
//     value(s) published, instead of waiting for the next period — vital
//     for state-like topics (gear position, door state).
//   - Deadline: the middleware supervises the inter-delivery gap and
//     counts violations, feeding the §3.4 monitoring story at the
//     communication layer.
type QoS struct {
	// History requests the last n published samples on subscription
	// (0 = none).
	History int
	// Deadline is the maximum tolerated gap between deliveries
	// (0 = unsupervised).
	Deadline sim.Duration
	// OnDeadlineMiss, when non-nil, is invoked (in virtual time) for
	// each supervised gap violation.
	OnDeadlineMiss func(iface string, gap sim.Duration)
}

// historyCap is the maximum retained history per interface.
const historyCap = 16

// EnableHistory makes an offered interface retain its last depth
// publications for late joiners. Must be called by the provider.
func (e *Endpoint) EnableHistory(iface string, depth int) error {
	svc, ok := e.m.svcs[iface]
	if !ok || svc.provider != e {
		return fmt.Errorf("soa: %s does not offer %s", e.app, iface)
	}
	if depth < 1 || depth > historyCap {
		return fmt.Errorf("soa: history depth %d outside [1,%d]", depth, historyCap)
	}
	svc.historyDepth = depth
	return nil
}

// SubscribeQoS subscribes with qualities of service. History samples (if
// enabled on the interface and requested) are delivered immediately after
// the local IPC delay; a deadline, if set, is supervised until
// Unsubscribe.
func (e *Endpoint) SubscribeQoS(iface string, qos QoS, fn func(Event)) error {
	svc, ok := e.m.svcs[iface]
	if !ok {
		return &ErrNoService{Iface: iface}
	}
	sub := &subscription{ep: e}
	wrapped := fn
	if qos.Deadline > 0 {
		sub.deadline = qos.Deadline
		sub.lastRx = e.m.k.Now()
		wrapped = func(ev Event) {
			sub.lastRx = e.m.k.Now()
			fn(ev)
		}
	}
	sub.fn = wrapped
	if err := e.subscribeExisting(iface, sub); err != nil {
		return err
	}
	// Supervision starts only after the binding is authorized and
	// installed — arming it earlier leaked a timer when authorization
	// failed.
	if qos.Deadline > 0 {
		e.superviseDeadline(iface, sub, qos)
	}
	// Late-join history delivery.
	if qos.History > 0 && svc.historyDepth > 0 {
		n := qos.History
		if n > len(svc.history) {
			n = len(svc.history)
		}
		for _, ev := range svc.history[len(svc.history)-n:] {
			ev := ev
			e.m.k.After(LocalDelay, func() {
				if sub.gone {
					e.m.DeadLetters++
					return
				}
				ev.Delivered = e.m.k.Now()
				wrapped(ev)
			})
		}
	}
	return nil
}

// subscribeExisting authorizes and installs a pre-built subscription.
func (e *Endpoint) subscribeExisting(iface string, sub *subscription) error {
	svc := e.m.svcs[iface]
	if !e.m.auth.Authorize(e.app, iface) {
		e.m.DeniedBindings++
		return &ErrUnauthorized{Client: e.app, Iface: iface}
	}
	svc.subs = append(svc.subs, sub)
	return nil
}

// superviseDeadline arms the periodic gap check for one subscription.
// The armed timer is held in sub.superRef so Unsubscribe/RemoveEndpoint
// can cancel it: previously the final pending timer outlived the
// subscription (a leaked kernel event that fired once into a dead
// check), so Kernel.Stats().QueueLive never returned to baseline.
func (e *Endpoint) superviseDeadline(iface string, sub *subscription, qos QoS) {
	var tick func()
	tick = func() {
		// Belt and braces: dropped subscriptions cancel superRef, but a
		// concurrently-fired timer must still see the tombstone.
		if sub.gone {
			return
		}
		svc, ok := e.m.svcs[iface]
		if !ok {
			return
		}
		alive := false
		for _, s := range svc.subs {
			if s == sub {
				alive = true
				break
			}
		}
		if !alive {
			return
		}
		gap := e.m.k.Now().Sub(sub.lastRx)
		if gap > sub.deadline {
			sub.deadlineMisses++
			e.m.QoSDeadlineMisses++
			if e.m.o != nil {
				e.m.o.M.Counter("soa_deadline_misses",
					obs.Labels{Layer: "soa", ECU: e.ecu, Iface: iface}).Inc()
				e.m.o.T.Instant("soa", "deadline-miss", "soa:"+iface, e.app)
			}
			if qos.OnDeadlineMiss != nil {
				qos.OnDeadlineMiss(iface, gap)
			}
			sub.lastRx = e.m.k.Now() // re-arm, one miss per gap
		}
		sub.superRef = e.m.k.After(sub.deadline, tick)
	}
	sub.superRef = e.m.k.After(sub.deadline, tick)
}
