package soa

// Criticality-aware overload admission (mesh.go). Every provider
// instance owns a backpressure-bounded wait queue; when the queue is
// full, the mesh sheds load in strict criticality order — the lowest-
// criticality queued call goes first, and calls at or above the
// protected level (ASIL-D by default) are never shed, even if that
// means exceeding the bound. Every admission decision is accounted:
// offered == served + shed + dead-lettered holds at quiescence
// (Mesh.Conserved), so an overload experiment can prove no call was
// silently dropped.

// Criticality ranks a mesh call for overload admission, mirroring the
// model's ASIL ladder (QM lowest). The mesh deliberately keeps its own
// scalar instead of importing the model package: callers map their app
// criticality once at the call site.
type Criticality uint8

const (
	// CritQM is unrated infotainment-class traffic (shed first).
	CritQM Criticality = iota
	// CritASILA .. CritASILD rank safety-relevant traffic.
	CritASILA
	CritASILB
	CritASILC
	// CritASILD is the highest criticality (never shed by default).
	CritASILD
)

func (c Criticality) String() string {
	switch c {
	case CritQM:
		return "QM"
	case CritASILA:
		return "ASIL-A"
	case CritASILB:
		return "ASIL-B"
	case CritASILC:
		return "ASIL-C"
	case CritASILD:
		return "ASIL-D"
	}
	return "?"
}

// admit places a routed call at its selected instance: dispatch if a
// service slot is free, otherwise queue, otherwise shed — lowest
// criticality first, protected criticalities never.
func (ms *Mesh) admit(inst *meshInstance, c *meshCall) {
	if inst.active < ms.cfg.Concurrency {
		ms.dispatch(inst, c)
		return
	}
	if ms.cfg.QueueDepth <= 0 || inst.queueLive() < ms.cfg.QueueDepth {
		inst.enqueue(c)
		return
	}
	// Queue full: the shed ordering invariant. A higher-criticality
	// arrival evicts the oldest call of the lowest queued criticality
	// class below its own; otherwise the arrival itself is shed —
	// unless it is protected, in which case it is admitted beyond the
	// bound (DA/ASIL-D is never the victim of backpressure).
	if v := inst.shedVictim(c.crit); v != nil {
		inst.removeQueued(v)
		ms.shedCall(v)
		inst.enqueue(c)
		return
	}
	if c.crit >= ms.cfg.ProtectFrom {
		inst.enqueue(c)
		return
	}
	ms.shedCall(c)
}

// queueLive counts non-settled queued calls (stragglers that settled
// while waiting — budget expiry, late response from a prior attempt —
// are tombstones the pump discards).
func (i *meshInstance) queueLive() int {
	n := 0
	for _, c := range i.queue {
		if !c.settled {
			n++
		}
	}
	return n
}

func (i *meshInstance) enqueue(c *meshCall) {
	c.queuedOn = i
	i.queue = append(i.queue, c)
}

// shedVictim returns the oldest queued call of the lowest criticality
// class strictly below crit (and below the protected level), or nil if
// nothing qualifies.
func (i *meshInstance) shedVictim(crit Criticality) *meshCall {
	var victim *meshCall
	for _, q := range i.queue {
		if q.settled || q.crit >= crit || q.crit >= i.ms.cfg.ProtectFrom {
			continue
		}
		if victim == nil || q.crit < victim.crit {
			victim = q
		}
	}
	return victim
}

// removeQueued drops one call from the wait queue (eviction path; the
// pump discards settled tombstones on its own).
func (i *meshInstance) removeQueued(c *meshCall) {
	for j, q := range i.queue {
		if q == c {
			i.queue = append(i.queue[:j], i.queue[j+1:]...)
			break
		}
	}
	c.queuedOn = nil
}
