package soa

import "testing"

// TestPublishAfterMigrate is the regression test for Migrate eagerly
// attaching the destination station: a provider moved to an ECU the
// middleware has never seen must answer immediately — its station is on
// the wire the moment Migrate returns, not after a first lazy transfer.
func TestPublishAfterMigrate(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	cons := r.mw.Endpoint("consumer", "ecu2")
	prod.Offer("Pos", OfferOpts{Network: "backbone"})
	var got []Event
	if err := cons.Subscribe("Pos", func(ev Event) { got = append(got, ev) }); err != nil {
		t.Fatal(err)
	}
	prod.Publish("Pos", 16, "before")
	r.k.Run()
	if len(got) != 1 {
		t.Fatalf("pre-migrate events = %d", len(got))
	}

	// Migrate to a brand-new ECU and publish right away.
	prod.Migrate("ecu9")
	if !r.mw.attachedStations["backbone/ecu9"] {
		t.Error("destination station not attached by Migrate")
	}
	prod.Publish("Pos", 16, "after")
	r.k.Run()
	if len(got) != 2 {
		t.Fatalf("post-migrate events = %d, want 2", len(got))
	}
	if got[1].Payload != "after" {
		t.Errorf("payload = %v", got[1].Payload)
	}
}

// TestPublishSeqNumbering: PublishSeq stamps consecutive sequence
// numbers per interface.
func TestPublishSeqNumbering(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	cons := r.mw.Endpoint("consumer", "ecu1")
	prod.Offer("Odo", OfferOpts{})
	var seqs []uint32
	if err := cons.Subscribe("Odo", func(ev Event) { seqs = append(seqs, ev.Seq) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := prod.PublishSeq("Odo", 8, nil); got != uint32(i) {
			t.Errorf("PublishSeq returned %d, want %d", got, i)
		}
	}
	r.k.Run()
	for i, s := range seqs {
		if s != uint32(i) {
			t.Errorf("delivered seq[%d] = %d", i, s)
		}
	}
}

// suppress hides the interface's subscribers for the duration of fn:
// publications still happen (and land in history) but nothing is
// delivered — a deterministic stand-in for wire loss.
func (r *testRig) suppress(iface string, fn func()) {
	svc := r.mw.svcs[iface]
	saved := svc.subs
	svc.subs = nil
	fn()
	svc.subs = saved
}

func TestReliableSubDetectsGapWithoutReRequest(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	cons := r.mw.Endpoint("consumer", "ecu2")
	prod.Offer("Pos", OfferOpts{Network: "backbone"})
	var fresh int
	rs, err := cons.SubscribeReliable("Pos", QoS{}, false, func(ev Event) { fresh++ })
	if err != nil {
		t.Fatal(err)
	}
	prod.PublishSeq("Pos", 8, nil)
	r.k.Run()
	r.suppress("Pos", func() {
		prod.PublishSeq("Pos", 8, nil) // seq 1, lost
		prod.PublishSeq("Pos", 8, nil) // seq 2, lost
	})
	prod.PublishSeq("Pos", 8, nil) // seq 3
	r.k.Run()
	if fresh != 2 {
		t.Errorf("fresh deliveries = %d, want 2", fresh)
	}
	if rs.Gaps != 1 || rs.Missing != 2 {
		t.Errorf("gaps=%d missing=%d, want 1/2", rs.Gaps, rs.Missing)
	}
	if rs.Unrecoverable != 2 || rs.Recovered != 0 {
		t.Errorf("unrecoverable=%d recovered=%d, want 2/0", rs.Unrecoverable, rs.Recovered)
	}
	if r.mw.SeqGaps != 1 || r.mw.GapEventsUnrecoverable != 2 {
		t.Errorf("middleware counters: gaps=%d unrecoverable=%d",
			r.mw.SeqGaps, r.mw.GapEventsUnrecoverable)
	}
}

func TestReliableSubReRequestsFromHistory(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	cons := r.mw.Endpoint("consumer", "ecu2")
	prod.Offer("Pos", OfferOpts{Network: "backbone"})
	if err := prod.EnableHistory("Pos", 8); err != nil {
		t.Fatal(err)
	}
	var fresh, recovered []uint32
	rs, err := cons.SubscribeReliable("Pos", QoS{}, true, func(ev Event) {
		if ev.Recovered {
			recovered = append(recovered, ev.Seq)
		} else {
			fresh = append(fresh, ev.Seq)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	prod.PublishSeq("Pos", 8, nil) // seq 0
	r.k.Run()
	r.suppress("Pos", func() {
		prod.PublishSeq("Pos", 8, nil) // seq 1, lost but retained
		prod.PublishSeq("Pos", 8, nil) // seq 2, lost but retained
	})
	prod.PublishSeq("Pos", 8, nil) // seq 3: triggers re-request
	r.k.Run()
	if len(fresh) != 2 || fresh[0] != 0 || fresh[1] != 3 {
		t.Fatalf("fresh = %v", fresh)
	}
	if len(recovered) != 2 || recovered[0] != 1 || recovered[1] != 2 {
		t.Fatalf("recovered = %v, want [1 2]", recovered)
	}
	if rs.Recovered != 2 || rs.Unrecoverable != 0 {
		t.Errorf("recovered=%d unrecoverable=%d", rs.Recovered, rs.Unrecoverable)
	}
	if r.mw.GapEventsRecovered != 2 {
		t.Errorf("middleware GapEventsRecovered = %d", r.mw.GapEventsRecovered)
	}
}

// TestReliableSubPartialRecovery: when the provider's history is too
// shallow for the whole gap, the found tail is recovered and the rest is
// counted unrecoverable — nothing is silently dropped.
func TestReliableSubPartialRecovery(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	cons := r.mw.Endpoint("consumer", "ecu2")
	prod.Offer("Pos", OfferOpts{Network: "backbone"})
	// Retain 3: by the time the gap-exposing seq 5 is published, history
	// holds [3 4 5] — seqs 1 and 2 are gone for good.
	if err := prod.EnableHistory("Pos", 3); err != nil {
		t.Fatal(err)
	}
	rs, err := cons.SubscribeReliable("Pos", QoS{}, true, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	prod.PublishSeq("Pos", 8, nil) // seq 0
	r.k.Run()
	r.suppress("Pos", func() {
		for i := 0; i < 4; i++ { // seqs 1..4 lost
			prod.PublishSeq("Pos", 8, nil)
		}
	})
	prod.PublishSeq("Pos", 8, nil) // seq 5
	r.k.Run()
	if rs.Missing != 4 {
		t.Fatalf("missing = %d", rs.Missing)
	}
	if rs.Recovered != 2 || rs.Unrecoverable != 2 {
		t.Errorf("recovered=%d unrecoverable=%d, want 2/2 (history holds [3 4 5])",
			rs.Recovered, rs.Unrecoverable)
	}
}
