package soa

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dynaplat/internal/can"
	"dynaplat/internal/network"
	"dynaplat/internal/sim"
	"dynaplat/internal/tsn"
)

func TestWireRoundTrip(t *testing.T) {
	err := quick.Check(func(svc uint32, typ8 uint8, session, seq uint32, payload []byte) bool {
		if len(payload) > 1<<20 {
			payload = payload[:1<<20]
		}
		h := Header{ServiceID: svc, Type: MessageType(typ8%6 + 1), Session: session, Seq: seq}
		buf := EncodeHeader(h, payload)
		got, body, err := DecodeHeader(buf)
		if err != nil {
			return false
		}
		return got.ServiceID == h.ServiceID && got.Type == h.Type &&
			got.Session == h.Session && got.Seq == h.Seq &&
			int(got.Length) == len(payload) && bytes.Equal(body, payload)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWireDecodeErrors(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, 3)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short buffer: %v", err)
	}
	buf := EncodeHeader(Header{ServiceID: 1, Type: TypeEvent}, []byte("hi"))
	buf[0] = 0x00
	if _, _, err := DecodeHeader(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	buf2 := EncodeHeader(Header{ServiceID: 1, Type: TypeEvent}, []byte("hello"))
	if _, _, err := DecodeHeader(buf2[:HeaderSize+2]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("truncated payload: %v", err)
	}
}

// testRig wires a middleware over a TSN backbone with three ECUs.
type testRig struct {
	k  *sim.Kernel
	mw *Middleware
	n  *tsn.Network
}

func newRig(auth Authorizer) *testRig {
	k := sim.NewKernel(1)
	n := tsn.New(k, tsn.DefaultConfig("backbone"))
	mw := New(k, auth)
	mw.AddNetwork(n, 1400)
	return &testRig{k: k, mw: mw, n: n}
}

func TestEventLocalDelivery(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	cons := r.mw.Endpoint("consumer", "ecu1")
	prod.Offer("Temp", OfferOpts{})
	var got []Event
	if err := cons.Subscribe("Temp", func(ev Event) { got = append(got, ev) }); err != nil {
		t.Fatal(err)
	}
	prod.Publish("Temp", 8, 21.5)
	r.k.Run()
	if len(got) != 1 {
		t.Fatalf("events = %d", len(got))
	}
	if got[0].Latency() != LocalDelay {
		t.Errorf("local latency = %v, want %v", got[0].Latency(), LocalDelay)
	}
	if got[0].Payload != 21.5 {
		t.Errorf("payload = %v", got[0].Payload)
	}
}

func TestEventCrossECU(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	cons := r.mw.Endpoint("consumer", "ecu2")
	prod.Offer("Temp", OfferOpts{Network: "backbone", Class: network.ClassPriority})
	var got []Event
	cons.Subscribe("Temp", func(ev Event) { got = append(got, ev) })
	prod.Publish("Temp", 8, nil)
	r.k.Run()
	if len(got) != 1 {
		t.Fatalf("events = %d", len(got))
	}
	if got[0].Latency() <= 0 || got[0].Latency() >= sim.Millisecond {
		t.Errorf("cross-ECU latency = %v", got[0].Latency())
	}
	if r.mw.ServiceLatency("Temp").Count() != 1 {
		t.Error("latency not sampled")
	}
}

func TestEventFanout(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("producer", "ecu1")
	prod.Offer("Speed", OfferOpts{Network: "backbone"})
	counts := map[string]int{}
	for _, app := range []string{"c1", "c2", "c3"} {
		app := app
		ecu := "ecu2"
		if app == "c3" {
			ecu = "ecu1" // same-ECU subscriber
		}
		r.mw.Endpoint(app, ecu).Subscribe("Speed", func(Event) { counts[app]++ })
	}
	prod.Publish("Speed", 16, nil)
	r.k.Run()
	if counts["c1"] != 1 || counts["c2"] != 1 || counts["c3"] != 1 {
		t.Errorf("fanout = %v", counts)
	}
}

func TestRPC(t *testing.T) {
	r := newRig(nil)
	srv := r.mw.Endpoint("server", "ecu1")
	cli := r.mw.Endpoint("client", "ecu2")
	srv.Offer("Sum", OfferOpts{
		Network: "backbone",
		Handler: func(req any) (int, any, sim.Duration) {
			xs := req.([]int)
			total := 0
			for _, x := range xs {
				total += x
			}
			return 8, total, 100 * sim.Microsecond
		},
	})
	var resp Event
	if err := cli.Call("Sum", 16, []int{1, 2, 3}, func(ev Event) { resp = ev }); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if resp.Payload != 6 {
		t.Fatalf("response = %v", resp.Payload)
	}
	// RTT must include two wire trips plus processing.
	if rtt := resp.Latency(); rtt <= 100*sim.Microsecond {
		t.Errorf("rtt = %v, too small", rtt)
	}
}

func TestRPCWithoutHandler(t *testing.T) {
	r := newRig(nil)
	srv := r.mw.Endpoint("server", "ecu1")
	srv.Offer("NoHandler", OfferOpts{Network: "backbone"})
	err := r.mw.Endpoint("client", "ecu2").Call("NoHandler", 8, nil, nil)
	if err == nil {
		t.Error("Call without handler succeeded")
	}
}

func TestFindAndServices(t *testing.T) {
	r := newRig(nil)
	r.mw.Endpoint("a", "ecu1").Offer("S1", OfferOpts{Version: 3})
	r.mw.Endpoint("b", "ecu1").Offer("S2", OfferOpts{})
	prov, ver, err := r.mw.Find("S1")
	if err != nil || prov != "a" || ver != 3 {
		t.Errorf("Find = %q v%d %v", prov, ver, err)
	}
	if _, _, err := r.mw.Find("Ghost"); err == nil {
		t.Error("Find(Ghost) succeeded")
	}
	var ns *ErrNoService
	if _, _, err := r.mw.Find("Ghost"); !errors.As(err, &ns) {
		t.Errorf("error type = %T", err)
	}
	svcs := r.mw.Services()
	if len(svcs) != 2 || svcs[0] != "S1" || svcs[1] != "S2" {
		t.Errorf("Services = %v", svcs)
	}
}

func TestSubscribeUnknown(t *testing.T) {
	r := newRig(nil)
	err := r.mw.Endpoint("c", "ecu1").Subscribe("Ghost", func(Event) {})
	var ns *ErrNoService
	if !errors.As(err, &ns) {
		t.Errorf("err = %v", err)
	}
}

type denyAll struct{}

func (denyAll) Authorize(string, string) bool { return false }

func TestAuthorizationDenied(t *testing.T) {
	r := newRig(denyAll{})
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("S", OfferOpts{Network: "backbone", Handler: func(any) (int, any, sim.Duration) { return 0, nil, 0 }})
	cons := r.mw.Endpoint("c", "ecu2")
	var ua *ErrUnauthorized
	if err := cons.Subscribe("S", func(Event) {}); !errors.As(err, &ua) {
		t.Errorf("subscribe err = %v", err)
	}
	if err := cons.Call("S", 8, nil, nil); !errors.As(err, &ua) {
		t.Errorf("call err = %v", err)
	}
	if r.mw.DeniedBindings != 2 {
		t.Errorf("DeniedBindings = %d", r.mw.DeniedBindings)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	cons := r.mw.Endpoint("c", "ecu1")
	prod.Offer("S", OfferOpts{})
	n := 0
	cons.Subscribe("S", func(Event) { n++ })
	prod.Publish("S", 4, nil)
	r.k.Run()
	cons.Unsubscribe("S")
	prod.Publish("S", 4, nil)
	r.k.Run()
	if n != 1 {
		t.Errorf("deliveries = %d, want 1", n)
	}
}

func TestRemoveEndpointRemovesOffersAndSubs(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	cons := r.mw.Endpoint("c", "ecu1")
	prod.Offer("S", OfferOpts{})
	cons.Subscribe("S", func(Event) {})
	r.mw.RemoveEndpoint("c")
	if len(r.mw.svcs["S"].subs) != 0 {
		t.Error("subscription survived RemoveEndpoint")
	}
	r.mw.RemoveEndpoint("p")
	if _, _, err := r.mw.Find("S"); err == nil {
		t.Error("offer survived RemoveEndpoint")
	}
}

func TestSegmentationOverCAN(t *testing.T) {
	// A 64-byte event over CAN must be split into 8-byte frames.
	k := sim.NewKernel(1)
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000})
	mw := New(k, nil)
	mw.AddNetwork(bus, can.MaxPayload)
	prod := mw.Endpoint("p", "ecu1")
	cons := mw.Endpoint("c", "ecu2")
	prod.Offer("Big", OfferOpts{Network: "body"})
	var got []Event
	cons.Subscribe("Big", func(ev Event) { got = append(got, ev) })
	prod.Publish("Big", 64, nil)
	k.Run()
	if len(got) != 1 {
		t.Fatalf("events = %d", len(got))
	}
	// 64B payload + 17B header = 81B → 11 CAN frames.
	if bus.FramesSent != 11 {
		t.Errorf("frames = %d, want 11", bus.FramesSent)
	}
	// Delivery completes only after the last frame.
	wantMin := 10 * bus.FrameTime(8)
	if got[0].Latency() < wantMin {
		t.Errorf("latency = %v < %v", got[0].Latency(), wantMin)
	}
}

func TestLocalOnlyInterfacePanicsCrossECU(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	cons := r.mw.Endpoint("c", "ecu2")
	prod.Offer("Local", OfferOpts{}) // no network
	cons.Subscribe("Local", func(Event) {})
	defer func() {
		if recover() == nil {
			t.Error("cross-ECU publish on local-only interface did not panic")
		}
	}()
	prod.Publish("Local", 4, nil)
	r.k.Run()
}

func TestPublishUnofferedPanics(t *testing.T) {
	r := newRig(nil)
	ep := r.mw.Endpoint("p", "ecu1")
	defer func() {
		if recover() == nil {
			t.Error("publish of unoffered interface did not panic")
		}
	}()
	ep.Publish("Nope", 4, nil)
}

func TestStreamDelivery(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("cam", "ecu1")
	cons := r.mw.Endpoint("viz", "ecu2")
	prod.Offer("Video", OfferOpts{Network: "backbone", Class: network.ClassBulk})
	rx := &StreamReceiver{KeyInterval: 10}
	cons.Subscribe("Video", rx.Consume)
	st := prod.OpenStream("Video", 10)
	r.k.Every(0, sim.Millisecond, func() {
		if st.Seq() < 50 {
			st.SendFrame(1000, nil)
		}
	})
	r.k.RunUntil(sim.Time(100 * sim.Millisecond))
	if rx.Frames != 50 {
		t.Errorf("frames = %d, want 50", rx.Frames)
	}
	if rx.Stalled != 0 {
		t.Errorf("stalled = %d, want 0", rx.Stalled)
	}
	if rx.InterFrame.Count() != 49 {
		t.Errorf("inter-frame samples = %d", rx.InterFrame.Count())
	}
	// In-order network, periodic send → inter-frame jitter ≈ 0.
	if j := rx.InterFrame.Jitter(); j > 10*sim.Microsecond {
		t.Errorf("stream jitter = %v", j)
	}
}

func TestStreamReceiverStallOnGap(t *testing.T) {
	rx := &StreamReceiver{KeyInterval: 4}
	mk := func(seq uint32, at sim.Time) Event {
		return Event{Seq: seq, Delivered: at, Published: at}
	}
	rx.Consume(mk(0, 10)) // key
	rx.Consume(mk(1, 20))
	rx.Consume(mk(3, 30)) // gap: 2 missing → stall
	if rx.Stalled != 1 || rx.Frames != 2 {
		t.Fatalf("frames=%d stalled=%d", rx.Frames, rx.Stalled)
	}
	rx.Consume(mk(4, 40)) // key frame resynchronizes
	if rx.Frames != 3 || rx.Stalled != 1 {
		t.Errorf("after key: frames=%d stalled=%d", rx.Frames, rx.Stalled)
	}
	rx.Consume(mk(5, 50))
	if rx.Frames != 4 {
		t.Errorf("frames = %d", rx.Frames)
	}
}

func TestMigrateChangesDeliveryPath(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	cons := r.mw.Endpoint("c", "ecu1")
	prod.Offer("S", OfferOpts{Network: "backbone"})
	var lats []sim.Duration
	cons.Subscribe("S", func(ev Event) { lats = append(lats, ev.Latency()) })
	prod.Publish("S", 8, nil)
	r.k.Run()
	cons.Migrate("ecu2")
	prod.Publish("S", 8, nil)
	r.k.Run()
	if len(lats) != 2 {
		t.Fatalf("events = %d", len(lats))
	}
	if lats[0] != LocalDelay {
		t.Errorf("local latency = %v", lats[0])
	}
	if lats[1] <= lats[0] {
		t.Errorf("cross-ECU latency %v should exceed local %v", lats[1], lats[0])
	}
}
