package soa

import (
	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// Timed service discovery in the SOME/IP-SD style: a client broadcasts a
// FindService entry on its networks and the providing ECU answers with an
// OfferService entry. Find/Offer latency is part of the cost of the
// paper's "dynamic bindings of services at runtime" (Section 4.2) — the
// in-process registry answers instantly, but a real vehicle pays the
// wire round trip measured here.

// discoveryID is the reserved technology message ID for SD traffic.
const discoveryID uint32 = 0xFFFE

// sdMsgBytes is the on-wire size of one SD entry.
const sdMsgBytes = 60

type sdFind struct {
	iface   string
	fromECU string
	token   uint64
}

type sdOffer struct {
	iface    string
	provider string
	version  int
	token    uint64
}

// DiscoveryResult reports a completed Discover call.
type DiscoveryResult struct {
	Found    bool
	Provider string
	Version  int
	// RTT is find-to-offer latency (zero for local/timeout results).
	RTT sim.Duration
}

// Discover performs a timed FindService for an interface. A provider on
// the same ECU answers immediately; a remote provider answers over the
// wire; an unknown service reports Found=false after timeout.
func (e *Endpoint) Discover(iface string, timeout sim.Duration, done func(DiscoveryResult)) {
	if timeout <= 0 {
		timeout = 100 * sim.Millisecond
	}
	svc, ok := e.m.svcs[iface]
	if ok && e.m.ECUDown(svc.provider.ecu) {
		// The provider's ECU is silenced by a fault: neither the local
		// registry nor the wire may answer for it — the find times out
		// exactly as it would against a crashed ECU, instead of handing
		// the client a stale listing (the eviction fix).
		e.m.k.After(timeout, func() { done(DiscoveryResult{}) })
		return
	}
	if ok && (svc.provider.ecu == e.ecu || svc.netName == "") {
		// Local provider (or local-only service): registry answer.
		e.m.k.After(LocalDelay, func() {
			done(DiscoveryResult{Found: true, Provider: svc.provider.app, Version: svc.version})
		})
		return
	}
	if !ok || svc.netName == "" {
		// Nothing offers it anywhere reachable: timeout.
		e.m.k.After(timeout, func() { done(DiscoveryResult{}) })
		return
	}
	ni := e.m.nets[svc.netName]
	e.m.ensureAttached(ni, e.ecu)
	e.m.ensureAttached(ni, svc.provider.ecu)
	e.m.sdToken++
	token := e.m.sdToken
	start := e.m.k.Now()
	answered := false
	e.m.sdWaiters[token] = func(offer sdOffer) {
		if answered {
			return
		}
		answered = true
		delete(e.m.sdWaiters, token)
		done(DiscoveryResult{
			Found: true, Provider: offer.provider, Version: offer.version,
			RTT: e.m.k.Now().Sub(start),
		})
	}
	e.m.k.After(timeout, func() {
		if answered {
			return
		}
		answered = true
		delete(e.m.sdWaiters, token)
		done(DiscoveryResult{})
	})
	ni.net.Send(network.Message{
		ID: discoveryID, Src: e.ecu, Class: network.ClassPriority,
		Bytes:   sdMsgBytes,
		Payload: sdFind{iface: iface, fromECU: e.ecu, token: token},
	})
}

// handleSD processes discovery traffic at an attached station.
func (m *Middleware) handleSD(station string, d network.Delivery) bool {
	switch p := d.Msg.Payload.(type) {
	case sdFind:
		svc, ok := m.svcs[p.iface]
		if !ok || svc.provider.ecu != station || svc.netName == "" {
			return true // not ours to answer
		}
		if m.ECUDown(station) {
			// A find that slipped through while this station's fault was
			// being injected: a down ECU never answers SD.
			return true
		}
		ni := m.nets[svc.netName]
		m.k.Trace("soa-sd", "%s answers find(%s) from %s", station, p.iface, p.fromECU)
		ni.net.Send(network.Message{
			ID: discoveryID, Src: station, Dst: p.fromECU, Class: network.ClassPriority,
			Bytes: sdMsgBytes,
			Payload: sdOffer{iface: p.iface, provider: svc.provider.app,
				version: svc.version, token: p.token},
		})
		return true
	case sdOffer:
		if w, ok := m.sdWaiters[p.token]; ok {
			w(p)
		}
		return true
	}
	return false
}
