package soa

import (
	"fmt"

	"dynaplat/internal/sim"
)

// Stream implements the third Figure 3 paradigm: one-way continuous data
// whose frames depend on their predecessors. A receiver can only decode
// frame n once every frame since the last key frame has arrived, so the
// middleware tracks continuity and decode stalls.
type Stream struct {
	ep    *Endpoint
	iface string
	seq   uint32
	// KeyInterval marks every k-th frame independent (a key frame);
	// 0 means only frame 0 is a key frame.
	KeyInterval uint32
}

// OpenStream starts publishing a stream on an interface the endpoint
// offers. keyInterval sets the key-frame cadence.
func (e *Endpoint) OpenStream(iface string, keyInterval uint32) *Stream {
	svc, ok := e.m.svcs[iface]
	if !ok || svc.provider != e {
		panic(fmt.Sprintf("soa: %s streams unoffered interface %s", e.app, iface))
	}
	return &Stream{ep: e, iface: iface, KeyInterval: keyInterval}
}

// SendFrame publishes the next stream frame to all subscribers.
func (s *Stream) SendFrame(bytes int, payload any) {
	s.ep.publish(s.iface, s.seq, bytes, payload)
	s.seq++
}

// Seq returns the next frame sequence number.
func (s *Stream) Seq() uint32 { return s.seq }

// StreamReceiver reassembles a frame sequence on the consumer side and
// accounts for decode stalls caused by inter-frame dependencies.
type StreamReceiver struct {
	KeyInterval uint32

	next sim.Time // last delivery time, for inter-frame gap
	seen uint32   // next expected sequence number
	// Frames counts decodable frames; Stalled counts frames that arrived
	// with a predecessor missing (undecodable until the next key frame).
	Frames  int64
	Stalled int64
	// InterFrame samples the gap between consecutive deliveries — the
	// stream-jitter measure used in experiment E2.
	InterFrame sim.Sample
	stalling   bool
}

// Consume processes one delivered stream event.
func (r *StreamReceiver) Consume(ev Event) {
	if r.next != 0 {
		r.InterFrame.AddDuration(ev.Delivered.Sub(r.next))
	}
	r.next = ev.Delivered
	isKey := ev.Seq == 0 || (r.KeyInterval > 0 && ev.Seq%r.KeyInterval == 0)
	switch {
	case isKey:
		// Key frames always decode and resynchronize the stream.
		r.stalling = false
		r.seen = ev.Seq + 1
		r.Frames++
	case ev.Seq == r.seen && !r.stalling:
		r.seen = ev.Seq + 1
		r.Frames++
	default:
		// Dependency broken: undecodable until the next key frame.
		r.stalling = true
		r.seen = ev.Seq + 1
		r.Stalled++
	}
}
