package soa

import (
	"encoding/binary"
	"hash/crc32"
)

// End-to-end communication protection in the AUTOSAR E2E style: safety
// payloads are wrapped with a data ID, an alive counter and a CRC so the
// *receiver* can detect corruption, repetition, loss and masquerading
// regardless of what the channel below did. The paper's safety argument
// (Section 3) requires exactly this property once communication paths
// become dynamic: trust moves from the (static, qualified) channel to the
// (checkable) message.

// E2EStatus is the receiver-side verdict for one protected payload.
type E2EStatus int

const (
	// E2EOK means the payload is fresh and intact.
	E2EOK E2EStatus = iota
	// E2EWrongCRC means the payload or header was corrupted.
	E2EWrongCRC
	// E2EWrongID means a message from a different data stream arrived
	// (masquerade/misrouting).
	E2EWrongID
	// E2ERepetition means the same counter arrived again.
	E2ERepetition
	// E2ELoss means one or more messages were skipped (counter jumped).
	E2ELoss
)

func (s E2EStatus) String() string {
	switch s {
	case E2EOK:
		return "ok"
	case E2EWrongCRC:
		return "wrong-crc"
	case E2EWrongID:
		return "wrong-id"
	case E2ERepetition:
		return "repetition"
	case E2ELoss:
		return "loss"
	}
	return "unknown"
}

// E2EHeaderSize is the wrapping overhead in bytes.
const E2EHeaderSize = 10 // dataID(4) + counter(2) + crc(4)

// E2ESender wraps payloads for one protected data stream.
type E2ESender struct {
	DataID  uint32
	counter uint16
}

// Protect wraps payload with the E2E header and advances the counter.
func (s *E2ESender) Protect(payload []byte) []byte {
	buf := make([]byte, E2EHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:], s.DataID)
	binary.BigEndian.PutUint16(buf[4:], s.counter)
	copy(buf[E2EHeaderSize:], payload)
	// CRC covers dataID, counter and payload; it lives at bytes 6..10.
	crc := crc32.ChecksumIEEE(append(buf[:6:6], buf[E2EHeaderSize:]...))
	binary.BigEndian.PutUint32(buf[6:], crc)
	s.counter++
	return buf
}

// E2EReceiver validates one protected data stream.
type E2EReceiver struct {
	DataID uint32

	expect  uint16
	started bool

	// Counters by verdict.
	OK, WrongCRC, WrongID, Repetition, Loss int64
}

// Check validates a wrapped payload, returning the verdict and (when the
// envelope is intact) the inner payload.
func (r *E2EReceiver) Check(buf []byte) (E2EStatus, []byte) {
	if len(buf) < E2EHeaderSize {
		r.WrongCRC++
		return E2EWrongCRC, nil
	}
	dataID := binary.BigEndian.Uint32(buf[0:])
	counter := binary.BigEndian.Uint16(buf[4:])
	crc := binary.BigEndian.Uint32(buf[6:])
	payload := buf[E2EHeaderSize:]
	want := crc32.ChecksumIEEE(append(buf[:6:6], payload...))
	if crc != want {
		r.WrongCRC++
		return E2EWrongCRC, nil
	}
	if dataID != r.DataID {
		r.WrongID++
		return E2EWrongID, payload
	}
	if r.started {
		switch delta := counter - r.expect; {
		case delta == 0:
			// fresh, in sequence
		case delta == 0xFFFF: // counter == expect-1: repeat of last
			r.Repetition++
			return E2ERepetition, payload
		default:
			r.Loss++
			r.expect = counter + 1
			return E2ELoss, payload
		}
	}
	r.started = true
	r.expect = counter + 1
	r.OK++
	return E2EOK, payload
}
