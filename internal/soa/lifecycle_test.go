package soa

import (
	"testing"

	"dynaplat/internal/can"
	"dynaplat/internal/sim"
)

// Regression tests for the subscription/endpoint lifecycle seams: QoS
// deadline supervision must stop (and release its kernel event) the
// moment a subscription is dropped, and frames already in flight to a
// just-removed endpoint must be dead-lettered, not delivered.

// Pre-fix: superviseDeadline re-armed with a bare k.After and no handle,
// so the final pending timer outlived the subscription — QueueLive never
// returned to baseline and the orphan fired once into a dead check.
func TestDeadlineSupervisionStopsAtUnsubscribe(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{})
	cons := r.mw.Endpoint("c", "ecu1")
	baseline := r.k.Stats().QueueLive
	misses := 0
	if err := cons.SubscribeQoS("Speed", QoS{
		Deadline:       20 * sim.Millisecond,
		OnDeadlineMiss: func(string, sim.Duration) { misses++ },
	}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	// Unsubscribe mid-gap: the supervision timer is armed and the gap is
	// already half over.
	r.k.RunUntil(sim.Time(10 * sim.Millisecond))
	cons.Unsubscribe("Speed")
	if live := r.k.Stats().QueueLive; live != baseline {
		t.Errorf("QueueLive after unsubscribe = %d, want baseline %d (leaked supervision timer)", live, baseline)
	}
	fired := r.k.Stats().Fired
	r.k.RunUntil(sim.Time(500 * sim.Millisecond))
	if misses != 0 {
		t.Errorf("OnDeadlineMiss fired %d times after unsubscribe, want 0", misses)
	}
	if extra := r.k.Stats().Fired - fired; extra != 0 {
		t.Errorf("%d kernel events fired after unsubscribe, want 0", extra)
	}
}

func TestDeadlineSupervisionStopsAtRemoveEndpoint(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{})
	cons := r.mw.Endpoint("c", "ecu1")
	baseline := r.k.Stats().QueueLive
	misses := 0
	if err := cons.SubscribeQoS("Speed", QoS{
		Deadline:       20 * sim.Millisecond,
		OnDeadlineMiss: func(string, sim.Duration) { misses++ },
	}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(10 * sim.Millisecond))
	r.mw.RemoveEndpoint("c")
	if live := r.k.Stats().QueueLive; live != baseline {
		t.Errorf("QueueLive after RemoveEndpoint = %d, want baseline %d", live, baseline)
	}
	r.k.RunUntil(sim.Time(500 * sim.Millisecond))
	if misses != 0 {
		t.Errorf("OnDeadlineMiss fired %d times after RemoveEndpoint, want 0", misses)
	}
}

// Removing the *provider* deletes the whole service; supervision timers
// of surviving subscribers must be released too.
func TestDeadlineSupervisionStopsWhenProviderRemoved(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{})
	cons := r.mw.Endpoint("c", "ecu1")
	baseline := r.k.Stats().QueueLive
	if err := cons.SubscribeQoS("Speed", QoS{Deadline: 20 * sim.Millisecond},
		func(Event) {}); err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(10 * sim.Millisecond))
	r.mw.RemoveEndpoint("p")
	if live := r.k.Stats().QueueLive; live != baseline {
		t.Errorf("QueueLive after provider removal = %d, want baseline %d", live, baseline)
	}
}

// Pre-fix: SubscribeQoS armed the supervision timer before the
// authorization check, so a denied binding still left a ticking timer.
func TestDeadlineSupervisionNotArmedOnDeniedBinding(t *testing.T) {
	r := newRig(denyAll{})
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Speed", OfferOpts{})
	cons := r.mw.Endpoint("c", "ecu1")
	baseline := r.k.Stats().QueueLive
	if err := cons.SubscribeQoS("Speed", QoS{Deadline: 20 * sim.Millisecond},
		func(Event) {}); err == nil {
		t.Fatal("expected unauthorized error")
	}
	if live := r.k.Stats().QueueLive; live != baseline {
		t.Errorf("QueueLive after denied SubscribeQoS = %d, want baseline %d (timer armed before auth)", live, baseline)
	}
}

// Pre-fix: a frame already on the wire to a just-removed endpoint was
// delivered into the dead subscriber's callback. Now it is dropped with
// account (DeadLetters).
func TestRemoveEndpointInFlightDeliveryTSN(t *testing.T) {
	r := newRig(nil) // rig's backbone is TSN
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Data", OfferOpts{Network: "backbone"})
	cons := r.mw.Endpoint("c", "ecu2")
	delivered := 0
	if err := cons.Subscribe("Data", func(Event) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	prod.Publish("Data", 100, nil)
	r.mw.RemoveEndpoint("c") // frame is on the wire
	r.k.Run()
	if delivered != 0 {
		t.Errorf("delivered %d events to removed endpoint, want 0", delivered)
	}
	if r.mw.DeadLetters != 1 {
		t.Errorf("DeadLetters = %d, want 1", r.mw.DeadLetters)
	}
}

func TestRemoveEndpointInFlightDeliveryCAN(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000})
	mw := New(k, nil)
	mw.AddNetwork(bus, 8)
	prod := mw.Endpoint("p", "ecu1")
	prod.Offer("Door", OfferOpts{Network: "body"})
	cons := mw.Endpoint("c", "ecu2")
	delivered := 0
	if err := cons.Subscribe("Door", func(Event) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	prod.Publish("Door", 4, nil) // segmented onto the CAN bus
	mw.RemoveEndpoint("c")       // removal between publish and delivery
	k.Run()
	if delivered != 0 {
		t.Errorf("delivered %d events to removed endpoint, want 0", delivered)
	}
	if mw.DeadLetters != 1 {
		t.Errorf("DeadLetters = %d, want 1", mw.DeadLetters)
	}
}

// Unsubscribing between subscription and the (LocalDelay-deferred)
// history replay must also dead-letter the pending history samples.
func TestUnsubscribeBeforeHistoryReplay(t *testing.T) {
	r := newRig(nil)
	prod := r.mw.Endpoint("p", "ecu1")
	prod.Offer("Gear", OfferOpts{})
	if err := prod.EnableHistory("Gear", 2); err != nil {
		t.Fatal(err)
	}
	prod.Publish("Gear", 1, nil)
	prod.Publish("Gear", 1, nil)
	r.k.Run()
	cons := r.mw.Endpoint("c", "ecu1")
	got := 0
	if err := cons.SubscribeQoS("Gear", QoS{History: 2}, func(Event) { got++ }); err != nil {
		t.Fatal(err)
	}
	cons.Unsubscribe("Gear") // before the history replay events fire
	r.k.Run()
	if got != 0 {
		t.Errorf("history delivered %d samples after unsubscribe, want 0", got)
	}
	if r.mw.DeadLetters != 2 {
		t.Errorf("DeadLetters = %d, want 2", r.mw.DeadLetters)
	}
}
