package soa

// Client-side load balancing over replicated provider instances
// (mesh.go). Selection is deterministic: the candidate list is the
// service's instance slice (sorted by application name at registration),
// filtered by health and breaker state before a policy is applied, so
// the chosen instance is a pure function of mesh state — no goroutines,
// no wall clock, no unordered map iteration.

// BalancePolicy selects the dispatch target among eligible instances.
type BalancePolicy uint8

const (
	// PolicyRoundRobin rotates a per-service cursor over the eligible
	// instances.
	PolicyRoundRobin BalancePolicy = iota
	// PolicyLeastPending picks the instance with the fewest dispatched
	// plus queued calls (ties broken by registration order).
	PolicyLeastPending
	// PolicyZoneLocal prefers instances in the caller's zone (traffic
	// stays off the inter-zone gateway, E18); falls back to round-robin
	// across the remaining zones when the local zone has no eligible
	// instance.
	PolicyZoneLocal
)

func (p BalancePolicy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLeastPending:
		return "least-pending"
	case PolicyZoneLocal:
		return "zone-local"
	}
	return "?"
}

// load is the balancing pressure of an instance: dispatched calls in
// flight plus calls waiting in its admission queue.
func (i *meshInstance) load() int { return i.active + len(i.queue) }

// pick applies the mesh's balancing policy to the eligible instances.
// elig is non-empty and preserves registration (sorted-by-app) order.
func (ms *Mesh) pick(svc *meshService, client *Endpoint, elig []*meshInstance) *meshInstance {
	switch ms.cfg.Policy {
	case PolicyLeastPending:
		best := elig[0]
		for _, inst := range elig[1:] {
			if inst.load() < best.load() {
				best = inst
			}
		}
		return best
	case PolicyZoneLocal:
		zone := ms.zones[client.ecu]
		if zone != "" {
			var local []*meshInstance
			for _, inst := range elig {
				if ms.zones[inst.ep.ECU()] == zone {
					local = append(local, inst)
				}
			}
			if len(local) > 0 {
				return ms.roundRobin(svc, local)
			}
		}
		inst := ms.roundRobin(svc, elig)
		if zone != "" && ms.zones[inst.ep.ECU()] != zone {
			svc.crossZone++
		}
		return inst
	default: // PolicyRoundRobin
		return ms.roundRobin(svc, elig)
	}
}

func (ms *Mesh) roundRobin(svc *meshService, elig []*meshInstance) *meshInstance {
	inst := elig[svc.rr%len(elig)]
	svc.rr++
	return inst
}
