package soa

import (
	"fmt"
	"testing"

	"dynaplat/internal/faults"
	"dynaplat/internal/sim"
	"dynaplat/internal/tsn"
)

// Service-mesh tests: balancing policies, the breaker state machine
// (including migration while the edge is open), criticality-ordered
// shedding with conservation, campaign-driven eviction of dead
// instances, and the per-session retry-jitter streams.

type meshRig struct {
	k     *sim.Kernel
	mw    *Middleware
	ms    *Mesh
	dn    *dropNet
	cli   *Endpoint
	provs []*Endpoint
	// runsAt logs (app, ECU at execution time) per handler run.
	runsAt []string
}

// newMeshRig builds a mesh with one provider instance of "svc.echo" per
// entry of execs (prov-a on ecu-a with execs[0], prov-b on ecu-b with
// execs[1], ...) and a client on ecu-cli, all on one TSN backbone behind
// a dropNet for loss injection.
func newMeshRig(seed uint64, cfg MeshConfig, execs []sim.Duration) *meshRig {
	k := sim.NewKernel(seed)
	dn := &dropNet{
		inner:   tsn.New(k, tsn.DefaultConfig("backbone")),
		dropDst: map[string]bool{},
	}
	mw := New(k, nil)
	mw.AddNetwork(dn, 1400)
	r := &meshRig{k: k, mw: mw, dn: dn, ms: NewMesh(mw, cfg)}
	r.cli = mw.Endpoint("client", "ecu-cli")
	for i, exec := range execs {
		app := fmt.Sprintf("prov-%c", 'a'+i)
		ep := mw.Endpoint(app, fmt.Sprintf("ecu-%c", 'a'+i))
		app, exec := app, exec
		r.ms.Offer(ep, "svc.echo", OfferOpts{Network: "backbone",
			Handler: func(any) (int, any, sim.Duration) {
				r.runsAt = append(r.runsAt, app+"@"+ep.ECU())
				return 16, app, exec
			}})
		r.provs = append(r.provs, ep)
	}
	return r
}

func (r *meshRig) opts(crit Criticality, perTry sim.Duration, pol RetryPolicy) MeshCallOpts {
	return MeshCallOpts{Criticality: crit, ReqBytes: 32, PerTry: perTry, Retry: pol}
}

// onceOnly is a single-attempt policy for tests that must not retry.
func onceOnly() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// TestMeshRoundRobinDistribution: round-robin spreads sequential calls
// evenly over the replicas in sorted instance order.
func TestMeshRoundRobinDistribution(t *testing.T) {
	r := newMeshRig(3, MeshConfig{Policy: PolicyRoundRobin},
		[]sim.Duration{200 * sim.Microsecond, 200 * sim.Microsecond, 200 * sim.Microsecond})
	served := 0
	for i := 0; i < 9; i++ {
		i := i
		r.k.At(sim.Time(sim.Duration(i)*5*sim.Millisecond), func() {
			err := r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 20*sim.Millisecond, onceOnly()),
				func(Event) { served++ }, nil)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		})
	}
	r.k.Run()
	if served != 9 {
		t.Fatalf("served = %d, want 9", served)
	}
	for _, st := range r.ms.InstanceStats("svc.echo") {
		if st.Dispatched != 3 {
			t.Errorf("instance %s dispatched %d, want 3 (round-robin)", st.App, st.Dispatched)
		}
	}
	if !r.ms.Conserved() {
		t.Error("conservation violated")
	}
}

// TestMeshLeastPendingAvoidsBusyInstance: with one replica stuck in a
// long execution, least-pending steers every subsequent call to an idle
// replica — round-robin would keep feeding the busy one.
func TestMeshLeastPendingAvoidsBusyInstance(t *testing.T) {
	r := newMeshRig(3, MeshConfig{Policy: PolicyLeastPending, Concurrency: 1},
		[]sim.Duration{50 * sim.Millisecond, sim.Millisecond, sim.Millisecond})
	served := 0
	for i := 0; i < 8; i++ {
		r.k.At(sim.Time(sim.Duration(i)*5*sim.Millisecond), func() {
			_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 100*sim.Millisecond, onceOnly()),
				func(Event) { served++ }, nil)
		})
	}
	r.k.Run()
	if served != 8 {
		t.Fatalf("served = %d, want 8", served)
	}
	st := r.ms.InstanceStats("svc.echo")
	if st[0].Dispatched != 1 {
		t.Errorf("busy instance %s dispatched %d, want exactly the first call "+
			"(least-pending must avoid it; round-robin would send ~3)", st[0].App, st[0].Dispatched)
	}
	if st[1].Dispatched+st[2].Dispatched != 7 {
		t.Errorf("idle instances dispatched %d+%d, want 7 total",
			st[1].Dispatched, st[2].Dispatched)
	}
}

// TestMeshZoneLocalRouting: zone-local keeps calls inside the caller's
// zone while a local replica is healthy and crosses zones — counted —
// only when the zone is dark.
func TestMeshZoneLocalRouting(t *testing.T) {
	r := newMeshRig(5, MeshConfig{Policy: PolicyZoneLocal},
		[]sim.Duration{200 * sim.Microsecond, 200 * sim.Microsecond})
	r.ms.SetZone("ecu-a", "front")
	r.ms.SetZone("ecu-b", "rear")
	r.ms.SetZone("ecu-cli", "front")

	served := 0
	call := func(at sim.Duration) {
		r.k.At(sim.Time(at), func() {
			_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 20*sim.Millisecond, onceOnly()),
				func(Event) { served++ }, nil)
		})
	}
	for _, at := range []sim.Duration{0, 5, 10, 15} {
		call(at * sim.Millisecond)
	}
	r.k.At(sim.Time(20*sim.Millisecond), func() { r.ms.MarkECUDown("ecu-a", true) })
	for _, at := range []sim.Duration{25, 30, 35} {
		call(at * sim.Millisecond)
	}
	r.k.At(sim.Time(40*sim.Millisecond), func() { r.ms.MarkECUDown("ecu-a", false) })
	call(45 * sim.Millisecond)
	r.k.Run()

	if served != 8 {
		t.Fatalf("served = %d, want 8", served)
	}
	st := r.ms.InstanceStats("svc.echo")
	if st[0].Dispatched != 5 || st[1].Dispatched != 3 {
		t.Errorf("dispatched = %d/%d, want 5 zone-local + 3 cross-zone fallbacks",
			st[0].Dispatched, st[1].Dispatched)
	}
	if got := r.ms.CrossZone("svc.echo"); got != 3 {
		t.Errorf("CrossZone = %d, want 3 (only the calls during the outage)", got)
	}
}

// TestMeshBreakerLifecycle walks the full state machine on one
// client→instance edge: closed, tripped open by the failure window,
// half-open on the cool-down timer, and re-closed by a successful
// probe — with dead-letter accounting for the calls the open edge
// rejected.
func TestMeshBreakerLifecycle(t *testing.T) {
	bc := BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: 20 * sim.Millisecond}
	r := newMeshRig(7, MeshConfig{Breaker: &bc}, []sim.Duration{200 * sim.Microsecond})
	r.dn.dropDst["ecu-a"] = true // requests to the only instance vanish

	var fails []FailReason
	served := 0
	// Call 1: two attempts burn timeouts (failures #1 and #2 → trip at
	// 6 ms), the third finds no eligible instance and dead-letters.
	_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 2*sim.Millisecond, noJitterPolicy()),
		func(Event) { served++ }, func(fr FailReason) { fails = append(fails, fr) })
	// Call 2 arrives while the edge is open: immediate dead-letter,
	// without touching the dead instance.
	r.k.At(sim.Time(8*sim.Millisecond), func() {
		_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 2*sim.Millisecond, onceOnly()),
			func(Event) { served++ }, func(fr FailReason) { fails = append(fails, fr) })
	})
	key := edgeKey("client", "svc.echo#prov-a")
	r.k.At(sim.Time(11*sim.Millisecond), func() {
		if st := r.ms.breakers[key].State(); st != BreakerOpen {
			t.Errorf("state at 11ms = %v, want open", st)
		}
	})
	r.k.At(sim.Time(15*sim.Millisecond), func() { delete(r.dn.dropDst, "ecu-a") })
	r.k.At(sim.Time(27*sim.Millisecond), func() {
		if st := r.ms.breakers[key].State(); st != BreakerHalfOpen {
			t.Errorf("state at 27ms = %v, want half-open", st)
		}
	})
	// Call 3 is the half-open probe: the wire is healed, so it closes
	// the breaker and is served.
	r.k.At(sim.Time(30*sim.Millisecond), func() {
		_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 2*sim.Millisecond, onceOnly()),
			func(Event) { served++ }, func(fr FailReason) { fails = append(fails, fr) })
	})
	r.k.Run()

	br := r.ms.breakers[key]
	if br == nil {
		t.Fatal("no breaker created for the edge")
	}
	if br.State() != BreakerClosed || br.Trips() != 1 {
		t.Errorf("final state=%v trips=%d, want closed after 1 trip", br.State(), br.Trips())
	}
	if samples, _ := br.Window(); samples != 0 {
		t.Errorf("window samples = %d, want 0 (reset on close)", samples)
	}
	if served != 1 || len(fails) != 2 ||
		fails[0] != FailDeadLetter || fails[1] != FailDeadLetter {
		t.Errorf("served=%d fails=%v, want 1 served + 2 dead-letters", served, fails)
	}
	if r.ms.BreakerTrips != 1 || r.ms.Timeouts != 2 || r.ms.DeadLettered != 2 {
		t.Errorf("trips=%d timeouts=%d dead=%d, want 1/2/2",
			r.ms.BreakerTrips, r.ms.Timeouts, r.ms.DeadLettered)
	}
	if st := r.ms.InstanceStats("svc.echo"); st[0].Dispatched != 3 {
		t.Errorf("dispatched = %d, want 3 (two timed-out attempts + the probe; "+
			"the open window must not dispatch)", st[0].Dispatched)
	}
	if !r.ms.Conserved() {
		t.Error("conservation violated")
	}
}

// TestMeshMigrateWhileBreakerOpen: the provider migrates while its edge
// is open. The breaker is keyed by application identity, so the edge
// keeps its object, window and trip count across the move, and the
// half-open probe is delivered to the instance's new home.
func TestMeshMigrateWhileBreakerOpen(t *testing.T) {
	bc := BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: 20 * sim.Millisecond}
	r := newMeshRig(11, MeshConfig{Breaker: &bc}, []sim.Duration{200 * sim.Microsecond})
	r.dn.dropDst["ecu-a"] = true

	_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 2*sim.Millisecond, noJitterPolicy()),
		nil, nil) // trips the edge at 6 ms, dead-letters at 10 ms
	key := edgeKey("client", "svc.echo#prov-a")
	var before *Breaker
	r.k.At(sim.Time(12*sim.Millisecond), func() {
		before = r.ms.breakers[key]
		if before.State() != BreakerOpen {
			t.Errorf("state at migration = %v, want open", before.State())
		}
		r.provs[0].Migrate("ecu-z") // ecu-z is not dropped
	})
	var got []Event
	r.k.At(sim.Time(30*sim.Millisecond), func() {
		_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 5*sim.Millisecond, onceOnly()),
			func(ev Event) { got = append(got, ev) }, nil)
	})
	r.k.Run()

	after := r.ms.breakers[key]
	if after != before {
		t.Fatal("migration replaced the breaker object; edge state must survive the move")
	}
	if after.State() != BreakerClosed || after.Trips() != 1 {
		t.Errorf("state=%v trips=%d, want closed with the pre-migration trip kept",
			after.State(), after.Trips())
	}
	if len(got) != 1 {
		t.Fatalf("probe served %d calls, want 1", len(got))
	}
	if len(r.runsAt) != 1 || r.runsAt[0] != "prov-a@ecu-z" {
		t.Errorf("handler runs = %v, want exactly one at the new home ecu-z", r.runsAt)
	}
	if !r.mw.attachedStations["backbone/ecu-z"] {
		t.Error("probe did not attach the instance's new station")
	}
	if !r.ms.Conserved() {
		t.Error("conservation violated")
	}
}

// TestMeshShedOrderingAndConservation: a full queue sheds strictly
// lowest-criticality-first, never sheds protected ASIL-D (admitting it
// beyond the bound instead), and the admission account balances.
func TestMeshShedOrderingAndConservation(t *testing.T) {
	r := newMeshRig(13, MeshConfig{QueueDepth: 2, Concurrency: 1},
		[]sim.Duration{10 * sim.Millisecond})
	outcome := map[int]string{}
	call := func(idx int, crit Criticality) {
		err := r.ms.Call(r.cli, "svc.echo", r.opts(crit, 200*sim.Millisecond, onceOnly()),
			func(Event) { outcome[idx] = "served" },
			func(fr FailReason) { outcome[idx] = fr.String() })
		if err != nil {
			t.Fatalf("call %d: %v", idx, err)
		}
	}
	// All at t=0: 1 dispatches, 2..3 fill the queue, then each arrival
	// forces an admission decision against the full queue.
	call(1, CritQM)    // dispatched
	call(2, CritQM)    // queued; later evicted by 4
	call(3, CritQM)    // queued; later evicted by 5
	call(4, CritASILB) // evicts 2 (oldest QM); later evicted by 6
	call(5, CritASILD) // evicts 3
	call(6, CritASILD) // evicts 4 (ASIL-B < D)
	call(7, CritASILD) // no victim below D: protected, admitted beyond bound
	call(8, CritQM)    // no victim, unprotected: shed on arrival
	r.k.Run()

	want := map[int]string{
		1: "served", 2: "shed", 3: "shed", 4: "shed",
		5: "served", 6: "served", 7: "served", 8: "shed",
	}
	for idx, w := range want {
		if outcome[idx] != w {
			t.Errorf("call %d = %q, want %q", idx, outcome[idx], w)
		}
	}
	if r.ms.Shed != 4 || r.ms.ShedByCrit[CritQM] != 3 || r.ms.ShedByCrit[CritASILB] != 1 {
		t.Errorf("shed=%d byCrit QM=%d B=%d, want 4/3/1",
			r.ms.Shed, r.ms.ShedByCrit[CritQM], r.ms.ShedByCrit[CritASILB])
	}
	if r.ms.ShedByCrit[CritASILD] != 0 || r.ms.ShedProtected != 0 {
		t.Errorf("protected sheds = %d/%d, want none ever",
			r.ms.ShedByCrit[CritASILD], r.ms.ShedProtected)
	}
	if r.ms.Offered != 8 || r.ms.Served != 4 || r.ms.DeadLettered != 0 {
		t.Errorf("offered=%d served=%d dead=%d, want 8/4/0",
			r.ms.Offered, r.ms.Served, r.ms.DeadLettered)
	}
	if !r.ms.Conserved() {
		t.Error("offered != served + shed + dead-lettered at quiescence")
	}
}

// fakeTarget is a minimal faults.Target for campaign-driven tests.
type fakeTarget struct{ down bool }

func (f *fakeTarget) Crash() []string     { f.down = true; return nil }
func (f *fakeTarget) Restore([]string)    { f.down = false }
func (f *fakeTarget) SetHung(bool)        {}
func (f *fakeTarget) SetSlowdown(float64) {}

// TestMeshCampaignEvictsCrashedProviders is the regression test for
// discovery listing providers on crashed ECUs: a campaign crash must
// evict the ECU's instances at the exact injection instant — service
// discovery times out instead of returning the stale listing, and the
// balancer stops dispatching there — and the repair re-admits them.
// Before the eviction fix, the mid-outage Discover returned the dead
// provider (Found=true), failing this test.
func TestMeshCampaignEvictsCrashedProviders(t *testing.T) {
	r := newMeshRig(17, MeshConfig{Policy: PolicyRoundRobin},
		[]sim.Duration{200 * sim.Microsecond, 200 * sim.Microsecond})
	camp := faults.NewCampaign(r.k, faults.Spec{
		Seed: 41, Horizon: 300 * sim.Millisecond,
		MTBF: 80 * sim.Millisecond, RepairMean: 40 * sim.Millisecond,
		Weights: faults.Weights{Crash: 1},
	})
	camp.AddTarget("ecu-a", &fakeTarget{})
	camp.HookECULifecycle(r.ms.ECULifecycle())
	camp.Start()
	if len(camp.Schedule) == 0 {
		t.Fatal("campaign drew no injections; pick another seed")
	}
	inj := camp.Schedule[0]
	if inj.RepairAt == 0 || inj.RepairAt.Sub(inj.At) < 10*sim.Millisecond {
		t.Fatalf("first outage %v..%v too short for the probes; pick another seed",
			inj.At, inj.RepairAt)
	}
	if len(camp.Schedule) > 1 && camp.Schedule[1].At < inj.RepairAt.Add(20*sim.Millisecond) {
		t.Fatalf("second injection at %v overlaps the probe window; pick another seed",
			camp.Schedule[1].At)
	}

	var midOutage, postRepair DiscoveryResult
	var dispDuringOutage, dispBefore int64
	served := 0
	r.k.At(inj.At.Add(2*sim.Millisecond), func() {
		dispBefore = r.ms.InstanceStats("svc.echo")[0].Dispatched
		r.cli.Discover("svc.echo#prov-a", 5*sim.Millisecond,
			func(res DiscoveryResult) { midOutage = res })
		// Traffic during the outage must route to the survivor.
		_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 20*sim.Millisecond, onceOnly()),
			func(Event) { served++ }, nil)
		_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 20*sim.Millisecond, onceOnly()),
			func(Event) { served++ }, nil)
	})
	r.k.At(inj.At.Add(9*sim.Millisecond), func() {
		dispDuringOutage = r.ms.InstanceStats("svc.echo")[0].Dispatched
	})
	r.k.At(inj.RepairAt.Add(2*sim.Millisecond), func() {
		r.cli.Discover("svc.echo#prov-a", 5*sim.Millisecond,
			func(res DiscoveryResult) { postRepair = res })
		// Two round-robin calls after re-admission: one must land on the
		// repaired instance again.
		_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 20*sim.Millisecond, onceOnly()),
			func(Event) { served++ }, nil)
		_ = r.ms.Call(r.cli, "svc.echo", r.opts(CritQM, 20*sim.Millisecond, onceOnly()),
			func(Event) { served++ }, nil)
	})
	r.k.RunUntil(inj.RepairAt.Add(40 * sim.Millisecond))

	if midOutage.Found {
		t.Error("Discover during the outage returned the crashed provider (stale listing)")
	}
	if dispDuringOutage != dispBefore {
		t.Errorf("crashed instance dispatched %d calls during the outage",
			dispDuringOutage-dispBefore)
	}
	if !postRepair.Found || postRepair.Provider != "prov-a" {
		t.Errorf("Discover after repair = %+v, want prov-a re-admitted", postRepair)
	}
	if final := r.ms.InstanceStats("svc.echo")[0].Dispatched; final != dispBefore+1 {
		t.Errorf("repaired instance dispatched %d post-repair calls, want 1 (round-robin)",
			final-dispBefore)
	}
	if served != 4 {
		t.Errorf("served = %d, want all 4 calls (2 rerouted + 2 post-repair)", served)
	}
}

// TestRetryJitterPerSessionStream: retry jitter must come from the
// per-session seeded stream, not the kernel's shared RNG — draining the
// shared RNG between runs must not move a single retry instant. Soaked
// twice to pin the exact virtual completion time.
func TestRetryJitterPerSessionStream(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 6, Backoff: 4 * sim.Millisecond,
		Multiplier: 2, JitterFrac: 0.5}
	run := func(burn int) sim.Time {
		r := newMigrateRig(29)
		r.dn.dropDst["ecu2"] = true // responses to the client vanish
		for i := 0; i < burn; i++ {
			r.k.RNG().Float64() // perturb the shared stream
		}
		var doneAt sim.Time
		err := r.cli.CallRetry("cfg.get", 32, nil, 2*sim.Millisecond, pol,
			func(Event) { doneAt = r.k.Now() }, func() {})
		if err != nil {
			t.Fatal(err)
		}
		r.k.At(sim.Time(9*sim.Millisecond), func() { delete(r.dn.dropDst, "ecu2") })
		r.k.Run()
		if doneAt == 0 {
			t.Fatal("call never completed; widen the retry policy")
		}
		if r.mw.RetryAttempts == 0 {
			t.Fatal("no retries happened; the jitter path was not exercised")
		}
		return doneAt
	}
	for soak := 0; soak < 2; soak++ {
		base := run(0)
		for _, burn := range []int{1, 17} {
			if got := run(burn); got != base {
				t.Errorf("soak %d: completion at %v after burning %d shared-RNG draws, "+
					"want %v — jitter leaked onto the shared stream", soak, got, burn, base)
			}
		}
	}
}
