package soa

// Bug zoo: historical defects reintroducible behind test-only flags, so
// the scenario fuzzer's oracle (internal/fuzz) can prove it would have
// caught them. The flags default to off and must only ever be set by
// tests — production code paths never read true here.

// BugUnsortedMigrateAttach, when true, makes Endpoint.Migrate attach the
// destination station to the endpoint's networks in raw map-iteration
// order instead of sorted order — the exact shape of the defect fixed
// when Migrate was introduced: attach order is visible in delivery
// dispatch and trace output, so two runs of the same seed diverge.
var BugUnsortedMigrateAttach bool
