// Package soa implements dynaplat's service-oriented middleware: service
// discovery (offer/find/subscribe), the paper's three communication
// paradigms — Event (publish/subscribe), Message (RPC) and Stream
// (continuous frames with inter-frame dependencies) — plus payload
// segmentation over the simulated networks and an authorization hook for
// dynamic binding (Sections 2.1 and 4.2).
package soa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MessageType tags a wire message.
type MessageType uint8

// Wire message types.
const (
	TypeEvent MessageType = iota + 1
	TypeRequest
	TypeResponse
	TypeStreamFrame
	TypeSubscribe
	TypeOffer
)

func (t MessageType) String() string {
	switch t {
	case TypeEvent:
		return "event"
	case TypeRequest:
		return "request"
	case TypeResponse:
		return "response"
	case TypeStreamFrame:
		return "stream-frame"
	case TypeSubscribe:
		return "subscribe"
	case TypeOffer:
		return "offer"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Header is the SOME/IP-inspired wire header: service and method identify
// the interface; session correlates requests with responses; seq numbers
// stream frames.
type Header struct {
	ServiceID uint32
	Type      MessageType
	Session   uint32
	Seq       uint32
	Length    uint32 // payload length in bytes
}

// HeaderSize is the encoded header length.
const HeaderSize = 17

// ErrShortBuffer reports a truncated wire message.
var ErrShortBuffer = errors.New("soa: short buffer")

// ErrBadMagic reports a corrupted or foreign message.
var ErrBadMagic = errors.New("soa: bad magic")

const magic = 0xDA

// EncodeHeader serializes h followed by payload into a fresh buffer.
func EncodeHeader(h Header, payload []byte) []byte {
	h.Length = uint32(len(payload))
	buf := make([]byte, HeaderSize+len(payload))
	buf[0] = magic
	binary.BigEndian.PutUint32(buf[1:], h.ServiceID)
	buf[5] = byte(h.Type)
	binary.BigEndian.PutUint32(buf[6:], h.Session)
	binary.BigEndian.PutUint32(buf[10:], h.Seq)
	// Length is 24-bit, stored in bytes 14..16.
	buf[14] = byte(h.Length >> 16)
	buf[15] = byte(h.Length >> 8)
	buf[16] = byte(h.Length)
	copy(buf[HeaderSize:], payload)
	return buf
}

// DecodeHeader parses a wire message, returning the header and payload.
func DecodeHeader(buf []byte) (Header, []byte, error) {
	if len(buf) < HeaderSize {
		return Header{}, nil, ErrShortBuffer
	}
	if buf[0] != magic {
		return Header{}, nil, ErrBadMagic
	}
	var h Header
	h.ServiceID = binary.BigEndian.Uint32(buf[1:])
	h.Type = MessageType(buf[5])
	h.Session = binary.BigEndian.Uint32(buf[6:])
	h.Seq = binary.BigEndian.Uint32(buf[10:])
	h.Length = uint32(buf[14])<<16 | uint32(buf[15])<<8 | uint32(buf[16])
	if len(buf) < HeaderSize+int(h.Length) {
		return Header{}, nil, ErrShortBuffer
	}
	return h, buf[HeaderSize : HeaderSize+int(h.Length)], nil
}
