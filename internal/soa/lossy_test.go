package soa

import (
	"testing"

	"dynaplat/internal/can"
	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// End-to-end cohesion test: a periodic publisher on a lossy CAN bus, the
// consumer validating with an E2E receiver. Every bus error must surface
// as a detected loss — never as silently missing or corrupted data.
func TestE2EDetectsRealBusLosses(t *testing.T) {
	k := sim.NewKernel(21)
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000,
		FrameLossRate: 0.05})
	bus.Attach("src", func(network.Delivery) {})

	tx := &E2ESender{DataID: 5}
	rx := &E2EReceiver{DataID: 5}
	delivered := 0
	bus.Attach("dst", func(d network.Delivery) {
		buf, ok := d.Msg.Payload.([]byte)
		if !ok {
			t.Fatal("payload type")
		}
		st, _ := rx.Check(buf)
		if st == E2EWrongCRC || st == E2EWrongID {
			t.Fatalf("unexpected status %v on clean-but-lossy channel", st)
		}
		delivered++
	})
	const sent = 500
	for i := 0; i < sent; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(2*sim.Millisecond), func() {
			// One protected sample per frame (payload stays tiny so the
			// envelope is the "wire" content; CAN timing uses Bytes=8).
			bus.Send(network.Message{ID: 0x100, Src: "src", Dst: "dst",
				Bytes: 8, Payload: tx.Protect([]byte{byte(i)})})
		})
	}
	k.Run()
	if bus.FramesLost == 0 {
		t.Fatal("loss injection inert")
	}
	if delivered+int(bus.FramesLost) != sent {
		t.Fatalf("delivered %d + lost %d != sent %d", delivered, bus.FramesLost, sent)
	}
	// Every loss episode visible to the application layer.
	if rx.Loss == 0 {
		t.Fatal("E2E receiver saw no losses")
	}
	// Loss episodes ≤ lost frames (consecutive losses fold into one).
	if rx.Loss > bus.FramesLost {
		t.Errorf("loss episodes %d > lost frames %d", rx.Loss, bus.FramesLost)
	}
	if rx.OK == 0 || rx.WrongCRC != 0 || rx.Repetition != 0 {
		t.Errorf("rx counters: ok=%d crc=%d rep=%d", rx.OK, rx.WrongCRC, rx.Repetition)
	}
}

func TestCallTimeout(t *testing.T) {
	r := newRig(nil)
	srv := r.mw.Endpoint("server", "ecu1")
	cli := r.mw.Endpoint("client", "ecu2")
	srv.Offer("Slow", OfferOpts{Network: "backbone",
		Handler: func(any) (int, any, sim.Duration) {
			return 8, nil, 200 * sim.Millisecond // slower than the timeout
		}})
	srv.Offer("Fast", OfferOpts{Network: "backbone",
		Handler: func(any) (int, any, sim.Duration) { return 8, nil, sim.Millisecond }})

	timedOut, answered := false, false
	if err := cli.CallTimeout("Slow", 8, nil, 50*sim.Millisecond,
		func(Event) { answered = true }, func() { timedOut = true }); err != nil {
		t.Fatal(err)
	}
	fastOK := false
	if err := cli.CallTimeout("Fast", 8, nil, 50*sim.Millisecond,
		func(Event) { fastOK = true }, func() { t.Error("fast call timed out") }); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if !timedOut || answered {
		t.Errorf("slow call: timedOut=%v answered=%v", timedOut, answered)
	}
	if !fastOK {
		t.Error("fast call not answered")
	}
	if r.mw.RPCTimeouts != 1 {
		t.Errorf("RPCTimeouts = %d", r.mw.RPCTimeouts)
	}
	if err := cli.CallTimeout("Fast", 8, nil, 0, nil, nil); err == nil {
		t.Error("zero timeout accepted")
	}
}
