package soa

import (
	"testing"
	"testing/quick"
)

func TestE2ERoundTrip(t *testing.T) {
	s := &E2ESender{DataID: 0xBEEF}
	r := &E2EReceiver{DataID: 0xBEEF}
	for i := 0; i < 100; i++ {
		status, payload := r.Check(s.Protect([]byte{byte(i), 1, 2, 3}))
		if status != E2EOK {
			t.Fatalf("msg %d: status = %v", i, status)
		}
		if payload[0] != byte(i) {
			t.Fatalf("msg %d: payload = %v", i, payload)
		}
	}
	if r.OK != 100 {
		t.Errorf("OK = %d", r.OK)
	}
}

func TestE2EDetectsCorruption(t *testing.T) {
	s := &E2ESender{DataID: 1}
	r := &E2EReceiver{DataID: 1}
	buf := s.Protect([]byte("hello"))
	buf[E2EHeaderSize+1] ^= 0x40
	if status, _ := r.Check(buf); status != E2EWrongCRC {
		t.Errorf("payload corruption: %v", status)
	}
	// Header corruption also caught.
	buf2 := s.Protect([]byte("hello"))
	buf2[0] ^= 0x01
	if status, _ := r.Check(buf2); status != E2EWrongCRC {
		t.Errorf("header corruption: %v", status)
	}
	// Truncation.
	if status, _ := r.Check(buf2[:4]); status != E2EWrongCRC {
		t.Errorf("truncation: %v", status)
	}
}

func TestE2EDetectsMasquerade(t *testing.T) {
	other := &E2ESender{DataID: 2}
	r := &E2EReceiver{DataID: 1}
	if status, _ := r.Check(other.Protect([]byte("x"))); status != E2EWrongID {
		t.Errorf("masquerade: %v", status)
	}
	if r.WrongID != 1 {
		t.Errorf("WrongID = %d", r.WrongID)
	}
}

func TestE2EDetectsLossAndRepetition(t *testing.T) {
	s := &E2ESender{DataID: 1}
	r := &E2EReceiver{DataID: 1}
	m0 := s.Protect([]byte("a"))
	m1 := s.Protect([]byte("b"))
	m2 := s.Protect([]byte("c"))
	m3 := s.Protect([]byte("d"))
	if st, _ := r.Check(m0); st != E2EOK {
		t.Fatalf("m0: %v", st)
	}
	// m1 lost; m2 arrives → loss detected, stream resyncs.
	if st, _ := r.Check(m2); st != E2ELoss {
		t.Fatalf("skip: %v", st)
	}
	if st, _ := r.Check(m3); st != E2EOK {
		t.Fatalf("resync: %v", st)
	}
	// Replay of m3 → repetition.
	if st, _ := r.Check(m3); st != E2ERepetition {
		t.Fatalf("replay: %v", st)
	}
	// Old m1 arriving very late counts as loss-pattern (counter jump back).
	if st, _ := r.Check(m1); st != E2ELoss {
		t.Fatalf("stale: %v", st)
	}
	if r.Loss != 2 || r.Repetition != 1 {
		t.Errorf("loss=%d rep=%d", r.Loss, r.Repetition)
	}
}

func TestE2ECounterWraps(t *testing.T) {
	s := &E2ESender{DataID: 9}
	r := &E2EReceiver{DataID: 9}
	for i := 0; i < 70000; i++ { // crosses the uint16 wrap
		if st, _ := r.Check(s.Protect(nil)); st != E2EOK {
			t.Fatalf("msg %d: %v", i, st)
		}
	}
}

func TestE2EPropertyAnySingleBitFlipCaught(t *testing.T) {
	err := quick.Check(func(seed uint64, payload []byte, bit16 uint16) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		s := &E2ESender{DataID: 7}
		r := &E2EReceiver{DataID: 7}
		buf := s.Protect(payload)
		bit := int(bit16) % (len(buf) * 8)
		buf[bit/8] ^= 1 << (bit % 8)
		status, _ := r.Check(buf)
		// A flip in the dataID field may produce WrongID (CRC covers it,
		// so actually it must be WrongCRC — except flips inside the CRC
		// field itself, which also yield WrongCRC). Never OK.
		return status != E2EOK
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
