package soa

import (
	"fmt"

	"dynaplat/internal/sim"
)

// Per-call retry with exponential backoff: the client-side half of the
// resilience layer. Frame loss, partitions and crashed providers all
// surface to an RPC client as a missing response; the retry policy turns
// transient instances of those into recovered calls while the session-
// keyed duplicate suppression in call() keeps the provider's handler
// exactly-once even when the *request* made it through and only the
// response was lost.

// RetryPolicy configures CallRetry.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (minimum 1; DefaultRetryPolicy uses 4).
	MaxAttempts int
	// Backoff is the delay before the first retry; each further retry
	// multiplies it by Multiplier up to MaxBackoff.
	Backoff sim.Duration
	// MaxBackoff caps the backoff growth (0 = uncapped).
	MaxBackoff sim.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// JitterFrac spreads each backoff uniformly over ±frac of itself,
	// drawn from a per-session seeded stream (Middleware.sessionJitter)
	// — deterministic per (jitter seed, session), decorrelated across
	// retrying clients, and immune to interleaving with other sessions.
	JitterFrac float64
	// Budget bounds the whole call (first attempt to final verdict).
	// Attempts that cannot complete a per-try timeout within the
	// remaining budget are not started. 0 = no budget.
	Budget sim.Duration
}

// DefaultRetryPolicy returns 4 attempts, 2 ms initial backoff doubling
// to at most 16 ms, 20% jitter and no overall budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		Backoff:     2 * sim.Millisecond,
		MaxBackoff:  16 * sim.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
}

// normalized fills policy defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Backoff <= 0 {
		p.Backoff = 2 * sim.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.JitterFrac < 0 || p.JitterFrac > 1 {
		p.JitterFrac = 0
	}
	return p
}

// CallRetry performs an RPC with a per-attempt timeout and the given
// retry policy. done receives the (first) response; onFail runs when the
// attempts or the budget are exhausted without a response. All attempts
// share one session number, so the provider suppresses duplicate handler
// executions. The synchronous error reports immediate failures of the
// first attempt (unknown service, unauthorized, no handler).
func (e *Endpoint) CallRetry(iface string, reqBytes int, req any,
	perTry sim.Duration, pol RetryPolicy, done func(Event), onFail func()) error {
	if perTry <= 0 {
		return fmt.Errorf("soa: non-positive per-attempt timeout")
	}
	pol = pol.normalized()
	m := e.m
	m.next.session++
	session := m.next.session
	start := m.k.Now()
	var deadline sim.Time
	if pol.Budget > 0 {
		deadline = start.Add(pol.Budget)
	}
	settled := false
	// jitter is this session's private backoff-jitter stream, created on
	// first use. Drawing from a per-session seeded stream (instead of the
	// shared kernel RNG) makes each call's jitter a pure function of its
	// session number: interleaved retries from thousands of concurrent
	// sessions cannot perturb each other's draws, so overload sweeps
	// replay byte-identically under RunAllParallel.
	var jitter *sim.RNG
	fail := func() {
		if settled {
			return
		}
		settled = true
		m.RetryExhausted++
		m.k.Trace("soa", "%s call %s session %d exhausted", e.app, iface, session)
		if onFail != nil {
			onFail()
		}
	}

	var attempt func(n int, backoff sim.Duration) error
	attempt = func(n int, backoff sim.Duration) error {
		tryTimeout := perTry
		if deadline > 0 {
			remaining := deadline.Sub(m.k.Now())
			if remaining < tryTimeout {
				tryTimeout = remaining
			}
			if tryTimeout <= 0 {
				fail()
				return nil
			}
		}
		timer := m.k.After(tryTimeout, func() {
			if settled {
				return
			}
			m.RPCTimeouts++
			// Schedule the next attempt, or give up.
			if n+1 >= pol.MaxAttempts {
				fail()
				return
			}
			wait := backoff
			if pol.JitterFrac > 0 {
				if jitter == nil {
					jitter = m.sessionJitter(session)
				}
				span := sim.Duration(float64(wait) * pol.JitterFrac)
				wait += jitter.DurationRange(-span, span)
				if wait < 0 {
					wait = 0
				}
			}
			if deadline > 0 && m.k.Now().Add(wait) >= deadline {
				fail()
				return
			}
			m.RetryAttempts++
			next := sim.Duration(float64(backoff) * pol.Multiplier)
			if pol.MaxBackoff > 0 && next > pol.MaxBackoff {
				next = pol.MaxBackoff
			}
			m.k.After(wait, func() {
				if settled {
					return
				}
				// Re-resolving the service each attempt lets a retry
				// reach a provider re-offered elsewhere after failover.
				if err := attempt(n+1, next); err != nil {
					fail()
				}
			})
		})
		return e.call(iface, session, reqBytes, req, func(ev Event) {
			if settled {
				return
			}
			settled = true
			timer.Cancel()
			if n > 0 {
				m.RetryRecovered++
				m.k.Trace("soa", "%s call %s recovered on attempt %d", e.app, iface, n+1)
			}
			if done != nil {
				done(ev)
			}
		})
	}
	return attempt(0, pol.Backoff)
}
