package codegen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"dynaplat/internal/model"
)

func demoSys() *model.System {
	return model.MustParse(`
system Demo
ecu CPM cpu=200MHz mem=2MB mmu os=rtos
network BB type=ethernet rate=100Mbps attach=CPM
app Brake kind=da asil=D period=10ms wcet=2ms deadline=10ms mem=64KB on=CPM
app Dash kind=nda mem=1MB on=CPM
iface BrakeStatus owner=Brake paradigm=event payload=16B period=10ms net=BB
iface BrakeCmd owner=Brake paradigm=message payload=8B period=100ms latency=20ms net=BB
bind Dash -> BrakeStatus
`)
}

// mustParse asserts the generated source is valid Go.
func mustParse(t *testing.T, src string) {
	t.Helper()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
}

func TestGenerateDeterministicApp(t *testing.T) {
	src, err := GenerateApp(demoSys(), "Brake")
	if err != nil {
		t.Fatal(err)
	}
	mustParse(t, src)
	for _, want := range []string{
		"package brake",
		"Period   = sim.Duration(10000000)",
		"WCET     = sim.Duration(2000000)",
		"type Brake struct",
		`ep.Offer("BrakeStatus"`,
		"network.ClassControl",
		`ep.Offer("BrakeCmd"`,
		"Handler: a.handleBrakeCmd",
		"func (a *Brake) Activate(job int64)",
		`a.ep.Publish("BrakeStatus", 16, nil)`,
		"func (a *Brake) handleBrakeCmd(req any) (int, any, sim.Duration)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestGenerateConsumerApp(t *testing.T) {
	src, err := GenerateApp(demoSys(), "Dash")
	if err != nil {
		t.Fatal(err)
	}
	mustParse(t, src)
	for _, want := range []string{
		"package dash",
		`ep.Subscribe("BrakeStatus", a.onBrakeStatus)`,
		"func (a *Dash) onBrakeStatus(ev soa.Event)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	// NDAs carry no timing contract.
	if strings.Contains(src, "Period   =") {
		t.Error("NDA stub has a timing contract")
	}
}

func TestGenerateUnknownApp(t *testing.T) {
	if _, err := GenerateApp(demoSys(), "Ghost"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestGenerateAll(t *testing.T) {
	files, err := GenerateAll(demoSys())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %v", keys(files))
	}
	for path, src := range files {
		if !strings.HasPrefix(path, "gen/") || !strings.HasSuffix(path, ".go") {
			t.Errorf("odd path %q", path)
		}
		mustParse(t, src)
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestIdentifierMangling(t *testing.T) {
	cases := map[string]string{
		"brake":        "Brake",
		"park-assist":  "ParkAssist",
		"ctl00.status": "Ctl00Status",
		"brake@2":      "Brake2",
		"":             "App",
		"___":          "App",
		"ADAS":         "ADAS",
	}
	for in, want := range cases {
		if got := identifier(in); got != want {
			t.Errorf("identifier(%q) = %q, want %q", in, got, want)
		}
	}
	if packageName("Park-Assist!") != "parkassist" {
		t.Errorf("packageName = %q", packageName("Park-Assist!"))
	}
	if packageName("!!!") != "app" {
		t.Errorf("packageName fallback = %q", packageName("!!!"))
	}
}

func TestMiddlewareConfig(t *testing.T) {
	cfg := MiddlewareConfig(demoSys())
	for _, want := range []string{
		"network BB kind=ethernet rate=100000000bps mtu=1400",
		"service BrakeStatus owner=Brake paradigm=event net=BB version=1",
		"BrakeStatus: Dash",
	} {
		if !strings.Contains(cfg, want) {
			t.Errorf("config missing %q:\n%s", want, cfg)
		}
	}
	// Deterministic output.
	if cfg != MiddlewareConfig(demoSys()) {
		t.Error("config not deterministic")
	}
}
