package platform

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

// Behavior describes what an application does when activated.
type Behavior struct {
	// ExecTime samples the actual execution time of one activation
	// (deterministic apps). nil means "always exactly the WCET". The
	// result is clamped to (0, WCET].
	ExecTime func(r *sim.RNG) sim.Duration
	// OnActivate runs (in zero virtual time) when a deterministic
	// activation completes — the place where a control app publishes its
	// outputs via the SOA middleware.
	OnActivate func(job int64)
}

// AppInstance is one installed application on a node.
type AppInstance struct {
	node     *Node
	Spec     model.App
	Behavior Behavior
	State    AppState

	// Deterministic-app statistics.
	Activations int64
	Misses      int64
	// Response samples release→completion; StartJitter samples
	// release→first-execution offsets (the monitor watches both).
	Response   sim.Sample
	StartLag   sim.Sample
	nextJob    int64
	releaseRef sim.EventRef
	// releaseFn is the cached periodic-release closure: re-arming a
	// period through it costs zero allocations (it reads nextJob instead
	// of capturing the job index).
	releaseFn func()

	// Non-deterministic-app statistics.
	JobsDone   int64
	JobLatency sim.Sample

	// CPUTime accumulates the virtual CPU time the app consumed
	// (deterministic execution plus completed NDA jobs) — the
	// per-application accounting the diagnosis services expose.
	CPUTime sim.Duration
}

// Node returns the hosting node.
func (a *AppInstance) Node() *Node { return a.node }

// Start begins execution: deterministic apps begin releasing jobs on
// their period; non-deterministic apps become eligible to Submit work.
func (a *AppInstance) Start() error {
	if a.State == StateRunning {
		return fmt.Errorf("platform: app %s already running", a.Spec.Name)
	}
	a.State = StateRunning
	a.node.log.Logf("platform", "started %s", a.Spec.Name)
	if a.Spec.Kind == model.Deterministic {
		a.scheduleNextRelease()
	}
	return nil
}

// Stop halts execution. Pending releases are canceled; in-flight NDA jobs
// finish (the CPU was already committed).
func (a *AppInstance) Stop() {
	if a.State != StateRunning {
		return
	}
	a.State = StateStopped
	a.releaseRef.Cancel()
	a.node.log.Logf("platform", "stopped %s", a.Spec.Name)
}

// scheduleNextRelease arms the next periodic job release. Releases align
// to the node's schedule epoch so job indices match table slots.
func (a *AppInstance) scheduleNextRelease() {
	if a.State != StateRunning {
		return
	}
	if a.releaseFn == nil {
		a.releaseFn = func() { a.release(a.nextJob) }
	}
	period := a.Spec.Period
	now := a.node.k.Now()
	// Next release at or after now, aligned to epoch + j*period.
	base := a.node.epoch
	var j int64
	if now > base {
		j = int64((now.Sub(base) + sim.Duration(period) - 1) / sim.Duration(period))
	}
	release := base.Add(sim.Duration(j) * period)
	a.nextJob = j
	a.releaseRef = a.node.k.AtPriority(release, sim.PriorityClock, a.releaseFn)
}

// release runs one deterministic job: the node's CPU model decides when
// it executes and completes.
func (a *AppInstance) release(job int64) {
	if a.State != StateRunning {
		return
	}
	// Arm the next period through the cached closure (no allocation).
	a.nextJob = job + 1
	a.releaseRef = a.node.k.After(a.Spec.Period, a.releaseFn)
	if a.node.health == HealthHung {
		// Hung node: the release instant passes but nothing executes —
		// no output, no heartbeat, no completion. Resources stay held;
		// execution resumes with the first release after the hang clears.
		return
	}
	release := a.node.k.Now()
	exec := a.inflate(a.execTime())
	a.CPUTime += exec
	deadline := release.Add(a.Spec.Deadline)
	a.node.runDA(a, job, exec, release, deadline)
}

func (a *AppInstance) execTime() sim.Duration {
	wcet := a.node.ecu.ScaledWCET(a.Spec.WCET)
	if a.Behavior.ExecTime == nil {
		return wcet
	}
	e := a.Behavior.ExecTime(a.node.rng)
	if e <= 0 {
		e = sim.Nanosecond
	}
	if e > wcet {
		e = wcet
	}
	return e
}

// inflate applies the node's slow-down factor after the WCET clamp, so
// an injected slow-down can violate the WCET assumption.
func (a *AppInstance) inflate(e sim.Duration) sim.Duration {
	if f := a.node.slowdown; f > 1 {
		return sim.Duration(float64(e) * f)
	}
	return e
}

// complete records a finished deterministic activation.
func (a *AppInstance) complete(job int64, release, started, finished, deadline sim.Time) {
	a.Activations++
	a.Response.AddDuration(finished.Sub(release))
	a.StartLag.AddDuration(started.Sub(release))
	missed := finished > deadline
	if missed {
		a.Misses++
		a.node.diag.RecordFault(Fault{
			App: a.Spec.Name, Kind: FaultDeadlineMiss,
			At:     finished,
			Detail: fmt.Sprintf("job %d finished %v after deadline", job, finished.Sub(deadline)),
		})
	}
	if a.Behavior.OnActivate != nil {
		a.Behavior.OnActivate(job)
	}
	a.node.notifyComplete(Completion{
		App: a.Spec.Name, Job: job,
		Release: release, Started: started, Finished: finished,
		Deadline: deadline, Missed: missed,
	})
}

// Submit hands a non-deterministic job (exec virtual CPU time) to the
// node. done, if non-nil, runs at completion. Returns an error if the
// app is not running.
func (a *AppInstance) Submit(exec sim.Duration, done func()) error {
	if a.State != StateRunning {
		return fmt.Errorf("platform: app %s not running", a.Spec.Name)
	}
	if a.node.health == HealthHung {
		return fmt.Errorf("platform: node %s is hung", a.node.ecu.Name)
	}
	if a.Spec.Kind != model.NonDeterministic {
		return fmt.Errorf("platform: %s is deterministic; it runs on its period", a.Spec.Name)
	}
	if exec <= 0 {
		return fmt.Errorf("platform: non-positive job time %v", exec)
	}
	submitted := a.node.k.Now()
	a.node.runNDA(a, exec, func() {
		a.JobsDone++
		a.CPUTime += exec
		a.JobLatency.AddDuration(a.node.k.Now().Sub(submitted))
		if done != nil {
			done()
		}
	})
	return nil
}

// MissRate returns the fraction of activations that missed their
// deadline.
func (a *AppInstance) MissRate() float64 {
	if a.Activations == 0 {
		return 0
	}
	return float64(a.Misses) / float64(a.Activations)
}
