package platform

import (
	"fmt"
	"testing"
	"testing/quick"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
	"dynaplat/internal/workload"
)

// The repository's central safety property, checked over random
// workloads: in isolated mode, NO deterministic application EVER misses
// a deadline, for any admitted DA set and any NDA load pattern.
func TestIsolationPropertyRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		k := sim.NewKernel(seed)
		node := NewNode(k, model.ECU{Name: "cpm", CPUMHz: 100, MemoryKB: 1 << 20,
			HasMMU: true, OS: model.OSRTOS}, ModeIsolated, 250*sim.Microsecond)

		// Random DA set at up to 85% utilization; skip sets the admission
		// control itself rejects (that is its prerogative).
		nDA := rng.Range(1, 8)
		u := 0.3 + 0.55*rng.Float64()
		var das []*AppInstance
		for _, task := range workload.ControlTasks(rng, nDA, u) {
			app := model.App{Name: task.Name, Kind: model.Deterministic,
				ASIL: model.ASILD, Period: task.Period, WCET: task.WCET,
				Deadline: task.Period, MemoryKB: 16}
			inst, err := node.Install(app, Behavior{
				ExecTime: func(r *sim.RNG) sim.Duration {
					// Variable execution up to WCET.
					return sim.Duration(float64(task.WCET) * (0.3 + 0.7*r.Float64()))
				},
			})
			if err != nil {
				continue
			}
			inst.Start()
			das = append(das, inst)
		}
		if len(das) == 0 {
			return true // vacuous
		}
		// Random NDA bombardment.
		nNDA := rng.Range(1, 3)
		for i := 0; i < nNDA; i++ {
			nda, err := node.Install(model.App{
				Name: fmt.Sprintf("nda%d", i), Kind: model.NonDeterministic,
				MemoryKB: 16}, Behavior{})
			if err != nil {
				return false
			}
			nda.Start()
			src := &workload.BurstSource{}
			src.Start(k, rng.Split(),
				rng.DurationRange(sim.Millisecond, 20*sim.Millisecond),
				sim.Millisecond, 50*sim.Millisecond,
				func(d sim.Duration) { nda.Submit(d, nil) })
		}
		k.RunUntil(sim.Time(2 * sim.Second))
		for _, da := range das {
			if da.Misses > 0 {
				t.Logf("seed %d: %s missed %d/%d", seed, da.Spec.Name,
					da.Misses, da.Activations)
				return false
			}
			if da.Activations == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
