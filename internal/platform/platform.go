package platform

import (
	"fmt"
	"sort"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
)

// Platform is the vehicle-wide dynamic platform: it spans every ECU
// running a Node and shares one SOA middleware ("logically located across
// multiple hardware elements and operating systems", Section 1.1).
type Platform struct {
	k     *sim.Kernel
	mw    *soa.Middleware
	nodes map[string]*Node
}

// New creates an empty platform. mw may be nil when communication is not
// under test.
func New(k *sim.Kernel, mw *soa.Middleware) *Platform {
	return &Platform{k: k, mw: mw, nodes: map[string]*Node{}}
}

// Kernel returns the simulation kernel.
func (p *Platform) Kernel() *sim.Kernel { return p.k }

// Middleware returns the shared SOA middleware (may be nil).
func (p *Platform) Middleware() *soa.Middleware { return p.mw }

// AddNode creates the platform runtime on an ECU.
func (p *Platform) AddNode(ecu model.ECU, mode Mode, granularity sim.Duration) (*Node, error) {
	if _, ok := p.nodes[ecu.Name]; ok {
		return nil, fmt.Errorf("platform: node %s exists", ecu.Name)
	}
	n := NewNode(p.k, ecu, mode, granularity)
	p.nodes[ecu.Name] = n
	return n, nil
}

// Node returns the runtime on the named ECU, or nil.
func (p *Platform) Node(ecu string) *Node { return p.nodes[ecu] }

// Nodes returns the sorted ECU names with runtimes.
func (p *Platform) Nodes() []string {
	out := make([]string, 0, len(p.nodes))
	for n := range p.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FindApp locates an installed application instance across nodes.
func (p *Platform) FindApp(name string) (*AppInstance, *Node) {
	names := p.Nodes()
	for _, ecu := range names {
		n := p.nodes[ecu]
		if inst := n.App(name); inst != nil {
			return inst, n
		}
	}
	return nil, nil
}

// Deploy instantiates a validated model: one node per RTOS/POSIX ECU and
// one Install per placed application. Behaviors default to WCET-exact
// execution; callers refine them afterwards via Node.App(...).Behavior.
func Deploy(p *Platform, sys *model.System, mode Mode, granularity sim.Duration) error {
	if rep := model.Validate(sys); !rep.OK() {
		return fmt.Errorf("platform: model invalid: %v", rep.Errors()[0])
	}
	for _, e := range sys.ECUs {
		if _, err := p.AddNode(*e, mode, granularity); err != nil {
			return err
		}
	}
	for _, a := range sys.Apps {
		ecu, placed := sys.Placement[a.Name]
		if !placed {
			continue
		}
		if _, err := p.nodes[ecu].Install(*a, Behavior{}); err != nil {
			return err
		}
	}
	return nil
}

// StartAll starts every installed application.
func (p *Platform) StartAll() error {
	for _, ecu := range p.Nodes() {
		n := p.nodes[ecu]
		for _, app := range n.Apps() {
			inst := n.App(app)
			if inst.State != StateRunning {
				if err := inst.Start(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
