package platform

// Fault-injection control surface (implements faults.Target without
// importing it). The deterministic fault-injection engine drives nodes
// through these methods; they are also usable directly by tests and the
// failover examples.
//
// Three orthogonal health dimensions exist:
//
//   - down: the node crashed — every application stopped, resources
//     released back only on Restore (which restarts exactly the apps the
//     crash took down).
//   - hung: the node stops responding — deterministic releases fire but
//     execute nothing (no outputs, no heartbeats) and NDA submissions
//     are rejected — while memory domains and schedule slots stay
//     allocated. Clearing the hang resumes execution on the next
//     release, with no reinstallation.
//   - slowdown: execution times are inflated by a factor (thermal
//     throttling, cache thrashing). Factors large enough to push
//     responses past deadlines surface as FaultDeadlineMiss through the
//     normal completion path, which is what the monitor and the mode
//     cascade react to.

// Health is a node's fault-injection state.
type Health int

const (
	// HealthUp is nominal operation.
	HealthUp Health = iota
	// HealthDown means the node crashed (apps stopped).
	HealthDown
	// HealthHung means the node holds resources but does not respond.
	HealthHung
)

func (h Health) String() string {
	switch h {
	case HealthDown:
		return "down"
	case HealthHung:
		return "hung"
	}
	return "up"
}

// Health returns the node's current fault-injection state.
func (n *Node) Health() Health { return n.health }

// Crash stops every running application and marks the node down,
// returning the names of the apps it stopped (pass them to Restore to
// model a repair or reboot). In-flight NDA jobs complete — the CPU time
// was already committed — matching AppInstance.Stop semantics.
func (n *Node) Crash() []string {
	var stopped []string
	for _, app := range n.Apps() {
		inst := n.apps[app]
		if inst.State == StateRunning {
			inst.Stop()
			stopped = append(stopped, app)
		}
	}
	n.health = HealthDown
	n.log.Logf("fault", "node %s crashed (%d apps stopped)", n.ecu.Name, len(stopped))
	return stopped
}

// Restore clears the down state and restarts the named applications
// (ignoring apps uninstalled in the meantime).
func (n *Node) Restore(apps []string) {
	n.health = HealthUp
	for _, app := range apps {
		if inst, ok := n.apps[app]; ok && inst.State != StateRunning {
			_ = inst.Start()
		}
	}
	n.log.Logf("fault", "node %s restored (%d apps restarted)", n.ecu.Name, len(apps))
}

// SetHung toggles the unresponsive state. While hung, deterministic
// releases occur but execute nothing and Submit rejects NDA work; the
// node's memory domains and schedule slots remain held.
func (n *Node) SetHung(hung bool) {
	switch {
	case hung:
		n.health = HealthHung
		n.log.Logf("fault", "node %s hung", n.ecu.Name)
	case n.health == HealthHung:
		n.health = HealthUp
		n.log.Logf("fault", "node %s unhung", n.ecu.Name)
	}
}

// SetSlowdown sets the execution-time inflation factor. Factors <= 1
// restore nominal speed. The factor applies after the WCET clamp, so an
// inflated execution can exceed the WCET the schedule was synthesized
// for — exactly the assumption violation a slow-down fault models.
func (n *Node) SetSlowdown(factor float64) {
	if factor <= 1 {
		n.slowdown = 0
		n.log.Logf("fault", "node %s slowdown cleared", n.ecu.Name)
		return
	}
	n.slowdown = factor
	n.log.Logf("fault", "node %s slowdown x%.1f", n.ecu.Name, factor)
}

// Slowdown returns the active inflation factor (1 when nominal).
func (n *Node) Slowdown() float64 {
	if n.slowdown <= 1 {
		return 1
	}
	return n.slowdown
}
