package platform

import (
	"strings"
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

// rtosECU is a 100 MHz reference-clock RTOS ECU (so WCETs need no mental
// scaling in tests).
func rtosECU(name string) model.ECU {
	return model.ECU{Name: name, CPUMHz: model.ReferenceMHz, MemoryKB: 1024,
		HasMMU: true, OS: model.OSRTOS}
}

func daApp(name string, period, wcet sim.Duration) model.App {
	return model.App{Name: name, Kind: model.Deterministic, ASIL: model.ASILD,
		Period: period, WCET: wcet, Deadline: period, MemoryKB: 64}
}

func ndaApp(name string) model.App {
	return model.App{Name: name, Kind: model.NonDeterministic, MemoryKB: 64}
}

func TestInstallStartDA(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1)/4)
	inst, err := n.Install(daApp("brake", ms(10), ms(2)), Behavior{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.State != StateInstalled {
		t.Errorf("state = %v", inst.State)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(100 * ms(1)))
	if inst.Activations != 10 {
		t.Errorf("activations = %d, want 10", inst.Activations)
	}
	if inst.Misses != 0 {
		t.Errorf("misses = %d", inst.Misses)
	}
	// Sole task: every job runs immediately in its slot at offset 0.
	if lag := inst.StartLag.Max(); lag != 0 {
		t.Errorf("start lag = %v, want 0", lag)
	}
	if resp := inst.Response.PercentileDuration(100); resp != ms(2) {
		t.Errorf("response = %v, want 2ms", resp)
	}
}

func TestDAJitterBoundedAcrossJobs(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1)/4)
	a, _ := n.Install(daApp("a", ms(10), ms(2)), Behavior{})
	b, _ := n.Install(daApp("b", ms(5), ms(1)), Behavior{})
	a.Start()
	b.Start()
	k.RunUntil(sim.Time(200 * ms(1)))
	if a.Misses+b.Misses != 0 {
		t.Fatalf("misses a=%d b=%d", a.Misses, b.Misses)
	}
	// Start lag must be constant per job phase — since both tasks repeat
	// with the hyperperiod, jitter (max-min of start lag) stays small.
	if j := a.StartLag.Jitter(); j > ms(2) {
		t.Errorf("a start jitter = %v", j)
	}
}

func TestInstallErrors(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, 0)
	if _, err := n.Install(daApp("x", ms(10), ms(2)), Behavior{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Install(daApp("x", ms(10), ms(2)), Behavior{}); err == nil {
		t.Error("duplicate install succeeded")
	}
	// Admission failure: would exceed utilization 1.
	if _, err := n.Install(daApp("hog", ms(10), ms(9)), Behavior{}); err == nil {
		t.Error("over-utilization install succeeded")
	}
	// Memory must have been rolled back for the failed install.
	if n.Memory().Domain("hog") != nil {
		t.Error("failed install leaked a memory domain")
	}
	// Memory failure.
	big := ndaApp("big")
	big.MemoryKB = 4096
	if _, err := n.Install(big, Behavior{}); err == nil {
		t.Error("over-memory install succeeded")
	}
	posix := model.ECU{Name: "head", CPUMHz: 1000, MemoryKB: 1024, OS: model.OSPOSIX}
	np := NewNode(k, posix, ModeIsolated, 0)
	if _, err := np.Install(daApp("da", ms(10), ms(1)), Behavior{}); err == nil {
		t.Error("DA on POSIX node succeeded (Section 1.1 requires an RTOS)")
	}
}

func TestUninstallFreesScheduleAndMemory(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	inst, _ := n.Install(daApp("a", ms(10), ms(8)), Behavior{})
	inst.Start()
	k.RunUntil(sim.Time(ms(25)))
	if err := n.Uninstall("a"); err != nil {
		t.Fatal(err)
	}
	if n.App("a") != nil || n.Memory().Domain("a") != nil {
		t.Error("uninstall left residue")
	}
	// The freed capacity must be reusable.
	if _, err := n.Install(daApp("b", ms(10), ms(8)), Behavior{}); err != nil {
		t.Errorf("reinstall after uninstall failed: %v", err)
	}
	if err := n.Uninstall("ghost"); err == nil {
		t.Error("uninstalling unknown app succeeded")
	}
}

func TestNDAJobsRunInGaps(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	da, _ := n.Install(daApp("ctl", ms(10), ms(5)), Behavior{})
	nda, _ := n.Install(ndaApp("infot"), Behavior{})
	da.Start()
	nda.Start()
	doneAt := sim.Time(0)
	// 8ms of NDA work: the first 10ms period has only 5ms of gap, so the
	// job must finish during the second period: 5ms gap used in period 1,
	// 3ms more in period 2 → completes at 10+5+3 = 18ms.
	if err := nda.Submit(ms(8), func() { doneAt = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(ms(40)))
	if doneAt != sim.Time(ms(18)) {
		t.Errorf("NDA job done at %v, want 18ms", doneAt)
	}
	if da.Misses != 0 {
		t.Errorf("DA missed %d deadlines under NDA load", da.Misses)
	}
}

func TestIsolationUnderNDAOverload(t *testing.T) {
	// Figure 2's core property: in isolated mode the DA never misses no
	// matter how much NDA work floods in; in shared mode it does.
	run := func(mode Mode) (misses int64, activations int64) {
		k := sim.NewKernel(7)
		n := NewNode(k, rtosECU("cpm"), mode, ms(1)/2)
		da, _ := n.Install(daApp("ctl", ms(10), ms(3)), Behavior{})
		nda, _ := n.Install(ndaApp("flood"), Behavior{})
		da.Start()
		nda.Start()
		// Continuous oversized NDA jobs (each 25ms — longer than the DA
		// period) keep the CPU saturated.
		var pump func()
		pump = func() { nda.Submit(ms(25), pump) }
		pump()
		k.RunUntil(sim.Time(500 * ms(1)))
		return da.Misses, da.Activations
	}
	iMiss, iAct := run(ModeIsolated)
	sMiss, sAct := run(ModeShared)
	if iAct == 0 || sAct == 0 {
		t.Fatalf("no activations: iso=%d shared=%d", iAct, sAct)
	}
	if iMiss != 0 {
		t.Errorf("isolated mode missed %d/%d deadlines", iMiss, iAct)
	}
	if sMiss == 0 {
		t.Errorf("shared mode missed no deadlines under overload — baseline broken")
	}
}

func TestNDAStarvationDetected(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	da, _ := n.Install(daApp("full", ms(10), ms(10)), Behavior{})
	nda, _ := n.Install(ndaApp("bg"), Behavior{})
	da.Start()
	nda.Start()
	ran := false
	nda.Submit(ms(1), func() { ran = true })
	k.RunUntil(sim.Time(ms(50)))
	if ran {
		t.Error("NDA job ran despite a 100% loaded table")
	}
	if n.Diag().CountKind(FaultStarvation) != 1 {
		t.Error("starvation fault not recorded")
	}
}

func TestSubmitValidation(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, 0)
	da, _ := n.Install(daApp("d", ms(10), ms(1)), Behavior{})
	nda, _ := n.Install(ndaApp("n"), Behavior{})
	da.Start()
	if err := da.Submit(ms(1), nil); err == nil {
		t.Error("Submit on deterministic app succeeded")
	}
	if err := nda.Submit(ms(1), nil); err == nil {
		t.Error("Submit on stopped app succeeded")
	}
	nda.Start()
	if err := nda.Submit(0, nil); err == nil {
		t.Error("Submit with zero exec succeeded")
	}
}

func TestStopCancelsReleases(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	da, _ := n.Install(daApp("d", ms(10), ms(1)), Behavior{})
	da.Start()
	k.RunUntil(sim.Time(ms(35)))
	da.Stop()
	acts := da.Activations
	k.RunUntil(sim.Time(ms(100)))
	if da.Activations != acts {
		t.Errorf("activations grew after Stop: %d → %d", acts, da.Activations)
	}
	// Restart resumes on the period grid.
	da.Start()
	k.RunUntil(sim.Time(ms(150)))
	if da.Activations <= acts {
		t.Error("no activations after restart")
	}
}

func TestExecTimeVariation(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1)/4)
	inst, _ := n.Install(daApp("v", ms(10), ms(4)), Behavior{
		ExecTime: func(r *sim.RNG) sim.Duration { return r.DurationRange(ms(1), ms(3)) },
	})
	inst.Start()
	k.RunUntil(sim.Time(500 * ms(1)))
	if inst.Misses != 0 {
		t.Errorf("misses = %d", inst.Misses)
	}
	// Responses must vary with execution time but never exceed WCET path.
	if inst.Response.Min() == inst.Response.Max() {
		t.Error("response shows no variation despite variable exec time")
	}
	if max := inst.Response.PercentileDuration(100); max > ms(4) {
		t.Errorf("max response %v exceeds WCET-slot bound", max)
	}
}

func TestOnActivateAndCompletionHook(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	var jobs []int64
	var completions []Completion
	n.OnComplete(func(c Completion) { completions = append(completions, c) })
	inst, _ := n.Install(daApp("d", ms(10), ms(1)), Behavior{
		OnActivate: func(job int64) { jobs = append(jobs, job) },
	})
	inst.Start()
	k.RunUntil(sim.Time(ms(35)))
	if len(jobs) != 4 || jobs[0] != 0 || jobs[3] != 3 {
		t.Errorf("jobs = %v", jobs)
	}
	if len(completions) != 4 || completions[0].App != "d" || completions[0].Missed {
		t.Errorf("completions = %+v", completions)
	}
}

func TestMemoryDomains(t *testing.T) {
	m := NewMemoryManager(1024, true)
	if err := m.NewDomain("a", 512); err != nil {
		t.Fatal(err)
	}
	if err := m.NewDomain("b", 256); err != nil {
		t.Fatal(err)
	}
	if err := m.NewDomain("c", 512); err == nil {
		t.Error("overcommit accepted")
	}
	if err := m.NewDomain("a", 1); err == nil {
		t.Error("duplicate domain accepted")
	}
	if m.SameProcess("a", "b") {
		t.Error("MMU ECU should default to separate processes")
	}
	if m.ProcessCount() != 2 {
		t.Errorf("processes = %d", m.ProcessCount())
	}
	if err := m.Use("a", 500); err != nil {
		t.Fatal(err)
	}
	if err := m.Use("a", 100); err == nil {
		t.Error("budget overrun accepted")
	}
	m.Release("a", 200)
	if m.Domain("a").UsedKB != 300 {
		t.Errorf("used = %d", m.Domain("a").UsedKB)
	}
}

func TestWildWriteContainment(t *testing.T) {
	// With MMU-backed separation a stray write stays in the faulty app.
	m := NewMemoryManager(1024, true)
	m.NewDomain("bad", 64)
	m.NewDomain("good", 64)
	hit := m.InjectWildWrite("bad")
	if len(hit) != 1 || hit[0] != "bad" {
		t.Errorf("separated wild write hit %v", hit)
	}
	if m.Domain("good").Corrupted {
		t.Error("separated domain corrupted")
	}
	// Colocated apps share the blast radius.
	m2 := NewMemoryManager(1024, true)
	m2.NewDomain("bad", 64)
	m2.NewDomain("roommate", 64)
	m2.NewDomain("other", 64)
	m2.Colocate("bad", "roommate")
	hit2 := m2.InjectWildWrite("bad")
	if len(hit2) != 2 {
		t.Errorf("colocated wild write hit %v", hit2)
	}
	if m2.Domain("other").Corrupted {
		t.Error("separate process corrupted")
	}
	// No MMU: everything is one process.
	m3 := NewMemoryManager(1024, false)
	m3.NewDomain("bad", 64)
	m3.NewDomain("victim", 64)
	hit3 := m3.InjectWildWrite("bad")
	if len(hit3) != 2 {
		t.Errorf("unprotected wild write hit %v", hit3)
	}
}

func TestResourcePriority(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewResource(k, "crypto")
	var order []string
	grab := func(name string, urgent bool) {
		fn := func() { order = append(order, name) }
		if urgent {
			r.AcquireUrgent(ms(1), fn)
		} else {
			r.AcquireBulk(ms(1), fn)
		}
	}
	k.At(0, func() {
		grab("bulk1", false) // starts immediately (resource idle)
		grab("bulk2", false)
		grab("urgent", true) // must overtake bulk2
	})
	k.Run()
	if len(order) != 3 || order[0] != "bulk1" || order[1] != "urgent" || order[2] != "bulk2" {
		t.Errorf("order = %v", order)
	}
	if r.Served != 3 {
		t.Errorf("served = %d", r.Served)
	}
	if r.WaitHigh.Max() > float64(ms(1)) {
		t.Errorf("urgent wait = %v, bounded by one hold time", r.WaitHigh.Max())
	}
}

func TestLogService(t *testing.T) {
	k := sim.NewKernel(1)
	l := NewLogService(k, 3)
	for i := 0; i < 5; i++ {
		l.Logf("cat", "entry %d", i)
	}
	if len(l.Entries()) != 3 || l.Dropped != 2 {
		t.Errorf("entries = %d dropped = %d", len(l.Entries()), l.Dropped)
	}
	if !strings.Contains(l.Entries()[2].Message, "entry 4") {
		t.Errorf("last = %v", l.Entries()[2])
	}
	if got := l.ByCategory("cat"); len(got) != 3 {
		t.Errorf("ByCategory = %d", len(got))
	}
	if got := l.ByCategory("other"); len(got) != 0 {
		t.Errorf("ByCategory(other) = %d", len(got))
	}
}

func TestPersistence(t *testing.T) {
	p := NewPersistenceService()
	p.Put("app", "cfg", []byte("v1"))
	v, ok := p.Get("app", "cfg")
	if !ok || string(v) != "v1" {
		t.Errorf("get = %q %v", v, ok)
	}
	// Mutating the returned slice must not affect the store.
	v[0] = 'X'
	v2, _ := p.Get("app", "cfg")
	if string(v2) != "v1" {
		t.Error("Get returned aliased storage")
	}
	if _, ok := p.Get("app", "ghost"); ok {
		t.Error("ghost key found")
	}
	p.Put("app", "a", nil)
	if keys := p.Keys("app"); len(keys) != 2 || keys[0] != "a" {
		t.Errorf("keys = %v", keys)
	}
	n := p.CopyAll("app", "app2")
	if n != 2 {
		t.Errorf("copied = %d", n)
	}
	if v, ok := p.Get("app2", "cfg"); !ok || string(v) != "v1" {
		t.Error("CopyAll missed cfg")
	}
	p.Delete("app", "cfg")
	if _, ok := p.Get("app", "cfg"); ok {
		t.Error("delete failed")
	}
}

func TestDiagnosis(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDiagnosisService(k)
	var uplinked []Fault
	d.SetUplink(func(f Fault) { uplinked = append(uplinked, f) })
	d.RecordFault(Fault{App: "a", Kind: FaultDeadlineMiss})
	d.RecordFault(Fault{App: "b", Kind: FaultMemoryBudget})
	d.RecordFault(Fault{App: "a", Kind: FaultDeadlineMiss})
	if len(d.Faults()) != 3 || len(uplinked) != 3 {
		t.Errorf("faults = %d uplinked = %d", len(d.Faults()), len(uplinked))
	}
	if len(d.FaultsOf("a")) != 2 {
		t.Errorf("FaultsOf(a) = %d", len(d.FaultsOf("a")))
	}
	if d.CountKind(FaultDeadlineMiss) != 2 {
		t.Errorf("CountKind = %d", d.CountKind(FaultDeadlineMiss))
	}
}

func TestDeployFromModel(t *testing.T) {
	sys := model.MustParse(`
system T
ecu CPM cpu=100MHz mem=1MB mmu os=rtos
ecu Head cpu=1000MHz mem=64MB mmu os=posix
app Brake kind=da asil=D period=10ms wcet=2ms mem=64KB on=CPM
app Media kind=nda asil=QM mem=1MB on=Head
`)
	k := sim.NewKernel(1)
	p := New(k, nil)
	if err := Deploy(p, sys, ModeIsolated, ms(1)); err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes()) != 2 {
		t.Fatalf("nodes = %v", p.Nodes())
	}
	inst, node := p.FindApp("Brake")
	if inst == nil || node.ECU().Name != "CPM" {
		t.Fatal("Brake not deployed to CPM")
	}
	if err := p.StartAll(); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(ms(50)))
	if inst.Activations == 0 {
		t.Error("Brake never activated")
	}
	// Invalid model must be rejected.
	bad := sys.Clone()
	bad.Placement["Brake"] = "Head"
	p2 := New(sim.NewKernel(1), nil)
	if err := Deploy(p2, bad, ModeIsolated, ms(1)); err == nil {
		t.Error("Deploy accepted invalid model")
	}
}

func TestSharedModeBoundedInversion(t *testing.T) {
	// In shared mode a DA release waits for at most the running NDA job.
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeShared, 0)
	da, _ := n.Install(daApp("d", ms(20), ms(2)), Behavior{})
	nda, _ := n.Install(ndaApp("bg"), Behavior{})
	da.Start() // release at t=0... but NDA job gets in first via Submit below
	nda.Start()
	nda.Submit(ms(5), nil)
	k.RunUntil(sim.Time(ms(100)))
	// First DA job blocked by up to 5ms NDA job; with 20ms deadline it
	// still completes.
	if da.Misses != 0 {
		t.Errorf("misses = %d", da.Misses)
	}
	if da.Response.Max() <= float64(ms(2)) {
		t.Error("expected visible blocking by the NDA job in shared mode")
	}
}
