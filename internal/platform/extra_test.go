package platform

import (
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

func TestMissRate(t *testing.T) {
	a := &AppInstance{}
	if a.MissRate() != 0 {
		t.Error("empty miss rate != 0")
	}
	a.Activations = 10
	a.Misses = 3
	if a.MissRate() != 0.3 {
		t.Errorf("miss rate = %v", a.MissRate())
	}
}

func TestNDAJobsBeforeFirstTable(t *testing.T) {
	// A node with only NDAs has no schedule table: jobs run back to back.
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, 0)
	nda, _ := n.Install(ndaApp("only"), Behavior{})
	nda.Start()
	var done []sim.Time
	for i := 0; i < 3; i++ {
		nda.Submit(ms(5), func() { done = append(done, k.Now()) })
	}
	k.Run()
	want := []sim.Time{sim.Time(ms(5)), sim.Time(ms(10)), sim.Time(ms(15))}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("done = %v, want %v", done, want)
		}
	}
	if n.Utilization() != 0 || n.Table() != nil {
		t.Error("NDA-only node should have no table")
	}
}

func TestNDASequencingAcrossSubmitters(t *testing.T) {
	// Two NDA apps share the gap CPU FIFO: completions honor submit
	// order and never overlap.
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	da, _ := n.Install(daApp("ctl", ms(10), ms(5)), Behavior{})
	a, _ := n.Install(ndaApp("a"), Behavior{})
	b, _ := n.Install(ndaApp("b"), Behavior{})
	da.Start()
	a.Start()
	b.Start()
	var order []string
	a.Submit(ms(3), func() { order = append(order, "a1") })
	b.Submit(ms(3), func() { order = append(order, "b1") })
	a.Submit(ms(3), func() { order = append(order, "a2") })
	k.RunUntil(sim.Time(ms(100)))
	if len(order) != 3 || order[0] != "a1" || order[1] != "b1" || order[2] != "a2" {
		t.Errorf("order = %v", order)
	}
	// 9ms of NDA work into 5ms gaps per 10ms period: finishes within
	// period 2, and the DA never misses.
	if da.Misses != 0 {
		t.Errorf("da misses = %d", da.Misses)
	}
	if a.JobsDone != 2 || b.JobsDone != 1 {
		t.Errorf("jobs a=%d b=%d", a.JobsDone, b.JobsDone)
	}
	if a.JobLatency.Count() != 2 {
		t.Errorf("latency samples = %d", a.JobLatency.Count())
	}
}

func TestPlatformAddNodeDuplicate(t *testing.T) {
	k := sim.NewKernel(1)
	p := New(k, nil)
	if _, err := p.AddNode(rtosECU("x"), ModeIsolated, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddNode(rtosECU("x"), ModeIsolated, 0); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestBehaviorExecClamping(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1)/4)
	inst, _ := n.Install(daApp("d", ms(10), ms(2)), Behavior{
		// Pathological behavior: negative and over-WCET samples must be
		// clamped into (0, WCET].
		ExecTime: func(r *sim.RNG) sim.Duration {
			if r.Bool(0.5) {
				return -ms(5)
			}
			return ms(50)
		},
	})
	inst.Start()
	k.RunUntil(sim.Time(ms(500)))
	if inst.Misses != 0 {
		t.Errorf("misses = %d", inst.Misses)
	}
	if max := inst.Response.PercentileDuration(100); max > ms(2) {
		t.Errorf("max response %v exceeds WCET", max)
	}
}

func TestDoubleStartAndStopIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	inst, _ := n.Install(daApp("d", ms(10), ms(1)), Behavior{})
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Error("double start accepted")
	}
	inst.Stop()
	inst.Stop() // no-op
	if inst.State != StateStopped {
		t.Errorf("state = %v", inst.State)
	}
}

func TestResourceHoldSerialization(t *testing.T) {
	// Total service time = sum of holds; QueueLen drains.
	k := sim.NewKernel(1)
	r := NewResource(k, "flash")
	var last sim.Time
	for i := 0; i < 4; i++ {
		r.AcquireBulk(ms(3), nil)
	}
	r.AcquireUrgent(ms(1), func() { last = k.Now() })
	if r.QueueLen() == 0 {
		t.Error("queue empty while busy")
	}
	k.Run()
	// Urgent granted after the in-service bulk hold (3ms), preempting
	// the remaining bulk queue.
	if last != sim.Time(ms(3)) {
		t.Errorf("urgent granted at %v, want 3ms", last)
	}
	if r.Served != 5 || r.QueueLen() != 0 {
		t.Errorf("served=%d queue=%d", r.Served, r.QueueLen())
	}
}

func TestColocateUnknownApp(t *testing.T) {
	m := NewMemoryManager(1024, true)
	m.NewDomain("a", 10)
	if err := m.Colocate("a", "ghost"); err == nil {
		t.Error("colocate with unknown app accepted")
	}
	if err := m.Colocate("ghost", "a"); err == nil {
		t.Error("colocate from unknown app accepted")
	}
	if m.InjectWildWrite("ghost") != nil {
		t.Error("wild write from unknown app hit something")
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNode(k, rtosECU("cpm"), ModeIsolated, ms(1))
	da, _ := n.Install(daApp("d", ms(10), ms(2)), Behavior{})
	nda, _ := n.Install(ndaApp("n"), Behavior{})
	da.Start()
	nda.Start()
	nda.Submit(ms(7), nil)
	// Stop mid-period so the release at t=100ms doesn't add an 11th
	// accounting entry.
	k.RunUntil(sim.Time(ms(95)))
	// 10 activations × 2ms exact WCET.
	if da.CPUTime != ms(20) {
		t.Errorf("DA CPU time = %v, want 20ms", da.CPUTime)
	}
	if nda.CPUTime != ms(7) {
		t.Errorf("NDA CPU time = %v, want 7ms", nda.CPUTime)
	}
}

func TestDeployRejectsDuplicateInstall(t *testing.T) {
	sys := model.MustParse(`
ecu E cpu=100MHz mem=1MB mmu os=rtos
app A kind=da asil=B period=10ms wcet=1ms mem=64KB on=E
`)
	k := sim.NewKernel(1)
	p := New(k, nil)
	if err := Deploy(p, sys, ModeIsolated, 0); err != nil {
		t.Fatal(err)
	}
	// Unplaced apps are skipped by Deploy.
	sys2 := model.MustParse(`
ecu E cpu=100MHz mem=1MB mmu os=rtos
app Floating kind=nda mem=64KB
`)
	p2 := New(sim.NewKernel(1), nil)
	if err := Deploy(p2, sys2, ModeIsolated, 0); err != nil {
		t.Fatal(err)
	}
	if p2.Node("E").App("Floating") != nil {
		t.Error("unplaced app installed")
	}
}
