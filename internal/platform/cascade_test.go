package platform

import (
	"testing"

	"dynaplat/internal/sim"
)

func cascadeFault(p *Platform, node *Node, at int64) {
	p.Kernel().At(sim.Time(ms(at)), func() {
		node.Diag().RecordFault(Fault{App: "lane", Kind: FaultDeadlineMiss})
	})
}

func TestCascadeEscalatesThenRelaxes(t *testing.T) {
	p, node := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	m.EnableCascade([]CascadeRule{
		{Kind: FaultDeadlineMiss, Count: 3, Window: ms(100)},
	}, ms(500))
	k := p.Kernel()
	// Burst 1 escalates normal -> degraded, burst 2 degraded -> limp-home.
	for _, at := range []int64{10, 20, 30, 40, 50, 60} {
		cascadeFault(p, node, at)
	}
	k.RunUntil(sim.Time(ms(70)))
	if m.Current() != "limp-home" {
		t.Fatalf("mode after two bursts = %s", m.Current())
	}
	if node.App("media").State != StateStopped || node.App("lane").State != StateStopped {
		t.Error("load not shed in limp-home")
	}
	// Quiet period: one relaxation step per relaxAfter, chaining back to
	// the base mode.
	k.RunUntil(sim.Time(ms(600)))
	if m.Current() != "degraded" {
		t.Errorf("mode after first quiet period = %s", m.Current())
	}
	k.RunUntil(sim.Time(ms(2000)))
	if m.Current() != "normal" {
		t.Errorf("mode after sustained quiet = %s", m.Current())
	}
	if node.App("media").State != StateRunning || node.App("lane").State != StateRunning {
		t.Error("apps not resumed after relaxation")
	}
	if len(m.Transitions) != 4 { // two up, two down
		t.Errorf("transitions = %d: %+v", len(m.Transitions), m.Transitions)
	}
}

func TestCascadeWindowSlides(t *testing.T) {
	p, node := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	m.EnableCascade([]CascadeRule{
		{Kind: FaultDeadlineMiss, Count: 3, Window: ms(50)},
	}, 0) // relaxation disabled
	k := p.Kernel()
	// Three faults, each outside the previous one's window: no escalation.
	for _, at := range []int64{10, 100, 200} {
		cascadeFault(p, node, at)
	}
	k.RunUntil(sim.Time(ms(300)))
	if m.Current() != "normal" {
		t.Errorf("sparse faults escalated to %s", m.Current())
	}
	// Wrong fault kind never qualifies.
	k.At(sim.Time(ms(310)), func() {
		for i := 0; i < 5; i++ {
			node.Diag().RecordFault(Fault{App: "x", Kind: FaultSecurity})
		}
	})
	k.RunUntil(sim.Time(ms(400)))
	if m.Current() != "normal" {
		t.Errorf("wrong-kind faults escalated to %s", m.Current())
	}
}

func TestCascadeManualTransitionResetsWindows(t *testing.T) {
	p, node := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	m.EnableCascade([]CascadeRule{
		{Kind: FaultDeadlineMiss, Count: 3, Window: ms(200)},
	}, 0)
	k := p.Kernel()
	cascadeFault(p, node, 10)
	cascadeFault(p, node, 20)
	k.At(sim.Time(ms(30)), func() { m.Escalate("operator") }) // clears windows
	cascadeFault(p, node, 40)                                 // 1st fault of the new window
	k.RunUntil(sim.Time(ms(100)))
	if m.Current() != "degraded" {
		t.Errorf("mode = %s, want degraded (stale window must not chain)", m.Current())
	}
}

func TestCascadeValidation(t *testing.T) {
	p, _ := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty rules", func() { m.EnableCascade(nil, 0) })
	mustPanic("zero count", func() {
		m.EnableCascade([]CascadeRule{{Kind: FaultDeadlineMiss, Count: 0, Window: ms(10)}}, 0)
	})
	mustPanic("zero window", func() {
		m.EnableCascade([]CascadeRule{{Kind: FaultDeadlineMiss, Count: 1}}, 0)
	})
}
