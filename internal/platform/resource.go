package platform

import (
	"sort"

	"dynaplat/internal/sim"
)

// Resource models exclusive hardware access arbitration (Section 3.1
// "Hardware Access & Communication"): crypto modules, persistent memory
// and similar shared devices. Requests queue by priority — deterministic
// applications' urgent accesses overtake queued bulk work, though an
// in-service request is never preempted (bounded inversion).
type Resource struct {
	Name string
	k    *sim.Kernel

	queue []*resRequest
	busy  bool
	seq   uint64

	// Served counts completed acquisitions; Wait samples queueing delay
	// per priority class.
	Served   int64
	WaitHigh sim.Sample
	WaitLow  sim.Sample
}

type resRequest struct {
	prio     int // 0 = deterministic/urgent, 1 = background
	hold     sim.Duration
	enqueued sim.Time
	seq      uint64
	fn       func()
}

// NewResource creates a named exclusive resource.
func NewResource(k *sim.Kernel, name string) *Resource {
	return &Resource{Name: name, k: k}
}

// AcquireUrgent requests the resource at deterministic priority for hold
// virtual time; fn runs when access is granted (before the hold elapses).
func (r *Resource) AcquireUrgent(hold sim.Duration, fn func()) { r.acquire(0, hold, fn) }

// AcquireBulk requests the resource at background priority.
func (r *Resource) AcquireBulk(hold sim.Duration, fn func()) { r.acquire(1, hold, fn) }

func (r *Resource) acquire(prio int, hold sim.Duration, fn func()) {
	if hold <= 0 {
		hold = sim.Nanosecond
	}
	r.queue = append(r.queue, &resRequest{
		prio: prio, hold: hold, enqueued: r.k.Now(), seq: r.seq, fn: fn,
	})
	r.seq++
	r.serve()
}

func (r *Resource) serve() {
	if r.busy || len(r.queue) == 0 {
		return
	}
	sort.SliceStable(r.queue, func(i, j int) bool {
		if r.queue[i].prio != r.queue[j].prio {
			return r.queue[i].prio < r.queue[j].prio
		}
		return r.queue[i].seq < r.queue[j].seq
	})
	req := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	wait := r.k.Now().Sub(req.enqueued)
	if req.prio == 0 {
		r.WaitHigh.AddDuration(wait)
	} else {
		r.WaitLow.AddDuration(wait)
	}
	if req.fn != nil {
		req.fn()
	}
	r.k.After(req.hold, func() {
		r.busy = false
		r.Served++
		r.serve()
	})
}

// QueueLen returns the number of waiting requests.
func (r *Resource) QueueLen() int { return len(r.queue) }
