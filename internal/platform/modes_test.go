package platform

import (
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

func modesPlatform(t *testing.T) (*Platform, *Node) {
	t.Helper()
	k := sim.NewKernel(1)
	p := New(k, nil)
	node, err := p.AddNode(rtosECU("cpm"), ModeIsolated, ms(1)/2)
	if err != nil {
		t.Fatal(err)
	}
	install := func(name string, asil model.ASIL, kind model.AppKind) {
		app := model.App{Name: name, Kind: kind, ASIL: asil, MemoryKB: 16}
		if kind == model.Deterministic {
			app.Period, app.WCET, app.Deadline = ms(10), ms(1), ms(10)
		}
		inst, err := node.Install(app, Behavior{})
		if err != nil {
			t.Fatal(err)
		}
		inst.Start()
	}
	install("brake", model.ASILD, model.Deterministic)
	install("lane", model.ASILB, model.Deterministic)
	install("media", model.QM, model.NonDeterministic)
	return p, node
}

func TestModeEscalationShedsLoad(t *testing.T) {
	p, node := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	if m.Current() != "normal" {
		t.Fatalf("initial mode = %s", m.Current())
	}
	m.Escalate("driver reported fault")
	if m.Current() != "degraded" {
		t.Fatalf("mode = %s", m.Current())
	}
	// QM media stopped; ASIL-B and D still running.
	if node.App("media").State != StateStopped {
		t.Error("media still running in degraded mode")
	}
	if node.App("lane").State != StateRunning || node.App("brake").State != StateRunning {
		t.Error("safety apps stopped in degraded mode")
	}
	m.Escalate("second fault")
	if m.Current() != "limp-home" {
		t.Fatalf("mode = %s", m.Current())
	}
	if node.App("lane").State != StateRunning && node.App("lane").Spec.ASIL >= model.ASILD {
		t.Error("unexpected")
	}
	if node.App("lane").State != StateStopped {
		t.Error("ASIL-B app running in limp-home")
	}
	if node.App("brake").State != StateRunning {
		t.Error("ASIL-D app stopped in limp-home")
	}
	// At the top: escalate is a no-op.
	m.Escalate("again")
	if m.Current() != "limp-home" || len(m.Transitions) != 2 {
		t.Errorf("mode = %s transitions = %d", m.Current(), len(m.Transitions))
	}
	// Transition log captured the shed apps.
	if len(m.Transitions[0].Stopped) != 1 || m.Transitions[0].Stopped[0] != "media" {
		t.Errorf("transition 0 = %+v", m.Transitions[0])
	}
}

func TestModeRelaxResumes(t *testing.T) {
	p, node := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	m.Escalate("x")
	m.Escalate("y")
	m.Relax("fault cleared")
	if m.Current() != "degraded" {
		t.Fatalf("mode = %s", m.Current())
	}
	if node.App("lane").State != StateRunning {
		t.Error("lane not resumed in degraded")
	}
	if node.App("media").State != StateStopped {
		t.Error("media resumed too early")
	}
	m.Relax("all clear")
	if node.App("media").State != StateRunning {
		t.Error("media not resumed in normal")
	}
	m.Relax("below base") // no-op
	if m.Current() != "normal" {
		t.Errorf("mode = %s", m.Current())
	}
}

func TestModeSetByName(t *testing.T) {
	p, _ := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	if err := m.SetMode("limp-home", "direct"); err != nil {
		t.Fatal(err)
	}
	if m.Current() != "limp-home" {
		t.Errorf("mode = %s", m.Current())
	}
	if err := m.SetMode("warp", "x"); err == nil {
		t.Error("unknown mode accepted")
	}
	// Setting the current mode again records no transition.
	n := len(m.Transitions)
	m.SetMode("limp-home", "again")
	if len(m.Transitions) != n {
		t.Error("no-op SetMode recorded a transition")
	}
}

func TestModeAutoEscalationOnFaults(t *testing.T) {
	p, node := modesPlatform(t)
	m := NewModeManager(p, DefaultModes())
	m.FaultEscalation = 3
	for i := 0; i < 3; i++ {
		node.Diag().RecordFault(Fault{App: "lane", Kind: FaultDeadlineMiss})
	}
	if m.Current() != "degraded" {
		t.Fatalf("mode after 3 misses = %s", m.Current())
	}
	// Counter reset: two more faults are below the new threshold.
	node.Diag().RecordFault(Fault{App: "lane", Kind: FaultDeadlineMiss})
	node.Diag().RecordFault(Fault{App: "lane", Kind: FaultDeadlineMiss})
	if m.Current() != "degraded" {
		t.Errorf("premature escalation: %s", m.Current())
	}
	// Unrelated fault kinds do not count.
	node.Diag().RecordFault(Fault{App: "x", Kind: FaultSecurity})
	if m.Current() != "degraded" {
		t.Errorf("wrong-kind fault escalated: %s", m.Current())
	}
}

func TestModeManagerChainsExistingUplink(t *testing.T) {
	p, node := modesPlatform(t)
	got := 0
	node.Diag().SetUplink(func(Fault) { got++ })
	m := NewModeManager(p, DefaultModes())
	m.FaultEscalation = 1
	node.Diag().RecordFault(Fault{App: "a", Kind: FaultDeadlineMiss})
	if got != 1 {
		t.Error("pre-existing uplink lost")
	}
	if m.Current() != "degraded" {
		t.Error("escalation lost")
	}
}

func TestModePolicyValidation(t *testing.T) {
	p, _ := modesPlatform(t)
	for _, bad := range [][]ModePolicy{
		nil,
		{{Name: "a", MinASIL: model.ASILD}, {Name: "b", MinASIL: model.QM}},
	} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("policies %v accepted", bad)
				}
			}()
			NewModeManager(p, bad)
		}()
	}
}
