// Package platform implements the paper's core contribution (Figure 2):
// the dynamic platform layer that hosts deterministic applications (DAs)
// and non-deterministic applications (NDAs) side by side on shared
// hardware while guaranteeing freedom of interference.
//
// A Node is the platform runtime on one ECU. In ModeIsolated (the
// platform's design) deterministic applications execute in synthesized
// time-triggered slots and non-deterministic work is confined to the
// gaps. ModeShared is the paper's implicit baseline — a conventional
// priority scheduler without temporal partitioning — used by experiment
// E1 to demonstrate why the platform layer is needed.
package platform

import (
	"fmt"
	"sort"

	"dynaplat/internal/model"
	"dynaplat/internal/sched"
	"dynaplat/internal/sim"
)

// Mode selects the node's CPU isolation strategy.
type Mode int

const (
	// ModeIsolated partitions time: DAs run in time-triggered slots,
	// NDAs only in the remaining gaps.
	ModeIsolated Mode = iota
	// ModeShared runs everything in one non-preemptive priority queue
	// (DA releases get priority but can be blocked by a running NDA
	// job) — the interference-prone baseline.
	ModeShared
)

func (m Mode) String() string {
	if m == ModeIsolated {
		return "isolated"
	}
	return "shared"
}

// AppState is an application's lifecycle state on a node.
type AppState int

const (
	StateInstalled AppState = iota
	StateRunning
	StateStopped
)

func (s AppState) String() string {
	switch s {
	case StateInstalled:
		return "installed"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// Node is the dynamic-platform runtime on one ECU.
type Node struct {
	k    *sim.Kernel
	ecu  model.ECU
	mode Mode
	mgr  *sched.Manager
	mem  *MemoryManager
	apps map[string]*AppInstance
	rng  *sim.RNG

	// epoch anchors the cyclic schedule table; set on first synthesis.
	epoch    sim.Time
	epochSet bool
	// ndaCursor is the virtual time up to which gap CPU time is consumed.
	ndaCursor sim.Time
	// sharedBusyUntil is the CPU-free time in ModeShared.
	sharedBusyUntil sim.Time
	sharedQ         []*queuedJob
	seq             uint64

	// compPool recycles pending-completion records so that dispatching a
	// deterministic job allocates nothing in steady state.
	compPool []*pendingCompletion
	// gapsFor/gapsCache memoize freeIntervals for the current table.
	gapsFor   *sched.Table
	gapsCache []gap

	// Hooks for the runtime monitor (Section 3.4).
	onComplete []func(Completion)

	// Fault-injection state (see faultinject.go).
	health   Health
	slowdown float64 // 0 or <=1 means nominal

	// Services
	log   *LogService
	store *PersistenceService
	diag  *DiagnosisService
}

// Completion reports one finished DA activation to monitoring hooks.
type Completion struct {
	App      string
	Job      int64
	Release  sim.Time
	Started  sim.Time
	Finished sim.Time
	Deadline sim.Time
	Missed   bool
}

// NewNode creates a platform runtime for the ECU. granularity configures
// schedule-table synthesis (0 = default).
func NewNode(k *sim.Kernel, ecu model.ECU, mode Mode, granularity sim.Duration) *Node {
	n := &Node{
		k:    k,
		ecu:  ecu,
		mode: mode,
		mgr:  sched.NewManager(granularity),
		mem:  NewMemoryManager(ecu.MemoryKB, ecu.HasMMU),
		apps: map[string]*AppInstance{},
		rng:  k.RNG().Split(),
	}
	n.log = NewLogService(k, 4096)
	n.store = NewPersistenceService()
	n.diag = NewDiagnosisService(k)
	return n
}

// ECU returns the node's hardware descriptor.
func (n *Node) ECU() model.ECU { return n.ecu }

// Kernel returns the simulation kernel the node runs on.
func (n *Node) Kernel() *sim.Kernel { return n.k }

// Mode returns the CPU isolation mode.
func (n *Node) Mode() Mode { return n.mode }

// Log returns the node's logging service.
func (n *Node) Log() *LogService { return n.log }

// Store returns the node's persistence service.
func (n *Node) Store() *PersistenceService { return n.store }

// Diag returns the node's diagnosis service.
func (n *Node) Diag() *DiagnosisService { return n.diag }

// Memory returns the node's memory manager.
func (n *Node) Memory() *MemoryManager { return n.mem }

// OnComplete registers a monitoring hook invoked after every DA
// activation.
func (n *Node) OnComplete(fn func(Completion)) { n.onComplete = append(n.onComplete, fn) }

// Apps returns the sorted names of installed applications.
func (n *Node) Apps() []string {
	out := make([]string, 0, len(n.apps))
	for a := range n.apps {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// App returns the named application instance, or nil.
func (n *Node) App(name string) *AppInstance { return n.apps[name] }

// Install places an application onto the node: memory is allocated in a
// process domain and — for deterministic apps in isolated mode — the
// schedule manager runs admission control. Installation does not start
// execution.
func (n *Node) Install(app model.App, behavior Behavior) (*AppInstance, error) {
	if _, ok := n.apps[app.Name]; ok {
		return nil, fmt.Errorf("platform: app %s already installed on %s", app.Name, n.ecu.Name)
	}
	if app.Kind == model.Deterministic && n.ecu.OS != model.OSRTOS {
		return nil, fmt.Errorf("platform: deterministic app %s needs an RTOS (ECU %s runs %v)",
			app.Name, n.ecu.Name, n.ecu.OS)
	}
	if err := n.mem.NewDomain(app.Name, app.MemoryKB); err != nil {
		return nil, err
	}
	inst := &AppInstance{
		node:     n,
		Spec:     app,
		Behavior: behavior,
		State:    StateInstalled,
	}
	if app.Kind == model.Deterministic && n.mode == ModeIsolated {
		task := sched.Task{
			Name:     app.Name,
			Period:   app.Period,
			WCET:     n.ecu.ScaledWCET(app.WCET),
			Deadline: app.Deadline,
			Jitter:   app.Jitter,
		}
		if _, err := n.mgr.Admit(task); err != nil {
			n.mem.RemoveDomain(app.Name)
			return nil, fmt.Errorf("platform: admission of %s failed: %w", app.Name, err)
		}
		n.realign()
	}
	n.apps[app.Name] = inst
	n.log.Logf("platform", "installed %s v%d (%v, %v)", app.Name, app.Version, app.Kind, app.ASIL)
	return inst, nil
}

// Uninstall stops and removes an application, releasing its memory and
// schedule slots.
func (n *Node) Uninstall(name string) error {
	inst, ok := n.apps[name]
	if !ok {
		return fmt.Errorf("platform: app %s not installed", name)
	}
	if inst.State == StateRunning {
		inst.Stop()
	}
	if inst.Spec.Kind == model.Deterministic && n.mode == ModeIsolated {
		if err := n.mgr.Remove(name); err != nil {
			return err
		}
		n.realign()
	}
	n.mem.RemoveDomain(name)
	delete(n.apps, name)
	n.log.Logf("platform", "uninstalled %s", name)
	return nil
}

// realign anchors the schedule epoch the first time a table exists. The
// epoch never moves afterwards: tables repeat cyclically and all releases
// sit on the epoch-aligned period grid, so job indices stay consistent
// across incremental and full resyntheses.
func (n *Node) realign() {
	if n.epochSet {
		return
	}
	if n.mgr.Table() == nil {
		return
	}
	n.epoch = n.k.Now()
	n.epochSet = true
}

// Utilization returns the deterministic CPU utilization of the node.
func (n *Node) Utilization() float64 {
	tbl := n.mgr.Table()
	if tbl == nil {
		return 0
	}
	return tbl.Utilization()
}

// Table exposes the current schedule table (for diagnosis).
func (n *Node) Table() *sched.Table { return n.mgr.Table() }

func (n *Node) notifyComplete(c Completion) {
	for _, fn := range n.onComplete {
		fn(c)
	}
}
