package platform

import (
	"fmt"

	"dynaplat/internal/obs"
)

// Observability wiring for the platform layer (DESIGN.md §7). Both
// helpers attach to existing hooks — Node.OnComplete and
// ModeManager.OnTransition — so the uninstrumented runtime keeps its
// hot path untouched; a nil obs plane is a no-op.

// ObserveNode records every deterministic-activation completion of n
// into o:
//
//	plat_jobs{layer=platform,ecu,iface=<app>}            counter
//	plat_deadline_misses{layer=platform,ecu,iface=<app>} counter
//	plat_response{layer=platform,ecu,iface=<app>}        histogram (release→finish)
//
// and a Chrome 'X' (complete) slice per activation on track
// "ecu:<name>" named after the app ("!" suffix marks a deadline miss).
func ObserveNode(o *obs.Obs, n *Node) {
	if o == nil || n == nil {
		return
	}
	ecu := n.ecu.Name
	track := "ecu:" + ecu
	jobs := map[string]*obs.Counter{}
	misses := map[string]*obs.Counter{}
	resp := map[string]*obs.Histogram{}
	n.OnComplete(func(c Completion) {
		j, ok := jobs[c.App]
		if !ok {
			l := obs.Labels{Layer: "platform", ECU: ecu, Iface: c.App}
			j = o.M.Counter("plat_jobs", l)
			jobs[c.App] = j
			misses[c.App] = o.M.Counter("plat_deadline_misses", l)
			resp[c.App] = o.M.Histogram("plat_response", l)
		}
		j.Inc()
		resp[c.App].Observe(c.Finished.Sub(c.Release))
		name := c.App
		args := ""
		if c.Missed {
			misses[c.App].Inc()
			name = c.App + "!"
			args = "deadline-miss"
		}
		o.T.Complete("platform", name, track, c.Started, c.Finished.Sub(c.Started), args)
	})
}

// ObserveModes records every mode transition of mm as an instant on
// track "modes" plus the plat_mode_changes counter, and mirrors the
// current mode ordinal in the plat_mode gauge.
func ObserveModes(o *obs.Obs, mm *ModeManager) {
	if o == nil || mm == nil {
		return
	}
	l := obs.Labels{Layer: "platform", Iface: "modes"}
	changes := o.M.Counter("plat_mode_changes", l)
	gauge := o.M.Gauge("plat_mode", l)
	gauge.Set(int64(mm.current))
	prev := mm.OnTransition
	mm.OnTransition = func(tr ModeTransition) {
		changes.Inc()
		gauge.Set(int64(mm.current))
		o.T.Instant("mode", tr.From+"->"+tr.To, "modes",
			fmt.Sprintf("reason=%s stopped=%d resumed=%d", tr.Reason, len(tr.Stopped), len(tr.Resumed)))
		if prev != nil {
			prev(tr)
		}
	}
}

// ObservePlatform wires every current node of p into o (see
// ObserveNode). Nodes added later must be wired individually.
func ObservePlatform(o *obs.Obs, p *Platform) {
	if o == nil || p == nil {
		return
	}
	for _, ecu := range p.Nodes() {
		ObserveNode(o, p.Node(ecu))
	}
}
