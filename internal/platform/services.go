package platform

import (
	"fmt"
	"sort"

	"dynaplat/internal/sim"
)

// This file provides the common platform services the paper's Section 1.1
// lists: logging, persistence (e.g. for configurations) and diagnosis.

// LogService is the platform's bounded structured log.
type LogService struct {
	k   *sim.Kernel
	cap int
	buf []LogEntry
	// Dropped counts entries evicted by the ring bound.
	Dropped int64
}

// LogEntry is one log record.
type LogEntry struct {
	At       sim.Time
	Category string
	Message  string
}

// NewLogService creates a log bounded to cap entries.
func NewLogService(k *sim.Kernel, cap int) *LogService {
	if cap <= 0 {
		cap = 1024
	}
	return &LogService{k: k, cap: cap}
}

// Logf appends a formatted entry.
func (l *LogService) Logf(category, format string, args ...any) {
	e := LogEntry{At: l.k.Now(), Category: category, Message: fmt.Sprintf(format, args...)}
	if len(l.buf) >= l.cap {
		copy(l.buf, l.buf[1:])
		l.buf[len(l.buf)-1] = e
		l.Dropped++
		return
	}
	l.buf = append(l.buf, e)
}

// Entries returns all retained entries.
func (l *LogService) Entries() []LogEntry { return l.buf }

// ByCategory filters retained entries.
func (l *LogService) ByCategory(cat string) []LogEntry {
	var out []LogEntry
	for _, e := range l.buf {
		if e.Category == cat {
			out = append(out, e)
		}
	}
	return out
}

// PersistenceService is a per-app key/value store surviving app restarts
// (it belongs to the platform, not the app process).
type PersistenceService struct {
	data map[string]map[string][]byte
}

// NewPersistenceService creates an empty store.
func NewPersistenceService() *PersistenceService {
	return &PersistenceService{data: map[string]map[string][]byte{}}
}

// Put stores a value under (app, key). The value is copied.
func (p *PersistenceService) Put(app, key string, value []byte) {
	m, ok := p.data[app]
	if !ok {
		m = map[string][]byte{}
		p.data[app] = m
	}
	m[key] = append([]byte(nil), value...)
}

// Get retrieves a value; ok is false when absent.
func (p *PersistenceService) Get(app, key string) (value []byte, ok bool) {
	v, ok := p.data[app][key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete removes a key.
func (p *PersistenceService) Delete(app, key string) { delete(p.data[app], key) }

// DropApp removes every key of an app. The staged-update rollback uses
// it to discard state synchronized to a new version that never went
// live — an aborted update must leave the store byte-identical.
func (p *PersistenceService) DropApp(app string) { delete(p.data, app) }

// Keys lists an app's keys, sorted.
func (p *PersistenceService) Keys(app string) []string {
	var out []string
	for k := range p.data[app] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CopyAll snapshots every (key, value) of an app — used by the staged
// update's state-synchronization step (Section 3.2).
func (p *PersistenceService) CopyAll(fromApp, toApp string) int {
	n := 0
	for k, v := range p.data[fromApp] {
		p.Put(toApp, k, v)
		n++
	}
	return n
}

// FaultKind classifies diagnosis records.
type FaultKind int

const (
	FaultDeadlineMiss FaultKind = iota
	FaultJitterExceeded
	FaultMemoryBudget
	FaultStarvation
	FaultHeartbeatLost
	FaultUpdateAborted
	FaultSecurity
)

func (f FaultKind) String() string {
	switch f {
	case FaultDeadlineMiss:
		return "deadline-miss"
	case FaultJitterExceeded:
		return "jitter-exceeded"
	case FaultMemoryBudget:
		return "memory-budget"
	case FaultStarvation:
		return "starvation"
	case FaultHeartbeatLost:
		return "heartbeat-lost"
	case FaultUpdateAborted:
		return "update-aborted"
	case FaultSecurity:
		return "security"
	}
	return "unknown"
}

// Fault is one diagnosis record (Section 3.4: conditions leading to
// faults are recorded and can be transferred to the manufacturer).
type Fault struct {
	App    string
	Kind   FaultKind
	At     sim.Time
	Detail string
}

// DiagnosisService collects fault records and forwards them to an
// optional backend uplink.
type DiagnosisService struct {
	k      *sim.Kernel
	faults []Fault
	uplink func(Fault)
}

// NewDiagnosisService creates an empty diagnosis store.
func NewDiagnosisService(k *sim.Kernel) *DiagnosisService {
	return &DiagnosisService{k: k}
}

// SetUplink installs the manufacturer-backend forwarder.
func (d *DiagnosisService) SetUplink(fn func(Fault)) { d.uplink = fn }

// Uplink returns the installed forwarder (nil when none) so additional
// subscribers can chain onto it instead of clobbering it.
func (d *DiagnosisService) Uplink() func(Fault) { return d.uplink }

// RecordFault stores a fault and forwards it.
func (d *DiagnosisService) RecordFault(f Fault) {
	d.faults = append(d.faults, f)
	if d.uplink != nil {
		d.uplink(f)
	}
}

// Faults returns all recorded faults.
func (d *DiagnosisService) Faults() []Fault { return d.faults }

// FaultsOf returns the faults recorded for one app.
func (d *DiagnosisService) FaultsOf(app string) []Fault {
	var out []Fault
	for _, f := range d.faults {
		if f.App == app {
			out = append(out, f)
		}
	}
	return out
}

// CountKind returns how many faults of the kind were recorded.
func (d *DiagnosisService) CountKind(k FaultKind) int {
	n := 0
	for _, f := range d.faults {
		if f.Kind == k {
			n++
		}
	}
	return n
}
