package platform

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

// ModeManager implements degradation-mode management: Section 3.3 notes
// that an autonomous vehicle's safe state "might not necessarily be the
// shutdown of the vehicle" — instead the platform sheds low-criticality
// load and keeps safety functions operating (limp-home). Modes are
// ordered policies; escalating to a stricter mode stops every
// application below the mode's minimum ASIL, freeing CPU, memory and
// bandwidth for what must keep running.

// ModePolicy defines one operating mode.
type ModePolicy struct {
	// Name identifies the mode ("normal", "degraded", "limp-home").
	Name string
	// MinASIL is the lowest criticality allowed to run in this mode.
	MinASIL model.ASIL
}

// DefaultModes returns the canonical three-stage policy set.
func DefaultModes() []ModePolicy {
	return []ModePolicy{
		{Name: "normal", MinASIL: model.QM},
		{Name: "degraded", MinASIL: model.ASILB},
		{Name: "limp-home", MinASIL: model.ASILD},
	}
}

// ModeTransition records one mode change.
type ModeTransition struct {
	At       sim.Time
	From, To string
	// Stopped and Resumed list affected applications.
	Stopped []string
	Resumed []string
	Reason  string
}

// ModeManager supervises the platform's operating mode.
type ModeManager struct {
	p        *Platform
	policies []ModePolicy
	current  int

	// Transitions logs every mode change.
	Transitions []ModeTransition

	// FaultEscalation, when > 0, escalates one mode automatically after
	// that many faults of kind EscalateOn have been observed since the
	// last transition.
	FaultEscalation int
	// EscalateOn selects the fault kind that drives auto-escalation.
	EscalateOn FaultKind

	faultsSeen int
}

// NewModeManager creates a manager starting in the first (least strict)
// policy. It panics on an empty or unordered policy list.
func NewModeManager(p *Platform, policies []ModePolicy) *ModeManager {
	if len(policies) == 0 {
		panic("platform: no mode policies")
	}
	for i := 1; i < len(policies); i++ {
		if policies[i].MinASIL < policies[i-1].MinASIL {
			panic("platform: mode policies must be ordered by rising MinASIL")
		}
	}
	m := &ModeManager{p: p, policies: policies, EscalateOn: FaultDeadlineMiss}
	// Watch every node's diagnosis stream for auto-escalation.
	for _, ecu := range p.Nodes() {
		node := p.Node(ecu)
		prev := node.Diag().uplink
		node.Diag().SetUplink(func(f Fault) {
			if prev != nil {
				prev(f)
			}
			m.onFault(f)
		})
	}
	return m
}

// Current returns the active mode name.
func (m *ModeManager) Current() string { return m.policies[m.current].Name }

// onFault counts qualifying faults and escalates at the threshold.
func (m *ModeManager) onFault(f Fault) {
	if m.FaultEscalation <= 0 || f.Kind != m.EscalateOn {
		return
	}
	m.faultsSeen++
	if m.faultsSeen >= m.FaultEscalation {
		m.Escalate(fmt.Sprintf("auto: %d %v faults", m.faultsSeen, m.EscalateOn))
	}
}

// Escalate moves one mode stricter (no-op at the strictest mode).
func (m *ModeManager) Escalate(reason string) {
	if m.current+1 >= len(m.policies) {
		return
	}
	m.setMode(m.current+1, reason)
}

// Relax moves one mode less strict (no-op at the base mode).
func (m *ModeManager) Relax(reason string) {
	if m.current == 0 {
		return
	}
	m.setMode(m.current-1, reason)
}

// SetMode jumps to the named mode.
func (m *ModeManager) SetMode(name, reason string) error {
	for i, p := range m.policies {
		if p.Name == name {
			if i != m.current {
				m.setMode(i, reason)
			}
			return nil
		}
	}
	return fmt.Errorf("platform: unknown mode %q", name)
}

func (m *ModeManager) setMode(target int, reason string) {
	from := m.policies[m.current]
	to := m.policies[target]
	tr := ModeTransition{
		At: m.p.Kernel().Now(), From: from.Name, To: to.Name, Reason: reason,
	}
	for _, ecu := range m.p.Nodes() {
		node := m.p.Node(ecu)
		for _, app := range node.Apps() {
			inst := node.App(app)
			allowed := inst.Spec.ASIL >= to.MinASIL
			switch {
			case !allowed && inst.State == StateRunning:
				inst.Stop()
				tr.Stopped = append(tr.Stopped, app)
				node.Log().Logf("mode", "%s stopped entering %s", app, to.Name)
			case allowed && inst.State == StateStopped && inst.Spec.ASIL < from.MinASIL:
				// Was shed by a stricter mode; resume it.
				if err := inst.Start(); err == nil {
					tr.Resumed = append(tr.Resumed, app)
					node.Log().Logf("mode", "%s resumed entering %s", app, to.Name)
				}
			}
		}
	}
	m.current = target
	m.faultsSeen = 0
	m.Transitions = append(m.Transitions, tr)
}
