package platform

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

// ModeManager implements degradation-mode management: Section 3.3 notes
// that an autonomous vehicle's safe state "might not necessarily be the
// shutdown of the vehicle" — instead the platform sheds low-criticality
// load and keeps safety functions operating (limp-home). Modes are
// ordered policies; escalating to a stricter mode stops every
// application below the mode's minimum ASIL, freeing CPU, memory and
// bandwidth for what must keep running.

// ModePolicy defines one operating mode.
type ModePolicy struct {
	// Name identifies the mode ("normal", "degraded", "limp-home").
	Name string
	// MinASIL is the lowest criticality allowed to run in this mode.
	MinASIL model.ASIL
}

// DefaultModes returns the canonical three-stage policy set.
func DefaultModes() []ModePolicy {
	return []ModePolicy{
		{Name: "normal", MinASIL: model.QM},
		{Name: "degraded", MinASIL: model.ASILB},
		{Name: "limp-home", MinASIL: model.ASILD},
	}
}

// ModeTransition records one mode change.
type ModeTransition struct {
	At       sim.Time
	From, To string
	// Stopped and Resumed list affected applications.
	Stopped []string
	Resumed []string
	Reason  string
}

// ModeManager supervises the platform's operating mode.
type ModeManager struct {
	p        *Platform
	policies []ModePolicy
	current  int

	// Transitions logs every mode change.
	Transitions []ModeTransition
	// OnTransition, when non-nil, is invoked after every mode change
	// (observability hook; see obs.go).
	OnTransition func(ModeTransition)

	// FaultEscalation, when > 0, escalates one mode automatically after
	// that many faults of kind EscalateOn have been observed since the
	// last transition.
	FaultEscalation int
	// EscalateOn selects the fault kind that drives auto-escalation.
	EscalateOn FaultKind

	faultsSeen int

	// Degradation cascade (EnableCascade): sliding-window rules that
	// escalate full → degraded → limp-home, plus automatic relaxation
	// after a quiet period.
	cascade       []cascadeState
	relaxAfter    sim.Duration
	relaxRef      sim.EventRef
	lastQualified sim.Time
}

// CascadeRule escalates one mode when Count faults of Kind arrive
// within a sliding Window.
type CascadeRule struct {
	Kind   FaultKind
	Count  int
	Window sim.Duration
}

// cascadeState tracks one rule's recent fault times.
type cascadeState struct {
	rule  CascadeRule
	times []sim.Time
}

// NewModeManager creates a manager starting in the first (least strict)
// policy. It panics on an empty or unordered policy list.
func NewModeManager(p *Platform, policies []ModePolicy) *ModeManager {
	if len(policies) == 0 {
		panic("platform: no mode policies")
	}
	for i := 1; i < len(policies); i++ {
		if policies[i].MinASIL < policies[i-1].MinASIL {
			panic("platform: mode policies must be ordered by rising MinASIL")
		}
	}
	m := &ModeManager{p: p, policies: policies, EscalateOn: FaultDeadlineMiss}
	// Watch every node's diagnosis stream for auto-escalation.
	for _, ecu := range p.Nodes() {
		node := p.Node(ecu)
		prev := node.Diag().uplink
		node.Diag().SetUplink(func(f Fault) {
			if prev != nil {
				prev(f)
			}
			m.onFault(f)
		})
	}
	return m
}

// Current returns the active mode name.
func (m *ModeManager) Current() string { return m.policies[m.current].Name }

// EnableCascade installs the degradation cascade: each rule escalates
// one mode when its fault count is reached within its sliding window,
// chaining full → degraded → limp-home as faults keep arriving. After
// relaxAfter of virtual time without any qualifying fault the manager
// relaxes one mode at a time back toward the base mode (0 disables
// auto-relaxation). Rules with non-positive Count or Window panic.
func (m *ModeManager) EnableCascade(rules []CascadeRule, relaxAfter sim.Duration) {
	if len(rules) == 0 {
		panic("platform: empty cascade rule set")
	}
	for _, r := range rules {
		if r.Count <= 0 || r.Window <= 0 {
			panic(fmt.Sprintf("platform: invalid cascade rule %+v", r))
		}
	}
	m.cascade = m.cascade[:0]
	for _, r := range rules {
		m.cascade = append(m.cascade, cascadeState{rule: r})
	}
	m.relaxAfter = relaxAfter
}

// onFault counts qualifying faults and escalates at the threshold.
func (m *ModeManager) onFault(f Fault) {
	if m.FaultEscalation > 0 && f.Kind == m.EscalateOn {
		m.faultsSeen++
		if m.faultsSeen >= m.FaultEscalation {
			m.Escalate(fmt.Sprintf("auto: %d %v faults", m.faultsSeen, m.EscalateOn))
		}
	}
	m.onCascadeFault(f)
}

// onCascadeFault feeds the sliding-window rules.
func (m *ModeManager) onCascadeFault(f Fault) {
	now := m.p.Kernel().Now()
	qualified := false
	for i := range m.cascade {
		cs := &m.cascade[i]
		if f.Kind != cs.rule.Kind {
			continue
		}
		qualified = true
		cs.times = append(cs.times, now)
		// Prune entries outside the window.
		cut := 0
		for cut < len(cs.times) && now.Sub(cs.times[cut]) > cs.rule.Window {
			cut++
		}
		cs.times = cs.times[cut:]
		if len(cs.times) >= cs.rule.Count {
			m.Escalate(fmt.Sprintf("cascade: %d %v faults in %v", len(cs.times), cs.rule.Kind, cs.rule.Window))
			cs.times = cs.times[:0]
		}
	}
	if qualified {
		m.lastQualified = now
		m.armRelax()
	}
}

// armRelax (re)schedules the quiet-period check.
func (m *ModeManager) armRelax() {
	if m.relaxAfter <= 0 {
		return
	}
	m.relaxRef.Cancel()
	var tick func()
	tick = func() {
		if m.current == 0 {
			return // back at base: nothing to relax
		}
		quiet := m.p.Kernel().Now().Sub(m.lastQualified)
		if quiet >= m.relaxAfter {
			m.Relax(fmt.Sprintf("cascade: quiet for %v", quiet))
		}
		if m.current > 0 {
			m.relaxRef = m.p.Kernel().After(m.relaxAfter, tick)
		}
	}
	m.relaxRef = m.p.Kernel().After(m.relaxAfter, tick)
}

// Escalate moves one mode stricter (no-op at the strictest mode).
func (m *ModeManager) Escalate(reason string) {
	if m.current+1 >= len(m.policies) {
		return
	}
	m.setMode(m.current+1, reason)
}

// Relax moves one mode less strict (no-op at the base mode).
func (m *ModeManager) Relax(reason string) {
	if m.current == 0 {
		return
	}
	m.setMode(m.current-1, reason)
}

// SetMode jumps to the named mode.
func (m *ModeManager) SetMode(name, reason string) error {
	for i, p := range m.policies {
		if p.Name == name {
			if i != m.current {
				m.setMode(i, reason)
			}
			return nil
		}
	}
	return fmt.Errorf("platform: unknown mode %q", name)
}

func (m *ModeManager) setMode(target int, reason string) {
	from := m.policies[m.current]
	to := m.policies[target]
	tr := ModeTransition{
		At: m.p.Kernel().Now(), From: from.Name, To: to.Name, Reason: reason,
	}
	for _, ecu := range m.p.Nodes() {
		node := m.p.Node(ecu)
		for _, app := range node.Apps() {
			inst := node.App(app)
			allowed := inst.Spec.ASIL >= to.MinASIL
			switch {
			case !allowed && inst.State == StateRunning:
				inst.Stop()
				tr.Stopped = append(tr.Stopped, app)
				node.Log().Logf("mode", "%s stopped entering %s", app, to.Name)
			case allowed && inst.State == StateStopped && inst.Spec.ASIL < from.MinASIL:
				// Was shed by a stricter mode; resume it.
				if err := inst.Start(); err == nil {
					tr.Resumed = append(tr.Resumed, app)
					node.Log().Logf("mode", "%s resumed entering %s", app, to.Name)
				}
			}
		}
	}
	m.current = target
	m.faultsSeen = 0
	for i := range m.cascade {
		m.cascade[i].times = m.cascade[i].times[:0]
	}
	m.Transitions = append(m.Transitions, tr)
	if m.OnTransition != nil {
		m.OnTransition(tr)
	}
}
