package platform

import (
	"sort"

	"dynaplat/internal/sim"
)

// This file implements the node's two CPU models.
//
// ModeIsolated executes deterministic jobs exactly in their synthesized
// table slots and confines non-deterministic work to the gaps — the
// platform layer's freedom-of-interference guarantee. Slot lookups are
// analytic: a job's completion time is computed at release from the
// table, so schedule changes take effect for subsequent releases while
// in-flight activations complete under the table they started with.
//
// ModeShared is the baseline: one non-preemptive queue where DA releases
// have priority but can be blocked behind an already-running NDA job.

// pendingCompletion is a pooled record for one in-flight deterministic
// activation. fire is built once per record and reads the fields at
// event time, so re-dispatching through the pool allocates nothing.
type pendingCompletion struct {
	a        *AppInstance
	job      int64
	release  sim.Time
	started  sim.Time
	finished sim.Time
	deadline sim.Time
	fire     sim.Handler
}

// scheduleCompletion arms a pooled completion record at finished.
func (n *Node) scheduleCompletion(a *AppInstance, job int64, release, started, finished, deadline sim.Time) {
	var c *pendingCompletion
	if m := len(n.compPool); m > 0 {
		c = n.compPool[m-1]
		n.compPool[m-1] = nil
		n.compPool = n.compPool[:m-1]
	} else {
		c = &pendingCompletion{}
		c.fire = func() {
			// Copy out, recycle, then complete — complete may dispatch
			// further jobs that reuse this record.
			a, job := c.a, c.job
			release, started, finished, deadline := c.release, c.started, c.finished, c.deadline
			c.a = nil
			n.compPool = append(n.compPool, c)
			a.complete(job, release, started, finished, deadline)
		}
	}
	c.a, c.job = a, job
	c.release, c.started, c.finished, c.deadline = release, started, finished, deadline
	// Completion records are one-shot and must always fire: crash/hang
	// outcomes are decided inside complete() against current node state,
	// and cancelling a pooled record would strand it outside the pool.
	//dynalint:allow droppedref one-shot pooled completion; cancellation handled by node-state checks in complete()
	n.k.At(finished, c.fire)
}

// runDA dispatches one deterministic activation.
func (n *Node) runDA(a *AppInstance, job int64, exec sim.Duration, release, deadline sim.Time) {
	switch n.mode {
	case ModeIsolated:
		n.runDAIsolated(a, job, exec, release, deadline)
	default:
		n.enqueueShared(&queuedJob{
			prio: 0, exec: exec,
			onDone: func(started, finished sim.Time) {
				a.complete(job, release, started, finished, deadline)
			},
		})
	}
}

// runNDA dispatches non-deterministic work of the given duration.
func (n *Node) runNDA(a *AppInstance, exec sim.Duration, done func()) {
	switch n.mode {
	case ModeIsolated:
		n.runNDAIsolated(a, exec, done)
	default:
		n.enqueueShared(&queuedJob{
			prio: 1, exec: exec,
			onDone: func(_, _ sim.Time) { done() },
		})
	}
}

// --- Isolated mode -------------------------------------------------------

func (n *Node) runDAIsolated(a *AppInstance, job int64, exec sim.Duration, release, deadline sim.Time) {
	tbl := n.mgr.Table()
	if tbl == nil {
		// No deterministic task admitted — cannot happen for installed
		// DAs, but guard anyway.
		at := n.k.Now().Add(exec)
		n.scheduleCompletion(a, job, release, at, at, deadline)
		return
	}
	h := tbl.Hyperperiod
	off := release.Sub(n.epoch)
	cycle := off / h
	cycleStart := n.epoch.Add(cycle * h)
	jobInH := int((release.Sub(cycleStart)) / a.Spec.Period)

	var started, finished sim.Time
	remaining := exec
	for _, s := range tbl.SlotsFor(a.Spec.Name) {
		if s.Job != jobInH {
			continue
		}
		if started == 0 {
			started = cycleStart.Add(s.Start)
		}
		if remaining <= s.Len() {
			finished = cycleStart.Add(s.Start + remaining)
			remaining = 0
			break
		}
		remaining -= s.Len()
		finished = cycleStart.Add(s.End)
	}
	if remaining > 0 || started == 0 {
		// The table has no (or insufficient) slots for this job — it was
		// synthesized before this release pattern (e.g. mid-transition).
		// Fall back to completing at the deadline boundary.
		started = release
		finished = release.Add(exec)
	}
	n.scheduleCompletion(a, job, release, started, finished, deadline)
}

// gap is one idle interval of the schedule table.
type gap struct{ start, end sim.Duration }

// freeIntervals returns the idle gaps of the current table within one
// hyperperiod, memoized per table (tables are immutable once installed,
// and schedule changes install a new *sched.Table).
func (n *Node) freeIntervals() []gap {
	tbl := n.mgr.Table()
	if tbl == nil {
		return nil
	}
	if tbl == n.gapsFor {
		return n.gapsCache
	}
	var out []gap
	cursor := sim.Duration(0)
	for _, s := range tbl.Slots {
		if s.Start > cursor {
			out = append(out, gap{cursor, s.Start})
		}
		if s.End > cursor {
			cursor = s.End
		}
	}
	if cursor < tbl.Hyperperiod {
		out = append(out, gap{cursor, tbl.Hyperperiod})
	}
	n.gapsFor, n.gapsCache = tbl, out
	return out
}

func (n *Node) runNDAIsolated(a *AppInstance, exec sim.Duration, done func()) {
	start := n.k.Now()
	if c := n.ndaCursor; c > start {
		start = c
	}
	tbl := n.mgr.Table()
	if tbl == nil {
		// No deterministic load: CPU is all gap.
		finish := start.Add(exec)
		n.ndaCursor = finish
		n.k.At(finish, done)
		return
	}
	free := n.freeIntervals()
	var freePerHyper sim.Duration
	for _, f := range free {
		freePerHyper += f.end - f.start
	}
	if freePerHyper == 0 {
		// Fully loaded table: the job starves. Record and drop.
		n.diag.RecordFault(Fault{
			App: a.Spec.Name, Kind: FaultStarvation, At: n.k.Now(),
			Detail: "no idle time in schedule table",
		})
		return
	}
	h := tbl.Hyperperiod
	// Walk gaps from `start` until exec is consumed.
	t := start
	remaining := exec
	for remaining > 0 {
		off := t.Sub(n.epoch)
		if off < 0 {
			// Before the schedule epoch everything is free.
			pre := sim.Duration(-off)
			if remaining <= pre {
				t = t.Add(remaining)
				remaining = 0
				break
			}
			remaining -= pre
			t = n.epoch
			continue
		}
		inH := off % h
		base := t.Add(-inH)
		advanced := false
		for _, f := range free {
			if f.end <= inH {
				continue
			}
			gs := f.start
			if gs < inH {
				gs = inH
			}
			avail := f.end - gs
			if remaining <= avail {
				t = base.Add(gs + remaining)
				remaining = 0
			} else {
				remaining -= avail
				t = base.Add(f.end)
			}
			advanced = true
			if remaining == 0 {
				break
			}
		}
		if remaining > 0 {
			// Next hyperperiod.
			t = base.Add(h)
			_ = advanced
		}
	}
	n.ndaCursor = t
	n.k.At(t, done)
}

// --- Shared mode ----------------------------------------------------------

type queuedJob struct {
	prio   int // 0 = deterministic (served first), 1 = background
	exec   sim.Duration
	seq    uint64
	onDone func(started, finished sim.Time)
}

func (n *Node) enqueueShared(j *queuedJob) {
	j.seq = n.seq
	n.seq++
	n.sharedQ = append(n.sharedQ, j)
	n.serveShared()
}

func (n *Node) serveShared() {
	if len(n.sharedQ) == 0 || n.k.Now() < n.sharedBusyUntil {
		return
	}
	sort.SliceStable(n.sharedQ, func(i, k int) bool {
		if n.sharedQ[i].prio != n.sharedQ[k].prio {
			return n.sharedQ[i].prio < n.sharedQ[k].prio
		}
		return n.sharedQ[i].seq < n.sharedQ[k].seq
	})
	j := n.sharedQ[0]
	n.sharedQ = n.sharedQ[1:]
	started := n.k.Now()
	finished := started.Add(j.exec)
	n.sharedBusyUntil = finished
	n.k.At(finished, func() {
		j.onDone(started, finished)
		n.serveShared()
	})
}
