package platform

import (
	"fmt"
	"sort"
)

// MemoryManager implements the platform's process-separation model
// (Section 3.1 "Memory"): every application gets a memory domain; on
// hardware with an MMU each domain is a separate protected process, while
// without one all domains share a single unprotected space. Co-locating
// applications in one process (to limit process count) is an explicit
// decision via Colocate.
type MemoryManager struct {
	totalKB int
	hasMMU  bool
	domains map[string]*Domain
	// processOf maps app → process id. Apps sharing a process id share
	// a protection boundary.
	processOf map[string]int
	nextProc  int
}

// Domain is one application's memory accounting.
type Domain struct {
	App      string
	BudgetKB int
	UsedKB   int
	// Corrupted marks the domain as having been overwritten by a fault.
	Corrupted bool
}

// NewMemoryManager creates a manager for an ECU with the given RAM.
func NewMemoryManager(totalKB int, hasMMU bool) *MemoryManager {
	return &MemoryManager{
		totalKB:   totalKB,
		hasMMU:    hasMMU,
		domains:   map[string]*Domain{},
		processOf: map[string]int{},
	}
}

// HasMMU reports hardware memory protection.
func (m *MemoryManager) HasMMU() bool { return m.hasMMU }

// NewDomain allocates an app's memory domain. Without an MMU every app
// lands in process 0 (no protection); with one, each app gets its own
// process by default.
func (m *MemoryManager) NewDomain(app string, budgetKB int) error {
	if _, ok := m.domains[app]; ok {
		return fmt.Errorf("platform: memory domain for %s exists", app)
	}
	if budgetKB < 0 {
		return fmt.Errorf("platform: negative memory budget for %s", app)
	}
	if m.CommittedKB()+budgetKB > m.totalKB {
		return fmt.Errorf("platform: out of memory: %dKB committed + %dKB > %dKB",
			m.CommittedKB(), budgetKB, m.totalKB)
	}
	m.domains[app] = &Domain{App: app, BudgetKB: budgetKB}
	if m.hasMMU {
		m.nextProc++
		m.processOf[app] = m.nextProc
	} else {
		m.processOf[app] = 0
	}
	return nil
}

// RemoveDomain frees an app's domain.
func (m *MemoryManager) RemoveDomain(app string) {
	delete(m.domains, app)
	delete(m.processOf, app)
}

// Domain returns an app's domain, or nil.
func (m *MemoryManager) Domain(app string) *Domain { return m.domains[app] }

// CommittedKB sums all domain budgets.
func (m *MemoryManager) CommittedKB() int {
	total := 0
	for _, d := range m.domains {
		total += d.BudgetKB
	}
	return total
}

// Colocate moves b into a's process (reducing process count at the cost
// of a shared protection boundary — the trade-off the paper highlights).
// It fails without an MMU (everything already shares process 0) only in
// the sense that it is a no-op.
func (m *MemoryManager) Colocate(a, b string) error {
	pa, okA := m.processOf[a]
	_, okB := m.processOf[b]
	if !okA || !okB {
		return fmt.Errorf("platform: colocate: unknown app")
	}
	m.processOf[b] = pa
	return nil
}

// SameProcess reports whether two apps share a protection boundary.
func (m *MemoryManager) SameProcess(a, b string) bool {
	pa, okA := m.processOf[a]
	pb, okB := m.processOf[b]
	return okA && okB && pa == pb
}

// ProcessCount returns the number of distinct processes in use.
func (m *MemoryManager) ProcessCount() int {
	seen := map[int]bool{}
	for _, p := range m.processOf {
		seen[p] = true
	}
	return len(seen)
}

// Use records memory consumption by an app. Exceeding the budget is an
// error the runtime monitor turns into a fault.
func (m *MemoryManager) Use(app string, kb int) error {
	d, ok := m.domains[app]
	if !ok {
		return fmt.Errorf("platform: no memory domain for %s", app)
	}
	if d.UsedKB+kb > d.BudgetKB {
		return fmt.Errorf("platform: %s exceeds memory budget: %d+%d > %dKB",
			app, d.UsedKB, kb, d.BudgetKB)
	}
	d.UsedKB += kb
	return nil
}

// Release returns memory to an app's budget.
func (m *MemoryManager) Release(app string, kb int) {
	if d, ok := m.domains[app]; ok {
		d.UsedKB -= kb
		if d.UsedKB < 0 {
			d.UsedKB = 0
		}
	}
}

// InjectWildWrite simulates app performing a stray write (fault
// injection, experiment E14): every domain in the same process is
// corrupted. With per-process isolation only the faulty app's own domain
// is hit. It returns the corrupted app names, sorted.
func (m *MemoryManager) InjectWildWrite(app string) []string {
	p, ok := m.processOf[app]
	if !ok {
		return nil
	}
	var hit []string
	for other, d := range m.domains {
		if m.processOf[other] == p {
			d.Corrupted = true
			hit = append(hit, other)
		}
	}
	sort.Strings(hit)
	return hit
}
