package reconfig

import (
	"fmt"
	"strings"
	"testing"

	"dynaplat/internal/admission"
	"dynaplat/internal/model"
	"dynaplat/internal/obs"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/monitor"
	"dynaplat/internal/sim"
)

func msd(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func testECU(name string) model.ECU {
	return model.ECU{Name: name, CPUMHz: 100, MemoryKB: 256, HasMMU: true, OS: model.OSRTOS}
}

func da(name string, asil model.ASIL, memKB int) model.App {
	return model.App{Name: name, Kind: model.Deterministic, ASIL: asil,
		Period: msd(10), WCET: msd(2), Deadline: msd(10), MemoryKB: memKB}
}

func nda(name string, asil model.ASIL, memKB int) model.App {
	return model.App{Name: name, Kind: model.NonDeterministic, ASIL: asil, MemoryKB: memKB}
}

type placed struct {
	app model.App
	ecu string
}

type rig struct {
	k    *sim.Kernel
	sys  *model.System
	p    *platform.Platform
	ctrl *admission.Controller
	orc  *Orchestrator
}

// newRig builds a three-ECU vehicle with the given deployment, watches
// every ECU and starts the orchestrator.
func newRig(t *testing.T, seed uint64, deployment []placed) *rig {
	t.Helper()
	k := sim.NewKernel(seed)
	sys := model.NewSystem("test-vehicle")
	p := platform.New(k, nil)
	for _, name := range []string{"ecuA", "ecuB", "ecuC"} {
		e := testECU(name)
		sys.ECUs = append(sys.ECUs, &e)
		if _, err := p.AddNode(e, platform.ModeIsolated, 250*sim.Microsecond); err != nil {
			t.Fatalf("AddNode(%s): %v", name, err)
		}
	}
	for _, pl := range deployment {
		a := pl.app
		sys.Apps = append(sys.Apps, &a)
		sys.Placement[a.Name] = pl.ecu
		inst, err := p.Node(pl.ecu).Install(a, platform.Behavior{})
		if err != nil {
			t.Fatalf("Install(%s on %s): %v", a.Name, pl.ecu, err)
		}
		if err := inst.Start(); err != nil {
			t.Fatalf("Start(%s): %v", a.Name, err)
		}
	}
	ctrl := admission.NewController(sys)
	orc := New(p, ctrl, Config{
		CheckPeriod:      sim.Millisecond,
		SilenceThreshold: msd(25),
		ReplanDelay:      msd(2),
		SettleTimeout:    msd(200),
		Rehome:           true,
	})
	if err := orc.Watch("ecuA", "ecuB", "ecuC"); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	orc.Start()
	return &rig{k: k, sys: sys, p: p, ctrl: ctrl, orc: orc}
}

// standardDeployment: one ASIL-D DA per compute ECU plus an NDA.
func standardDeployment() []placed {
	return []placed{
		{da("da-brake", model.ASILD, 64), "ecuA"},
		{da("da-steer", model.ASILD, 64), "ecuB"},
		{nda("nda-maps", model.ASILA, 64), "ecuC"},
	}
}

// The base loop: a crashed ECU's deterministic app is detected by
// completion silence, re-placed through admission onto a surviving ECU,
// and resumes activating there; the recovery settles on the app's first
// completion at the new home.
func TestRecoveryMovesLostDA(t *testing.T) {
	r := newRig(t, 1, standardDeployment())
	var stopped []string
	r.k.At(sim.Time(msd(50)), func() { stopped = r.p.Node("ecuA").Crash() })
	r.k.RunUntil(sim.Time(msd(300)))
	_ = stopped

	if len(r.orc.Recoveries) != 1 {
		t.Fatalf("got %d recoveries, want 1: %+v", len(r.orc.Recoveries), r.orc.Recoveries)
	}
	rec := r.orc.Recoveries[0]
	if rec.ECU != "ecuA" || !strings.HasPrefix(rec.Reason, "silence") {
		t.Errorf("recovery = %+v", rec)
	}
	if !rec.Steady || rec.RolledBack || len(rec.Stranded) != 0 || len(rec.Sheds) != 0 {
		t.Fatalf("recovery state: %+v", rec)
	}
	if len(rec.Moves) != 1 || rec.Moves[0].App != "da-brake" || rec.Moves[0].To != "ecuB" {
		t.Fatalf("moves = %+v (first-fit should pick ecuB)", rec.Moves)
	}
	// Timeline: detect after the silence threshold, plan after the replan
	// delay, steady after the first completion on the new node.
	if rec.DetectedAt < sim.Time(msd(50)) || rec.PlannedAt != rec.DetectedAt.Add(msd(2)) {
		t.Errorf("timeline: detected=%v planned=%v", rec.DetectedAt, rec.PlannedAt)
	}
	if rec.SteadyAt <= rec.PlannedAt || rec.Duration() <= 0 {
		t.Errorf("steady=%v planned=%v", rec.SteadyAt, rec.PlannedAt)
	}
	// Model and platform agree on the new placement.
	if r.sys.Placement["da-brake"] != "ecuB" {
		t.Errorf("placement = %v", r.sys.Placement["da-brake"])
	}
	inst := r.p.Node("ecuB").App("da-brake")
	if inst == nil || inst.State != platform.StateRunning || inst.Activations == 0 {
		t.Fatalf("da-brake not running on ecuB: %+v", inst)
	}
	if r.p.Node("ecuA").App("da-brake") != nil {
		t.Error("da-brake still installed on the failed node")
	}
}

// shedDeployment leaves no direct capacity for a moved 64 KB app: every
// surviving ECU is memory-full, but ecuB carries a QM infotainment app
// the orchestrator may shed.
func shedDeployment() []placed {
	return []placed{
		{da("da-brake", model.ASILD, 64), "ecuA"},
		{da("da-steer", model.ASILD, 64), "ecuB"},
		{nda("nda-infot", model.QM, 160), "ecuB"},   // sheddable
		{nda("nda-maps", model.ASILA, 160), "ecuC"}, // with nda-video fills ecuC
		{nda("nda-video", model.ASILA, 64), "ecuC"},
	}
}

// When no surviving ECU has direct capacity, the orchestrator sheds the
// lowest-criticality NDA from the target, escalates the mode cascade,
// and — when the failed ECU returns — re-homes the moved app, restores
// the shed one and relaxes the mode again.
func TestShedEscalateRebalanceRelax(t *testing.T) {
	r := newRig(t, 2, shedDeployment())
	modes := platform.NewModeManager(r.p, platform.DefaultModes())
	r.orc.AttachModes(modes)

	var stopped []string
	r.k.At(sim.Time(msd(50)), func() { stopped = r.p.Node("ecuA").Crash() })
	r.k.RunUntil(sim.Time(msd(400)))

	if len(r.orc.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v", r.orc.Recoveries)
	}
	rec := r.orc.Recoveries[0]
	if len(rec.Moves) != 1 || rec.Moves[0].To != "ecuB" {
		t.Fatalf("moves = %+v", rec.Moves)
	}
	if len(rec.Sheds) != 1 || rec.Sheds[0].App != "nda-infot" {
		t.Fatalf("sheds = %+v", rec.Sheds)
	}
	if r.orc.ShedCount() != 1 {
		t.Errorf("ShedCount = %d", r.orc.ShedCount())
	}
	// The shed app is gone from model and node; the mode escalated.
	if r.sys.App("nda-infot") != nil || r.p.Node("ecuB").App("nda-infot") != nil {
		t.Error("nda-infot not shed")
	}
	if modes.Current() != "degraded" {
		t.Errorf("mode = %q, want degraded", modes.Current())
	}

	// Repair: the failed ECU reboots and the vehicle re-balances.
	r.k.At(sim.Time(msd(400)), func() { r.p.Node("ecuA").Restore(stopped) })
	r.k.RunUntil(sim.Time(msd(700)))

	if len(r.orc.Rebalances) != 1 {
		t.Fatalf("rebalances = %+v", r.orc.Rebalances)
	}
	reb := r.orc.Rebalances[0]
	if len(reb.Rehomed) != 1 || reb.Rehomed[0].App != "da-brake" || reb.Rehomed[0].To != "ecuA" {
		t.Fatalf("rehomed = %+v", reb.Rehomed)
	}
	if len(reb.Restored) != 1 || reb.Restored[0] != "nda-infot" {
		t.Fatalf("restored = %+v", reb.Restored)
	}
	if r.orc.ShedCount() != 0 || len(r.orc.Failed()) != 0 {
		t.Errorf("outstanding: sheds=%d failed=%v", r.orc.ShedCount(), r.orc.Failed())
	}
	if modes.Current() != "normal" {
		t.Errorf("mode = %q, want normal after relax", modes.Current())
	}
	// Everyone back home and running.
	if r.sys.Placement["da-brake"] != "ecuA" || r.sys.Placement["nda-infot"] != "ecuB" {
		t.Errorf("placements: %v", r.sys.Placement)
	}
	if inst := r.p.Node("ecuA").App("da-brake"); inst == nil || inst.State != platform.StateRunning {
		t.Error("da-brake not running back on ecuA")
	}
	if inst := r.p.Node("ecuB").App("nda-infot"); inst == nil || inst.State != platform.StateRunning {
		t.Error("nda-infot not restored on ecuB")
	}
}

// strandDeployment leaves da-brake unplaceable: the survivors are full
// and nothing sheddable is below ASIL D in large enough pieces.
func strandDeployment() []placed {
	return []placed{
		{da("da-brake", model.ASILD, 200), "ecuA"},
		{da("da-steer", model.ASILD, 64), "ecuB"},
		{nda("nda-infot", model.QM, 32), "ecuB"},    // shedding 32 KB is not enough
		{nda("nda-maps", model.ASILD, 100), "ecuC"}, // ASIL D: never shed
	}
}

// An app that fits nowhere is stranded: it stays modeled (and installed,
// stopped) at its failed placement, and the node's repair revives it.
func TestStrandedAppRevivedOnRepair(t *testing.T) {
	r := newRig(t, 3, strandDeployment())
	var stopped []string
	r.k.At(sim.Time(msd(50)), func() { stopped = r.p.Node("ecuA").Crash() })
	r.k.RunUntil(sim.Time(msd(300)))

	rec := r.orc.Recoveries[0]
	if len(rec.Stranded) != 1 || rec.Stranded[0] != "da-brake" || len(rec.Moves) != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if r.orc.StrandedCount() != 1 {
		t.Errorf("StrandedCount = %d", r.orc.StrandedCount())
	}
	// Still modeled at the failed ECU, still installed there (stopped).
	if r.sys.Placement["da-brake"] != "ecuA" {
		t.Errorf("placement = %v", r.sys.Placement["da-brake"])
	}
	inst := r.p.Node("ecuA").App("da-brake")
	if inst == nil || inst.State == platform.StateRunning {
		t.Fatalf("stranded app should be installed and stopped: %+v", inst)
	}

	r.k.At(sim.Time(msd(300)), func() { r.p.Node("ecuA").Restore(stopped) })
	r.k.RunUntil(sim.Time(msd(500)))

	if r.orc.StrandedCount() != 0 {
		t.Errorf("StrandedCount after repair = %d", r.orc.StrandedCount())
	}
	if len(r.orc.Rebalances) != 1 || len(r.orc.Rebalances[0].Revived) != 1 {
		t.Fatalf("rebalances = %+v", r.orc.Rebalances)
	}
	if inst := r.p.Node("ecuA").App("da-brake"); inst == nil || inst.State != platform.StateRunning {
		t.Error("da-brake not revived on repair")
	}
}

// A physical install failure (model/platform drift: ghost apps occupy
// node memory the model does not know about) rolls the whole recovery
// back: the model is byte-identical to its pre-recovery state and the
// failed node keeps its app for the eventual repair.
func TestPhysicalFailureRollsBack(t *testing.T) {
	r := newRig(t, 4, standardDeployment())
	// Ghost apps: physically installed, invisible to the model.
	for _, ecu := range []string{"ecuB", "ecuC"} {
		inst, err := r.p.Node(ecu).Install(nda("ghost-"+ecu, model.QM, 150), platform.Behavior{})
		if err != nil {
			t.Fatalf("ghost install: %v", err)
		}
		if err := inst.Start(); err != nil {
			t.Fatalf("ghost start: %v", err)
		}
	}
	before := marshalModel(t, r.sys)

	var stopped []string
	r.k.At(sim.Time(msd(50)), func() { stopped = r.p.Node("ecuA").Crash() })
	r.k.RunUntil(sim.Time(msd(300)))
	_ = stopped

	if len(r.orc.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v", r.orc.Recoveries)
	}
	rec := r.orc.Recoveries[0]
	if !rec.RolledBack {
		t.Fatalf("recovery not rolled back: %+v", rec)
	}
	if len(rec.Moves)+len(rec.Sheds)+len(rec.Stranded) != 0 {
		t.Errorf("rolled-back recovery kept records: %+v", rec)
	}
	if after := marshalModel(t, r.sys); after != before {
		t.Errorf("model changed across rollback:\n--- before\n%s\n--- after\n%s", before, after)
	}
	// The journal put da-brake back on the failed node (installed).
	if r.p.Node("ecuA").App("da-brake") == nil {
		t.Error("da-brake missing from the failed node after rollback")
	}
	if r.p.Node("ecuB").App("da-brake") != nil {
		t.Error("da-brake left behind on ecuB after rollback")
	}
}

// A whole-node alive-supervision outage (every supervised app silent in
// the same window) declares the ECU failed; a single silent app does
// not.
func TestAliveViolationsDeclareNodeFailure(t *testing.T) {
	run := func(hangNode bool) *rig {
		r := newRig(t, 5, []placed{
			{da("da-steer", model.ASILD, 64), "ecuB"},
			{nda("nda-maps", model.QM, 32), "ecuC"},
			{nda("nda-radio", model.QM, 32), "ecuC"},
		})
		sup := newAliveSupervision(r, "ecuC", msd(20))
		r.orc.AttachAlive("ecuC", sup.s)
		if hangNode {
			r.k.At(sim.Time(msd(100)), func() { sup.silenceAll() })
		} else {
			r.k.At(sim.Time(msd(100)), func() { sup.silence("nda-maps") })
		}
		r.k.RunUntil(sim.Time(msd(250)))
		return r
	}
	r := run(true)
	if got := r.orc.Failed(); len(got) != 1 || got[0] != "ecuC" {
		t.Fatalf("whole-node silence: failed = %v, want [ecuC]", got)
	}
	r = run(false)
	if got := r.orc.Failed(); len(got) != 0 {
		t.Fatalf("single-app silence must not fail the node: %v", got)
	}
}

// aliveRig drives an AliveSupervision with per-app report tickers that
// can be silenced individually.
type aliveRig struct {
	s      *monitor.AliveSupervision
	apps   []string
	silent map[string]bool
}

func newAliveSupervision(r *rig, ecu string, window sim.Duration) *aliveRig {
	node := r.p.Node(ecu)
	a := &aliveRig{s: monitor.NewAliveSupervision(node, window), silent: map[string]bool{}}
	for _, app := range node.Apps() {
		if err := a.s.Supervise(app, 1, 100); err != nil {
			panic(err)
		}
		a.apps = append(a.apps, app)
		app := app
		r.k.Every(r.k.Now().Add(msd(5)), msd(5), func() {
			if !a.silent[app] {
				a.s.Alive(app)
			}
		})
	}
	return a
}

func (a *aliveRig) silence(app string) { a.silent[app] = true }
func (a *aliveRig) silenceAll() {
	for _, app := range a.apps {
		a.silent[app] = true
	}
}

// Determinism: two identical runs of the full failure/repair lifecycle
// produce byte-identical recovery records; an observed run changes
// nothing either.
func TestRecoveryDeterministicAndObservationNeutral(t *testing.T) {
	run := func(observe bool) string {
		r := newRig(t, 6, shedDeployment())
		if observe {
			ob := obs.New(r.k)
			r.orc.SetObs(ob)
		}
		var stopped []string
		r.k.At(sim.Time(msd(50)), func() { stopped = r.p.Node("ecuA").Crash() })
		r.k.At(sim.Time(msd(400)), func() { r.p.Node("ecuA").Restore(stopped) })
		r.k.RunUntil(sim.Time(msd(700)))
		return renderRecords(r.orc)
	}
	a, b, c := run(false), run(false), run(true)
	if a != b {
		t.Errorf("two identical runs diverged:\n--- a\n%s\n--- b\n%s", a, b)
	}
	if a != c {
		t.Errorf("observation changed the recovery:\n--- plain\n%s\n--- observed\n%s", a, c)
	}
}

// renderRecords serializes every public record with its virtual
// timestamps — the byte-identity oracle for determinism tests.
func renderRecords(o *Orchestrator) string {
	var b strings.Builder
	for _, rec := range o.Recoveries {
		fmt.Fprintf(&b, "recovery ecu=%s reason=%q detected=%v planned=%v steady=%v rolledback=%v aborted=%v\n",
			rec.ECU, rec.Reason, rec.DetectedAt, rec.PlannedAt, rec.SteadyAt, rec.RolledBack, rec.Aborted)
		for _, m := range rec.Moves {
			fmt.Fprintf(&b, "  move %s %s->%s\n", m.App, m.From, m.To)
		}
		for _, sh := range rec.Sheds {
			fmt.Fprintf(&b, "  shed %s on %s restored=%v\n", sh.App, sh.ECU, sh.Restored)
		}
		for _, st := range rec.Stranded {
			fmt.Fprintf(&b, "  stranded %s\n", st)
		}
	}
	for _, reb := range o.Rebalances {
		fmt.Fprintf(&b, "rebalance ecu=%s at=%v revived=%v placed=%v rehomed=%v restored=%v\n",
			reb.ECU, reb.At, reb.Revived, reb.Placed, reb.Rehomed, reb.Restored)
	}
	for _, s := range o.Signals {
		fmt.Fprintf(&b, "signal %v %s %s %q\n", s.At, s.ECU, s.Source, s.Detail)
	}
	return b.String()
}

func marshalModel(t *testing.T, sys *model.System) string {
	t.Helper()
	b, err := model.MarshalJSONSystem(sys)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}
