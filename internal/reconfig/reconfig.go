// Package reconfig closes the uncertainty-management loop the paper's
// Section 5 leaves open: failure *detection* (runtime monitoring,
// Section 3.4) and failure *mitigation* (dynamic reconfiguration,
// Section 3.3) exist as separate mechanisms; this package connects them
// into a self-healing orchestrator. It subscribes to the platform's
// failure signals — its own ECU-silence supervision over completion
// streams, monitor Detection uplinks, alive-supervision violations, and
// explicit notifications — and answers each declared ECU failure with a
// transactional recovery plan:
//
//  1. snapshot the admission controller's system model,
//  2. re-place every application lost with the ECU onto surviving ECUs
//     through the same compositional admission test a fresh install
//     faces (deterministic apps first, highest criticality first),
//  3. when capacity is insufficient, shed non-deterministic apps of
//     strictly lower criticality from the target (lowest ASIL first)
//     and escalate the degradation-mode cascade,
//  4. migrate the moved apps' SOA endpoints and transfer their runtime
//     supervision (monitor watches, alive bounds) to the new node,
//  5. on any physical failure, roll the model back to the snapshot and
//     undo the partial installs — the vehicle is never left half-moved.
//
// Apps that fit nowhere are recorded as stranded and stay modeled at
// their failed placement, so a later repair revives them. When a failed
// ECU returns (reboot, repair), the orchestrator re-balances: moved
// apps are optionally re-homed, stranded apps are retried, shed apps
// are restored, and the mode cascade is relaxed once the fleet is
// whole again.
//
// Everything runs inside the simulation kernel — no wall clock, no
// goroutines — so recovery timelines are bit-reproducible per seed, and
// every phase (detect → plan → migrate → steady) is observable through
// obs counters, histograms and trace spans without perturbing results.
package reconfig

import (
	"fmt"
	"sort"

	"dynaplat/internal/admission"
	"dynaplat/internal/model"
	"dynaplat/internal/obs"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/monitor"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
)

// Config tunes detection and recovery.
type Config struct {
	// CheckPeriod is the supervision tick: silence checks and repair
	// polling run at this cadence.
	CheckPeriod sim.Duration
	// SilenceThreshold is the minimum completion silence that declares a
	// watched ECU failed. Per ECU the effective threshold is
	// max(SilenceThreshold, 2·maxDAPeriod+CheckPeriod) so slow periodic
	// apps are not misread as dead.
	SilenceThreshold sim.Duration
	// ReplanDelay models the planning/distribution cost between failure
	// declaration and the recovery transaction.
	ReplanDelay sim.Duration
	// SettleTimeout bounds the wait for the first completions of moved
	// deterministic apps before a recovery is forced steady.
	SettleTimeout sim.Duration
	// Rehome moves recovered apps back to their original ECU when it
	// returns (false leaves them where the recovery placed them).
	Rehome bool
}

// DefaultConfig returns the standard tuning: 1 ms ticks, 20 ms silence
// floor, 2 ms replanning, 500 ms settle guard, re-homing enabled.
func DefaultConfig() Config {
	return Config{
		CheckPeriod:      sim.Millisecond,
		SilenceThreshold: 20 * sim.Millisecond,
		ReplanDelay:      2 * sim.Millisecond,
		SettleTimeout:    500 * sim.Millisecond,
		Rehome:           true,
	}
}

// Move records one application relocation.
type Move struct {
	App      string
	From, To string
	Kind     model.AppKind
	ASIL     model.ASIL
}

// Shed records one non-deterministic app stopped to free capacity for a
// higher-criticality placement. The private spec/behavior capture lets
// a re-balance restore it.
type Shed struct {
	App      string
	ECU      string
	ASIL     model.ASIL
	Restored bool

	spec     model.App
	ifaces   []model.Interface
	behavior platform.Behavior
	// alive-supervision bounds held before the shed, restored with it.
	aliveSup           bool
	aliveMin, aliveMax int
}

// Recovery is the record of one detect→plan→migrate→steady transaction.
type Recovery struct {
	ECU    string
	Reason string

	DetectedAt sim.Time
	PlannedAt  sim.Time
	SteadyAt   sim.Time
	// Steady latches once every moved deterministic app has completed
	// its first activation on its new ECU (or the settle guard fired).
	Steady bool
	// Aborted marks a failure repaired before the replan delay elapsed:
	// no recovery was needed.
	Aborted bool
	// RolledBack marks a recovery whose physical execution failed: the
	// model and the nodes were restored to the pre-recovery state.
	RolledBack bool

	Moves    []Move
	Sheds    []*Shed
	Stranded []string

	pending   map[string]string // moved DA -> destination awaiting first completion
	settleRef sim.EventRef
}

// Duration returns detect→steady (zero until steady).
func (r *Recovery) Duration() sim.Duration {
	if !r.Steady {
		return 0
	}
	return r.SteadyAt.Sub(r.DetectedAt)
}

// Rebalance records the reaction to one repaired ECU.
type Rebalance struct {
	ECU string
	At  sim.Time
	// Revived lists stranded apps the node's own restart brought back.
	Revived []string
	// Placed lists stranded apps from other, still-failed ECUs that fit
	// onto the freed capacity.
	Placed []Move
	// Rehomed lists apps moved back to the repaired ECU.
	Rehomed []Move
	// Restored lists shed apps reinstalled.
	Restored []string
}

// Signal is one failure indication received from an attached source.
type Signal struct {
	At     sim.Time
	ECU    string
	Source string // "silence", "monitor", "alive", "notify"
	Detail string
}

// watchState tracks one supervised ECU's completion stream.
type watchState struct {
	lastSeen sim.Time
}

// failureState tracks one declared-failed ECU.
type failureState struct {
	declaredAt sim.Time
	rec        *Recovery
	planRef    sim.EventRef
	executed   bool
	// sawDown latches once the node was actually observed unhealthy;
	// repair polling waits for the down→up transition so an externally
	// notified failure on a healthy node is not instantly "repaired".
	sawDown bool
}

// aliveState correlates one supervisor's violations within a window.
type aliveState struct {
	s     *monitor.AliveSupervision
	at    sim.Time
	count int
}

type strandedApp struct {
	App  string
	Home string
}

// Orchestrator is the vehicle-level self-healing controller.
type Orchestrator struct {
	k    *sim.Kernel
	p    *platform.Platform
	ctrl *admission.Controller
	cfg  Config
	mw   *soa.Middleware

	modes  *platform.ModeManager
	mons   map[string]*monitor.Monitor
	alives map[string]*aliveState

	watched []string // sorted supervision order
	watch   map[string]*watchState
	hooked  map[string]bool
	ticker  *sim.Ticker

	failedNames []string // sorted declared-failed ECUs
	failed      map[string]*failureState

	sheds       []*Shed
	stranded    []strandedApp
	escalations int

	obs *obs.Obs

	// Recoveries, Rebalances and Signals are the orchestrator's public
	// records, in occurrence order.
	Recoveries []*Recovery
	Rebalances []*Rebalance
	Signals    []Signal
}

// New creates an orchestrator over the platform and the admission
// controller that owns the vehicle's system model. Zero Config fields
// take their defaults; the platform's middleware (possibly nil) is used
// for endpoint migration.
func New(p *platform.Platform, ctrl *admission.Controller, cfg Config) *Orchestrator {
	def := DefaultConfig()
	if cfg.CheckPeriod <= 0 {
		cfg.CheckPeriod = def.CheckPeriod
	}
	if cfg.SilenceThreshold <= 0 {
		cfg.SilenceThreshold = def.SilenceThreshold
	}
	if cfg.ReplanDelay < 0 {
		cfg.ReplanDelay = def.ReplanDelay
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = def.SettleTimeout
	}
	return &Orchestrator{
		k:      p.Kernel(),
		p:      p,
		ctrl:   ctrl,
		cfg:    cfg,
		mw:     p.Middleware(),
		mons:   map[string]*monitor.Monitor{},
		alives: map[string]*aliveState{},
		watch:  map[string]*watchState{},
		hooked: map[string]bool{},
		failed: map[string]*failureState{},
	}
}

// SetObs installs the observability plane (nil keeps the orchestrator
// silent). Observation never changes decisions or timing.
func (o *Orchestrator) SetObs(ob *obs.Obs) { o.obs = ob }

// AttachModes connects the degradation-mode manager: recoveries that
// shed or strand apps escalate one mode; a re-balance that makes the
// fleet whole again relaxes every escalation.
func (o *Orchestrator) AttachModes(m *platform.ModeManager) { o.modes = m }

// AttachMonitor chains onto a node monitor's uplink: heartbeat-lost
// detections declare the ECU failed, every detection is recorded as a
// signal. The previously installed uplink keeps firing.
func (o *Orchestrator) AttachMonitor(ecu string, m *monitor.Monitor) {
	o.mons[ecu] = m
	prev := m.Uplink()
	m.SetUplink(func(d monitor.Detection) {
		if prev != nil {
			prev(d)
		}
		o.onDetection(ecu, d)
	})
}

// AttachAlive chains onto an alive supervisor's violation stream: when
// every supervised app on the node violates in the same check window,
// the node — not the apps — is silent, and the ECU is declared failed.
func (o *Orchestrator) AttachAlive(ecu string, s *monitor.AliveSupervision) {
	as := &aliveState{s: s}
	o.alives[ecu] = as
	prev := s.OnViolation
	s.OnViolation = func(v monitor.AliveViolation) {
		if prev != nil {
			prev(v)
		}
		o.onAliveViolation(ecu, as, v)
	}
}

// Watch registers ECUs for completion-silence supervision. Every
// watched ECU must have a platform node.
func (o *Orchestrator) Watch(ecus ...string) error {
	for _, ecu := range ecus {
		if o.p.Node(ecu) == nil {
			return fmt.Errorf("reconfig: no node on ECU %s", ecu)
		}
		if _, dup := o.watch[ecu]; dup {
			continue
		}
		o.watch[ecu] = &watchState{lastSeen: o.k.Now()}
		o.watched = append(o.watched, ecu)
		o.hookNode(ecu)
	}
	sort.Strings(o.watched)
	return nil
}

// Start arms the supervision tick. Start is idempotent.
func (o *Orchestrator) Start() {
	if o.ticker != nil {
		return
	}
	o.ticker = o.k.Every(o.k.Now().Add(o.cfg.CheckPeriod), o.cfg.CheckPeriod, o.tick)
}

// Stop halts supervision (pending recoveries still settle). Idempotent;
// Start re-arms.
func (o *Orchestrator) Stop() {
	if o.ticker == nil {
		return
	}
	o.ticker.Stop()
	o.ticker = nil
}

// Failed returns the sorted names of currently declared-failed ECUs.
func (o *Orchestrator) Failed() []string {
	return append([]string(nil), o.failedNames...)
}

// ShedCount returns how many sheds are outstanding (not yet restored).
func (o *Orchestrator) ShedCount() int {
	n := 0
	for _, sh := range o.sheds {
		if !sh.Restored {
			n++
		}
	}
	return n
}

// StrandedCount returns how many apps currently fit nowhere.
func (o *Orchestrator) StrandedCount() int { return len(o.stranded) }

// NotifyFailure declares an ECU failed from an external source (a
// gateway loss report, a test). Unknown ECUs and duplicates are no-ops.
func (o *Orchestrator) NotifyFailure(ecu, reason string) {
	if o.p.Node(ecu) == nil {
		return
	}
	o.declareFailure(ecu, "notify", reason)
}

// hookNode installs the orchestrator's completion listener on a node
// exactly once (silence supervision + steady detection share it).
func (o *Orchestrator) hookNode(ecu string) {
	if o.hooked[ecu] {
		return
	}
	o.hooked[ecu] = true
	node := o.p.Node(ecu)
	node.OnComplete(func(c platform.Completion) { o.onComplete(ecu, c) })
}

// onComplete feeds silence supervision and steady detection.
func (o *Orchestrator) onComplete(ecu string, c platform.Completion) {
	if w := o.watch[ecu]; w != nil {
		w.lastSeen = o.k.Now()
	}
	for _, rec := range o.Recoveries {
		if rec.Steady || len(rec.pending) == 0 {
			continue
		}
		if dst, ok := rec.pending[c.App]; ok && dst == ecu {
			delete(rec.pending, c.App)
			if len(rec.pending) == 0 {
				o.steady(rec, "first completions observed")
			}
		}
	}
}

// onDetection handles a chained monitor uplink.
func (o *Orchestrator) onDetection(ecu string, d monitor.Detection) {
	o.signal(ecu, "monitor", fmt.Sprintf("%v: %s", d.Kind, d.App))
	if d.Kind == platform.FaultHeartbeatLost {
		o.declareFailure(ecu, "monitor", fmt.Sprintf("heartbeat lost: %s", d.App))
	}
}

// onAliveViolation correlates violations within one check instant: all
// supervised apps silent together means the node is gone.
func (o *Orchestrator) onAliveViolation(ecu string, as *aliveState, v monitor.AliveViolation) {
	o.signal(ecu, "alive", fmt.Sprintf("%s count %d outside [%d,%d]", v.App, v.Count, v.Min, v.Max))
	if v.At != as.at {
		as.at, as.count = v.At, 0
	}
	as.count++
	if n := len(as.s.Supervised()); n > 0 && as.count >= n {
		o.declareFailure(ecu, "alive", fmt.Sprintf("all %d supervised apps silent", n))
	}
}

// tick polls repairs and checks completion silence, in sorted ECU order.
func (o *Orchestrator) tick() {
	// Repair polling first, so a repaired ECU is re-balanced before the
	// silence check could re-flag it. Repair means the down→up health
	// transition was observed, not merely "the node looks up".
	for _, ecu := range append([]string(nil), o.failedNames...) {
		fs := o.failed[ecu]
		if fs == nil {
			continue
		}
		node := o.p.Node(ecu)
		if node == nil {
			continue
		}
		switch {
		case node.Health() != platform.HealthUp:
			fs.sawDown = true
		case fs.sawDown:
			o.onRepair(ecu, fs)
		}
	}
	now := o.k.Now()
	for _, ecu := range o.watched {
		if _, isFailed := o.failed[ecu]; isFailed {
			continue
		}
		thr := o.silenceThreshold(ecu)
		if thr <= 0 {
			continue // nothing periodic to hear from
		}
		if node := o.p.Node(ecu); node == nil {
			continue
		}
		if silent := now.Sub(o.watch[ecu].lastSeen); silent >= thr {
			o.declareFailure(ecu, "silence", fmt.Sprintf("no completions for %v", silent))
		}
	}
}

// silenceThreshold derives the per-ECU silence bound from the modeled
// deterministic apps placed there (0 when none: NDAs emit no periodic
// completions, so silence proves nothing).
func (o *Orchestrator) silenceThreshold(ecu string) sim.Duration {
	var maxPeriod sim.Duration
	for _, a := range o.ctrl.System().AppsOn(ecu) {
		if a.Kind == model.Deterministic && a.Period > maxPeriod {
			maxPeriod = a.Period
		}
	}
	if maxPeriod == 0 {
		return 0
	}
	thr := 2*maxPeriod + o.cfg.CheckPeriod
	if thr < o.cfg.SilenceThreshold {
		thr = o.cfg.SilenceThreshold
	}
	return thr
}

// declareFailure latches an ECU failure and schedules its recovery.
func (o *Orchestrator) declareFailure(ecu, source, detail string) {
	if _, dup := o.failed[ecu]; dup {
		return
	}
	now := o.k.Now()
	o.signal(ecu, source, detail)
	rec := &Recovery{ECU: ecu, Reason: source + ": " + detail, DetectedAt: now}
	fs := &failureState{declaredAt: now, rec: rec}
	if node := o.p.Node(ecu); node != nil && node.Health() != platform.HealthUp {
		fs.sawDown = true
	}
	o.failed[ecu] = fs
	o.failedNames = append(o.failedNames, ecu)
	sort.Strings(o.failedNames)
	o.Recoveries = append(o.Recoveries, rec)
	o.count("reconfig_failures", ecu)
	o.instant("failure-declared", ecu, rec.Reason)
	o.k.Trace("reconfig", "ECU %s declared failed (%s)", ecu, rec.Reason)
	fs.planRef = o.k.After(o.cfg.ReplanDelay, func() { o.recover(fs) })
}

// steady finishes a recovery and emits its detect→steady span.
func (o *Orchestrator) steady(rec *Recovery, how string) {
	if rec.Steady {
		return
	}
	rec.Steady = true
	rec.SteadyAt = o.k.Now()
	rec.settleRef.Cancel()
	rec.pending = nil
	d := rec.SteadyAt.Sub(rec.DetectedAt)
	o.count("reconfig_recoveries", rec.ECU)
	if o.obs != nil {
		o.obs.Metrics().Histogram("reconfig_detect_to_steady", o.labels(rec.ECU)).Observe(d)
		o.obs.Tracer().Complete("reconfig", "recover "+rec.ECU, "reconfig", rec.DetectedAt, d,
			fmt.Sprintf("moves=%d sheds=%d stranded=%d (%s)",
				len(rec.Moves), len(rec.Sheds), len(rec.Stranded), how))
	}
	o.k.Trace("reconfig", "ECU %s recovery steady after %v (%s)", rec.ECU, d, how)
}

func (o *Orchestrator) signal(ecu, source, detail string) {
	o.Signals = append(o.Signals, Signal{At: o.k.Now(), ECU: ecu, Source: source, Detail: detail})
	o.count("reconfig_signals", ecu)
}

func (o *Orchestrator) labels(ecu string) obs.Labels {
	return obs.Labels{Layer: "reconfig", ECU: ecu}
}

func (o *Orchestrator) count(name, ecu string) {
	if o.obs == nil {
		return
	}
	o.obs.Metrics().Counter(name, o.labels(ecu)).Inc()
}

func (o *Orchestrator) instant(name, ecu, detail string) {
	if o.obs == nil {
		return
	}
	o.obs.Tracer().Instant("reconfig", name, "reconfig", ecu+": "+detail)
}
