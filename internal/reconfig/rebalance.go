package reconfig

import (
	"dynaplat/internal/admission"
	"dynaplat/internal/platform"
)

// onRepair reacts to a failed ECU's observed down→up transition: clear
// the failure latch, reset silence supervision, and — unless the
// failure never got as far as a recovery — re-balance the vehicle back
// toward its nominal deployment.
func (o *Orchestrator) onRepair(ecu string, fs *failureState) {
	delete(o.failed, ecu)
	kept := o.failedNames[:0]
	for _, n := range o.failedNames {
		if n != ecu {
			kept = append(kept, n)
		}
	}
	o.failedNames = kept
	if w := o.watch[ecu]; w != nil {
		w.lastSeen = o.k.Now()
	}
	if !fs.executed {
		// Repaired inside the replan delay: cancel the pending recovery.
		fs.planRef.Cancel()
		fs.rec.Aborted = true
		o.count("reconfig_aborted", ecu)
		o.instant("abort", ecu, "repaired before replan")
		o.k.Trace("reconfig", "ECU %s repaired before replan; recovery aborted", ecu)
		return
	}
	o.rebalance(ecu)
}

// rebalance reacts to one repaired ECU, in four steps:
//
//  1. stranded apps homed on it were revived by the node's own restart;
//  2. apps recovered off it are re-homed (when Config.Rehome);
//  3. stranded apps from other, still-failed ECUs are retried against
//     the freed capacity (plain admission only — no fresh sheds);
//  4. outstanding sheds are restored where they came from.
//
// When no failure, shed or stranded app remains, every mode escalation
// the orchestrator caused is relaxed.
func (o *Orchestrator) rebalance(ecu string) {
	reb := &Rebalance{ECU: ecu, At: o.k.Now()}
	o.Rebalances = append(o.Rebalances, reb)
	o.count("reconfig_rebalances", ecu)
	o.instant("repair", ecu, "re-balancing")
	o.k.Trace("reconfig", "ECU %s repaired; re-balancing", ecu)

	// 1. Stranded apps homed here came back with the node.
	keptStranded := o.stranded[:0]
	for _, st := range o.stranded {
		if st.Home != ecu {
			keptStranded = append(keptStranded, st)
			continue
		}
		reb.Revived = append(reb.Revived, st.App)
		o.count("reconfig_revived", ecu)
		if node := o.p.Node(ecu); node != nil {
			if inst := node.App(st.App); inst != nil && inst.State != platform.StateRunning {
				_ = inst.Start()
			}
		}
	}
	o.stranded = keptStranded

	// 2. Re-home the apps recovered off this ECU.
	if o.cfg.Rehome {
		for _, rec := range o.Recoveries {
			if rec.ECU != ecu || rec.Aborted || rec.RolledBack {
				continue
			}
			for _, mv := range rec.Moves {
				if o.ctrl.System().Placement[mv.App] != mv.To {
					continue // moved again since; leave it be
				}
				if done, ok := o.tryMove(mv.App, mv.To, ecu); ok {
					reb.Rehomed = append(reb.Rehomed, done)
					o.count("reconfig_rehomed", ecu)
					o.instant("rehome", ecu, mv.App)
				}
			}
		}
	}

	// 3. Retry stranded apps from other, still-failed ECUs.
	keptStranded = o.stranded[:0]
	for _, st := range o.stranded {
		if done, ok := o.placeStranded(st); ok {
			reb.Placed = append(reb.Placed, done)
			o.count("reconfig_placed", done.To)
			o.instant("place-stranded", done.To, st.App)
			continue
		}
		keptStranded = append(keptStranded, st)
	}
	o.stranded = keptStranded

	// 4. Restore outstanding sheds.
	for _, sh := range o.sheds {
		if sh.Restored {
			continue
		}
		if o.restoreShed(sh) {
			reb.Restored = append(reb.Restored, sh.App)
			o.count("reconfig_restored", sh.ECU)
			o.instant("restore", sh.ECU, sh.App)
		}
	}

	// Relax the cascade once the fleet is whole again.
	if o.modes != nil && len(o.failed) == 0 && o.StrandedCount() == 0 && o.ShedCount() == 0 {
		for o.escalations > 0 {
			o.modes.Relax("reconfig: capacity restored")
			o.escalations--
		}
	}
}

// tryMove transactionally relocates one app from→to: model admission
// first, then the physical move, reverting the model on any failure.
func (o *Orchestrator) tryMove(app, from, to string) (Move, bool) {
	sys := o.ctrl.System()
	a := sys.App(app)
	if a == nil || sys.Placement[app] != from {
		return Move{}, false
	}
	spec := *a
	spec.Candidates = append([]string(nil), a.Candidates...)
	ifaces := o.ifaceCopies(app)
	if err := o.ctrl.Remove(app); err != nil {
		return Move{}, false
	}
	req := admission.Request{App: spec, ECU: to, Interfaces: ifaces}
	if d := o.ctrl.Check(req); !d.Admitted {
		o.readmitAt(spec, from, ifaces)
		return Move{}, false
	}
	if _, err := o.ctrl.Admit(req); err != nil {
		o.readmitAt(spec, from, ifaces)
		return Move{}, false
	}
	var journal []func()
	if err := o.execInstall(spec, from, to, &journal); err != nil {
		for i := len(journal) - 1; i >= 0; i-- {
			journal[i]()
		}
		_ = o.ctrl.Remove(app)
		o.readmitAt(spec, from, ifaces)
		return Move{}, false
	}
	o.migrateEndpoint(app, to)
	o.moveSupervision(app, from, to)
	o.k.Trace("reconfig", "moved %s: %s -> %s", app, from, to)
	return Move{App: app, From: from, To: to, Kind: spec.Kind, ASIL: spec.ASIL}, true
}

// placeStranded retries one stranded app against the current capacity
// (plain admission — re-balancing never sheds).
func (o *Orchestrator) placeStranded(st strandedApp) (Move, bool) {
	sys := o.ctrl.System()
	a := sys.App(st.App)
	if a == nil || sys.Placement[st.App] != st.Home {
		return Move{}, false
	}
	spec := *a
	spec.Candidates = append([]string(nil), a.Candidates...)
	ifaces := o.ifaceCopies(st.App)
	if err := o.ctrl.Remove(st.App); err != nil {
		return Move{}, false
	}
	dst, _ := o.place(spec, ifaces, nil, false)
	if dst == "" {
		o.readmitAt(spec, st.Home, ifaces)
		return Move{}, false
	}
	var journal []func()
	if err := o.execInstall(spec, st.Home, dst, &journal); err != nil {
		for i := len(journal) - 1; i >= 0; i-- {
			journal[i]()
		}
		_ = o.ctrl.Remove(st.App)
		o.readmitAt(spec, st.Home, ifaces)
		return Move{}, false
	}
	o.migrateEndpoint(st.App, dst)
	o.moveSupervision(st.App, st.Home, dst)
	return Move{App: st.App, From: st.Home, To: dst, Kind: spec.Kind, ASIL: spec.ASIL}, true
}

// restoreShed re-admits and reinstalls one shed app at its original
// ECU, restoring its alive supervision.
func (o *Orchestrator) restoreShed(sh *Shed) bool {
	req := admission.Request{App: sh.spec, ECU: sh.ECU, Interfaces: sh.ifaces}
	if d := o.ctrl.Check(req); !d.Admitted {
		return false
	}
	if _, err := o.ctrl.Admit(req); err != nil {
		return false
	}
	node := o.p.Node(sh.ECU)
	if node != nil && node.App(sh.App) == nil {
		inst, err := node.Install(sh.spec, sh.behavior)
		if err != nil {
			_ = o.ctrl.Remove(sh.App)
			return false
		}
		_ = inst.Start()
		if sh.aliveSup {
			if as := o.alives[sh.ECU]; as != nil {
				_ = as.s.Supervise(sh.App, sh.aliveMin, sh.aliveMax)
			}
		}
	}
	sh.Restored = true
	o.k.Trace("reconfig", "restored shed app %s on %s", sh.App, sh.ECU)
	return true
}
