package reconfig

import (
	"strings"
	"testing"

	"dynaplat/internal/admission"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

// Mesh↔orchestrator integration: a tripped circuit breaker is a failure
// *detector*. Wired through Mesh.SetFailureNotifier(orc.NotifyFailure),
// one trip must (1) declare the instance's ECU failed, (2) re-place the
// provider app through admission, (3) migrate its SOA endpoint to the
// new home — so the breaker's half-open probe lands on the re-placed
// instance and closes the edge without any client-side involvement.

// lossyNet drops every frame addressed to a station in dropDst.
type lossyNet struct {
	inner   network.Network
	dropDst map[string]bool
}

func (l *lossyNet) Name() string                               { return l.inner.Name() }
func (l *lossyNet) Attach(station string, rx network.Receiver) { l.inner.Attach(station, rx) }
func (l *lossyNet) Send(msg network.Message) {
	if l.dropDst[msg.Dst] {
		return
	}
	l.inner.Send(msg)
}

func TestBreakerTripDrivesReplacementAndProbeFollows(t *testing.T) {
	k := sim.NewKernel(31)
	ln := &lossyNet{
		inner:   tsn.New(k, tsn.DefaultConfig("backbone")),
		dropDst: map[string]bool{},
	}
	mw := soa.New(k, nil)
	mw.AddNetwork(ln, 1400)
	p := platform.New(k, mw)

	sys := model.NewSystem("mesh-vehicle")
	for _, name := range []string{"ecuA", "ecuB", "ecuC"} {
		e := testECU(name)
		sys.ECUs = append(sys.ECUs, &e)
		if _, err := p.AddNode(e, platform.ModeIsolated, 250*sim.Microsecond); err != nil {
			t.Fatalf("AddNode(%s): %v", name, err)
		}
	}
	app := da("prov-a", model.ASILD, 64)
	sys.Apps = append(sys.Apps, &app)
	sys.Placement[app.Name] = "ecuA"
	inst, err := p.Node("ecuA").Install(app, platform.Behavior{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}

	ctrl := admission.NewController(sys)
	orc := New(p, ctrl, Config{
		CheckPeriod: sim.Millisecond,
		// The silence supervisor must stay out of the picture: the mesh
		// breaker is the only failure detector in this test.
		SilenceThreshold: 10 * sim.Second,
		ReplanDelay:      msd(2),
		SettleTimeout:    msd(200),
		Rehome:           true,
	})
	if err := orc.Watch("ecuA", "ecuB", "ecuC"); err != nil {
		t.Fatal(err)
	}
	orc.Start()

	bc := soa.BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: 30 * sim.Millisecond}
	ms := soa.NewMesh(mw, soa.MeshConfig{Breaker: &bc})
	ms.SetFailureNotifier(orc.NotifyFailure)
	var servedAt []string
	srv := mw.EndpointOf("prov-a")
	if srv == nil {
		srv = mw.Endpoint("prov-a", "ecuA")
	}
	ms.Offer(srv, "svc.brake", soa.OfferOpts{Network: "backbone",
		Handler: func(any) (int, any, sim.Duration) {
			servedAt = append(servedAt, srv.ECU())
			return 16, "ok", 200 * sim.Microsecond
		}})
	cli := mw.Endpoint("hu-main", "ecuC")

	pol := soa.RetryPolicy{MaxAttempts: 3, Backoff: 2 * sim.Millisecond, Multiplier: 2}
	opts := soa.MeshCallOpts{Criticality: soa.CritASILD, ReqBytes: 32,
		PerTry: 2 * sim.Millisecond, Retry: pol}

	// The ECU dies at 50 ms: the node crashes and its frames stop
	// arriving. Nothing but the mesh knows.
	k.At(sim.Time(msd(50)), func() {
		ln.dropDst["ecuA"] = true
		p.Node("ecuA").Crash()
	})
	// A call at 51 ms burns two per-try timeouts and trips the edge at
	// ~57 ms, which is the NotifyFailure instant.
	k.At(sim.Time(msd(51)), func() {
		_ = ms.Call(cli, "svc.brake", opts, nil, func(soa.FailReason) {})
	})
	// After the 30 ms cool-down the edge is half-open; this call is the
	// probe and must reach the provider at its new home.
	probeServed := false
	k.At(sim.Time(msd(100)), func() {
		_ = ms.Call(cli, "svc.brake", opts, func(soa.Event) { probeServed = true }, nil)
	})
	k.RunUntil(sim.Time(msd(300)))

	if len(orc.Signals) == 0 || orc.Signals[0].Source != "notify" ||
		!strings.Contains(orc.Signals[0].Detail, "mesh-breaker") {
		t.Fatalf("signals = %+v, want a mesh-breaker notify for ecuA", orc.Signals)
	}
	if len(orc.Recoveries) != 1 {
		t.Fatalf("got %d recoveries, want 1: %+v", len(orc.Recoveries), orc.Recoveries)
	}
	rec := orc.Recoveries[0]
	if rec.ECU != "ecuA" || !strings.Contains(rec.Reason, "mesh-breaker") {
		t.Errorf("recovery = %+v, want ecuA declared by the breaker trip", rec)
	}
	if len(rec.Moves) != 1 || rec.Moves[0].App != "prov-a" || rec.Moves[0].To != "ecuB" {
		t.Fatalf("moves = %+v, want prov-a re-placed on ecuB", rec.Moves)
	}
	if !rec.Steady {
		t.Error("recovery never settled")
	}
	if got := srv.ECU(); got != "ecuB" {
		t.Errorf("endpoint home = %s, want ecuB after migration", got)
	}
	if !probeServed {
		t.Fatal("half-open probe was not served at the new home")
	}
	if len(servedAt) != 1 || servedAt[0] != "ecuB" {
		t.Errorf("handler runs = %v, want exactly the probe at ecuB", servedAt)
	}
	if ms.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, want 1", ms.BreakerTrips)
	}
	if !ms.Conserved() {
		t.Error("mesh conservation violated")
	}
}
