package reconfig

import (
	"fmt"
	"sort"

	"dynaplat/internal/admission"
	"dynaplat/internal/model"
	"dynaplat/internal/platform"
)

// plannedMove is one model-level placement decision awaiting physical
// execution.
type plannedMove struct {
	spec   model.App
	ifaces []model.Interface
	to     string
	sheds  []*Shed
}

// recover runs the recovery transaction for one declared-failed ECU.
//
// Phase A (model): every app placed on the failed ECU is removed from
// the system model and re-placed through the admission controller —
// deterministic apps first, highest criticality first — shedding
// lower-criticality NDAs from the target when direct capacity is
// insufficient. Apps that fit nowhere are re-modeled at their failed
// placement and recorded as stranded.
//
// Phase B (physical): sheds are uninstalled, moved apps are uninstalled
// from the failed node and installed + started on their new node, with
// an undo journal. Any physical error rolls the journal back and
// restores the model snapshot: the recovery either fully happens or
// leaves no trace.
//
// Phase C (commit): SOA endpoints migrate, runtime supervision
// transfers, the mode cascade escalates if the recovery degraded the
// vehicle, and the steady detector arms on the moved apps' first
// completions.
func (o *Orchestrator) recover(fs *failureState) {
	rec := fs.rec
	fs.executed = true
	rec.PlannedAt = o.k.Now()
	snap := o.ctrl.Snapshot()
	shedMark, strandedMark := len(o.sheds), len(o.stranded)
	o.instant("plan", rec.ECU, "recovery planning")

	// --- Phase A: model-level planning.
	var plan []plannedMove
	moved := map[string]bool{}
	for _, spec := range o.lostApps(rec.ECU) {
		ifaces := o.ifaceCopies(spec.Name)
		if err := o.ctrl.Remove(spec.Name); err != nil {
			continue
		}
		dst, sheds := o.place(spec, ifaces, moved, true)
		if dst == "" {
			// Stranded: keep the app modeled at its failed placement so
			// a later repair revives it in place.
			o.readmitAt(spec, rec.ECU, ifaces)
			rec.Stranded = append(rec.Stranded, spec.Name)
			o.stranded = append(o.stranded, strandedApp{App: spec.Name, Home: rec.ECU})
			o.count("reconfig_stranded", rec.ECU)
			o.instant("stranded", rec.ECU, spec.Name)
			continue
		}
		moved[spec.Name] = true
		plan = append(plan, plannedMove{spec: spec, ifaces: ifaces, to: dst, sheds: sheds})
		rec.Sheds = append(rec.Sheds, sheds...)
		o.sheds = append(o.sheds, sheds...)
	}
	if o.obs != nil {
		o.obs.Tracer().Complete("reconfig", "plan "+rec.ECU, "reconfig", rec.PlannedAt, 0,
			fmt.Sprintf("moves=%d sheds=%d stranded=%d", len(plan), len(rec.Sheds), len(rec.Stranded)))
	}

	// --- Phase B: physical execution under an undo journal.
	var journal []func()
	for _, pm := range plan {
		for _, sh := range pm.sheds {
			if err := o.execShed(sh, &journal); err != nil {
				o.rollback(rec, snap, journal, shedMark, strandedMark, err)
				return
			}
		}
		if err := o.execInstall(pm.spec, rec.ECU, pm.to, &journal); err != nil {
			o.rollback(rec, snap, journal, shedMark, strandedMark, err)
			return
		}
	}

	// --- Phase C: commit.
	for _, pm := range plan {
		o.commitMove(rec, pm.spec, rec.ECU, pm.to)
	}
	if o.modes != nil && len(rec.Sheds)+len(rec.Stranded) > 0 {
		o.modes.Escalate(fmt.Sprintf("reconfig: ECU %s lost capacity (%d shed, %d stranded)",
			rec.ECU, len(rec.Sheds), len(rec.Stranded)))
		o.escalations++
	}
	if len(rec.pending) == 0 {
		o.steady(rec, "no deterministic moves to settle")
		return
	}
	rec.settleRef = o.k.After(o.cfg.SettleTimeout, func() { o.steady(rec, "settle timeout") })
}

// rollback undoes a partially executed recovery: the journal restores
// the nodes, the snapshot restores the model, and the bookkeeping added
// during planning is discarded.
func (o *Orchestrator) rollback(rec *Recovery, snap admission.Snapshot, journal []func(),
	shedMark, strandedMark int, cause error) {
	for i := len(journal) - 1; i >= 0; i-- {
		journal[i]()
	}
	o.ctrl.Restore(snap)
	o.sheds = o.sheds[:shedMark]
	o.stranded = o.stranded[:strandedMark]
	rec.Moves, rec.Sheds, rec.Stranded = nil, nil, nil
	rec.RolledBack = true
	o.count("reconfig_rollbacks", rec.ECU)
	o.instant("rollback", rec.ECU, cause.Error())
	o.k.Trace("reconfig", "ECU %s recovery rolled back: %v", rec.ECU, cause)
	o.steady(rec, "rolled back")
}

// lostApps captures the specs of every app the model places on the ECU,
// in recovery order: deterministic before non-deterministic, higher
// ASIL first, then by name.
func (o *Orchestrator) lostApps(ecu string) []model.App {
	var lost []model.App
	for _, a := range o.ctrl.System().AppsOn(ecu) {
		spec := *a
		spec.Candidates = append([]string(nil), a.Candidates...)
		lost = append(lost, spec)
	}
	sort.SliceStable(lost, func(i, j int) bool {
		a, b := lost[i], lost[j]
		if a.Kind != b.Kind {
			return a.Kind == model.Deterministic
		}
		if a.ASIL != b.ASIL {
			return a.ASIL > b.ASIL
		}
		return a.Name < b.Name
	})
	return lost
}

// ifaceCopies value-copies an app's modeled interfaces (call before the
// app is removed from the model).
func (o *Orchestrator) ifaceCopies(app string) []model.Interface {
	var out []model.Interface
	for _, ifc := range o.ctrl.System().InterfacesOf(app) {
		out = append(out, *ifc)
	}
	return out
}

// candidateECUs lists the surviving placement candidates for a spec in
// deterministic (sorted) order.
func (o *Orchestrator) candidateECUs(spec model.App) []string {
	var out []string
	for _, ecu := range o.p.Nodes() {
		if _, bad := o.failed[ecu]; bad {
			continue
		}
		node := o.p.Node(ecu)
		if node.Health() != platform.HealthUp {
			continue
		}
		if len(spec.Candidates) > 0 && !containsStr(spec.Candidates, ecu) {
			continue
		}
		out = append(out, ecu)
	}
	return out
}

// place finds a surviving ECU for the spec: first-fit through the plain
// admission test, then — when allowShed is set — a shed trial per
// candidate. On success the app is admitted into the model and the
// (model-level) sheds it required are returned.
func (o *Orchestrator) place(spec model.App, ifaces []model.Interface,
	moved map[string]bool, allowShed bool) (string, []*Shed) {
	cands := o.candidateECUs(spec)
	for _, ecu := range cands {
		req := admission.Request{App: spec, ECU: ecu, Interfaces: ifaces}
		if d := o.ctrl.Check(req); d.Admitted {
			if _, err := o.ctrl.Admit(req); err == nil {
				return ecu, nil
			}
		}
	}
	if !allowShed {
		return "", nil
	}
	for _, ecu := range cands {
		if sheds, ok := o.tryShed(spec, ifaces, ecu, moved); ok {
			return ecu, sheds
		}
	}
	return "", nil
}

// tryShed removes strictly-lower-criticality NDAs from the candidate —
// lowest ASIL first — re-testing admission after each, under a
// sub-snapshot that is restored when even a fully shed ECU cannot host
// the app.
func (o *Orchestrator) tryShed(spec model.App, ifaces []model.Interface,
	ecu string, moved map[string]bool) ([]*Shed, bool) {
	sub := o.ctrl.Snapshot()
	req := admission.Request{App: spec, ECU: ecu, Interfaces: ifaces}
	var planned []*Shed
	for _, v := range o.victims(ecu, spec.ASIL, moved) {
		vifs := o.ifaceCopies(v.Name)
		if err := o.ctrl.Remove(v.Name); err != nil {
			continue
		}
		planned = append(planned, &Shed{App: v.Name, ECU: ecu, ASIL: v.ASIL, spec: v, ifaces: vifs})
		if d := o.ctrl.Check(req); d.Admitted {
			if _, err := o.ctrl.Admit(req); err == nil {
				return planned, true
			}
		}
	}
	o.ctrl.Restore(sub)
	return nil, false
}

// victims captures the sheddable NDAs on an ECU: non-deterministic,
// strictly below the incoming app's ASIL, and not themselves placed by
// the running recovery. Lowest criticality first, then by name.
func (o *Orchestrator) victims(ecu string, below model.ASIL, moved map[string]bool) []model.App {
	var out []model.App
	for _, a := range o.ctrl.System().AppsOn(ecu) {
		if a.Kind != model.NonDeterministic || a.ASIL >= below || moved[a.Name] {
			continue
		}
		out = append(out, *a)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].ASIL != out[j].ASIL {
			return out[i].ASIL < out[j].ASIL
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// readmitAt re-inserts an app into the model at a given placement
// without admission checks — used to keep a stranded app modeled at its
// failed ECU (the model records intent; a repair revives it) and to
// revert a failed re-home attempt.
func (o *Orchestrator) readmitAt(spec model.App, ecu string, ifaces []model.Interface) {
	sys := o.ctrl.System()
	app := spec
	sys.Apps = append(sys.Apps, &app)
	sys.Placement[app.Name] = ecu
	for i := range ifaces {
		ifc := ifaces[i]
		sys.Interfaces = append(sys.Interfaces, &ifc)
	}
}

// execShed physically uninstalls one shed victim, detaching its runtime
// supervision, and journals the reverse.
func (o *Orchestrator) execShed(sh *Shed, journal *[]func()) error {
	node := o.p.Node(sh.ECU)
	if node == nil {
		return nil // model-only deployment (planning tests)
	}
	inst := node.App(sh.App)
	if inst == nil {
		return nil
	}
	sh.behavior = inst.Behavior
	if err := node.Uninstall(sh.App); err != nil {
		return fmt.Errorf("reconfig: shed %s on %s: %w", sh.App, sh.ECU, err)
	}
	if m := o.mons[sh.ECU]; m != nil {
		m.Unwatch(sh.App)
	}
	if as := o.alives[sh.ECU]; as != nil {
		if min, max, ok := as.s.Bounds(sh.App); ok {
			sh.aliveSup, sh.aliveMin, sh.aliveMax = true, min, max
			as.s.Forget(sh.App)
		}
	}
	shed := sh
	*journal = append(*journal, func() {
		ri, err := node.Install(shed.spec, shed.behavior)
		if err != nil {
			return
		}
		_ = ri.Start()
		if shed.aliveSup {
			if as := o.alives[shed.ECU]; as != nil {
				_ = as.s.Supervise(shed.App, shed.aliveMin, shed.aliveMax)
			}
		}
	})
	o.count("reconfig_sheds", sh.ECU)
	o.instant("shed", sh.ECU, sh.App)
	o.k.Trace("reconfig", "shed %s (ASIL %v) on %s", sh.App, sh.ASIL, sh.ECU)
	return nil
}

// execInstall physically moves one app: uninstall from the failed node
// (capturing its behavior), install + start on the destination, both
// journaled.
func (o *Orchestrator) execInstall(spec model.App, from, to string, journal *[]func()) error {
	var behavior platform.Behavior
	if fromNode := o.p.Node(from); fromNode != nil {
		if inst := fromNode.App(spec.Name); inst != nil {
			behavior = inst.Behavior
			if err := fromNode.Uninstall(spec.Name); err != nil {
				return fmt.Errorf("reconfig: uninstall %s from %s: %w", spec.Name, from, err)
			}
			reSpec, reBehavior := spec, behavior
			*journal = append(*journal, func() {
				// Reinstalled but not started: the failure left it stopped.
				_, _ = fromNode.Install(reSpec, reBehavior)
			})
		}
	}
	toNode := o.p.Node(to)
	if toNode == nil {
		return fmt.Errorf("reconfig: no node on ECU %s", to)
	}
	inst, err := toNode.Install(spec, behavior)
	if err != nil {
		return fmt.Errorf("reconfig: install %s on %s: %w", spec.Name, to, err)
	}
	name := spec.Name
	*journal = append(*journal, func() { _ = toNode.Uninstall(name) })
	if err := inst.Start(); err != nil {
		return fmt.Errorf("reconfig: start %s on %s: %w", spec.Name, to, err)
	}
	return nil
}

// commitMove records a completed move and performs its side effects:
// endpoint migration, supervision transfer, steady tracking.
func (o *Orchestrator) commitMove(rec *Recovery, spec model.App, from, to string) {
	rec.Moves = append(rec.Moves, Move{App: spec.Name, From: from, To: to, Kind: spec.Kind, ASIL: spec.ASIL})
	o.count("reconfig_moves", to)
	o.instant("migrate", to, spec.Name+" from "+from)
	o.k.Trace("reconfig", "moved %s: %s -> %s", spec.Name, from, to)
	o.migrateEndpoint(spec.Name, to)
	o.moveSupervision(spec.Name, from, to)
	if spec.Kind == model.Deterministic {
		if rec.pending == nil {
			rec.pending = map[string]string{}
		}
		rec.pending[spec.Name] = to
		o.hookNode(to)
	}
}

// migrateEndpoint re-points the app's SOA endpoint at its new ECU, so
// offered services keep their identity across the move.
func (o *Orchestrator) migrateEndpoint(app, to string) {
	if o.mw == nil {
		return
	}
	if ep := o.mw.EndpointOf(app); ep != nil {
		ep.Migrate(to)
	}
}

// moveSupervision transfers monitor watches and alive bounds from the
// failed node's supervisors to the destination's, and restarts the
// destination's silence clock: an ECU that carried no periodic apps
// before the move has an arbitrarily old lastSeen, and must be granted
// a full threshold to produce the incomer's first completion.
func (o *Orchestrator) moveSupervision(app, from, to string) {
	if w := o.watch[to]; w != nil {
		w.lastSeen = o.k.Now()
	}
	if m := o.mons[from]; m != nil {
		m.Unwatch(app)
	}
	if m := o.mons[to]; m != nil {
		_ = m.Watch(app)
	}
	if as := o.alives[from]; as != nil {
		if min, max, ok := as.s.Bounds(app); ok {
			as.s.Forget(app)
			if at := o.alives[to]; at != nil {
				_ = at.s.Supervise(app, min, max)
			}
		}
	}
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
