// Package sim provides a deterministic discrete-event simulation kernel.
//
// All dynaplat subsystems execute on virtual time managed by a Kernel.
// Virtual time is completely decoupled from the wall clock: the Go garbage
// collector and goroutine scheduler can delay wall-clock progress but can
// never perturb virtual-time ordering. Event ordering is a total order over
// (time, priority, sequence), so two runs with the same seed and the same
// event program are bit-identical.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// String formats a duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d/Millisecond))
	case d%Microsecond == 0:
		return fmt.Sprintf("%dus", int64(d/Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of ms.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Priority orders events that fire at the same instant. Lower runs first.
type Priority int

// Well-known priorities. Most events use PriorityNormal; schedulers use
// PriorityClock so that clock-driven dispatch precedes same-instant work.
const (
	PriorityClock  Priority = -100
	PriorityNormal Priority = 0
	PriorityLate   Priority = 100
)

// Handler is the callback invoked when an event fires.
type Handler func()

type event struct {
	at       Time
	prio     Priority
	seq      uint64
	fn       Handler
	canceled bool
	index    int // heap index, -1 when popped
}

// EventRef identifies a scheduled event and allows cancellation.
type EventRef struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Cancel reports whether the event was
// still pending.
func (r EventRef) Cancel() bool {
	if r.ev == nil || r.ev.canceled || r.ev.index < 0 {
		return false
	}
	r.ev.canceled = true
	return true
}

// Pending reports whether the event has neither fired nor been canceled.
func (r EventRef) Pending() bool {
	return r.ev != nil && !r.ev.canceled && r.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulation executive.
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	stopped bool
	rng     *RNG
	tracer  *Tracer

	// EventCount is the total number of events executed so far.
	EventCount uint64
}

// NewKernel returns a kernel at time zero with a deterministic RNG
// initialized from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// SetTracer installs t as the kernel's tracer; nil disables tracing.
func (k *Kernel) SetTracer(t *Tracer) { k.tracer = t }

// Tracer returns the installed tracer, or nil.
func (k *Kernel) Tracer() *Tracer { return k.tracer }

// Trace records a trace event if a tracer is installed.
func (k *Kernel) Trace(category, format string, args ...any) {
	if k.tracer != nil {
		k.tracer.Record(k.now, category, format, args...)
	}
}

// At schedules fn to run at time at with normal priority.
// Scheduling in the past panics: it indicates a causality bug.
func (k *Kernel) At(at Time, fn Handler) EventRef {
	return k.AtPriority(at, PriorityNormal, fn)
}

// AtPriority schedules fn at the given time and same-instant priority.
func (k *Kernel) AtPriority(at Time, prio Priority, fn Handler) EventRef {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event handler")
	}
	ev := &event{at: at, prio: prio, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return EventRef{ev}
}

// After schedules fn to run d after the current time.
// Negative delays panic.
func (k *Kernel) After(d Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// AfterPriority schedules fn d after now with the given priority.
func (k *Kernel) AfterPriority(d Duration, prio Priority, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.AtPriority(k.now.Add(d), prio, fn)
}

// Every schedules fn at start and then every period thereafter, until the
// returned ticker is stopped. period must be positive.
func (k *Kernel) Every(start Time, period Duration, fn Handler) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.ref = k.At(start, t.tick)
	return t
}

// Ticker repeatedly fires a handler at a fixed period.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      Handler
	ref     EventRef
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.ref = t.k.After(t.period, t.tick)
	t.fn()
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ref.Cancel()
}

// Stop halts the run loop after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, advancing virtual time to it.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.canceled {
			continue
		}
		k.now = ev.at
		k.EventCount++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.runGuard()
	defer func() { k.running = false }()
	for !k.stopped && k.Step() {
	}
	k.stopped = false
}

// RunUntil executes events with time ≤ end, then sets the clock to end.
// Events scheduled after end remain queued.
func (k *Kernel) RunUntil(end Time) {
	k.runGuard()
	defer func() { k.running = false }()
	for !k.stopped {
		if len(k.queue) == 0 {
			break
		}
		// Peek without popping.
		if k.queue[0].at > end {
			break
		}
		k.Step()
	}
	k.stopped = false
	if k.now < end {
		k.now = end
	}
}

// RunFor runs for d of virtual time from the current instant.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

func (k *Kernel) runGuard() {
	if k.running {
		panic("sim: Kernel.Run called re-entrantly")
	}
	k.running = true
}

// QueueLen returns the number of scheduled (including canceled-but-queued)
// events. Intended for tests and diagnostics.
func (k *Kernel) QueueLen() int { return len(k.queue) }
