// Package sim provides a deterministic discrete-event simulation kernel.
//
// All dynaplat subsystems execute on virtual time managed by a Kernel.
// Virtual time is completely decoupled from the wall clock: the Go garbage
// collector and goroutine scheduler can delay wall-clock progress but can
// never perturb virtual-time ordering. Event ordering is a total order over
// (time, priority, sequence), so two runs with the same seed and the same
// event program are bit-identical.
//
// The kernel's dispatch loop is the hot path of the whole repository
// (every bus simulator, scheduler and SOA paradigm runs on it), so the
// event queue is a hand-specialized 4-ary heap with a free-list event
// pool and lazy removal of canceled events; see heap.go for the
// internals and DESIGN.md §"simulation substrate" for the rationale.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// String formats a duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d/Millisecond))
	case d%Microsecond == 0:
		return fmt.Sprintf("%dus", int64(d/Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of ms.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Priority orders events that fire at the same instant. Lower runs first.
type Priority int

// Well-known priorities. Most events use PriorityNormal; schedulers use
// PriorityClock so that clock-driven dispatch precedes same-instant work.
const (
	PriorityClock  Priority = -100
	PriorityNormal Priority = 0
	PriorityLate   Priority = 100
)

// Handler is the callback invoked when an event fires.
type Handler func()

// event is one scheduled handler. Events are pooled: after firing or
// cancellation the slot is recycled, and gen is bumped so stale
// EventRefs can be detected.
type event struct {
	at       Time
	prio     Priority
	seq      uint64
	gen      uint64
	fn       Handler
	k        *Kernel
	index    int32 // heap index, -1 when not queued
	canceled bool
}

// EventRef identifies a scheduled event and allows cancellation. The
// zero EventRef is valid and refers to no event. Refs are generation-
// checked: once the underlying slot fires, is canceled, or is recycled
// for a new event, old refs become inert.
type EventRef struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or recycled event is a no-op. Cancel reports whether
// the event was still pending.
func (r EventRef) Cancel() bool {
	ev := r.ev
	if ev == nil || ev.gen != r.gen || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	k := ev.k
	k.dead++
	k.statCanceled++
	k.maybeCompact()
	return true
}

// Pending reports whether the event has neither fired nor been canceled.
func (r EventRef) Pending() bool {
	return r.ev != nil && r.ev.gen == r.gen && !r.ev.canceled && r.ev.index >= 0
}

// Kernel is a discrete-event simulation executive.
// The zero value is not usable; create kernels with NewKernel.
//
// A Kernel is single-threaded: it may be driven from one goroutine at a
// time. Run many kernels in parallel (one per goroutine) for fan-out
// workloads such as the experiment harness.
type Kernel struct {
	now     Time
	queue   []*event // 4-ary heap ordered by (at, prio, seq)
	free    []*event // recycled event slots
	dead    int      // canceled events still in queue
	seq     uint64
	running bool
	stopped bool
	firing  *event // event currently being dispatched, if any
	rearmed bool   // firing event was re-pushed by rearmFiring
	rng     *RNG
	tracer  *Tracer

	statCanceled    uint64
	statReused      uint64
	statCompactions uint64
	statPeak        int

	// EventCount is the total number of events executed so far.
	EventCount uint64
}

// NewKernel returns a kernel at time zero with a deterministic RNG
// initialized from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// SetTracer installs t as the kernel's tracer; nil disables tracing.
func (k *Kernel) SetTracer(t *Tracer) { k.tracer = t }

// Tracer returns the installed tracer, or nil.
func (k *Kernel) Tracer() *Tracer { return k.tracer }

// Trace records a trace event if a tracer is installed.
func (k *Kernel) Trace(category, format string, args ...any) {
	if k.tracer != nil {
		k.tracer.Record(k.now, category, format, args...)
	}
}

// At schedules fn to run at time at with normal priority.
// Scheduling in the past panics: it indicates a causality bug.
func (k *Kernel) At(at Time, fn Handler) EventRef {
	return k.AtPriority(at, PriorityNormal, fn)
}

// AtPriority schedules fn at the given time and same-instant priority.
func (k *Kernel) AtPriority(at Time, prio Priority, fn Handler) EventRef {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event handler")
	}
	ev := k.alloc()
	ev.at = at
	ev.prio = prio
	ev.seq = k.seq
	ev.fn = fn
	k.seq++
	k.push(ev)
	return EventRef{ev, ev.gen}
}

// After schedules fn to run d after the current time.
// Negative delays panic.
func (k *Kernel) After(d Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// AfterPriority schedules fn d after now with the given priority.
func (k *Kernel) AfterPriority(d Duration, prio Priority, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.AtPriority(k.now.Add(d), prio, fn)
}

// Every schedules fn at start and then every period thereafter, until the
// returned ticker is stopped. period must be positive.
func (k *Kernel) Every(start Time, period Duration, fn Handler) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.ref = k.At(start, t.tick)
	return t
}

// Ticker repeatedly fires a handler at a fixed period.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      Handler
	ref     EventRef
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	// Fast path: re-arm by pushing the just-fired event object back into
	// the queue (fresh seq and generation, same handler) — no pool
	// round-trip, no allocation.
	if ref, ok := t.k.rearmFiring(t.period); ok {
		t.ref = ref
	} else {
		t.ref = t.k.After(t.period, t.tick)
	}
	t.fn()
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ref.Cancel()
}

// rearmFiring reschedules the event currently being dispatched d after
// now, reusing its slot. It reports false when no event is firing or the
// slot was already re-armed.
func (k *Kernel) rearmFiring(d Duration) (EventRef, bool) {
	h := k.firing
	if h == nil || k.rearmed {
		return EventRef{}, false
	}
	h.at = k.now.Add(d)
	h.seq = k.seq
	k.seq++
	k.rearmed = true
	k.push(h)
	return EventRef{h, h.gen}, true
}

// Stop halts the run loop after the current event completes. Stop is
// only meaningful while the kernel is running (i.e. from inside an event
// handler); calling it while the kernel is idle is a documented no-op,
// so a stray pre-Run Stop cannot silently suppress a later Run.
func (k *Kernel) Stop() {
	if k.running {
		k.stopped = true
	}
}

// Step executes the single next live event, advancing virtual time to it.
// Canceled events encountered at the queue head are dropped and recycled
// without executing. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	h := k.peekLive()
	if h == nil {
		return false
	}
	k.fire(h)
	return true
}

// fire pops h (the known queue head) and dispatches it.
func (k *Kernel) fire(h *event) {
	k.popHead()
	k.now = h.at
	k.EventCount++
	// The slot leaves the queue: stale any refs now so that a
	// cancel-after-fire (or a cancel of a later re-arm seen through an
	// old ref) is inert.
	h.gen++
	prevFiring, prevRearmed := k.firing, k.rearmed
	k.firing, k.rearmed = h, false
	h.fn()
	if !k.rearmed {
		// Not re-armed by a ticker: recycle. gen was already bumped.
		h.fn = nil
		h.canceled = false
		k.free = append(k.free, h)
	}
	k.firing, k.rearmed = prevFiring, prevRearmed
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.runGuard()
	defer func() { k.running = false }()
	for !k.stopped && k.Step() {
	}
	k.stopped = false
}

// RunUntil executes events with time ≤ end, then sets the clock to end.
// Events scheduled after end remain queued. Canceled events at the head
// of the queue are discarded and never act as a time barrier.
func (k *Kernel) RunUntil(end Time) {
	k.runGuard()
	defer func() { k.running = false }()
	for !k.stopped {
		h := k.peekLive()
		if h == nil || h.at > end {
			break
		}
		k.fire(h)
	}
	k.stopped = false
	if k.now < end {
		k.now = end
	}
}

// RunFor runs for d of virtual time from the current instant.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

func (k *Kernel) runGuard() {
	if k.running {
		panic("sim: Kernel.Run called re-entrantly")
	}
	k.running = true
}

// QueueLen returns the number of live (non-canceled) scheduled events.
// Canceled events awaiting lazy removal are not counted. Intended for
// tests and diagnostics.
func (k *Kernel) QueueLen() int { return len(k.queue) - k.dead }

// KernelStats is a snapshot of kernel counters for observability.
type KernelStats struct {
	Fired       uint64 // events executed
	Canceled    uint64 // cancellations accepted
	Reused      uint64 // schedules served from the event pool
	PoolFree    int    // event slots currently parked in the pool
	QueueLive   int    // live (non-canceled) events queued now
	QueueDead   int    // canceled events awaiting lazy removal
	PeakQueue   int    // high-water mark of live queued events
	Compactions uint64 // bulk sweeps of canceled events
}

// Stats returns a snapshot of the kernel's internal counters.
func (k *Kernel) Stats() KernelStats {
	return KernelStats{
		Fired:       k.EventCount,
		Canceled:    k.statCanceled,
		Reused:      k.statReused,
		PoolFree:    len(k.free),
		QueueLive:   len(k.queue) - k.dead,
		QueueDead:   k.dead,
		PeakQueue:   k.statPeak,
		Compactions: k.statCompactions,
	}
}
