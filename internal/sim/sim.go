// Package sim provides a deterministic discrete-event simulation kernel.
//
// All dynaplat subsystems execute on virtual time managed by a Kernel.
// Virtual time is completely decoupled from the wall clock: the Go garbage
// collector and goroutine scheduler can delay wall-clock progress but can
// never perturb virtual-time ordering. Event ordering is a total order over
// (time, priority, sequence), so two runs with the same seed and the same
// event program are bit-identical.
//
// The kernel's dispatch loop is the hot path of the whole repository
// (every bus simulator, scheduler and SOA paradigm runs on it), so the
// event queue is a hand-specialized 4-ary heap with a free-list event
// pool and lazy removal of canceled events; see heap.go for the
// internals and DESIGN.md §"simulation substrate" for the rationale.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// maxTime is the largest representable virtual instant — an unbounded
// run horizon.
const maxTime = Time(1<<63 - 1)

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// String formats a duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d/Millisecond))
	case d%Microsecond == 0:
		return fmt.Sprintf("%dus", int64(d/Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of ms.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Priority orders events that fire at the same instant. Lower runs first.
type Priority int

// Well-known priorities. Most events use PriorityNormal; schedulers use
// PriorityClock so that clock-driven dispatch precedes same-instant work.
const (
	PriorityClock  Priority = -100
	PriorityNormal Priority = 0
	PriorityLate   Priority = 100
)

// Handler is the callback invoked when an event fires.
type Handler func()

// event is one scheduled handler. Events are pooled: after firing or
// cancellation the slot is recycled, and gen is bumped so stale
// EventRefs can be detected. An event carries either fn (Handler) or
// fn1+arg (the allocation-free AtCall form); fire dispatches whichever
// is set.
type event struct {
	at       Time
	prio     Priority
	seq      uint64
	gen      uint64
	fn       Handler
	fn1      func(any)
	arg      any
	tk       *Ticker // periodic events: fire re-arms inline and calls tk.fn
	next     *event  // intrusive link for timing-wheel slot lists
	k        *Kernel
	index    int32 // heap index ≥ 0, wheelIdx when wheel-resident, -1 otherwise
	canceled bool
}

// EventRef identifies a scheduled event and allows cancellation. The
// zero EventRef is valid and refers to no event. Refs are generation-
// checked: once the underlying slot fires, is canceled, or is recycled
// for a new event, old refs become inert.
type EventRef struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or recycled event is a no-op. Cancel reports whether
// the event was still pending.
func (r EventRef) Cancel() bool {
	ev := r.ev
	if ev == nil || ev.gen != r.gen || ev.canceled || ev.index == -1 {
		return false
	}
	ev.canceled = true
	k := ev.k
	k.statCanceled++
	k.live--
	if ev.index == wheelIdx {
		k.wheel.dead++
		k.maybeSweep()
	} else {
		k.dead++
		k.maybeCompact()
	}
	return true
}

// Pending reports whether the event has neither fired nor been canceled.
func (r EventRef) Pending() bool {
	return r.ev != nil && r.ev.gen == r.gen && !r.ev.canceled && r.ev.index != -1
}

// Kernel is a discrete-event simulation executive.
// The zero value is not usable; create kernels with NewKernel.
//
// A Kernel is single-threaded: it may be driven from one goroutine at a
// time. Run many kernels in parallel (one per goroutine) for fan-out
// workloads such as the experiment harness.
type Kernel struct {
	now      Time
	queue    []*event // 4-ary heap ordered by (at, prio, seq)
	free     []*event // recycled event slots
	dead     int      // canceled events still in the heap
	live     int      // live events across heap and wheel (O(1) QueueLen)
	seq      uint64
	running  bool
	stopped  bool
	wheelOff bool   // DisableWheel: heap-only mode for differential tests
	wheel    *wheel // timing-wheel fast path, nil until first used
	rng      RNG
	tracer   *Tracer

	statCanceled    uint64
	statReused      uint64
	statCompactions uint64
	statPeak        int

	// EventCount is the total number of events executed so far.
	EventCount uint64

	// Inline backing for the first few queue and pool entries, so a
	// fresh kernel running a short event chain never grows either slice.
	queue0 [4]*event
	free0  [4]*event

	// Inline backing for the first event slots, so a fresh kernel's
	// short chain never allocates events at all.
	ev0     [2]event
	ev0Used int8
}

// HeapOnlyDefault, when true, makes NewKernel return kernels with the
// timing wheel disabled, as if DisableWheel had been called on each.
// It exists for the differential backend tests, which re-run entire
// experiments — whose kernels are constructed deep inside the runners —
// on the pure heap backend and require the results to be
// byte-identical. Flip it only around such a test; it is read once at
// kernel construction.
var HeapOnlyDefault bool

// NewKernel returns a kernel at time zero with a deterministic RNG
// initialized from seed. The kernel itself is the only allocation.
func NewKernel(seed uint64) *Kernel {
	k := &Kernel{}
	k.rng.seed(seed)
	k.queue = k.queue0[:0]
	k.free = k.free0[:0]
	k.wheelOff = HeapOnlyDefault
	return k
}

// DisableWheel reverts the kernel to the pure 4-ary-heap event queue,
// disabling the timing-wheel fast path. The observable behavior is
// byte-identical either way (the differential tests prove it); the
// switch exists so those tests can run both backends. It must be called
// before any event is scheduled.
func (k *Kernel) DisableWheel() {
	if len(k.queue) > 0 || (k.wheel != nil && k.wheel.count > 0) {
		panic("sim: DisableWheel called with events scheduled")
	}
	k.wheelOff = true
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return &k.rng }

// SetTracer installs t as the kernel's tracer; nil disables tracing.
func (k *Kernel) SetTracer(t *Tracer) { k.tracer = t }

// Tracer returns the installed tracer, or nil.
func (k *Kernel) Tracer() *Tracer { return k.tracer }

// Trace records a trace event if a tracer is installed.
func (k *Kernel) Trace(category, format string, args ...any) {
	if k.tracer != nil {
		k.tracer.Record(k.now, category, format, args...)
	}
}

// At schedules fn to run at time at with normal priority.
// Scheduling in the past panics: it indicates a causality bug.
func (k *Kernel) At(at Time, fn Handler) EventRef {
	return k.AtPriority(at, PriorityNormal, fn)
}

// AtPriority schedules fn at the given time and same-instant priority.
func (k *Kernel) AtPriority(at Time, prio Priority, fn Handler) EventRef {
	if fn == nil {
		panic("sim: nil event handler")
	}
	ev := k.newEvent(at, prio)
	ev.fn = fn
	k.schedule(ev)
	return EventRef{ev, ev.gen}
}

// newEvent allocates and stamps an event slot for time at.
func (k *Kernel) newEvent(at Time, prio Priority) *event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	ev := k.alloc()
	ev.at = at
	ev.prio = prio
	ev.seq = k.seq
	k.seq++
	return ev
}

// schedule routes a stamped event into the timing wheel when it fits,
// falling back to the heap, and maintains the live count and its
// high-water mark. The live count is backend-invariant (an event is
// live iff scheduled, unfired and uncanceled, regardless of which
// structure holds it), which keeps QueueLen and the observed
// kernel_queue_peak gauge byte-identical across wheel and heap-only
// kernels.
func (k *Kernel) schedule(ev *event) {
	if k.wheelOff || !k.tryWheel(ev) {
		k.push(ev)
	}
	k.live++
	if k.live > k.statPeak {
		k.statPeak = k.live
	}
}

// After schedules fn to run d after the current time.
// Negative delays panic.
func (k *Kernel) After(d Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// AfterPriority schedules fn d after now with the given priority.
func (k *Kernel) AfterPriority(d Duration, prio Priority, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.AtPriority(k.now.Add(d), prio, fn)
}

// AfterCall schedules fn(arg) to run d after the current time with
// normal priority. Unlike After it takes a plain function plus its
// argument — typically a pre-bound method value and a pooled record —
// so hot paths schedule without building a closure per event, and it
// deliberately returns no EventRef: the event is fire-and-forget and
// can never be canceled, which is what delivery-style callers want.
func (k *Kernel) AfterCall(d Duration, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.AtCall(k.now.Add(d), fn, arg)
}

// AtCall schedules fn(arg) at time at with normal priority. See
// AfterCall for the contract.
func (k *Kernel) AtCall(at Time, fn func(any), arg any) {
	if fn == nil {
		panic("sim: nil event handler")
	}
	ev := k.newEvent(at, PriorityNormal)
	ev.fn1 = fn
	ev.arg = arg
	k.schedule(ev)
}

// Every schedules fn at start and then every period thereafter, until the
// returned ticker is stopped. period must be positive.
func (k *Kernel) Every(start Time, period Duration, fn Handler) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	if fn == nil {
		panic("sim: nil event handler")
	}
	t := &Ticker{k: k, period: period, fn: fn}
	ev := k.newEvent(start, PriorityNormal)
	ev.tk = t
	k.schedule(ev)
	t.ref = EventRef{ev, ev.gen}
	return t
}

// Ticker repeatedly fires a handler at a fixed period. Ticker events
// are re-armed inline by fire: the same event slot goes straight back
// into the queue (fresh seq and generation, one wheel insert in the
// common case) before the handler runs — no pool round-trip, no
// allocation, no per-tick closure dispatch.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      Handler
	ref     EventRef
	stopped bool
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ref.Cancel()
}

// Stop halts the run loop after the current event completes. Stop is
// only meaningful while the kernel is running (i.e. from inside an event
// handler); calling it while the kernel is idle is a documented no-op,
// so a stray pre-Run Stop cannot silently suppress a later Run.
func (k *Kernel) Stop() {
	if k.running {
		k.stopped = true
	}
}

// Step executes the single next live event, advancing virtual time to it.
// Canceled events encountered at the queue head are dropped and recycled
// without executing. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	h := k.peekLive()
	if h == nil {
		return false
	}
	k.fire(h)
	return true
}

// fire pops h (the known merged queue head, from the heap or from the
// wheel's drained current bucket) and dispatches it.
func (k *Kernel) fire(h *event) {
	if h.index == wheelIdx {
		k.wheel.popBucket()
		h.index = -1
	} else {
		k.popHead()
	}
	k.now = h.at
	k.EventCount++
	k.live--
	if tk := h.tk; tk != nil {
		// Ticker fast path: re-arm the just-fired slot inline — before
		// the handler, so the handler observes a pending ref and can
		// Stop() it — then dispatch the user handler directly. The slot
		// keeps its generation across re-arms: the only ref to a ticker
		// event is the ticker's own (Every hands out *Ticker, never an
		// EventRef), so tk.ref set at Every time stays valid for the
		// ticker's whole life and needs no per-fire rewrite.
		if !tk.stopped {
			h.at = k.now.Add(tk.period)
			h.seq = k.seq
			k.seq++
			k.schedule(h)
			tk.fn()
		} else {
			h.gen++
			h.fn = nil
			h.tk = nil
			h.canceled = false
			k.free = append(k.free, h)
		}
		return
	}
	// The slot leaves the queue for good: stale any refs (so a
	// cancel-after-fire is inert) and recycle it before the handler
	// runs — a handler that immediately schedules (the chain pattern)
	// then reuses this very slot instead of growing the pool.
	h.gen++
	fn, fn1, arg := h.fn, h.fn1, h.arg
	h.fn = nil
	h.fn1 = nil
	h.arg = nil
	h.canceled = false
	k.free = append(k.free, h)
	if fn1 != nil {
		fn1(arg)
	} else {
		fn()
	}
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.runGuard()
	defer func() { k.running = false }()
	for !k.stopped {
		if w := k.wheel; w != nil && w.count > 0 && len(k.queue) == 0 {
			k.burnWheel(maxTime)
		}
		if !k.Step() {
			break
		}
	}
	k.stopped = false
}

// RunUntil executes events with time ≤ end, then sets the clock to end.
// Events scheduled after end remain queued. Canceled events at the head
// of the queue are discarded and never act as a time barrier.
func (k *Kernel) RunUntil(end Time) {
	k.runGuard()
	defer func() { k.running = false }()
	for !k.stopped {
		if w := k.wheel; w != nil && w.count > 0 && len(k.queue) == 0 {
			k.burnWheel(end)
		}
		h := k.peekLive()
		if h == nil || h.at > end {
			break
		}
		k.fire(h)
	}
	k.stopped = false
	if k.now < end {
		k.now = end
	}
}

// RunFor runs for d of virtual time from the current instant.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

func (k *Kernel) runGuard() {
	if k.running {
		panic("sim: Kernel.Run called re-entrantly")
	}
	k.running = true
}

// QueueLen returns the number of live (non-canceled) scheduled events,
// whether heap- or wheel-resident. Canceled events awaiting lazy removal
// are not counted. Intended for tests and diagnostics.
func (k *Kernel) QueueLen() int { return k.live }

// KernelStats is a snapshot of kernel counters for observability.
//
// Fired, Canceled, QueueLive and PeakQueue are queue-backend-invariant:
// a wheel-backed and a heap-only kernel driving the same event program
// report identical values. The remaining fields are implementation
// bookkeeping whose values depend on lazy-recycle timing and therefore
// on the backend; observed experiment artifacts must only include the
// invariant set (see obs.SnapshotKernel).
type KernelStats struct {
	Fired         uint64 // events executed
	Canceled      uint64 // cancellations accepted
	Reused        uint64 // schedules served from the event pool
	PoolFree      int    // event slots currently parked in the pool
	QueueLive     int    // live events queued now, heap- and wheel-resident
	QueueDead     int    // canceled events awaiting lazy removal (heap + wheel)
	WheelLive     int    // live events currently wheel-resident
	WheelCascades uint64 // higher-level wheel buckets scattered downward
	PeakQueue     int    // high-water mark of live queued events
	Compactions   uint64 // bulk canceled-event sweeps (heap + wheel)
}

// Stats returns a snapshot of the kernel's internal counters.
func (k *Kernel) Stats() KernelStats {
	st := KernelStats{
		Fired:       k.EventCount,
		Canceled:    k.statCanceled,
		Reused:      k.statReused,
		PoolFree:    len(k.free),
		QueueLive:   k.live,
		QueueDead:   k.dead,
		PeakQueue:   k.statPeak,
		Compactions: k.statCompactions,
	}
	if w := k.wheel; w != nil {
		st.QueueDead += w.dead
		st.WheelLive = w.count - w.dead
		st.WheelCascades = w.statCascades
	}
	return st
}
