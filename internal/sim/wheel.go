package sim

// Hierarchical timing wheel: the fast path of the event queue.
//
// The dominant automotive load is periodic — control loops, bus slot
// tickers, heartbeats, deadline supervision — and every Ticker re-arm
// used to pay an O(log n) heap sift. The wheel gives those near-future
// events O(1) insert and re-arm; the 4-ary heap (heap.go) remains the
// overflow structure for far-future outliers, for sub-grain inserts,
// and for the rare level-0 slot that fills past its inline capacity.
//
// Layout. Six levels of 64 slots; a slot at level l spans 64^l grains of
// 4ns (wheelGBits). Level 0 slots are 4ns wide, so the wheel resolves
// the nanosecond-scale periods the kernel benchmarks use while level 5
// still reaches ~4.5 virtual minutes; anything farther out overflows to
// the heap. A level-0 slot is a fixed-capacity inline array kept sorted
// by lessEv at insert time — no slice headers, no append machinery, and
// the insertion shift moves a few adjacent pointers within one or two
// cache lines. A slot that fills past wheelSlotCap spills the excess to
// the heap, which is merely slower, never wrong (see ordering). Higher
// levels are unsorted intrusive singly-linked lists (the event struct
// carries a next pointer) with O(1) prepend. One occupancy bit per slot
// in a per-level uint64 bitmap makes "earliest occupied slot" one
// rotate and one TrailingZeros64 per level consulted.
//
// Ordering contract. The kernel's total order (time, priority, seq) must
// be byte-for-byte independent of which structure held an event, so the
// wheel establishes lessEv order before events become poppable:
//
//   - Level-0 slots are sorted on insert, so draining one is a short
//     copy, not a sort.
//   - Higher-level events cascade downward when the cursor reaches their
//     slot and take their lessEv position when they reach a level-0
//     slot (same-grain cascades sorted-insert into the current level-0
//     slot, which advance then drains — the "higher level first on equal
//     starts" rule falls out of processing hiLB before the level-0
//     candidate).
//   - The drained bucket (cbBuf) is merged against the heap head by
//     peekLive with lessEv. seq is unique, so the merged pop order is
//     identical to a heap-only kernel's — including when some events
//     overflowed to the heap.
//
// Cursor invariants. cur tracks the grain of the most recently drained
// bucket and is dragged up to now's grain on insert. It never passes an
// occupied slot whose events could fire before a later event: peekLive
// only advances the wheel when the heap head is not provably earlier
// than every wheel event (lowerBound), and RunUntil only jumps now past
// wheel events that are provably later than the horizon. cur can move
// *backward* transiently inside advance when a higher-level slot whose
// span straddles now is cascaded; the lapped-slot re-bucketing below
// makes that safe.
//
// Lapped slots. A slot index is a pure function of an event's time, so
// two events 64^(l+1) grains apart share a slot, and a slot's cyclic
// distance from cur can understate an event's true distance. The wheel
// never trusts a slot's claimed start: draining a level-0 bucket keeps
// only the events whose grain really equals the cursor (the slot is
// sorted, so later grains are exactly a suffix) and re-buckets the rest
// by their own times; cascades likewise re-bucket by each event's own
// time. A misidentified slot therefore costs a wasted drain, never a
// misordered pop. The same argument makes every computed bound stale-low
// at worst, which is safe for a lower bound.
//
// Laziness. A kernel allocates its wheel (a few KB of slot arrays) on
// the first insert that lands in a slot while at least wheelMinLive
// events are already live — so the depth-1 schedule→fire chains of
// one-shot workloads, where the heap is already O(1), never pay for it.
// The wheel keeps a cached exact minimum over the higher levels
// (hiLB/hiLvl, invalidated by cascades and sweeps, min-updated by
// inserts) so the steady-state advance cost is one level-0 bitmap probe,
// and peekLive can skip draining far-future slots while the heap head is
// earlier.
//
// Cancellation mirrors the heap: canceled residents are tombstoned and
// dropped when their slot drains or cascades, with a bulk sweep (same
// >50% threshold as heap compaction) so a cancel-heavy workload cannot
// pin memory.

import "math/bits"

const (
	// wheelGBits is the log2 grain: one level-0 slot spans 4ns. A fine
	// grain keeps level-0 slots near-singleton for nanosecond-period
	// tickers (the sorted insert then costs zero compares) at the price
	// of more advance steps, which are a rotate+TrailingZeros each.
	wheelGBits = 2
	// wheelSlotBits is the log2 fan-out per level: 64 slots.
	wheelSlotBits = 6
	wheelSlots    = 1 << wheelSlotBits
	wheelMask     = wheelSlots - 1
	// wheelLevels bounds the horizon: 64^6 grains ≈ 4.5 virtual minutes.
	wheelLevels = 6

	// wheelSlotCap is the inline capacity of a level-0 slot; denser
	// slots spill to the heap.
	wheelSlotCap = 8

	// wheelMinLive gates wheel creation: with fewer live events the heap
	// is already O(1)-ish and a short-lived kernel should not pay the
	// wheel's slot-array allocation.
	wheelMinLive = 2

	// wheelIdx marks an event as wheel-resident (slot or drained
	// bucket). Heap events carry their heap index ≥ 0; -1 means unqueued.
	wheelIdx = -2

	// noHi is the hiLB sentinel for "no occupied higher-level slot".
	noHi = ^uint64(0)
)

// wheel is the hierarchical timing wheel state. It lives behind a
// pointer on the Kernel and is nil until first used.
type wheel struct {
	// cur is the cursor position in level-0 grains (at >> wheelGBits).
	cur uint64

	// hiLB/hiLvl cache the earliest occupied slot start (in grains) and
	// its level across levels 1..wheelLevels-1 while hiOK. noHi when no
	// higher-level slot is occupied.
	hiLB  uint64
	hiLvl int
	hiOK  bool

	count     int // resident events (slots + drained bucket), incl. canceled
	dead      int // canceled residents awaiting drain or sweep
	slotCount int // residents still in slots (excludes drained bucket)

	occ [wheelLevels]uint64
	s0n [wheelSlots]uint8                   // level-0 slot fill counts
	s0  [wheelSlots][wheelSlotCap]*event    // level 0: lessEv-sorted arrays
	hi  [wheelLevels - 1][wheelSlots]*event // levels 1..: unsorted lists

	// cbBuf[cbHead:cbLen] is the drained current bucket — the
	// lessEv-sorted events of grain cur. Between advances it is the
	// wheel's head. Popped entries are not nil-ed; the array is
	// overwritten by the next drain and everything it points to is
	// reachable through the pool or the queue anyway.
	cbBuf  [wheelSlotCap]*event
	cbLen  int
	cbHead int

	statCascades uint64
}

// wheelLevelFor returns the level whose slot width covers distance d ≥ 1.
func wheelLevelFor(d uint64) int {
	return (bits.Len64(d) - 1) / wheelSlotBits
}

// tryWheel routes ev into a wheel slot, reporting false when the event
// belongs on the heap instead (same grain as the cursor, beyond the
// wheel horizon, a full level-0 slot, or a kernel too shallow to
// warrant a wheel). Called from schedule for every insert.
func (k *Kernel) tryWheel(ev *event) bool {
	w := k.wheel
	wt := uint64(ev.at) >> wheelGBits
	cur := uint64(k.now) >> wheelGBits
	if w != nil && w.cur > cur {
		cur = w.cur
	}
	d := wt - cur
	if d == 0 {
		// Same grain as the cursor: the heap resolves sub-grain order
		// against the already-drained current bucket.
		return false
	}
	lvl := wheelLevelFor(d)
	if lvl >= wheelLevels {
		return false // beyond the horizon: far-future outlier
	}
	if w == nil {
		if k.live < wheelMinLive {
			return false
		}
		w = &wheel{cur: cur}
		k.wheel = w
	} else {
		// Safe to drag the cursor up to now: no occupied slot holds an
		// event that could fire before now (see cursor invariants).
		w.cur = cur
	}
	if !w.link(ev, lvl, wt) {
		return false // slot full: overflow to the heap
	}
	ev.index = wheelIdx
	w.count++
	w.slotCount++
	return true
}

// link places ev into the slot covering wt at the given level: sorted
// insert at level 0, prepend (with hiLB min-maintenance) above. It
// reports false — leaving the wheel untouched — when a level-0 slot is
// already full.
func (w *wheel) link(ev *event, lvl int, wt uint64) bool {
	shift := uint(lvl) * wheelSlotBits
	idx := (wt >> shift) & wheelMask
	if lvl == 0 {
		n := int(w.s0n[idx])
		if n == wheelSlotCap {
			return false
		}
		s := &w.s0[idx]
		i := n
		for i > 0 && lessEv(ev, s[i-1]) {
			s[i] = s[i-1]
			i--
		}
		s[i] = ev
		w.s0n[idx] = uint8(n + 1)
	} else {
		ev.next = w.hi[lvl-1][idx]
		w.hi[lvl-1][idx] = ev
		if start := (wt >> shift) << shift; w.hiOK && start < w.hiLB {
			w.hiLB, w.hiLvl = start, lvl
		}
	}
	w.occ[lvl] |= 1 << idx
	return true
}

// peekLive returns the earliest live event across the heap and the
// wheel without removing it, recycling canceled events it skips over.
// It is the kernel's single merge point: the heap head and the wheel
// head are compared with lessEv, the same strict total order both
// structures already respect internally, so the pop order is identical
// to a heap-only kernel's.
//
// The wheel side is lazy: while its drained current bucket is spent but
// slots remain occupied, the wheel only advances (drains its next
// bucket) when the heap head is not provably earlier than every
// slot-resident event (lowerBound). This keeps far-future wheel slots
// untouched — and the cursor behind now — while near-term heap traffic
// drains, which the tryWheel now-synchronization relies on.
func (k *Kernel) peekLive() *event {
	w := k.wheel
	if w == nil || w.count == 0 {
		return k.peekHeapLive()
	}
	for {
		// The heap head is re-read on every iteration: advance can spill
		// events to the heap (a cascade into a full level-0 slot), so a
		// head cached from before an advance may no longer be the heap
		// minimum — and fire pops the real head, not the peeked value.
		hh := k.peekHeapLive()
		wh := w.peekBucket(k)
		if wh == nil {
			if w.slotCount == 0 {
				return hh
			}
			if hh != nil && hh.at < w.lowerBound() {
				// Strictly earlier than any slot start ⇒ earlier than
				// every wheel event; ties must drain the bucket so
				// prio/seq decide.
				return hh
			}
			w.advance(k)
			continue
		}
		// Slot-resident events all live in grains strictly after the
		// drained bucket, so the bucket head is the wheel's minimum.
		if hh != nil && lessEv(hh, wh) {
			return hh
		}
		return wh
	}
}

// lowerBound returns a time no later than any slot-resident event.
// Only meaningful while slotCount > 0.
func (w *wheel) lowerBound() Time {
	lb := noHi
	if o := w.occ[0]; o != 0 {
		rot := bits.RotateLeft64(o, -int(w.cur&wheelMask))
		lb = w.cur + uint64(bits.TrailingZeros64(rot))
	}
	if !w.hiOK {
		w.recomputeHi()
	}
	if w.hiLB < lb {
		lb = w.hiLB
	}
	return Time(lb << wheelGBits)
}

// recomputeHi rebuilds the cached minimum occupied-slot start across
// levels 1..wheelLevels-1. Scanning high to low with a strict compare
// leaves hiLvl at the highest level on equal starts, so cascades scatter
// coarse slots before fine ones.
func (w *wheel) recomputeHi() {
	w.hiLB, w.hiLvl = noHi, 0
	for l := wheelLevels - 1; l >= 1; l-- {
		o := w.occ[l]
		if o == 0 {
			continue
		}
		shift := uint(l) * wheelSlotBits
		pos := w.cur >> shift
		rot := bits.RotateLeft64(o, -int(pos&wheelMask))
		dist := uint64(bits.TrailingZeros64(rot))
		if s := (pos + dist) << shift; s < w.hiLB {
			w.hiLB, w.hiLvl = s, l
		}
	}
	w.hiOK = true
}

// peekBucket returns the earliest live event of the drained current
// bucket, recycling canceled entries it skips, or nil when the bucket
// is spent.
func (w *wheel) peekBucket(k *Kernel) *event {
	for w.cbHead < w.cbLen {
		e := w.cbBuf[w.cbHead]
		if !e.canceled {
			return e
		}
		w.cbHead++
		w.count--
		w.dead--
		k.release(e)
	}
	return nil
}

// popBucket removes the current bucket head (the event peekBucket
// returned).
func (w *wheel) popBucket() {
	w.cbHead++
	w.count--
}

// advance moves the cursor to the earliest occupied slot and installs
// that bucket as the current (cbBuf) contents. Higher-level slots at or
// before the level-0 candidate cascade first, so same-start buckets
// merge — in sorted position — before the bucket is exposed. Requires
// the previous bucket to be fully popped and slotCount > 0.
func (w *wheel) advance(k *Kernel) {
	for w.slotCount > 0 {
		var start0 uint64
		have0 := w.occ[0] != 0
		if have0 {
			rot := bits.RotateLeft64(w.occ[0], -int(w.cur&wheelMask))
			start0 = w.cur + uint64(bits.TrailingZeros64(rot))
		}
		if !w.hiOK {
			w.recomputeHi()
		}
		if w.hiLB != noHi && (!have0 || w.hiLB <= start0) {
			w.cascade(k)
			continue
		}
		// Drain the level-0 bucket at start0 into cbBuf. The slot is
		// emptied before any re-bucketing so a lapped event relinking
		// into this same slot cannot alias the bucket.
		w.cur = start0
		idx := start0 & wheelMask
		n := int(w.s0n[idx])
		w.s0n[idx] = 0
		w.occ[0] &^= 1 << idx
		copy(w.cbBuf[:n], w.s0[idx][:n])
		// Lapped residents (grain > cur) sort strictly after this
		// grain's events: peel them off the tail and re-bucket them by
		// their own times.
		for n > 0 {
			e := w.cbBuf[n-1]
			if uint64(e.at)>>wheelGBits == start0 {
				break
			}
			n--
			if e.canceled {
				w.count--
				w.dead--
				w.slotCount--
				k.release(e)
			} else {
				w.relink(k, e)
			}
		}
		w.slotCount -= n
		w.cbLen, w.cbHead = n, 0
		if n > 0 {
			return
		}
	}
}

// cascade drains the higher-level slot at hiLB, scattering its events
// into lower levels by their own times: same-grain events sorted-insert
// into the current level-0 slot (drained by the caller's next
// iteration), the rest re-bucket wherever their distance now lands.
func (w *wheel) cascade(k *Kernel) {
	w.statCascades++
	lvl := w.hiLvl
	w.cur = w.hiLB
	shift := uint(lvl) * wheelSlotBits
	idx := (w.hiLB >> shift) & wheelMask
	head := w.hi[lvl-1][idx]
	w.hi[lvl-1][idx] = nil
	w.occ[lvl] &^= 1 << idx
	w.hiOK = false
	for e := head; e != nil; {
		nx := e.next
		e.next = nil
		if e.canceled {
			w.count--
			w.dead--
			w.slotCount--
			k.release(e)
		} else {
			w.relink(k, e)
		}
		e = nx
	}
}

// relink re-buckets a slot-resident live event relative to the current
// cursor during a drain or cascade. A full level-0 slot spills the
// event to the heap (it leaves the wheel's books but stays scheduled
// and keeps its EventRef validity; index switches to its heap slot).
func (w *wheel) relink(k *Kernel, e *event) {
	wt := uint64(e.at) >> wheelGBits
	lvl := 0
	if d := wt - w.cur; d != 0 {
		lvl = wheelLevelFor(d)
	}
	// A cascade can move the cursor backward (to the drained slot's
	// start), so a lapped resident's distance may now exceed the wheel
	// horizon — the same beyond-horizon case tryWheel routes to the
	// heap. Without this guard lvl indexes past the level arrays.
	if lvl >= wheelLevels || !w.link(e, lvl, wt) {
		w.count--
		w.slotCount--
		e.index = -1
		k.push(e)
	}
}

// burnWheel executes wheel events with time ≤ end in a fused loop while
// the heap is empty. With no heap events there is nothing to merge
// against, so the generic peekLive→fire→schedule call chain — whose
// per-call spills dominate the ticker-heavy profile — collapses into
// one loop with the common ticker re-arm (next 63 grains, level 0)
// inlined. Dispatch is semantically identical to fire: same counter
// updates, same generation rules, same re-arm-before-handler ordering
// so the handler can Stop() its own ticker. The loop exits as soon as a
// handler schedules onto the heap (or stops the kernel), handing back
// to the caller's general merge loop.
func (k *Kernel) burnWheel(end Time) {
	w := k.wheel
	for len(k.queue) == 0 && !k.stopped {
		if w.cbHead >= w.cbLen {
			// Current bucket spent: drain the next one. Advancing may
			// overshoot end by one bucket; its events stay in cbBuf
			// unfired (the e.at > end check below), exactly as peekLive
			// would leave them.
			if w.slotCount == 0 {
				return
			}
			w.advance(k)
			continue
		}
		e := w.cbBuf[w.cbHead]
		if e.canceled {
			w.cbHead++
			w.count--
			w.dead--
			k.release(e)
			continue
		}
		if e.at > end {
			return
		}
		w.cbHead++
		w.count--
		k.now = e.at
		k.EventCount++
		k.live--
		if tk := e.tk; tk != nil {
			// Re-arm before the handler, exactly as fire does; the slot
			// keeps its generation so tk.ref stays valid (see fire).
			if !tk.stopped {
				at := k.now.Add(tk.period)
				e.at = at
				e.seq = k.seq
				k.seq++
				// Inline level-0 re-arm; peak tracking is skipped because
				// live only returns to its pre-pop value.
				wt := uint64(at) >> wheelGBits
				d := wt - w.cur
				if n := int(w.s0n[wt&wheelMask]); d != 0 && d < wheelSlots && n < wheelSlotCap {
					idx := wt & wheelMask
					s := &w.s0[idx]
					i := n
					for i > 0 && lessEv(e, s[i-1]) {
						s[i] = s[i-1]
						i--
					}
					s[i] = e
					w.s0n[idx] = uint8(n + 1)
					w.occ[0] |= 1 << idx
					w.count++
					w.slotCount++
					k.live++
				} else {
					e.index = -1
					k.schedule(e)
				}
				tk.fn()
			} else {
				e.index = -1
				e.gen++
				e.fn = nil
				e.tk = nil
				e.canceled = false
				k.free = append(k.free, e)
			}
			continue
		}
		e.index = -1
		e.gen++
		fn, fn1, arg := e.fn, e.fn1, e.arg
		e.fn = nil
		e.fn1 = nil
		e.arg = nil
		e.canceled = false
		k.free = append(k.free, e)
		if fn1 != nil {
			fn1(arg)
		} else {
			fn()
		}
	}
}

// maybeSweep bulk-recycles canceled residents once they outnumber live
// ones — the wheel's analog of heap compaction, same thresholds.
func (k *Kernel) maybeSweep() {
	w := k.wheel
	if w != nil && w.count >= compactMinLen && w.dead*2 > w.count {
		w.sweep(k)
		k.statCompactions++
	}
}

// sweep unlinks every canceled resident from slots and the current
// bucket, preserving the relative order of survivors.
func (w *wheel) sweep(k *Kernel) {
	for o := w.occ[0]; o != 0; o &= o - 1 {
		idx := bits.TrailingZeros64(o)
		s := &w.s0[idx]
		n := int(w.s0n[idx])
		j := 0
		for i := 0; i < n; i++ {
			e := s[i]
			if e.canceled {
				w.count--
				w.dead--
				w.slotCount--
				k.release(e)
			} else {
				s[j] = e
				j++
			}
		}
		w.s0n[idx] = uint8(j)
		if j == 0 {
			w.occ[0] &^= 1 << idx
		}
	}
	for l := 1; l < wheelLevels; l++ {
		for o := w.occ[l]; o != 0; o &= o - 1 {
			idx := bits.TrailingZeros64(o)
			var prev *event
			for e := w.hi[l-1][idx]; e != nil; {
				nx := e.next
				if e.canceled {
					if prev == nil {
						w.hi[l-1][idx] = nx
					} else {
						prev.next = nx
					}
					e.next = nil
					w.count--
					w.dead--
					w.slotCount--
					k.release(e)
				} else {
					prev = e
				}
				e = nx
			}
			if w.hi[l-1][idx] == nil {
				w.occ[l] &^= 1 << idx
			}
		}
	}
	j := w.cbHead
	for i := w.cbHead; i < w.cbLen; i++ {
		if e := w.cbBuf[i]; e.canceled {
			w.count--
			w.dead--
			k.release(e)
		} else {
			w.cbBuf[j] = e
			j++
		}
	}
	w.cbLen = j
	w.hiOK = false
}
