package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("Now() = %v, want 30", k.Now())
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestKernelPriority(t *testing.T) {
	k := NewKernel(1)
	var got []string
	k.AtPriority(5, PriorityLate, func() { got = append(got, "late") })
	k.AtPriority(5, PriorityNormal, func() { got = append(got, "normal") })
	k.AtPriority(5, PriorityClock, func() { got = append(got, "clock") })
	k.Run()
	if got[0] != "clock" || got[1] != "normal" || got[2] != "late" {
		t.Fatalf("priority order = %v", got)
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	k.At(10, func() {
		fired = append(fired, k.Now())
		k.After(5, func() { fired = append(fired, k.Now()) })
	})
	k.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestEventCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	ref := k.At(10, func() { fired = true })
	if !ref.Pending() {
		t.Error("event not pending after scheduling")
	}
	if !ref.Cancel() {
		t.Error("Cancel returned false for pending event")
	}
	if ref.Cancel() {
		t.Error("second Cancel returned true")
	}
	k.Run()
	if fired {
		t.Error("canceled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20 only", fired)
	}
	if k.Now() != 25 {
		t.Errorf("Now() = %v, want 25", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("after second RunUntil fired %v", fired)
	}
}

func TestRunForAdvancesEvenWhenIdle(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(500)
	if k.Now() != 500 {
		t.Errorf("Now() = %v, want 500", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := Time(1); i <= 10; i++ {
		k.At(i, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 after Stop", count)
	}
	// A stopped kernel can be resumed.
	k.Run()
	if count != 10 {
		t.Errorf("count = %d after resume, want 10", count)
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	var fires []Time
	tk := k.Every(100, 50, func() { fires = append(fires, k.Now()) })
	k.At(260, func() { tk.Stop() })
	k.Run()
	want := []Time{100, 150, 200, 250}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel(42)
		var out []Time
		var step func()
		step = func() {
			out = append(out, k.Now())
			if len(out) < 100 {
				k.After(Duration(k.RNG().Range(1, 1000)), step)
			}
		}
		k.At(0, step)
		k.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"}, {Second, "1s"}, {5 * Millisecond, "5ms"},
		{250 * Microsecond, "250us"}, {17, "17ns"}, {1500 * Microsecond, "1500us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var s Stats
	for i := 0; i < 50000; i++ {
		s.Add(r.Normal(10, 2))
	}
	if m := s.Mean(); m < 9.9 || m > 10.1 {
		t.Errorf("normal mean = %v, want ~10", m)
	}
	if sd := s.StdDev(); sd < 1.9 || sd > 2.1 {
		t.Errorf("normal stddev = %v, want ~2", sd)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(13)
	var s Stats
	for i := 0; i < 50000; i++ {
		s.Add(r.Exponential(5))
	}
	if m := s.Mean(); m < 4.8 || m > 5.2 {
		t.Errorf("exponential mean = %v, want ~5", m)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8 % 64)
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestStatsWelford(t *testing.T) {
	var s Stats
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if v := s.Variance(); v < 4.57 || v > 4.58 {
		t.Errorf("variance = %v, want ~4.571", v)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty stats should be all-zero")
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(50); p != 50 {
		t.Errorf("p50 = %v, want 50", p)
	}
	if p := s.Percentile(99); p != 99 {
		t.Errorf("p99 = %v, want 99", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Errorf("p100 = %v, want 100", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
}

func TestSamplePercentileMonotone(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		var s Sample
		for i := 0; i < 100; i++ {
			s.Add(r.Float64() * 1000)
		}
		prev := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(99)
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", under, over)
	}
	if h.Count() != 13 {
		t.Errorf("count = %d, want 13", h.Count())
	}
}

func TestTracer(t *testing.T) {
	k := NewKernel(1)
	tr := NewTracer(0)
	k.SetTracer(tr)
	k.At(5, func() { k.Trace("bus", "frame %d sent", 7) })
	k.At(6, func() { k.Trace("cpu", "task done") })
	k.Run()
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].At != 5 || evs[0].Category != "bus" || evs[0].Message != "frame 7 sent" {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if got := tr.ByCategory("cpu"); len(got) != 1 {
		t.Errorf("ByCategory(cpu) = %v", got)
	}
}

func TestTracerCapEvictsOldest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(Time(i), "c", "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Message != "e2" || evs[2].Message != "e4" {
		t.Errorf("events = %+v", evs)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTracerFilter(t *testing.T) {
	tr := NewTracer(0)
	tr.Filter = map[string]bool{"keep": true}
	tr.Record(1, "keep", "a")
	tr.Record(2, "drop", "b")
	if len(tr.Events()) != 1 {
		t.Errorf("filter kept %d events, want 1", len(tr.Events()))
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		var step func()
		n := 0
		step = func() {
			n++
			if n < 1000 {
				k.After(10, step)
			}
		}
		k.At(0, step)
		k.Run()
	}
}
