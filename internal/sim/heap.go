package sim

// Event-queue internals: a monomorphic 4-ary heap over *event plus a
// free-list event pool so steady-state scheduling is allocation-free.
//
// Design notes (see DESIGN.md §"simulation substrate"):
//
//   - The 4-ary layout halves tree depth versus a binary heap and keeps
//     all children of a node adjacent in one cache line of pointers.
//     Sift-up and sift-down are specialized to the (time, priority, seq)
//     comparator: no interface boxing and no indirect Less/Swap calls,
//     which is what container/heap costs on every compare and swap.
//   - Canceled events are removed lazily: dropped when they surface at
//     the heap head, or swept in bulk (compaction) once more than half
//     the queue is dead. Because (time, priority, seq) is a strict total
//     order with a unique seq per event, re-heapifying after a sweep
//     cannot change the pop order.
//   - Fired and canceled events return to a free list. A generation
//     counter on each slot is bumped whenever the slot leaves the queue,
//     so a stale EventRef (cancel-after-fire, cancel of a recycled slot)
//     is detected by a generation mismatch and becomes a safe no-op.

// compactMinLen is the queue length below which lazy head-dropping is
// cheap enough that bulk compaction is not worth the sweep.
const compactMinLen = 64

// lessEv is the kernel's total order: earliest time first, then lowest
// priority value, then FIFO by sequence number. seq is unique, so the
// order is strict and pop order is independent of heap-internal layout.
func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// push inserts ev into the heap, sifting up with the hole technique
// (move parents down into the hole, place ev once).
func (k *Kernel) push(ev *event) {
	q := append(k.queue, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !lessEv(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = int32(i)
		i = p
	}
	q[i] = ev
	ev.index = int32(i)
	k.queue = q
}

// popHead removes and returns the heap minimum. The caller owns the
// returned event (its index is set to -1).
func (k *Kernel) popHead() *event {
	q := k.queue
	h := q[0]
	h.index = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	if n > 0 {
		k.siftDown(0, last)
	}
	return h
}

// siftDown fills the hole at index i with ev, moving smaller children up.
func (k *Kernel) siftDown(i int, ev *event) {
	q := k.queue
	n := len(q)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessEv(q[j], q[m]) {
				m = j
			}
		}
		if !lessEv(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = int32(i)
		i = m
	}
	q[i] = ev
	ev.index = int32(i)
}

// peekHeapLive returns the earliest live heap event without removing it,
// dropping (and recycling) any canceled events that have surfaced at the
// head. It returns nil when no live heap events remain. The wheel-aware
// merge lives in peekLive (wheel.go).
func (k *Kernel) peekHeapLive() *event {
	for len(k.queue) > 0 {
		h := k.queue[0]
		if !h.canceled {
			return h
		}
		k.popHead()
		k.dead--
		k.release(h)
	}
	return nil
}

// alloc returns an event slot: from the pool when possible, then from
// the kernel's inline backing, then the heap.
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		k.statReused++
		return ev
	}
	if int(k.ev0Used) < len(k.ev0) {
		ev := &k.ev0[k.ev0Used]
		k.ev0Used++
		ev.k = k
		ev.index = -1
		return ev
	}
	return &event{k: k, index: -1}
}

// release parks an event slot in the pool. Bumping the generation makes
// every outstanding EventRef to this slot stale.
func (k *Kernel) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.fn1 = nil
	ev.arg = nil
	ev.tk = nil
	ev.next = nil
	ev.canceled = false
	ev.index = -1
	k.free = append(k.free, ev)
}

// maybeCompact sweeps the queue when more than half of it is dead.
func (k *Kernel) maybeCompact() {
	if n := len(k.queue); n >= compactMinLen && k.dead*2 > n {
		k.compact()
	}
}

// compact removes all canceled events in one pass and re-heapifies.
func (k *Kernel) compact() {
	q := k.queue
	live := q[:0]
	for _, ev := range q {
		if ev.canceled {
			k.release(ev)
		} else {
			ev.index = int32(len(live))
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(q); i++ {
		q[i] = nil
	}
	k.queue = live
	k.dead = 0
	k.statCompactions++
	// Floyd heapify: sift down every internal node, bottom-up.
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		k.siftDown(i, live[i])
	}
}
