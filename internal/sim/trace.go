package sim

import (
	"fmt"
	"io"
)

// TraceEvent is one recorded simulation occurrence.
type TraceEvent struct {
	At       Time
	Category string
	Message  string
}

// Tracer records categorized trace events, optionally streaming them to a
// writer. It retains up to Cap events in memory (unbounded if Cap == 0).
type Tracer struct {
	// Cap bounds the in-memory event log; 0 means unbounded.
	Cap int
	// Out, when non-nil, receives each event as a formatted line.
	Out io.Writer
	// Filter, when non-nil, limits recording to the listed categories.
	Filter map[string]bool
	// Sink, when non-nil, receives each event instead of the in-memory
	// log. This is how higher-level observability (internal/obs) taps
	// the existing k.Trace call sites without changing them.
	Sink func(TraceEvent)

	events  []TraceEvent
	dropped int64
}

// NewTracer returns a tracer retaining at most cap events (0 = unbounded).
func NewTracer(cap int) *Tracer { return &Tracer{Cap: cap} }

// Record stores a trace event. Events in filtered-out categories are
// silently ignored.
func (t *Tracer) Record(at Time, category, format string, args ...any) {
	if t.Filter != nil && !t.Filter[category] {
		return
	}
	ev := TraceEvent{At: at, Category: category, Message: fmt.Sprintf(format, args...)}
	if t.Sink != nil {
		t.Sink(ev)
		return
	}
	if t.Cap > 0 && len(t.events) >= t.Cap {
		// Drop oldest: shift is O(n) but traces are diagnostic, not hot.
		copy(t.events, t.events[1:])
		t.events[len(t.events)-1] = ev
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	if t.Out != nil {
		fmt.Fprintf(t.Out, "%12v %-12s %s\n", ev.At, ev.Category, ev.Message)
	}
}

// Events returns the retained events in order.
func (t *Tracer) Events() []TraceEvent { return t.events }

// Dropped returns how many events were evicted due to the cap.
func (t *Tracer) Dropped() int64 { return t.dropped }

// ByCategory returns the retained events in the given category.
func (t *Tracer) ByCategory(category string) []TraceEvent {
	var out []TraceEvent
	for _, ev := range t.events {
		if ev.Category == category {
			out = append(out, ev)
		}
	}
	return out
}

// Dump writes all retained events to w.
func (t *Tracer) Dump(w io.Writer) {
	for _, ev := range t.events {
		fmt.Fprintf(w, "%12v %-12s %s\n", ev.At, ev.Category, ev.Message)
	}
}
