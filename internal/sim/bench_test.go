package sim

// Micro-benchmarks for the kernel hot path. These guard the 4-ary-heap +
// event-pool rewrite: schedule/fire should be allocation-free in steady
// state (the kernel is warmed before the timer starts), and the other
// three cover the cancel-heavy, ticker-heavy and mixed regimes that the
// bus simulators and platform scheduler actually produce.
//
//	go test -run '^$' -bench 'Schedule|Cancel|Ticker|Mixed' -benchmem ./internal/sim/

import "testing"

// warmKernel returns a kernel whose event pool and queue backing array
// have been warmed so that steady-state scheduling does not allocate.
func warmKernel(prefill int) *Kernel {
	k := NewKernel(1)
	refs := make([]EventRef, 0, prefill)
	for i := 0; i < prefill; i++ {
		refs = append(refs, k.At(Time(i+1), func() {}))
	}
	for _, r := range refs {
		r.Cancel()
	}
	k.Run() // drain; every slot returns to the pool
	return k
}

// BenchmarkScheduleFire measures the pure schedule→fire cycle: a chain of
// events where each handler schedules its successor. Steady state must be
// zero allocs/op.
func BenchmarkScheduleFire(b *testing.B) {
	k := warmKernel(64)
	var step func()
	n := 0
	step = func() {
		n++
		if n < 1000 {
			k.After(10, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = 0
		k.At(k.Now(), step)
		k.Run()
	}
	b.ReportMetric(1000, "events/op")
}

// BenchmarkCancelHeavy schedules a batch and cancels 90% of it before
// running — the pattern of retransmit timers and watchdogs that are
// almost always disarmed. Exercises lazy removal + compaction.
func BenchmarkCancelHeavy(b *testing.B) {
	const batch = 1000
	k := warmKernel(batch + 8)
	refs := make([]EventRef, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		for j := 0; j < batch; j++ {
			refs[j] = k.At(base.Add(Duration(j+1)), func() {})
		}
		for j := 0; j < batch; j++ {
			if j%10 != 0 {
				refs[j].Cancel()
			}
		}
		k.Run()
	}
}

// BenchmarkTickerHeavy drives 32 periodic tickers — the clock-driven
// dispatch pattern of the TT scheduler and the bus simulators. The ticker
// re-arm fast path makes this allocation-free in steady state.
func BenchmarkTickerHeavy(b *testing.B) {
	k := warmKernel(64)
	tickers := make([]*Ticker, 32)
	for i := range tickers {
		tickers[i] = k.Every(k.Now().Add(Duration(i+1)), Duration(50+i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(10_000)
	}
	b.StopTimer()
	for _, t := range tickers {
		t.Stop()
	}
}

// BenchmarkTickerHeavyHeapOnly is BenchmarkTickerHeavy with the timing
// wheel disabled — the same load on the pure 4-ary heap. The ratio of
// the two is the wheel's measured speedup on this machine.
func BenchmarkTickerHeavyHeapOnly(b *testing.B) {
	k := NewKernel(1)
	k.DisableWheel()
	tickers := make([]*Ticker, 32)
	for i := range tickers {
		tickers[i] = k.Every(k.Now().Add(Duration(i+1)), Duration(50+i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(10_000)
	}
	b.StopTimer()
	for _, t := range tickers {
		t.Stop()
	}
}

// BenchmarkTickerHeavy1024 scales the periodic regime to 1024 tickers —
// the density of a consolidated full-vehicle platform (every control
// loop, bus slot and heartbeat on one kernel). Periods of 500–1523ns
// re-arm into level-1 wheel slots and cascade back down each revolution;
// the spread keeps post-cascade level-0 density within the inline slot
// capacity. A heap-only kernel pays O(log 1024) per re-arm here, the
// wheel O(1).
func BenchmarkTickerHeavy1024(b *testing.B) {
	k := warmKernel(2048)
	tickers := make([]*Ticker, 1024)
	for i := range tickers {
		tickers[i] = k.Every(k.Now().Add(Duration(i+1)), Duration(500+i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(10_000)
	}
	b.StopTimer()
	for _, t := range tickers {
		t.Stop()
	}
}

// BenchmarkWheelCascade pins the wheel's worst steady-state case: every
// period is at least one full level-1 slot span (256ns at the 4ns
// grain), so no re-arm stays in level 0 — each tick inserts one level
// up and is cascaded back down before it can fire.
func BenchmarkWheelCascade(b *testing.B) {
	k := warmKernel(64)
	tickers := make([]*Ticker, 32)
	for i := range tickers {
		tickers[i] = k.Every(k.Now().Add(Duration(i+1)), Duration(256+4*i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(10_000)
	}
	b.StopTimer()
	for _, t := range tickers {
		t.Stop()
	}
}

// BenchmarkMixed interleaves chained one-shots, cancels and tickers in
// the proportions a full-vehicle simulation produces.
func BenchmarkMixed(b *testing.B) {
	k := warmKernel(256)
	for i := 0; i < 8; i++ {
		k.Every(k.Now().Add(Duration(i+1)), Duration(97+i), func() {})
	}
	var pending []EventRef
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		pending = pending[:0]
		for j := 0; j < 200; j++ {
			d := Duration(k.RNG().Range(1, 500))
			pending = append(pending, k.At(base.Add(d), func() {}))
		}
		for j, r := range pending {
			if j%3 != 0 {
				r.Cancel()
			}
		}
		k.RunFor(600)
	}
}

// TestScheduleFireZeroAllocSteadyState is the hard form of
// BenchmarkScheduleFire's allocs/op report: with tracing disabled (the
// default), a warmed kernel's schedule→fire cycle must not allocate.
// This pins the contract the observability hooks rely on — an
// uninstrumented kernel pays only nil checks, never allocations.
func TestScheduleFireZeroAllocSteadyState(t *testing.T) {
	k := warmKernel(64)
	var step func()
	n := 0
	step = func() {
		n++
		if n < 100 {
			k.After(10, step)
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		n = 0
		k.At(k.Now(), step)
		k.Run()
	}); allocs != 0 {
		t.Errorf("schedule/fire steady state allocs/op = %g, want 0", allocs)
	}
}
