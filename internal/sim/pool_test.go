package sim

// Tests for the event pool, generation-checked EventRefs, lazy removal
// of canceled events, and the kernel observability counters added with
// the 4-ary-heap rewrite.

import (
	"testing"
	"testing/quick"
)

func TestCancelAfterFireIsInert(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	ref := k.At(10, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if ref.Cancel() {
		t.Error("Cancel returned true for already-fired event")
	}
	if ref.Pending() {
		t.Error("fired event still reports Pending")
	}
	// The slot is now pooled. A new event must reuse it; the stale ref
	// must not be able to cancel the new occupant.
	other := false
	k.At(20, func() { other = true })
	if ref.Cancel() {
		t.Error("stale ref canceled a recycled slot")
	}
	k.Run()
	if !other {
		t.Error("recycled event did not fire (killed by stale ref?)")
	}
}

func TestDoubleCancel(t *testing.T) {
	k := NewKernel(1)
	ref := k.At(10, func() { t.Error("canceled event fired") })
	if !ref.Cancel() {
		t.Fatal("first Cancel failed")
	}
	if ref.Cancel() {
		t.Error("second Cancel returned true")
	}
	k.Run()
	if ref.Cancel() {
		t.Error("post-run Cancel returned true")
	}
}

func TestCancelOfRecycledSlot(t *testing.T) {
	k := NewKernel(1)
	// Schedule + cancel + drain so the slot round-trips the pool.
	stale := k.At(5, func() {})
	stale.Cancel()
	k.Run()
	// Reuse the slot for a live event.
	fired := false
	fresh := k.At(10, func() { fired = true })
	if stale.Pending() {
		t.Error("stale ref reports recycled slot as pending")
	}
	if stale.Cancel() {
		t.Error("stale ref canceled recycled slot")
	}
	if !fresh.Pending() {
		t.Error("fresh ref not pending")
	}
	k.Run()
	if !fired {
		t.Error("recycled event did not fire")
	}
}

func TestPoolReuseIsObservable(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 10; i++ {
		k.At(Time(i+1), func() {})
	}
	k.Run()
	st := k.Stats()
	if st.Fired != 10 {
		t.Errorf("Fired = %d, want 10", st.Fired)
	}
	if st.PoolFree == 0 {
		t.Error("no slots parked in pool after drain")
	}
	for i := 0; i < 10; i++ {
		k.At(k.Now().Add(Duration(i+1)), func() {})
	}
	if got := k.Stats().Reused; got != 10 {
		t.Errorf("Reused = %d, want 10 (pool not hit)", got)
	}
	k.Run()
}

func TestQueueLenCountsOnlyLive(t *testing.T) {
	k := NewKernel(1)
	var refs []EventRef
	for i := 0; i < 10; i++ {
		refs = append(refs, k.At(Time(i+1), func() {}))
	}
	if k.QueueLen() != 10 {
		t.Fatalf("QueueLen = %d, want 10", k.QueueLen())
	}
	for i := 0; i < 4; i++ {
		refs[i].Cancel()
	}
	if k.QueueLen() != 6 {
		t.Errorf("QueueLen = %d after 4 cancels, want 6", k.QueueLen())
	}
	st := k.Stats()
	if st.QueueLive != 6 || st.QueueDead != 4 || st.Canceled != 4 {
		t.Errorf("stats = %+v, want live=6 dead=4 canceled=4", st)
	}
	k.Run()
	if k.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after drain, want 0", k.QueueLen())
	}
}

func TestStopOutsideRunIsNoOp(t *testing.T) {
	k := NewKernel(1)
	k.Stop() // documented no-op: kernel is not running
	count := 0
	for i := 1; i <= 5; i++ {
		k.At(Time(i), func() { count++ })
	}
	k.Run()
	if count != 5 {
		t.Errorf("pre-Run Stop suppressed events: count = %d, want 5", count)
	}
	// Stop after Run (idle again) must not affect the next Run either.
	k.Stop()
	k.At(k.Now().Add(1), func() { count++ })
	k.Run()
	if count != 6 {
		t.Errorf("post-Run Stop suppressed events: count = %d, want 6", count)
	}
}

func TestRunUntilSkipsCanceledHeadBeyondEnd(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	// Canceled event sits at the head between end and the live events.
	doomed := k.At(15, func() { fired = append(fired, 15) })
	k.At(10, func() { fired = append(fired, 10) })
	k.At(30, func() { fired = append(fired, 30) })
	doomed.Cancel()
	k.RunUntil(20)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10] (canceled head must not pull events past end)", fired)
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %v, want 20", k.Now())
	}
	k.RunUntil(40)
	if len(fired) != 2 || fired[1] != 30 {
		t.Errorf("fired = %v, want [10 30]", fired)
	}
}

func TestRunUntilCanceledEventIsNotTimeBarrier(t *testing.T) {
	k := NewKernel(1)
	fired := false
	// Only event is canceled and before end: the clock must still reach end.
	ref := k.At(5, func() { fired = true })
	ref.Cancel()
	k.RunUntil(100)
	if fired {
		t.Error("canceled event fired")
	}
	if k.Now() != 100 {
		t.Errorf("Now() = %v, want 100", k.Now())
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	var refs []EventRef
	// Enough events to cross the compaction threshold, cancel >50%.
	for i := 0; i < 400; i++ {
		at := Time(1 + (i*7919)%4000) // scattered, collisions resolved by seq
		refs = append(refs, k.At(at, func() { got = append(got, k.Now()) }))
	}
	for i, r := range refs {
		if i%4 != 0 {
			r.Cancel()
		}
	}
	if k.Stats().Compactions == 0 {
		t.Error("expected at least one compaction after 75% cancels")
	}
	k.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("order violated at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

func TestTickerRearmReusesSlotAndRefStaysValid(t *testing.T) {
	k := NewKernel(1)
	fires := 0
	tk := k.Every(10, 10, func() { fires++ })
	k.RunUntil(95)
	if fires != 9 {
		t.Fatalf("fires = %d, want 9", fires)
	}
	// Steady-state ticking must not grow the pool or allocate new slots:
	// the single ticker slot is re-armed in place.
	st := k.Stats()
	if st.PoolFree > 1 {
		t.Errorf("PoolFree = %d, want ≤1 (ticker should re-arm its own slot)", st.PoolFree)
	}
	tk.Stop()
	k.RunUntil(200)
	if fires != 9 {
		t.Errorf("ticker fired after Stop: fires = %d", fires)
	}
}

func TestTickerStopFromOtherEventWithPooledKernel(t *testing.T) {
	// A ticker whose pending tick is canceled by another event must stay
	// stopped even though its slot is recycled for unrelated events.
	k := NewKernel(1)
	fires := 0
	tk := k.Every(10, 10, func() { fires++ })
	k.At(35, func() { tk.Stop() })
	churn := 0
	k.Every(1, 3, func() {
		churn++
		if churn > 100 {
			k.Stop()
		}
	})
	k.Run()
	if fires != 3 {
		t.Errorf("fires = %d, want 3 (ticks at 10,20,30)", fires)
	}
}

// TestPooledKernelMatchesFreshKernel is the aliasing property test: the
// same randomized event program must produce an identical firing trace
// on a cold kernel (pool empty, all slots freshly allocated) and on a
// warmed kernel (every slot served from the pool), across seeds.
func TestPooledKernelMatchesFreshKernel(t *testing.T) {
	trace := func(k *Kernel, seed uint64) []Duration {
		r := NewRNG(seed)
		var out []Duration
		var refs []EventRef
		base := k.Now()
		for i := 0; i < 300; i++ {
			at := base.Add(Duration(r.Range(1, 2000)))
			refs = append(refs, k.At(at, func() { out = append(out, k.Now().Sub(base)) }))
		}
		for _, ref := range refs {
			if r.Intn(3) == 0 {
				ref.Cancel()
			}
		}
		k.Run()
		return out
	}
	for seed := uint64(1); seed <= 10; seed++ {
		cold := NewKernel(seed)
		coldTrace := trace(cold, seed)
		warm := NewKernel(seed)
		_ = trace(warm, seed^0xdeadbeef) // warm the pool with a different program
		warmTrace := trace(warm, seed)
		if len(coldTrace) != len(warmTrace) {
			t.Fatalf("seed %d: cold fired %d, warm fired %d", seed, len(coldTrace), len(warmTrace))
		}
		for i := range coldTrace {
			if coldTrace[i] != warmTrace[i] {
				t.Fatalf("seed %d: traces diverge at %d: %v vs %v", seed, i, coldTrace[i], warmTrace[i])
			}
		}
	}
}

func TestPendingGenerationProperty(t *testing.T) {
	// For any schedule/cancel/run interleaving, a ref that was canceled
	// or has fired never reports Pending.
	err := quick.Check(func(seed uint64) bool {
		k := NewKernel(seed)
		r := NewRNG(seed)
		type tracked struct {
			ref      EventRef
			canceled bool
		}
		var refs []*tracked
		for i := 0; i < 50; i++ {
			tr := &tracked{}
			tr.ref = k.At(Time(r.Range(1, 100)), func() {})
			refs = append(refs, tr)
		}
		for _, tr := range refs {
			if r.Intn(2) == 0 {
				tr.ref.Cancel()
				tr.canceled = true
			}
		}
		k.Run()
		for _, tr := range refs {
			if tr.ref.Pending() {
				return false // everything fired or was canceled
			}
			if tr.ref.Cancel() {
				return false // nothing is still cancelable
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
