package sim

import "testing"

func TestAfterPriorityAndNegativeDelays(t *testing.T) {
	k := NewKernel(1)
	var got []string
	k.At(5, func() {
		k.AfterPriority(0, PriorityLate, func() { got = append(got, "late") })
		k.AfterPriority(0, PriorityClock, func() { got = append(got, "clock") })
	})
	k.Run()
	if len(got) != 2 || got[0] != "clock" || got[1] != "late" {
		t.Errorf("got = %v", got)
	}
	for _, fn := range []func(){
		func() { k.After(-1, func() {}) },
		func() { k.AfterPriority(-1, PriorityNormal, func() {}) },
		func() { k.At(0, nil) },
		func() { k.Every(0, 0, func() {}) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestReentrantRunPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		k.Run()
	})
	k.Run()
}

func TestCancelInsideHandler(t *testing.T) {
	k := NewKernel(1)
	fired := false
	var ref EventRef
	k.At(1, func() { ref.Cancel() })
	ref = k.At(2, func() { fired = true })
	k.Run()
	if fired {
		t.Error("event fired after in-flight cancel")
	}
}

func TestSplitIndependentStreams(t *testing.T) {
	// Drawing from a split stream must not perturb the parent.
	a := NewRNG(5)
	b := NewRNG(5)
	child := a.Split()
	_ = b.Split()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("child draws perturbed the parent stream")
		}
	}
}

func TestRangeAndDurationRangeEdges(t *testing.T) {
	r := NewRNG(1)
	if v := r.Range(7, 7); v != 7 {
		t.Errorf("Range(7,7) = %d", v)
	}
	if d := r.DurationRange(5, 5); d != 5 {
		t.Errorf("DurationRange(5,5) = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Range(2,1) did not panic")
		}
	}()
	r.Range(2, 1)
}

func TestNormalDurationClamps(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if d := r.NormalDuration(0, Second); d < 0 {
			t.Fatalf("negative duration %v", d)
		}
	}
}

func TestStatsDurationAccessors(t *testing.T) {
	var s Stats
	s.AddDuration(10 * Millisecond)
	s.AddDuration(20 * Millisecond)
	if s.MeanDuration() != 15*Millisecond {
		t.Errorf("mean = %v", s.MeanDuration())
	}
	if s.MinDuration() != 10*Millisecond || s.MaxDuration() != 20*Millisecond {
		t.Errorf("min/max = %v/%v", s.MinDuration(), s.MaxDuration())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 50; i++ {
		h.Add(float64(i % 10))
	}
	if s := h.String(); s == "" {
		t.Error("empty histogram render")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds accepted")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestTracerDumpAndTrace(t *testing.T) {
	k := NewKernel(1)
	// Trace without tracer is a no-op.
	k.Trace("x", "ignored")
	tr := NewTracer(0)
	k.SetTracer(tr)
	if k.Tracer() != tr {
		t.Error("Tracer() mismatch")
	}
	k.At(3, func() { k.Trace("cat", "val=%d", 42) })
	k.Run()
	var sb stringsBuilder
	tr.Dump(&sb)
	if len(sb.data) == 0 {
		t.Error("Dump wrote nothing")
	}
}

type stringsBuilder struct{ data []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}
