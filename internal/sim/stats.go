package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats accumulates streaming summary statistics (Welford's algorithm)
// without retaining samples. The zero value is ready to use.
type Stats struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records a sample.
func (s *Stats) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration sample in nanoseconds.
func (s *Stats) AddDuration(d Duration) { s.Add(float64(d)) }

// Count returns the number of samples recorded.
func (s *Stats) Count() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Stats) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the unbiased sample variance.
func (s *Stats) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Stats) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 with no samples.
func (s *Stats) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// MeanDuration returns the mean as a Duration.
func (s *Stats) MeanDuration() Duration { return Duration(s.Mean()) }

// MaxDuration returns the maximum as a Duration.
func (s *Stats) MaxDuration() Duration { return Duration(s.Max()) }

// MinDuration returns the minimum as a Duration.
func (s *Stats) MinDuration() Duration { return Duration(s.Min()) }

func (s *Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Sample retains every sample, supporting exact percentiles.
// Use for bounded-length experiments; prefer Stats for long runs.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records a sample.
func (s *Sample) Add(x float64) {
	if s.xs == nil {
		// Skip the 1→2→4→… grow chain: hot-path samples (per-job
		// response times) typically accumulate dozens of entries.
		s.xs = make([]float64, 0, 64)
	}
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration sample in nanoseconds.
func (s *Sample) AddDuration(d Duration) { s.Add(float64(d)) }

// Count returns the number of samples.
func (s *Sample) Count() int { return len(s.xs) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using nearest-rank,
// or 0 with no samples.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.xs))))
	return s.xs[rank-1]
}

// PercentileDuration returns a percentile as a Duration.
func (s *Sample) PercentileDuration(p float64) Duration {
	return Duration(s.Percentile(p))
}

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest sample, or 0 with no samples.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Jitter returns max-min, the simple peak-to-peak jitter measure used by
// the runtime monitor, as a Duration.
func (s *Sample) Jitter() Duration { return Duration(s.Max() - s.Min()) }

// Histogram counts samples in fixed-width buckets over [lo, hi); samples
// outside the range are counted in under/over.
type Histogram struct {
	lo, hi      float64
	buckets     []int64
	under, over int64
	n           int64
}

// NewHistogram creates a histogram with nbuckets buckets over [lo, hi).
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if hi <= lo || nbuckets <= 0 {
		panic("sim: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, nbuckets)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) { // guard float edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the total number of samples including out-of-range ones.
func (h *Histogram) Count() int64 { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// OutOfRange returns the counts below lo and at-or-above hi.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// String renders a compact ASCII sparkline of the distribution.
func (h *Histogram) String() string {
	marks := []rune(" .:-=+*#%@")
	var peak int64 = 1
	for _, b := range h.buckets {
		if b > peak {
			peak = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%.3g..%.3g) ", h.lo, h.hi)
	for _, b := range h.buckets {
		idx := int(float64(b) / float64(peak) * float64(len(marks)-1))
		sb.WriteRune(marks[idx])
	}
	fmt.Fprintf(&sb, " n=%d under=%d over=%d", h.n, h.under, h.over)
	return sb.String()
}
