package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded via splitmix64). It is not cryptographically secure;
// it exists to make simulations reproducible across platforms and Go
// versions, which math/rand/v2's unspecified stream would not guarantee.
type RNG struct {
	s [4]uint64
	// cached second normal variate from Box-Muller
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.seed(seed)
	return r
}

// seed (re)initializes the state from seed via splitmix64. Factored out
// of NewRNG so a Kernel can embed its RNG by value and seed it in place
// without a separate allocation.
func (r *RNG) seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	r.haveGauss = false
}

// Split returns a new generator whose stream is independent of r's,
// suitable for giving each subsystem its own stream so that adding draws
// in one subsystem does not shift the sequence seen by another.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via Box-Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.haveGauss {
		r.haveGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return mean + stddev*u*f
}

// Exponential returns an exponentially distributed value with the given
// mean (i.e. rate 1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// DurationRange returns a uniform duration in [lo, hi].
func (r *RNG) DurationRange(lo, hi Duration) Duration {
	if hi < lo {
		panic("sim: DurationRange with hi < lo")
	}
	if hi == lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + Duration(r.Uint64()%span)
}

// NormalDuration returns a normally distributed duration clamped to be
// non-negative.
func (r *RNG) NormalDuration(mean, stddev Duration) Duration {
	d := Duration(r.Normal(float64(mean), float64(stddev)))
	if d < 0 {
		return 0
	}
	return d
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s deterministically in place.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
