package sim

// Tests for the hierarchical timing wheel (wheel.go). The load-bearing
// property is backend equivalence: a wheel-backed kernel and a heap-only
// kernel driving the same event program must produce the identical fire
// trace — same times, same order, same invariant statistics — because
// the wheel is a pure queue-implementation detail. The differential
// tests below prove it on mixed workloads that exercise every wheel
// mechanism (level-0 slots, cascades, lapped slots, slot overflow,
// cancellation, sweeps); the white-box tests pin the mechanisms
// individually.

import "testing"

// fireRec is one entry of a program's fire trace.
type fireRec struct {
	at Time
	id int
}

// runDifferentialProgram drives k through a mixed workload — tickers
// whose periods land in level-0, level-1 and level-2 wheel slots,
// randomized one-shot bursts with heavy cancellation, same-instant
// priority collisions — and returns the complete fire trace. All
// scheduling decisions derive from k's own RNG, so two kernels with the
// same seed run the same program as long as their fire orders agree
// (which is exactly what the caller asserts).
func runDifferentialProgram(k *Kernel) []fireRec {
	var trace []fireRec
	nextID := 0
	rng := k.RNG()

	// Periodic load across wheel levels at 4ns grain: periods below
	// 256ns re-arm within level 0, 256ns–16µs land in level 1–2, and
	// 70µs cascades from level 2 on every tick.
	periods := []Duration{7, 50, 63, 64, 100, 257, 1000, 4097, 70_000}
	tickers := make([]*Ticker, 0, len(periods))
	for i, p := range periods {
		id := nextID
		nextID++
		tickers = append(tickers, k.Every(k.Now().Add(Duration(i)), p, func() {
			trace = append(trace, fireRec{k.Now(), id})
		}))
	}

	// A driver ticker emits one-shot bursts with mixed priorities and
	// cancels ~40% of each burst before it fires. Cancels of
	// already-fired events are exercised too (the refs go stale).
	var pending []EventRef
	driverID := nextID
	nextID++
	driver := k.Every(0, 500, func() {
		trace = append(trace, fireRec{k.Now(), driverID})
		for j := 0; j < 20; j++ {
			id := nextID
			nextID++
			d := Duration(rng.Range(1, 3000))
			prio := PriorityNormal
			switch j % 5 {
			case 1:
				prio = PriorityClock
			case 3:
				prio = PriorityLate
			}
			pending = append(pending, k.AtPriority(k.Now().Add(d), prio, func() {
				trace = append(trace, fireRec{k.Now(), id})
			}))
		}
		for j := range pending {
			if rng.Bool(0.4) {
				pending[j].Cancel()
			}
		}
		pending = pending[:0]
	})

	k.RunFor(20_000)
	for _, t := range tickers {
		t.Stop()
	}
	driver.Stop()
	k.Run()
	return trace
}

// TestWheelHeapDifferential: the full trace of a mixed program is
// byte-identical between the wheel-backed and heap-only backends, and so
// are the backend-invariant kernel statistics.
func TestWheelHeapDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xDAC2017} {
		kw := NewKernel(seed)
		kh := NewKernel(seed)
		kh.DisableWheel()
		tw := runDifferentialProgram(kw)
		th := runDifferentialProgram(kh)
		if len(tw) != len(th) {
			t.Fatalf("seed %d: wheel fired %d events, heap-only %d", seed, len(tw), len(th))
		}
		for i := range tw {
			if tw[i] != th[i] {
				t.Fatalf("seed %d: fire %d diverges: wheel %+v, heap-only %+v",
					seed, i, tw[i], th[i])
			}
		}
		sw, sh := kw.Stats(), kh.Stats()
		if sw.Fired != sh.Fired || sw.Canceled != sh.Canceled ||
			sw.QueueLive != sh.QueueLive || sw.PeakQueue != sh.PeakQueue {
			t.Errorf("seed %d: invariant stats diverge: wheel %+v, heap-only %+v", seed, sw, sh)
		}
		if kw.wheel == nil {
			t.Fatalf("seed %d: wheel never engaged", seed)
		}
		if kw.wheel.statCascades == 0 {
			t.Errorf("seed %d: no cascades exercised", seed)
		}
	}
}

// TestTickerStopOnCascadeBoundary: a ticker whose period is exactly one
// level-1 slot span (64 grains) re-arms into a level-1 slot on every
// fire, so each tick crosses a cascade boundary. Stopping it from its
// own handler must cancel the wheel-resident re-armed event.
func TestTickerStopOnCascadeBoundary(t *testing.T) {
	k := NewKernel(1)
	// Parked far event keeps the kernel's live count at wheel-engaging
	// depth without ever firing inside the horizon.
	park := k.At(1_000_000, func() { t.Error("parked event fired") })
	companion := k.Every(0, 64, func() {})
	fires := 0
	var tk *Ticker
	tk = k.Every(0, 256, func() { // 64 grains: every re-arm lands at level 1
		fires++
		if fires == 5 {
			tk.Stop()
		}
	})
	k.RunFor(10_000)
	if fires != 5 {
		t.Errorf("ticker fired %d times after Stop at 5, want 5", fires)
	}
	companion.Stop()
	park.Cancel()
	k.Run()
	if fires != 5 {
		t.Errorf("stopped ticker fired again: %d", fires)
	}
	if k.wheel == nil || k.wheel.statCascades == 0 {
		t.Fatal("cascade boundary not exercised")
	}
	if got := k.QueueLen(); got != 0 {
		t.Errorf("QueueLen after drain = %d, want 0", got)
	}
}

// TestCascadeBoundaryTickMatchesHeapOnly: tick times of boundary-period
// tickers (64 and 65 grains — one exactly on the level-1 boundary, one
// just past it) match the heap-only backend exactly.
func TestCascadeBoundaryTickMatchesHeapOnly(t *testing.T) {
	program := func(k *Kernel) []Time {
		var ticks []Time
		park := k.At(1_000_000, func() {})
		a := k.Every(0, 256, func() { ticks = append(ticks, k.Now()) })
		b := k.Every(1, 260, func() { ticks = append(ticks, k.Now()) })
		k.RunFor(50_000)
		a.Stop()
		b.Stop()
		park.Cancel()
		k.Run()
		return ticks
	}
	kw := NewKernel(3)
	kh := NewKernel(3)
	kh.DisableWheel()
	tw, th := program(kw), program(kh)
	if len(tw) != len(th) {
		t.Fatalf("tick counts differ: wheel %d, heap-only %d", len(tw), len(th))
	}
	for i := range tw {
		if tw[i] != th[i] {
			t.Fatalf("tick %d diverges: wheel %v, heap-only %v", i, tw[i], th[i])
		}
	}
	if kw.wheel == nil || kw.wheel.statCascades == 0 {
		t.Fatal("cascade boundary not exercised")
	}
}

// TestCancelWheelResident: an EventRef to a wheel-resident event
// cancels it exactly once, the handler never runs, and the tombstone is
// recycled when its slot drains.
func TestCancelWheelResident(t *testing.T) {
	k := NewKernel(1)
	p1 := k.At(900_000, func() { t.Error("parked event 1 fired") })
	p2 := k.At(900_001, func() { t.Error("parked event 2 fired") })
	fired := false
	r := k.After(512, func() { fired = true })
	if r.ev.index != wheelIdx {
		t.Fatalf("event index = %d, want wheel-resident (%d)", r.ev.index, wheelIdx)
	}
	if !r.Pending() {
		t.Error("wheel-resident event not Pending")
	}
	if !r.Cancel() {
		t.Error("Cancel of wheel-resident event returned false")
	}
	if r.Pending() {
		t.Error("canceled event still Pending")
	}
	if r.Cancel() {
		t.Error("double Cancel returned true")
	}
	if got := k.QueueLen(); got != 2 {
		t.Errorf("QueueLen after cancel = %d, want 2", got)
	}
	k.RunFor(2_000)
	if fired {
		t.Error("canceled wheel-resident event fired")
	}
	p1.Cancel()
	p2.Cancel()
	k.Run()
	if got := k.Stats().QueueDead; got != 0 {
		t.Errorf("QueueDead after drain = %d, want 0", got)
	}
}

// TestWheelSweepRecyclesCanceled: cancel-heavy wheel occupancy triggers
// the bulk sweep (the wheel analog of heap compaction) and the
// surviving events still fire in order.
func TestWheelSweepRecyclesCanceled(t *testing.T) {
	k := NewKernel(1)
	const n = 200
	refs := make([]EventRef, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		refs[i] = k.At(Time(4*(i+1)), func() { fired = append(fired, i) })
	}
	before := k.Stats().Compactions
	for i := range refs {
		if i%10 != 0 {
			refs[i].Cancel()
		}
	}
	if k.wheel == nil {
		t.Fatal("wheel never engaged")
	}
	if k.Stats().Compactions == before {
		t.Error("cancel-heavy wheel occupancy did not trigger a sweep")
	}
	k.Run()
	if len(fired) != n/10 {
		t.Fatalf("fired %d survivors, want %d", len(fired), n/10)
	}
	for j := 1; j < len(fired); j++ {
		if fired[j] <= fired[j-1] {
			t.Fatalf("survivors fired out of order: %v", fired)
		}
	}
}

// TestPooledKernelWheelEpochs: one kernel reused across many
// run-to-empty epochs behaves identically in every epoch, with the
// event pool (not the allocator) serving the steady state.
func TestPooledKernelWheelEpochs(t *testing.T) {
	k := NewKernel(7)
	var totals []int
	for epoch := 0; epoch < 5; epoch++ {
		fired := 0
		base := k.Now()
		for j := 0; j < 100; j++ {
			k.At(base.Add(Duration(j%37+1)), func() { fired++ })
		}
		tk := k.Every(base.Add(1), 50, func() { fired++ })
		k.RunFor(5_000)
		tk.Stop()
		k.Run()
		if got := k.QueueLen(); got != 0 {
			t.Fatalf("epoch %d: QueueLen = %d, want 0", epoch, got)
		}
		if w := k.wheel; w == nil || w.count != 0 || w.slotCount != 0 {
			t.Fatalf("epoch %d: wheel not drained: %+v", epoch, k.wheel)
		}
		totals = append(totals, fired)
	}
	for e := 1; e < len(totals); e++ {
		if totals[e] != totals[0] {
			t.Fatalf("epoch fire counts diverge: %v", totals)
		}
	}
	st := k.Stats()
	if st.Reused == 0 {
		t.Error("pooled kernel never reused an event slot across epochs")
	}
}

// TestWheelSlotOverflowSpillsToHeap: more same-slot events than
// wheelSlotCap spill to the heap and still fire in FIFO order.
func TestWheelSlotOverflowSpillsToHeap(t *testing.T) {
	k := NewKernel(1)
	p := k.At(900_000, func() {})
	p2 := k.At(900_001, func() {})
	var fired []int
	const n = wheelSlotCap + 5
	for i := 0; i < n; i++ {
		i := i
		// Same instant, same grain: the slot fills at wheelSlotCap and
		// the rest overflow to the heap.
		k.At(512, func() { fired = append(fired, i) })
	}
	k.RunFor(1_000)
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("overflowed same-instant events fired out of FIFO order: %v", fired)
		}
	}
	p.Cancel()
	p2.Cancel()
	k.Run()
}

// TestHeapOnlyDefault: the package-level backend switch makes NewKernel
// start heap-only, and kernels created while it is unset keep the wheel.
func TestHeapOnlyDefault(t *testing.T) {
	HeapOnlyDefault = true
	kh := NewKernel(1)
	HeapOnlyDefault = false
	kw := NewKernel(1)
	program := func(k *Kernel) {
		// Two parked events keep live ≥ wheelMinLive at every re-arm.
		park := k.At(1_000_000, func() {})
		park2 := k.At(1_000_001, func() {})
		tk := k.Every(0, 64, func() {})
		k.RunFor(10_000)
		tk.Stop()
		park.Cancel()
		park2.Cancel()
		k.Run()
	}
	program(kh)
	program(kw)
	if kh.wheel != nil {
		t.Error("HeapOnlyDefault kernel created a wheel")
	}
	if kw.wheel == nil {
		t.Error("default kernel did not create a wheel")
	}
}
