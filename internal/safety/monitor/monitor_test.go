package monitor

import (
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func newNode(t *testing.T, mode platform.Mode) *platform.Node {
	t.Helper()
	k := sim.NewKernel(1)
	return platform.NewNode(k, model.ECU{Name: "cpm", CPUMHz: 100, MemoryKB: 1024,
		HasMMU: true, OS: model.OSRTOS}, mode, ms(1)/2)
}

func daSpec(jitter sim.Duration) model.App {
	return model.App{Name: "ctl", Kind: model.Deterministic, ASIL: model.ASILC,
		Period: ms(10), WCET: ms(2), Deadline: ms(10), Jitter: jitter, MemoryKB: 128}
}

func TestCleanRunNoDetections(t *testing.T) {
	n := newNode(t, platform.ModeIsolated)
	inst, _ := n.Install(daSpec(ms(1)), platform.Behavior{})
	m := New(n, DefaultConfig())
	if err := m.Watch("ctl"); err != nil {
		t.Fatal(err)
	}
	inst.Start()
	n.Kernel().RunUntil(sim.Time(ms(500)))
	if len(m.Detections) != 0 {
		t.Errorf("detections on clean run: %+v", m.Detections)
	}
	if m.EventsSeen != 50 {
		t.Errorf("events = %d, want 50", m.EventsSeen)
	}
	if m.OverheadFraction() <= 0 || m.OverheadFraction() > 0.001 {
		t.Errorf("overhead = %v", m.OverheadFraction())
	}
	rec, err := m.Certify("ctl")
	if err != nil || rec.Activations != 50 || rec.Misses != 0 || rec.Detections != 0 {
		t.Errorf("certify = %+v %v", rec, err)
	}
	if rec.MaxResponse != ms(2) {
		t.Errorf("max response = %v", rec.MaxResponse)
	}
}

func TestDetectsDeadlineMiss(t *testing.T) {
	// In shared mode a long NDA job blocks the DA past its deadline.
	n := newNode(t, platform.ModeShared)
	da, _ := n.Install(daSpec(0), platform.Behavior{})
	nda, _ := n.Install(model.App{Name: "bg", Kind: model.NonDeterministic, MemoryKB: 64},
		platform.Behavior{})
	m := New(n, DefaultConfig())
	m.Watch("ctl")
	var uplinked []Detection
	m.SetUplink(func(d Detection) { uplinked = append(uplinked, d) })
	da.Start()
	nda.Start()
	k := n.Kernel()
	k.At(sim.Time(ms(15)), func() { nda.Submit(ms(30), nil) })
	k.RunUntil(sim.Time(ms(100)))
	found := false
	for _, d := range m.Detections {
		if d.Kind == platform.FaultDeadlineMiss {
			found = true
			if d.Latency() < 0 {
				t.Errorf("negative detection latency: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("deadline miss not detected; detections = %+v", m.Detections)
	}
	if len(uplinked) == 0 {
		t.Error("uplink not invoked")
	}
	if len(m.DetectionsOf("ctl")) == 0 || len(m.DetectionsOf("ghost")) != 0 {
		t.Error("DetectionsOf filtering wrong")
	}
}

func TestDetectsResponseJitter(t *testing.T) {
	// Shared mode + sporadic NDA interference varies DA response times
	// beyond the 100us bound.
	n := newNode(t, platform.ModeShared)
	da, _ := n.Install(daSpec(100*sim.Microsecond), platform.Behavior{})
	nda, _ := n.Install(model.App{Name: "bg", Kind: model.NonDeterministic, MemoryKB: 64},
		platform.Behavior{})
	m := New(n, DefaultConfig())
	m.Watch("ctl")
	da.Start()
	nda.Start()
	k := n.Kernel()
	// Submit just before a release so the non-preemptive NDA job blocks
	// the 50ms activation and stretches its response.
	k.At(sim.Time(ms(49)), func() { nda.Submit(ms(5), nil) })
	k.RunUntil(sim.Time(ms(300)))
	found := false
	for _, d := range m.Detections {
		if d.Kind == platform.FaultJitterExceeded {
			found = true
		}
	}
	if !found {
		t.Errorf("jitter not detected; detections = %+v", m.Detections)
	}
}

func TestDetectsMemoryPressure(t *testing.T) {
	n := newNode(t, platform.ModeIsolated)
	inst, _ := n.Install(daSpec(0), platform.Behavior{})
	cfg := DefaultConfig()
	cfg.MemoryPollPeriod = ms(10)
	m := New(n, cfg)
	m.Watch("ctl")
	inst.Start()
	k := n.Kernel()
	k.At(sim.Time(ms(25)), func() {
		if err := n.Memory().Use("ctl", 120); err != nil { // 120/128 = 94%
			t.Errorf("Use: %v", err)
		}
	})
	k.RunUntil(sim.Time(ms(60)))
	found := 0
	for _, d := range m.Detections {
		if d.Kind == platform.FaultMemoryBudget {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("memory pressure not detected: %+v", m.Detections)
	}
	// Detection latency bounded by the poll period.
	for _, d := range m.Detections {
		if d.Kind == platform.FaultMemoryBudget && d.DetectedAt < sim.Time(ms(25)) {
			t.Error("detected before fault injected")
		}
	}
}

func TestWatchValidation(t *testing.T) {
	n := newNode(t, platform.ModeIsolated)
	m := New(n, DefaultConfig())
	if err := m.Watch("ghost"); err == nil {
		t.Error("watching unknown app succeeded")
	}
	if _, err := m.Certify("ghost"); err == nil {
		t.Error("certifying unknown app succeeded")
	}
}

func TestUnwatchStopsDetection(t *testing.T) {
	n := newNode(t, platform.ModeShared)
	da, _ := n.Install(daSpec(0), platform.Behavior{})
	m := New(n, DefaultConfig())
	m.Watch("ctl")
	m.Unwatch("ctl")
	da.Start()
	n.Kernel().RunUntil(sim.Time(ms(100)))
	if m.EventsSeen != 0 {
		t.Errorf("events seen after Unwatch: %d", m.EventsSeen)
	}
}

func TestMonitorOverheadScalesWithEvents(t *testing.T) {
	n := newNode(t, platform.ModeIsolated)
	inst, _ := n.Install(daSpec(0), platform.Behavior{})
	m := New(n, DefaultConfig())
	m.Watch("ctl")
	inst.Start()
	n.Kernel().RunUntil(sim.Time(ms(1000)))
	if m.AccountedCost != sim.Duration(m.EventsSeen)*DefaultConfig().PerEventCost {
		t.Errorf("cost %v for %d events", m.AccountedCost, m.EventsSeen)
	}
}
