package monitor

import (
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

func ndaNode(t *testing.T) (*platform.Node, *platform.AppInstance) {
	t.Helper()
	n := newNode(t, platform.ModeIsolated)
	inst, err := n.Install(model.App{Name: "svc", Kind: model.NonDeterministic,
		MemoryKB: 64}, platform.Behavior{})
	if err != nil {
		t.Fatal(err)
	}
	inst.Start()
	return n, inst
}

func TestAliveHealthyAppPasses(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 100*sim.Millisecond)
	if err := s.Supervise("svc", 1, 20); err != nil {
		t.Fatal(err)
	}
	k := n.Kernel()
	k.Every(0, 10*sim.Millisecond, func() { s.Alive("svc") })
	k.RunUntil(sim.Time(sim.Second))
	if len(s.Violations) != 0 {
		t.Errorf("violations on healthy app: %+v", s.Violations)
	}
}

func TestAliveDetectsHang(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 100*sim.Millisecond)
	s.Supervise("svc", 1, 20)
	k := n.Kernel()
	tick := k.Every(0, 10*sim.Millisecond, func() { s.Alive("svc") })
	hangAt := sim.Time(500 * sim.Millisecond)
	k.At(hangAt, func() { tick.Stop() }) // the app hangs
	k.RunUntil(sim.Time(sim.Second))
	if len(s.Violations) != 1 {
		t.Fatalf("violations = %+v (latching should cap at 1)", s.Violations)
	}
	v := s.Violations[0]
	if v.App != "svc" || v.At < hangAt {
		t.Errorf("violation = %+v", v)
	}
	// Detection within one window + epsilon of the hang.
	if v.At.Sub(hangAt) > 200*sim.Millisecond {
		t.Errorf("detection took %v", v.At.Sub(hangAt))
	}
	if n.Diag().CountKind(platform.FaultHeartbeatLost) != 1 {
		t.Error("fault not recorded")
	}
}

func TestAliveDetectsRunaway(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 100*sim.Millisecond)
	s.Supervise("svc", 1, 5)
	k := n.Kernel()
	k.Every(0, sim.Millisecond, func() { s.Alive("svc") }) // 100/window ≫ max 5
	k.RunUntil(sim.Time(300 * sim.Millisecond))
	if len(s.Violations) == 0 {
		t.Fatal("runaway not detected")
	}
	if s.Violations[0].Count <= 5 {
		t.Errorf("violation = %+v", s.Violations[0])
	}
}

func TestAliveRecoveryUnlatches(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 100*sim.Millisecond)
	s.Supervise("svc", 1, 20)
	k := n.Kernel()
	// Healthy → hang (2 windows) → healthy → hang again.
	var tick *sim.Ticker
	start := func() { tick = k.Every(k.Now(), 10*sim.Millisecond, func() { s.Alive("svc") }) }
	start()
	k.At(sim.Time(200*sim.Millisecond), func() { tick.Stop() })
	k.At(sim.Time(500*sim.Millisecond), func() { start() })
	k.At(sim.Time(700*sim.Millisecond), func() { tick.Stop() })
	k.RunUntil(sim.Time(sim.Second))
	if len(s.Violations) != 2 {
		t.Errorf("violations = %d, want 2 (one per hang episode)", len(s.Violations))
	}
}

func TestAliveValidation(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 100*sim.Millisecond)
	if err := s.Supervise("ghost", 1, 2); err == nil {
		t.Error("unknown app accepted")
	}
	if err := s.Supervise("svc", -1, 2); err == nil {
		t.Error("negative min accepted")
	}
	if err := s.Supervise("svc", 3, 2); err == nil {
		t.Error("max < min accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero window accepted")
			}
		}()
		NewAliveSupervision(n, 0)
	}()
}

func TestAliveForgetAndStop(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 50*sim.Millisecond)
	s.Supervise("svc", 1, 10)
	s.Forget("svc")
	k := n.Kernel()
	k.RunUntil(sim.Time(300 * sim.Millisecond))
	if len(s.Violations) != 0 {
		t.Error("forgotten app flagged")
	}
	s.Supervise("svc", 1, 10)
	s.Stop()
	k.RunUntil(sim.Time(600 * sim.Millisecond))
	if len(s.Violations) != 0 {
		t.Error("stopped supervisor flagged")
	}
}
