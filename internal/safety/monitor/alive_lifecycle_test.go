package monitor

import (
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// Forget in the middle of a check window (after the app already missed
// every indication of the partial window) must not raise a violation at
// the window boundary: the app is gone, not silent.
func TestAliveForgetMidWindow(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 100*sim.Millisecond)
	if err := s.Supervise("svc", 1, 20); err != nil {
		t.Fatal(err)
	}
	k := n.Kernel()
	// No Alive() calls at all; forget halfway through the first window.
	k.At(sim.Time(50*sim.Millisecond), func() { s.Forget("svc") })
	k.RunUntil(sim.Time(400 * sim.Millisecond))
	if len(s.Violations) != 0 {
		t.Errorf("mid-window Forget still flagged: %+v", s.Violations)
	}
	// Forgetting twice (and forgetting the unknown) is a no-op.
	s.Forget("svc")
	s.Forget("ghost")
}

// Stop must be idempotent: a double Stop neither panics nor disturbs a
// later re-arm.
func TestAliveStopIdempotent(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 50*sim.Millisecond)
	if err := s.Supervise("svc", 1, 10); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	s.Stop() // second Stop: no panic, no effect
	n.Kernel().RunUntil(sim.Time(300 * sim.Millisecond))
	if len(s.Violations) != 0 {
		t.Errorf("stopped supervisor flagged: %+v", s.Violations)
	}
}

// Supervise after Stop must re-arm the ticker: supervision resumes with
// a fresh window and catches a silent app again.
func TestAliveResuperviseAfterStopReArms(t *testing.T) {
	n, _ := ndaNode(t)
	s := NewAliveSupervision(n, 100*sim.Millisecond)
	if err := s.Supervise("svc", 1, 20); err != nil {
		t.Fatal(err)
	}
	k := n.Kernel()
	beat := k.Every(0, 10*sim.Millisecond, func() { s.Alive("svc") })
	k.At(sim.Time(250*sim.Millisecond), func() { s.Stop() })
	// Re-arm at 500 ms; the app stays silent from 600 ms on.
	k.At(sim.Time(500*sim.Millisecond), func() {
		if err := s.Supervise("svc", 1, 20); err != nil {
			t.Error(err)
		}
	})
	k.At(sim.Time(600*sim.Millisecond), func() { beat.Stop() })
	k.RunUntil(sim.Time(sim.Second))
	if len(s.Violations) != 1 {
		t.Fatalf("violations after re-arm = %+v, want exactly 1", s.Violations)
	}
	if at := s.Violations[0].At; at < sim.Time(600*sim.Millisecond) {
		t.Errorf("violation at %v predates the re-arm silence", at)
	}
}

// Multiple supervised apps fail in sorted-name order within one window —
// the deterministic-iteration contract reconfig's recovery plans (and
// dynalint's maporder analyzer) rely on.
func TestAliveViolationOrderDeterministic(t *testing.T) {
	n, _ := ndaNode(t)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		inst, err := n.Install(model.App{Name: name, Kind: model.NonDeterministic,
			MemoryKB: 8}, platform.Behavior{})
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); err != nil {
			t.Fatal(err)
		}
	}
	s := NewAliveSupervision(n, 50*sim.Millisecond)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := s.Supervise(name, 1, 5); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	s.OnViolation = func(v AliveViolation) { seen = append(seen, v.App) }
	n.Kernel().RunUntil(sim.Time(60 * sim.Millisecond)) // one window, all silent
	want := []string{"alpha", "mid", "zeta"}
	if len(seen) != len(want) {
		t.Fatalf("violations = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("violation order = %v, want sorted %v", seen, want)
		}
	}
}
