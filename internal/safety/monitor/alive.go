package monitor

import (
	"fmt"
	"sort"

	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// AliveSupervision is the watchdog-manager style complement to the
// deterministic-app monitor: non-deterministic applications (which have
// no periodic completions to observe) must report alive indications, and
// the supervisor checks each supervision window for the expected count —
// catching hangs, crash loops and runaway busy loops alike.
type AliveSupervision struct {
	k    *sim.Kernel
	node *platform.Node

	window  sim.Duration
	entries map[string]*aliveEntry
	names   []string // sorted supervision order (deterministic checks)
	ticker  *sim.Ticker

	// Violations lists every failed supervision window.
	Violations []AliveViolation
	// OnViolation, when non-nil, is invoked for every failed window as
	// it is detected (the reconfig orchestrator subscribes here).
	OnViolation func(AliveViolation)
}

type aliveEntry struct {
	min, max int
	count    int
	// failed latches after the first violation until the app reports
	// again (avoids flooding).
	failed bool
}

// AliveViolation records one failed window.
type AliveViolation struct {
	App      string
	At       sim.Time
	Count    int
	Min, Max int
}

// NewAliveSupervision creates a supervisor checking every window.
func NewAliveSupervision(node *platform.Node, window sim.Duration) *AliveSupervision {
	if window <= 0 {
		panic("monitor: non-positive supervision window")
	}
	s := &AliveSupervision{
		k:       node.Kernel(),
		node:    node,
		window:  window,
		entries: map[string]*aliveEntry{},
	}
	s.ticker = s.k.Every(s.k.Now().Add(window), window, s.check)
	return s
}

// Supervise registers an app that must report between min and max alive
// indications per window. Re-supervising a known app updates its bounds
// in place. After Stop, the first Supervise re-arms the check ticker —
// the supervisor is reusable across platform reconfigurations (an app
// relocated to another ECU is Forgot here and Supervised on the new
// node's supervisor).
func (s *AliveSupervision) Supervise(app string, min, max int) error {
	if s.node.App(app) == nil {
		return fmt.Errorf("monitor: app %s not installed", app)
	}
	if min < 0 || max < min {
		return fmt.Errorf("monitor: invalid alive bounds [%d,%d]", min, max)
	}
	if e, known := s.entries[app]; known {
		e.min, e.max = min, max
	} else {
		s.entries[app] = &aliveEntry{min: min, max: max}
		s.names = append(s.names, app)
		sort.Strings(s.names)
	}
	if s.ticker == nil {
		// Re-arm after Stop: a fresh window starts now.
		s.ticker = s.k.Every(s.k.Now().Add(s.window), s.window, s.check)
	}
	return nil
}

// Forget stops supervising an app. Mid-window Forget discards the
// window's partial count: no violation is raised for the app at the
// window end (the app is gone, not silent).
func (s *AliveSupervision) Forget(app string) {
	if _, known := s.entries[app]; !known {
		return
	}
	delete(s.entries, app)
	kept := s.names[:0]
	for _, n := range s.names {
		if n != app {
			kept = append(kept, n)
		}
	}
	s.names = kept
}

// Bounds returns the supervision bounds of an app, and whether it is
// supervised — used when migrating supervision to another node's
// supervisor during reconfiguration.
func (s *AliveSupervision) Bounds(app string) (min, max int, ok bool) {
	e, known := s.entries[app]
	if !known {
		return 0, 0, false
	}
	return e.min, e.max, true
}

// Supervised returns the sorted names of the currently supervised apps.
// The reconfig orchestrator compares a window's violation count against
// it to distinguish one silent app from a whole silent node.
func (s *AliveSupervision) Supervised() []string {
	return append([]string(nil), s.names...)
}

// Alive is the checkpoint the supervised application calls.
func (s *AliveSupervision) Alive(app string) {
	if e, ok := s.entries[app]; ok {
		e.count++
		e.failed = false
	}
}

// Stop halts supervision. Stop is idempotent; Supervise after Stop
// re-arms the ticker.
func (s *AliveSupervision) Stop() {
	if s.ticker == nil {
		return
	}
	s.ticker.Stop()
	s.ticker = nil
}

func (s *AliveSupervision) check() {
	for _, app := range s.names {
		e := s.entries[app]
		bad := e.count < e.min || e.count > e.max
		if bad && !e.failed {
			v := AliveViolation{App: app, At: s.k.Now(), Count: e.count, Min: e.min, Max: e.max}
			s.Violations = append(s.Violations, v)
			s.node.Diag().RecordFault(platform.Fault{
				App: app, Kind: platform.FaultHeartbeatLost, At: s.k.Now(),
				Detail: fmt.Sprintf("alive count %d outside [%d,%d]", e.count, e.min, e.max),
			})
			e.failed = true
			if s.OnViolation != nil {
				s.OnViolation(v)
			}
		}
		e.count = 0
	}
}
