package monitor

import (
	"fmt"

	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// AliveSupervision is the watchdog-manager style complement to the
// deterministic-app monitor: non-deterministic applications (which have
// no periodic completions to observe) must report alive indications, and
// the supervisor checks each supervision window for the expected count —
// catching hangs, crash loops and runaway busy loops alike.
type AliveSupervision struct {
	k    *sim.Kernel
	node *platform.Node

	window  sim.Duration
	entries map[string]*aliveEntry
	ticker  *sim.Ticker

	// Violations lists every failed supervision window.
	Violations []AliveViolation
}

type aliveEntry struct {
	min, max int
	count    int
	// failed latches after the first violation until the app reports
	// again (avoids flooding).
	failed bool
}

// AliveViolation records one failed window.
type AliveViolation struct {
	App      string
	At       sim.Time
	Count    int
	Min, Max int
}

// NewAliveSupervision creates a supervisor checking every window.
func NewAliveSupervision(node *platform.Node, window sim.Duration) *AliveSupervision {
	if window <= 0 {
		panic("monitor: non-positive supervision window")
	}
	s := &AliveSupervision{
		k:       node.Kernel(),
		node:    node,
		window:  window,
		entries: map[string]*aliveEntry{},
	}
	s.ticker = s.k.Every(s.k.Now().Add(window), window, s.check)
	return s
}

// Supervise registers an app that must report between min and max alive
// indications per window.
func (s *AliveSupervision) Supervise(app string, min, max int) error {
	if s.node.App(app) == nil {
		return fmt.Errorf("monitor: app %s not installed", app)
	}
	if min < 0 || max < min {
		return fmt.Errorf("monitor: invalid alive bounds [%d,%d]", min, max)
	}
	s.entries[app] = &aliveEntry{min: min, max: max}
	return nil
}

// Forget stops supervising an app.
func (s *AliveSupervision) Forget(app string) { delete(s.entries, app) }

// Alive is the checkpoint the supervised application calls.
func (s *AliveSupervision) Alive(app string) {
	if e, ok := s.entries[app]; ok {
		e.count++
		e.failed = false
	}
}

// Stop halts supervision.
func (s *AliveSupervision) Stop() { s.ticker.Stop() }

func (s *AliveSupervision) check() {
	for app, e := range s.entries {
		bad := e.count < e.min || e.count > e.max
		if bad && !e.failed {
			v := AliveViolation{App: app, At: s.k.Now(), Count: e.count, Min: e.min, Max: e.max}
			s.Violations = append(s.Violations, v)
			s.node.Diag().RecordFault(platform.Fault{
				App: app, Kind: platform.FaultHeartbeatLost, At: s.k.Now(),
				Detail: fmt.Sprintf("alive count %d outside [%d,%d]", e.count, e.min, e.max),
			})
			e.failed = true
		}
		e.count = 0
	}
}
