// Package monitor implements the paper's Section 3.4 runtime monitoring:
// it watches the key parameters of deterministic applications — period,
// deadline, jitter, memory usage — detects violations, records the
// conditions leading to them, and (when an uplink is available) transfers
// fault reports to the manufacturer backend. The collected data sets also
// support safety certification.
package monitor

import (
	"fmt"

	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// Config tunes the monitor.
type Config struct {
	// PeriodTolerance is the allowed deviation of release spacing from
	// the nominal period before a period fault is raised.
	PeriodTolerance sim.Duration
	// JitterWindow is how many recent activations the jitter check spans.
	JitterWindow int
	// MemoryPollPeriod is the memory-usage sampling interval.
	MemoryPollPeriod sim.Duration
	// MemoryWarnFraction raises a fault when a domain exceeds this
	// fraction of its budget.
	MemoryWarnFraction float64
	// PerEventCost is the accounted CPU cost of monitoring one
	// activation (reported as overhead, experiment E8).
	PerEventCost sim.Duration
}

// DefaultConfig returns the standard monitor tuning.
func DefaultConfig() Config {
	return Config{
		PeriodTolerance:    500 * sim.Microsecond,
		JitterWindow:       32,
		MemoryPollPeriod:   50 * sim.Millisecond,
		MemoryWarnFraction: 0.9,
		PerEventCost:       2 * sim.Microsecond,
	}
}

// Detection records one detected violation.
type Detection struct {
	App  string
	Kind platform.FaultKind
	// OccurredAt is when the violating behaviour happened; DetectedAt is
	// when the monitor saw it. Their difference is the detection latency.
	OccurredAt sim.Time
	DetectedAt sim.Time
	Detail     string
}

// Latency returns occurrence→detection latency.
func (d Detection) Latency() sim.Duration { return d.DetectedAt.Sub(d.OccurredAt) }

// Monitor watches one node.
type Monitor struct {
	k    *sim.Kernel
	node *platform.Node
	cfg  Config

	perApp map[string]*appWatch

	// Detections lists everything the monitor caught.
	Detections []Detection
	// EventsSeen counts monitored activations; AccountedCost aggregates
	// the monitor's own CPU cost.
	EventsSeen    int64
	AccountedCost sim.Duration

	memTicker *sim.Ticker
	uplink    func(Detection)
}

type appWatch struct {
	lastRelease sim.Time
	haveRelease bool
	responses   []sim.Duration // ring of recent response times
	jitterBound sim.Duration
	period      sim.Duration
}

// New attaches a monitor to a node. Watch must be called per app.
func New(node *platform.Node, cfg Config) *Monitor {
	m := &Monitor{
		k:      nodeKernel(node),
		node:   node,
		cfg:    cfg,
		perApp: map[string]*appWatch{},
	}
	node.OnComplete(m.onComplete)
	if cfg.MemoryPollPeriod > 0 {
		m.memTicker = m.k.Every(m.k.Now().Add(cfg.MemoryPollPeriod), cfg.MemoryPollPeriod, m.pollMemory)
	}
	return m
}

// nodeKernel extracts the kernel via a completion-independent path.
func nodeKernel(node *platform.Node) *sim.Kernel { return node.Kernel() }

// SetUplink installs the backend forwarder (Section 3.4: fault conditions
// transferred to the manufacturer when a connection is available).
func (m *Monitor) SetUplink(fn func(Detection)) { m.uplink = fn }

// Uplink returns the installed forwarder (nil when none) so additional
// subscribers can chain onto it instead of clobbering it.
func (m *Monitor) Uplink() func(Detection) { return m.uplink }

// Watch starts monitoring an installed app's deterministic parameters.
func (m *Monitor) Watch(app string) error {
	inst := m.node.App(app)
	if inst == nil {
		return fmt.Errorf("monitor: app %s not installed on %s", app, m.node.ECU().Name)
	}
	m.perApp[app] = &appWatch{
		jitterBound: inst.Spec.Jitter,
		period:      inst.Spec.Period,
	}
	return nil
}

// Unwatch stops monitoring an app.
func (m *Monitor) Unwatch(app string) { delete(m.perApp, app) }

// Stop halts the memory poller.
func (m *Monitor) Stop() {
	if m.memTicker != nil {
		m.memTicker.Stop()
	}
}

func (m *Monitor) onComplete(c platform.Completion) {
	w, ok := m.perApp[c.App]
	if !ok {
		return
	}
	m.EventsSeen++
	m.AccountedCost += m.cfg.PerEventCost

	// Deadline check: the platform already flags the miss; the monitor
	// records and uplinks it.
	if c.Missed {
		m.detect(Detection{
			App: c.App, Kind: platform.FaultDeadlineMiss,
			OccurredAt: c.Deadline, DetectedAt: m.k.Now(),
			Detail: fmt.Sprintf("job %d finished %v late", c.Job, c.Finished.Sub(c.Deadline)),
		})
	}

	// Period conformance: release spacing must equal the nominal period
	// within tolerance.
	if w.haveRelease && w.period > 0 {
		gap := c.Release.Sub(w.lastRelease)
		dev := gap - w.period
		if dev < 0 {
			dev = -dev
		}
		if dev > m.cfg.PeriodTolerance {
			m.detect(Detection{
				App: c.App, Kind: platform.FaultJitterExceeded,
				OccurredAt: c.Release, DetectedAt: m.k.Now(),
				Detail: fmt.Sprintf("release spacing %v deviates %v from period %v", gap, dev, w.period),
			})
		}
	}
	w.lastRelease = c.Release
	w.haveRelease = true

	// Response jitter over the recent window.
	w.responses = append(w.responses, c.Finished.Sub(c.Release))
	if len(w.responses) > m.cfg.JitterWindow {
		w.responses = w.responses[1:]
	}
	if w.jitterBound > 0 && len(w.responses) >= 2 {
		lo, hi := w.responses[0], w.responses[0]
		for _, r := range w.responses[1:] {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if hi-lo > w.jitterBound {
			m.detect(Detection{
				App: c.App, Kind: platform.FaultJitterExceeded,
				OccurredAt: c.Finished, DetectedAt: m.k.Now(),
				Detail: fmt.Sprintf("response jitter %v exceeds bound %v", hi-lo, w.jitterBound),
			})
		}
	}
}

func (m *Monitor) pollMemory() {
	for app := range m.perApp {
		d := m.node.Memory().Domain(app)
		if d == nil || d.BudgetKB == 0 {
			continue
		}
		frac := float64(d.UsedKB) / float64(d.BudgetKB)
		if frac >= m.cfg.MemoryWarnFraction {
			m.detect(Detection{
				App: app, Kind: platform.FaultMemoryBudget,
				OccurredAt: m.k.Now(), DetectedAt: m.k.Now(),
				Detail: fmt.Sprintf("memory %d/%dKB (%.0f%%)", d.UsedKB, d.BudgetKB, frac*100),
			})
		}
	}
}

func (m *Monitor) detect(d Detection) {
	m.Detections = append(m.Detections, d)
	m.node.Diag().RecordFault(platform.Fault{
		App: d.App, Kind: d.Kind, At: d.DetectedAt, Detail: d.Detail,
	})
	if m.uplink != nil {
		m.uplink(d)
	}
}

// DetectionsOf filters detections by app.
func (m *Monitor) DetectionsOf(app string) []Detection {
	var out []Detection
	for _, d := range m.Detections {
		if d.App == app {
			out = append(out, d)
		}
	}
	return out
}

// OverheadFraction reports accounted monitor cost as a fraction of the
// elapsed virtual time.
func (m *Monitor) OverheadFraction() float64 {
	if m.k.Now() == 0 {
		return 0
	}
	return float64(m.AccountedCost) / float64(m.k.Now())
}

// CertificationRecord aggregates monitored evidence for an app: the data
// set the paper says "efficiently supports the safety certification
// processes".
type CertificationRecord struct {
	App         string
	Activations int64
	Misses      int64
	MaxResponse sim.Duration
	Detections  int
}

// Certify produces the certification record for a watched app.
func (m *Monitor) Certify(app string) (CertificationRecord, error) {
	inst := m.node.App(app)
	if inst == nil {
		return CertificationRecord{}, fmt.Errorf("monitor: app %s not installed", app)
	}
	return CertificationRecord{
		App:         app,
		Activations: inst.Activations,
		Misses:      inst.Misses,
		MaxResponse: inst.Response.PercentileDuration(100),
		Detections:  len(m.DetectionsOf(app)),
	}, nil
}
