// Package update implements the paper's Section 3.2 update-safety
// machinery: the four-phase staged runtime update — (1) start the new
// version in parallel, (2) synchronize internal state, (3) redirect
// traffic, (4) stop the old version — plus the naive stop-update-restart
// baseline and the orchestrated step-by-step update of distributed
// functions versus a synchronized central switch.
package update

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
)

// Phase identifies a staged-update phase.
type Phase int

const (
	PhaseParallelStart Phase = iota
	PhaseStateSync
	PhaseRedirect
	PhaseStopOld
)

func (p Phase) String() string {
	switch p {
	case PhaseParallelStart:
		return "parallel-start"
	case PhaseStateSync:
		return "state-sync"
	case PhaseRedirect:
		return "redirect"
	case PhaseStopOld:
		return "stop-old"
	}
	return "unknown"
}

// Stamp records one phase's execution window.
type Stamp struct {
	Phase      Phase
	Start, End sim.Time
}

// Report summarizes a completed update.
type Report struct {
	Logical  string
	From, To int
	Stamps   []Stamp
	// PeakMemoryKB is the largest domain commitment during the update
	// (staged updates double the app's footprint, Section 3.2).
	PeakMemoryKB int
	// Downtime is the window during which the app was not serving:
	// ~0 for staged updates, the whole reinstall window for the baseline.
	Downtime sim.Duration
	// SyncedKeys counts state entries copied in PhaseStateSync.
	SyncedKeys int
	// RolledBack reports that a verified update failed its check and the
	// old version kept serving (StagedVerified only).
	RolledBack bool
}

// Config tunes the update cost model.
type Config struct {
	// StartupBase is the fixed app start latency; StartupPerKB adds
	// image-size-dependent load time.
	StartupBase  sim.Duration
	StartupPerKB sim.Duration
	// SyncPerKey is the state-synchronization cost per persisted key.
	SyncPerKey sim.Duration
	// RedirectPerIface is the traffic-redirection cost per interface.
	RedirectPerIface sim.Duration
}

// DefaultConfig returns the standard cost model.
func DefaultConfig() Config {
	return Config{
		StartupBase:      20 * sim.Millisecond,
		StartupPerKB:     10 * sim.Microsecond,
		SyncPerKey:       500 * sim.Microsecond,
		RedirectPerIface: sim.Millisecond,
	}
}

// Manager orchestrates updates on a platform.
type Manager struct {
	k   *sim.Kernel
	p   *platform.Platform
	mw  *soa.Middleware
	cfg Config
	// active maps a logical app name to its current instance name
	// (instances are suffixed with their version, e.g. "brake@2").
	active map[string]string
}

// NewManager creates an update manager. mw may be nil when the updated
// apps offer no services.
func NewManager(p *platform.Platform, mw *soa.Middleware, cfg Config) *Manager {
	return &Manager{k: p.Kernel(), p: p, mw: mw, cfg: cfg, active: map[string]string{}}
}

// InstanceName returns the running instance name for a logical app
// (defaulting to the logical name before any update).
func (m *Manager) InstanceName(logical string) string {
	if n, ok := m.active[logical]; ok {
		return n
	}
	return logical
}

// Track registers an already-installed instance as the current version of
// a logical app.
func (m *Manager) Track(logical, instance string) { m.active[logical] = instance }

func (m *Manager) startupTime(spec model.App) sim.Duration {
	return m.cfg.StartupBase + sim.Duration(spec.MemoryKB)*m.cfg.StartupPerKB
}

// Offers describes the interfaces the new version must (re-)offer after
// redirect. Behaviors are installed on the new instance.
type Offers struct {
	Iface string
	Opts  soa.OfferOpts
}

// Staged performs the four-phase runtime update of a logical app on its
// node. done receives the report once the old version has stopped.
// The update is asynchronous in virtual time; errors that occur before
// any phase starts are returned synchronously.
func (m *Manager) Staged(logical string, newSpec model.App, b platform.Behavior,
	offers []Offers, done func(Report)) error {

	oldName := m.InstanceName(logical)
	inst, node := m.p.FindApp(oldName)
	if inst == nil {
		return fmt.Errorf("update: app %s not found", oldName)
	}
	newName := fmt.Sprintf("%s@%d", logical, newSpec.Version)
	if newName == oldName {
		return fmt.Errorf("update: version %d already active", newSpec.Version)
	}
	spec := newSpec
	spec.Name = newName

	rep := Report{Logical: logical, From: inst.Spec.Version, To: newSpec.Version}
	stamp := func(ph Phase, start sim.Time) {
		rep.Stamps = append(rep.Stamps, Stamp{Phase: ph, Start: start, End: m.k.Now()})
	}

	// Phase 1: start the new version in parallel with the old one.
	// Both instances' memory is committed simultaneously: the resource
	// cost the paper calls out.
	p1 := m.k.Now()
	newInst, err := node.Install(spec, b)
	if err != nil {
		return fmt.Errorf("update: parallel install: %w", err)
	}
	rep.PeakMemoryKB = node.Memory().CommittedKB()
	m.k.After(m.startupTime(spec), func() {
		if err := newInst.Start(); err != nil {
			node.Uninstall(newName)
			return
		}
		stamp(PhaseParallelStart, p1)

		// Phase 2: synchronize internal state old → new.
		p2 := m.k.Now()
		keys := node.Store().Keys(oldName)
		syncTime := sim.Duration(len(keys)) * m.cfg.SyncPerKey
		m.k.After(syncTime, func() {
			rep.SyncedKeys = node.Store().CopyAll(oldName, newName)
			stamp(PhaseStateSync, p2)

			// Phase 3: redirect all traffic to the new version.
			p3 := m.k.Now()
			redirect := sim.Duration(len(offers)) * m.cfg.RedirectPerIface
			m.k.After(redirect, func() {
				if m.mw != nil {
					ep := m.mw.Endpoint(newName, node.ECU().Name)
					for _, o := range offers {
						opts := o.Opts
						if opts.Version == 0 {
							opts.Version = newSpec.Version
						}
						ep.Offer(o.Iface, opts)
					}
				}
				stamp(PhaseRedirect, p3)

				// Phase 4: stop and remove the old version.
				p4 := m.k.Now()
				if m.mw != nil {
					m.mw.RemoveEndpoint(oldName)
				}
				if err := node.Uninstall(oldName); err != nil {
					node.Diag().RecordFault(platform.Fault{
						App: logical, Kind: platform.FaultUpdateAborted,
						At: m.k.Now(), Detail: err.Error(),
					})
					return
				}
				m.active[logical] = newName
				stamp(PhaseStopOld, p4)
				rep.Downtime = 0 // old served until redirect; new from redirect
				node.Log().Logf("update", "staged %s v%d→v%d complete", logical, rep.From, rep.To)
				if done != nil {
					done(rep)
				}
			})
		})
	})
	return nil
}

// StopRestart performs the naive baseline: stop the old version, then
// install and start the new one. The app serves nothing in between.
func (m *Manager) StopRestart(logical string, newSpec model.App, b platform.Behavior,
	offers []Offers, done func(Report)) error {

	oldName := m.InstanceName(logical)
	inst, node := m.p.FindApp(oldName)
	if inst == nil {
		return fmt.Errorf("update: app %s not found", oldName)
	}
	newName := fmt.Sprintf("%s@%d", logical, newSpec.Version)
	spec := newSpec
	spec.Name = newName

	rep := Report{Logical: logical, From: inst.Spec.Version, To: newSpec.Version}
	downStart := m.k.Now()
	inst.Stop()
	if m.mw != nil {
		m.mw.RemoveEndpoint(oldName)
	}
	if err := node.Uninstall(oldName); err != nil {
		return err
	}
	newInst, err := node.Install(spec, b)
	if err != nil {
		// The old version is already gone: this is exactly the risk of
		// the naive scheme.
		node.Diag().RecordFault(platform.Fault{
			App: logical, Kind: platform.FaultUpdateAborted,
			At: m.k.Now(), Detail: err.Error(),
		})
		return fmt.Errorf("update: reinstall failed, app lost: %w", err)
	}
	rep.PeakMemoryKB = node.Memory().CommittedKB()
	m.k.After(m.startupTime(spec), func() {
		if err := newInst.Start(); err != nil {
			return
		}
		if m.mw != nil {
			ep := m.mw.Endpoint(newName, node.ECU().Name)
			for _, o := range offers {
				ep.Offer(o.Iface, o.Opts)
			}
		}
		m.active[logical] = newName
		rep.Downtime = m.k.Now().Sub(downStart)
		node.Log().Logf("update", "stop-restart %s v%d→v%d, downtime %v",
			logical, rep.From, rep.To, rep.Downtime)
		if done != nil {
			done(rep)
		}
	})
	return nil
}
