package update

import (
	"fmt"
	"sort"

	"dynaplat/internal/sim"
)

// This file models Section 3.2's distributed-update comparison: updating
// a set of inter-dependent applications step-by-step along a defined
// update path — verifying the safety of every intermediate configuration —
// versus a centrally synchronized switch from old to new, which needs
// high-accuracy clock synchronization and creates a single point of
// failure.

// Dependency is one directed edge: Consumer depends on an interface
// provided by Producer, and the two must agree on the contract version.
type Dependency struct {
	Producer string
	Consumer string
}

// PathStep is one step of an orchestrated update path.
type PathStep struct {
	// App to update in this step.
	App string
	// Verify is called (in virtual time) after the step; a non-nil error
	// aborts the remaining path, leaving earlier steps in place.
	Verify func() error
}

// OrchestratedReport summarizes a step-by-step distributed update.
type OrchestratedReport struct {
	StepsDone int
	Aborted   bool
	AbortErr  error
	// IncompatibleTime is the total virtual time any dependency edge
	// spent with mismatched versions. Staged steps keep both versions
	// alive through redirect, so this is zero by construction.
	IncompatibleTime sim.Duration
	Elapsed          sim.Duration
}

// Orchestrated walks the update path sequentially: each step is a staged
// update (both versions briefly coexist, so no dependency edge ever
// observes a version mismatch), followed by its verification. stepFn
// performs the staged update of one app and calls done when complete —
// typically a closure over Manager.Staged.
func Orchestrated(k *sim.Kernel, steps []PathStep,
	stepFn func(app string, done func(error)), done func(OrchestratedReport)) {

	start := k.Now()
	rep := OrchestratedReport{}
	var next func(i int)
	next = func(i int) {
		if i >= len(steps) {
			rep.Elapsed = k.Now().Sub(start)
			done(rep)
			return
		}
		step := steps[i]
		stepFn(step.App, func(err error) {
			if err == nil && step.Verify != nil {
				err = step.Verify()
			}
			if err != nil {
				rep.Aborted = true
				rep.AbortErr = fmt.Errorf("update: step %d (%s): %w", i, step.App, err)
				rep.Elapsed = k.Now().Sub(start)
				done(rep)
				return
			}
			rep.StepsDone++
			next(i + 1)
		})
	}
	next(0)
}

// CentralSwitchReport quantifies the synchronized-switch alternative.
type CentralSwitchReport struct {
	// SwitchTimes maps app → the virtual time it actually switched
	// (nominal instant plus its ECU's clock error).
	SwitchTimes map[string]sim.Time
	// EdgeWindows lists, per dependency, the window during which exactly
	// one endpoint had switched: the span of version incompatibility.
	EdgeWindows []EdgeWindow
	// MaxIncompatible and TotalIncompatible aggregate the windows.
	MaxIncompatible   sim.Duration
	TotalIncompatible sim.Duration
}

// EdgeWindow is one dependency's incompatibility window.
type EdgeWindow struct {
	Dep    Dependency
	Window sim.Duration
}

// CentralSwitch evaluates a synchronized old→new switch at the nominal
// instant `at`, where each app's host clock deviates by skew[app]. Every
// dependency whose endpoints switch at different instants passes through
// a mixed-version window — the robustness problem the paper notes, on
// top of the coordinator being a single point of failure.
func CentralSwitch(at sim.Time, skew map[string]sim.Duration, deps []Dependency) CentralSwitchReport {
	rep := CentralSwitchReport{SwitchTimes: map[string]sim.Time{}}
	apps := map[string]bool{}
	for _, d := range deps {
		apps[d.Producer] = true
		apps[d.Consumer] = true
	}
	names := make([]string, 0, len(apps))
	for a := range apps {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		rep.SwitchTimes[a] = at.Add(skew[a])
	}
	for _, d := range deps {
		tp, tc := rep.SwitchTimes[d.Producer], rep.SwitchTimes[d.Consumer]
		w := tp.Sub(tc)
		if w < 0 {
			w = -w
		}
		rep.EdgeWindows = append(rep.EdgeWindows, EdgeWindow{Dep: d, Window: w})
		rep.TotalIncompatible += w
		if w > rep.MaxIncompatible {
			rep.MaxIncompatible = w
		}
	}
	return rep
}
