package update

import (
	"fmt"
	"sort"

	"dynaplat/internal/sim"
)

// Campaign models the fleet side of the paper's update story: "dynamic
// behavior over the lifetime of a vehicle fleet" (abstract) with updates
// "created and rolled out to remedy the detected error" (§3.4). A
// campaign rolls an update across a vehicle fleet in waves (canary
// first), watching the fault-report rate and halting automatically when
// a wave exceeds the failure budget — the backend-side dual of the
// on-vehicle staged update.

// VehicleUpdater applies the update to one vehicle and reports success.
// In production this is an OTA session; in tests it is a closure over a
// per-vehicle simulation.
type VehicleUpdater func(vehicle string, done func(ok bool))

// CampaignConfig tunes the rollout.
type CampaignConfig struct {
	// WaveFractions sizes each wave as a fraction of the fleet, in
	// order; fractions must be positive and sum to ≤ 1. The remainder
	// joins the last wave.
	WaveFractions []float64
	// MaxFailureRate halts the campaign when a completed wave's failure
	// rate exceeds it.
	MaxFailureRate float64
	// WaveGap is the observation pause between waves.
	WaveGap sim.Duration
}

// DefaultCampaignConfig returns a 1% canary, 10%, then full rollout.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		WaveFractions:  []float64{0.01, 0.10, 0.89},
		MaxFailureRate: 0.05,
		WaveGap:        sim.Second,
	}
}

// WaveReport summarizes one wave.
type WaveReport struct {
	Wave     int
	Vehicles int
	Failed   int
}

// FailureRate returns the wave's failure fraction.
func (w WaveReport) FailureRate() float64 {
	if w.Vehicles == 0 {
		return 0
	}
	return float64(w.Failed) / float64(w.Vehicles)
}

// CampaignReport summarizes the rollout.
type CampaignReport struct {
	Waves   []WaveReport
	Halted  bool
	Updated int
	Failed  int
}

// RunCampaign rolls the update across the fleet per cfg. Vehicles are
// processed in sorted order within deterministic waves; done receives
// the final report (after the campaign completes or halts).
func RunCampaign(k *sim.Kernel, fleet []string, updater VehicleUpdater,
	cfg CampaignConfig, done func(CampaignReport)) error {

	if len(fleet) == 0 {
		return fmt.Errorf("update: empty fleet")
	}
	if len(cfg.WaveFractions) == 0 {
		return fmt.Errorf("update: no waves configured")
	}
	total := 0.0
	for _, f := range cfg.WaveFractions {
		if f <= 0 {
			return fmt.Errorf("update: non-positive wave fraction %v", f)
		}
		total += f
	}
	if total > 1+1e-9 {
		return fmt.Errorf("update: wave fractions sum to %v > 1", total)
	}
	vehicles := append([]string(nil), fleet...)
	sort.Strings(vehicles)

	// Pre-compute wave boundaries.
	var waves [][]string
	start := 0
	for i, f := range cfg.WaveFractions {
		n := int(f * float64(len(vehicles)))
		if n < 1 {
			n = 1
		}
		if i == len(cfg.WaveFractions)-1 {
			n = len(vehicles) - start // remainder
		}
		if start+n > len(vehicles) {
			n = len(vehicles) - start
		}
		if n <= 0 {
			break
		}
		waves = append(waves, vehicles[start:start+n])
		start += n
	}

	rep := CampaignReport{}
	var runWave func(i int)
	runWave = func(i int) {
		if i >= len(waves) {
			done(rep)
			return
		}
		wave := waves[i]
		wr := WaveReport{Wave: i, Vehicles: len(wave)}
		remaining := len(wave)
		for _, v := range wave {
			updater(v, func(ok bool) {
				if ok {
					rep.Updated++
				} else {
					wr.Failed++
					rep.Failed++
				}
				remaining--
				if remaining > 0 {
					return
				}
				rep.Waves = append(rep.Waves, wr)
				if wr.FailureRate() > cfg.MaxFailureRate {
					rep.Halted = true
					done(rep)
					return
				}
				k.After(cfg.WaveGap, func() { runWave(i + 1) })
			})
		}
	}
	runWave(0)
	return nil
}
