package update

import (
	"errors"
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

type rig struct {
	k    *sim.Kernel
	p    *platform.Platform
	mw   *soa.Middleware
	node *platform.Node
	mgr  *Manager
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	net := tsn.New(k, tsn.DefaultConfig("bb"))
	mw := soa.New(k, nil)
	mw.AddNetwork(net, 1400)
	p := platform.New(k, mw)
	node, err := p.AddNode(model.ECU{Name: "cpm", CPUMHz: 100, MemoryKB: 2048,
		HasMMU: true, OS: model.OSRTOS}, platform.ModeIsolated, ms(1)/4)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, p: p, mw: mw, node: node, mgr: NewManager(p, mw, DefaultConfig())}
}

func brakeSpec(version int) model.App {
	return model.App{Name: "brake", Kind: model.Deterministic, ASIL: model.ASILD,
		Period: ms(10), WCET: ms(2), Deadline: ms(10), MemoryKB: 128, Version: version}
}

func (r *rig) installV1(t *testing.T) *platform.AppInstance {
	t.Helper()
	inst, err := r.node.Install(brakeSpec(1), platform.Behavior{})
	if err != nil {
		t.Fatal(err)
	}
	inst.Start()
	ep := r.mw.Endpoint("brake", "cpm")
	ep.Offer("BrakeStatus", soa.OfferOpts{Network: "bb"})
	r.node.Store().Put("brake", "calibration", []byte("k=1.05"))
	r.node.Store().Put("brake", "odometer", []byte("123456"))
	return inst
}

func TestStagedUpdatePhases(t *testing.T) {
	r := newRig(t)
	r.installV1(t)
	var rep Report
	doneAt := sim.Time(0)
	spec := brakeSpec(2)
	err := r.mgr.Staged("brake", spec, platform.Behavior{},
		[]Offers{{Iface: "BrakeStatus", Opts: soa.OfferOpts{Network: "bb"}}},
		func(rp Report) { rep = rp; doneAt = r.k.Now() })
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(ms(500)))
	if doneAt == 0 {
		t.Fatal("update never completed")
	}
	if rep.From != 1 || rep.To != 2 {
		t.Errorf("versions %d→%d", rep.From, rep.To)
	}
	if len(rep.Stamps) != 4 {
		t.Fatalf("stamps = %v", rep.Stamps)
	}
	for i, ph := range []Phase{PhaseParallelStart, PhaseStateSync, PhaseRedirect, PhaseStopOld} {
		if rep.Stamps[i].Phase != ph {
			t.Errorf("stamp %d = %v, want %v", i, rep.Stamps[i].Phase, ph)
		}
		if i > 0 && rep.Stamps[i].Start < rep.Stamps[i-1].End {
			t.Errorf("phase %v overlaps predecessor", ph)
		}
	}
	if rep.Downtime != 0 {
		t.Errorf("staged downtime = %v, want 0", rep.Downtime)
	}
	if rep.SyncedKeys != 2 {
		t.Errorf("synced keys = %d, want 2", rep.SyncedKeys)
	}
	// Both instances were resident simultaneously.
	if rep.PeakMemoryKB < 256 {
		t.Errorf("peak memory = %dKB, want ≥ 256 (two instances)", rep.PeakMemoryKB)
	}
	// Old instance is gone, new one is running under the versioned name.
	if inst, _ := r.p.FindApp("brake"); inst != nil {
		t.Error("old instance still present")
	}
	inst, _ := r.p.FindApp("brake@2")
	if inst == nil || inst.State != platform.StateRunning {
		t.Fatal("new instance not running")
	}
	if r.mgr.InstanceName("brake") != "brake@2" {
		t.Errorf("active instance = %q", r.mgr.InstanceName("brake"))
	}
	// State survived.
	if v, ok := r.node.Store().Get("brake@2", "calibration"); !ok || string(v) != "k=1.05" {
		t.Error("state not synchronized")
	}
	// The service is now provided by the new instance at version 2.
	prov, ver, err := r.mw.Find("BrakeStatus")
	if err != nil || prov != "brake@2" || ver != 2 {
		t.Errorf("service provider = %s v%d (%v)", prov, ver, err)
	}
}

func TestStagedUpdateKeepsDADeadlines(t *testing.T) {
	// E5's core claim: the staged update never interrupts the control
	// function. The union of old+new activations covers every period.
	r := newRig(t)
	old := r.installV1(t)
	var newInst *platform.AppInstance
	err := r.mgr.Staged("brake", brakeSpec(2), platform.Behavior{}, nil,
		func(Report) { newInst, _ = r.p.FindApp("brake@2") })
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(ms(1000)))
	if newInst == nil {
		t.Fatal("update incomplete")
	}
	if old.Misses != 0 || newInst.Misses != 0 {
		t.Errorf("misses old=%d new=%d", old.Misses, newInst.Misses)
	}
	// ~100 periods of 10ms: combined activations must cover them all
	// (with overlap during the parallel phase).
	total := old.Activations + newInst.Activations
	if total < 100 {
		t.Errorf("combined activations = %d, want ≥ 100 (no service gap)", total)
	}
}

func TestStopRestartHasDowntime(t *testing.T) {
	r := newRig(t)
	r.installV1(t)
	var rep Report
	err := r.mgr.StopRestart("brake", brakeSpec(2), platform.Behavior{}, nil,
		func(rp Report) { rep = rp })
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(ms(500)))
	if rep.Downtime <= 0 {
		t.Errorf("stop-restart downtime = %v, want > 0", rep.Downtime)
	}
	// Startup cost model: ≥ StartupBase.
	if rep.Downtime < DefaultConfig().StartupBase {
		t.Errorf("downtime %v below startup base", rep.Downtime)
	}
	if inst, _ := r.p.FindApp("brake@2"); inst == nil || inst.State != platform.StateRunning {
		t.Error("new version not running")
	}
}

func TestStagedUpdateUnknownApp(t *testing.T) {
	r := newRig(t)
	if err := r.mgr.Staged("ghost", brakeSpec(2), platform.Behavior{}, nil, nil); err == nil {
		t.Error("update of unknown app accepted")
	}
}

func TestStagedUpdateSameVersion(t *testing.T) {
	r := newRig(t)
	r.installV1(t)
	r.mgr.Track("brake", "brake@2")
	if err := r.mgr.Staged("brake", brakeSpec(2), platform.Behavior{}, nil, nil); err == nil {
		t.Error("re-update to active version accepted")
	}
}

func TestStagedUpdateInsufficientMemory(t *testing.T) {
	// Parallel instantiation needs double memory; make it not fit.
	r := newRig(t)
	inst := r.installV1(t)
	_ = inst
	hog := model.App{Name: "hog", Kind: model.NonDeterministic, MemoryKB: 1800}
	if _, err := r.node.Install(hog, platform.Behavior{}); err != nil {
		t.Fatal(err)
	}
	err := r.mgr.Staged("brake", brakeSpec(2), platform.Behavior{}, nil, nil)
	if err == nil {
		t.Fatal("staged update accepted without memory headroom")
	}
	// Old version must still be running — staged updates fail safe.
	old, _ := r.p.FindApp("brake")
	if old == nil || old.State != platform.StateRunning {
		t.Error("old version lost after failed staged update")
	}
}

func TestOrchestratedPath(t *testing.T) {
	k := sim.NewKernel(1)
	var rep OrchestratedReport
	order := []string{}
	steps := []PathStep{
		{App: "sensor"}, {App: "fusion"}, {App: "planner"},
	}
	Orchestrated(k, steps, func(app string, done func(error)) {
		k.After(ms(50), func() { order = append(order, app); done(nil) })
	}, func(r OrchestratedReport) { rep = r })
	k.Run()
	if rep.StepsDone != 3 || rep.Aborted {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.IncompatibleTime != 0 {
		t.Errorf("incompatible time = %v", rep.IncompatibleTime)
	}
	if len(order) != 3 || order[0] != "sensor" || order[2] != "planner" {
		t.Errorf("order = %v", order)
	}
	if rep.Elapsed != ms(150) {
		t.Errorf("elapsed = %v", rep.Elapsed)
	}
}

func TestOrchestratedAbortOnVerifyFailure(t *testing.T) {
	k := sim.NewKernel(1)
	var rep OrchestratedReport
	bad := errors.New("intermediate config unsafe")
	steps := []PathStep{
		{App: "a"},
		{App: "b", Verify: func() error { return bad }},
		{App: "c"},
	}
	count := 0
	Orchestrated(k, steps, func(app string, done func(error)) {
		count++
		k.After(ms(10), func() { done(nil) })
	}, func(r OrchestratedReport) { rep = r })
	k.Run()
	if !rep.Aborted || rep.StepsDone != 1 {
		t.Fatalf("rep = %+v", rep)
	}
	if count != 2 {
		t.Errorf("steps executed = %d, want 2 (c never runs)", count)
	}
	if !errors.Is(rep.AbortErr, bad) {
		t.Errorf("abort err = %v", rep.AbortErr)
	}
}

func TestCentralSwitchSkewWindows(t *testing.T) {
	deps := []Dependency{
		{Producer: "sensor", Consumer: "fusion"},
		{Producer: "fusion", Consumer: "planner"},
	}
	skew := map[string]sim.Duration{
		"sensor":  0,
		"fusion":  ms(3),
		"planner": -ms(2),
	}
	rep := CentralSwitch(sim.Time(ms(1000)), skew, deps)
	if rep.MaxIncompatible != ms(5) {
		t.Errorf("max window = %v, want 5ms", rep.MaxIncompatible)
	}
	if rep.TotalIncompatible != ms(8) {
		t.Errorf("total = %v, want 8ms", rep.TotalIncompatible)
	}
	if len(rep.EdgeWindows) != 2 {
		t.Errorf("windows = %v", rep.EdgeWindows)
	}
	// Perfect clocks → no incompatibility.
	perfect := CentralSwitch(sim.Time(ms(1000)), map[string]sim.Duration{}, deps)
	if perfect.TotalIncompatible != 0 {
		t.Errorf("zero-skew total = %v", perfect.TotalIncompatible)
	}
}
