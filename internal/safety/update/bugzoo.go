package update

// Bug zoo: historical defects reintroducible behind test-only flags, so
// the scenario fuzzer's oracle (internal/fuzz) can prove it would have
// caught them. The flags default to off and must only ever be set by
// tests — production code paths never read true here.

// BugRollbackReofferAll, when true, makes StagedVerified's rollback
// re-offer every campaign interface onto the old endpoint instead of
// only the set the old version provided before the update — the ghost-
// service leak StagedVerified originally shipped with: an interface only
// the new version introduced survives the rollback, homed on a provider
// that never implemented it.
var BugRollbackReofferAll bool
