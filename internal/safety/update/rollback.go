package update

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// StagedVerified extends the four-phase update with the paper's
// verification step: after traffic is redirected to the new version, the
// old version is kept alive through a soak window while verify checks
// the intermediate configuration. Only a passing verification triggers
// phase 4 (stop-old); a failure rolls traffic back to the old version
// and removes the new one — the update is atomic from the vehicle's
// perspective.
//
// verify runs in virtual time at the end of the soak window and returns
// nil when the new version behaves. done receives the report; on
// rollback, Report.RolledBack is true and the old version keeps serving.
func (m *Manager) StagedVerified(logical string, newSpec model.App, b platform.Behavior,
	offers []Offers, soak sim.Duration, verify func() error, done func(Report)) error {

	oldName := m.InstanceName(logical)
	inst, node := m.p.FindApp(oldName)
	if inst == nil {
		return fmt.Errorf("update: app %s not found", oldName)
	}
	newName := fmt.Sprintf("%s@%d", logical, newSpec.Version)
	if newName == oldName {
		return fmt.Errorf("update: version %d already active", newSpec.Version)
	}
	spec := newSpec
	spec.Name = newName

	rep := Report{Logical: logical, From: inst.Spec.Version, To: newSpec.Version}
	stamp := func(ph Phase, start sim.Time) {
		rep.Stamps = append(rep.Stamps, Stamp{Phase: ph, Start: start, End: m.k.Now()})
	}

	// Snapshot the pre-update service state: which of the campaign's
	// interfaces already exist with the old instance as provider, and at
	// which contract version. Rollback restores exactly this set —
	// re-offering an interface the old version never provided would
	// leave ghost services behind after the new endpoint is removed.
	preOffered := map[string]int{}
	if m.mw != nil {
		for _, o := range offers {
			if prov, ver, err := m.mw.Find(o.Iface); err == nil && prov == oldName {
				preOffered[o.Iface] = ver
			}
		}
	}

	// Phase 1: parallel start.
	p1 := m.k.Now()
	newInst, err := node.Install(spec, b)
	if err != nil {
		return fmt.Errorf("update: parallel install: %w", err)
	}
	rep.PeakMemoryKB = node.Memory().CommittedKB()

	offerTo := func(app string) {
		if m.mw == nil {
			return
		}
		ep := m.mw.Endpoint(app, node.ECU().Name)
		for _, o := range offers {
			opts := o.Opts
			if opts.Version == 0 {
				opts.Version = newSpec.Version
			}
			ep.Offer(o.Iface, opts)
		}
	}

	rollback := func(reason error) {
		// Redirect traffic back to the old version and drop the new one.
		// Only the services the old version provided before the update
		// are re-offered, at their pre-update versions; interfaces the
		// new version introduced die with its endpoint. Services still
		// pointing at the old provider (rollback before redirect) are
		// left untouched.
		if m.mw != nil {
			ep := m.mw.Endpoint(oldName, node.ECU().Name)
			for _, o := range offers {
				ver, existed := preOffered[o.Iface]
				if BugRollbackReofferAll {
					existed = true
				}
				if !existed {
					continue
				}
				if prov, _, err := m.mw.Find(o.Iface); err == nil && prov == oldName {
					continue
				}
				opts := o.Opts
				opts.Version = ver
				ep.Offer(o.Iface, opts)
			}
			m.mw.RemoveEndpoint(newName)
		}
		newInst.Stop()
		node.Uninstall(newName)
		// Discard the state synchronized to the version that never went
		// live: the persistence store must read as if the update had
		// never been attempted.
		node.Store().DropApp(newName)
		rep.RolledBack = true
		node.Diag().RecordFault(platform.Fault{
			App: logical, Kind: platform.FaultUpdateAborted,
			At: m.k.Now(), Detail: "rolled back: " + reason.Error(),
		})
		node.Log().Logf("update", "rolled back %s v%d→v%d: %v",
			logical, rep.From, rep.To, reason)
		if done != nil {
			done(rep)
		}
	}

	m.k.After(m.startupTime(spec), func() {
		if err := newInst.Start(); err != nil {
			rollback(err)
			return
		}
		stamp(PhaseParallelStart, p1)

		// Phase 2: state sync.
		p2 := m.k.Now()
		keys := node.Store().Keys(oldName)
		m.k.After(sim.Duration(len(keys))*m.cfg.SyncPerKey, func() {
			rep.SyncedKeys = node.Store().CopyAll(oldName, newName)
			stamp(PhaseStateSync, p2)

			// Phase 3: redirect to the new version.
			p3 := m.k.Now()
			m.k.After(sim.Duration(len(offers))*m.cfg.RedirectPerIface, func() {
				offerTo(newName)
				stamp(PhaseRedirect, p3)

				// Soak, then verify the intermediate configuration.
				m.k.After(soak, func() {
					if verify != nil {
						if err := verify(); err != nil {
							rollback(err)
							return
						}
					}
					// Phase 4: stop and remove the old version.
					p4 := m.k.Now()
					if m.mw != nil {
						m.mw.RemoveEndpoint(oldName)
					}
					if err := node.Uninstall(oldName); err != nil {
						rollback(err)
						return
					}
					m.active[logical] = newName
					stamp(PhaseStopOld, p4)
					node.Log().Logf("update", "verified staged %s v%d→v%d",
						logical, rep.From, rep.To)
					if done != nil {
						done(rep)
					}
				})
			})
		})
	})
	return nil
}
