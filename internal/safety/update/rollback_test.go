package update

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
)

func TestStagedVerifiedSuccess(t *testing.T) {
	r := newRig(t)
	r.installV1(t)
	var rep Report
	err := r.mgr.StagedVerified("brake", brakeSpec(2), platform.Behavior{},
		[]Offers{{Iface: "BrakeStatus", Opts: offerBB()}},
		100*sim.Millisecond, func() error { return nil },
		func(rp Report) { rep = rp })
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(ms(2000)))
	if rep.RolledBack {
		t.Fatal("successful update rolled back")
	}
	if len(rep.Stamps) != 4 {
		t.Fatalf("stamps = %v", rep.Stamps)
	}
	if inst, _ := r.p.FindApp("brake@2"); inst == nil || inst.State != platform.StateRunning {
		t.Error("new version not running")
	}
	if inst, _ := r.p.FindApp("brake"); inst != nil {
		t.Error("old version still present")
	}
	if r.mgr.InstanceName("brake") != "brake@2" {
		t.Error("active name not switched")
	}
}

func TestStagedVerifiedRollback(t *testing.T) {
	r := newRig(t)
	old := r.installV1(t)
	bad := errors.New("new version misbehaves in soak")
	var rep Report
	err := r.mgr.StagedVerified("brake", brakeSpec(2), platform.Behavior{},
		[]Offers{{Iface: "BrakeStatus", Opts: offerBB()}},
		100*sim.Millisecond, func() error { return bad },
		func(rp Report) { rep = rp })
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(ms(2000)))
	if !rep.RolledBack {
		t.Fatal("failed verification did not roll back")
	}
	// Old version still serving, new version gone.
	if old.State != platform.StateRunning {
		t.Error("old version not running after rollback")
	}
	if inst, _ := r.p.FindApp("brake@2"); inst != nil {
		t.Error("new version still installed after rollback")
	}
	if r.mgr.InstanceName("brake") != "brake" {
		t.Errorf("active name = %q", r.mgr.InstanceName("brake"))
	}
	// Service points back at the old version.
	prov, _, err := r.mw.Find("BrakeStatus")
	if err != nil || prov != "brake" {
		t.Errorf("provider after rollback = %q (%v)", prov, err)
	}
	// The abort is on the diagnosis record.
	if r.node.Diag().CountKind(platform.FaultUpdateAborted) == 0 {
		t.Error("rollback not recorded in diagnosis")
	}
	// Old version must have served continuously (no missed periods).
	if old.Misses != 0 {
		t.Errorf("old version missed %d deadlines through the rollback", old.Misses)
	}
}

func offerBB() soa.OfferOpts { return soa.OfferOpts{Network: "bb"} }

// stateFingerprint renders the externally observable vehicle state the
// update machinery touches: installed apps, committed memory, the
// persistence store, service discovery, endpoint registry, and the
// manager's active-version map.
func (r *rig) stateFingerprint() string {
	var b strings.Builder
	for _, name := range []string{"brake", "brake@2"} {
		inst, _ := r.p.FindApp(name)
		if inst == nil {
			fmt.Fprintf(&b, "app %s: absent\n", name)
			continue
		}
		fmt.Fprintf(&b, "app %s: v%d state=%v mem=%d\n",
			name, inst.Spec.Version, inst.State, inst.Spec.MemoryKB)
	}
	fmt.Fprintf(&b, "committed=%dKB\n", r.node.Memory().CommittedKB())
	for _, app := range []string{"brake", "brake@2"} {
		for _, k := range r.node.Store().Keys(app) {
			v, _ := r.node.Store().Get(app, k)
			fmt.Fprintf(&b, "store %s/%s=%q\n", app, k, v)
		}
		fmt.Fprintf(&b, "endpoint %s: %v\n", app, r.mw.EndpointOf(app) != nil)
	}
	for _, svc := range r.mw.Services() {
		prov, ver, _ := r.mw.Find(svc)
		fmt.Fprintf(&b, "svc %s provider=%s v%d\n", svc, prov, ver)
	}
	fmt.Fprintf(&b, "active=%s\n", r.mgr.InstanceName("brake"))
	return b.String()
}

// TestStagedVerifiedRollbackByteIdentity: an update aborted mid-wave
// must leave the vehicle's admission/endpoint state byte-identical to
// the pre-update state — including the persistence store (no leaked
// state synchronized to the dead new version) and service discovery (no
// ghost services from interfaces only the new version offered).
func TestStagedVerifiedRollbackByteIdentity(t *testing.T) {
	r := newRig(t)
	r.installV1(t)
	pre := r.stateFingerprint()

	// The v2 image also introduces a brand-new interface: on rollback it
	// must vanish, not be re-homed onto the v1 provider.
	var rep Report
	err := r.mgr.StagedVerified("brake", brakeSpec(2), platform.Behavior{},
		[]Offers{
			{Iface: "BrakeStatus", Opts: offerBB()},
			{Iface: "BrakeStatusV2Extra", Opts: offerBB()},
		},
		100*sim.Millisecond, func() error { return errors.New("soak regression") },
		func(rp Report) { rep = rp })
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(sim.Time(ms(2000)))
	if !rep.RolledBack {
		t.Fatal("verification failure did not roll back")
	}
	if post := r.stateFingerprint(); post != pre {
		t.Errorf("rollback left state differing from pre-update:\n--- pre ---\n%s--- post ---\n%s", pre, post)
	}
}

func TestCampaignFullRollout(t *testing.T) {
	k := sim.NewKernel(1)
	fleet := make([]string, 100)
	for i := range fleet {
		fleet[i] = fmt.Sprintf("vin%03d", i)
	}
	var rep CampaignReport
	err := RunCampaign(k, fleet, func(v string, done func(bool)) {
		k.After(10*sim.Millisecond, func() { done(true) })
	}, DefaultCampaignConfig(), func(r CampaignReport) { rep = r })
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if rep.Halted || rep.Updated != 100 || rep.Failed != 0 {
		t.Fatalf("rep = %+v", rep)
	}
	if len(rep.Waves) != 3 {
		t.Fatalf("waves = %+v", rep.Waves)
	}
	// Canary wave is 1 vehicle (1% of 100).
	if rep.Waves[0].Vehicles != 1 {
		t.Errorf("canary size = %d", rep.Waves[0].Vehicles)
	}
	if rep.Waves[0].Vehicles+rep.Waves[1].Vehicles+rep.Waves[2].Vehicles != 100 {
		t.Errorf("wave sizes = %+v", rep.Waves)
	}
}

func TestCampaignHaltsOnCanaryFailure(t *testing.T) {
	k := sim.NewKernel(1)
	fleet := make([]string, 100)
	for i := range fleet {
		fleet[i] = fmt.Sprintf("vin%03d", i)
	}
	attempted := 0
	var rep CampaignReport
	err := RunCampaign(k, fleet, func(v string, done func(bool)) {
		attempted++
		k.After(10*sim.Millisecond, func() { done(false) }) // every update fails
	}, DefaultCampaignConfig(), func(r CampaignReport) { rep = r })
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !rep.Halted {
		t.Fatal("campaign did not halt")
	}
	// Only the canary wave was attempted: the fleet is protected.
	if attempted != 1 {
		t.Errorf("attempted = %d, want 1 (canary only)", attempted)
	}
	if rep.Failed != 1 || rep.Updated != 0 {
		t.Errorf("rep = %+v", rep)
	}
}

func TestCampaignToleratesBudgetedFailures(t *testing.T) {
	k := sim.NewKernel(3)
	fleet := make([]string, 200)
	for i := range fleet {
		fleet[i] = fmt.Sprintf("vin%03d", i)
	}
	cfg := CampaignConfig{WaveFractions: []float64{0.5, 0.5},
		MaxFailureRate: 0.10, WaveGap: sim.Second}
	i := 0
	var rep CampaignReport
	RunCampaign(k, fleet, func(v string, done func(bool)) {
		i++
		fail := i%20 == 0 // 5% failure rate, under the 10% budget
		k.After(sim.Millisecond, func() { done(!fail) })
	}, cfg, func(r CampaignReport) { rep = r })
	k.Run()
	if rep.Halted {
		t.Fatalf("halted despite under-budget failures: %+v", rep)
	}
	if rep.Updated+rep.Failed != 200 {
		t.Errorf("coverage = %d", rep.Updated+rep.Failed)
	}
}

func TestCampaignValidation(t *testing.T) {
	k := sim.NewKernel(1)
	noop := func(string, func(bool)) {}
	if err := RunCampaign(k, nil, noop, DefaultCampaignConfig(), nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if err := RunCampaign(k, []string{"v"}, noop, CampaignConfig{}, nil); err == nil {
		t.Error("no waves accepted")
	}
	bad := CampaignConfig{WaveFractions: []float64{0.9, 0.9}}
	if err := RunCampaign(k, []string{"v"}, noop, bad, nil); err == nil {
		t.Error("fractions > 1 accepted")
	}
	neg := CampaignConfig{WaveFractions: []float64{-0.1}}
	if err := RunCampaign(k, []string{"v"}, noop, neg, nil); err == nil {
		t.Error("negative fraction accepted")
	}
}
