package redundancy

import (
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func newPlatform(t *testing.T, ecus ...string) *platform.Platform {
	t.Helper()
	k := sim.NewKernel(1)
	p := platform.New(k, nil)
	for _, e := range ecus {
		_, err := p.AddNode(model.ECU{Name: e, CPUMHz: 100, MemoryKB: 1024,
			HasMMU: true, OS: model.OSRTOS}, platform.ModeIsolated, ms(1)/2)
		if err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func steerSpec() model.App {
	return model.App{Name: "steer", Kind: model.Deterministic, ASIL: model.ASILD,
		Period: ms(10), WCET: ms(2), Deadline: ms(10), MemoryKB: 64, Replicas: 2}
}

func TestReplicateAndRun(t *testing.T) {
	p := newPlatform(t, "cpm1", "cpm2")
	m := NewManager(p)
	g, err := m.Replicate(steerSpec(), []string{"cpm1", "cpm2"}, platform.Behavior{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	p.Kernel().RunUntil(sim.Time(ms(200)))
	if g.Outputs < 18 {
		t.Errorf("outputs = %d, want ~20", g.Outputs)
	}
	if len(g.Failovers) != 0 {
		t.Errorf("spurious failovers: %+v", g.Failovers)
	}
	// Both replicas execute (hot standby), only the master produces
	// externally visible output.
	r0, _ := p.FindApp("steer/r0")
	r1, _ := p.FindApp("steer/r1")
	if r0.Activations == 0 || r1.Activations == 0 {
		t.Error("standby replica not executing")
	}
	if g.Master() != r0 {
		t.Error("initial master should be replica 0")
	}
}

func TestFailoverPromotesSlave(t *testing.T) {
	p := newPlatform(t, "cpm1", "cpm2")
	m := NewManager(p)
	cfg := DefaultConfig()
	g, err := m.Replicate(steerSpec(), []string{"cpm1", "cpm2"}, platform.Behavior{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	k := p.Kernel()
	k.At(sim.Time(ms(100)), func() { m.FailECU("cpm1") })
	k.RunUntil(sim.Time(ms(500)))
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers = %+v", g.Failovers)
	}
	ev := g.Failovers[0]
	if ev.FailedECU != "cpm1" || ev.NewMaster != "steer/r1" {
		t.Errorf("event = %+v", ev)
	}
	// Detection bounded by MissThreshold × heartbeat (+1 supervision tick).
	maxDetect := sim.Duration(cfg.MissThreshold+1) * cfg.HeartbeatPeriod
	if d := ev.DetectedAt.Sub(sim.Time(ms(100))); d > maxDetect {
		t.Errorf("detection took %v, bound %v", d, maxDetect)
	}
	if ev.ServiceGap <= 0 || ev.ServiceGap > ms(100) {
		t.Errorf("service gap = %v", ev.ServiceGap)
	}
	// Service continues after failover.
	before := g.Outputs
	k.RunUntil(sim.Time(ms(800)))
	if g.Outputs <= before {
		t.Error("no outputs after failover")
	}
}

func TestFailoverCascade(t *testing.T) {
	// Three replicas survive two successive ECU failures.
	p := newPlatform(t, "a", "b", "c")
	m := NewManager(p)
	g, err := m.Replicate(steerSpec(), []string{"a", "b", "c"}, platform.Behavior{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	k := p.Kernel()
	k.At(sim.Time(ms(100)), func() { m.FailECU("a") })
	k.At(sim.Time(ms(400)), func() { m.FailECU("b") })
	k.RunUntil(sim.Time(ms(900)))
	if len(g.Failovers) != 2 {
		t.Fatalf("failovers = %d: %+v", len(g.Failovers), g.Failovers)
	}
	if g.Failovers[1].NewMaster != "steer/r2" {
		t.Errorf("second failover = %+v", g.Failovers[1])
	}
	before := g.Outputs
	k.RunUntil(sim.Time(ms(1200)))
	if g.Outputs <= before {
		t.Error("service dead after cascade")
	}
}

func TestAllReplicasDead(t *testing.T) {
	p := newPlatform(t, "a", "b")
	m := NewManager(p)
	g, _ := m.Replicate(steerSpec(), []string{"a", "b"}, platform.Behavior{}, DefaultConfig())
	g.Start()
	k := p.Kernel()
	k.At(sim.Time(ms(50)), func() { m.FailECU("a"); m.FailECU("b") })
	k.RunUntil(sim.Time(ms(600)))
	// One failover may be recorded (promotion attempted) but no outputs
	// after both die.
	outputsAt600 := g.Outputs
	k.RunUntil(sim.Time(ms(900)))
	if g.Outputs != outputsAt600 {
		t.Error("outputs from dead replicas")
	}
}

func TestHeartbeatPeriodBoundsDetection(t *testing.T) {
	// Ablation A3: halving the heartbeat period halves detection latency.
	detect := func(period sim.Duration) sim.Duration {
		p := newPlatform(t, "x", "y")
		m := NewManager(p)
		cfg := Config{HeartbeatPeriod: period, MissThreshold: 3, PromotionDelay: ms(1)}
		g, err := m.Replicate(steerSpec(), []string{"x", "y"}, platform.Behavior{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		k := p.Kernel()
		fail := sim.Time(ms(100))
		k.At(fail, func() { m.FailECU("x") })
		k.RunUntil(sim.Time(ms(2000)))
		if len(g.Failovers) != 1 {
			t.Fatalf("period %v: failovers = %d", period, len(g.Failovers))
		}
		return g.Failovers[0].DetectedAt.Sub(fail)
	}
	fast := detect(ms(5))
	slow := detect(ms(40))
	if fast >= slow {
		t.Errorf("detection: fast HB %v !< slow HB %v", fast, slow)
	}
}

func TestReplicateValidation(t *testing.T) {
	p := newPlatform(t, "only")
	m := NewManager(p)
	if _, err := m.Replicate(steerSpec(), []string{"only"}, platform.Behavior{}, DefaultConfig()); err == nil {
		t.Error("single-ECU replication accepted")
	}
	if _, err := m.Replicate(steerSpec(), []string{"only", "ghost"}, platform.Behavior{}, DefaultConfig()); err == nil {
		t.Error("unknown ECU accepted")
	}
	bad := DefaultConfig()
	bad.MissThreshold = 0
	p2 := newPlatform(t, "a", "b")
	if _, err := NewManager(p2).Replicate(steerSpec(), []string{"a", "b"}, platform.Behavior{}, bad); err == nil {
		t.Error("invalid config accepted")
	}
	if err := m.FailECU("ghost"); err == nil {
		t.Error("FailECU(ghost) succeeded")
	}
}

func TestUserOnActivateOnlyOnMaster(t *testing.T) {
	p := newPlatform(t, "a", "b")
	m := NewManager(p)
	calls := 0
	g, err := m.Replicate(steerSpec(), []string{"a", "b"},
		platform.Behavior{OnActivate: func(int64) { calls++ }}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	p.Kernel().RunUntil(sim.Time(ms(100)))
	// 10 periods → ~10 master activations; slaves must not double it.
	if calls < 9 || calls > 11 {
		t.Errorf("user hook calls = %d, want ~10", calls)
	}
}
