// Package redundancy implements the paper's Section 3.3 fail-operational
// mechanisms: applications are instantiated multiple times across ECUs in
// a master/slave fashion (as in the RACE platform, references [1, 15]);
// the master's heartbeats are monitored and a slave is promoted when the
// master dies, so the function keeps operating instead of shutting down.
package redundancy

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// Config tunes failure detection and promotion.
type Config struct {
	// HeartbeatPeriod is the master's heartbeat interval.
	HeartbeatPeriod sim.Duration
	// MissThreshold is how many consecutive missing heartbeats declare
	// the master dead.
	MissThreshold int
	// PromotionDelay is the time a slave needs to take over (state
	// re-validation, output enable).
	PromotionDelay sim.Duration
}

// DefaultConfig returns a 10 ms heartbeat with a 3-miss threshold
// (ablation A3 sweeps these).
func DefaultConfig() Config {
	return Config{
		HeartbeatPeriod: 10 * sim.Millisecond,
		MissThreshold:   3,
		PromotionDelay:  5 * sim.Millisecond,
	}
}

// Event records one failover.
type Event struct {
	Group      string
	FailedECU  string
	DetectedAt sim.Time
	PromotedAt sim.Time
	NewMaster  string
	// ServiceGap is the span from the last master output before the
	// failure to the first output of the new master.
	ServiceGap sim.Duration
}

// Group is one replicated application: instance 0..n-1 across distinct
// nodes, exactly one of which is master at any time.
type Group struct {
	mgr       *Manager
	logical   string
	cfg       Config
	instances []*platform.AppInstance
	nodes     []*platform.Node
	master    int
	alive     []bool

	lastBeat   sim.Time
	lastOutput sim.Time
	lastSeen   []sim.Time // per-replica last activation (rejoin detection)
	ticker     *sim.Ticker
	promoting  bool
	// pollRef is the pending post-promotion output poll; held so a
	// fresh promotion (or future teardown) can cancel a stale poll
	// loop instead of leaking it (dynalint droppedref).
	pollRef sim.EventRef

	// OnOutput is invoked on every master activation (the replicated
	// function's externally visible service).
	OnOutput func(job int64)

	// Failovers lists every completed failover.
	Failovers []Event
	// Outputs counts externally visible activations.
	Outputs int64
}

// Manager creates and supervises replicated groups.
type Manager struct {
	k      *sim.Kernel
	p      *platform.Platform
	groups map[string]*Group
}

// NewManager creates a redundancy manager on the platform.
func NewManager(p *platform.Platform) *Manager {
	return &Manager{k: p.Kernel(), p: p, groups: map[string]*Group{}}
}

// Group returns a replicated group by logical name, or nil.
func (m *Manager) Group(logical string) *Group { return m.groups[logical] }

// Replicate installs spec on each named ECU (suffixing instance names
// with their replica index) and returns the group. The first node hosts
// the initial master. Spec.Replicas is ignored in favor of len(ecus).
func (m *Manager) Replicate(spec model.App, ecus []string, b platform.Behavior, cfg Config) (*Group, error) {
	if len(ecus) < 2 {
		return nil, fmt.Errorf("redundancy: need ≥ 2 ECUs, got %d", len(ecus))
	}
	if cfg.HeartbeatPeriod <= 0 || cfg.MissThreshold <= 0 {
		return nil, fmt.Errorf("redundancy: invalid config %+v", cfg)
	}
	g := &Group{mgr: m, logical: spec.Name, cfg: cfg, master: 0}
	for i, ecu := range ecus {
		node := m.p.Node(ecu)
		if node == nil {
			return nil, fmt.Errorf("redundancy: no node on ECU %s", ecu)
		}
		inst := spec
		inst.Name = fmt.Sprintf("%s/r%d", spec.Name, i)
		idx := i
		behavior := b
		userHook := b.OnActivate
		behavior.OnActivate = func(job int64) {
			g.onActivate(idx, job)
			if userHook != nil && idx == g.master {
				userHook(job)
			}
		}
		ai, err := node.Install(inst, behavior)
		if err != nil {
			return nil, fmt.Errorf("redundancy: replica %d on %s: %w", i, ecu, err)
		}
		g.instances = append(g.instances, ai)
		g.nodes = append(g.nodes, node)
		g.alive = append(g.alive, true)
		g.lastSeen = append(g.lastSeen, 0)
	}
	m.groups[spec.Name] = g
	return g, nil
}

// Start runs every replica (hot standby: slaves execute but only the
// master's outputs are externally visible) and begins heartbeat
// supervision.
func (g *Group) Start() error {
	for _, inst := range g.instances {
		if err := inst.Start(); err != nil {
			return err
		}
	}
	g.lastBeat = g.mgr.k.Now()
	g.ticker = g.mgr.k.Every(g.mgr.k.Now().Add(g.cfg.HeartbeatPeriod), g.cfg.HeartbeatPeriod, g.supervise)
	return nil
}

// Stop halts supervision and all replicas.
func (g *Group) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
	for _, inst := range g.instances {
		inst.Stop()
	}
}

// Master returns the current master's instance.
func (g *Group) Master() *platform.AppInstance { return g.instances[g.master] }

// onActivate handles a replica's activation: every replica's activations
// feed rejoin detection; the master's activations additionally are the
// service output and double as heartbeats.
func (g *Group) onActivate(idx int, _ int64) {
	g.lastSeen[idx] = g.mgr.k.Now()
	if idx != g.master || !g.alive[idx] {
		return
	}
	now := g.mgr.k.Now()
	g.lastBeat = now
	g.lastOutput = now
	g.Outputs++
	if g.OnOutput != nil {
		g.OnOutput(g.Outputs)
	}
}

// rejoinWindow is the freshness bound for re-admitting a replica: it
// must have activated within MissThreshold heartbeat periods.
func (g *Group) rejoinWindow() sim.Duration {
	return sim.Duration(g.cfg.MissThreshold) * g.cfg.HeartbeatPeriod
}

// readmit marks previously failed replicas alive again once they are
// running *and* demonstrably executing (a repaired/rebooted ECU's
// replica resumes activating; a hung one does not, even though its app
// state still reads running — liveness is judged by activity, not
// state).
func (g *Group) readmit(now sim.Time) {
	for i := range g.instances {
		if g.alive[i] || i == g.master {
			continue
		}
		if g.instances[i].State == platform.StateRunning &&
			g.lastSeen[i] > 0 && now.Sub(g.lastSeen[i]) < g.rejoinWindow() {
			g.alive[i] = true
			g.mgr.k.Trace("redundancy", "%s replica %d rejoined", g.logical, i)
		}
	}
}

// pickNext selects the lowest-indexed promotable replica, or -1.
func (g *Group) pickNext() int {
	for i := range g.instances {
		if i != g.master && g.alive[i] && g.instances[i].State == platform.StateRunning {
			return i
		}
	}
	return -1
}

// supervise checks heartbeat freshness and fails over when the master has
// been silent for MissThreshold periods.
func (g *Group) supervise() {
	if g.promoting {
		return
	}
	now := g.mgr.k.Now()
	g.readmit(now)
	silent := now.Sub(g.lastBeat)
	if silent < g.rejoinWindow() {
		return
	}
	// Master considered dead. Record the fault once per failure episode
	// (supervise keeps ticking while no replacement exists).
	failed := g.master
	if g.alive[failed] {
		g.alive[failed] = false
		g.nodes[failed].Diag().RecordFault(platform.Fault{
			App: g.instances[failed].Spec.Name, Kind: platform.FaultHeartbeatLost,
			At: now, Detail: fmt.Sprintf("silent for %v", silent),
		})
	}
	g.beginPromotion(failed, now, g.lastOutput)
}

// beginPromotion selects a replacement and promotes it after the
// promotion delay. The candidate is re-validated when the delay expires:
// a second ECU failure during the promotion window (the double-failure
// window) kills the candidate before it ever outputs, in which case the
// next live replica is promoted immediately — without waiting for a
// fresh heartbeat-silence detection on a master that never spoke.
func (g *Group) beginPromotion(failed int, detected sim.Time, lastOut sim.Time) {
	next := g.pickNext()
	if next < 0 {
		return // no live replica now; supervise keeps watching for rejoins
	}
	// A stale output poll from a previous promotion must not survive
	// into this one: it would attribute the new master's first output
	// to the old failover record.
	g.pollRef.Cancel()
	g.promoting = true
	g.mgr.k.After(g.cfg.PromotionDelay, func() {
		g.promoting = false
		if g.instances[next].State != platform.StateRunning || !g.alive[next] {
			// Candidate died during the promotion window: try the next
			// replica right away.
			g.alive[next] = false
			g.beginPromotion(failed, detected, lastOut)
			return
		}
		g.master = next
		// Grace period: the new master gets a fresh heartbeat window.
		g.lastBeat = g.mgr.k.Now()
		// The new master's next activation produces output; record the
		// failover once it does.
		prevOutputs := g.Outputs
		polls := 0
		var poll func()
		poll = func() {
			polls++
			if polls > 1000 {
				return // new master never produced output; give up
			}
			if g.Outputs > prevOutputs {
				g.Failovers = append(g.Failovers, Event{
					Group:      g.logical,
					FailedECU:  g.nodes[failed].ECU().Name,
					DetectedAt: detected,
					PromotedAt: g.mgr.k.Now(),
					NewMaster:  g.instances[next].Spec.Name,
					ServiceGap: g.mgr.k.Now().Sub(lastOut),
				})
				return
			}
			g.pollRef = g.mgr.k.After(g.cfg.HeartbeatPeriod/2, poll)
		}
		poll()
	})
}

// FailECU simulates a hard ECU failure: every application instance on the
// node stops immediately (Section 3.3's highway scenario). It delegates
// to the node's fault-injection crash, so ad hoc failures and campaign-
// driven ones (internal/faults) share one code path.
func (m *Manager) FailECU(ecu string) error {
	node := m.p.Node(ecu)
	if node == nil {
		return fmt.Errorf("redundancy: unknown ECU %s", ecu)
	}
	node.Crash()
	return nil
}
