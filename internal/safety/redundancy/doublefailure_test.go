package redundancy

import (
	"testing"

	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
)

// TestSecondFailureInsidePromotionWindow: the replacement ECU dies while
// its promotion delay is still running. The re-validation at the end of
// the window must detect the dead candidate and promote the third
// replica immediately — not wait for a heartbeat-silence detection on a
// master that never produced a heartbeat.
func TestSecondFailureInsidePromotionWindow(t *testing.T) {
	p := newPlatform(t, "a", "b", "c")
	m := NewManager(p)
	cfg := DefaultConfig() // 10 ms heartbeat, 3 misses, 5 ms promotion
	g, err := m.Replicate(steerSpec(), []string{"a", "b", "c"}, platform.Behavior{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	k := p.Kernel()
	// Master a dies at 101 ms (last output 100 ms); detection at the
	// 130 ms supervision tick; b's promotion completes at 135 ms.
	k.At(sim.Time(ms(101)), func() { m.FailECU("a") })
	// b dies at 133 ms — inside the promotion window.
	k.At(sim.Time(ms(133)), func() { m.FailECU("b") })
	k.RunUntil(sim.Time(ms(600)))
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers = %d: %+v", len(g.Failovers), g.Failovers)
	}
	ev := g.Failovers[0]
	if ev.NewMaster != "steer/r2" {
		t.Errorf("new master = %s, want steer/r2 (b died mid-promotion)", ev.NewMaster)
	}
	// Immediate re-promotion: the gap is one detection + two promotion
	// delays + one activation period, nowhere near a second full
	// detection cycle.
	maxGap := sim.Duration(cfg.MissThreshold+1)*cfg.HeartbeatPeriod +
		2*cfg.PromotionDelay + cfg.HeartbeatPeriod
	if ev.ServiceGap <= 0 || ev.ServiceGap > maxGap {
		t.Errorf("service gap = %v, bound %v", ev.ServiceGap, maxGap)
	}
	before := g.Outputs
	k.RunUntil(sim.Time(ms(900)))
	if g.Outputs <= before {
		t.Error("no outputs after double failure")
	}
}

// TestKillPromotedMasterOneHeartbeatLater: the newly promoted master
// survives promotion, produces output, and is killed one heartbeat
// later. A second, full detection cycle must promote the third replica
// with a bounded service gap.
func TestKillPromotedMasterOneHeartbeatLater(t *testing.T) {
	p := newPlatform(t, "a", "b", "c")
	m := NewManager(p)
	cfg := DefaultConfig()
	g, err := m.Replicate(steerSpec(), []string{"a", "b", "c"}, platform.Behavior{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	k := p.Kernel()
	k.At(sim.Time(ms(101)), func() { m.FailECU("a") })
	// Watch for b's promotion, then kill it one heartbeat later.
	killed := false
	k.Every(sim.Time(ms(1)), ms(1), func() {
		if killed || len(g.Failovers) != 1 {
			return
		}
		killed = true
		k.After(cfg.HeartbeatPeriod, func() { m.FailECU("b") })
	})
	k.RunUntil(sim.Time(ms(900)))
	if !killed {
		t.Fatal("first failover never observed")
	}
	if len(g.Failovers) != 2 {
		t.Fatalf("failovers = %d: %+v", len(g.Failovers), g.Failovers)
	}
	if g.Failovers[1].NewMaster != "steer/r2" {
		t.Errorf("second failover = %+v", g.Failovers[1])
	}
	// Both gaps bounded by detection + promotion + one period.
	maxGap := sim.Duration(cfg.MissThreshold+1)*cfg.HeartbeatPeriod +
		cfg.PromotionDelay + 2*cfg.HeartbeatPeriod
	for i, ev := range g.Failovers {
		if ev.ServiceGap <= 0 || ev.ServiceGap > maxGap {
			t.Errorf("failover %d service gap = %v, bound %v", i, ev.ServiceGap, maxGap)
		}
	}
	before := g.Outputs
	k.RunUntil(sim.Time(ms(1200)))
	if g.Outputs <= before {
		t.Error("service dead after second failover")
	}
}

// TestRepairedReplicaRejoins: a crashed ECU that is repaired resumes
// executing its replica; the group re-admits it (activity-based) and can
// promote it when the standing master later dies.
func TestRepairedReplicaRejoins(t *testing.T) {
	p := newPlatform(t, "a", "b")
	m := NewManager(p)
	g, err := m.Replicate(steerSpec(), []string{"a", "b"}, platform.Behavior{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	k := p.Kernel()
	var stopped []string
	k.At(sim.Time(ms(101)), func() { stopped = p.Node("a").Crash() })
	k.At(sim.Time(ms(300)), func() { p.Node("a").Restore(stopped) })
	k.At(sim.Time(ms(501)), func() { m.FailECU("b") })
	k.RunUntil(sim.Time(ms(900)))
	if len(g.Failovers) != 2 {
		t.Fatalf("failovers = %d: %+v", len(g.Failovers), g.Failovers)
	}
	if g.Failovers[1].NewMaster != "steer/r0" {
		t.Errorf("repaired replica not promoted: %+v", g.Failovers[1])
	}
	before := g.Outputs
	k.RunUntil(sim.Time(ms(1200)))
	if g.Outputs <= before {
		t.Error("no outputs from rejoined replica")
	}
}

// TestHungReplicaNotReadmitted: a hung node's replica still reads
// "running" but does not execute; liveness is judged by activity, so it
// must not be re-admitted until the hang clears.
func TestHungReplicaNotReadmitted(t *testing.T) {
	p := newPlatform(t, "a", "b")
	m := NewManager(p)
	g, err := m.Replicate(steerSpec(), []string{"a", "b"}, platform.Behavior{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	k := p.Kernel()
	k.At(sim.Time(ms(101)), func() { p.Node("a").SetHung(true) })
	k.At(sim.Time(ms(401)), func() { m.FailECU("b") })
	k.RunUntil(sim.Time(ms(600)))
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers at 600ms = %d: %+v", len(g.Failovers), g.Failovers)
	}
	// Both replicas out: service stalls, hung r0 must not be promoted.
	stalled := g.Outputs
	k.RunUntil(sim.Time(ms(700)))
	if g.Outputs != stalled {
		t.Fatal("outputs produced while both replicas were dead/hung")
	}
	// Hang clears: r0 resumes activating, is re-admitted and promoted.
	k.At(sim.Time(ms(701)), func() { p.Node("a").SetHung(false) })
	k.RunUntil(sim.Time(ms(1100)))
	if len(g.Failovers) != 2 || g.Failovers[1].NewMaster != "steer/r0" {
		t.Fatalf("unhung replica not promoted: %+v", g.Failovers)
	}
	if g.Outputs <= stalled {
		t.Error("service still dead after hang cleared")
	}
}
