// Package gateway implements a store-and-forward protocol gateway between
// two heterogeneous in-vehicle networks (e.g. a CAN body domain and the
// Ethernet backbone). Today's E/E architectures (the paper's Figure 1)
// interconnect their domain buses exactly this way, and a dynamic
// platform must keep doing so during the migration period.
//
// The gateway attaches to both networks as a station, applies a routing
// table keyed by message ID, re-segments payloads to the target
// technology's MTU, remaps traffic classes, and accounts per-route
// statistics including added latency.
package gateway

import (
	"fmt"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// Route forwards matching messages from one network to another.
type Route struct {
	// FromNet and ToNet name the source and destination networks.
	FromNet, ToNet string
	// ID matches the technology-level message ID on the source network.
	ID uint32
	// RemapID optionally rewrites the ID on the target network
	// (0 keeps the original).
	RemapID uint32
	// RemapClass optionally overrides the traffic class (nil keeps it).
	RemapClass *network.Class
	// Dst optionally overrides the destination station on the target
	// network ("" keeps the original destination).
	Dst string
}

// Config tunes the gateway.
type Config struct {
	Name string
	// ProcDelay is the store-and-forward processing latency per message.
	ProcDelay sim.Duration
	// QueueCap bounds buffered messages per target network; overflow is
	// dropped and counted (0 = 64).
	QueueCap int
}

// Port is one attached network with its MTU.
type Port struct {
	Net network.Network
	MTU int
}

// Gateway bridges two or more networks.
type Gateway struct {
	cfg    Config
	k      *sim.Kernel
	ports  map[string]Port
	routes map[string]map[uint32]Route // fromNet → id → route
	queued map[string]int              // per target net

	// Forwarded and Dropped count routed and overflowed messages.
	Forwarded, Dropped int64
	// AddedLatency samples the gateway's contribution (receipt→resend).
	AddedLatency sim.Sample
}

// New creates a gateway on the kernel.
func New(k *sim.Kernel, cfg Config) *Gateway {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	return &Gateway{
		cfg:    cfg,
		k:      k,
		ports:  map[string]Port{},
		routes: map[string]map[uint32]Route{},
		queued: map[string]int{},
	}
}

// AttachPort connects the gateway to a network with the given MTU. The
// gateway registers itself as station cfg.Name.
func (g *Gateway) AttachPort(net network.Network, mtu int) {
	if mtu <= 0 {
		panic("gateway: MTU must be positive")
	}
	name := net.Name()
	g.ports[name] = Port{Net: net, MTU: mtu}
	net.Attach(g.cfg.Name, func(d network.Delivery) { g.onDelivery(name, d) })
}

// AddRoute installs a forwarding rule. Both networks must be attached.
func (g *Gateway) AddRoute(r Route) error {
	if _, ok := g.ports[r.FromNet]; !ok {
		return fmt.Errorf("gateway: source network %q not attached", r.FromNet)
	}
	if _, ok := g.ports[r.ToNet]; !ok {
		return fmt.Errorf("gateway: target network %q not attached", r.ToNet)
	}
	if r.FromNet == r.ToNet {
		return fmt.Errorf("gateway: route loops on %q", r.FromNet)
	}
	m, ok := g.routes[r.FromNet]
	if !ok {
		m = map[uint32]Route{}
		g.routes[r.FromNet] = m
	}
	if _, dup := m[r.ID]; dup {
		return fmt.Errorf("gateway: duplicate route for id %#x on %s", r.ID, r.FromNet)
	}
	m[r.ID] = r
	return nil
}

func (g *Gateway) onDelivery(fromNet string, d network.Delivery) {
	route, ok := g.routes[fromNet][d.Msg.ID]
	if !ok {
		return // not routed; local traffic
	}
	target := g.ports[route.ToNet]
	if g.queued[route.ToNet] >= g.cfg.QueueCap {
		g.Dropped++
		g.k.Trace("gateway", "%s: drop id=%#x (queue full towards %s)",
			g.cfg.Name, d.Msg.ID, route.ToNet)
		return
	}
	g.queued[route.ToNet]++
	received := g.k.Now()
	g.k.After(g.cfg.ProcDelay, func() {
		g.queued[route.ToNet]--
		out := d.Msg
		out.Src = g.cfg.Name
		if route.RemapID != 0 {
			out.ID = route.RemapID
		}
		if route.RemapClass != nil {
			out.Class = *route.RemapClass
		}
		if route.Dst != "" {
			out.Dst = route.Dst
		}
		g.AddedLatency.AddDuration(g.k.Now().Sub(received))
		// Re-segment to the target MTU.
		segments := (out.Bytes + target.MTU - 1) / target.MTU
		if segments < 1 {
			segments = 1
		}
		remaining := out.Bytes
		for i := 0; i < segments; i++ {
			seg := out
			seg.Bytes = target.MTU
			if remaining < target.MTU {
				seg.Bytes = remaining
			}
			remaining -= seg.Bytes
			target.Net.Send(seg)
		}
		g.Forwarded++
	})
}
