package gateway

import (
	"testing"

	"dynaplat/internal/can"
	"dynaplat/internal/faults"
	"dynaplat/internal/network"
	"dynaplat/internal/sim"
	"dynaplat/internal/tsn"
)

type rig struct {
	k   *sim.Kernel
	bus *can.Bus
	eth *tsn.Network
	gw  *Gateway
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000})
	eth := tsn.New(k, tsn.DefaultConfig("backbone"))
	gw := New(k, Config{Name: "gw", ProcDelay: 50 * sim.Microsecond})
	gw.AttachPort(bus, can.MaxPayload)
	gw.AttachPort(eth, 1400)
	return &rig{k: k, bus: bus, eth: eth, gw: gw}
}

func TestCANToEthernetForwarding(t *testing.T) {
	r := newRig(t)
	if err := r.gw.AddRoute(Route{FromNet: "body", ToNet: "backbone",
		ID: 0x100, Dst: "head"}); err != nil {
		t.Fatal(err)
	}
	r.bus.Attach("sensor", func(network.Delivery) {})
	var got []network.Delivery
	r.eth.Attach("head", func(d network.Delivery) { got = append(got, d) })
	r.bus.Send(network.Message{ID: 0x100, Src: "sensor", Bytes: 8, Payload: "v"})
	r.k.Run()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if got[0].Msg.Src != "gw" || got[0].Msg.Payload != "v" || got[0].Msg.ID != 0x100 {
		t.Errorf("forwarded = %+v", got[0].Msg)
	}
	if r.gw.Forwarded != 1 || r.gw.Dropped != 0 {
		t.Errorf("forwarded=%d dropped=%d", r.gw.Forwarded, r.gw.Dropped)
	}
	// Gateway adds at least its processing delay.
	if r.gw.AddedLatency.Min() < float64(50*sim.Microsecond) {
		t.Errorf("added latency = %v", r.gw.AddedLatency.Min())
	}
}

func TestEthernetToCANSegmentation(t *testing.T) {
	// A 20-byte Ethernet message must become 3 CAN frames.
	r := newRig(t)
	if err := r.gw.AddRoute(Route{FromNet: "backbone", ToNet: "body",
		ID: 0x42, Dst: "zone"}); err != nil {
		t.Fatal(err)
	}
	r.eth.Attach("head", func(network.Delivery) {})
	var frames []int
	r.bus.Attach("zone", func(d network.Delivery) { frames = append(frames, d.Msg.Bytes) })
	r.eth.Send(network.Message{ID: 0x42, Src: "head", Dst: "gw", Bytes: 20})
	r.k.Run()
	if len(frames) != 3 {
		t.Fatalf("frames = %v, want 3 segments", frames)
	}
	if frames[0] != 8 || frames[1] != 8 || frames[2] != 4 {
		t.Errorf("segment sizes = %v", frames)
	}
}

func TestRemapIDAndClass(t *testing.T) {
	r := newRig(t)
	cls := network.ClassControl
	r.gw.AddRoute(Route{FromNet: "body", ToNet: "backbone",
		ID: 0x100, RemapID: 0x9000, RemapClass: &cls, Dst: "head"})
	r.bus.Attach("sensor", func(network.Delivery) {})
	var got network.Message
	r.eth.Attach("head", func(d network.Delivery) { got = d.Msg })
	r.bus.Send(network.Message{ID: 0x100, Src: "sensor", Bytes: 4})
	r.k.Run()
	if got.ID != 0x9000 || got.Class != network.ClassControl {
		t.Errorf("remap = %+v", got)
	}
}

func TestUnroutedStaysLocal(t *testing.T) {
	r := newRig(t)
	r.gw.AddRoute(Route{FromNet: "body", ToNet: "backbone", ID: 0x100, Dst: "head"})
	r.bus.Attach("sensor", func(network.Delivery) {})
	count := 0
	r.eth.Attach("head", func(network.Delivery) { count++ })
	r.bus.Send(network.Message{ID: 0x200, Src: "sensor", Bytes: 4}) // no route
	r.k.Run()
	if count != 0 || r.gw.Forwarded != 0 {
		t.Errorf("unrouted message forwarded: count=%d", count)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000})
	eth := tsn.New(k, tsn.DefaultConfig("backbone"))
	gw := New(k, Config{Name: "gw", ProcDelay: 100 * sim.Millisecond, QueueCap: 2})
	gw.AttachPort(bus, can.MaxPayload)
	gw.AttachPort(eth, 1400)
	gw.AddRoute(Route{FromNet: "body", ToNet: "backbone", ID: 1, Dst: "head"})
	bus.Attach("s", func(network.Delivery) {})
	eth.Attach("head", func(network.Delivery) {})
	for i := 0; i < 5; i++ {
		bus.Send(network.Message{ID: 1, Src: "s", Bytes: 1})
	}
	k.Run()
	if gw.Dropped != 3 || gw.Forwarded != 2 {
		t.Errorf("dropped=%d forwarded=%d, want 3/2", gw.Dropped, gw.Forwarded)
	}
}

func TestRouteValidation(t *testing.T) {
	r := newRig(t)
	cases := []Route{
		{FromNet: "ghost", ToNet: "backbone", ID: 1},
		{FromNet: "body", ToNet: "ghost", ID: 1},
		{FromNet: "body", ToNet: "body", ID: 1},
	}
	for i, c := range cases {
		if err := r.gw.AddRoute(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := r.gw.AddRoute(Route{FromNet: "body", ToNet: "backbone", ID: 7}); err != nil {
		t.Fatal(err)
	}
	if err := r.gw.AddRoute(Route{FromNet: "body", ToNet: "backbone", ID: 7}); err == nil {
		t.Error("duplicate route accepted")
	}
}

func TestBidirectionalRoundTrip(t *testing.T) {
	// sensor (CAN) → gw → head (Eth) and a command back.
	r := newRig(t)
	r.gw.AddRoute(Route{FromNet: "body", ToNet: "backbone", ID: 0x10, Dst: "head"})
	r.gw.AddRoute(Route{FromNet: "backbone", ToNet: "body", ID: 0x20, Dst: "sensor"})
	var cmd []network.Delivery
	r.bus.Attach("sensor", func(d network.Delivery) { cmd = append(cmd, d) })
	r.eth.Attach("head", func(d network.Delivery) {
		// Respond to the status with a command.
		r.eth.Send(network.Message{ID: 0x20, Src: "head", Dst: "gw", Bytes: 2})
	})
	r.bus.Send(network.Message{ID: 0x10, Src: "sensor", Bytes: 8})
	r.k.Run()
	if len(cmd) != 1 {
		t.Fatalf("round trip deliveries = %d", len(cmd))
	}
	if r.gw.Forwarded != 2 {
		t.Errorf("forwarded = %d", r.gw.Forwarded)
	}
}

// The gateway composed with the frame-fault layer (E18 under faults):
// both sides of the bridge are wrapped in faults.WrapNetwork, the CAN
// side suffers injected loss plus a partition window on the sending
// station, the Ethernet side suffers its own loss — and every frame is
// accounted for exactly once across the whole chain:
//
//	sends = blocked(partition) + dropped(body) + dropped(gateway queue)
//	      + dropped(backbone) + delivered
func TestGatewayFaultComposition(t *testing.T) {
	k := sim.NewKernel(7)
	body := faults.WrapNetwork(k,
		can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000}),
		faults.NetConfig{LossRate: 0.25})
	backbone := faults.WrapNetwork(k,
		tsn.New(k, tsn.DefaultConfig("backbone")),
		faults.NetConfig{LossRate: 0.10})
	gw := New(k, Config{Name: "gw", ProcDelay: 50 * sim.Microsecond})
	gw.AttachPort(body, can.MaxPayload)
	gw.AttachPort(backbone, 1400)
	if err := gw.AddRoute(Route{FromNet: "body", ToNet: "backbone",
		ID: 0x100, Dst: "head"}); err != nil {
		t.Fatal(err)
	}

	body.Attach("sensor", func(network.Delivery) {})
	var received int64
	backbone.Attach("head", func(network.Delivery) { received++ })

	const sends = 400
	sent := 0
	var tick func()
	tick = func() {
		if sent >= sends {
			return
		}
		sent++
		body.Send(network.Message{ID: 0x100, Src: "sensor", Dst: "gw",
			Bytes: 8, Payload: "v"})
		k.After(2*sim.Millisecond, tick)
	}
	k.At(0, tick)
	// A partition window on the sender mid-run: its frames are contained
	// at the fault layer, never reaching the bridge.
	k.At(sim.Time(200*sim.Millisecond), func() { body.Partition("sensor") })
	k.At(sim.Time(300*sim.Millisecond), func() { body.Heal("sensor") })
	k.Run()

	if body.FramesBlocked == 0 {
		t.Error("partition window blocked no frames")
	}
	if body.FramesDropped == 0 || backbone.FramesDropped == 0 {
		t.Errorf("expected injected loss on both sides, got body=%d backbone=%d",
			body.FramesDropped, backbone.FramesDropped)
	}
	// CAN-side account: every send was blocked, dropped, or reached the bus.
	if got := body.FramesBlocked + body.FramesDropped + body.Passed; got != sends {
		t.Errorf("body side leaks frames: blocked=%d dropped=%d passed=%d, sum=%d want %d",
			body.FramesBlocked, body.FramesDropped, body.Passed, got, sends)
	}
	// Bridge account: the gateway saw exactly the frames the CAN side
	// passed, and forwarded or queue-dropped each one.
	if gw.Forwarded+gw.Dropped != body.Passed {
		t.Errorf("gateway account open: forwarded=%d dropped=%d, body passed=%d",
			gw.Forwarded, gw.Dropped, body.Passed)
	}
	// Ethernet-side account: one segment per forwarded message (8 bytes
	// fits one Ethernet frame), each passed or dropped.
	if backbone.Passed+backbone.FramesDropped != gw.Forwarded {
		t.Errorf("backbone account open: passed=%d dropped=%d, forwarded=%d",
			backbone.Passed, backbone.FramesDropped, gw.Forwarded)
	}
	if received != backbone.Passed {
		t.Errorf("delivered %d, backbone passed %d", received, backbone.Passed)
	}
	// Whole-chain closure.
	total := body.FramesBlocked + body.FramesDropped + gw.Dropped +
		backbone.FramesDropped + received
	if total != sends {
		t.Errorf("chain account open: %d of %d frames accounted", total, sends)
	}
}
