package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MaporderAnalyzer enforces the byte-stable-output contract: Go
// randomizes map iteration order, so a `range` over a map whose body
// feeds an ordered sink — a writer, a trace/metric sink, an event
// schedule, or an accumulator slice that is never sorted — produces
// output that differs run to run. This is the exact hazard behind the
// byte-identical trace/metrics dumps (DESIGN.md §7): every ordered
// emission derived from a map must go through sorted keys.
//
// Three hazard classes are detected inside a map-range body:
//
//  1. direct ordered output: fmt.Print/Fprint* and Write*-style method
//     calls (plus Record/Emit/Publish/Enqueue/Push sinks);
//  2. kernel scheduling: sim.Kernel At/After/Every & friends — event
//     sequence numbers are handed out in call order, so scheduling
//     from a map range makes same-instant tie-breaking nondeterministic;
//  3. unsorted accumulation: append to a slice that is not passed to a
//     sort in the statements following the loop.
//
// v2 closes the v1 false negative: a call inside the map range to a
// *named function* — local closure or package function, at any depth —
// that itself emits into an outliving ordered sink or schedules kernel
// events is resolved through the call graph and reported with the
// witness path. A helper that only writes into its own locals (e.g.
// assembling and returning a string) is not an emitter: the order
// hazard, if any, is at the caller's use of the value, which classes
// 1–3 already cover.
func MaporderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "no ordered output, kernel scheduling, or unsorted accumulation from inside a map range, directly or through called helpers; sort the keys first",
		Run:  runMaporder,
	}
}

// emitMethods are method names treated as ordered sinks regardless of
// receiver type.
var emitMethods = map[string]bool{
	"Record":  true,
	"Emit":    true,
	"Publish": true,
	"Enqueue": true,
	"Push":    true,
}

// kernelSchedule are sim.Kernel methods that consume an event sequence
// number (or arm a recurring one).
var kernelSchedule = map[string]bool{
	"At":            true,
	"AtPriority":    true,
	"AtCall":        true,
	"After":         true,
	"AfterPriority": true,
	"AfterCall":     true,
	"Every":         true,
}

// maporderEmitSeeds returns the sites where one function body emits
// into an ordered sink that outlives the call: fmt.Print* (stdout),
// fmt.Fprint* to a non-local writer, and Write*/Record/Emit/... method
// calls on a non-local receiver. Writes into the function's own locals
// (a strings.Builder assembled and returned) are not emissions.
func maporderEmitSeeds(n *FuncNode) []Seed {
	var out []Seed
	n.walkOwn(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := n.Pkg.Info.Uses[id].(*types.PkgName); ok {
				if pn.Imported().Path() != "fmt" {
					return true
				}
				if strings.HasPrefix(name, "Print") {
					out = append(out, Seed{Pos: call.Pos(), Desc: "fmt." + name})
				}
				if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 &&
					!localToNode(n, call.Args[0]) {
					out = append(out, Seed{Pos: call.Pos(), Desc: "fmt." + name})
				}
				return true
			}
		}
		if sel, ok := n.Pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if (strings.HasPrefix(name, "Write") || emitMethods[name]) &&
				!localToNode(n, fun.X) {
				out = append(out, Seed{Pos: call.Pos(), Desc: exprString(fun)})
			}
		}
		return true
	})
	return out
}

// maporderSchedSeeds returns the sites where one function body consumes
// kernel event sequence numbers.
func maporderSchedSeeds(n *FuncNode) []Seed {
	var out []Seed
	n.walkOwn(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !kernelSchedule[fun.Sel.Name] {
			return true
		}
		if sel, ok := n.Pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal &&
			namedFrom(sel.Recv(), "dynaplat/internal/sim", "Kernel") {
			out = append(out, Seed{Pos: call.Pos(), Desc: "Kernel." + fun.Sel.Name})
		}
		return true
	})
	return out
}

// localToNode reports whether the expression's root identifier is a
// variable declared inside the function body itself (not a parameter,
// receiver, captured variable, or package-level object).
func localToNode(n *FuncNode, e ast.Expr) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := n.Pkg.Info.Uses[v]
			if obj == nil {
				obj = n.Pkg.Info.Defs[v]
			}
			if obj == nil {
				return false
			}
			body := n.Body()
			return body != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return false
		}
	}
}

func runMaporder(prog *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			out = append(out, inspectMapRange(prog, pkg, file, rs)...)
			return true
		})
	}
	return out
}

func inspectMapRange(prog *Program, pkg *Package, f *ast.File, rs *ast.RangeStmt) []Diagnostic {
	emitTaints := prog.taint("maporder", "maporder/emit", maporderEmitSeeds)
	schedTaints := prog.taint("maporder", "maporder/sched", maporderSchedSeeds)
	var out []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// The hazardous act is the call made during iteration; what a
		// deferred closure does internally is attributed to the call
		// that registered it.
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		direct := false
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && isBuiltin(pkg, fun) {
				target, targetID := appendTarget(call)
				// A slice declared inside the loop body cannot
				// accumulate across iterations, so map order cannot
				// leak into it.
				if target != "" && !declaredWithin(pkg, targetID, rs) &&
					!sortedAfter(pkg, f, rs, target) {
					out = append(out, pkg.diag("maporder", call.Pos(),
						"append to %q inside map range without a following sort: map iteration order is randomized; collect keys and sort, or sort %q before use",
						target, target))
					direct = true
				}
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok && isPkgName(pkg, id) {
				if id.Name == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					out = append(out, pkg.diag("maporder", call.Pos(),
						"fmt.%s inside map range emits in randomized map order; iterate sorted keys instead", name))
					direct = true
				}
			} else if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				recvKernel := namedFrom(sel.Recv(), "dynaplat/internal/sim", "Kernel")
				switch {
				case recvKernel && kernelSchedule[name]:
					out = append(out, pkg.diag("maporder", call.Pos(),
						"Kernel.%s inside map range consumes event sequence numbers in randomized map order, breaking same-instant determinism; schedule from sorted keys", name))
					direct = true
				case strings.HasPrefix(name, "Write") || emitMethods[name]:
					out = append(out, pkg.diag("maporder", call.Pos(),
						"%s inside map range emits into an ordered sink in randomized map order; iterate sorted keys instead", name))
					direct = true
				}
			}
		}
		if direct {
			return true
		}
		// Transitive pass: resolve the call through the call graph and
		// report callees that emit or schedule at any depth.
		for _, e := range prog.Graph().EdgesAt(call) {
			if t := emitTaints[e.Callee]; t != nil {
				out = append(out, pkg.diag("maporder", call.Pos(),
					"%s %s inside map range reaches an ordered sink through %s; map iteration order is randomized — iterate sorted keys instead",
					edgeVerb(e), describeCallee(e), t.Path(pkg)))
				continue
			}
			if t := schedTaints[e.Callee]; t != nil {
				out = append(out, pkg.diag("maporder", call.Pos(),
					"%s %s inside map range reaches kernel scheduling through %s, breaking same-instant determinism; schedule from sorted keys",
					edgeVerb(e), describeCallee(e), t.Path(pkg)))
			}
		}
		return true
	})
	return out
}

// isBuiltin reports whether id resolves to a Go builtin.
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	_, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// appendTarget returns the name of the slice being grown, when it is a
// plain identifier.
func appendTarget(call *ast.CallExpr) (string, *ast.Ident) {
	if len(call.Args) == 0 {
		return "", nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return id.Name, id
	}
	return "", nil
}

// declaredWithin reports whether the object id refers to is declared
// inside the range statement (loop-local accumulators reset every
// iteration).
func declaredWithin(pkg *Package, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// sortedAfter reports whether any statement after the range loop (in
// its enclosing block) passes the named slice to a sort — sort.*,
// slices.*, or any call whose callee name mentions Sort.
func sortedAfter(pkg *Package, f *ast.File, rs *ast.RangeStmt, target string) bool {
	rest := enclosingBlockAfter(f, rs)
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSortCall(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				if mentionsIdent(arg, target) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && isPkgName(pkg, id) &&
			(id.Name == "sort" || id.Name == "slices") {
			return true
		}
		return strings.Contains(fun.Sel.Name, "Sort") || strings.Contains(fun.Sel.Name, "sort")
	case *ast.Ident:
		return strings.Contains(fun.Name, "Sort") || strings.Contains(fun.Name, "sort")
	}
	return false
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
