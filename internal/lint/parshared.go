package lint

import (
	"go/ast"
	"go/types"
)

const parForEach = "dynaplat/internal/par.ForEach"

// ParsharedAnalyzer enforces the worker-pool write-discipline contract:
// a callback handed to internal/par.ForEach runs concurrently on every
// worker, so it may only write into the slot it owns — the element of a
// pre-sized results slice addressed by its own index parameter. Any
// other write to captured state is a data race that Go's race detector
// only catches when the schedule happens to interleave, and — worse for
// this codebase — a determinism leak: the winning writer depends on OS
// scheduling, so the merged result differs run to run.
//
// Flagged inside the callback (at any nesting depth — a closure spawned
// from the callback still runs on the worker):
//
//   - assignment to a captured or package-level variable;
//   - any write into a captured map (concurrent map writes fault);
//   - a write into a captured slice/array whose index expression does
//     not mention the callback's index parameter (two workers can claim
//     the same slot);
//   - writes through captured pointers or fields of captured structs.
//
// Channel sends are allowed: draining a channel after Wait is the
// pool's approved streaming shape. Mutating a captured value by calling
// a method on it is not seen (documented conservatism — the receiver
// read is not an assignment).
func ParsharedAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "parshared",
		Doc:  "callbacks passed to par.ForEach may only write through their own index parameter's slot; anything else races across workers",
		Exempt: []string{
			"dynaplat/internal/par", // the pool implementation itself
		},
		Run: runParshared,
	}
}

func runParshared(prog *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	seen := map[string]bool{} // a named callback reused by two pools reports once
	g := prog.Graph()
	for _, n := range g.Nodes() {
		if n.Pkg != pkg {
			continue
		}
		n.walkOwn(func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isForEachCall(pkg, call) || len(call.Args) == 0 {
				return true
			}
			cb := ast.Unparen(call.Args[len(call.Args)-1])
			body, idxParams := callbackBody(prog, pkg, cb)
			if body == nil {
				return true
			}
			for _, d := range checkCallbackWrites(pkg, body, idxParams) {
				key := d.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// isForEachCall reports whether the call statically resolves to
// internal/par.ForEach.
func isForEachCall(pkg *Package, call *ast.CallExpr) bool {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[f.Sel]
	case *ast.Ident:
		obj = pkg.Info.Uses[f]
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.FullName() == parForEach
}

// callbackBody resolves the worker callback expression to its body and
// the set of index-parameter objects. Inline literals and statically
// named functions are resolved; anything dynamic (a function-typed
// field, an interface method) is skipped — a documented conservatism.
func callbackBody(prog *Program, pkg *Package, cb ast.Expr) (*ast.BlockStmt, map[types.Object]bool) {
	switch v := cb.(type) {
	case *ast.FuncLit:
		return v.Body, fieldObjects(pkg, v.Type.Params)
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[v].(*types.Func); ok {
			if node := prog.Graph().NodeByObj(fn); node != nil && node.Decl != nil {
				return node.Decl.Body, fieldObjects(node.Pkg, node.Decl.Type.Params)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[v.Sel].(*types.Func); ok {
			if node := prog.Graph().NodeByObj(fn); node != nil && node.Decl != nil {
				return node.Decl.Body, fieldObjects(node.Pkg, node.Decl.Type.Params)
			}
		}
	}
	return nil, nil
}

func fieldObjects(pkg *Package, fl *ast.FieldList) map[types.Object]bool {
	set := map[types.Object]bool{}
	if fl == nil {
		return set
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				set[obj] = true
			}
		}
	}
	return set
}

// checkCallbackWrites walks the callback body — including nested
// literals, which also execute on the worker — and flags writes to
// shared state.
func checkCallbackWrites(pkg *Package, body *ast.BlockStmt, idxParams map[types.Object]bool) []Diagnostic {
	var out []Diagnostic
	flagWrite := func(lhs ast.Expr) {
		if d, bad := classifyWrite(pkg, body, idxParams, lhs); bad {
			out = append(out, d)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				flagWrite(lhs)
			}
		case *ast.IncDecStmt:
			flagWrite(s.X)
		}
		return true
	})
	return out
}

// classifyWrite decides whether one assignment target inside a ForEach
// callback is a race, returning the diagnostic when it is.
func classifyWrite(pkg *Package, body *ast.BlockStmt, idxParams map[types.Object]bool, lhs ast.Expr) (Diagnostic, bool) {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return Diagnostic{}, false
		}
		if obj := identObj(pkg, v); capturedBy(body, idxParams, obj) {
			return pkg.diag("parshared", v.Pos(),
				"ForEach callback assigns to captured variable %q: every worker writes the same location, a data race and a scheduling-dependent result; write into your own index's slot of a pre-sized slice instead", v.Name), true
		}
	case *ast.IndexExpr:
		root := rootIdent(v.X)
		obj := identObj(pkg, root)
		if !capturedBy(body, idxParams, obj) {
			return Diagnostic{}, false
		}
		if tv, ok := pkg.Info.Types[v.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return pkg.diag("parshared", v.Pos(),
					"ForEach callback writes into captured map %q: concurrent map writes fault at runtime; collect per-index results and merge after Wait", exprString(v.X)), true
			}
		}
		if !indexUsesParam(pkg, v.Index, idxParams) {
			return pkg.diag("parshared", v.Pos(),
				"ForEach callback writes %s with an index that is not its own index parameter: two workers can claim the same slot; index the results slice by the callback's index argument", exprString(v)), true
		}
	case *ast.SelectorExpr:
		root := rootIdent(v)
		if obj := identObj(pkg, root); capturedBy(body, idxParams, obj) {
			return pkg.diag("parshared", v.Pos(),
				"ForEach callback writes field %s of captured %q: every worker mutates the same object; write into your own index's slot instead", exprString(v), root.Name), true
		}
	case *ast.StarExpr:
		root := rootIdent(v.X)
		if obj := identObj(pkg, root); capturedBy(body, idxParams, obj) {
			return pkg.diag("parshared", v.Pos(),
				"ForEach callback writes through captured pointer %q: every worker writes the same location; write into your own index's slot instead", root.Name), true
		}
	}
	return Diagnostic{}, false
}

// identObj resolves an identifier to its object (use or def).
func identObj(pkg *Package, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// capturedBy reports whether the object is shared state from the
// callback's point of view: declared outside the callback body and not
// one of its own parameters.
func capturedBy(body *ast.BlockStmt, idxParams map[types.Object]bool, obj types.Object) bool {
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	if idxParams[obj] {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() >= body.End()
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier, or nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// indexUsesParam reports whether the index expression mentions one of
// the callback's own parameters.
func indexUsesParam(pkg *Package, idx ast.Expr, idxParams map[types.Object]bool) bool {
	found := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if idxParams[identObj(pkg, id)] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
