package lint

import (
	"go/ast"
	"go/types"
)

// SharedrngAnalyzer enforces the RNG-isolation contract in
// per-session/per-entity code: logic whose behavior must be a pure
// function of its own identity (a session ID, an entity seed) may not
// draw from the shared kernel RNG stream. Drawing from Kernel.RNG()
// couples a session's randomness to *every other consumer's* draw
// count, so adding an unrelated subsystem — or reordering two sessions
// — silently changes jitter, backoff, and sampling decisions that
// per-seed regression baselines depend on. This is the PR 7 CallRetry
// bug shape: retry jitter drawn from the shared stream made retry
// schedules depend on unrelated bus traffic; the fix derives a
// per-session RNG (sim.NewRNG(seed ^ mix(session))) or splits one at
// construction (RNG().Split()).
//
// The check is scoped via Only to the packages whose contracts are
// per-session/per-entity (SOA middleware, reconfiguration, redundancy).
// Construction-time Split() in platform/bus packages is the approved
// pattern and stays out of scope. Facts propagate interprocedurally:
// a helper that draws from the shared stream taints its callers at any
// depth, reported with the witness path.
func SharedrngAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "sharedrng",
		Doc:  "per-session/per-entity code must not draw from the shared kernel RNG (Kernel.RNG); derive a per-session RNG from the session identity instead",
		Only: []string{
			"dynaplat/internal/soa",
			"dynaplat/internal/reconfig",
			"dynaplat/internal/redundancy",
			"dynaplat/internal/lint/testdata/sharedrng",
		},
		Run: runSharedrng,
	}
}

// sharedrngSeeds returns the Kernel.RNG() call sites of one function
// body — each one is a draw handle on the shared stream. A call whose
// result is immediately split (k.RNG().Split()) is still seeded: the
// split itself advances the shared stream, so per-session code doing it
// per-call re-creates the coupling; only construction-time splitting in
// the owning package (outside Only) is safe.
func sharedrngSeeds(n *FuncNode) []Seed {
	var out []Seed
	n.walkOwn(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || fun.Sel.Name != "RNG" {
			return true
		}
		sel, ok := n.Pkg.Info.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return true
		}
		if !namedFrom(sel.Recv(), simPath, "Kernel") {
			return true
		}
		out = append(out, Seed{Pos: call.Pos(), Desc: "Kernel.RNG"})
		return true
	})
	return out
}

func runSharedrng(prog *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	const hint = "per-session randomness must be derived from the session identity (sim.NewRNG(seed^mix(id)) or a construction-time Split), not the shared kernel stream"
	taints := prog.taint("sharedrng", "sharedrng", sharedrngSeeds)
	for _, n := range prog.Graph().Nodes() {
		if n.Pkg != pkg {
			continue
		}
		t := taints[n]
		if t == nil || t.Seed == nil {
			continue
		}
		out = append(out, pkg.diag("sharedrng", t.Seed.Pos,
			"Kernel.RNG draws from the shared kernel stream, coupling this code to every other consumer's draw count (the PR 7 CallRetry jitter bug shape); %s", hint))
	}
	for _, e := range prog.taintedEdges(pkg, taints) {
		out = append(out, pkg.diag("sharedrng", e.Pos,
			"%s %s reaches the shared kernel RNG through %s; %s",
			edgeVerb(e), describeCallee(e), taints[e.Callee].Path(pkg), hint))
	}
	return out
}
