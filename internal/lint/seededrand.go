package lint

import (
	"strings"
)

// randPackages are sources of nondeterministic (or
// cross-version-unstable) randomness. math/rand's global functions
// draw from a process-wide, lock-shared source; math/rand/v2's stream
// is unspecified across Go versions; crypto/rand is nondeterministic
// by design. Any of them in simulation, SOA, or fault paths breaks the
// byte-identical-per-seed contract.
var randPackages = []string{
	"math/rand",
	"math/rand/v2",
	"crypto/rand",
}

// SeededrandAnalyzer enforces the seeded-randomness contract: all
// randomness flows through the deterministic, splittable sim.RNG
// (xoshiro256** seeded from the campaign/experiment seed), never
// through math/rand or crypto/rand. The import itself is flagged — the
// contract is structural, not call-site-by-call-site: once the package
// is imported, a later edit can reach the global source without any
// new import line to review.
func SeededrandAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "seededrand",
		Doc:  "no math/rand or crypto/rand; all randomness flows through the seeded sim.RNG",
		// internal/sim hosts the deterministic RNG implementation and
		// is the one place allowed to reference stdlib rand (e.g. to
		// adapt it behind determinism tests).
		Exempt: []string{
			"dynaplat/internal/sim",
		},
		Run: runSeededrand,
	}
}

func runSeededrand(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, banned := range randPackages {
				if path == banned {
					out = append(out, pkg.diag("seededrand", imp.Pos(),
						"import of %s: randomness must flow through the seeded sim.RNG (Kernel.RNG or RNG.Split)", path))
				}
			}
		}
	}
	return out
}
