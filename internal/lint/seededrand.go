package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// randPackages are sources of nondeterministic (or
// cross-version-unstable) randomness. math/rand's global functions
// draw from a process-wide, lock-shared source; math/rand/v2's stream
// is unspecified across Go versions; crypto/rand is nondeterministic
// by design. Any of them in simulation, SOA, or fault paths breaks the
// byte-identical-per-seed contract.
var randPackages = []string{
	"math/rand",
	"math/rand/v2",
	"crypto/rand",
}

func isRandPackage(path string) bool {
	for _, banned := range randPackages {
		if path == banned {
			return true
		}
	}
	return false
}

// SeededrandAnalyzer enforces the seeded-randomness contract: all
// randomness flows through the deterministic, splittable sim.RNG
// (xoshiro256** seeded from the campaign/experiment seed), never
// through math/rand or crypto/rand. The import itself is flagged — the
// contract is structural, not call-site-by-call-site: once the package
// is imported, a later edit can reach the global source without any
// new import line to review.
//
// v2 is interprocedural: a function in *any* analyzed package —
// including the exempt internal/sim — that touches stdlib rand taints
// its callers, so an exempt package cannot launder nondeterministic
// randomness to the rest of the tree through a helper.
func SeededrandAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "seededrand",
		Doc:  "no math/rand or crypto/rand, directly or through any chain of helpers; all randomness flows through the seeded sim.RNG",
		// internal/sim hosts the deterministic RNG implementation and
		// is the one place allowed to reference stdlib rand (e.g. to
		// adapt it behind determinism tests).
		Exempt: []string{
			"dynaplat/internal/sim",
		},
		Run: runSeededrand,
	}
}

// seededrandSeeds returns direct stdlib-rand uses in one function body.
func seededrandSeeds(n *FuncNode) []Seed {
	var out []Seed
	n.walkOwn(func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := n.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok || !isRandPackage(pn.Imported().Path()) {
			return true
		}
		out = append(out, Seed{Pos: sel.Pos(), Desc: pn.Imported().Path() + "." + sel.Sel.Name})
		return true
	})
	return out
}

func runSeededrand(prog *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if isRandPackage(path) {
				out = append(out, pkg.diag("seededrand", imp.Pos(),
					"import of %s: randomness must flow through the seeded sim.RNG (Kernel.RNG or RNG.Split)", path))
			}
		}
	}
	taints := prog.taint("seededrand", "seededrand", seededrandSeeds)
	for _, e := range prog.taintedEdges(pkg, taints) {
		out = append(out, pkg.diag("seededrand", e.Pos,
			"%s %s reaches stdlib randomness through %s: randomness must flow through the seeded sim.RNG (Kernel.RNG or RNG.Split)",
			edgeVerb(e), describeCallee(e), taints[e.Callee].Path(pkg)))
	}
	return out
}
