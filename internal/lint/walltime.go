package lint

import (
	"go/ast"
	"go/types"
)

// wallFuncs are the package-level time functions that read or react to
// the wall clock. time.Duration arithmetic, constants, and parsing are
// deliberately not listed: they are pure values and cannot perturb
// virtual-time ordering.
var wallFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "arms a wall-clock timer",
	"AfterFunc": "arms a wall-clock timer",
	"Tick":      "arms a wall-clock ticker",
	"NewTicker": "arms a wall-clock ticker",
	"NewTimer":  "arms a wall-clock timer",
}

// WalltimeAnalyzer enforces the virtual-time contract: simulation code
// must never consult the wall clock. Two runs with the same seed are
// bit-identical only because event ordering is a pure function of
// virtual time (sim.Kernel); a single time.Now or time.Sleep makes
// results depend on GC pauses and machine load. Wall time is allowed
// only in cmd/ (harness/CLI timing around a run, never inside one).
//
// v2 is interprocedural: a helper wrapping time.Now — at any depth,
// in any analyzed package, exempt or not — taints every caller, and
// the call site is reported with the full witness path
// (middle → deepest → time.Now).
func WalltimeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "walltime",
		Doc:  "no wall-clock time (time.Now/Sleep/After/...) outside the cmd/ harness, directly or through any chain of helpers; simulation code runs on kernel virtual time",
		Exempt: []string{
			"dynaplat/cmd", // harness timing around whole runs
		},
		Run: runWalltime,
	}
}

// walltimeSeeds returns the direct wall-clock sites in one function
// body.
func walltimeSeeds(n *FuncNode) []Seed {
	var out []Seed
	n.walkOwn(func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := n.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "time" {
			return true
		}
		if _, bad := wallFuncs[sel.Sel.Name]; bad {
			out = append(out, Seed{Pos: sel.Pos(), Desc: "time." + sel.Sel.Name})
		}
		return true
	})
	return out
}

func runWalltime(prog *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		name := importName(f, "time")
		if name == "" {
			continue
		}
		if name == "." {
			// Dot import makes every wall-clock function an unqualified
			// call; flag the import itself.
			for _, imp := range f.Imports {
				if imp.Path.Value == `"time"` {
					out = append(out, pkg.diag("walltime", imp.Pos(),
						`dot-import of "time" hides wall-clock calls; import it qualified or use sim virtual time`))
				}
			}
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != name {
				return true
			}
			// Confirm the identifier really is the package (not a local
			// variable shadowing it).
			if !isPkgName(pkg, id) {
				return true
			}
			if why, bad := wallFuncs[sel.Sel.Name]; bad {
				out = append(out, pkg.diag("walltime", sel.Pos(),
					"time.%s %s: simulation code must use kernel virtual time (sim.Kernel Now/After/Every)",
					sel.Sel.Name, why))
			}
			return true
		})
	}
	// Interprocedural pass: report every edge to a transitively
	// wall-clock-tainted function with its witness path.
	taints := prog.taint("walltime", "walltime", walltimeSeeds)
	for _, e := range prog.taintedEdges(pkg, taints) {
		out = append(out, pkg.diag("walltime", e.Pos,
			"%s %s reaches the wall clock through %s: simulation code must use kernel virtual time (sim.Kernel Now/After/Every)",
			edgeVerb(e), describeCallee(e), taints[e.Callee].Path(pkg)))
	}
	return out
}
