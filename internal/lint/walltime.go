package lint

import (
	"go/ast"
)

// wallFuncs are the package-level time functions that read or react to
// the wall clock. time.Duration arithmetic, constants, and parsing are
// deliberately not listed: they are pure values and cannot perturb
// virtual-time ordering.
var wallFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "arms a wall-clock timer",
	"AfterFunc": "arms a wall-clock timer",
	"Tick":      "arms a wall-clock ticker",
	"NewTicker": "arms a wall-clock ticker",
	"NewTimer":  "arms a wall-clock timer",
}

// WalltimeAnalyzer enforces the virtual-time contract: simulation code
// must never consult the wall clock. Two runs with the same seed are
// bit-identical only because event ordering is a pure function of
// virtual time (sim.Kernel); a single time.Now or time.Sleep makes
// results depend on GC pauses and machine load. Wall time is allowed
// only in cmd/ (harness/CLI timing around a run, never inside one).
func WalltimeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "walltime",
		Doc:  "no wall-clock time (time.Now/Sleep/After/...) outside the cmd/ harness; simulation code runs on kernel virtual time",
		Exempt: []string{
			"dynaplat/cmd", // harness timing around whole runs
		},
		Run: runWalltime,
	}
}

func runWalltime(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		name := importName(f, "time")
		if name == "" {
			continue
		}
		if name == "." {
			// Dot import makes every wall-clock function an unqualified
			// call; flag the import itself.
			for _, imp := range f.Imports {
				if imp.Path.Value == `"time"` {
					out = append(out, pkg.diag("walltime", imp.Pos(),
						`dot-import of "time" hides wall-clock calls; import it qualified or use sim virtual time`))
				}
			}
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != name {
				return true
			}
			// Confirm the identifier really is the package (not a local
			// variable shadowing it).
			if !isPkgName(pkg, id) {
				return true
			}
			if why, bad := wallFuncs[sel.Sel.Name]; bad {
				out = append(out, pkg.diag("walltime", sel.Pos(),
					"time.%s %s: simulation code must use kernel virtual time (sim.Kernel Now/After/Every)",
					sel.Sel.Name, why))
			}
			return true
		})
	}
	return out
}
