package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Whole-program call graph (dynalint v2). Nodes are function bodies —
// every FuncDecl and every FuncLit in the analyzed packages — and edges
// are the ways one body can cause another to run:
//
//   - EdgeCall:      direct static call f(...), pkg.F(...), or a call
//     through a local/function-typed variable whose bindings are known
//     (x := funcLit; x()).
//   - EdgeMethod:    concrete-receiver method call x.m(...).
//   - EdgeInterface: interface-method call, resolved conservatively to
//     *every* analyzed named type implementing the interface — a sound
//     over-approximation matching the determinism contracts' posture.
//   - EdgeRef:       a function *value* escaping — a method value
//     (x.m), a func identifier passed as an argument or wired into a
//     function-typed field, or a FuncLit defined in the body. Defining
//     or storing a value is treated as "may invoke": whoever registers
//     a wall-clock-reading callback owns the impurity.
//
// Two deliberate conservatisms, documented so they can be audited:
// calls *through* function-typed fields (s.cb()) add no edge — the
// wiring site already carried the EdgeRef — and bindings through
// variables of another package are not tracked. Both under-approximate
// only where an EdgeRef has already tainted the wiring function.
//
// Cross-package object identity: each analyzed package is type-checked
// independently, so the same function is represented by different
// *types.Func objects in its defining package and in importers. Nodes
// are therefore keyed by types.Func.FullName() — which spells the
// package *path* and receiver — unifying the two worlds.

// EdgeKind classifies how a call-graph edge was discovered.
type EdgeKind int

const (
	EdgeCall EdgeKind = iota
	EdgeMethod
	EdgeInterface
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeMethod:
		return "method"
	case EdgeInterface:
		return "interface"
	default:
		return "ref"
	}
}

// FuncNode is one function body in the graph.
type FuncNode struct {
	Obj  *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Pkg  *Package      // defining package
	File *ast.File

	// Encloser is the innermost function a literal is defined in
	// (nil for declared functions and package-level literals).
	Encloser *FuncNode

	Out []*CallEdge // call sites in this body, in source order
	In  []*CallEdge // reverse edges, in global deterministic order
}

// Pos returns the node's defining position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the node's statement body.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Name renders the node for diagnostics and path strings: "ForEach",
// "Middleware.sessionJitter", or "func@<line>" for a literal.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		if recv := n.Obj.Type().(*types.Signature).Recv(); recv != nil {
			return recvBase(recv.Type()) + "." + n.Obj.Name()
		}
		return n.Obj.Name()
	}
	return fmt.Sprintf("func@%d", n.Pkg.Fset.Position(n.Lit.Pos()).Line)
}

// DisplayName qualifies the node with its package when reported from a
// different package ("par.ForEach" seen from internal/fleet).
func (n *FuncNode) DisplayName(from *Package) string {
	if n.Pkg != nil && from != nil && n.Pkg != from {
		return n.Pkg.Types.Name() + "." + n.Name()
	}
	return n.Name()
}

// FullName is the node's unique key: the types.Func full name, or a
// position-qualified name for literals.
func (n *FuncNode) FullName() string {
	if n.Obj != nil {
		return n.Obj.FullName()
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	return fmt.Sprintf("%s.func@%s:%d:%d", n.Pkg.Path, filepath.Base(pos.Filename), pos.Line, pos.Column)
}

func recvBase(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// walkOwn traverses the node's own body, stopping at nested function
// literals: each literal is its own graph node and scans itself.
func (n *FuncNode) walkOwn(visit func(ast.Node) bool) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x == nil {
			return true
		}
		return visit(x)
	})
}

// CallEdge is one call or function-value-escape site.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	Pos    token.Pos
	Kind   EdgeKind
	// Desc renders the call target as written at the site ("m.helper",
	// "Clocker.Tick"), for diagnostics.
	Desc string
}

// Graph is the whole-program call graph.
type Graph struct {
	nodes   map[string]*FuncNode // keyed by FullName
	lits    map[*ast.FuncLit]*FuncNode
	ordered []*FuncNode // deterministic (file, offset) order

	// byCall indexes the outgoing edges of every call expression, so
	// analyzers (maporder's map-range scan) can resolve a specific
	// call site to its conservative callee set.
	byCall map[*ast.CallExpr][]*CallEdge

	// impls caches interface-method resolution: interface method
	// full-name → implementing method nodes.
	impls map[string][]*FuncNode

	namedTypes []types.Type // all analyzed named non-interface types, sorted
}

// NodeByObj resolves a function object (from any package's type info)
// to its graph node, or nil when the function is not part of the
// analyzed program.
func (g *Graph) NodeByObj(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.nodes[obj.FullName()]
}

// Nodes returns every node in deterministic order.
func (g *Graph) Nodes() []*FuncNode { return g.ordered }

// EdgesAt returns the conservative callee edges of one call expression.
func (g *Graph) EdgesAt(call *ast.CallExpr) []*CallEdge { return g.byCall[call] }

// buildGraph constructs the call graph over the analyzed packages.
func buildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		nodes:  map[string]*FuncNode{},
		lits:   map[*ast.FuncLit]*FuncNode{},
		byCall: map[*ast.CallExpr][]*CallEdge{},
		impls:  map[string][]*FuncNode{},
	}
	b := &graphBuilder{g: g}
	for _, pkg := range pkgs {
		b.collectNodes(pkg)
	}
	sort.Slice(g.ordered, func(i, j int) bool {
		a, c := g.ordered[i], g.ordered[j]
		pa, pc := a.Pkg.Fset.Position(a.Pos()), c.Pkg.Fset.Position(c.Pos())
		if pa.Filename != pc.Filename {
			return pa.Filename < pc.Filename
		}
		return pa.Offset < pc.Offset
	})
	b.collectNamedTypes(pkgs)
	for _, pkg := range pkgs {
		b.collectBindings(pkg)
	}
	// Literal-definition edges first (encloser may invoke), then the
	// per-body call/ref scan, in deterministic node order.
	for _, n := range g.ordered {
		if n.Lit != nil && n.Encloser != nil {
			b.addEdge(n.Encloser, n, n.Lit.Pos(), EdgeRef, "func literal", nil)
		}
	}
	for _, n := range g.ordered {
		b.scanBody(n)
	}
	// Reverse edges in global deterministic order.
	for _, n := range g.ordered {
		for _, e := range n.Out {
			e.Callee.In = append(e.Callee.In, e)
		}
	}
	return g
}

type graphBuilder struct {
	g *Graph
	// bindings maps a variable object to the function nodes ever
	// assigned to it (flow-insensitive, same-package only).
	bindings map[types.Object][]*FuncNode
}

// collectNodes indexes every FuncDecl and FuncLit of the package and
// attributes each literal to its innermost enclosing function.
func (b *graphBuilder) collectNodes(pkg *Package) {
	type span struct {
		node   *FuncNode
		lo, hi token.Pos
	}
	for _, f := range pkg.Files {
		var spans []span
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, File: f}
			b.g.nodes[n.FullName()] = n
			b.g.ordered = append(b.g.ordered, n)
			spans = append(spans, span{n, fd.Pos(), fd.End()})
		}
		ast.Inspect(f, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			n := &FuncNode{Lit: lit, Pkg: pkg, File: f}
			b.g.lits[lit] = n
			b.g.nodes[n.FullName()] = n
			b.g.ordered = append(b.g.ordered, n)
			spans = append(spans, span{n, lit.Pos(), lit.End()})
			return true
		})
		// Innermost-encloser attribution: the containing span with the
		// latest start position.
		for lit, n := range b.g.lits {
			if n.File != f {
				continue
			}
			var best *FuncNode
			var bestLo token.Pos
			for _, s := range spans {
				if s.node.Lit == lit {
					continue
				}
				if s.lo <= lit.Pos() && lit.End() <= s.hi {
					if best == nil || s.lo > bestLo {
						best, bestLo = s.node, s.lo
					}
				}
			}
			n.Encloser = best
		}
	}
}

// collectNamedTypes gathers every named non-interface type of the
// analyzed packages, sorted, for conservative interface resolution.
func (b *graphBuilder) collectNamedTypes(pkgs []*Package) {
	type entry struct {
		key string
		typ types.Type
	}
	var entries []entry
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			entries = append(entries, entry{pkg.Path + "." + name, t})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for _, e := range entries {
		b.g.namedTypes = append(b.g.namedTypes, e.typ)
	}
}

// collectBindings records, flow-insensitively, which function nodes
// each variable can hold: x := func(){...}, var x = helper, x = t.m.
func (b *graphBuilder) collectBindings(pkg *Package) {
	if b.bindings == nil {
		b.bindings = map[types.Object][]*FuncNode{}
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if target := b.valueNode(pkg, rhs); target != nil {
			b.bindings[obj] = append(b.bindings[obj], target)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						bind(s.Lhs[i], s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i := range s.Names {
						bind(s.Names[i], s.Values[i])
					}
				}
			}
			return true
		})
	}
}

// valueNode resolves an expression used as a function value to a graph
// node: a literal, a function identifier, or a concrete method value.
func (b *graphBuilder) valueNode(pkg *Package, e ast.Expr) *FuncNode {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return b.g.lits[v]
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[v].(*types.Func); ok {
			return b.g.NodeByObj(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[v.Sel].(*types.Func); ok {
			return b.g.NodeByObj(fn)
		}
	}
	return nil
}

func (b *graphBuilder) addEdge(caller, callee *FuncNode, pos token.Pos, kind EdgeKind, desc string, call *ast.CallExpr) {
	if caller == nil || callee == nil {
		return
	}
	e := &CallEdge{Caller: caller, Callee: callee, Pos: pos, Kind: kind, Desc: desc}
	caller.Out = append(caller.Out, e)
	if call != nil {
		b.g.byCall[call] = append(b.g.byCall[call], e)
	}
}

// scanBody adds the outgoing edges of one node: calls, method values,
// and function-value references, in source order.
func (b *graphBuilder) scanBody(n *FuncNode) {
	pkg := n.Pkg
	inCall := map[ast.Expr]bool{} // call Fun expressions (already edged)
	consumed := map[*ast.Ident]bool{}
	n.walkOwn(func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(e.Fun)
			inCall[fun] = true
			b.resolveCall(n, e, fun)
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				consumed[sel.Sel] = true
			}
		case *ast.SelectorExpr:
			if inCall[e] {
				consumed[e.Sel] = true
				return true
			}
			// Method value or package-function reference escaping as a
			// value.
			if consumed[e.Sel] {
				return true
			}
			consumed[e.Sel] = true
			b.resolveRef(n, e)
		case *ast.Ident:
			if consumed[e] || inCall[e] {
				return true
			}
			if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
				b.addEdge(n, b.g.NodeByObj(fn), e.Pos(), EdgeRef, e.Name, nil)
			}
		}
		return true
	})
}

// resolveCall adds edges for one call expression.
func (b *graphBuilder) resolveCall(n *FuncNode, call *ast.CallExpr, fun ast.Expr) {
	pkg := n.Pkg
	switch f := fun.(type) {
	case *ast.FuncLit:
		b.addEdge(n, b.g.lits[f], call.Pos(), EdgeCall, "func literal", call)
	case *ast.Ident:
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Func:
			b.addEdge(n, b.g.NodeByObj(obj), call.Pos(), EdgeCall, f.Name, call)
		case *types.Var:
			for _, target := range b.bindings[obj] {
				b.addEdge(n, target, call.Pos(), EdgeCall, f.Name, call)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				b.methodEdges(n, f, sel, call.Pos(), call, false)
			case types.FieldVal:
				// Function-typed field call: conservatively silent —
				// the wiring assignment carried the EdgeRef.
			}
			return
		}
		// Package-qualified call pkg.F(...).
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			b.addEdge(n, b.g.NodeByObj(fn), call.Pos(), EdgeCall, exprString(f), call)
		}
	}
}

// resolveRef adds EdgeRef edges for a selector used as a value.
func (b *graphBuilder) resolveRef(n *FuncNode, e *ast.SelectorExpr) {
	pkg := n.Pkg
	if sel, ok := pkg.Info.Selections[e]; ok {
		if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
			b.methodEdges(n, e, sel, e.Pos(), nil, true)
		}
		return
	}
	if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
		b.addEdge(n, b.g.NodeByObj(fn), e.Pos(), EdgeRef, exprString(e), nil)
	}
}

// methodEdges resolves a method call or method value: a concrete
// receiver yields one static edge; an interface receiver yields a
// conservative edge to every analyzed implementation.
func (b *graphBuilder) methodEdges(n *FuncNode, e *ast.SelectorExpr, sel *types.Selection, pos token.Pos, call *ast.CallExpr, isRef bool) {
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := sel.Recv()
	if sel.Kind() == types.MethodExpr {
		// T.Method expression: receiver is the first signature param.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = sig.Recv().Type()
		}
	}
	kind := EdgeMethod
	if isRef {
		kind = EdgeRef
	}
	if recv != nil && types.IsInterface(recv) {
		ifaceName := recvBase(recv)
		for _, impl := range b.implementations(recv, fn) {
			b.addEdge(n, impl, pos, EdgeInterface,
				ifaceName+"."+fn.Name(), call)
		}
		return
	}
	b.addEdge(n, b.g.NodeByObj(fn), pos, kind, exprString(e), call)
}

// implementations returns the analyzed methods that an interface-method
// call can dispatch to, in deterministic order.
func (b *graphBuilder) implementations(recv types.Type, m *types.Func) []*FuncNode {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := m.FullName()
	if cached, ok := b.g.impls[key]; ok {
		return cached
	}
	var out []*FuncNode
	for _, t := range b.g.namedTypes {
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
		impl, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := b.g.NodeByObj(impl); node != nil {
			out = append(out, node)
		}
	}
	b.g.impls[key] = out
	return out
}

// DumpGraph renders every edge as "caller -> callee [kind] @file:line",
// sorted, for the cmd/dynalint -graph debug view.
func (g *Graph) DumpGraph() []string {
	var lines []string
	for _, n := range g.ordered {
		for _, e := range n.Out {
			pos := n.Pkg.Fset.Position(e.Pos)
			lines = append(lines, fmt.Sprintf("%s -> %s [%s] @%s:%d",
				n.FullName(), e.Callee.FullName(), e.Kind, pos.Filename, pos.Line))
		}
	}
	sort.Strings(lines)
	return lines
}

// describeCallee renders an edge's target for diagnostics: the call
// expression as written at the site when available, else the callee's
// declared name.
func describeCallee(e *CallEdge) string {
	if e.Desc != "" && !strings.Contains(e.Desc, "func literal") {
		return e.Desc
	}
	return e.Callee.Name()
}
