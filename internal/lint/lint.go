// Package lint is dynalint: a static-analysis suite that mechanically
// enforces the platform's determinism and lifecycle contracts
// (DESIGN.md §8). The simulator's whole value proposition — byte-
// identical fault campaigns and observed traces per seed — rests on
// invariants that ordinary Go tooling cannot see: simulation code must
// run on virtual time, randomness must flow through the seeded kernel
// RNG, ordered output must never depend on Go's randomized map
// iteration, kernel-callback packages must stay single-threaded, and
// cancelable timer handles must not be dropped by lifecycle-managing
// code. Each invariant is one analyzer; violating any of them is a
// build failure via cmd/dynalint wired into scripts/verify.sh.
//
// Since v2 the suite is interprocedural: a whole-program call graph
// (callgraph.go) plus a fact-propagation engine (facts.go) carry
// "impurity" facts — wall-clock reads, stdlib randomness, concurrency,
// shared-RNG draws, ordered emission — transitively through any chain
// of helpers, so a one-line wrapper around time.Now is as visible as
// the call itself. Diagnostics at indirect sites render the full
// witness path (a → b → time.Now).
//
// The suite is stdlib-only (go/ast, go/parser, go/types, go/importer):
// go.mod stays dependency-free.
//
// # Suppressions
//
// Every exception must be auditable. A finding is suppressed by a
//
//	//dynalint:allow <check> <reason>
//
// comment on the flagged line or the line directly above it. The
// reason is mandatory: an allow comment without one does not suppress
// (and is itself reported), so `grep -rn dynalint:allow` always yields
// a complete, justified exception inventory (machine-readable via
// `dynalint -allows`). An allow also sanitizes propagation: a fact is
// not carried upward through an allowed primitive site or call edge —
// the audit decision covers the callers too.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, in vet style.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the finding as file:line:col: [check] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // check name used by -checks and //dynalint:allow
	Doc  string // one-line description of the protected invariant
	// Exempt lists import-path prefixes the check does not apply to
	// (the allowlist policy; see DESIGN.md §8). Exemption is a
	// reporting filter only: facts still propagate *through* exempt
	// packages, so a cmd/ helper cannot launder wall time into the
	// simulator.
	Exempt []string
	// Only, when non-empty, restricts the check to packages under the
	// listed import-path prefixes (the inverse of Exempt, for
	// contracts like sharedrng that only bind per-session/per-entity
	// code). Facts still seed and propagate everywhere.
	Only []string
	// Run inspects one type-checked package — with whole-program
	// context for the interprocedural checks — and returns raw
	// findings (suppression filtering happens in the driver).
	Run func(*Program, *Package) []Diagnostic
}

// Exempted reports whether the analyzer skips the given import path.
func (a *Analyzer) Exempted(path string) bool {
	if len(a.Only) > 0 && !underAny(path, a.Only) {
		return true
	}
	return underAny(path, a.Exempt)
}

func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer(),
		SeededrandAnalyzer(),
		MaporderAnalyzer(),
		NogoroutineAnalyzer(),
		DroppedrefAnalyzer(),
		SharedrngAnalyzer(),
		ParsharedAnalyzer(),
	}
}

// ByName resolves a comma-separated -checks list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (use -list)", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks selected no analyzers")
	}
	return out, nil
}

// Program is the whole-program analysis context shared by every
// analyzer in one RunSuite call: the package set, the merged
// suppression table, and (built lazily) the call graph and per-check
// taint sets.
type Program struct {
	Pkgs []*Package

	fset   *token.FileSet
	sup    suppressions
	bad    []Diagnostic // malformed allow directives
	graph  *Graph
	taints map[string]map[*FuncNode]*Taint
}

// NewProgram assembles the whole-program context: it scans every
// package's comments for //dynalint:allow directives (collecting
// malformed ones as diagnostics) but defers call-graph construction
// until an interprocedural check asks for it.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:   pkgs,
		sup:    suppressions{},
		taints: map[string]map[*FuncNode]*Taint{},
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		if p.fset == nil {
			p.fset = pkg.Fset
		}
		bad := collectAllows(pkg, known, p.sup)
		p.bad = append(p.bad, bad...)
	}
	return p
}

// Graph returns the whole-program call graph, building it on first use.
func (p *Program) Graph() *Graph {
	if p.graph == nil {
		p.graph = buildGraph(p.Pkgs)
	}
	return p.graph
}

// allowedAt reports whether the position carries (or sits under) a
// //dynalint:allow for the check. Used both to filter diagnostics and
// to stop fact propagation through audited sites.
func (p *Program) allowedAt(check string, pos token.Pos) bool {
	if p.fset == nil {
		return false
	}
	return p.sup.allows(check, p.fset.Position(pos))
}

// RunSuite applies the analyzers to every package, filters suppressed
// findings via //dynalint:allow comments, and returns the remaining
// diagnostics sorted by position. Malformed allow comments (missing
// reason, unknown check name) are themselves reported.
func RunSuite(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	prog := NewProgram(pkgs)
	out := append([]Diagnostic{}, prog.bad...)
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			if a.Exempted(pkg.Path) {
				continue
			}
			for _, d := range a.Run(prog, pkg) {
				if prog.sup.allows(a.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

// diag builds a Diagnostic for the node position.
func (p *Package) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// suppressions maps file → line → set of allowed check names. An allow
// comment covers its own line and the line directly below it, so both
//
//	k.After(d, tick) //dynalint:allow droppedref bounded poll
//
// and
//
//	//dynalint:allow droppedref bounded poll
//	k.After(d, tick)
//
// work.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) allows(check string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][check]
}

const allowPrefix = "//dynalint:allow"

// collectAllows scans every comment in the package for allow directives,
// merging well-formed ones into sup. It returns diagnostics for
// malformed directives (so a reason-less allow fails the build rather
// than silently widening the exception).
func collectAllows(pkg *Package, known map[string]bool, sup suppressions) []Diagnostic {
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 0 || !known[fields[0]] {
					bad = append(bad, pkg.diag("allow", c.Pos(),
						"malformed %s: first word must be a check name", allowPrefix))
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, pkg.diag("allow", c.Pos(),
						"%s %s needs a reason: every exception must be auditable", allowPrefix, fields[0]))
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					lines[ln][fields[0]] = true
				}
			}
		}
	}
	return bad
}

// importName returns the local name a file binds the given import path
// to, or "" when the file does not import it. A dot import returns ".".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		base := path
		if i := strings.LastIndex(base, "/"); i >= 0 {
			base = base[i+1:]
		}
		return base
	}
	return ""
}
