package lint

import (
	"go/ast"
	"go/types"
)

const simPath = "dynaplat/internal/sim"

// DroppedrefAnalyzer enforces the timer-lifecycle contract: a
// cancelable handle returned by a ScheduleAt-style API must not be
// discarded by lifecycle-managing code. This is the PR 3 bug class
// caught at compile time: the QoS deadline-supervision timer was armed
// with a named self-re-arming handler and its sim.EventRef dropped, so
// Unsubscribe/RemoveEndpoint had nothing to cancel and the final
// pending timer leaked past the subscription's death.
//
// Two shapes are flagged:
//
//  1. a discarded sim.EventRef whose handler is a durable named
//     function (a local closure variable like the supervision `tick`,
//     or a method value) — the recurring-supervision shape, where the
//     handle is the only way to tear the timer down. Inline func
//     literals (one-shot continuations) and caller-supplied function
//     parameters (continuation-passing style: the caller owns the
//     lifecycle) are not flagged;
//  2. a discarded *sim.Ticker — always flagged: a ticker re-arms
//     itself forever, so dropping the handle makes it unstoppable.
//
// Explicitly discarding with `_ =` is flagged the same way; a genuine
// fire-and-forget needs a //dynalint:allow droppedref with its reason.
func DroppedrefAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "droppedref",
		Doc:  "no discarding cancelable EventRef/Ticker handles in lifecycle-managing code; store them so teardown can cancel",
		Exempt: []string{
			"dynaplat/internal/experiments", // straight-line experiment programs run to completion
			"dynaplat/cmd",                  // CLI front-ends
			"dynaplat/examples",             // demo mains run to completion
		},
		Run: runDroppedref,
	}
}

func runDroppedref(_ *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		params := paramObjects(pkg, f)
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				if c, ok := s.X.(*ast.CallExpr); ok {
					call = c
				}
			case *ast.AssignStmt:
				// `_ = k.After(...)` — an explicit discard is still a
				// discard.
				if len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				if c, ok := s.Rhs[0].(*ast.CallExpr); ok {
					call = c
				}
			}
			if call == nil {
				return true
			}
			tv, ok := pkg.Info.Types[call]
			if !ok {
				return true
			}
			switch {
			case namedFrom(tv.Type, simPath, "Ticker"):
				out = append(out, pkg.diag("droppedref", call.Pos(),
					"*sim.Ticker returned by %s is discarded: the ticker re-arms forever and nothing can Stop it; store the handle in a field", calleeName(call)))
			case namedFrom(tv.Type, simPath, "EventRef"):
				h := handlerArg(pkg, call)
				if h == nil {
					return true
				}
				switch he := h.(type) {
				case *ast.FuncLit:
					// One-shot inline continuation: nothing durable to
					// cancel.
				case *ast.Ident:
					if params[pkg.Info.Uses[he]] {
						// Caller-supplied continuation: the caller owns
						// the lifecycle.
						return true
					}
					out = append(out, diagDurable(pkg, call, he.Name))
				default:
					out = append(out, diagDurable(pkg, call, exprString(h)))
				}
			}
			return true
		})
	}
	return out
}

func diagDurable(pkg *Package, call *ast.CallExpr, handler string) Diagnostic {
	return pkg.diag("droppedref", call.Pos(),
		"sim.EventRef from %s is discarded but handler %q is a durable named function (the PR 3 deadline-supervision leak shape); store the ref in a cancelable field so teardown can Cancel it",
		calleeName(call), handler)
}

// handlerArg returns the last argument with a function type, i.e. the
// scheduled handler.
func handlerArg(pkg *Package, call *ast.CallExpr) ast.Expr {
	for i := len(call.Args) - 1; i >= 0; i-- {
		tv, ok := pkg.Info.Types[call.Args[i]]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isFunc := tv.Type.Underlying().(*types.Signature); isFunc {
			return call.Args[i]
		}
	}
	return nil
}

// paramObjects collects the type objects of every function parameter
// declared in the file, so continuation-passing handlers can be
// recognized.
func paramObjects(pkg *Package, f *ast.File) map[types.Object]bool {
	set := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					set[obj] = true
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			addFields(fn.Type.Params)
		case *ast.FuncLit:
			addFields(fn.Type.Params)
		}
		return true
	})
	return set
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// calleeName renders the called expression for diagnostics (k.After,
// e.m.k.After, ...).
func calleeName(call *ast.CallExpr) string { return exprString(call.Fun) }

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	default:
		return "expression"
	}
}
