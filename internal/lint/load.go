package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	Path  string // import path (module path + relative dir)
	Dir   string // directory as given to the loader
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader enumerates, parses, and type-checks packages. One Loader
// shares a FileSet and importer across packages so dependency type
// information is checked once.
type Loader struct {
	Root string // module root (directory containing go.mod)

	fset       *token.FileSet
	imp        types.Importer
	modulePath string
}

// NewLoader returns a loader anchored at the module root.
func NewLoader(root string) (*Loader, error) {
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: cannot read go.mod: %v", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		fset:       fset,
		imp:        importer.ForCompiler(fset, "source", nil),
		modulePath: modPath,
	}, nil
}

// Load resolves the given patterns to package directories and returns
// the analyzed packages in deterministic (path-sorted) order. A
// pattern is either a directory (absolute or relative) or a directory
// followed by "/..." for a recursive walk. Walks skip testdata, vendor,
// hidden, and underscore-prefixed directories — matching the go tool —
// but a testdata directory named directly is loaded, which is how the
// fixture tests and the cmd/dynalint end-to-end test drive the suite.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand turns patterns into a sorted, deduplicated list of directories
// that contain at least one non-test .go file.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Clean(rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			continue
		}
		dir := filepath.Clean(pat)
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: %q is not a package directory", pat)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the single package in dir. Test files
// (_test.go) are excluded by policy: tests are the measurement harness
// and may legitimately use wall time, goroutines, and ad-hoc ordering;
// the determinism contracts protect the simulation code under test.
// LoadDir returns (nil, nil) when the directory has no non-test Go
// files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	path := l.importPath(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// importPath maps a directory to its import path under the module.
func (l *Loader) importPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rootAbs, err := filepath.Abs(l.Root)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(rootAbs, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}
