package fixture

// An audited exception: a tool-only code path that explicitly does not
// participate in seeded reproduction (e.g. generating an opaque ID for
// a report file name).
import (
	//dynalint:allow seededrand fixture: report-file nonce only, never feeds a simulation
	"math/rand"
)

// ReportTag names an output artifact; the value never enters a kernel.
func ReportTag() int64 { return rand.Int63() }
