// Package fixture holds seededrand true positives: stdlib randomness in
// simulation-style code, which breaks the byte-identical-per-seed
// contract.
package fixture

import (
	crand "crypto/rand" // want:seededrand
	"math/rand"         // want:seededrand
)

// JitterBad draws from the process-global, lock-shared math/rand source:
// the stream depends on every other draw in the process.
func JitterBad(n int) int { return rand.Intn(n) }

// NonceBad is nondeterministic by design — never in a simulation path.
func NonceBad() ([]byte, error) {
	b := make([]byte, 8)
	_, err := crand.Read(b)
	return b, err
}
