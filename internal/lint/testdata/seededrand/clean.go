package fixture

import "dynaplat/internal/sim"

// JitterClean draws from the deterministic, splittable kernel RNG: the
// approved source for every random decision in simulation code.
func JitterClean(rng *sim.RNG, n int) int { return rng.Intn(n) }

// SubsystemStream gives a subsystem its own independent stream so draws
// in one subsystem never shift the sequence seen by another.
func SubsystemStream(k *sim.Kernel) *sim.RNG { return k.RNG().Split() }
