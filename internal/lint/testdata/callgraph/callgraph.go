// Package fixture exercises call-graph edge cases: method values,
// interface dispatch, function-typed fields, and recursion. It is read
// by callgraph_test.go (edge-shape assertions) and doubles as a
// walltime fixture for propagation through each edge kind.
package fixture

import "time"

// wallRead is the primitive: everything below is some number of edges
// away from it.
func wallRead() time.Time {
	return time.Now()
}

// Clocker implements Ticker with a concrete method that wraps the
// primitive.
type Clocker struct{}

func (Clocker) Tick() time.Time {
	return wallRead()
}

// MethodValue escapes c.Tick as a value: an EdgeRef, reported because
// whoever registers a wall-clock-reading callback owns the impurity.
func MethodValue() func() time.Time {
	var c Clocker
	return c.Tick
}

// Ticker is dispatched conservatively to every analyzed implementation.
type Ticker interface {
	Tick() time.Time
}

// ViaInterface calls through the interface: an EdgeInterface to
// Clocker.Tick.
func ViaInterface(t Ticker) time.Time {
	return t.Tick()
}

// Widget wires a function-typed field.
type Widget struct {
	cb func() time.Time
}

// Wire stores the primitive in the field: the EdgeRef lands here, at
// the wiring site.
func Wire() Widget {
	return Widget{cb: wallRead}
}

// Invoke calls through the field: documented conservatism — no edge,
// the wiring site already carried the taint.
func Invoke(w Widget) time.Time {
	return w.cb()
}

// selfWall is self-recursive: the seed reports once, the self-edge is
// not reported again, and propagation terminates.
func selfWall(n int) time.Time {
	if n == 0 {
		return time.Now()
	}
	return selfWall(n - 1)
}

// pingWall / pongWall are mutually recursive around a seed: BFS with a
// visited set terminates and still produces a witness path.
func pingWall(n int) time.Time {
	if n == 0 {
		return time.Now()
	}
	return pongWall(n - 1)
}

func pongWall(n int) time.Time {
	return pingWall(n - 1)
}

// Entry keeps the unexported functions live.
func Entry() time.Time {
	_ = MethodValue()
	_ = ViaInterface(Clocker{})
	_ = Invoke(Wire())
	_ = selfWall(1)
	return pingWall(2)
}
