// Package fixture holds parshared true positives: ForEach callbacks
// writing shared state instead of their own index's slot — data races
// whose winning writer depends on OS scheduling.
package fixture

import "dynaplat/internal/par"

// SumBad accumulates into a captured scalar from every worker.
func SumBad(xs []int) int {
	total := 0
	_ = par.ForEach(len(xs), 4, func(i int) {
		total += xs[i] // want:parshared
	})
	return total
}

// MapBad writes a captured map concurrently — this faults at runtime.
func MapBad(xs []int, out map[int]int) {
	_ = par.ForEach(len(xs), 4, func(i int) {
		out[i] = xs[i] * 2 // want:parshared
	})
}

// SlotBad indexes the results slice with something other than the
// callback's own index parameter: two workers can claim slot 0.
func SlotBad(xs, ys []int) {
	_ = par.ForEach(len(xs), 4, func(i int) {
		ys[0] = xs[i] // want:parshared
	})
}

type tally struct{ n int }

// FieldBad mutates a field of a captured struct from every worker.
func FieldBad(xs []int, t *tally) {
	_ = par.ForEach(len(xs), 4, func(i int) {
		t.n = xs[i] // want:parshared
	})
}

// PtrBad writes through a captured pointer.
func PtrBad(xs []int, p *int) {
	_ = par.ForEach(len(xs), 4, func(i int) {
		*p = xs[i] // want:parshared
	})
}

var hitCount int

// bumpHits is a named callback: resolved statically, its body is held
// to the same discipline.
func bumpHits(i int) {
	hitCount++ // want:parshared
	_ = i
}

// NamedBad hands the named callback to the pool.
func NamedBad(n int) {
	_ = par.ForEach(n, 4, bumpHits)
}

// NestedBad races from a closure spawned inside the callback — still on
// the worker.
func NestedBad(xs []int) int {
	worst := 0
	_ = par.ForEach(len(xs), 4, func(i int) {
		update := func() {
			worst = xs[i] // want:parshared
		}
		update()
	})
	return worst
}
