package fixture

import "dynaplat/internal/par"

// SquaresClean is the approved shape: each worker writes only the slot
// addressed by its own index parameter in a pre-sized slice.
func SquaresClean(xs []int) []int {
	out := make([]int, len(xs))
	_ = par.ForEach(len(xs), 4, func(i int) {
		out[i] = xs[i] * xs[i]
	})
	return out
}

// OffsetClean still mentions the index parameter — arithmetic on the
// claimed index stays within the callback's ownership discipline.
func OffsetClean(xs []int) []int {
	out := make([]int, 2*len(xs))
	_ = par.ForEach(len(xs), 4, func(i int) {
		out[2*i] = xs[i]
		out[2*i+1] = -xs[i]
	})
	return out
}

// StreamClean sends results over a channel — the pool's approved
// streaming shape (drained after Wait by the caller).
func StreamClean(xs []int, ch chan int) {
	_ = par.ForEach(len(xs), 4, func(i int) {
		ch <- xs[i]
	})
}

// LocalsClean mutates only its own locals.
func LocalsClean(xs []int) []int {
	out := make([]int, len(xs))
	_ = par.ForEach(len(xs), 4, func(i int) {
		acc := 0
		for j := 0; j <= i && j < len(xs); j++ {
			acc += xs[j]
		}
		out[i] = acc
	})
	return out
}
