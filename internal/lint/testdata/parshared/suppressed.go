package fixture

import "dynaplat/internal/par"

// ProgressClean bumps a shared counter that is read only after Wait and
// only for coarse progress display — an audited exception. (A real
// counter would still need atomics to satisfy the race detector; the
// allow documents the intent.)
func ProgressClean(xs []int, done *int) []int {
	out := make([]int, len(xs))
	_ = par.ForEach(len(xs), 4, func(i int) {
		out[i] = xs[i]
		//dynalint:allow parshared fixture: coarse progress counter, read only after Wait
		*done++
	})
	return out
}
