// Package fixture holds maporder true positives: ordered output derived
// from randomized map iteration — the exact hazard behind the
// byte-stable trace/metrics dump contract.
package fixture

import (
	"fmt"
	"strings"

	"dynaplat/internal/sim"
)

// DumpBad emits key=value lines in randomized map order: two runs of
// the same simulation produce different bytes.
func DumpBad(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want:maporder
	}
}

// KeysBad accumulates map keys into a slice that escapes unsorted.
func KeysBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want:maporder
	}
	return keys
}

// SinkBad feeds an ordered sink method directly.
func SinkBad(m map[string]bool, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want:maporder
	}
}

// ScheduleBad hands out kernel event sequence numbers in map order:
// same-instant tie-breaking becomes nondeterministic.
func ScheduleBad(k *sim.Kernel, offsets map[string]sim.Duration) {
	for _, d := range offsets {
		k.After(d, func() {}) // want:maporder
	}
}
