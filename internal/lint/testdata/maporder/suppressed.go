package fixture

import "strings"

// DebugDump is an explicitly order-insensitive sink (a human-eyes-only
// scratch dump whose consumer sorts lines itself) — audited via allow.
func DebugDump(m map[string]int, sb *strings.Builder) {
	for k := range m {
		//dynalint:allow maporder fixture: scratch debug dump, consumer sorts lines before diffing
		sb.WriteString(k)
	}
}
