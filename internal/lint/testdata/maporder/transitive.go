package fixture

import (
	"fmt"
	"sort"
	"strings"

	"dynaplat/internal/sim"
)

// The v1 false negative, closed in v2: emission routed through a named
// function — package-level or a local closure — is resolved through the
// call graph and reported at the call site inside the map range.

// emitLine writes one line into an outliving sink (the caller's
// builder).
func emitLine(sb *strings.Builder, k string, v int) {
	fmt.Fprintf(sb, "%s=%d\n", k, v)
}

// DumpHelperBad hides the emission behind a package function.
func DumpHelperBad(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		emitLine(sb, k, v) // want:maporder
	}
}

// DumpLocalBad hides it behind a named local closure.
func DumpLocalBad(m map[string]int, sb *strings.Builder) {
	emit := func(k string) { sb.WriteString(k) }
	for k := range m {
		emit(k) // want:maporder
	}
}

// armAfter schedules through the kernel — consuming an event sequence
// number — one level down.
func armAfter(k *sim.Kernel, d sim.Duration, fn func()) {
	k.After(d, fn)
}

// ScheduleHelperBad reaches kernel scheduling through the helper.
func ScheduleHelperBad(k *sim.Kernel, offsets map[string]sim.Duration) {
	for _, d := range offsets {
		armAfter(k, d, func() {}) // want:maporder
	}
}

// formatPair assembles and returns a string using only its own locals:
// not an emitter — the order hazard, if any, is at the caller's use of
// the value.
func formatPair(k string, v int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s=%d", k, v)
	return sb.String()
}

// CollectSortedClean calls the pure helper from the range and sorts the
// accumulator before use — the approved shape stays clean.
func CollectSortedClean(m map[string]int) []string {
	var lines []string
	for k, v := range m {
		lines = append(lines, formatPair(k, v))
	}
	sort.Strings(lines)
	return lines
}
