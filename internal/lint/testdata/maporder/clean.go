package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// DumpClean is the approved shape: collect keys, sort, then emit. The
// collection loop appends without a sink, and the sort directly follows
// it in the same block.
func DumpClean(m map[string]int, sb *strings.Builder) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s=%d\n", k, m[k])
	}
}

// FilterClean shows a loop-local accumulator: declared inside the range
// body, it is reset every iteration, so map order cannot leak into it.
func FilterClean(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var picked []int
		for _, v := range vs {
			if v > 0 {
				picked = append(picked, v)
			}
		}
		total += len(picked)
	}
	return total
}

// SumClean is order-independent accumulation: no ordered sink involved.
func SumClean(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
