// Package fixture holds sharedrng true positives: per-session code
// drawing from the shared kernel RNG stream, coupling its randomness to
// every other consumer's draw count — the pre-PR-7 CallRetry jitter bug
// shape.
package fixture

import "dynaplat/internal/sim"

// Middleware reconstructs the pre-PR-7 soa.Middleware retry path.
type Middleware struct {
	k       *sim.Kernel
	backoff sim.Duration
}

// scheduleRetryBad is the pre-PR-7 CallRetry jitter code: retry jitter
// drawn per call from the shared kernel stream, so a session's retry
// schedule silently shifts whenever unrelated bus traffic draws.
func (m *Middleware) scheduleRetryBad(session uint64) sim.Duration {
	jitter := m.k.RNG().Float64() // want:sharedrng
	_ = session
	return m.backoff + sim.Duration(jitter*float64(m.backoff))
}

// SplitPerCallBad shows that splitting per call is no better: the Split
// itself advances the shared stream.
func (m *Middleware) SplitPerCallBad(session uint64) *sim.RNG {
	_ = session
	return m.k.RNG().Split() // want:sharedrng
}

// drawJitter launders the shared draw through a helper.
func drawJitter(k *sim.Kernel) float64 {
	return k.RNG().Float64() // want:sharedrng
}

// RetryBackoffBad reaches the shared stream through the helper and is
// reported with the witness path.
func (m *Middleware) RetryBackoffBad() float64 {
	return drawJitter(m.k) // want:sharedrng
}
