package fixture

import "dynaplat/internal/sim"

// InitialSeed draws once at construction to derive the middleware's
// base seed — an audited exception: a single construction-time draw
// cannot couple steady-state behavior across sessions, and the allow
// sanitizes propagation so constructors calling this stay clean.
func InitialSeed(k *sim.Kernel) uint64 {
	//dynalint:allow sharedrng fixture: single construction-time draw, before any session exists
	return k.RNG().Uint64()
}

// NewMiddleware calls the allowed helper: no finding, because the allow
// at the draw site covers its callers too.
func NewMiddleware(k *sim.Kernel) *Middleware {
	_ = InitialSeed(k)
	return &Middleware{k: k, backoff: 10}
}
