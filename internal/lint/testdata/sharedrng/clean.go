package fixture

import "dynaplat/internal/sim"

// sessionJitter is the shipped PR 7 fix shape: a per-session RNG
// derived purely from the session identity, independent of every other
// consumer's draw count.
func (m *Middleware) sessionJitter(seed, session uint64) *sim.RNG {
	return sim.NewRNG(seed ^ 0x9E3779B97F4A7C15*session ^ 0xD1B54A32D192ED03)
}

// RetryBackoffClean draws from the session-derived stream.
func (m *Middleware) RetryBackoffClean(seed, session uint64) sim.Duration {
	jitter := m.sessionJitter(seed, session).Float64()
	return m.backoff + sim.Duration(jitter*float64(m.backoff))
}
