package fixture

import "dynaplat/internal/sim"

// StepClean is the approved shape: straight-line event-callback code.
// Concurrency belongs to the experiment harness, which runs one kernel
// per worker goroutine — never inside kernel callbacks.
func StepClean(k *sim.Kernel, n int, work func(int)) {
	for i := 0; i < n; i++ {
		i := i
		k.After(sim.Duration(i)*sim.Millisecond, func() { work(i) })
	}
	k.Run()
}
