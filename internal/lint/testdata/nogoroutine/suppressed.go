package fixture

// PreloadBad-looking-but-audited: a one-time parallel preload that runs
// strictly before any kernel starts, with the exception documented.
func Preload(load []func()) {
	done := make(chan struct{}, len(load))
	for _, f := range load {
		f := f
		//dynalint:allow nogoroutine fixture: one-time preload completes before any kernel starts
		go func() {
			f()
			//dynalint:allow nogoroutine fixture: one-time preload completes before any kernel starts
			done <- struct{}{}
		}()
	}
	for range load {
		//dynalint:allow nogoroutine fixture: one-time preload completes before any kernel starts
		<-done
	}
}
