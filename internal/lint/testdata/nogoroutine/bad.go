// Package fixture holds nogoroutine true positives: concurrency inside
// what is meant to be single-threaded kernel-callback code.
package fixture

import "sync" // want:nogoroutine

// FanOutBad races the kernel: handlers must never spawn goroutines or
// block on channels.
func FanOutBad(work []func()) int {
	var wg sync.WaitGroup
	results := make(chan int, len(work))
	for _, w := range work {
		w := w
		wg.Add(1)
		go func() { // want:nogoroutine
			defer wg.Done()
			w()
			results <- 1 // want:nogoroutine
		}()
	}
	wg.Wait()
	return <-results // want:nogoroutine
}

// ParkBad blocks the kernel goroutine forever.
func ParkBad() {
	select {} // want:nogoroutine
}
