// Package fixture holds walltime true positives: simulation-style code
// that consults the wall clock, the canonical determinism violation.
package fixture

import "time"

// StepBad is a control step timed against the wall clock.
func StepBad() time.Duration {
	start := time.Now()          // want:walltime
	time.Sleep(time.Millisecond) // want:walltime
	return time.Since(start)     // want:walltime
}

// ArmBad arms OS timers instead of kernel virtual-time events.
func ArmBad() {
	t := time.NewTimer(time.Second)   // want:walltime
	tk := time.NewTicker(time.Second) // want:walltime
	_ = t
	tk.Stop()
}

// NoReason demonstrates that an allow comment without a reason does not
// suppress — and is itself reported, so the exception inventory stays
// auditable.
func NoReason() time.Time {
	return time.Now() /* want:allow want:walltime */ //dynalint:allow walltime
}
