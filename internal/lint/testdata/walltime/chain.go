package fixture

import "time"

// The v2 interprocedural chain: wallDeep reads the clock, wallMiddle
// wraps it, ChainTop is two calls away — every link is reported, the
// indirect ones with the full witness path
// ("wallMiddle → wallDeep → time.Now").

func wallDeep() time.Time {
	return time.Now() // want:walltime
}

func wallMiddle() time.Time {
	return wallDeep() // want:walltime
}

// ChainTop never mentions the time package, yet depends on the wall
// clock two helpers down.
func ChainTop() time.Time {
	return wallMiddle() // want:walltime
}
