package fixture

import "time"

// Pure duration arithmetic, constants, parsing, and formatting are
// values — they cannot perturb virtual-time ordering and are allowed.
const tick = 10 * time.Millisecond

// Budget converts a step count to a wall-duration value for reporting.
func Budget(n int) time.Duration { return time.Duration(n) * tick }

// Parse round-trips a human-readable duration.
func Parse(s string) (time.Duration, error) { return time.ParseDuration(s) }
