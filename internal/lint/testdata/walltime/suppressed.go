package fixture

import "time"

// MeasureRun times a whole harness run with the wall clock — the one
// legitimate use, made auditable by an allow comment with a reason.
func MeasureRun(run func()) time.Duration {
	//dynalint:allow walltime fixture: harness timing measured around the run, never inside it
	start := time.Now()
	run()
	//dynalint:allow walltime fixture: harness timing measured around the run, never inside it
	return time.Since(start)
}

// Inline placement on the flagged line works too.
func Deadline() time.Time {
	return time.Now().Add(time.Second) //dynalint:allow walltime fixture: CLI deadline display only
}
