package fixture

import "dynaplat/internal/sim"

// boundedPoll self-terminates after three rounds: there is genuinely
// nothing to tear down, and the exception says so.
func boundedPoll(k *sim.Kernel, probe func() bool) {
	n := 0
	var poll func()
	poll = func() {
		n++
		if n > 3 || probe() {
			return
		}
		//dynalint:allow droppedref fixture: bounded self-terminating poll, no teardown path exists
		k.After(sim.Millisecond, poll)
	}
	poll()
}
