// Package fixture holds droppedref cases. This file is the PR 3
// regression fixture: it reproduces the QoS deadline-supervision
// timer-leak shape exactly as it existed pre-fix in internal/soa —
// proving the droppedref check would have caught the bug at build time.
package fixture

import "dynaplat/internal/sim"

// subscription mirrors the soa subscription: a tombstone flag, a
// deadline, and (post-fix) a cancelable ref to the supervision timer.
type subscription struct {
	gone     bool
	deadline sim.Duration
	superRef sim.EventRef
}

// superviseLeak is the pre-fix PR 3 bug: the self-re-arming deadline
// check is scheduled with a named handler and the EventRef dropped, so
// Unsubscribe/RemoveEndpoint had nothing to cancel — the final pending
// timer outlived the subscription and fired once into a dead check.
func superviseLeak(k *sim.Kernel, sub *subscription) {
	var tick func()
	tick = func() {
		if sub.gone {
			return
		}
		k.After(sub.deadline, tick) // want:droppedref
	}
	k.After(sub.deadline, tick) // want:droppedref
}

// superviseFixed is the shipped fix: every arm stores the ref in the
// subscription, so teardown can Cancel it. Clean.
func superviseFixed(k *sim.Kernel, sub *subscription) {
	var tick func()
	tick = func() {
		if sub.gone {
			return
		}
		sub.superRef = k.After(sub.deadline, tick)
	}
	sub.superRef = k.After(sub.deadline, tick)
}

// unsubscribe is the teardown that needs the stored ref.
func unsubscribe(sub *subscription) {
	sub.gone = true
	sub.superRef.Cancel()
}
