package fixture

import "dynaplat/internal/sim"

// oneShot schedules an inline literal: a one-shot continuation with
// nothing durable to cancel. Clean by design.
func oneShot(k *sim.Kernel) {
	k.After(sim.Millisecond, func() {})
}

// continuation passes a caller-supplied done callback: the caller owns
// the lifecycle (continuation-passing style). Clean.
func continuation(k *sim.Kernel, done func()) {
	k.At(k.Now().Add(sim.Millisecond), done)
}

// cyclicClean stores both handles so teardown can stop them.
type cyclicClean struct {
	k      *sim.Kernel
	ticker *sim.Ticker
	ref    sim.EventRef
}

func (c *cyclicClean) start() {
	c.ticker = c.k.Every(0, sim.Millisecond, c.cycle)
	c.ref = c.k.After(sim.Second, c.cycle)
}

func (c *cyclicClean) stop() {
	c.ticker.Stop()
	c.ref.Cancel()
}

func (c *cyclicClean) cycle() {}
