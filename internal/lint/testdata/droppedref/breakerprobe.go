package fixture

import "dynaplat/internal/sim"

// breakerLike mirrors the mesh circuit breaker's open→half-open timer:
// trip arms a cool-down whose handler is a durable method value, so the
// ref must be kept on the struct for close/teardown to cancel.
type breakerLike struct {
	k         *sim.Kernel
	open      bool
	reopenRef sim.EventRef
}

// tripKept keeps the reopen ref — the shape breaker.go uses. Clean.
func (b *breakerLike) tripKept(cool sim.Duration) {
	b.open = true
	if b.reopenRef.Pending() {
		b.reopenRef.Cancel()
	}
	b.reopenRef = b.k.After(cool, b.halfOpen)
}

// tripDropped re-arms the cool-down without keeping the handle: a
// re-trip or teardown can no longer cancel the stale transition.
func (b *breakerLike) tripDropped(cool sim.Duration) {
	b.open = true
	b.k.After(cool, b.halfOpen) // want:droppedref
}

func (b *breakerLike) halfOpen() { b.open = false }
