package fixture

import "dynaplat/internal/sim"

// cyclicBad drives a recurring schedule through a method value and
// drops both handles: the ticker can never be stopped, and the method
// value is a durable handler whose ref teardown would need.
type cyclicBad struct{ k *sim.Kernel }

func (c *cyclicBad) start() {
	c.k.Every(0, sim.Millisecond, c.cycle)               // want:droppedref
	c.k.After(sim.Millisecond, c.cycle)                  // want:droppedref
	_ = c.k.Every(0, sim.Second, func() {})              // want:droppedref
	c.k.AfterPriority(0, sim.PriorityClock, c.cycle)     // want:droppedref
	c.k.AtPriority(c.k.Now(), sim.PriorityLate, c.cycle) // want:droppedref
}

func (c *cyclicBad) cycle() {}
