package lint

import (
	"sort"
	"strings"
	"testing"
)

// graphFor builds the whole-program context over one fixture dir.
func graphFor(t *testing.T, fixture string) (*Program, *Graph) {
	t.Helper()
	pkgs := loadFixture(t, fixture)
	prog := NewProgram(pkgs)
	return prog, prog.Graph()
}

// hasEdge reports whether the graph contains caller→callee with the
// given kind, matching on the rendered node names.
func hasEdge(g *Graph, caller, callee string, kind EdgeKind) bool {
	for _, n := range g.Nodes() {
		if n.Name() != caller {
			continue
		}
		for _, e := range n.Out {
			if e.Callee.Name() == callee && e.Kind == kind {
				return true
			}
		}
	}
	return false
}

// TestCallGraphEdges pins the edge-shape contract on the callgraph
// fixture: static calls, method values, conservative interface
// dispatch, function-typed field wiring, and the documented
// field-call conservatism.
func TestCallGraphEdges(t *testing.T) {
	_, g := graphFor(t, "callgraph")
	cases := []struct {
		caller, callee string
		kind           EdgeKind
	}{
		{"Clocker.Tick", "wallRead", EdgeCall},
		{"MethodValue", "Clocker.Tick", EdgeRef},
		{"ViaInterface", "Clocker.Tick", EdgeInterface},
		{"Wire", "wallRead", EdgeRef},
		{"selfWall", "selfWall", EdgeCall},
		{"pingWall", "pongWall", EdgeCall},
		{"pongWall", "pingWall", EdgeCall},
	}
	for _, c := range cases {
		if !hasEdge(g, c.caller, c.callee, c.kind) {
			t.Errorf("missing edge %s -> %s [%s]", c.caller, c.callee, c.kind)
		}
	}
	// Documented conservatism: a call through a function-typed field
	// adds no edge — the wiring site (Wire) already carried the EdgeRef.
	for _, kind := range []EdgeKind{EdgeCall, EdgeMethod, EdgeInterface, EdgeRef} {
		if hasEdge(g, "Invoke", "wallRead", kind) {
			t.Errorf("Invoke must not edge to wallRead (field-call conservatism), got %s", kind)
		}
	}
}

// TestCallGraphRecursionTerminates: taint propagation over self- and
// mutual recursion completes (visited set), every function around the
// cycle is tainted, and witness paths never loop.
func TestCallGraphRecursionTerminates(t *testing.T) {
	prog, g := graphFor(t, "callgraph")
	taints := prog.taint("walltime", "walltime", walltimeSeeds)
	for _, name := range []string{"selfWall", "pingWall", "pongWall"} {
		var node *FuncNode
		for _, n := range g.Nodes() {
			if n.Name() == name {
				node = n
				break
			}
		}
		if node == nil {
			t.Fatalf("node %s not found", name)
		}
		tn := taints[node]
		if tn == nil {
			t.Errorf("%s not tainted through the recursion", name)
			continue
		}
		path := tn.Path(node.Pkg)
		if !strings.HasSuffix(path, "time.Now") {
			t.Errorf("%s witness path %q does not end at the primitive", name, path)
		}
		if strings.Count(path, name) > 1 {
			t.Errorf("%s witness path loops: %q", name, path)
		}
	}
	// pongWall has no seed of its own: its witness must route through
	// pingWall.
	for _, n := range g.Nodes() {
		if n.Name() == "pongWall" {
			if got := taints[n].Path(n.Pkg); got != "pongWall → pingWall → time.Now" {
				t.Errorf("pongWall path = %q", got)
			}
		}
	}
}

// TestCallGraphDeterministic: two independent loads produce byte-equal
// graph dumps and byte-equal, position-sorted diagnostics.
func TestCallGraphDeterministic(t *testing.T) {
	render := func() (string, string) {
		pkgs := loadFixture(t, "callgraph")
		prog := NewProgram(pkgs)
		dump := strings.Join(prog.Graph().DumpGraph(), "\n")
		var lines []string
		for _, d := range RunSuite([]*Analyzer{WalltimeAnalyzer()}, pkgs) {
			lines = append(lines, d.String())
		}
		return dump, strings.Join(lines, "\n")
	}
	dump1, diags1 := render()
	dump2, diags2 := render()
	if dump1 != dump2 {
		t.Error("graph dump differs between two identical loads")
	}
	if diags1 != diags2 {
		t.Error("diagnostics differ between two identical loads")
	}
	if !sort.StringsAreSorted(strings.Split(dump1, "\n")) {
		t.Error("DumpGraph output is not sorted")
	}
	if diags1 == "" {
		t.Fatal("expected walltime findings in the callgraph fixture")
	}
}

// TestWalltimeChainPath pins the headline v2 behavior: a helper
// wrapping time.Now two calls deep is reported at the top caller with
// the full witness path.
func TestWalltimeChainPath(t *testing.T) {
	pkgs := loadFixture(t, "walltime")
	diags := RunSuite([]*Analyzer{WalltimeAnalyzer()}, pkgs)
	want := "wallMiddle → wallDeep → time.Now"
	for _, d := range diags {
		if strings.Contains(d.Message, want) {
			return
		}
	}
	t.Fatalf("no diagnostic carries the full witness path %q; got %v", want, diags)
}

// TestSharedRNGCatchesPR7Shape pins the new analyzer against a
// reconstruction of the pre-PR-7 CallRetry jitter code: the per-call
// shared-stream draw is reported at the draw site, and the laundered
// variant is reported at the caller with its witness path.
func TestSharedRNGCatchesPR7Shape(t *testing.T) {
	pkgs := loadFixture(t, "sharedrng")
	diags := RunSuite([]*Analyzer{SharedrngAnalyzer()}, pkgs)
	var direct, laundered bool
	for _, d := range diags {
		if strings.Contains(d.Message, "PR 7 CallRetry jitter bug shape") {
			direct = true
		}
		if strings.Contains(d.Message, "drawJitter → Kernel.RNG") {
			laundered = true
		}
	}
	if !direct {
		t.Error("direct shared-stream draw (the PR 7 shape) was not reported")
	}
	if !laundered {
		t.Error("shared-stream draw laundered through a helper was not reported with its witness path")
	}
	// The shipped fix shape — a session-derived RNG — must stay clean.
	for _, d := range diags {
		if strings.Contains(d.File, "clean.go") {
			t.Errorf("false positive on the fixed shape: %s", d)
		}
	}
}
