package lint

import (
	"go/token"
	"strings"
)

// Fact propagation (dynalint v2). A *seed* is a primitive impurity site
// inside one function body — a wall-clock read, a stdlib-rand use, a
// goroutine spawn, a shared-kernel-RNG draw, an ordered emission. The
// engine lifts seeds to function-level facts and propagates them up the
// reverse call graph: a function is tainted when its own body seeds the
// fact or when it has an edge (call, method, conservative interface
// dispatch, or escaping function value) to a tainted function.
//
// Propagation is breadth-first from the seeds, so every tainted
// function records a *shortest* witness chain down to a primitive —
// rendered in diagnostics as "a → b → time.Now". BFS over the finite
// node set with a visited map terminates on any recursion (a cycle
// can never shorten a witness), and because nodes, seeds, and reverse
// edges are all visited in deterministic source order, the chosen
// witness — and therefore the diagnostic text — is byte-stable.
//
// Allows sanitize propagation: a seed whose site carries
// //dynalint:allow <check> does not taint its function, and a tainted
// callee does not taint a caller through an allowed call site. The
// audit decision at one line deliberately covers everything above it.

// Seed is one primitive impurity site.
type Seed struct {
	Pos  token.Pos
	Desc string // rendered primitive, e.g. "time.Now", "go statement"
}

// Taint is the fact instance on one function: either a direct seed or
// an edge to a tainted callee, forming a witness chain.
type Taint struct {
	Node *FuncNode
	Seed *Seed     // non-nil at the chain's origin
	Edge *CallEdge // non-nil on propagated taints
	Next *Taint    // the callee's taint (nil at the origin)
}

// Path renders the witness chain starting at this taint's function:
// "deepest → time.Now" or "middle → deepest → time.Now". Function
// names are package-qualified when seen from a different package.
func (t *Taint) Path(from *Package) string {
	var parts []string
	for cur := t; cur != nil; cur = cur.Next {
		parts = append(parts, cur.Node.DisplayName(from))
		if cur.Seed != nil {
			parts = append(parts, cur.Seed.Desc)
		}
	}
	return strings.Join(parts, " → ")
}

// seedFunc scans one function body (its own statements only — nested
// literals are separate nodes) and returns its primitive sites in
// source order.
type seedFunc func(*FuncNode) []Seed

// taint computes (and caches under cacheKey) the tainted-node map for
// one fact. allowCheck is the check name consulted for //dynalint:allow
// sanitization at seed sites and call edges.
func (p *Program) taint(allowCheck, cacheKey string, seeds seedFunc) map[*FuncNode]*Taint {
	if cached, ok := p.taints[cacheKey]; ok {
		return cached
	}
	g := p.Graph()
	out := map[*FuncNode]*Taint{}
	var queue []*Taint
	for _, n := range g.Nodes() {
		for _, s := range seeds(n) {
			if p.allowedAt(allowCheck, s.Pos) {
				continue
			}
			s := s
			t := &Taint{Node: n, Seed: &s}
			out[n] = t
			queue = append(queue, t)
			break // one witness seed per function suffices
		}
	}
	for i := 0; i < len(queue); i++ {
		t := queue[i]
		for _, e := range t.Node.In {
			if out[e.Caller] != nil {
				continue
			}
			if p.allowedAt(allowCheck, e.Pos) {
				continue
			}
			nt := &Taint{Node: e.Caller, Edge: e, Next: t}
			out[e.Caller] = nt
			queue = append(queue, nt)
		}
	}
	p.taints[cacheKey] = out
	return out
}

// taintedEdges returns, in source order, the edges out of pkg's
// functions whose callee is tainted — the indirect violation sites an
// analyzer reports with a witness path. Edges into a function's *own*
// literals are skipped: the literal's body is scanned in place by the
// direct pass (and the literal's own outgoing edges report themselves),
// so attributing it again to the definition site would be noise.
func (p *Program) taintedEdges(pkg *Package, taints map[*FuncNode]*Taint) []*CallEdge {
	var out []*CallEdge
	for _, n := range p.Graph().Nodes() {
		if n.Pkg != pkg {
			continue
		}
		for _, e := range n.Out {
			if e.Callee == n {
				continue // self-recursion: the seed reports directly
			}
			if taints[e.Callee] == nil {
				continue
			}
			if e.Callee.Lit != nil && e.Callee.Encloser == n {
				continue
			}
			out = append(out, e)
		}
	}
	return out
}

// edgeVerb describes how an edge transmits impurity, for diagnostics.
func edgeVerb(e *CallEdge) string {
	switch e.Kind {
	case EdgeRef:
		return "reference to"
	case EdgeInterface:
		return "interface call to"
	default:
		return "call to"
	}
}
