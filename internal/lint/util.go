package lint

import (
	"go/ast"
	"go/types"
)

// isPkgName reports whether id resolves to an imported package name.
func isPkgName(pkg *Package, id *ast.Ident) bool {
	_, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok
}

// namedFrom reports whether t (or its pointee) is the named type
// pkgPath.name, e.g. ("dynaplat/internal/sim", "EventRef").
func namedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// enclosingBlockAfter returns the statements that follow stmt inside
// its enclosing block in file f, or nil when stmt is not directly
// inside a block. Used by maporder to look for a post-loop sort.
func enclosingBlockAfter(f *ast.File, stmt ast.Stmt) []ast.Stmt {
	var rest []ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if rest != nil {
			return false
		}
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			if s == stmt {
				rest = list[i+1:]
				if rest == nil {
					rest = []ast.Stmt{}
				}
				return false
			}
		}
		return true
	})
	return rest
}
