package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package through the real loader.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{filepath.Join("testdata", name)})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`want:([a-z]+)`)

// wantedFindings scans fixture sources for `want:<check>` markers and
// returns the expected "file:line:check" set.
func wantedFindings(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, m[1])] = true
			}
		}
	}
	return want
}

func keyOf(d Diagnostic) string {
	return fmt.Sprintf("%s:%d:%s", filepath.Base(d.File), d.Line, d.Check)
}

// TestFixtures runs each analyzer over its fixture package and checks
// the findings match the in-file want markers exactly: every true
// positive fires, every suppressed case stays silent, every clean case
// stays clean.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkgs := loadFixture(t, a.Name)
			got := map[string]bool{}
			for _, d := range RunSuite([]*Analyzer{a}, pkgs) {
				got[keyOf(d)] = true
			}
			want := wantedFindings(t, filepath.Join("testdata", a.Name))
			for k := range want {
				if !got[k] {
					t.Errorf("missing expected finding %s", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected finding %s", k)
				}
			}
		})
	}
}

// TestQoSLeakRegression pins the PR 3 bug class: the pre-fix deadline-
// supervision shape in qosleak.go must be flagged by droppedref (both
// arm sites), while the shipped fix — storing the ref in sub.superRef —
// must stay clean. This proves the check would have caught the leak
// before it shipped.
func TestQoSLeakRegression(t *testing.T) {
	pkgs := loadFixture(t, "droppedref")
	var inLeak, elsewhere []Diagnostic
	for _, d := range RunSuite([]*Analyzer{DroppedrefAnalyzer()}, pkgs) {
		if filepath.Base(d.File) != "qosleak.go" {
			continue
		}
		if strings.Contains(d.Message, "durable named function") {
			inLeak = append(inLeak, d)
		} else {
			elsewhere = append(elsewhere, d)
		}
	}
	if len(inLeak) != 2 {
		t.Fatalf("superviseLeak: got %d droppedref findings, want 2 (re-arm + initial arm): %v", len(inLeak), inLeak)
	}
	if len(elsewhere) != 0 {
		t.Fatalf("superviseFixed/unsubscribe must be clean, got %v", elsewhere)
	}
}

// TestSuppressionRequiresReason: a reason-less allow must not suppress,
// and must itself be reported (walltime fixture NoReason case).
func TestSuppressionRequiresReason(t *testing.T) {
	pkgs := loadFixture(t, "walltime")
	diags := RunSuite([]*Analyzer{WalltimeAnalyzer()}, pkgs)
	var sawAllow, sawWalltime bool
	for _, d := range diags {
		if filepath.Base(d.File) != "bad.go" {
			continue
		}
		if d.Check == "allow" && strings.Contains(d.Message, "needs a reason") {
			sawAllow = true
		}
		if d.Check == "walltime" && strings.Contains(d.Message, "time.Now") {
			sawWalltime = true
		}
	}
	if !sawAllow {
		t.Error("reason-less allow was not reported")
	}
	if !sawWalltime {
		t.Error("reason-less allow suppressed the finding it decorated")
	}
}

func TestExempted(t *testing.T) {
	a := &Analyzer{Name: "x", Exempt: []string{"dynaplat/cmd", "dynaplat/internal/experiments"}}
	cases := []struct {
		path string
		want bool
	}{
		{"dynaplat/cmd", true},
		{"dynaplat/cmd/exprun", true},
		{"dynaplat/cmdline", false}, // prefix match is per path segment
		{"dynaplat/internal/experiments", true},
		{"dynaplat/internal/soa", false},
	}
	for _, c := range cases {
		if got := a.Exempted(c.path); got != c.want {
			t.Errorf("Exempted(%s) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 7 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 7, nil", len(all), err)
	}
	two, err := ByName("walltime, droppedref")
	if err != nil || len(two) != 2 {
		t.Fatalf("subset: got %d, err %v", len(two), err)
	}
	if two[0].Name != "walltime" || two[1].Name != "droppedref" {
		t.Fatalf("subset order: %s, %s", two[0].Name, two[1].Name)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Fatal("unknown check name must error")
	}
}

// TestDiagnosticsSorted: RunSuite output is position-sorted so dynalint
// output (and the cmd golden test) is byte-stable.
func TestDiagnosticsSorted(t *testing.T) {
	pkgs := loadFixture(t, "walltime")
	diags := RunSuite([]*Analyzer{WalltimeAnalyzer()}, pkgs)
	if len(diags) < 2 {
		t.Fatalf("want multiple findings, got %d", len(diags))
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	if !sorted {
		t.Error("diagnostics are not position-sorted")
	}
}
