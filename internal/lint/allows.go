package lint

import (
	"sort"
	"strings"
)

// AllowEntry is one //dynalint:allow directive in the analyzed tree —
// the unit of the auditable-exception inventory surfaced by
// `dynalint -allows` and budgeted by scripts/verify.sh.
type AllowEntry struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
	// Malformed is set when the directive does not suppress (unknown
	// check name or missing reason); it still appears in the inventory
	// so the audit sees it, and it is separately reported as a
	// diagnostic by RunSuite.
	Malformed bool `json:"malformed,omitempty"`
}

// AllowInventory scans every package comment for //dynalint:allow
// directives and returns them sorted by position. Unlike the
// suppression table, the inventory keeps malformed directives too:
// the point is a complete audit surface.
func AllowInventory(pkgs []*Package) []AllowEntry {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []AllowEntry
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
					pos := pkg.Fset.Position(c.Pos())
					e := AllowEntry{File: pos.Filename, Line: pos.Line}
					if len(fields) > 0 {
						e.Check = fields[0]
					}
					if len(fields) > 1 {
						e.Reason = strings.Join(fields[1:], " ")
					}
					e.Malformed = !known[e.Check] || e.Reason == ""
					out = append(out, e)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
