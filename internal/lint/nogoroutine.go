package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NogoroutineAnalyzer enforces the single-threaded kernel contract: a
// sim.Kernel is driven from exactly one goroutine, and every subsystem
// (bus simulators, platform, SOA, faults) executes inside kernel event
// callbacks. A `go` statement, channel operation, or sync primitive in
// those packages either races the kernel or — worse — introduces
// wall-clock-dependent interleaving that silently breaks per-seed
// reproducibility while passing single-run tests. Concurrency is the
// business of the approved parallel harness (internal/experiments runs
// one kernel per worker goroutine) and of cmd/ front-ends.
//
// v2 is interprocedural: the exempt harness packages (par, experiments,
// fleet) seed concurrency facts that propagate to callers, so a
// kernel-callback package calling par.ForEach through any chain of
// helpers is reported with the witness path — exemption covers a
// package's own code, not laundering concurrency into the kernel.
func NogoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nogoroutine",
		Doc:  "no go statements, channel ops, select, or sync primitives in single-threaded kernel-callback packages, directly or through any chain of helpers",
		Exempt: []string{
			"dynaplat/internal/experiments", // approved parallel harness: one kernel per worker
			"dynaplat/internal/fleet",       // fleet shards: one vehicle kernel per worker
			"dynaplat/internal/par",         // the worker-pool primitive itself
			"dynaplat/cmd",                  // CLI front-ends drive the harness
		},
		Run: runNogoroutine,
	}
}

// nogoroutineSeeds returns the direct concurrency sites of one function
// body: goroutine spawns, channel operations, select statements, and
// uses of the sync/sync-atomic packages.
func nogoroutineSeeds(n *FuncNode) []Seed {
	var out []Seed
	n.walkOwn(func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.GoStmt:
			out = append(out, Seed{Pos: s.Pos(), Desc: "go statement"})
		case *ast.SendStmt:
			out = append(out, Seed{Pos: s.Pos(), Desc: "channel send"})
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				out = append(out, Seed{Pos: s.Pos(), Desc: "channel receive"})
			}
		case *ast.SelectStmt:
			out = append(out, Seed{Pos: s.Pos(), Desc: "select statement"})
		case *ast.SelectorExpr:
			id, ok := s.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := n.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if path := pn.Imported().Path(); path == "sync" || path == "sync/atomic" {
				out = append(out, Seed{Pos: s.Pos(), Desc: path + "." + s.Sel.Name})
			}
		}
		return true
	})
	return out
}

func runNogoroutine(prog *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	const hint = "kernel-callback packages are single-threaded (one kernel per goroutine); move concurrency to internal/experiments or cmd/"
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "sync" || path == "sync/atomic" {
				out = append(out, pkg.diag("nogoroutine", imp.Pos(),
					"import of %s: %s", path, hint))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				out = append(out, pkg.diag("nogoroutine", s.Pos(),
					"go statement: %s", hint))
			case *ast.SendStmt:
				out = append(out, pkg.diag("nogoroutine", s.Pos(),
					"channel send: %s", hint))
			case *ast.UnaryExpr:
				if s.Op.String() == "<-" {
					out = append(out, pkg.diag("nogoroutine", s.Pos(),
						"channel receive: %s", hint))
				}
			case *ast.SelectStmt:
				out = append(out, pkg.diag("nogoroutine", s.Pos(),
					"select statement: %s", hint))
			}
			return true
		})
	}
	taints := prog.taint("nogoroutine", "nogoroutine", nogoroutineSeeds)
	for _, e := range prog.taintedEdges(pkg, taints) {
		out = append(out, pkg.diag("nogoroutine", e.Pos,
			"%s %s spawns concurrency through %s: %s",
			edgeVerb(e), describeCallee(e), taints[e.Callee].Path(pkg), hint))
	}
	return out
}
