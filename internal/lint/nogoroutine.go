package lint

import (
	"go/ast"
	"strings"
)

// NogoroutineAnalyzer enforces the single-threaded kernel contract: a
// sim.Kernel is driven from exactly one goroutine, and every subsystem
// (bus simulators, platform, SOA, faults) executes inside kernel event
// callbacks. A `go` statement, channel operation, or sync primitive in
// those packages either races the kernel or — worse — introduces
// wall-clock-dependent interleaving that silently breaks per-seed
// reproducibility while passing single-run tests. Concurrency is the
// business of the approved parallel harness (internal/experiments runs
// one kernel per worker goroutine) and of cmd/ front-ends.
func NogoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nogoroutine",
		Doc:  "no go statements, channel ops, select, or sync primitives in single-threaded kernel-callback packages",
		Exempt: []string{
			"dynaplat/internal/experiments", // approved parallel harness: one kernel per worker
			"dynaplat/internal/fleet",       // fleet shards: one vehicle kernel per worker
			"dynaplat/internal/par",         // the worker-pool primitive itself
			"dynaplat/cmd",                  // CLI front-ends drive the harness
		},
		Run: runNogoroutine,
	}
}

func runNogoroutine(pkg *Package) []Diagnostic {
	var out []Diagnostic
	const hint = "kernel-callback packages are single-threaded (one kernel per goroutine); move concurrency to internal/experiments or cmd/"
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "sync" || path == "sync/atomic" {
				out = append(out, pkg.diag("nogoroutine", imp.Pos(),
					"import of %s: %s", path, hint))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				out = append(out, pkg.diag("nogoroutine", s.Pos(),
					"go statement: %s", hint))
			case *ast.SendStmt:
				out = append(out, pkg.diag("nogoroutine", s.Pos(),
					"channel send: %s", hint))
			case *ast.UnaryExpr:
				if s.Op.String() == "<-" {
					out = append(out, pkg.diag("nogoroutine", s.Pos(),
						"channel receive: %s", hint))
				}
			case *ast.SelectStmt:
				out = append(out, pkg.diag("nogoroutine", s.Pos(),
					"select statement: %s", hint))
			}
			return true
		})
	}
	return out
}
