package obs

import (
	"fmt"

	"dynaplat/internal/sim"
)

// Phase is the Chrome trace_event phase of a recorded event.
type Phase byte

const (
	PhaseBegin    Phase = 'b' // async span begin
	PhaseEnd      Phase = 'e' // async span end
	PhaseInstant  Phase = 'i' // instant event
	PhaseComplete Phase = 'X' // complete event (begin + duration)
)

// Span identifies an in-flight async span. The zero Span is invalid;
// valid IDs start at 1 and are ordinals assigned in kernel dispatch
// order, which makes them deterministic per seed.
type Span struct {
	id uint64
}

// Valid reports whether the span was actually started (tracing enabled).
func (s Span) Valid() bool { return s.id != 0 }

// Record is one trace event in virtual time.
type Record struct {
	TS    sim.Time // virtual timestamp
	Dur   sim.Duration
	Phase Phase
	Cat   string // category: "kernel", "net", "soa", "faults", "mode", ...
	Name  string // event / span name
	Track string // logical track (-> Chrome tid), e.g. "can:body", "ecu1"
	Span  uint64 // async span id (0 for instants)
	Args  string // preformatted detail, "" when none
}

// Trace records spans and instants in virtual time. All state is owned
// by the simulation goroutine (the kernel is single-threaded), so Trace
// does no locking. A nil *Trace is safe: every method is a no-op, which
// is how the hooks stay free when observability is disabled.
type Trace struct {
	k    *sim.Kernel
	recs []Record
	next uint64 // next span ordinal (first handed out is 1)

	// Cap bounds the number of retained records; 0 means unlimited.
	// When full, further records are counted in Dropped but not stored.
	Cap     int
	Dropped int64
}

// NewTrace returns a tracer stamping records with k's virtual clock.
func NewTrace(k *sim.Kernel) *Trace {
	return &Trace{k: k}
}

// Records returns the retained records in recording order.
func (t *Trace) Records() []Record {
	if t == nil {
		return nil
	}
	return t.recs
}

func (t *Trace) push(r Record) {
	if t.Cap > 0 && len(t.recs) >= t.Cap {
		t.Dropped++
		return
	}
	t.recs = append(t.recs, r)
}

// Begin opens an async span on the given track and returns its handle.
func (t *Trace) Begin(cat, name, track, args string) Span {
	if t == nil {
		return Span{}
	}
	t.next++
	id := t.next
	t.push(Record{TS: t.k.Now(), Phase: PhaseBegin, Cat: cat, Name: name, Track: track, Span: id, Args: args})
	return Span{id: id}
}

// End closes an async span. Name and track must match Begin's for the
// Chrome viewer to pair them; args may add outcome detail (e.g. "lost").
func (t *Trace) End(cat, name, track string, s Span, args string) {
	if t == nil || s.id == 0 {
		return
	}
	t.push(Record{TS: t.k.Now(), Phase: PhaseEnd, Cat: cat, Name: name, Track: track, Span: s.id, Args: args})
}

// Instant records a point event on a track.
func (t *Trace) Instant(cat, name, track, args string) {
	if t == nil {
		return
	}
	t.push(Record{TS: t.k.Now(), Phase: PhaseInstant, Cat: cat, Name: name, Track: track, Args: args})
}

// Instantf is Instant with formatted args. The fmt.Sprintf only runs
// when tracing is enabled.
func (t *Trace) Instantf(cat, name, track, format string, a ...any) {
	if t == nil {
		return
	}
	t.Instant(cat, name, track, fmt.Sprintf(format, a...))
}

// Complete records a closed interval [start, start+dur) in one event.
func (t *Trace) Complete(cat, name, track string, start sim.Time, dur sim.Duration, args string) {
	if t == nil {
		return
	}
	t.push(Record{TS: start, Dur: dur, Phase: PhaseComplete, Cat: cat, Name: name, Track: track, Args: args})
}
