// Package obs is the deterministic, virtual-time observability layer of
// the platform (DESIGN.md §7). It provides
//
//   - a metrics registry (counters, gauges, histograms) keyed by
//     {layer, ecu, iface} labels, zero-alloc in steady state: instruments
//     are looked up once at wiring time and then updated through pointer
//     receivers with no map access and no allocation, and
//
//   - a span/event tracer (trace.go) that records kernel releases,
//     network frame lifecycles, SOA publish→deliver chains, and
//     mode/fault transitions in virtual time, exportable as Chrome
//     trace_event JSON (chrome.go) and a plain-text dump.
//
// Everything in obs is deterministic: output for a fixed seed is
// byte-identical across runs and across -parallel worker counts, because
// all IDs are ordinals assigned in kernel dispatch order and all dumps
// are sorted by stable keys. obs depends only on internal/sim; the
// instrumented layers depend on obs (never the other way around), and
// every hook they call is nil-checked so the uninstrumented hot path
// keeps PR 1's 0 allocs/op.
package obs

import (
	"fmt"
	"io"
	"sort"

	"dynaplat/internal/sim"
)

// Labels identifies the source of a metric sample. Comparable by value;
// used directly as (part of) a map key so lookups allocate nothing.
type Labels struct {
	Layer string // "sim", "network", "platform", "soa", "faults", "exp"
	ECU   string // station / node name, "" when not applicable
	Iface string // service interface, network name, or app name
}

func (l Labels) String() string {
	return "{layer=" + l.Layer + ",ecu=" + l.ECU + ",iface=" + l.Iface + "}"
}

// metricKey is the registry map key: name plus labels, comparable.
type metricKey struct {
	name string
	l    Labels
}

// Counter is a monotonically increasing int64. Callers hold the pointer
// returned by Registry.Counter and call Add/Inc on the hot path: no map
// lookup, no allocation.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (n may be any int64; counters are by convention monotonic).
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time int64 value (queue depth, mode ordinal, ...).
type Gauge struct {
	v int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// histBuckets are the fixed upper bounds (inclusive) for duration
// histograms, in virtual nanoseconds. The final implicit bucket is +Inf.
var histBuckets = [...]sim.Duration{
	sim.Microsecond,
	10 * sim.Microsecond,
	100 * sim.Microsecond,
	sim.Millisecond,
	10 * sim.Millisecond,
	100 * sim.Millisecond,
	sim.Second,
}

// histLabels are the printable bucket bounds, index-aligned with
// histBuckets plus a trailing "+Inf".
var histLabels = [...]string{
	"1us", "10us", "100us", "1ms", "10ms", "100ms", "1s", "+Inf",
}

// Histogram is a fixed-bucket duration histogram (virtual time). The
// bucket array is embedded, so Observe is allocation-free.
type Histogram struct {
	buckets [len(histBuckets) + 1]int64
	count   int64
	sum     sim.Duration
	max     sim.Duration
}

// Observe records one duration sample.
func (h *Histogram) Observe(d sim.Duration) {
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	for i, ub := range histBuckets {
		if d <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(histBuckets)]++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() sim.Duration { return h.sum }

// Max returns the largest observed duration.
func (h *Histogram) Max() sim.Duration { return h.max }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Registry is a set of named, labeled instruments. Get-or-create methods
// (Counter/Gauge/Histogram) are meant for wiring time; the returned
// pointers are then used directly on hot paths. A nil *Registry is valid:
// all methods return usable detached instruments, so instrumented code
// can wire unconditionally and still run un-observed.
type Registry struct {
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[metricKey]*Counter{},
		gauges:   map[metricKey]*Gauge{},
		hists:    map[metricKey]*Histogram{},
	}
}

// Counter returns the counter for (name, labels), creating it if needed.
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return &Counter{}
	}
	k := metricKey{name, l}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (name, labels), creating it if needed.
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	k := metricKey{name, l}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for (name, labels), creating it if
// needed.
func (r *Registry) Histogram(name string, l Labels) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	k := metricKey{name, l}
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

func sortedKeys[V any](m map[metricKey]V) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.name != b.name {
			return a.name < b.name
		}
		if a.l.Layer != b.l.Layer {
			return a.l.Layer < b.l.Layer
		}
		if a.l.ECU != b.l.ECU {
			return a.l.ECU < b.l.ECU
		}
		return a.l.Iface < b.l.Iface
	})
	return keys
}

// WriteText dumps every instrument in a deterministic, sorted plain-text
// format:
//
//	counter <name>{layer=...,ecu=...,iface=...} <value>
//	gauge   <name>{...} <value>
//	hist    <name>{...} count=<n> sum=<d> max=<d> mean=<d> le{1us:..,...,+Inf:..}
//
// Output is byte-identical for identical metric contents.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, k := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "counter %s%s %d\n", k.name, k.l, r.counters[k].v); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s%s %d\n", k.name, k.l, r.gauges[k].v); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		if _, err := fmt.Fprintf(w, "hist %s%s count=%d sum=%s max=%s mean=%s le{",
			k.name, k.l, h.count, h.sum, h.max, h.Mean()); err != nil {
			return err
		}
		for i, c := range h.buckets {
			sep := ","
			if i == len(h.buckets)-1 {
				sep = "}\n"
			}
			if _, err := fmt.Fprintf(w, "%s:%d%s", histLabels[i], c, sep); err != nil {
				return err
			}
		}
	}
	return nil
}
