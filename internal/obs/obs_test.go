package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dynaplat/internal/sim"
)

func TestLabelsString(t *testing.T) {
	l := Labels{Layer: "soa", ECU: "ecu1", Iface: "Speed"}
	if got, want := l.String(), "{layer=soa,ecu=ecu1,iface=Speed}"; got != want {
		t.Errorf("Labels.String() = %q, want %q", got, want)
	}
}

// The registry hands out stable pointers: the same (name, labels) pair
// always maps to the same instrument.
func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	l := Labels{Layer: "network", Iface: "body"}
	c1 := r.Counter("frames", l)
	c1.Add(3)
	c2 := r.Counter("frames", l)
	if c1 != c2 {
		t.Error("same key returned distinct counters")
	}
	if c2.Value() != 3 {
		t.Errorf("counter value = %d, want 3", c2.Value())
	}
	if r.Counter("frames", Labels{Layer: "network", Iface: "chassis"}) == c1 {
		t.Error("distinct labels returned the same counter")
	}
}

// Nil registry / trace / obs must be fully inert: wiring code calls
// these unconditionally and relies on the no-op behavior.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c", Labels{}).Inc()
	r.Gauge("g", Labels{}).Set(7)
	r.Histogram("h", Labels{}).Observe(sim.Millisecond)
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WriteText: %v", err)
	}

	var tr *Trace
	sp := tr.Begin("cat", "n", "trk", "")
	if sp.Valid() {
		t.Error("nil trace Begin returned a valid span")
	}
	tr.End("cat", "n", "trk", sp, "")
	tr.Instant("cat", "n", "trk", "")
	tr.Instantf("cat", "n", "trk", "%d", 1)
	tr.Complete("cat", "n", "trk", 0, 0, "")
	if tr.Records() != nil {
		t.Error("nil trace retained records")
	}

	var o *Obs
	if o.Enabled() {
		t.Error("nil Obs reports enabled")
	}
	if o.Metrics() != nil || o.Tracer() != nil {
		t.Error("nil Obs returned non-nil components")
	}
	o.SnapshotKernel(sim.NewKernel(1))
	o.SnapshotKernelInternals(sim.NewKernel(1))
	o.BridgeKernelTrace(sim.NewKernel(1))
	// Accessors on the nil components still work end to end.
	o.Metrics().Counter("c", Labels{}).Inc()
	o.Tracer().Instant("cat", "n", "trk", "")
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	samples := []sim.Duration{
		500,                   // ≤ 1us
		sim.Microsecond,       // boundary: ≤ 1us
		5 * sim.Microsecond,   // ≤ 10us
		sim.Millisecond,       // ≤ 1ms
		200 * sim.Millisecond, // ≤ 1s
		2 * sim.Second,        // +Inf
	}
	for _, d := range samples {
		h.Observe(d)
	}
	want := [8]int64{2, 1, 0, 1, 0, 0, 1, 1}
	if h.buckets != want {
		t.Errorf("buckets = %v, want %v", h.buckets, want)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Max() != 2*sim.Second {
		t.Errorf("max = %s, want 2s", h.Max())
	}
	var sum sim.Duration
	for _, d := range samples {
		sum += d
	}
	if h.Sum() != sum || h.Mean() != sum/6 {
		t.Errorf("sum=%s mean=%s, want %s/%s", h.Sum(), h.Mean(), sum, sum/6)
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Errorf("empty histogram mean = %s, want 0", empty.Mean())
	}
}

// WriteText output is sorted by (name, layer, ecu, iface) regardless of
// creation order, and byte-identical across dumps.
func TestWriteTextDeterministic(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		type ent struct {
			name string
			l    Labels
			v    int64
		}
		ents := []ent{
			{"zz_frames", Labels{Layer: "network", Iface: "body"}, 2},
			{"aa_jobs", Labels{Layer: "platform", ECU: "ecu2"}, 5},
			{"aa_jobs", Labels{Layer: "platform", ECU: "ecu1"}, 4},
		}
		for _, i := range order {
			r.Counter(ents[i].name, ents[i].l).Add(ents[i].v)
		}
		r.Gauge("mode", Labels{Layer: "platform"}).Set(3)
		r.Histogram("lat", Labels{Layer: "soa", Iface: "Speed"}).Observe(5 * sim.Microsecond)
		return r
	}
	var a, b bytes.Buffer
	if err := build([]int{0, 1, 2}).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{2, 0, 1}).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("creation order changed dump:\n--- a\n%s--- b\n%s", a.String(), b.String())
	}
	want := "counter aa_jobs{layer=platform,ecu=ecu1,iface=} 4\n" +
		"counter aa_jobs{layer=platform,ecu=ecu2,iface=} 5\n" +
		"counter zz_frames{layer=network,ecu=,iface=body} 2\n" +
		"gauge mode{layer=platform,ecu=,iface=} 3\n" +
		"hist lat{layer=soa,ecu=,iface=Speed} count=1 sum=5us max=5us mean=5us " +
		"le{1us:0,10us:1,100us:0,1ms:0,10ms:0,100ms:0,1s:0,+Inf:0}\n"
	if a.String() != want {
		t.Errorf("WriteText:\n%s\nwant:\n%s", a.String(), want)
	}
}

func TestTraceCapDropsExcess(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTrace(k)
	tr.Cap = 2
	for i := 0; i < 5; i++ {
		tr.Instant("cat", "n", "trk", "")
	}
	if len(tr.Records()) != 2 {
		t.Errorf("retained %d records, want 2", len(tr.Records()))
	}
	if tr.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped)
	}
	// Span ordinals keep advancing even when the record is dropped, so
	// IDs stay deterministic regardless of the cap.
	sp := tr.Begin("cat", "s", "trk", "")
	if sp.id != 1 {
		t.Errorf("span id = %d, want 1", sp.id)
	}
}

func TestSpanOrdinalsSequential(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTrace(k)
	s1 := tr.Begin("c", "a", "t", "")
	s2 := tr.Begin("c", "b", "t", "")
	if s1.id != 1 || s2.id != 2 {
		t.Errorf("span ids = %d,%d, want 1,2", s1.id, s2.id)
	}
	tr.End("c", "a", "t", s1, "done")
	recs := tr.Records()
	if len(recs) != 3 || recs[2].Phase != PhaseEnd || recs[2].Span != 1 {
		t.Errorf("unexpected records: %+v", recs)
	}
}

// The Chrome export must be valid JSON (including escaping of quotes,
// backslashes and control characters) and byte-identical across writes.
func TestChromeTraceValidAndDeterministic(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTrace(k)
	sp := tr.Begin("net", `frame "x"\path`, "can:body", "id=0x12\tsrc")
	tr.End("net", `frame "x"\path`, "can:body", sp, "delivered\n")
	tr.Instant("mode", string([]byte{'m', 0x01}), "modes", "")
	tr.Complete("platform", "job", "ecu:ecu1", sim.Time(1500), sim.Duration(2500), "ok")
	scopes := []Scope{{Name: "test/scope", Trace: tr}, {Name: "empty", Trace: nil}}

	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, scopes); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, scopes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Chrome trace not byte-identical across writes")
	}

	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 process_name metas + 2 thread_name metas (can:body, modes... plus
	// ecu:ecu1) + 4 records.
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 5 || phases["b"] != 1 || phases["e"] != 1 || phases["i"] != 1 || phases["X"] != 1 {
		t.Errorf("phase histogram = %v", phases)
	}
	if !strings.Contains(a.String(), `"tsns":1500`) {
		t.Error("sub-microsecond remainder not preserved in args.tsns")
	}
}

// SnapshotKernel must export only the queue-backend-invariant gauges;
// backend bookkeeping (pool occupancy, compactions, wheel counters) is
// quarantined in SnapshotKernelInternals so that observed experiment
// artifacts stay byte-identical across heap-only and wheel backends.
func TestSnapshotKernelBackendInvariantOnly(t *testing.T) {
	k := sim.NewKernel(1)
	o := New(k)
	o.SnapshotKernel(k)
	var buf bytes.Buffer
	if err := o.M.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{"kernel_fired", "kernel_canceled", "kernel_queue_live", "kernel_queue_peak"} {
		if !strings.Contains(dump, want) {
			t.Errorf("SnapshotKernel missing invariant gauge %s", want)
		}
	}
	for _, banned := range []string{"kernel_pool_free", "kernel_compactions", "kernel_reused", "kernel_wheel"} {
		if strings.Contains(dump, banned) {
			t.Errorf("SnapshotKernel leaked backend-dependent gauge %s", banned)
		}
	}
	o.SnapshotKernelInternals(k)
	buf.Reset()
	if err := o.M.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kernel_pool_free") {
		t.Error("SnapshotKernelInternals did not export kernel_pool_free")
	}
}

// BridgeKernelTrace captures existing k.Trace call sites as instants.
func TestBridgeKernelTrace(t *testing.T) {
	k := sim.NewKernel(1)
	o := New(k)
	o.BridgeKernelTrace(k)
	k.At(sim.Time(5*sim.Microsecond), func() {
		k.Trace("faults", "inject %s", "crash")
	})
	k.Run()
	recs := o.T.Records()
	if len(recs) != 1 {
		t.Fatalf("bridged %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Cat != "faults" || r.Name != "inject crash" || r.Track != "kernel" ||
		r.TS != sim.Time(5*sim.Microsecond) || r.Phase != PhaseInstant {
		t.Errorf("bridged record = %+v", r)
	}
}

// Steady-state instrument updates and enabled trace pushes must not
// allocate; nil-trace hooks must be free too. This is the contract that
// lets the instrumented layers keep their hot paths allocation-free.
func TestInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", Labels{Layer: "x"})
	g := r.Gauge("g", Labels{Layer: "x"})
	h := r.Histogram("h", Labels{Layer: "x"})
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(5 * sim.Microsecond)
	}); n != 0 {
		t.Errorf("instrument update allocs/op = %g, want 0", n)
	}
	var tr *Trace
	if n := testing.AllocsPerRun(100, func() {
		sp := tr.Begin("c", "n", "t", "")
		tr.End("c", "n", "t", sp, "")
		tr.Instant("c", "n", "t", "")
	}); n != 0 {
		t.Errorf("nil-trace hook allocs/op = %g, want 0", n)
	}
}
