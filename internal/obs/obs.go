package obs

import (
	"dynaplat/internal/sim"
)

// Obs bundles one kernel's observability plane: a metrics registry and
// a span/event tracer. A nil *Obs is fully inert — every layer's
// SetObs(nil) (the default) keeps its hot path free of observability
// work beyond a nil check.
type Obs struct {
	M *Registry
	T *Trace
}

// New returns an enabled observability plane for kernel k.
func New(k *sim.Kernel) *Obs {
	return &Obs{M: NewRegistry(), T: NewTrace(k)}
}

// Metrics returns the registry, or nil. Safe on a nil receiver, and the
// nil result is itself safe to call instrument getters on (they return
// detached instruments).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.M
}

// Tracer returns the span tracer, or nil. Safe on a nil receiver.
func (o *Obs) Tracer() *Trace {
	if o == nil {
		return nil
	}
	return o.T
}

// Enabled reports whether this plane records anything.
func (o *Obs) Enabled() bool { return o != nil }

// SnapshotKernel mirrors k's queue-backend-invariant event-kernel
// statistics into gauges (kernel_fired, kernel_canceled,
// kernel_queue_live, kernel_queue_peak) labeled {layer: sim}. Call it
// just before dumping metrics; it reads Kernel.Stats() once.
//
// Only the invariant subset of sim.KernelStats is exported here: a
// wheel-backed and a heap-only kernel driving the same event program
// produce identical gauges, so experiment artifacts that include this
// snapshot stay byte-identical across queue backends. Backend
// bookkeeping (pool occupancy, compactions, cascades) goes through
// SnapshotKernelInternals instead.
func (o *Obs) SnapshotKernel(k *sim.Kernel) {
	if o == nil || o.M == nil {
		return
	}
	st := k.Stats()
	l := Labels{Layer: "sim"}
	o.M.Gauge("kernel_fired", l).Set(int64(st.Fired))
	o.M.Gauge("kernel_canceled", l).Set(int64(st.Canceled))
	o.M.Gauge("kernel_queue_live", l).Set(int64(st.QueueLive))
	o.M.Gauge("kernel_queue_peak", l).Set(int64(st.PeakQueue))
}

// SnapshotKernelInternals mirrors k's backend-dependent bookkeeping
// into gauges (kernel_pool_free, kernel_compactions, kernel_reused,
// kernel_wheel_live, kernel_wheel_cascades) labeled {layer: sim}.
// These values depend on lazy-recycle timing and on which queue backend
// (heap vs timing wheel) held each event, so they must not feed
// artifacts that are compared across backends — keep them in
// diagnostics-only dumps.
func (o *Obs) SnapshotKernelInternals(k *sim.Kernel) {
	if o == nil || o.M == nil {
		return
	}
	st := k.Stats()
	l := Labels{Layer: "sim"}
	o.M.Gauge("kernel_pool_free", l).Set(int64(st.PoolFree))
	o.M.Gauge("kernel_compactions", l).Set(int64(st.Compactions))
	o.M.Gauge("kernel_reused", l).Set(int64(st.Reused))
	o.M.Gauge("kernel_wheel_live", l).Set(int64(st.WheelLive))
	o.M.Gauge("kernel_wheel_cascades", l).Set(int64(st.WheelCascades))
}

// BridgeKernelTrace installs a sim.Tracer on k whose events are
// forwarded into o's span tracer as instants (category preserved, track
// "kernel"). This captures every existing k.Trace call site across the
// layers — fault campaign records, SOA discovery, redundancy
// promotions, gateway routing — without touching those call sites.
// No-op when o is nil or k already routes to this plane.
func (o *Obs) BridgeKernelTrace(k *sim.Kernel) {
	if o == nil || o.T == nil {
		return
	}
	t := o.T
	k.SetTracer(&sim.Tracer{Sink: func(ev sim.TraceEvent) {
		t.push(Record{TS: ev.At, Phase: PhaseInstant, Cat: ev.Category, Name: ev.Message, Track: "kernel"})
	}})
}
