package obs

import (
	"io"
	"strconv"
	"strings"
)

// Chrome trace_event export (the JSON Array Format understood by
// chrome://tracing and Perfetto). The JSON is assembled by hand with a
// strings.Builder instead of encoding/json so the byte stream is fully
// under our control: field order, number formatting, and escaping are
// fixed, which is what makes trace output byte-identical per seed.
//
// Mapping:
//
//	pid         scope ordinal (one per Scope, i.e. per kernel/experiment)
//	tid         track ordinal within its scope, in order of first use
//	ts          virtual time in integer microseconds; sub-µs remainder
//	            is preserved in args.tsns (virtual ns) when nonzero
//	ph          'b'/'e' async spans, 'i' instants, 'X' complete, 'M' metadata
//	id          span ordinal (assigned in kernel dispatch order)
//
// A process_name metadata event names each scope and a thread_name
// metadata event names each track.

// jsonEscape writes s as a JSON string literal (quotes included).
func jsonEscape(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			sb.WriteString(`\"`)
		case c == '\\':
			sb.WriteString(`\\`)
		case c == '\n':
			sb.WriteString(`\n`)
		case c == '\t':
			sb.WriteString(`\t`)
		case c < 0x20:
			const hex = "0123456789abcdef"
			sb.WriteString(`\u00`)
			sb.WriteByte(hex[c>>4])
			sb.WriteByte(hex[c&0xf])
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
}

// Scope is one traced kernel's worth of records, exported as one Chrome
// "process". Name appears in the viewer's process selector.
type Scope struct {
	Name  string
	Trace *Trace
}

// WriteChromeTrace writes the scopes as one Chrome trace_event JSON
// document. Output is deterministic: scopes keep their given order
// (pid = index+1), tracks are numbered in order of first appearance,
// and records are emitted in recording order (kernel dispatch order).
func WriteChromeTrace(w io.Writer, scopes []Scope) error {
	var sb strings.Builder
	sb.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(line)
	}
	var line strings.Builder
	meta := func(pid, tid int, name, value string) {
		line.Reset()
		line.WriteString(`{"ph":"M","pid":`)
		line.WriteString(strconv.Itoa(pid))
		line.WriteString(`,"tid":`)
		line.WriteString(strconv.Itoa(tid))
		line.WriteString(`,"name":`)
		jsonEscape(&line, name)
		line.WriteString(`,"args":{"name":`)
		jsonEscape(&line, value)
		line.WriteString(`}}`)
		emit(line.String())
	}
	for si, sc := range scopes {
		pid := si + 1
		meta(pid, 0, "process_name", sc.Name)
		if sc.Trace == nil {
			continue
		}
		tids := map[string]int{}
		tidOf := func(track string) int {
			id, ok := tids[track]
			if !ok {
				id = len(tids) + 1
				tids[track] = id
				meta(pid, id, "thread_name", track)
			}
			return id
		}
		for _, r := range sc.Trace.Records() {
			tid := tidOf(r.Track)
			line.Reset()
			line.WriteString(`{"ph":"`)
			line.WriteByte(byte(r.Phase))
			line.WriteString(`","pid":`)
			line.WriteString(strconv.Itoa(pid))
			line.WriteString(`,"tid":`)
			line.WriteString(strconv.Itoa(tid))
			line.WriteString(`,"ts":`)
			us := int64(r.TS) / 1000
			ns := int64(r.TS) % 1000
			line.WriteString(strconv.FormatInt(us, 10))
			line.WriteString(`,"cat":`)
			jsonEscape(&line, r.Cat)
			line.WriteString(`,"name":`)
			jsonEscape(&line, r.Name)
			if r.Phase == PhaseComplete {
				line.WriteString(`,"dur":`)
				line.WriteString(strconv.FormatInt(int64(r.Dur)/1000, 10))
			}
			if r.Phase == PhaseBegin || r.Phase == PhaseEnd {
				line.WriteString(`,"id":`)
				line.WriteString(strconv.FormatUint(r.Span, 10))
			}
			if r.Phase == PhaseInstant {
				line.WriteString(`,"s":"t"`)
			}
			if r.Args != "" || ns != 0 {
				line.WriteString(`,"args":{`)
				wrote := false
				if r.Args != "" {
					line.WriteString(`"detail":`)
					jsonEscape(&line, r.Args)
					wrote = true
				}
				if ns != 0 {
					if wrote {
						line.WriteByte(',')
					}
					line.WriteString(`"tsns":`)
					line.WriteString(strconv.FormatInt(int64(r.TS), 10))
				}
				line.WriteByte('}')
			}
			line.WriteByte('}')
			emit(line.String())
		}
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
