package obs

import (
	"strconv"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// NetTap is the canonical network.Tap: it turns frame lifecycles into
// async spans ("frame" on track "net:<name>") and maintains the
// net_frames_* counters and the net_frame_latency histogram, all keyed
// by {layer: network, iface: <net name>}.
//
// One NetTap serves all networks of one kernel; per-network instruments
// are cached in small maps that are only touched on the first frame of
// each network (steady state is pointer updates only for counters; the
// span path allocates trace records by design, which is why taps are
// only installed when tracing/metrics are requested).
type NetTap struct {
	o *Obs

	enq   map[string]*Counter
	deliv map[string]*Counter
	lost  map[string]*Counter
	lat   map[string]*Histogram

	// spanStart remembers Begin times so delivery can feed the latency
	// histogram without widening the Tap interface.
	spanStart map[uint64]sim.Time
}

// NewNetTap returns a tap recording into o, or nil when o is nil (so
// callers can unconditionally pass the result to SetTap).
func NewNetTap(o *Obs) *NetTap {
	if o == nil {
		return nil
	}
	return &NetTap{
		o:         o,
		enq:       map[string]*Counter{},
		deliv:     map[string]*Counter{},
		lost:      map[string]*Counter{},
		lat:       map[string]*Histogram{},
		spanStart: map[uint64]sim.Time{},
	}
}

func (nt *NetTap) counters(net string) (enq, deliv, lost *Counter, lat *Histogram) {
	enq, ok := nt.enq[net]
	if !ok {
		l := Labels{Layer: "network", Iface: net}
		enq = nt.o.M.Counter("net_frames_enqueued", l)
		nt.enq[net] = enq
		nt.deliv[net] = nt.o.M.Counter("net_frames_delivered", l)
		nt.lost[net] = nt.o.M.Counter("net_frames_lost", l)
		nt.lat[net] = nt.o.M.Histogram("net_frame_latency", l)
	}
	return enq, nt.deliv[net], nt.lost[net], nt.lat[net]
}

func frameArgs(msg *network.Message) string {
	dst := msg.Dst
	if dst == "" {
		dst = "*"
	}
	return "id=0x" + strconv.FormatUint(uint64(msg.ID), 16) +
		" " + msg.Src + "->" + dst +
		" class=" + msg.Class.String() +
		" bytes=" + strconv.Itoa(msg.Bytes)
}

// FrameEnqueued implements network.Tap.
func (nt *NetTap) FrameEnqueued(net string, msg *network.Message, at sim.Time) uint64 {
	enq, _, _, _ := nt.counters(net)
	enq.Inc()
	s := nt.o.T.Begin("net", "frame", "net:"+net, frameArgs(msg))
	if s.Valid() {
		nt.spanStart[s.id] = at
	}
	return s.id
}

// FrameTxStart implements network.Tap.
func (nt *NetTap) FrameTxStart(net string, span uint64, at sim.Time) {
	if span == 0 {
		return
	}
	nt.o.T.Instant("net", "tx-start", "net:"+net, "")
}

// FrameDelivered implements network.Tap.
func (nt *NetTap) FrameDelivered(net string, span uint64, msg *network.Message, station string, at sim.Time) {
	_, deliv, _, lat := nt.counters(net)
	deliv.Inc()
	if start, ok := nt.spanStart[span]; ok {
		lat.Observe(at.Sub(start))
		delete(nt.spanStart, span)
		nt.o.T.End("net", "frame", "net:"+net, Span{id: span}, "delivered "+station)
	} else {
		// Broadcast: later deliveries after the span closed.
		nt.o.T.Instant("net", "frame-copy", "net:"+net, "delivered "+station)
	}
}

// FrameLost implements network.Tap.
func (nt *NetTap) FrameLost(net string, span uint64, msg *network.Message, reason string, at sim.Time) {
	_, _, lost, _ := nt.counters(net)
	lost.Inc()
	if _, ok := nt.spanStart[span]; ok {
		delete(nt.spanStart, span)
		nt.o.T.End("net", "frame", "net:"+net, Span{id: span}, "lost: "+reason)
	} else {
		nt.o.T.Instant("net", "frame-lost", "net:"+net, reason)
	}
}
