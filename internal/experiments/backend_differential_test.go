package experiments

import (
	"bytes"
	"testing"

	"dynaplat/internal/obs"
	"dynaplat/internal/sim"
)

// The timing-wheel fast path must be invisible in every observable: an
// entire observed experiment re-run with the wheel disabled
// (sim.HeapOnlyDefault, read by every kernel the runners construct)
// must reproduce the rendered table, the Chrome trace and the metrics
// dump byte-for-byte. This is the end-to-end form of the kernel-level
// differential test in internal/sim — it covers the fault campaigns,
// bus simulators, SOA middleware and redundancy layers all at once,
// and it is why obs.SnapshotKernel exports only backend-invariant
// gauges.
func testBackendDifferential(t *testing.T, id string) {
	old := ObsTraceCap
	ObsTraceCap = 20000
	defer func() { ObsTraceCap = old }()

	artifacts := func(heapOnly bool) (table, trace, metrics string) {
		sim.HeapOnlyDefault = heapOnly
		defer func() { sim.HeapOnlyDefault = false }()
		run, err := RunObserved(id)
		if err != nil {
			t.Fatal(err)
		}
		var tb, trb, mb bytes.Buffer
		run.Table.Render(&tb)
		if err := obs.WriteChromeTrace(&trb, run.TraceScopes()); err != nil {
			t.Fatal(err)
		}
		if err := run.WriteMetrics(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.String(), trb.String(), mb.String()
	}

	wTable, wTrace, wMetrics := artifacts(false)
	hTable, hTrace, hMetrics := artifacts(true)
	if wTable != hTable {
		t.Errorf("%s: rendered table differs across queue backends:\n--- wheel\n%s\n--- heap-only\n%s",
			id, wTable, hTable)
	}
	if wTrace != hTrace {
		t.Errorf("%s: Chrome trace differs across queue backends", id)
	}
	if wMetrics != hMetrics {
		t.Errorf("%s: metrics dump differs across queue backends", id)
	}
	if len(wTable) == 0 || len(wTrace) == 0 || len(wMetrics) == 0 {
		t.Errorf("%s: empty artifacts (table=%d trace=%d metrics=%d bytes)",
			id, len(wTable), len(wTrace), len(wMetrics))
	}
}

func TestE21BackendDifferential(t *testing.T) { testBackendDifferential(t, "E21") }
func TestE22BackendDifferential(t *testing.T) { testBackendDifferential(t, "E22") }
