package experiments

import (
	"fmt"

	"dynaplat/internal/admission"
	"dynaplat/internal/faults"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/obs"
	"dynaplat/internal/platform"
	"dynaplat/internal/reconfig"
	"dynaplat/internal/safety/redundancy"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func init() {
	register("E22", runE22)
	registerObs("E22", runE22Observed)
}

// E22 — §3.3/§3.4/§5: self-healing recovery-time sweep. Three 500 Hz
// ASIL-D deterministic functions run on a four-ECU compute cluster under
// a seeded ECU fault campaign (crash/hang/reboot), in four recovery
// configurations:
//
//   - none:        campaign repair only (a crashed function returns when
//                  its ECU reboots)
//   - redundancy:  one function replicated master/slave with heartbeat
//                  failover (the paper's static-redundancy baseline)
//   - reconfig:    the self-healing orchestrator — completion-silence
//                  detection, admission-checked re-placement, endpoint
//                  migration, shedding and re-homing
//   - both:        redundancy for one function, the orchestrator for the
//                  rest
//
// Availability is the fraction of function periods for which the sink
// consumer received that period's sample. The same campaign seed drives
// every configuration at a given fault level (the per-cell fault count
// column must be identical down each level), so the configurations face
// bit-identical fault schedules. Recovery time is the orchestrator's
// detect→steady span per recovery, measured by the campaign's OnInject /
// orchestrator record timeline — no trace scraping. The whole table is
// byte-identical per seed (TestE22Deterministic) and unchanged under
// full instrumentation (TestE22ObservedMatchesPlain).

const (
	e22Period  = 2 * sim.Millisecond
	e22Horizon = 6 * sim.Second
	e22Periods = int(int64(e22Horizon) / int64(e22Period))
)

// e22Level is one fault-intensity step.
type e22Level struct {
	name string
	mtbf sim.Duration // fleet-wide mean time between ECU faults; 0 = none
}

// e22Config is one recovery configuration.
type e22Config struct {
	name      string
	redundant bool // master/slave replication for one function
	reconfig  bool // the self-healing orchestrator for modeled apps
}

// e22Result aggregates one cell.
type e22Result struct {
	faults           int
	avail            float64
	recoveries       int
	rollbacks        int
	meanRec, maxRec  sim.Duration
	shed, rebalances int
	failovers        int
}

// e22Cell runs one cell of the sweep. observe wires a full obs plane
// (kernel-trace bridge, SOA metrics, platform spans, orchestrator
// counters and detect→steady histograms); observation schedules no
// events and draws no randomness, so the observed result is
// bit-identical to the plain one.
func e22Cell(li int, lv e22Level, cfg e22Config, observe bool) (e22Result, *obs.Obs) {
	k := sim.NewKernel(0xE22<<4 | uint64(li))
	var o *obs.Obs
	if observe {
		o = obs.New(k)
		o.T.Cap = ObsTraceCap
		o.BridgeKernelTrace(k)
	}
	medium := tsn.New(k, tsn.DefaultConfig("backbone"))
	if o != nil {
		medium.SetTap(obs.NewNetTap(o))
	}
	mw := soa.New(k, nil)
	mw.SetObs(o)
	mw.AddNetwork(medium, 1400)
	p := platform.New(k, mw)
	sys := model.NewSystem("e22-vehicle")
	computes := []string{"cpmA", "cpmB", "cpmC", "cpmD"}
	for _, e := range computes {
		ecu := model.ECU{Name: e, CPUMHz: 100, MemoryKB: 192, HasMMU: true, OS: model.OSRTOS}
		sys.ECUs = append(sys.ECUs, &ecu)
		if _, err := p.AddNode(ecu, platform.ModeIsolated, 250*sim.Microsecond); err != nil {
			panic(err)
		}
	}
	platform.ObservePlatform(o, p)

	// Three deterministic ASIL-D functions, one per compute ECU, each
	// publishing its period index to the sink every period. The endpoint
	// carries the app's name so the orchestrator can migrate it.
	das := []struct{ name, home string }{
		{"da-brake", "cpmA"}, {"da-steer", "cpmB"}, {"da-adas", "cpmC"},
	}
	seen := make([][]bool, len(das))
	cons := mw.Endpoint("dash", "sink")
	var group *redundancy.Group
	replicaHomes := []string{"cpmC", "cpmA", "cpmD"}
	for i, d := range das {
		i, d := i, d
		seen[i] = make([]bool, e22Periods)
		spec := model.App{Name: d.name, Kind: model.Deterministic, ASIL: model.ASILD,
			Period: e22Period, WCET: 400 * sim.Microsecond, Deadline: e22Period, MemoryKB: 96}
		iface := d.name + ".state"
		ep := mw.Endpoint(d.name, d.home)
		ep.Offer(iface, soa.OfferOpts{Network: "backbone", Class: network.ClassControl})
		publish := func() {
			idx := int(int64(k.Now()) / int64(e22Period))
			if idx < e22Periods {
				ep.Publish(iface, 16, idx)
			}
		}
		if err := cons.Subscribe(iface, func(ev soa.Event) {
			if idx, ok := ev.Payload.(int); ok && idx >= 0 && idx < e22Periods {
				seen[i][idx] = true
			}
		}); err != nil {
			panic(err)
		}

		if cfg.redundant && d.name == "da-adas" {
			// The statically redundant function: hot master/slave replicas
			// managed by the redundancy manager. When the orchestrator is
			// also active, the replicas are modeled as *pinned* apps
			// (candidates = home only): the admission model then accounts
			// for the capacity static redundancy consumes, and the
			// orchestrator strands rather than moves them — the redundancy
			// manager keeps their lifecycle.
			rm := redundancy.NewManager(p)
			var g *redundancy.Group
			behavior := platform.Behavior{OnActivate: func(int64) {
				if _, node := p.FindApp(g.Master().Spec.Name); node != nil &&
					node.ECU().Name != ep.ECU() {
					ep.Migrate(node.ECU().Name)
				}
				publish()
			}}
			g, err := rm.Replicate(spec, replicaHomes, behavior,
				redundancy.Config{HeartbeatPeriod: e22Period, MissThreshold: 3,
					PromotionDelay: sim.Millisecond})
			if err != nil {
				panic(err)
			}
			if err := g.Start(); err != nil {
				panic(err)
			}
			group = g
			if cfg.reconfig {
				for ri, home := range replicaHomes {
					rep := spec
					rep.Name = fmt.Sprintf("%s/r%d", spec.Name, ri)
					rep.Candidates = []string{home}
					repCopy := rep
					sys.Apps = append(sys.Apps, &repCopy)
					sys.Placement[rep.Name] = home
				}
			}
			continue
		}
		inst, err := p.Node(d.home).Install(spec,
			platform.Behavior{OnActivate: func(int64) { publish() }})
		if err != nil {
			panic(err)
		}
		if err := inst.Start(); err != nil {
			panic(err)
		}
		app := spec
		sys.Apps = append(sys.Apps, &app)
		sys.Placement[app.Name] = d.home
	}

	// Best-effort NDAs fill the remaining capacity: with redundancy
	// active every ECU is memory-full, so a re-placed ASIL-D function
	// forces the orchestrator to shed lower-criticality load first
	// (graceful degradation under pressure).
	ndas := []struct {
		name string
		asil model.ASIL
		home string
	}{
		{"nda-video", model.ASILB, "cpmB"},
		{"nda-music", model.QM, "cpmC"},
		{"nda-infot", model.QM, "cpmD"},
	}
	for _, n := range ndas {
		spec := model.App{Name: n.name, Kind: model.NonDeterministic,
			ASIL: n.asil, MemoryKB: 96}
		inst, err := p.Node(n.home).Install(spec, platform.Behavior{})
		if err != nil {
			panic(err)
		}
		if err := inst.Start(); err != nil {
			panic(err)
		}
		specCopy := spec
		sys.Apps = append(sys.Apps, &specCopy)
		sys.Placement[spec.Name] = n.home
	}

	// The self-healing orchestrator (reconfig / both configs).
	var orc *reconfig.Orchestrator
	if cfg.reconfig {
		ctrl := admission.NewController(sys)
		orc = reconfig.New(p, ctrl, reconfig.Config{
			CheckPeriod:      sim.Millisecond,
			SilenceThreshold: 10 * sim.Millisecond,
			ReplanDelay:      sim.Millisecond,
			SettleTimeout:    150 * sim.Millisecond,
			Rehome:           true,
		})
		orc.SetObs(o)
		orc.AttachModes(platform.NewModeManager(p, platform.DefaultModes()))
		if err := orc.Watch(computes...); err != nil {
			panic(err)
		}
		orc.Start()
	}

	// The seeded campaign: identical schedule for every configuration at
	// this level (its RNG derives from the spec seed alone). The OnInject
	// hook counts activations — the per-level fault columns must match
	// across configurations.
	var res e22Result
	if lv.mtbf > 0 {
		camp := faults.NewCampaign(k, faults.Spec{
			Seed:        0xE22<<8 | uint64(li),
			Horizon:     e22Horizon,
			MTBF:        lv.mtbf,
			RepairMean:  600 * sim.Millisecond,
			RebootDelay: 300 * sim.Millisecond,
			Weights:     faults.Weights{Crash: 0.6, Hang: 0.2, Reboot: 0.2},
		})
		for _, e := range computes {
			camp.AddTarget(e, p.Node(e))
		}
		camp.OnInject = func(faults.Injection) { res.faults++ }
		camp.Start()
	}

	k.RunUntil(sim.Time(e22Horizon + 2*sim.Second)) // repair + rebalance tail
	o.SnapshotKernel(k)

	ok, total := 0, len(das)*e22Periods
	for i := range seen {
		for _, s := range seen[i] {
			if s {
				ok++
			}
		}
	}
	res.avail = float64(ok) / float64(total)
	if group != nil {
		res.failovers = len(group.Failovers)
	}
	if orc != nil {
		var sum sim.Duration
		for _, rec := range orc.Recoveries {
			res.shed += len(rec.Sheds)
			if rec.RolledBack {
				res.rollbacks++
			}
			if rec.Aborted || rec.RolledBack || !rec.Steady {
				continue
			}
			res.recoveries++
			d := rec.Duration()
			sum += d
			if d > res.maxRec {
				res.maxRec = d
			}
		}
		if res.recoveries > 0 {
			res.meanRec = sum / sim.Duration(res.recoveries)
		}
		res.rebalances = len(orc.Rebalances)
	}
	return res, o
}

// e22Levels returns the fault-intensity sweep (fleet-wide MTBF).
func e22Levels() []e22Level {
	return []e22Level{
		{name: "0-none", mtbf: 0},
		{name: "1-low", mtbf: 3 * sim.Second},
		{name: "2-mid", mtbf: 1500 * sim.Millisecond},
		{name: "3-high", mtbf: 700 * sim.Millisecond},
	}
}

// e22Configs returns the recovery configurations.
func e22Configs() []e22Config {
	return []e22Config{
		{name: "none"},
		{name: "redundancy", redundant: true},
		{name: "reconfig", reconfig: true},
		{name: "both", redundant: true, reconfig: true},
	}
}

// e22ms renders a duration in milliseconds ("-" for none observed).
func e22ms(d sim.Duration, have bool) string {
	if !have {
		return "-"
	}
	return fmt.Sprintf("%.2fms", float64(d)/float64(sim.Millisecond))
}

func runE22() *Table {
	t, _ := runE22With(false)
	return t
}

// runE22Observed runs the full sweep with per-cell instrumentation: one
// obs scope per cell, named "E22/<level>/<config>".
func runE22Observed() *ObsRun {
	t, scopes := runE22With(true)
	return &ObsRun{Table: t, Scopes: scopes}
}

func runE22With(observe bool) (*Table, []ObsScope) {
	t := &Table{
		ID: "E22", Title: "Self-healing reconfiguration recovery sweep",
		Source: "§3.3, §3.4, §5 (dynamic reconfiguration closing the monitoring loop)",
		Columns: []string{"fault-level", "config", "faults", "DA-avail",
			"recoveries", "mean-rec", "max-rec", "shed", "rebalances", "failovers"},
		Expectation: "the orchestrator restores ≥99% deterministic-function " +
			"availability at the highest fault level with millisecond-scale " +
			"detect→steady recoveries, while the bare stack degrades visibly; " +
			"every configuration at a level faces the identical fault schedule",
	}
	levels := e22Levels()
	configs := e22Configs()
	t.Holds = true
	top := len(levels) - 1
	var scopes []ObsScope
	for li, lv := range levels {
		levelFaults := -1
		for _, cfg := range configs {
			r, o := e22Cell(li, lv, cfg, observe)
			if o != nil {
				scopes = append(scopes, ObsScope{Name: "E22/" + lv.name + "/" + cfg.name, Obs: o})
			}
			t.AddRow(lv.name, cfg.name, itoa(int64(r.faults)), pct(r.avail),
				itoa(int64(r.recoveries)), e22ms(r.meanRec, r.recoveries > 0),
				e22ms(r.maxRec, r.recoveries > 0), itoa(int64(r.shed)),
				itoa(int64(r.rebalances)), itoa(int64(r.failovers)))
			// Identical campaign per level: the schedule must not depend on
			// the recovery configuration.
			if levelFaults == -1 {
				levelFaults = r.faults
			} else if r.faults != levelFaults {
				t.Holds = false
			}
			// Fault-free level: near-perfect availability, no recoveries.
			if li == 0 && (r.avail < 0.999 || r.recoveries != 0) {
				t.Holds = false
			}
			// The admission model mirrors the physical deployment exactly
			// (replicas are modeled when the orchestrator is active), so a
			// rollback would mean model/platform drift.
			if r.rollbacks != 0 {
				t.Holds = false
			}
			if li == top {
				switch cfg.name {
				case "reconfig":
					if r.avail < 0.99 || r.recoveries == 0 || r.meanRec > 25*sim.Millisecond {
						t.Holds = false
					}
				case "both":
					if r.avail < 0.99 {
						t.Holds = false
					}
				case "none":
					if r.avail > 0.97 {
						t.Holds = false // no recovery must visibly degrade
					}
				}
			}
		}
	}
	return t, scopes
}
