package experiments

import (
	"bytes"
	"testing"

	"dynaplat/internal/fleet"
)

// TestE23Deterministic: twelve fleet campaigns over 3000 heterogeneous
// vehicle simulations must render byte-identically run to run.
func TestE23Deterministic(t *testing.T) {
	a, err := Run("E23")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E23")
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	a.Render(&ba)
	b.Render(&bb)
	if ba.String() != bb.String() {
		t.Errorf("E23 not byte-identical across runs:\n--- first\n%s\n--- second\n%s",
			ba.String(), bb.String())
	}
	if !a.Holds {
		t.Errorf("E23 expectation violated:\n%s", ba.String())
	}
}

// TestE23ShardIndependence: an E23 cell's fleet report is byte-identical
// whether its vehicles run serially or sharded over any worker count —
// the cell pins Workers to 1 purely as a scheduling choice, not a
// correctness requirement.
func TestE23ShardIndependence(t *testing.T) {
	render := func(workers int) string {
		rep, err := fleet.RunCampaign(fleet.CampaignConfig{
			FleetSeed: 0xE23<<8 | 2, Vehicles: e23Vehicles,
			Update: fleet.UpdateSpec{Verify: true, FaultProb: 0.40},
			Abort:  true, RollbackInFlight: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Render(&buf)
		return buf.String()
	}
	serial := render(1)
	for _, workers := range []int{3, 8} {
		if got := render(workers); got != serial {
			t.Errorf("workers=%d: E23 cell rendering differs from serial", workers)
		}
	}
}
