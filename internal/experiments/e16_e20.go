package experiments

import (
	"fmt"

	"dynaplat/internal/can"
	"dynaplat/internal/clocksync"
	"dynaplat/internal/dse"
	"dynaplat/internal/gateway"
	"dynaplat/internal/network"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
	"dynaplat/internal/workload"
)

// Supplementary experiments: claims the paper makes in passing whose
// substrates this repository also implements. EXPERIMENTS.md lists them
// after the primary E1–E15 set.

func init() {
	register("E16", runE16)
	register("E17", runE17)
	register("E18", runE18)
	register("E19", runE19)
	register("E20", runE20)
}

// E16 — §3.2 / §5.3: "high accuracy clock synchronization is required"
// for a central switch; gPTP-style sync bounds the residual error.
func runE16() *Table {
	t := &Table{
		ID: "E16", Title: "Clock synchronization accuracy vs sync period",
		Source:  "§3.2, §5.3 (802.1AS substrate)",
		Columns: []string{"sync-period", "residual-p50", "residual-p100", "unsynced-drift@10s"},
		Expectation: "residual error scales with the sync period and stays " +
			"orders of magnitude below free-running drift",
	}
	run := func(period sim.Duration) (p50, p100 sim.Duration) {
		k := sim.NewKernel(31)
		net := tsn.New(k, tsn.DefaultConfig("bb"))
		cfg := clocksync.DefaultConfig()
		cfg.SyncPeriod = period
		d := clocksync.NewDomain(k, net, "gm", cfg)
		d.AddSlave("zone", clocksync.NewClock(5*sim.Millisecond, 80_000)) // 80ppm
		d.Start()
		// Sample |error| at arbitrary instants after a warm-up — between
		// syncs the clock free-runs, so this captures the
		// period-dependent worst case in steady state.
		var errs sim.Sample
		k.Every(sim.Time(sim.Second+2*period), 7*sim.Millisecond, func() {
			e, _ := d.SlaveError("zone")
			if e < 0 {
				e = -e
			}
			errs.AddDuration(e)
		})
		k.RunUntil(sim.Time(10 * sim.Second))
		return errs.PercentileDuration(50), errs.PercentileDuration(100)
	}
	free := clocksync.NewClock(0, 80_000).Error(sim.Time(10 * sim.Second))
	t.Holds = true
	var prev sim.Duration
	for _, period := range []sim.Duration{31_250 * sim.Microsecond,
		125 * sim.Millisecond, 500 * sim.Millisecond} {
		p50, p100 := run(period)
		t.AddRow(period.String(), p50.String(), p100.String(), free.String())
		if p100 >= free/10 {
			t.Holds = false
		}
		if p100 < prev {
			// Longer sync periods must not tighten the worst case:
			// drift accumulates for longer between corrections.
			t.Holds = false
		}
		prev = p100
	}
	return t
}

// E17 — §3 safety of dynamic communication: E2E protection detects every
// channel fault class.
func runE17() *Table {
	t := &Table{
		ID: "E17", Title: "End-to-end protection coverage",
		Source:  "§3 (E2E substrate), AUTOSAR-E2E style",
		Columns: []string{"fault-injected", "messages", "detected", "false-accepts"},
		Expectation: "corruption, loss, repetition and masquerade all " +
			"detected; zero faulty payloads accepted as OK",
	}
	const n = 1000
	t.Holds = true

	// none: clean channel, everything OK.
	{
		tx := &soa.E2ESender{DataID: 7}
		rx := &soa.E2EReceiver{DataID: 7}
		for i := 0; i < n; i++ {
			if st, _ := rx.Check(tx.Protect([]byte{byte(i)})); st != soa.E2EOK {
				t.Holds = false
			}
		}
		t.AddRow("none", itoa(n), fmt.Sprintf("%d/0", 0), itoa(rx.WrongCRC+rx.Loss+rx.Repetition))
	}
	// bit corruption: 5% of messages get one flipped bit; every one must
	// be flagged (never OK).
	{
		rng := sim.NewRNG(41)
		tx := &soa.E2ESender{DataID: 7}
		rx := &soa.E2EReceiver{DataID: 7}
		faults, detected, falseAccepts := 0, 0, 0
		for i := 0; i < n; i++ {
			buf := tx.Protect([]byte{byte(i)})
			if rng.Bool(0.05) {
				faults++
				b := append([]byte(nil), buf...)
				bit := rng.Intn(len(b) * 8)
				b[bit/8] ^= 1 << (bit % 8)
				if st, _ := rx.Check(b); st == soa.E2EOK {
					falseAccepts++
				} else {
					detected++
				}
				// The genuine message still arrives afterwards; a
				// corrupted predecessor must not poison it (CRC fails
				// before the counter advances). Loss flags are fine.
				rx.Check(buf)
				continue
			}
			rx.Check(buf)
		}
		t.AddRow("bit-corruption(5%)", itoa(n), fmt.Sprintf("%d/%d", detected, faults),
			itoa(int64(falseAccepts)))
		if falseAccepts > 0 || detected != faults {
			t.Holds = false
		}
	}
	// loss: 5% of messages dropped; every gap must be flagged on the
	// next delivery.
	{
		rng := sim.NewRNG(42)
		tx := &soa.E2ESender{DataID: 7}
		rx := &soa.E2EReceiver{DataID: 7}
		gaps, detected, falseAccepts := 0, 0, 0
		pending := false
		for i := 0; i < n; i++ {
			buf := tx.Protect([]byte{byte(i)})
			if rng.Bool(0.05) {
				if !pending {
					gaps++ // one episode, however many consecutive drops
				}
				pending = true
				continue
			}
			st, _ := rx.Check(buf)
			if pending {
				if st == soa.E2ELoss {
					detected++
				} else {
					falseAccepts++
				}
				pending = false
			} else if st != soa.E2EOK {
				falseAccepts++
			}
		}
		if pending {
			gaps-- // trailing drop has no successor to reveal it
		}
		t.AddRow("loss(5%)", itoa(n), fmt.Sprintf("%d/%d", detected, gaps),
			itoa(int64(falseAccepts)))
		if falseAccepts > 0 || detected != gaps {
			t.Holds = false
		}
	}
	// duplication: 5% of messages delivered twice; the duplicate must be
	// flagged as repetition.
	{
		rng := sim.NewRNG(43)
		tx := &soa.E2ESender{DataID: 7}
		rx := &soa.E2EReceiver{DataID: 7}
		dups, detected, falseAccepts := 0, 0, 0
		for i := 0; i < n; i++ {
			buf := tx.Protect([]byte{byte(i)})
			rx.Check(buf)
			if rng.Bool(0.05) {
				dups++
				if st, _ := rx.Check(buf); st == soa.E2ERepetition {
					detected++
				} else {
					falseAccepts++
				}
			}
		}
		t.AddRow("duplication(5%)", itoa(n), fmt.Sprintf("%d/%d", detected, dups),
			itoa(int64(falseAccepts)))
		if falseAccepts > 0 || detected != dups {
			t.Holds = false
		}
	}
	// masquerade: messages of a foreign stream must be flagged WrongID.
	{
		foreign := &soa.E2ESender{DataID: 99}
		rx := &soa.E2EReceiver{DataID: 7}
		detected := 0
		for i := 0; i < 50; i++ {
			if st, _ := rx.Check(foreign.Protect([]byte{1})); st == soa.E2EWrongID {
				detected++
			}
		}
		t.AddRow("masquerade", "50", fmt.Sprintf("%d/50", detected), itoa(50-int64(detected)))
		if detected != 50 {
			t.Holds = false
		}
	}
	return t
}

// E18 — Figure 1: legacy domains keep talking to the new backbone through
// a gateway; what does the bridge cost?
func runE18() *Table {
	t := &Table{
		ID: "E18", Title: "Legacy CAN domain bridged to the TSN backbone",
		Source:  "Fig. 1 (gateway substrate)",
		Columns: []string{"path", "mean-latency", "p100-latency"},
		Expectation: "bridged path ≈ CAN segment + gateway + TSN segment; " +
			"native TSN path is an order of magnitude faster",
	}
	k := sim.NewKernel(43)
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000})
	net := tsn.New(k, tsn.DefaultConfig("bb"))
	gw := gateway.New(k, gateway.Config{Name: "gw", ProcDelay: 100 * sim.Microsecond})
	gw.AttachPort(bus, can.MaxPayload)
	gw.AttachPort(net, 1400)
	gw.AddRoute(gateway.Route{FromNet: "body", ToNet: "bb", ID: 0x100, Dst: "head"})

	bus.Attach("sensor", func(network.Delivery) {})
	net.Attach("cam", func(network.Delivery) {})
	var bridged, native sim.Sample
	// The network Delivery only covers the last hop; end-to-end latency
	// rides in the payload as the original send timestamp (the gateway
	// forwards payloads untouched).
	net.Attach("head", func(d network.Delivery) {
		sent, ok := d.Msg.Payload.(sim.Time)
		if !ok {
			return
		}
		switch d.Msg.ID {
		case 0x100:
			bridged.AddDuration(k.Now().Sub(sent))
		case 0x200:
			native.AddDuration(k.Now().Sub(sent))
		}
	})
	k.Every(0, 10*sim.Millisecond, func() {
		bus.Send(network.Message{ID: 0x100, Src: "sensor", Bytes: 8, Payload: k.Now()})
		net.Send(network.Message{ID: 0x200, Src: "cam", Dst: "head",
			Class: network.ClassPriority, Bytes: 8, Payload: k.Now()})
	})
	k.RunUntil(sim.Time(2 * sim.Second))

	t.AddRow("CAN→gw→TSN", sim.Duration(bridged.Mean()).String(),
		bridged.PercentileDuration(100).String())
	t.AddRow("native TSN", sim.Duration(native.Mean()).String(),
		native.PercentileDuration(100).String())
	t.Holds = bridged.Count() > 100 && native.Count() > 100 &&
		bridged.Mean() > 10*native.Mean()
	return t
}

// E19 — §4.2 dynamic binding: the wire cost of runtime service discovery.
func runE19() *Table {
	t := &Table{
		ID: "E19", Title: "Runtime service discovery (find/offer) latency",
		Source:  "§2.1/§4.2 (SOME/IP-SD substrate)",
		Columns: []string{"network", "provider", "found", "rtt"},
		Expectation: "local answers are ~IPC; remote discovery pays a full " +
			"wire round trip, far larger on CAN FD than on TSN; unknown " +
			"services time out",
	}
	var tsnRemote, tsnLocal, canRemote sim.Duration
	var missFound bool

	// TSN rig.
	{
		k := sim.NewKernel(47)
		net := tsn.New(k, tsn.DefaultConfig("net"))
		mw := soa.New(k, nil)
		mw.AddNetwork(net, 1400)
		mw.Endpoint("p", "ecu1").Offer("S", soa.OfferOpts{Network: "net"})
		mw.Endpoint("c", "ecu2").Discover("S", sim.Second, func(r soa.DiscoveryResult) {
			tsnRemote = r.RTT
		})
		mw.Endpoint("l", "ecu1").Discover("S", sim.Second, func(r soa.DiscoveryResult) {
			tsnLocal = r.RTT
		})
		mw.Endpoint("c", "ecu2").Discover("Missing", 50*sim.Millisecond,
			func(r soa.DiscoveryResult) { missFound = r.Found })
		k.Run()
	}
	// CAN FD rig.
	{
		k := sim.NewKernel(47)
		bus := can.NewFD(k, can.Config{Name: "net", BitsPerSecond: 500_000}, 2_000_000)
		mw := soa.New(k, nil)
		mw.AddNetwork(bus, can.MaxPayloadFD)
		mw.Endpoint("p", "ecu1").Offer("S", soa.OfferOpts{Network: "net"})
		mw.Endpoint("c", "ecu2").Discover("S", sim.Second, func(r soa.DiscoveryResult) {
			canRemote = r.RTT
		})
		k.Run()
	}
	t.AddRow("tsn", "same-ECU", "yes", tsnLocal.String())
	t.AddRow("tsn", "remote", "yes", tsnRemote.String())
	t.AddRow("canfd", "remote", "yes", canRemote.String())
	t.AddRow("tsn", "none (timeout)", boolStr(missFound), "50ms")
	t.Holds = tsnLocal == 0 && tsnRemote > 0 && canRemote > 5*tsnRemote && !missFound
	return t
}

// E20 — §2.3 / [14]: multi-objective exploration yields the trade-off
// front, not just one point.
func runE20() *Table {
	t := &Table{
		ID: "E20", Title: "Pareto front over (ECU cost, peak util, cross traffic)",
		Source:  "§2.3, [14]",
		Columns: []string{"point", "ecu-cost", "max-util", "cross-mbps"},
		Expectation: "front contains ≥ 2 mutually non-dominated points: " +
			"cheaper deployments run hotter or chattier",
	}
	rng := sim.NewRNG(53)
	sys := workload.Fleet(rng, 4, 8, 0, 1, 1.0)
	front := dse.ParetoFront(sys, 0, 1)
	for i, p := range front {
		t.AddRow(fmt.Sprintf("#%d", i+1), itoa(int64(p.Cost.ECUCost)),
			f2(p.Cost.MaxUtil), f2(p.Cost.CrossMbps))
	}
	t.Holds = len(front) >= 2
	// Verify mutual non-domination (defensive; the dse tests prove it).
	for i := range front {
		for j := range front {
			if i == j {
				continue
			}
			a, b := front[i].Cost, front[j].Cost
			if a.ECUCost <= b.ECUCost && a.MaxUtil <= b.MaxUtil &&
				a.CrossMbps <= b.CrossMbps &&
				(a.ECUCost < b.ECUCost || a.MaxUtil < b.MaxUtil || a.CrossMbps < b.CrossMbps) {
				t.Holds = false
			}
		}
	}
	return t
}
