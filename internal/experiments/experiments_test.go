package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 24 {
		t.Fatalf("experiments = %d (%v), want 24", len(ids), ids)
	}
	// E1..E24 are dense and strictly increasing.
	prev := 0
	for i, id := range ids {
		n := expNum(id)
		if n <= prev {
			t.Errorf("ids[%d] = %s out of order (after E%d)", i, id, prev)
		}
		prev = n
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E24" {
		t.Errorf("ids span %s..%s, want E1..E24", ids[0], ids[len(ids)-1])
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// Every experiment must run, produce rows, and its qualitative
// expectation must hold — this is the repository's headline regression
// test: the paper's claims reproduce on the simulated substrate.
func TestAllExpectationsHold(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			if len(tbl.Columns) == 0 {
				t.Fatal("no columns")
			}
			for _, r := range tbl.Rows {
				if len(r) != len(tbl.Columns) {
					t.Errorf("row %v has %d cells, want %d", r, len(r), len(tbl.Columns))
				}
			}
			if !tbl.Holds {
				var buf bytes.Buffer
				tbl.Render(&buf)
				t.Errorf("expectation violated:\n%s", buf.String())
			}
		})
	}
}

func TestRenderFormat(t *testing.T) {
	tbl := &Table{ID: "EX", Title: "T", Source: "S",
		Columns: []string{"a", "bb"}, Expectation: "x", Holds: true}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== EX: T", "[S]", "a", "bb", "HOLDS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	tbl.Holds = false
	buf.Reset()
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), "VIOLATED") {
		t.Error("violated verdict missing")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Same binary, same seeds → identical tables.
	for _, id := range []string{"E1", "E4", "E7"} {
		a, _ := Run(id)
		b, _ := Run(id)
		var ba, bb bytes.Buffer
		a.Render(&ba)
		b.Render(&bb)
		if ba.String() != bb.String() {
			t.Errorf("%s not deterministic", id)
		}
	}
}

func TestTableJSON(t *testing.T) {
	tbl := &Table{ID: "EX", Title: "T", Source: "S",
		Columns: []string{"a", "b"}, Expectation: "x", Holds: true}
	tbl.AddRow("1", "2")
	data, err := tbl.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID    string              `json:"id"`
		Holds bool                `json:"holds"`
		Rows  []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "EX" || !decoded.Holds || len(decoded.Rows) != 1 ||
		decoded.Rows[0]["a"] != "1" || decoded.Rows[0]["b"] != "2" {
		t.Errorf("decoded = %+v", decoded)
	}
}
