package experiments

import (
	"fmt"
	"io"
	"sort"

	"dynaplat/internal/obs"
)

// Observed experiment runs (DESIGN.md §7). An experiment that supports
// observation registers a second runner that wires an obs plane into
// every kernel it builds and returns the populated scopes alongside the
// usual table. Observation must never change the experiment's result:
// the obs hooks schedule no kernel events and draw no randomness, so an
// observed table is bit-identical to the plain one (asserted per
// experiment, e.g. TestE21ObservedMatchesPlain).

// ObsTraceCap bounds the retained trace records per scope for observed
// runs; 0 means unbounded. exprun sets it from -tracecap.
var ObsTraceCap int

// ObsScope is one kernel's observability plane within an observed run,
// e.g. one E21 sweep cell.
type ObsScope struct {
	Name string
	Obs  *obs.Obs
}

// ObsRun is an observed experiment's output: the table plus one obs
// scope per kernel the experiment built.
type ObsRun struct {
	Table  *Table
	Scopes []ObsScope
}

// TraceScopes adapts the run's scopes for obs.WriteChromeTrace.
func (r *ObsRun) TraceScopes() []obs.Scope {
	out := make([]obs.Scope, len(r.Scopes))
	for i, sc := range r.Scopes {
		out[i] = obs.Scope{Name: sc.Name, Trace: sc.Obs.Tracer()}
	}
	return out
}

// WriteMetrics dumps every scope's metrics registry to w, each under a
// deterministic "# scope <name>" header, in scope order.
func (r *ObsRun) WriteMetrics(w io.Writer) error {
	for _, sc := range r.Scopes {
		if _, err := fmt.Fprintf(w, "# scope %s\n", sc.Name); err != nil {
			return err
		}
		if err := sc.Obs.Metrics().WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns a deterministic one-paragraph metrics digest for the
// run: per-scope record counts plus a few headline counters. Used by
// exprun's per-experiment summary output.
func (r *ObsRun) Summary() string {
	if len(r.Scopes) == 0 {
		return "(not instrumented)"
	}
	records, dropped := 0, int64(0)
	for _, sc := range r.Scopes {
		if t := sc.Obs.Tracer(); t != nil {
			records += len(t.Records())
			dropped += t.Dropped
		}
	}
	return fmt.Sprintf("%d scopes, %d trace records (%d dropped)",
		len(r.Scopes), records, dropped)
}

// ObsRunner produces one observed experiment run.
type ObsRunner func() *ObsRun

var obsRegistry = map[string]ObsRunner{}

func registerObs(id string, r ObsRunner) {
	if _, dup := obsRegistry[id]; dup {
		panic("experiments: duplicate observed id " + id)
	}
	obsRegistry[id] = r
}

// Observable reports whether an experiment has an observed runner.
func Observable(id string) bool {
	_, ok := obsRegistry[id]
	return ok
}

// ObservableIDs returns the experiments with observed runners, in
// canonical order.
func ObservableIDs() []string {
	out := make([]string, 0, len(obsRegistry))
	for id := range obsRegistry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return expNum(out[i]) < expNum(out[j]) })
	return out
}

// RunObserved executes one experiment with full instrumentation. For
// experiments without an observed runner it falls back to the plain
// runner and returns no scopes.
func RunObserved(id string) (*ObsRun, error) {
	if r, ok := obsRegistry[id]; ok {
		return r(), nil
	}
	t, err := Run(id)
	if err != nil {
		return nil, err
	}
	return &ObsRun{Table: t}, nil
}
