package experiments

import (
	"bytes"
	"testing"
)

// TestE24Deterministic: the full service-mesh overload sweep — fault
// schedules, balancing decisions, breaker transitions, per-session
// retry jitter, shed ordering and the conservation account — must be
// byte-identical run to run. Twelve kernels, rendered twice and
// compared.
func TestE24Deterministic(t *testing.T) {
	a, err := Run("E24")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E24")
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	a.Render(&ba)
	b.Render(&bb)
	if ba.String() != bb.String() {
		t.Errorf("E24 not byte-identical across runs:\n--- first\n%s\n--- second\n%s",
			ba.String(), bb.String())
	}
	if !a.Holds {
		t.Error("E24 expectation violated")
	}
}

// TestE24ObservedMatchesPlain: full instrumentation (kernel-trace
// bridge, network taps, SOA and mesh metrics) must not change a single
// routing decision, breaker transition or shed choice: the observed
// table is byte-identical to the plain one.
func TestE24ObservedMatchesPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("double sweep in -short mode")
	}
	plain, err := Run("E24")
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunObserved("E24")
	if err != nil {
		t.Fatal(err)
	}
	var bp, bo bytes.Buffer
	plain.Render(&bp)
	observed.Table.Render(&bo)
	if bp.String() != bo.String() {
		t.Errorf("observed E24 table differs from plain:\n--- plain\n%s\n--- observed\n%s",
			bp.String(), bo.String())
	}
	if len(observed.Scopes) != 12 {
		t.Errorf("observed E24 scopes = %d, want 12 (3 levels × 4 configs)", len(observed.Scopes))
	}
	for _, sc := range observed.Scopes {
		if sc.Obs == nil || sc.Obs.Tracer() == nil {
			t.Fatalf("scope %s not instrumented", sc.Name)
		}
	}
}
