package experiments

import (
	"fmt"

	"dynaplat/internal/fleet"
)

func init() {
	register("E23", runE23)
}

// E23 — §3.2 at fleet scale: staged OTA rollout across a heterogeneous
// vehicle fleet. Each cell runs a 250-vehicle fleet of independently
// seeded variants (ECU counts, bus technologies, app mixes drawn from
// the model generator) through a cloud-orchestrated update campaign
// under a seeded bad-image rate, in four rollout policies:
//
//   - bare:          blind staged update, no verification, no abort —
//                    whatever arrives is committed
//   - verify:        on-vehicle soak verification with local rollback,
//                    but the cloud keeps rolling the fleet
//   - canary2+abort: 2% canary cohort, ramped waves, abort-on-regression
//                    with halt-and-rollback of the breaching wave
//   - canary10+abort: the same with a 10% canary cohort
//
// The fleet seed depends only on the fault level, so every policy at a
// level faces the bit-identical fleet and bad-image schedule (the bad
// column must match between the policies that cover the whole fleet).
// The claim: a bad update that bare rollout ships to 100% of the fleet
// is caught by the canary cohort, bounding the blast radius to under
// 15% — while on-vehicle verification alone protects each vehicle but
// still burns the whole fleet's update sessions.

const e23Vehicles = 250

// e23Policy is one rollout policy.
type e23Policy struct {
	name   string
	verify bool
	canary float64 // 0 = default canary; meaningful only with abort
	abort  bool
}

func e23Policies() []e23Policy {
	return []e23Policy{
		{name: "bare"},
		{name: "verify", verify: true},
		{name: "canary2+abort", verify: true, canary: 0.02, abort: true},
		{name: "canary10+abort", verify: true, canary: 0.10, abort: true},
	}
}

// e23FaultLevels returns the seeded bad-image probabilities.
func e23FaultLevels() []float64 { return []float64{0, 0.15, 0.40} }

// e23Cell runs one fleet campaign. Workers is pinned to 1: experiments
// themselves fan out across the harness worker pool, and the cell result
// is byte-identical at any shard width anyway (TestE23ShardIndependence).
func e23Cell(li int, prob float64, pol e23Policy) *fleet.FleetReport {
	cfg := fleet.CampaignConfig{
		FleetSeed:        0xE23<<8 | uint64(li),
		Vehicles:         e23Vehicles,
		CanaryFraction:   pol.canary,
		Update:           fleet.UpdateSpec{Verify: pol.verify, FaultProb: prob},
		Abort:            pol.abort,
		RollbackInFlight: pol.abort,
		Workers:          1,
	}
	rep, err := fleet.RunCampaign(cfg)
	if err != nil {
		panic(fmt.Sprintf("E23: %s at fault %.2f: %v", pol.name, prob, err))
	}
	return rep
}

func runE23() *Table {
	t := &Table{
		ID: "E23", Title: "Fleet-scale staged OTA rollout",
		Source: "§3.2 (staged updates) scaled to a heterogeneous fleet with a cloud backend",
		Columns: []string{"fault", "policy", "bad", "shipped", "rolled-back",
			"skipped", "ship-rate", "post-avail", "waves",
			"span-p50/p95/p99(ms)", "halted"},
		Expectation: "a seeded bad update that bare rollout ships to 100% of the " +
			"fleet is halted by the canary cohort under abort-on-regression " +
			"(ship rate < 15%), every policy at a fault level faces the " +
			"bit-identical fleet, and a clean update ships everywhere",
	}
	t.Holds = true
	levels := e23FaultLevels()
	top := len(levels) - 1
	for li, prob := range levels {
		levelBad := -1
		for _, pol := range e23Policies() {
			rep := e23Cell(li, prob, pol)

			// Aggregate over the simulated (non-skipped) vehicles.
			bad := 0
			postSum, postN := 0.0, 0
			for _, v := range rep.Vehicles {
				if v.Outcome == fleet.OutcomeSkipped {
					continue
				}
				if v.BadImage {
					bad++
				}
				postSum += v.PostAvail
				postN++
			}
			postAvail := postSum / float64(postN)
			rolledBack := rep.RolledBack + rep.RemoteRollbacks
			halted := "-"
			if rep.Halted {
				halted = fmt.Sprintf("wave%d", rep.HaltedWave)
			}
			// Worst wave by p95: the rollout scheduler's budget figure.
			var worst fleet.WaveStats
			for _, ws := range rep.Waves {
				if ws.SpanP95 >= worst.SpanP95 {
					worst = ws
				}
			}
			spans := fmt.Sprintf("%.2f/%.2f/%.2f",
				float64(worst.SpanP50)/1e6, float64(worst.SpanP95)/1e6,
				float64(worst.SpanP99)/1e6)
			t.AddRow(fmt.Sprintf("%.2f", prob), pol.name, itoa(int64(bad)),
				itoa(int64(rep.Shipped)), itoa(int64(rolledBack)),
				itoa(int64(rep.Skipped)), fmt.Sprintf("%.3f", rep.ShipRate()),
				pct(postAvail), itoa(int64(len(rep.Waves))), spans, halted)

			// Identical fleet per level: the full-coverage policies must
			// see the identical bad-image schedule.
			if !rep.Halted && rep.Skipped == 0 {
				if levelBad == -1 {
					levelBad = bad
				} else if bad != levelBad {
					t.Holds = false
				}
			}
			// Clean image: every policy ships the whole fleet.
			if li == 0 && (rep.ShipRate() != 1.0 || rep.Halted) {
				t.Holds = false
			}
			if li == top {
				switch {
				case pol.name == "bare":
					// Ships everything — including the bad images, which
					// visibly degrade fleet availability.
					if rep.ShipRate() != 1.0 || rep.Halted || postAvail > 0.97 {
						t.Holds = false
					}
				case !pol.abort:
					// On-vehicle verification protects each vehicle
					// (exactly the bad images roll back, availability
					// stays intact) but the fleet-wide rollout proceeds.
					if rep.Halted || rolledBack != bad || postAvail < 0.99 {
						t.Holds = false
					}
				default:
					// Canary + abort bounds the blast radius.
					if !rep.Halted || rep.ShipRate() >= 0.15 {
						t.Holds = false
					}
				}
			}
		}
	}
	return t
}
