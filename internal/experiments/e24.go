package experiments

import (
	"fmt"

	"dynaplat/internal/faults"
	"dynaplat/internal/network"
	"dynaplat/internal/obs"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func init() {
	register("E24", runE24)
	registerObs("E24", runE24Observed)
}

// E24 — §1.1/§4.2: service-mesh overload sweep. Three replicated
// services (3 provider instances each, spread over 6 ECUs in two zones)
// serve a mixed-criticality call load: a fixed ASIL-D stream (the DA
// traffic whose availability the platform must protect), a fixed ASIL-B
// body stream, and a QM infotainment storm whose intensity is the sweep
// axis — thousands of client sessions per cell at the top level. An
// E21-style seeded ECU fault campaign (crash/hang/reboot, identical
// schedule for every configuration at a level) runs underneath, so the
// mesh faces overload and partial failure at once. Four routing stacks:
//
//   - bare:       one provider per service, unbounded FIFO, no breaker —
//                 the point-to-point baseline the repo had before the
//                 mesh (a storm starves ASIL-D behind QM backlog)
//   - rr+breaker: 3 replicas, round-robin, circuit breakers with no
//                 fault-campaign eviction — breaker timeouts alone must
//                 detect dead instances and route around them
//   - lp+evict:   3 replicas, least-pending, fast breakers, campaign
//                 eviction hooks (instances leave routing at the exact
//                 injection instant)
//   - zone+evict: 3 replicas, zone-local balancing (cross-zone only as
//                 fallback), default breakers, eviction hooks
//
// Measured per cell: DA availability (served within budget / offered),
// DA p99 whole-call latency, NDA availability, and the conservation
// account offered == served + shed + dead-lettered with zero ASIL-D
// sheds — the criticality-ordering invariant. The whole table renders
// byte-identically per seed (TestE24Deterministic), under RunAllParallel
// (TestSerialParallelByteIdentical), and under full instrumentation
// (TestE24ObservedMatchesPlain).

const (
	e24Horizon = 2 * sim.Second
	// e24Tail bounds settling: every call carries a <=200 ms budget, so
	// all conservation counters are final this long after the horizon.
	e24Tail = 400 * sim.Millisecond
	// e24Proc is the per-call provider processing time; with mesh
	// concurrency 1 an instance serves ~430 calls/s including the wire.
	e24Proc = 2 * sim.Millisecond
)

// e24Level is one offered-load step: qmRate is the per-service QM storm
// intensity in calls/s (split across the two client ECUs), on top of a
// fixed 100 calls/s ASIL-D + 50 calls/s ASIL-B floor per service.
type e24Level struct {
	name   string
	qmRate int
}

func e24Levels() []e24Level {
	return []e24Level{
		{name: "1-base", qmRate: 150},
		{name: "2-surge", qmRate: 600},
		{name: "3-storm", qmRate: 1200},
	}
}

// e24Config is one routing stack.
type e24Config struct {
	name     string
	replicas int
	policy   soa.BalancePolicy
	breaker  *soa.BreakerConfig
	depth    int  // instance queue bound; 0 = unbounded (no shedding)
	evict    bool // campaign eviction hooks (Mesh.ECULifecycle)
}

func e24Configs() []e24Config {
	def := soa.DefaultBreakerConfig()
	fast := soa.BreakerConfig{Window: 6, MinSamples: 3, FailureRate: 0.5,
		OpenFor: 20 * sim.Millisecond}
	return []e24Config{
		{name: "bare", replicas: 1, policy: soa.PolicyRoundRobin},
		{name: "rr+breaker", replicas: 3, policy: soa.PolicyRoundRobin,
			breaker: &def, depth: 8},
		{name: "lp+evict", replicas: 3, policy: soa.PolicyLeastPending,
			breaker: &fast, depth: 8, evict: true},
		{name: "zone+evict", replicas: 3, policy: soa.PolicyZoneLocal,
			breaker: &def, depth: 8, evict: true},
	}
}

// e24Services places the three replicated services over the six
// provider ECUs; every service spans both zones so zone-local balancing
// has a local choice and a cross-zone fallback.
var e24Services = []struct {
	name  string
	homes [3]string
}{
	{"adas.fusion", [3]string{"pf1", "pr1", "pf2"}},
	{"body.climate", [3]string{"pf2", "pr2", "pr3"}},
	{"infot.media", [3]string{"pf3", "pr3", "pf1"}},
}

// e24Target absorbs campaign control calls for a provider ECU. The
// observable effect of a silencing fault comes from the campaign's
// network partition (the station leaves the wire, so in-flight and new
// requests time out) plus, in evict configs, the mesh lifecycle hooks.
type e24Target struct{ hung bool }

func (t *e24Target) Crash() []string     { return nil }
func (t *e24Target) Restore([]string)    {}
func (t *e24Target) SetHung(h bool)      { t.hung = h }
func (t *e24Target) SetSlowdown(float64) {}

// e24Result aggregates one cell.
type e24Result struct {
	faults             int
	daOff, daServed    int64
	ndaOff, ndaServed  int64
	daLat              sim.Sample
	offered, served    int64
	shed, shedDA, dead int64
	trips              int64
	conserved          bool
}

func (r *e24Result) daAvail() float64 {
	if r.daOff == 0 {
		return 1
	}
	return float64(r.daServed) / float64(r.daOff)
}

func (r *e24Result) ndaAvail() float64 {
	if r.ndaOff == 0 {
		return 1
	}
	return float64(r.ndaServed) / float64(r.ndaOff)
}

// e24Cell runs one cell of the sweep. observe wires a full obs plane
// (kernel-trace bridge, network taps, SOA + mesh metrics); observation
// schedules no events and draws no randomness, so the observed result
// is bit-identical to the plain one.
func e24Cell(li int, lv e24Level, cfg e24Config, observe bool) (e24Result, *obs.Obs) {
	k := sim.NewKernel(0xE24<<4 | uint64(li))
	var o *obs.Obs
	if observe {
		o = obs.New(k)
		o.T.Cap = ObsTraceCap
		o.BridgeKernelTrace(k)
	}
	medium := tsn.New(k, tsn.DefaultConfig("backbone"))
	nf := faults.WrapNetwork(k, medium, faults.NetConfig{})
	if o != nil {
		tap := obs.NewNetTap(o)
		medium.SetTap(tap)
		nf.SetTap(tap)
	}
	mw := soa.New(k, nil)
	mw.SetObs(o)
	mw.SetJitterSeed(0xE24<<8 | uint64(li))
	mw.AddNetwork(nf, 1400)

	ms := soa.NewMesh(mw, soa.MeshConfig{
		Policy:      cfg.policy,
		Breaker:     cfg.breaker,
		QueueDepth:  cfg.depth,
		Concurrency: 1,
	})
	providerECUs := []string{"pf1", "pf2", "pf3", "pr1", "pr2", "pr3"}
	for _, e := range []string{"pf1", "pf2", "pf3", "huF"} {
		ms.SetZone(e, "front")
	}
	for _, e := range []string{"pr1", "pr2", "pr3", "huR"} {
		ms.SetZone(e, "rear")
	}

	// Provider instances: cfg.replicas of each service, identical 2 ms
	// handlers. The bare config keeps only the first replica — the
	// point-to-point deployment.
	for _, svc := range e24Services {
		for i := 0; i < cfg.replicas; i++ {
			ep := mw.Endpoint(fmt.Sprintf("%s-r%d", svc.name, i), svc.homes[i])
			ms.Offer(ep, svc.name, soa.OfferOpts{
				Network: "backbone", Class: network.ClassPriority,
				Handler: func(any) (int, any, sim.Duration) { return 64, "ok", e24Proc },
			})
		}
	}

	// The seeded fault campaign: schedule derived from (level) alone, so
	// every configuration at a level faces the identical fault sequence.
	var res e24Result
	camp := faults.NewCampaign(k, faults.Spec{
		Seed:        0xE24<<8 | uint64(li),
		Horizon:     e24Horizon,
		MTBF:        1200 * sim.Millisecond,
		RepairMean:  350 * sim.Millisecond,
		RebootDelay: 250 * sim.Millisecond,
		Weights:     faults.Weights{Crash: 0.6, Hang: 0.25, Reboot: 0.15},
	})
	for _, e := range providerECUs {
		camp.AddTarget(e, &e24Target{})
	}
	camp.AddNetwork(nf)
	camp.OnInject = func(faults.Injection) { res.faults++ }
	if cfg.evict {
		camp.HookECULifecycle(ms.ECULifecycle())
	}
	camp.Start()

	// Client load: per service, two ASIL-D streams (50/s each), two
	// ASIL-B streams (25/s each) and two QM storm streams (qmRate/2
	// each), one of each per client ECU. Every stream is a self-armed
	// ticker with a distinct phase, so arrivals interleave
	// deterministically without consuming kernel RNG.
	//
	// The budgets carry the safety semantics: an ASIL-D call is only
	// "available" if it completes within a tight 100 ms deadline, while
	// infotainment clients wait patiently (200 ms). That patience is
	// exactly what makes the bare FIFO dangerous — queued QM calls do
	// not expire out of the deterministic traffic's way.
	daPol := soa.RetryPolicy{MaxAttempts: 3, Backoff: 4 * sim.Millisecond,
		MaxBackoff: 16 * sim.Millisecond, Multiplier: 2, JitterFrac: 0.2,
		Budget: 100 * sim.Millisecond}
	bePol := soa.RetryPolicy{MaxAttempts: 2, Backoff: 4 * sim.Millisecond,
		MaxBackoff: 8 * sim.Millisecond, Multiplier: 2, JitterFrac: 0.2,
		Budget: 200 * sim.Millisecond}
	clients := []*soa.Endpoint{mw.Endpoint("hu-front", "huF"), mw.Endpoint("hu-rear", "huR")}
	streamIdx := 0
	for _, svc := range e24Services {
		svcName := svc.name
		for _, cl := range clients {
			cl := cl
			type streamSpec struct {
				crit soa.Criticality
				rate int
				per  sim.Duration
				pol  soa.RetryPolicy
			}
			for _, sp := range []streamSpec{
				{crit: soa.CritASILD, rate: 50, per: 25 * sim.Millisecond, pol: daPol},
				{crit: soa.CritASILB, rate: 25, per: 25 * sim.Millisecond, pol: bePol},
				{crit: soa.CritQM, rate: lv.qmRate / 2, per: 25 * sim.Millisecond, pol: bePol},
			} {
				sp := sp
				streamIdx++
				interval := sim.Second / sim.Duration(sp.rate)
				phase := sim.Duration(streamIdx) * 73 * sim.Microsecond
				da := sp.crit == soa.CritASILD
				var tick func()
				tick = func() {
					if k.Now() >= sim.Time(e24Horizon) {
						return
					}
					if da {
						res.daOff++
					} else {
						res.ndaOff++
					}
					err := ms.Call(cl, svcName, soa.MeshCallOpts{
						Criticality: sp.crit, ReqBytes: 48,
						PerTry: sp.per, Retry: sp.pol,
					}, func(ev soa.Event) {
						if da {
							res.daServed++
							res.daLat.AddDuration(ev.Latency())
						} else {
							res.ndaServed++
						}
					}, nil)
					if err != nil {
						panic(err)
					}
					k.After(interval, tick)
				}
				k.At(sim.Time(phase), tick)
			}
		}
	}

	k.RunUntil(sim.Time(e24Horizon + e24Tail))
	o.SnapshotKernel(k)

	res.offered = ms.Offered
	res.served = ms.Served
	res.shed = ms.Shed
	res.shedDA = ms.ShedByCrit[soa.CritASILD]
	res.dead = ms.DeadLettered
	res.trips = ms.BreakerTrips
	res.conserved = ms.Conserved()
	return res, o
}

func runE24() *Table {
	t, _ := runE24With(false)
	return t
}

// runE24Observed runs the full sweep with per-cell instrumentation: one
// obs scope per cell, named "E24/<level>/<config>".
func runE24Observed() *ObsRun {
	t, scopes := runE24With(true)
	return &ObsRun{Table: t, Scopes: scopes}
}

func runE24With(observe bool) (*Table, []ObsScope) {
	t := &Table{
		ID: "E24", Title: "Service-mesh overload and failure sweep",
		Source: "§1.1, §4.2 (runtime uncertainty absorbed by the SOA layer)",
		Columns: []string{"load", "config", "faults", "DA-avail", "DA-p99",
			"NDA-avail", "offered", "shed", "shedDA", "dead", "trips", "conserved"},
		Expectation: "replication + breakers + criticality-aware shedding hold " +
			"ASIL-D availability ≥99% at the top overload level while bare " +
			"point-to-point degrades visibly; no ASIL-D call is ever shed and " +
			"offered == served + shed + dead-lettered in every cell",
	}
	levels := e24Levels()
	configs := e24Configs()
	t.Holds = true
	top := len(levels) - 1
	var scopes []ObsScope
	for li, lv := range levels {
		levelFaults := -1
		for _, cfg := range configs {
			r, o := e24Cell(li, lv, cfg, observe)
			if o != nil {
				scopes = append(scopes, ObsScope{Name: "E24/" + lv.name + "/" + cfg.name, Obs: o})
			}
			t.AddRow(lv.name, cfg.name, itoa(int64(r.faults)), pct(r.daAvail()),
				e22ms(r.daLat.PercentileDuration(99), r.daLat.Count() > 0),
				pct(r.ndaAvail()), itoa(r.offered), itoa(r.shed), itoa(r.shedDA),
				itoa(r.dead), itoa(r.trips), fmt.Sprintf("%v", r.conserved))
			// Identical campaign per level: the fault schedule must not
			// depend on the routing configuration.
			if levelFaults == -1 {
				levelFaults = r.faults
			} else if r.faults != levelFaults {
				t.Holds = false
			}
			// The two load-bearing invariants, in every cell: nothing
			// vanishes, and ASIL-D is never the shedding victim.
			if !r.conserved || r.shedDA != 0 {
				t.Holds = false
			}
			// Mesh configurations protect DA at every load level.
			if cfg.name != "bare" && r.daAvail() < 0.99 {
				t.Holds = false
			}
			if li == top {
				switch cfg.name {
				case "bare":
					// No admission control: the QM storm starves ASIL-D.
					if r.daAvail() > 0.97 {
						t.Holds = false
					}
				case "rr+breaker":
					// Breakers are the only failure detector here: with
					// faults present they must actually engage.
					if r.faults > 0 && r.trips == 0 {
						t.Holds = false
					}
				}
				// Bounded queues under a storm must shed (QM), and only QM-
				// class traffic pays: graceful, not silent, degradation.
				if cfg.depth > 0 && r.shed == 0 {
					t.Holds = false
				}
			}
		}
	}
	return t, scopes
}
