package experiments

import (
	"fmt"

	"dynaplat/internal/can"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
	"dynaplat/internal/workload"
)

func init() {
	register("E1", runE1)
	register("E2", runE2)
	register("E4", runE4)
}

// E1 — Figure 2 / Section 3.1 "CPU": deterministic applications on the
// dynamic platform keep their deadlines regardless of NDA load; on a
// conventional shared scheduler they do not.
func runE1() *Table {
	t := &Table{
		ID: "E1", Title: "Mixed-criticality CPU isolation",
		Source:  "Fig. 2, §3.1",
		Columns: []string{"nda-load", "mode", "da-miss-rate", "da-p100-resp", "nda-jobs-done"},
		Expectation: "isolated DA miss rate stays 0 at every NDA load; " +
			"shared misses grow with load",
	}
	type outcome struct {
		miss float64
		jobs int64
	}
	run := func(mode platform.Mode, loadFrac float64, seed uint64) (outcome, sim.Duration) {
		k := sim.NewKernel(seed)
		node := platform.NewNode(k, model.ECU{Name: "cpm", CPUMHz: 100, MemoryKB: 8192,
			HasMMU: true, OS: model.OSRTOS}, mode, 250*sim.Microsecond)
		rng := sim.NewRNG(seed + 100)
		var das []*platform.AppInstance
		for _, task := range workload.ControlTasks(rng, 5, 0.5) {
			app := model.App{Name: task.Name, Kind: model.Deterministic, ASIL: model.ASILD,
				Period: task.Period, WCET: task.WCET, Deadline: task.Period, MemoryKB: 64}
			inst, err := node.Install(app, platform.Behavior{})
			if err != nil {
				panic(err)
			}
			inst.Start()
			das = append(das, inst)
		}
		nda, _ := node.Install(model.App{Name: "info", Kind: model.NonDeterministic,
			MemoryKB: 1024}, platform.Behavior{})
		nda.Start()
		if loadFrac > 0 {
			// Mean job 5ms; inter-arrival tuned to the requested load.
			mean := sim.Duration(float64(5*sim.Millisecond) / loadFrac)
			src := &workload.BurstSource{}
			src.Start(k, rng.Split(), mean, 2*sim.Millisecond, 8*sim.Millisecond,
				func(d sim.Duration) { nda.Submit(d, nil) })
		}
		k.RunUntil(sim.Time(5 * sim.Second))
		var acts, misses int64
		var worst sim.Duration
		for _, d := range das {
			acts += d.Activations
			misses += d.Misses
			if r := d.Response.PercentileDuration(100); r > worst {
				worst = r
			}
		}
		return outcome{miss: float64(misses) / float64(acts), jobs: nda.JobsDone}, worst
	}
	t.Holds = true
	sharedEverMissed := false
	for _, load := range []float64{0, 0.25, 0.5, 1.0, 2.0} {
		for _, mode := range []platform.Mode{platform.ModeIsolated, platform.ModeShared} {
			o, worst := run(mode, load, 42)
			t.AddRow(fmt.Sprintf("%.0f%%", load*100), mode.String(),
				pct(o.miss), worst.String(), itoa(o.jobs))
			if mode == platform.ModeIsolated && o.miss > 0 {
				t.Holds = false
			}
			if mode == platform.ModeShared && o.miss > 0 {
				sharedEverMissed = true
			}
		}
	}
	if !sharedEverMissed {
		t.Holds = false
	}
	return t
}

// E2 — Figure 3 / Section 2.1: the three communication paradigms behave
// per their contracts on the SOA middleware.
func runE2() *Table {
	t := &Table{
		ID: "E2", Title: "Communication paradigms (Event / Message / Stream)",
		Source:  "Fig. 3, §2.1",
		Columns: []string{"paradigm", "network", "mean-latency", "p100-latency", "jitter", "notes"},
		Expectation: "event latency ≪ RPC round trip; stream inter-frame " +
			"jitter near zero on TSN; CAN segments large payloads",
	}
	k := sim.NewKernel(7)
	net := tsn.New(k, tsn.DefaultConfig("bb"))
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000})
	mw := soa.New(k, nil)
	mw.AddNetwork(net, 1400)
	mw.AddNetwork(bus, can.MaxPayload)

	prod := mw.Endpoint("ctl", "ecu1")
	srv := mw.Endpoint("srv", "ecu1")
	cam := mw.Endpoint("cam", "ecu1")
	cons := mw.Endpoint("dash", "ecu2")

	prod.Offer("Status", soa.OfferOpts{Network: "bb", Class: network.ClassPriority})
	prod.Offer("StatusCAN", soa.OfferOpts{Network: "body", Class: network.ClassPriority})
	srv.Offer("Cmd", soa.OfferOpts{Network: "bb", Class: network.ClassPriority,
		Handler: func(any) (int, any, sim.Duration) { return 16, nil, 200 * sim.Microsecond }})
	cam.Offer("Video", soa.OfferOpts{Network: "bb", Class: network.ClassBulk})

	var evLat, rpcLat sim.Sample
	cons.Subscribe("Status", func(ev soa.Event) { evLat.AddDuration(ev.Latency()) })
	cons.Subscribe("StatusCAN", func(soa.Event) {})
	rx := &soa.StreamReceiver{KeyInterval: 30}
	cons.Subscribe("Video", rx.Consume)

	st := cam.OpenStream("Video", 30)
	k.Every(0, 10*sim.Millisecond, func() {
		prod.Publish("Status", 8, nil)
		prod.Publish("StatusCAN", 8, nil)
		cons.Call("Cmd", 32, nil, func(ev soa.Event) { rpcLat.AddDuration(ev.Latency()) })
	})
	k.Every(0, 33*sim.Millisecond, func() { st.SendFrame(1200, nil) })
	k.RunUntil(sim.Time(5 * sim.Second))

	canLat := mw.ServiceLatency("StatusCAN")
	t.AddRow("event", "tsn", sim.Duration(evLat.Mean()).String(),
		evLat.PercentileDuration(100).String(), evLat.Jitter().String(), "pub/sub")
	t.AddRow("event", "can", sim.Duration(canLat.Mean()).String(),
		canLat.PercentileDuration(100).String(), canLat.Jitter().String(),
		"25B wire → 4 frames")
	t.AddRow("message", "tsn", sim.Duration(rpcLat.Mean()).String(),
		rpcLat.PercentileDuration(100).String(), rpcLat.Jitter().String(), "RPC round trip")
	t.AddRow("stream", "tsn", sim.Duration(rx.InterFrame.Mean()).String(),
		rx.InterFrame.PercentileDuration(100).String(), rx.InterFrame.Jitter().String(),
		fmt.Sprintf("frames=%d stalls=%d", rx.Frames, rx.Stalled))

	t.Holds = evLat.Mean() < rpcLat.Mean() && // one-way beats round trip
		rx.Stalled == 0 &&
		canLat.Mean() > evLat.Mean() // 500kbps CAN slower than 100Mbps TSN
	return t
}

// E4 — Section 3.1 "Hardware Access & Communication": an urgent DA
// transmission must not be delayed by an NDA bulk stream.
func runE4() *Table {
	t := &Table{
		ID: "E4", Title: "Urgent DA transmission under NDA stream load",
		Source:  "§3.1 HW access & communication",
		Columns: []string{"network", "bulk-load", "urgent-p100", "urgent-jitter"},
		Expectation: "CAN bounds urgent delay to one max frame; gated TSN is " +
			"fully load-independent (at the cost of waiting for its window); " +
			"ungated TSN degrades under load by up to one MTU frame",
	}

	urgentOverCAN := func(flood int) (sim.Duration, sim.Duration) {
		k := sim.NewKernel(3)
		bus := can.New(k, can.Config{Name: "b", BitsPerSecond: 500_000, WorstCaseStuffing: true})
		var lat sim.Sample
		bus.Attach("da", func(network.Delivery) {})
		bus.Attach("nda", func(network.Delivery) {})
		bus.Attach("sink", func(d network.Delivery) {
			if d.Msg.ID == 0x10 {
				lat.AddDuration(d.Latency())
			}
		})
		if flood > 0 {
			k.Every(0, 2*sim.Millisecond, func() {
				for i := 0; i < flood; i++ {
					bus.Send(network.Message{ID: 0x700 + uint32(i), Src: "nda",
						Dst: "sink", Bytes: 8})
				}
			})
		}
		k.Every(sim.Time(500*sim.Microsecond), 10*sim.Millisecond, func() {
			bus.Send(network.Message{ID: 0x10, Src: "da", Dst: "sink", Bytes: 2})
		})
		k.RunUntil(sim.Time(2 * sim.Second))
		return lat.PercentileDuration(100), lat.Jitter()
	}

	urgentOverTSN := func(gated bool, floodFrames int) (sim.Duration, sim.Duration) {
		k := sim.NewKernel(3)
		cfg := tsn.DefaultConfig("bb")
		if gated {
			cfg.GCL = tsn.ControlGCL(100*sim.Microsecond, 900*sim.Microsecond)
		}
		net := tsn.New(k, cfg)
		var lat sim.Sample
		net.Attach("da", func(network.Delivery) {})
		net.Attach("nda", func(network.Delivery) {})
		net.Attach("sink", func(d network.Delivery) {
			if d.Msg.Class == network.ClassControl {
				lat.AddDuration(d.Latency())
			}
		})
		if floodFrames > 0 {
			k.Every(0, sim.Millisecond, func() {
				for i := 0; i < floodFrames; i++ {
					net.Send(network.Message{Class: network.ClassBulk, Src: "nda",
						Dst: "sink", Bytes: 1500})
				}
			})
		}
		k.Every(sim.Time(250*sim.Microsecond), 10*sim.Millisecond, func() {
			net.Send(network.Message{Class: network.ClassControl, Src: "da",
				Dst: "sink", Bytes: 16})
		})
		k.RunUntil(sim.Time(2 * sim.Second))
		return lat.PercentileDuration(100), lat.Jitter()
	}

	canQuiet, _ := urgentOverCAN(0)
	canLoaded, canJit := urgentOverCAN(4)
	t.AddRow("can", "none", canQuiet.String(), "0s")
	t.AddRow("can", "80%", canLoaded.String(), canJit.String())

	plainQuiet, _ := urgentOverTSN(false, 0)
	plainLoaded, plainJit := urgentOverTSN(false, 8)
	t.AddRow("tsn-priority", "none", plainQuiet.String(), "0s")
	t.AddRow("tsn-priority", "~100%", plainLoaded.String(), plainJit.String())

	gatedQuiet, _ := urgentOverTSN(true, 0)
	gatedLoaded, gatedJit := urgentOverTSN(true, 8)
	t.AddRow("tsn-gated", "none", gatedQuiet.String(), "0s")
	t.AddRow("tsn-gated", "~100%", gatedLoaded.String(), gatedJit.String())

	// CAN blocking bounded by one max frame (135 bits at 500k = 270us)
	// above quiet; gated TSN exactly insensitive to load; ungated TSN
	// degrades (priority alone cannot remove the in-flight MTU frame).
	maxFrame := sim.Duration(270 * sim.Microsecond)
	mtuFrame := network.TxTime(1542, 100_000_000)
	t.Holds = canLoaded <= canQuiet+maxFrame &&
		gatedLoaded == gatedQuiet &&
		plainLoaded > plainQuiet &&
		plainLoaded <= plainQuiet+mtuFrame
	return t
}
