package experiments

import (
	"bytes"
	"testing"
)

// TestE22Deterministic: the full self-healing sweep — fault schedules,
// silence detections, recovery plans, sheds, endpoint migrations,
// re-balances and redundancy failovers — must be byte-identical run to
// run. Sixteen kernels and eight orchestrators, rendered twice and
// compared.
func TestE22Deterministic(t *testing.T) {
	a, err := Run("E22")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E22")
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	a.Render(&ba)
	b.Render(&bb)
	if ba.String() != bb.String() {
		t.Errorf("E22 not byte-identical across runs:\n--- first\n%s\n--- second\n%s",
			ba.String(), bb.String())
	}
	if !a.Holds {
		t.Error("E22 expectation violated")
	}
}

// TestE22ObservedMatchesPlain: full instrumentation (kernel-trace
// bridge, network taps, SOA metrics, platform spans, orchestrator
// counters and detect→steady histograms) must not change a single
// recovery decision or timestamp: the observed table is byte-identical
// to the plain one.
func TestE22ObservedMatchesPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("double sweep in -short mode")
	}
	plain, err := Run("E22")
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunObserved("E22")
	if err != nil {
		t.Fatal(err)
	}
	var bp, bo bytes.Buffer
	plain.Render(&bp)
	observed.Table.Render(&bo)
	if bp.String() != bo.String() {
		t.Errorf("observed E22 table differs from plain:\n--- plain\n%s\n--- observed\n%s",
			bp.String(), bo.String())
	}
	if len(observed.Scopes) != 16 {
		t.Errorf("observed E22 scopes = %d, want 16 (4 levels × 4 configs)", len(observed.Scopes))
	}
	for _, sc := range observed.Scopes {
		if sc.Obs == nil || sc.Obs.Tracer() == nil {
			t.Fatalf("scope %s not instrumented", sc.Name)
		}
	}
}
