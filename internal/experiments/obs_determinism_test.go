package experiments

import (
	"bytes"
	"testing"

	"dynaplat/internal/obs"
)

// Observation must never change an experiment's result: the obs hooks
// schedule no kernel events and draw no randomness, so the observed E21
// table renders byte-identical to the plain one.
func TestE21ObservedMatchesPlain(t *testing.T) {
	old := ObsTraceCap
	ObsTraceCap = 1000 // keep memory modest; caps don't affect results
	defer func() { ObsTraceCap = old }()

	plain, err := Run("E21")
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunObserved("E21")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	plain.Render(&a)
	observed.Table.Render(&b)
	if a.String() != b.String() {
		t.Errorf("observed E21 table differs from plain:\n--- plain\n%s\n--- observed\n%s",
			a.String(), b.String())
	}
	if len(observed.Scopes) != 16 {
		t.Errorf("observed E21 scopes = %d, want 16 (4 levels × 4 configs)", len(observed.Scopes))
	}
	for _, sc := range observed.Scopes {
		if len(sc.Obs.Tracer().Records()) == 0 {
			t.Errorf("scope %s recorded no trace events", sc.Name)
		}
	}
}

// TestObservedArtifactsByteIdentical: the Chrome trace and the metrics
// dump of an observed run are byte-identical across runs for the same
// seed — the determinism contract of DESIGN.md §7. verify.sh soaks this
// test with -count=2 so the guarantee is exercised across fresh
// processes as well.
func TestObservedArtifactsByteIdentical(t *testing.T) {
	old := ObsTraceCap
	ObsTraceCap = 20000
	defer func() { ObsTraceCap = old }()

	artifacts := func() (trace, metrics string) {
		run, err := RunObserved("E21")
		if err != nil {
			t.Fatal(err)
		}
		var tb, mb bytes.Buffer
		if err := obs.WriteChromeTrace(&tb, run.TraceScopes()); err != nil {
			t.Fatal(err)
		}
		if err := run.WriteMetrics(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.String(), mb.String()
	}
	t1, m1 := artifacts()
	t2, m2 := artifacts()
	if t1 != t2 {
		t.Error("Chrome trace not byte-identical across observed runs")
	}
	if m1 != m2 {
		t.Error("metrics dump not byte-identical across observed runs")
	}
	if len(t1) == 0 || len(m1) == 0 {
		t.Error("observed artifacts empty")
	}
}

// RunObserved falls back to the plain runner for experiments without an
// observed registration.
func TestRunObservedFallback(t *testing.T) {
	run, err := RunObserved("E1")
	if err != nil {
		t.Fatal(err)
	}
	if run.Table == nil || len(run.Scopes) != 0 {
		t.Errorf("fallback run: table=%v scopes=%d", run.Table != nil, len(run.Scopes))
	}
	if run.Summary() != "(not instrumented)" {
		t.Errorf("fallback summary = %q", run.Summary())
	}
	if Observable("E1") {
		t.Error("E1 reported observable")
	}
	if !Observable("E21") {
		t.Error("E21 not reported observable")
	}
}
