package experiments

import (
	"bytes"
	"encoding/binary"

	"dynaplat/internal/faults"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/obs"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/redundancy"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func init() {
	register("E21", runE21)
	registerObs("E21", runE21Observed)
}

// E21 — §3.3/§3.4: fault-campaign availability sweep. A seeded fault
// campaign (ECU crash/hang/reboot + frame loss/corruption + partition +
// babbling idiot) runs against a 500 Hz ASIL-D function replicated across
// three ECUs, under four resilience configurations:
//
//   - none:        single instance, plain subscribe, plain RPC timeout
//   - redundancy:  master/slave replicas with heartbeat failover
//   - retry:       reliable subscription (gap re-request) + RPC retry
//   - both:        redundancy and the SOA resilience layer together
//
// Availability is the fraction of function periods for which a valid
// (E2E-checked) sample reached the consumer — fresh or back-filled by a
// gap re-request. The same campaign seed drives every configuration at a
// given fault level, so the columns are directly comparable; the whole
// table is byte-identical per seed (TestFaultCampaignDeterministic).
//
// Corruption accounting: every corrupted frame carries either an E2E
// envelope (caught as wrong-crc) or a known self-checking pattern (the
// test oracle counts it as *silent* — undetectable by the receiver
// without protection). caught + silent must equal the engine's corrupted
// count exactly: no corruption goes unaccounted.

const (
	e21Period  = 2 * sim.Millisecond
	e21Horizon = 5 * sim.Second
	e21Periods = int(int64(e21Horizon) / int64(e21Period))
)

// e21Level is one fault-intensity step of the sweep.
type e21Level struct {
	name          string
	loss, corrupt float64
	mtbf          sim.Duration // 0 = no ECU faults
	babble        bool
}

// e21Config is one resilience configuration.
type e21Config struct {
	name      string
	redundant bool // master/slave replication + failover
	resilient bool // reliable subscription + RPC retry
}

// e21Result aggregates one cell of the sweep.
type e21Result struct {
	avail, freshAvail float64
	failovers         int
	rpcOK             int64
	retryRecovered    int64
	caught, silent    int64
	corrupted         int64
}

// e21Cell runs one cell of the sweep. When observe is true the cell is
// fully instrumented (kernel-trace bridge, network taps on both the
// fault layer and the medium, SOA metrics/spans, platform completion
// spans) and the populated obs plane is returned alongside the result;
// observation never schedules kernel events or draws randomness, so the
// observed result is bit-identical to the unobserved one (asserted by
// TestE21ObservedMatchesPlain).
func e21Cell(li int, lv e21Level, cfg e21Config, observe bool) (e21Result, *obs.Obs) {
	k := sim.NewKernel(0xE21<<4 | uint64(li))
	var o *obs.Obs
	if observe {
		o = obs.New(k)
		o.T.Cap = ObsTraceCap
		o.BridgeKernelTrace(k)
	}
	medium := tsn.New(k, tsn.DefaultConfig("backbone"))
	nf := faults.WrapNetwork(k, medium,
		faults.NetConfig{LossRate: lv.loss, CorruptRate: lv.corrupt})
	if o != nil {
		tap := obs.NewNetTap(o)
		medium.SetTap(tap)
		nf.SetTap(tap)
	}
	mw := soa.New(k, nil)
	mw.SetObs(o)
	mw.AddNetwork(nf, 1400)
	p := platform.New(k, mw)
	ecus := []string{"cpmA", "cpmB", "cpmC"}
	for _, e := range ecus {
		if _, err := p.AddNode(model.ECU{Name: e, CPUMHz: 100, MemoryKB: 1024,
			HasMMU: true, OS: model.OSRTOS}, platform.ModeIsolated, 250*sim.Microsecond); err != nil {
			panic(err)
		}
	}
	platform.ObservePlatform(o, p)

	// The replicated deterministic function: publishes one E2E-protected
	// sample per period on the backbone.
	pub := mw.Endpoint("da", "cpmA")
	pub.Offer("da.state", soa.OfferOpts{Network: "backbone", Class: network.ClassControl})
	if err := pub.EnableHistory("da.state", 16); err != nil {
		panic(err)
	}
	tx := &soa.E2ESender{DataID: 0x21}
	publish := func() {
		var idx [8]byte
		binary.BigEndian.PutUint64(idx[:], uint64(int64(k.Now())/int64(e21Period)))
		pub.PublishSeq("da.state", 24, tx.Protect(idx[:]))
	}
	spec := model.App{Name: "da", Kind: model.Deterministic, ASIL: model.ASILD,
		Period: e21Period, WCET: 500 * sim.Microsecond, Deadline: e21Period, MemoryKB: 64}

	var group *redundancy.Group
	if cfg.redundant {
		rm := redundancy.NewManager(p)
		var g *redundancy.Group
		behavior := platform.Behavior{OnActivate: func(int64) {
			// The publishing endpoint follows the current master's ECU.
			if _, node := p.FindApp(g.Master().Spec.Name); node != nil &&
				node.ECU().Name != pub.ECU() {
				pub.Migrate(node.ECU().Name)
			}
			publish()
		}}
		g, err := rm.Replicate(spec, ecus, behavior, redundancy.Config{
			HeartbeatPeriod: e21Period, MissThreshold: 3,
			PromotionDelay: sim.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		if err := g.Start(); err != nil {
			panic(err)
		}
		group = g
	} else {
		inst, err := p.Node("cpmA").Install(spec,
			platform.Behavior{OnActivate: func(int64) { publish() }})
		if err != nil {
			panic(err)
		}
		if err := inst.Start(); err != nil {
			panic(err)
		}
	}

	// Consumer on the (never-faulted) sink ECU: marks each period for
	// which a valid sample arrived. Fresh samples go through a stateful
	// E2E receiver; back-filled samples arrive out of counter order by
	// design, so they get a stateless envelope check.
	cons := mw.Endpoint("dash", "sink")
	rxFresh := &soa.E2EReceiver{DataID: 0x21}
	seen := make([]bool, e21Periods)
	freshSeen := make([]bool, e21Periods)
	mark := func(ev soa.Event) {
		buf, ok := ev.Payload.([]byte)
		if !ok {
			return
		}
		var st soa.E2EStatus
		var body []byte
		if ev.Recovered {
			st, body = (&soa.E2EReceiver{DataID: 0x21}).Check(buf)
		} else {
			st, body = rxFresh.Check(buf)
		}
		if st == soa.E2EWrongCRC || st == soa.E2EWrongID || len(body) < 8 {
			return
		}
		idx := int(binary.BigEndian.Uint64(body))
		if idx < 0 || idx >= e21Periods {
			return
		}
		seen[idx] = true
		if !ev.Recovered {
			freshSeen[idx] = true
		}
	}
	if cfg.resilient {
		if _, err := cons.SubscribeReliable("da.state", soa.QoS{}, true, mark); err != nil {
			panic(err)
		}
	} else {
		if err := cons.Subscribe("da.state", mark); err != nil {
			panic(err)
		}
	}

	// RPC path: a 50 Hz configuration call from the sink to a provider
	// on cpmB (whose crashes and partitions the campaign injects).
	diag := mw.Endpoint("diag", "cpmB")
	diag.Offer("da.cfg", soa.OfferOpts{Network: "backbone",
		Handler: func(any) (int, any, sim.Duration) {
			return 16, "cfg", 50 * sim.Microsecond
		}})
	cli := mw.Endpoint("hmi", "sink")
	var rpcOK int64
	pol := soa.RetryPolicy{MaxAttempts: 4, Backoff: sim.Millisecond,
		MaxBackoff: 4 * sim.Millisecond, Multiplier: 2, JitterFrac: 0.2}
	k.Every(sim.Time(10*sim.Millisecond), 20*sim.Millisecond, func() {
		if k.Now() >= sim.Time(e21Horizon) {
			return
		}
		var err error
		if cfg.resilient {
			err = cli.CallRetry("da.cfg", 32, nil, 8*sim.Millisecond, pol,
				func(soa.Event) { rpcOK++ }, nil)
		} else {
			err = cli.CallTimeout("da.cfg", 32, nil, 8*sim.Millisecond,
				func(soa.Event) { rpcOK++ }, nil)
		}
		if err != nil {
			panic(err)
		}
	})

	// Corruption-accounting streams ride the same faulty wire raw (no
	// SOA): one E2E-protected, one carrying a self-checking pattern the
	// oracle uses to count corruption a real receiver would miss.
	camTx := &soa.E2ESender{DataID: 0x200}
	camRx := &soa.E2EReceiver{DataID: 0x200}
	var caught, silent int64
	nf.Attach("cam", func(network.Delivery) {})
	nf.Attach("dashE", func(d network.Delivery) {
		if st, _ := camRx.Check(d.Msg.Payload.([]byte)); st == soa.E2EWrongCRC || st == soa.E2EWrongID {
			caught++
		}
	})
	nf.Attach("dashR", func(d network.Delivery) {
		b, ok := d.Msg.Payload.([]byte)
		if !ok || len(b) != 16 || !bytes.Equal(b[:8], b[8:]) {
			silent++
		}
	})
	frame := uint64(0)
	k.Every(0, 5*sim.Millisecond, func() {
		if k.Now() >= sim.Time(e21Horizon) {
			return
		}
		var id [8]byte
		binary.BigEndian.PutUint64(id[:], frame)
		frame++
		nf.Send(network.Message{ID: 0x200, Src: "cam", Dst: "dashE",
			Class: network.ClassPriority, Bytes: 32, Payload: camTx.Protect(id[:])})
		raw := make([]byte, 16)
		copy(raw, id[:])
		copy(raw[8:], id[:])
		nf.Send(network.Message{ID: 0x201, Src: "cam", Dst: "dashR",
			Class: network.ClassPriority, Bytes: 16, Payload: raw})
	})
	if lv.babble {
		b := nf.StartBabble("babbler", 0x3FF, network.ClassBulk, 1400, 2*sim.Millisecond)
		k.At(sim.Time(e21Horizon), func() { b.Stop() })
	}

	// The seeded campaign: identical schedule for every configuration at
	// this level (its RNG derives from the spec seed alone).
	if lv.mtbf > 0 {
		camp := faults.NewCampaign(k, faults.Spec{
			Seed:        0xE21<<8 | uint64(li),
			Horizon:     e21Horizon,
			MTBF:        lv.mtbf,
			RepairMean:  300 * sim.Millisecond,
			RebootDelay: 250 * sim.Millisecond,
			Weights:     faults.Weights{Crash: 0.6, Hang: 0.2, Reboot: 0.2},
		})
		for _, e := range ecus {
			camp.AddTarget(e, p.Node(e))
		}
		camp.AddNetwork(nf)
		camp.Start()
	}

	k.RunUntil(sim.Time(e21Horizon + sim.Second)) // repair tail + late recoveries
	o.SnapshotKernel(k)

	res := e21Result{
		rpcOK:          rpcOK,
		retryRecovered: mw.RetryRecovered,
		caught:         caught,
		silent:         silent,
		corrupted:      nf.FramesCorrupted,
	}
	if group != nil {
		res.failovers = len(group.Failovers)
	}
	okAll, okFresh := 0, 0
	for i := range seen {
		if seen[i] {
			okAll++
		}
		if freshSeen[i] {
			okFresh++
		}
	}
	res.avail = float64(okAll) / float64(e21Periods)
	res.freshAvail = float64(okFresh) / float64(e21Periods)
	return res, o
}

// e21Levels returns the fault-intensity sweep (shared by the plain and
// observed runners).
func e21Levels() []e21Level {
	return []e21Level{
		{name: "0-none", loss: 0, corrupt: 0, mtbf: 0},
		{name: "1-low", loss: 0.01, corrupt: 0.005, mtbf: 2 * sim.Second},
		{name: "2-mid", loss: 0.02, corrupt: 0.01, mtbf: 1500 * sim.Millisecond},
		{name: "3-high", loss: 0.03, corrupt: 0.01, mtbf: 800 * sim.Millisecond, babble: true},
	}
}

// e21Configs returns the resilience configurations of the sweep.
func e21Configs() []e21Config {
	return []e21Config{
		{name: "none"},
		{name: "redundancy", redundant: true},
		{name: "retry", resilient: true},
		{name: "both", redundant: true, resilient: true},
	}
}

func runE21() *Table {
	t, _ := runE21With(false)
	return t
}

// runE21Observed runs the full sweep with per-cell instrumentation: one
// obs scope per cell, named "E21/<level>/<config>".
func runE21Observed() *ObsRun {
	t, scopes := runE21With(true)
	return &ObsRun{Table: t, Scopes: scopes}
}

func runE21With(observe bool) (*Table, []ObsScope) {
	t := &Table{
		ID: "E21", Title: "Fault-campaign availability sweep",
		Source: "§3.3, §3.4 (fault-injection engine + resilience layer)",
		Columns: []string{"fault-level", "config", "DA-avail", "fresh-avail",
			"failovers", "rpc-ok", "retry-rec", "corrupt-caught", "corrupt-silent"},
		Expectation: "redundancy+retry holds ≥99% availability at the highest " +
			"fault level while the bare stack degrades; every corrupted frame " +
			"is either E2E-caught or oracle-counted silent",
	}
	levels := e21Levels()
	configs := e21Configs()
	t.Holds = true
	top := len(levels) - 1
	var scopes []ObsScope
	for li, lv := range levels {
		for _, cfg := range configs {
			r, o := e21Cell(li, lv, cfg, observe)
			if o != nil {
				scopes = append(scopes, ObsScope{Name: "E21/" + lv.name + "/" + cfg.name, Obs: o})
			}
			t.AddRow(lv.name, cfg.name, pct(r.avail), pct(r.freshAvail),
				itoa(int64(r.failovers)), itoa(r.rpcOK), itoa(r.retryRecovered),
				itoa(r.caught), itoa(r.silent))
			// Corruption fully accounted in every cell.
			if r.caught+r.silent != r.corrupted {
				t.Holds = false
			}
			// Fault-free level: everything near-perfect regardless of config.
			if li == 0 && r.avail < 0.999 {
				t.Holds = false
			}
			if li == top {
				switch cfg.name {
				case "both":
					if r.avail < 0.99 || r.failovers == 0 || r.retryRecovered == 0 {
						t.Holds = false
					}
				case "none":
					if r.avail > 0.97 {
						t.Holds = false // bare stack must visibly degrade
					}
				}
			}
		}
	}
	return t, scopes
}
