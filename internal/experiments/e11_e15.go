package experiments

import (
	"fmt"

	"dynaplat/internal/dse"
	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/security/analysis"
	"dynaplat/internal/sim"
	"dynaplat/internal/workload"
	"dynaplat/internal/xil"
)

func init() {
	register("E11", runE11)
	register("E12", runE12)
	register("E13", runE13)
	register("E14", runE14)
	register("E15", runE15)
}

// E11 — Section 2.3: design-space exploration scales where exhaustive
// search cannot, at bounded optimality loss.
func runE11() *Table {
	t := &Table{
		ID: "E11", Title: "Design-space exploration: exhaustive vs heuristics",
		Source:  "§2.3, [9,14]",
		Columns: []string{"apps", "ecus", "space", "method", "feasible", "total-cost", "evaluations"},
		Expectation: "heuristics stay within ~10% of the exhaustive optimum " +
			"where it is computable, with orders of magnitude fewer evaluations",
	}
	t.Holds = true
	w := dse.DefaultWeights()
	for _, cse := range []struct{ nCtl, nECU int }{{4, 3}, {6, 3}, {8, 4}} {
		rng := sim.NewRNG(uint64(cse.nCtl * 31))
		sys := workload.Fleet(rng, cse.nECU, cse.nCtl, 0, 1, 0.6)
		space := 1.0
		for _, a := range sys.Apps {
			if len(a.Candidates) > 0 {
				space *= float64(len(a.Candidates))
			} else {
				space *= float64(len(sys.ECUs))
			}
		}
		ex, err := dse.Exhaustive(sys, w, 5_000_000)
		exCost := "-"
		if err == nil && ex.Feasible {
			exCost = f2(ex.Cost.Total)
			t.AddRow(itoa(int64(cse.nCtl+1)), itoa(int64(cse.nECU+1)),
				fmt.Sprintf("%.0f", space), "exhaustive", boolStr(ex.Feasible),
				exCost, itoa(ex.Evaluated))
		}
		g := dse.Greedy(sys, w)
		t.AddRow(itoa(int64(cse.nCtl+1)), itoa(int64(cse.nECU+1)),
			fmt.Sprintf("%.0f", space), "greedy", boolStr(g.Feasible),
			f2(g.Cost.Total), itoa(g.Evaluated))
		sa := dse.Anneal(sys, w, dse.DefaultAnnealConfig())
		t.AddRow(itoa(int64(cse.nCtl+1)), itoa(int64(cse.nECU+1)),
			fmt.Sprintf("%.0f", space), "anneal", boolStr(sa.Feasible),
			f2(sa.Cost.Total), itoa(sa.Evaluated))
		if !g.Feasible || !sa.Feasible {
			t.Holds = false
			continue
		}
		if err == nil && ex.Feasible {
			if sa.Cost.Total > ex.Cost.Total*1.10+1e-9 {
				t.Holds = false
			}
			if ex.Evaluated <= sa.Evaluated && space > 1000 {
				t.Holds = false
			}
		}
	}
	// One heuristic-only size far beyond exhaustive reach.
	rng := sim.NewRNG(97)
	big := workload.Fleet(rng, 6, 30, 4, 4, 2.0)
	g := dse.Greedy(big, w)
	sa := dse.Anneal(big, w, dse.DefaultAnnealConfig())
	t.AddRow("38", "7", "~1e28", "greedy", boolStr(g.Feasible), f2(g.Cost.Total), itoa(g.Evaluated))
	t.AddRow("38", "7", "~1e28", "anneal", boolStr(sa.Feasible), f2(sa.Cost.Total), itoa(sa.Evaluated))
	if !g.Feasible || !sa.Feasible || sa.Cost.Total > g.Cost.Total+1e-9 {
		t.Holds = false
	}
	return t
}

// E12 — Section 5.4 [11]: probabilistic security evaluation ranks
// architecture variants.
func runE12() *Table {
	t := &Table{
		ID: "E12", Title: "Probabilistic security evaluation of architectures",
		Source:  "§5.4, [11]",
		Columns: []string{"architecture", "P(brake)", "P(gateway)", "most-exposed"},
		Expectation: "flat bus ≫ gateway-separated ≫ hardened gateway for " +
			"the brake asset",
	}
	build := func(kind string) *analysis.Graph {
		g := analysis.NewGraph()
		g.AddNode("telematics", true)
		g.AddNode("obd", true)
		g.AddNode("gateway", false)
		g.AddNode("infotainment", false)
		g.AddNode("brake", false)
		switch kind {
		case "flat":
			// Everything on one bus: compromise of any entry reaches all.
			g.AddEdge("telematics", "infotainment", 0.4)
			g.AddEdge("telematics", "brake", 0.25)
			g.AddEdge("obd", "brake", 0.3)
			g.AddEdge("infotainment", "brake", 0.35)
		case "gateway":
			g.AddEdge("telematics", "infotainment", 0.4)
			g.AddEdge("infotainment", "gateway", 0.2)
			g.AddEdge("obd", "gateway", 0.2)
			g.AddEdge("gateway", "brake", 0.3)
		case "hardened":
			// Gateway with authenticated channels [10]: exploit odds drop.
			g.AddEdge("telematics", "infotainment", 0.4)
			g.AddEdge("infotainment", "gateway", 0.05)
			g.AddEdge("obd", "gateway", 0.05)
			g.AddEdge("gateway", "brake", 0.05)
		}
		return g
	}
	var pFlat, pGw, pHard float64
	for _, kind := range []string{"flat", "gateway", "hardened"} {
		r := build(kind).Exploitability()
		rank := r.Rank()
		top := ""
		for _, row := range rank {
			if row.Asset != "telematics" && row.Asset != "obd" {
				top = row.Asset
				break
			}
		}
		t.AddRow(kind, fmt.Sprintf("%.4f", r.Of("brake")),
			fmt.Sprintf("%.4f", r.Of("gateway")), top)
		switch kind {
		case "flat":
			pFlat = r.Of("brake")
		case "gateway":
			pGw = r.Of("brake")
		case "hardened":
			pHard = r.Of("brake")
		}
	}
	t.Holds = pFlat > pGw && pGw > pHard && pHard < 0.01
	return t
}

// E13 — Section 2.4: XiL levels — identical fault coverage, very
// different cost.
func runE13() *Table {
	t := &Table{
		ID: "E13", Title: "XiL test levels: fault coverage and simulation cost",
		Source:  "§2.4, [17]",
		Columns: []string{"level", "settled", "settling", "stuck-sensor-found", "events", "vs-MiL"},
		Expectation: "every level finds the fault; event cost grows " +
			"MiL < SiL < HiL (earlier levels test faster)",
	}
	t.Holds = true
	var milEvents uint64
	var costs []uint64
	for _, level := range []xil.Level{xil.MiL, xil.SiL, xil.HiL} {
		nominal, err := xil.Run(level, xil.NewVehicle(), xil.NewCruisePID(),
			xil.CruiseStep(), xil.DefaultConfig())
		if err != nil {
			panic(err)
		}
		sc := xil.CruiseStep()
		sc.Fault = xil.FaultSensorStuck
		sc.FaultAt = sim.Time(5 * sim.Second)
		faulty, err := xil.Run(level, xil.NewVehicle(), xil.NewCruisePID(), sc,
			xil.DefaultConfig())
		if err != nil {
			panic(err)
		}
		if level == xil.MiL {
			milEvents = nominal.Events
		}
		ratio := float64(nominal.Events) / float64(milEvents)
		t.AddRow(level.String(), boolStr(nominal.Settled), nominal.SettlingTime.String(),
			boolStr(faulty.FaultDetected), itoa(int64(nominal.Events)),
			fmt.Sprintf("%.1fx", ratio))
		costs = append(costs, nominal.Events)
		if !nominal.Settled || !faulty.FaultDetected {
			t.Holds = false
		}
	}
	if !(costs[0] < costs[1] && costs[1] < costs[2]) {
		t.Holds = false
	}
	return t
}

// E14 — Section 3.1 "Memory": process separation confines stray writes;
// colocation trades protection for process count.
func runE14() *Table {
	t := &Table{
		ID: "E14", Title: "Memory freedom of interference",
		Source:  "§3.1 Memory",
		Columns: []string{"configuration", "processes", "apps-corrupted-by-wild-write"},
		Expectation: "MMU separation: 1 (the faulty app itself); colocation " +
			"widens the blast radius; no MMU: all apps",
	}
	const nApps = 6
	build := func(mmu bool, colocate int) (*platform.MemoryManager, []string) {
		m := platform.NewMemoryManager(1<<20, mmu)
		names := make([]string, nApps)
		for i := 0; i < nApps; i++ {
			names[i] = fmt.Sprintf("app%d", i)
			m.NewDomain(names[i], 64)
		}
		for i := 1; i <= colocate && i < nApps; i++ {
			m.Colocate(names[0], names[i])
		}
		return m, names
	}
	m1, n1 := build(true, 0)
	hit1 := m1.InjectWildWrite(n1[0])
	t.AddRow("mmu, separate processes", itoa(int64(m1.ProcessCount())), itoa(int64(len(hit1))))

	m2, n2 := build(true, 2)
	hit2 := m2.InjectWildWrite(n2[0])
	t.AddRow("mmu, 3 apps colocated", itoa(int64(m2.ProcessCount())), itoa(int64(len(hit2))))

	m3, n3 := build(false, 0)
	hit3 := m3.InjectWildWrite(n3[0])
	t.AddRow("no mmu", itoa(int64(m3.ProcessCount())), itoa(int64(len(hit3))))

	t.Holds = len(hit1) == 1 && len(hit2) == 3 && len(hit3) == nApps
	return t
}

// E15 — Figure 1 vs Figure 2: ECU consolidation hosts the same function
// set on fewer, cheaper ECUs at equal schedulability.
func runE15() *Table {
	t := &Table{
		ID: "E15", Title: "ECU consolidation: federated vs dynamic platform",
		Source:  "Fig. 1 vs Fig. 2, §1",
		Columns: []string{"design", "ecus-used", "ecu-cost", "max-util", "schedulable"},
		Expectation: "consolidated deployment uses fewer ECUs at lower cost " +
			"with every deadline still met",
	}
	rng := sim.NewRNG(23)
	nCtl := 10
	sys := workload.Fleet(rng, nCtl, nCtl, 0, 1, 1.2)
	w := dse.DefaultWeights()

	// Federated: one control app per dedicated CPM (Figure 1's world).
	fed := sys.Clone()
	i := 0
	for _, a := range fed.Apps {
		if a.Kind == model.Deterministic {
			fed.Placement[a.Name] = fmt.Sprintf("cpm%d", i)
			i++
		} else {
			fed.Placement[a.Name] = "head"
		}
	}
	fc, fOK := dse.Evaluate(fed, w)
	t.AddRow("federated (1 fn/ECU)", itoa(int64(fc.UsedECUs)), itoa(int64(fc.ECUCost)),
		f2(fc.MaxUtil), boolStr(fOK))

	// Consolidated: let DSE pack.
	con := dse.Anneal(sys, w, dse.DefaultAnnealConfig())
	t.AddRow("consolidated (DSE)", itoa(int64(con.Cost.UsedECUs)),
		itoa(int64(con.Cost.ECUCost)), f2(con.Cost.MaxUtil), boolStr(con.Feasible))

	t.Holds = fOK && con.Feasible &&
		con.Cost.UsedECUs < fc.UsedECUs && con.Cost.ECUCost < fc.ECUCost
	return t
}
