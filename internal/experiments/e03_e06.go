package experiments

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/update"
	"dynaplat/internal/sched"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
	"dynaplat/internal/workload"
)

func init() {
	register("E3", runE3)
	register("E5", runE5)
	register("E6", runE6)
}

// E3 — Section 3.1 "CPU": generating a schedule at runtime is expensive
// on an ECU; the backend (cloud) does it fast, and incremental synthesis
// avoids disturbing existing slots.
func runE3() *Table {
	t := &Table{
		ID: "E3", Title: "Schedule synthesis: on-ECU vs backend, incremental vs full",
		Source:  "§3.1 CPU, [21]",
		Columns: []string{"tasks", "ops", "t@200MHz-ECU", "t@10GHz-backend", "incr-admits", "moved-slots"},
		Expectation: "backend synthesis ≫ faster than ECU; incremental " +
			"admission preserves existing slots (0 moved) while feasible",
	}
	t.Holds = true
	for _, n := range []int{5, 10, 20, 40, 80} {
		rng := sim.NewRNG(uint64(n))
		tasks := workload.ControlTasks(rng, n, 0.7)
		tbl, err := sched.Synthesize(tasks, 250*sim.Microsecond)
		if err != nil {
			t.AddRow(itoa(int64(n)), "-", "-", "-", "infeasible", "-")
			continue
		}
		ecuT := sched.SynthesisTime(tbl.SynthesisOps, 200)
		backendT := sched.SynthesisTime(tbl.SynthesisOps, 10_000)
		// Incremental admission: admit the same set one by one.
		m := sched.NewManager(250 * sim.Microsecond)
		incr, moved := 0, 0
		for _, task := range tasks {
			res, err := m.Admit(task)
			if err != nil {
				continue
			}
			if res.Incremental {
				incr++
			}
			moved += res.MovedSlots
		}
		t.AddRow(itoa(int64(n)), itoa(tbl.SynthesisOps), ecuT.String(),
			backendT.String(), fmt.Sprintf("%d/%d", incr, n), itoa(int64(moved)))
		if backendT*10 > ecuT {
			t.Holds = false // backend must be ≥10x faster (it is 50x by clock)
		}
	}
	return t
}

// E5 — Section 3.2: the staged 4-phase update never interrupts the
// deterministic app; stop-update-restart leaves a service gap; staged
// costs double memory.
func runE5() *Table {
	t := &Table{
		ID: "E5", Title: "Runtime update: staged 4-phase vs stop-restart",
		Source:  "§3.2",
		Columns: []string{"strategy", "downtime", "covered-periods", "missed-deadlines", "peak-mem"},
		Expectation: "staged: zero downtime, full period coverage, ~2x memory; " +
			"stop-restart: downtime ≥ startup time, gap in coverage",
	}
	run := func(staged bool) (rep update.Report, covered int64, misses int64) {
		k := sim.NewKernel(9)
		net := tsn.New(k, tsn.DefaultConfig("bb"))
		mw := soa.New(k, nil)
		mw.AddNetwork(net, 1400)
		p := platform.New(k, mw)
		node, _ := p.AddNode(model.ECU{Name: "cpm", CPUMHz: 100, MemoryKB: 2048,
			HasMMU: true, OS: model.OSRTOS}, platform.ModeIsolated, 250*sim.Microsecond)
		spec := model.App{Name: "brake", Kind: model.Deterministic, ASIL: model.ASILD,
			Period: 10 * sim.Millisecond, WCET: 2 * sim.Millisecond,
			Deadline: 10 * sim.Millisecond, MemoryKB: 256, Version: 1}
		inst, _ := node.Install(spec, platform.Behavior{})
		inst.Start()
		for i := 0; i < 20; i++ {
			node.Store().Put("brake", fmt.Sprintf("k%d", i), []byte("v"))
		}
		mgr := update.NewManager(p, mw, update.DefaultConfig())
		newSpec := spec
		newSpec.Version = 2
		var report update.Report
		k.At(sim.Time(500*sim.Millisecond), func() {
			var err error
			if staged {
				err = mgr.Staged("brake", newSpec, platform.Behavior{}, nil,
					func(r update.Report) { report = r })
			} else {
				err = mgr.StopRestart("brake", newSpec, platform.Behavior{}, nil,
					func(r update.Report) { report = r })
			}
			if err != nil {
				panic(err)
			}
		})
		k.RunUntil(sim.Time(2 * sim.Second))
		newInst, _ := p.FindApp("brake@2")
		covered = inst.Activations
		if newInst != nil {
			covered += newInst.Activations
			misses = inst.Misses + newInst.Misses
		}
		return report, covered, misses
	}

	sRep, sCov, sMiss := run(true)
	rRep, rCov, rMiss := run(false)
	t.AddRow("staged", sRep.Downtime.String(), itoa(sCov), itoa(sMiss),
		fmt.Sprintf("%dKB", sRep.PeakMemoryKB))
	t.AddRow("stop-restart", rRep.Downtime.String(), itoa(rCov), itoa(rMiss),
		fmt.Sprintf("%dKB", rRep.PeakMemoryKB))
	// 2s / 10ms = 200 periods; staged must cover ≥ that (overlap may add).
	t.Holds = sRep.Downtime == 0 && sCov >= 200 && sMiss == 0 &&
		rRep.Downtime >= update.DefaultConfig().StartupBase &&
		rCov < 200 &&
		sRep.PeakMemoryKB >= 2*rRep.PeakMemoryKB
	return t
}

// E6 — Section 3.2: orchestrated stepwise distributed update vs a
// synchronized central switch under clock skew.
func runE6() *Table {
	t := &Table{
		ID: "E6", Title: "Distributed update: orchestrated path vs central switch",
		Source:  "§3.2",
		Columns: []string{"strategy", "clock-skew", "steps", "incompatible-max", "incompatible-total"},
		Expectation: "orchestrated path has zero version-mismatch exposure at " +
			"any skew; central switch exposure grows linearly with skew",
	}
	deps := []update.Dependency{
		{Producer: "sensor", Consumer: "fusion"},
		{Producer: "fusion", Consumer: "planner"},
		{Producer: "planner", Consumer: "actuator"},
		{Producer: "sensor", Consumer: "logger"},
	}
	// Orchestrated: staged per-step updates — mismatch is structurally 0.
	k := sim.NewKernel(1)
	var orch update.OrchestratedReport
	steps := []update.PathStep{
		{App: "sensor"}, {App: "fusion"}, {App: "planner"}, {App: "actuator"}, {App: "logger"},
	}
	update.Orchestrated(k, steps, func(app string, done func(error)) {
		k.After(100*sim.Millisecond, func() { done(nil) })
	}, func(r update.OrchestratedReport) { orch = r })
	k.Run()
	t.AddRow("orchestrated", "any", itoa(int64(orch.StepsDone)),
		orch.IncompatibleTime.String(), orch.IncompatibleTime.String())

	t.Holds = orch.StepsDone == 5 && orch.IncompatibleTime == 0
	prev := sim.Duration(-1)
	for _, skew := range []sim.Duration{0, sim.Millisecond, 5 * sim.Millisecond, 20 * sim.Millisecond} {
		rng := sim.NewRNG(uint64(skew) + 5)
		sk := map[string]sim.Duration{}
		for _, app := range []string{"sensor", "fusion", "planner", "actuator", "logger"} {
			if skew > 0 {
				sk[app] = rng.DurationRange(-skew, skew)
			}
		}
		rep := update.CentralSwitch(sim.Time(sim.Second), sk, deps)
		t.AddRow("central-switch", skew.String(), "1",
			rep.MaxIncompatible.String(), rep.TotalIncompatible.String())
		if rep.TotalIncompatible < prev {
			t.Holds = false // exposure must not shrink as skew grows
		}
		prev = rep.TotalIncompatible
	}
	return t
}
