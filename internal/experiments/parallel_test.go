package experiments

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"testing"

	"dynaplat/internal/par"
)

// renderTables renders a table slice the way exprun would.
func renderTables(tables []*Table) string {
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Render(&buf)
	}
	return buf.String()
}

// compareSerialParallel asserts that the worker-pool run of ids is
// byte-identical to the serial run.
func compareSerialParallel(t *testing.T, ids []string, workers int) {
	t.Helper()
	serial, err := RunTables(ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTables(ids, workers)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := renderTables(serial), renderTables(par); s != p {
		t.Fatalf("workers=%d: serial and parallel renderings differ over %v", workers, ids)
	}
	for i := range serial {
		if serial[i].ID != par[i].ID || serial[i].Holds != par[i].Holds {
			t.Fatalf("workers=%d: table %d differs: %s/%v vs %s/%v", workers, i,
				serial[i].ID, serial[i].Holds, par[i].ID, par[i].Holds)
		}
	}
}

// TestSerialParallelByteIdentical is the harness determinism property:
// fanning experiments out across a worker pool must produce byte-
// identical rendered tables to the serial run. One round covers the full
// E1–E21 harness (including the expensive DSE/Pareto experiments); ten
// further rounds re-run the fast experiments with varying worker counts
// so goroutine interleaving gets repeated chances to perturb something.
// Under -race this also proves the experiments share no mutable state.
func TestSerialParallelByteIdentical(t *testing.T) {
	compareSerialParallel(t, IDs(), runtime.GOMAXPROCS(0)+2)

	// E11 (DSE) and E20 (Pareto) are ~50× costlier than the rest; the
	// repeated rounds exercise the pool on the other 18.
	var fast []string
	for _, id := range IDs() {
		if id != "E11" && id != "E20" {
			fast = append(fast, id)
		}
	}
	for round := 1; round <= 10; round++ {
		compareSerialParallel(t, fast, 1+round%7)
	}
}

// TestRunAllMatchesRunAllParallel checks the rendering wrappers too.
func TestRunAllMatchesRunAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-harness comparison")
	}
	var serial, par bytes.Buffer
	RunAll(&serial)
	RunAllParallel(&par, 4)
	if serial.String() != par.String() {
		t.Fatal("RunAll and RunAllParallel renderings differ")
	}
}

func TestRunTablesSubsetAndOrder(t *testing.T) {
	ids := []string{"E7", "E1", "E4"}
	tables, err := RunTables(ids, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if tables[i].ID != id {
			t.Errorf("tables[%d].ID = %s, want %s (order must match request)", i, tables[i].ID, id)
		}
	}
}

// TestRunTablesPanicContained: a panicking runner must not crash the
// process or leave sibling workers running; RunTables returns an error
// naming the failing experiment instead.
func TestRunTablesPanicContained(t *testing.T) {
	register("E999", func() *Table { panic("seeded runner explosion") })
	defer delete(registry, "E999")

	for _, workers := range []int{1, 4} {
		tables, err := RunTables([]string{"E1", "E999", "E2"}, workers)
		if err == nil {
			t.Fatalf("workers=%d: panicking runner produced no error (tables=%v)", workers, tables)
		}
		if !strings.Contains(err.Error(), "E999") {
			t.Errorf("workers=%d: error %q does not name the failing experiment", workers, err)
		}
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %T does not wrap *par.PanicError", workers, err)
		}
		if pe.Value != "seeded runner explosion" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
	}
}

func TestRunTablesUnknownID(t *testing.T) {
	if _, err := RunTables([]string{"E1", "E99"}, 2); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunTablesWorkerCounts(t *testing.T) {
	// Degenerate worker counts must all behave like serial.
	for _, workers := range []int{-1, 0, 1, 50} {
		tables, err := RunTables([]string{"E1", "E2"}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) != 2 || tables[0].ID != "E1" || tables[1].ID != "E2" {
			t.Errorf("workers=%d: bad result %v", workers, tables)
		}
	}
}

// BenchmarkRunAllSerial / BenchmarkRunAllParallel measure the full
// E1–E21 harness; on multicore hardware the parallel variant's wall
// time approaches serial/GOMAXPROCS.
func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunTables(IDs(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunTables(IDs(), 0); err != nil {
			b.Fatal(err)
		}
	}
}
