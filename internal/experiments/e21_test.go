package experiments

import (
	"bytes"
	"testing"
)

// TestFaultCampaignDeterministic: the whole E21 sweep — fault schedules,
// frame-level loss/corruption draws, failovers, retry outcomes — must be
// byte-identical run to run. This is the repository's strongest
// reproducibility check: sixteen kernels, four fault campaigns and every
// resilience mechanism at once, rendered twice and compared.
func TestFaultCampaignDeterministic(t *testing.T) {
	a, err := Run("E21")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E21")
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	a.Render(&ba)
	b.Render(&bb)
	if ba.String() != bb.String() {
		t.Errorf("E21 not byte-identical across runs:\n--- first\n%s\n--- second\n%s",
			ba.String(), bb.String())
	}
	if !a.Holds {
		t.Error("E21 expectation violated")
	}
}
