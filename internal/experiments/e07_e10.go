package experiments

import (
	"fmt"

	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/monitor"
	"dynaplat/internal/safety/redundancy"
	"dynaplat/internal/security/auth"
	secpkg "dynaplat/internal/security/pkg"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func init() {
	register("E7", runE7)
	register("E8", runE8)
	register("E9", runE9)
	register("E10", runE10)
}

// E7 — Section 3.3: fail-operational redundancy. Heartbeat period sweeps
// the detection/overhead trade-off (ablation A3).
func runE7() *Table {
	t := &Table{
		ID: "E7", Title: "Fail-operational redundancy: failover latency",
		Source:  "§3.3",
		Columns: []string{"heartbeat", "detect-latency", "service-gap", "outputs-after"},
		Expectation: "service continues after ECU failure; detection latency " +
			"scales with heartbeat period",
	}
	run := func(hb sim.Duration) (detect, gap sim.Duration, after int64) {
		k := sim.NewKernel(11)
		p := platform.New(k, nil)
		for _, e := range []string{"cpmA", "cpmB", "cpmC"} {
			p.AddNode(model.ECU{Name: e, CPUMHz: 100, MemoryKB: 1024,
				HasMMU: true, OS: model.OSRTOS}, platform.ModeIsolated, 250*sim.Microsecond)
		}
		m := redundancy.NewManager(p)
		cfg := redundancy.Config{HeartbeatPeriod: hb, MissThreshold: 3,
			PromotionDelay: 2 * sim.Millisecond}
		spec := model.App{Name: "steer", Kind: model.Deterministic, ASIL: model.ASILD,
			Period: 10 * sim.Millisecond, WCET: 2 * sim.Millisecond,
			Deadline: 10 * sim.Millisecond, MemoryKB: 64}
		g, err := m.Replicate(spec, []string{"cpmA", "cpmB", "cpmC"}, platform.Behavior{}, cfg)
		if err != nil {
			panic(err)
		}
		g.Start()
		failAt := sim.Time(sim.Second)
		k.At(failAt, func() { m.FailECU("cpmA") })
		k.RunUntil(sim.Time(3 * sim.Second))
		if len(g.Failovers) != 1 {
			return 0, 0, 0
		}
		ev := g.Failovers[0]
		before := g.Outputs
		k.RunUntil(sim.Time(4 * sim.Second))
		return ev.DetectedAt.Sub(failAt), ev.ServiceGap, g.Outputs - before
	}
	t.Holds = true
	var prevDetect sim.Duration = -1
	for _, hb := range []sim.Duration{5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 50 * sim.Millisecond} {
		detect, gap, after := run(hb)
		t.AddRow(hb.String(), detect.String(), gap.String(), itoa(after))
		if after == 0 || detect == 0 {
			t.Holds = false
		}
		if detect < prevDetect {
			t.Holds = false // longer heartbeat must not detect faster
		}
		prevDetect = detect
	}
	return t
}

// E8 — Section 3.4: runtime monitoring detects injected faults at low
// accounted overhead.
func runE8() *Table {
	t := &Table{
		ID: "E8", Title: "Runtime monitoring: detection latency and overhead",
		Source:  "§3.4",
		Columns: []string{"fault", "detected", "detect-latency", "monitor-overhead"},
		Expectation: "deadline, jitter and memory faults all detected; " +
			"accounted overhead ≪ 1%",
	}
	type result struct {
		detected bool
		latency  sim.Duration
		overhead float64
	}
	run := func(kind platform.FaultKind) result {
		k := sim.NewKernel(13)
		node := platform.NewNode(k, model.ECU{Name: "cpm", CPUMHz: 100, MemoryKB: 1024,
			HasMMU: true, OS: model.OSRTOS}, platform.ModeShared, 0)
		da, _ := node.Install(model.App{Name: "ctl", Kind: model.Deterministic,
			ASIL: model.ASILC, Period: 10 * sim.Millisecond, WCET: 2 * sim.Millisecond,
			Deadline: 10 * sim.Millisecond, Jitter: 500 * sim.Microsecond,
			MemoryKB: 128}, platform.Behavior{})
		nda, _ := node.Install(model.App{Name: "bg", Kind: model.NonDeterministic,
			MemoryKB: 64}, platform.Behavior{})
		mon := monitor.New(node, monitor.DefaultConfig())
		mon.Watch("ctl")
		da.Start()
		nda.Start()
		// Inject just before a 500ms-grid release so the non-preemptive
		// NDA job actually blocks it.
		injectAt := sim.Time(498 * sim.Millisecond)
		switch kind {
		case platform.FaultDeadlineMiss:
			k.At(injectAt, func() { nda.Submit(30*sim.Millisecond, nil) })
		case platform.FaultJitterExceeded:
			k.At(injectAt, func() { nda.Submit(4*sim.Millisecond, nil) })
		case platform.FaultMemoryBudget:
			k.At(injectAt, func() { node.Memory().Use("ctl", 125) })
		}
		k.RunUntil(sim.Time(2 * sim.Second))
		for _, d := range mon.Detections {
			if d.Kind == kind {
				return result{detected: true, latency: d.DetectedAt.Sub(injectAt),
					overhead: mon.OverheadFraction()}
			}
		}
		return result{overhead: mon.OverheadFraction()}
	}
	t.Holds = true
	for _, c := range []struct {
		name string
		kind platform.FaultKind
	}{
		{"deadline-miss", platform.FaultDeadlineMiss},
		{"response-jitter", platform.FaultJitterExceeded},
		{"memory-budget", platform.FaultMemoryBudget},
	} {
		r := run(c.kind)
		t.AddRow(c.name, boolStr(r.detected), r.latency.String(),
			fmt.Sprintf("%.4f%%", r.overhead*100))
		if !r.detected || r.overhead > 0.01 {
			t.Holds = false
		}
	}
	return t
}

// E9 — Section 4.1: signed packages; weak ECUs delegate to redundant
// update masters.
func runE9() *Table {
	t := &Table{
		ID: "E9", Title: "Package security: direct verify vs update master",
		Source:  "§4.1",
		Columns: []string{"package", "weak-ECU-direct", "master+MAC-total", "speedup", "tamper-rejected"},
		Expectation: "master-mediated verification always wins on weak ECUs — " +
			"decisively while the asymmetric operation dominates (small " +
			"packages), marginally once image hashing dominates; tampering " +
			"is rejected; master failover works",
	}
	var seed [32]byte
	copy(seed[:], "exp9-authority-seed-0123456789ab")
	authy := secpkg.NewAuthority("OEM", seed)
	trust := secpkg.NewTrustStore()
	trust.Trust("OEM", authy.PublicKey())

	t.Holds = true
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		k := sim.NewKernel(17)
		img := make([]byte, size)
		for i := range img {
			img[i] = byte(i)
		}
		signed := authy.Sign(secpkg.Package{App: "brake", Version: 2, Image: img})

		// Direct verification on a 50 MHz crypto-less zone ECU.
		direct := secpkg.VerifyCost(size, 50, false)

		// Master-mediated: master (400 MHz + crypto HW) verifies, weak
		// ECU checks the MAC.
		masters := []*secpkg.MasterECU{
			{Name: "m1", CPUMHz: 400, CryptoHW: true, Alive: false}, // primary down!
			{Name: "m2", CPUMHz: 400, CryptoHW: true, Alive: true},
		}
		pool := secpkg.NewMasterPool(k, trust, masters)
		key := []byte("zone-psk")
		pool.Enroll("zone", key)
		var done sim.Time
		var fwd secpkg.Forwarded
		pool.VerifyFor("zone", signed, func(f secpkg.Forwarded, err error) {
			if err != nil {
				panic(err)
			}
			fwd = f
			done = k.Now()
		})
		k.Run()
		mediated := sim.Duration(done) + secpkg.MACCost(size, 50, false)
		if err := secpkg.CheckForwarded(fwd, key); err != nil {
			t.Holds = false
		}
		// Tamper check.
		bad := signed
		bad.Pkg.Image = append([]byte(nil), img...)
		bad.Pkg.Image[0] ^= 1
		rejected := trust.Verify(bad) != nil

		t.AddRow(fmt.Sprintf("%dKB", size/1024), direct.String(), mediated.String(),
			fmt.Sprintf("%.1fx", float64(direct)/float64(mediated)), boolStr(rejected))
		if mediated >= direct || !rejected {
			t.Holds = false
		}
		if size == 1<<10 && float64(direct)/float64(mediated) < 5 {
			t.Holds = false
		}
	}
	return t
}

// E10 — Section 4.2: model-derived access control blocks every
// undeclared binding at negligible per-binding cost.
func runE10() *Table {
	t := &Table{
		ID: "E10", Title: "Service-binding authorization from the model",
		Source:  "§4.2",
		Columns: []string{"services", "legit-bound", "attacks-blocked", "broker-issues", "cache-hits", "ticket-cost@200MHz"},
		Expectation: "0 false rejects, 0 false accepts at every mesh size; " +
			"caching keeps broker traffic sublinear in bindings",
	}
	t.Holds = true
	for _, n := range []int{10, 50, 100} {
		k := sim.NewKernel(19)
		sys := model.NewSystem("mesh")
		sys.ECUs = append(sys.ECUs, &model.ECU{Name: "e", CPUMHz: 200, MemoryKB: 1 << 20,
			HasMMU: true, OS: model.OSRTOS})
		for i := 0; i < n; i++ {
			p := fmt.Sprintf("prov%02d", i)
			c := fmt.Sprintf("cons%02d", i)
			sys.Apps = append(sys.Apps,
				&model.App{Name: p, Kind: model.NonDeterministic, MemoryKB: 1},
				&model.App{Name: c, Kind: model.NonDeterministic, MemoryKB: 1})
			sys.Interfaces = append(sys.Interfaces, &model.Interface{
				Name: fmt.Sprintf("svc%02d", i), Owner: p, Paradigm: model.Event,
				PayloadBytes: 8, Version: 1})
			sys.Bindings = append(sys.Bindings, model.Binding{
				Client: c, Interface: fmt.Sprintf("svc%02d", i)})
		}
		matrix := model.ExtractAccessMatrix(sys)
		broker := auth.NewBroker(k, matrix, []byte("master"), sim.Second)
		az := auth.NewAuthorizer(broker)
		mw := soa.New(k, az)
		net := tsn.New(k, tsn.DefaultConfig("bb"))
		mw.AddNetwork(net, 1400)

		legit, blocked := 0, 0
		for i := 0; i < n; i++ {
			prov := mw.Endpoint(fmt.Sprintf("prov%02d", i), "ecu1")
			prov.Offer(fmt.Sprintf("svc%02d", i), soa.OfferOpts{Network: "bb"})
		}
		for i := 0; i < n; i++ {
			cons := mw.Endpoint(fmt.Sprintf("cons%02d", i), "ecu2")
			// Declared binding must succeed (try twice: cache path).
			for rep := 0; rep < 2; rep++ {
				if err := cons.Subscribe(fmt.Sprintf("svc%02d", i), func(soa.Event) {}); err == nil {
					legit++
				}
				cons.Unsubscribe(fmt.Sprintf("svc%02d", i))
			}
			// Undeclared binding (next service over) must fail.
			other := fmt.Sprintf("svc%02d", (i+1)%n)
			if err := cons.Subscribe(other, func(soa.Event) {}); err != nil {
				blocked++
			}
		}
		t.AddRow(itoa(int64(n)), fmt.Sprintf("%d/%d", legit, 2*n),
			fmt.Sprintf("%d/%d", blocked, n), itoa(broker.Issued),
			itoa(az.CacheHits), auth.TicketCost(200, false).String())
		if legit != 2*n || blocked != n || az.CacheHits == 0 {
			t.Holds = false
		}
	}
	return t
}
