// Package experiments contains one runner per experiment in EXPERIMENTS.md
// (E1–E24), each reproducing a figure or claim of the paper on the
// simulated substrate and returning a printable result table.
//
// The paper is a vision paper without quantitative tables; the experiment
// definitions and the qualitative expectations they check are derived
// from its sections as documented in DESIGN.md §3.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dynaplat/internal/par"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Source  string // the paper figure/section reproduced
	Columns []string
	Rows    [][]string
	// Expectation states the qualitative paper claim this table checks.
	Expectation string
	// Holds reports whether the measured shape matches the expectation.
	Holds bool
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s  [%s]\n", t.ID, t.Title, t.Source)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	verdict := "HOLDS"
	if !t.Holds {
		verdict = "VIOLATED"
	}
	fmt.Fprintf(w, "  expectation: %s → %s\n\n", t.Expectation, verdict)
}

// MarshalJSON renders the table for machine consumers (CI dashboards).
func (t *Table) MarshalJSON() ([]byte, error) {
	type row map[string]string
	rows := make([]row, 0, len(t.Rows))
	for _, r := range t.Rows {
		m := row{}
		for i, c := range r {
			if i < len(t.Columns) {
				m[t.Columns[i]] = c
			}
		}
		rows = append(rows, m)
	}
	return json.Marshal(struct {
		ID          string `json:"id"`
		Title       string `json:"title"`
		Source      string `json:"source"`
		Expectation string `json:"expectation"`
		Holds       bool   `json:"holds"`
		Rows        []row  `json:"rows"`
	}{t.ID, t.Title, t.Source, t.Expectation, t.Holds, rows})
}

// Runner produces one experiment table. Runners are deterministic: they
// build their own seeded kernels.
type Runner func() *Table

var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 numeric ordering.
		return expNum(out[i]) < expNum(out[j])
	})
	return out
}

func expNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Run executes one experiment by ID.
func Run(id string) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(), nil
}

// RunTables executes the given experiments and returns their tables in
// the same order as ids. workers > 1 fans the runs out across a worker
// pool; each experiment builds its own seeded kernel, so the resulting
// tables are bit-identical to a serial run regardless of worker count or
// goroutine interleaving. workers <= 0 means GOMAXPROCS.
//
// A panicking runner does not crash the process: the pool recovers it,
// lets in-flight siblings finish, and RunTables returns an error naming
// the experiment that failed (wrapping par.PanicError, so the original
// panic value and stack stay reachable).
func RunTables(ids []string, workers int) ([]*Table, error) {
	runners := make([]Runner, len(ids))
	for i, id := range ids {
		r, ok := registry[id]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
		runners[i] = r
	}
	out := make([]*Table, len(runners))
	if err := par.ForEach(len(runners), workers, func(i int) {
		out[i] = runners[i]()
	}); err != nil {
		if pe, ok := err.(*par.PanicError); ok {
			return nil, fmt.Errorf("experiments: %s panicked: %w", ids[pe.Index], pe)
		}
		return nil, err
	}
	return out, nil
}

// RunAll executes every experiment serially in order, rendering to w.
func RunAll(w io.Writer) []*Table { return renderAll(w, 1) }

// RunAllParallel executes every experiment across a worker pool (one
// independent kernel per experiment) and renders the tables to w in
// canonical E1..E24 order. Output is byte-identical to RunAll.
func RunAllParallel(w io.Writer, workers int) []*Table { return renderAll(w, workers) }

func renderAll(w io.Writer, workers int) []*Table {
	out, err := RunTables(IDs(), workers)
	if err != nil {
		// IDs() only yields registered ids, so the only way here is a
		// runner panic — re-raise it with the experiment ID attached.
		panic(err)
	}
	for _, t := range out {
		t.Render(w)
	}
	return out
}

// helpers shared by runners

func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", v*100) }
func itoa(v int64) string   { return fmt.Sprintf("%d", v) }
func boolStr(b bool) string { return map[bool]string{true: "yes", false: "no"}[b] }
