// Package admission implements vehicle-level online admission control
// (the paper's Section 5.3, following references [6] and [19]): before a
// newly installed application is accepted, a compositional analysis
// checks that every resource it needs — CPU time on its target ECU,
// memory, and communication capacity for its interfaces — still meets all
// timing requirements, and computes the configuration to install. The
// check is conservative: rejection leaves the vehicle untouched.
package admission

import (
	"fmt"

	"dynaplat/internal/can"
	"dynaplat/internal/model"
	"dynaplat/internal/sched"
	"dynaplat/internal/sim"
)

// Decision is the outcome of one admission test.
type Decision struct {
	Admitted bool
	// Reasons lists every violated constraint (empty when admitted).
	Reasons []string
	// CPUUtilAfter, MemAfterKB and BusLoadAfter describe the would-be
	// post-admission state of the touched resources.
	CPUUtilAfter float64
	MemAfterKB   int
	BusLoadAfter map[string]float64
}

func (d *Decision) reject(format string, args ...any) {
	d.Reasons = append(d.Reasons, fmt.Sprintf(format, args...))
}

// Controller performs admission tests against a system model that
// reflects the vehicle's current configuration.
type Controller struct {
	sys *model.System
	// MaxBusLoad is the admissible fraction of any network's capacity
	// (default 0.75, the classic engineering bound for CAN).
	MaxBusLoad float64
	// Granularity for exact schedule-synthesis fallbacks.
	Granularity sim.Duration
}

// NewController creates a controller over the current system model.
func NewController(sys *model.System) *Controller {
	return &Controller{sys: sys, MaxBusLoad: 0.75, Granularity: 250 * sim.Microsecond}
}

// System returns the model the controller admits against (the reconfig
// orchestrator plans over it).
func (c *Controller) System() *model.System { return c.sys }

// Request is one admission request: an application, its target ECU, and
// the interfaces it will provide.
type Request struct {
	App        model.App
	ECU        string
	Interfaces []model.Interface
}

// Check runs the full compositional test without mutating the model.
func (c *Controller) Check(req Request) Decision {
	d := Decision{BusLoadAfter: map[string]float64{}}
	ecu := c.sys.ECU(req.ECU)
	if ecu == nil {
		d.reject("unknown ECU %q", req.ECU)
		return d
	}
	if c.sys.App(req.App.Name) != nil {
		d.reject("app %s already installed", req.App.Name)
		return d
	}

	// --- Placement constraints (same rules the verification engine uses).
	if req.App.Kind == model.Deterministic && ecu.OS != model.OSRTOS {
		d.reject("deterministic app needs an RTOS; %s runs %v", ecu.Name, ecu.OS)
	}
	if req.App.NeedsGPU && !ecu.HasGPU {
		d.reject("needs GPU absent on %s", ecu.Name)
	}
	if req.App.NeedsCrypto && !ecu.HasCryptoHW {
		d.reject("needs crypto HW absent on %s", ecu.Name)
	}

	// --- Memory.
	d.MemAfterKB = c.sys.ECUMemoryUse(ecu) + req.App.MemoryKB
	if d.MemAfterKB > ecu.MemoryKB {
		d.reject("memory: %d+%d > %dKB on %s",
			c.sys.ECUMemoryUse(ecu), req.App.MemoryKB, ecu.MemoryKB, ecu.Name)
	}

	// --- CPU: exact schedulability of the deterministic set on the ECU.
	if req.App.Kind == model.Deterministic {
		tasks := c.ecuTasks(ecu)
		tasks = append(tasks, sched.Task{
			Name: req.App.Name, Period: req.App.Period,
			WCET: ecu.ScaledWCET(req.App.WCET), Deadline: req.App.Deadline,
			Jitter: req.App.Jitter,
		})
		d.CPUUtilAfter = sched.TotalUtilization(tasks)
		if err := sched.ValidateSet(tasks); err != nil {
			d.reject("task set invalid: %v", err)
		} else if d.CPUUtilAfter > 1 {
			d.reject("CPU: utilization %.2f > 1 on %s", d.CPUUtilAfter, ecu.Name)
		} else if _, ok, _ := sched.ResponseTimeAnalysis(tasks); !ok {
			// RTA is sufficient-only; confirm with exact EDF synthesis.
			if _, err := sched.Synthesize(tasks, c.Granularity); err != nil {
				d.reject("CPU: not schedulable on %s: %v", ecu.Name, err)
			}
		}
	} else {
		d.CPUUtilAfter = c.sys.ECUUtilization(ecu)
	}

	// --- Communication, per target network.
	for _, ifc := range req.Interfaces {
		if ifc.Network == "" {
			continue
		}
		net := c.sys.Network(ifc.Network)
		if net == nil {
			d.reject("interface %s: unknown network %q", ifc.Name, ifc.Network)
			continue
		}
		if !net.Attaches(req.ECU) {
			d.reject("interface %s: network %s does not attach %s",
				ifc.Name, net.Name, req.ECU)
			continue
		}
		switch net.Kind {
		case model.NetCAN:
			c.checkCAN(&d, net, ifc)
		default:
			c.checkLoad(&d, net, ifc)
		}
	}
	d.Admitted = len(d.Reasons) == 0
	return d
}

// Admit runs Check and, on success, installs the app and interfaces into
// the model so subsequent admissions see them.
func (c *Controller) Admit(req Request) (Decision, error) {
	d := c.Check(req)
	if !d.Admitted {
		return d, fmt.Errorf("admission: rejected: %s", d.Reasons[0])
	}
	app := req.App
	c.sys.Apps = append(c.sys.Apps, &app)
	c.sys.Placement[app.Name] = req.ECU
	for i := range req.Interfaces {
		ifc := req.Interfaces[i]
		c.sys.Interfaces = append(c.sys.Interfaces, &ifc)
	}
	return d, nil
}

// AdmitAll admits a batch of requests atomically: either every request
// is admitted (in slice order, each seeing the effects of the previous
// ones) or none is — a mid-batch rejection restores the model to the
// exact pre-batch state. The returned decisions cover every request the
// batch evaluated, including the rejecting one; requests after the first
// rejection are not evaluated.
func (c *Controller) AdmitAll(reqs []Request) ([]Decision, error) {
	snap := c.Snapshot()
	out := make([]Decision, 0, len(reqs))
	for i, req := range reqs {
		d, err := c.Admit(req)
		out = append(out, d)
		if err != nil {
			c.Restore(snap)
			return out, fmt.Errorf("admission: batch request %d (%s): %w", i, req.App.Name, err)
		}
	}
	return out, nil
}

// Snapshot captures the mutable deployment state of the model — apps,
// interfaces and placement — so a transaction (AdmitAll, a reconfig
// recovery plan) can roll back to it. The hardware architecture (ECUs,
// networks, bindings) is not snapshotted: admission never mutates it.
type Snapshot struct {
	apps      []model.App
	ifaces    []model.Interface
	placement map[string]string
}

// Snapshot deep-copies the deployment state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		apps:      make([]model.App, len(c.sys.Apps)),
		ifaces:    make([]model.Interface, len(c.sys.Interfaces)),
		placement: make(map[string]string, len(c.sys.Placement)),
	}
	for i, a := range c.sys.Apps {
		s.apps[i] = *a
	}
	for i, ifc := range c.sys.Interfaces {
		s.ifaces[i] = *ifc
	}
	for app, ecu := range c.sys.Placement {
		s.placement[app] = ecu
	}
	return s
}

// Restore writes a snapshot back into the model, discarding every
// admission and removal since it was taken.
func (c *Controller) Restore(s Snapshot) {
	c.sys.Apps = make([]*model.App, len(s.apps))
	for i := range s.apps {
		a := s.apps[i]
		c.sys.Apps[i] = &a
	}
	c.sys.Interfaces = make([]*model.Interface, len(s.ifaces))
	for i := range s.ifaces {
		ifc := s.ifaces[i]
		c.sys.Interfaces[i] = &ifc
	}
	c.sys.Placement = make(map[string]string, len(s.placement))
	for app, ecu := range s.placement {
		c.sys.Placement[app] = ecu
	}
}

// Remove uninstalls an app and its interfaces from the model.
func (c *Controller) Remove(app string) error {
	if c.sys.App(app) == nil {
		return fmt.Errorf("admission: app %s not installed", app)
	}
	apps := c.sys.Apps[:0]
	for _, a := range c.sys.Apps {
		if a.Name != app {
			apps = append(apps, a)
		}
	}
	c.sys.Apps = apps
	ifaces := c.sys.Interfaces[:0]
	for _, i := range c.sys.Interfaces {
		if i.Owner != app {
			ifaces = append(ifaces, i)
		}
	}
	c.sys.Interfaces = ifaces
	delete(c.sys.Placement, app)
	return nil
}

// ecuTasks collects the deterministic tasks currently on an ECU.
func (c *Controller) ecuTasks(ecu *model.ECU) []sched.Task {
	var tasks []sched.Task
	for _, a := range c.sys.AppsOn(ecu.Name) {
		if a.Kind != model.Deterministic {
			continue
		}
		tasks = append(tasks, sched.Task{
			Name: a.Name, Period: a.Period,
			WCET: ecu.ScaledWCET(a.WCET), Deadline: a.Deadline, Jitter: a.Jitter,
		})
	}
	return tasks
}

// checkCAN runs worst-case frame response-time analysis over the bus's
// existing periodic frames plus the new interface.
func (c *Controller) checkCAN(d *Decision, net *model.Network, ifc model.Interface) {
	cfg := can.Config{BitsPerSecond: net.BitsPerSecond, WorstCaseStuffing: true}
	var frames []can.FrameSpec
	id := uint32(0x100)
	for _, existing := range c.sys.Interfaces {
		if existing.Network != net.Name || existing.Period <= 0 {
			continue
		}
		bytes := existing.PayloadBytes
		if bytes > can.MaxPayload {
			bytes = can.MaxPayload // middleware segments; model first frame
		}
		frames = append(frames, can.FrameSpec{
			ID: id, Period: existing.Period, Bytes: bytes,
			Deadline: existing.LatencyBound,
		})
		id += 0x10
	}
	newBytes := ifc.PayloadBytes
	if newBytes > can.MaxPayload {
		newBytes = can.MaxPayload
	}
	frames = append(frames, can.FrameSpec{
		ID: id, Period: ifc.Period, Bytes: newBytes, Deadline: ifc.LatencyBound,
	})
	if ifc.Period <= 0 {
		d.reject("interface %s: CAN admission needs a period", ifc.Name)
		return
	}
	u := can.BusUtilization(frames, cfg)
	d.BusLoadAfter[net.Name] = u
	if u > c.MaxBusLoad {
		d.reject("bus %s: load %.2f > %.2f", net.Name, u, c.MaxBusLoad)
		return
	}
	if _, ok, err := can.ResponseTimeAnalysis(frames, cfg); err != nil || !ok {
		d.reject("bus %s: frame set not schedulable (err=%v)", net.Name, err)
	}
}

// checkLoad runs the bandwidth test for switched/TDMA networks.
func (c *Controller) checkLoad(d *Decision, net *model.Network, ifc model.Interface) {
	load := ifc.NominalBitsPerSecond()
	for _, existing := range c.sys.Interfaces {
		if existing.Network == net.Name {
			load += existing.NominalBitsPerSecond()
		}
	}
	frac := load / float64(net.BitsPerSecond)
	d.BusLoadAfter[net.Name] = frac
	if frac > c.MaxBusLoad {
		d.reject("network %s: load %.2f > %.2f", net.Name, frac, c.MaxBusLoad)
	}
}
