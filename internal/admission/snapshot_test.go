package admission

import (
	"testing"

	"dynaplat/internal/model"
)

// stateJSON renders the full system model as deterministic JSON — the
// byte-identity oracle for the snapshot/rollback contracts.
func stateJSON(t *testing.T, sys *model.System) string {
	t.Helper()
	b, err := model.MarshalJSONSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// A mid-batch rejection must leave sys.Apps/sys.Interfaces/Placement
// byte-identical to the pre-batch state (the AdmitAll atomicity
// contract the reconfig orchestrator's transactions build on).
func TestAdmitAllMidBatchRejectionRollsBack(t *testing.T) {
	sys := vehicle()
	c := NewController(sys)
	before := stateJSON(t, sys)

	reqs := []Request{
		daReq("ok1", ms(20), ms(2), 128),
		{App: model.App{Name: "ok2", Kind: model.NonDeterministic, MemoryKB: 64},
			ECU: "CPM",
			Interfaces: []model.Interface{{
				Name: "ok2.out", Owner: "ok2", Paradigm: model.Event,
				PayloadBytes: 8, Period: ms(20), LatencyBound: ms(10), Network: "Body",
			}}},
		daReq("hog", ms(10), ms(18), 64), // 9ms scaled / 10ms + base 0.2 → rejected
		daReq("never", ms(50), ms(1), 32),
	}
	ds, err := c.AdmitAll(reqs)
	if err == nil {
		t.Fatal("over-capacity batch admitted")
	}
	if len(ds) != 3 {
		t.Fatalf("decisions = %d, want 3 (stop at first rejection)", len(ds))
	}
	if !ds[0].Admitted || !ds[1].Admitted || ds[2].Admitted {
		t.Fatalf("decision shape wrong: %+v", ds)
	}
	if after := stateJSON(t, sys); after != before {
		t.Errorf("mid-batch rejection did not roll back:\n--- before\n%s\n--- after\n%s", before, after)
	}
}

func TestAdmitAllSuccessAppliesEveryRequest(t *testing.T) {
	sys := vehicle()
	c := NewController(sys)
	ds, err := c.AdmitAll([]Request{
		daReq("a", ms(20), ms(2), 64),
		daReq("b", ms(20), ms(2), 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || !ds[0].Admitted || !ds[1].Admitted {
		t.Fatalf("decisions: %+v", ds)
	}
	if sys.App("a") == nil || sys.App("b") == nil ||
		sys.Placement["a"] != "CPM" || sys.Placement["b"] != "CPM" {
		t.Error("batch not applied")
	}
	// The second request must have seen the first: a third identical app
	// is still admissible, but the utilization accumulated.
	if ds[1].CPUUtilAfter <= ds[0].CPUUtilAfter {
		t.Errorf("batch requests did not compose: %v then %v",
			ds[0].CPUUtilAfter, ds[1].CPUUtilAfter)
	}
}

func TestSnapshotRestoreIsDeep(t *testing.T) {
	sys := vehicle()
	c := NewController(sys)
	snap := c.Snapshot()
	before := stateJSON(t, sys)

	// Mutate through every state dimension: add, remove, and mutate a
	// surviving app in place (Restore must undo even in-place edits).
	if _, err := c.Admit(daReq("tmp", ms(20), ms(2), 64)); err != nil {
		t.Fatal(err)
	}
	sys.App("Base").MemoryKB = 1
	sys.Interfaces[0].PayloadBytes = 999
	sys.Placement["Base"] = "Head"

	c.Restore(snap)
	if after := stateJSON(t, sys); after != before {
		t.Errorf("restore not byte-identical:\n--- before\n%s\n--- after\n%s", before, after)
	}
}

// Admit → Remove → Admit must be a fixed point: re-admitting the same
// request after removal yields a byte-identical model (slice positions,
// placement, decisions — nothing drifts across the round trip).
func TestAdmitRemoveAdmitRoundTripDeterministic(t *testing.T) {
	sys := vehicle()
	c := NewController(sys)
	req := daReq("rt", ms(20), ms(2), 128)
	req.Interfaces = []model.Interface{{
		Name: "rt.out", Owner: "rt", Paradigm: model.Event,
		PayloadBytes: 8, Period: ms(20), LatencyBound: ms(10), Network: "Body",
	}}
	d1, err := c.Admit(req)
	if err != nil {
		t.Fatal(err)
	}
	first := stateJSON(t, sys)
	if err := c.Remove("rt"); err != nil {
		t.Fatal(err)
	}
	d2, err := c.Admit(req)
	if err != nil {
		t.Fatal(err)
	}
	second := stateJSON(t, sys)
	if first != second {
		t.Errorf("round trip not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if d1.CPUUtilAfter != d2.CPUUtilAfter || d1.MemAfterKB != d2.MemAfterKB {
		t.Errorf("decisions drifted: %+v vs %+v", d1, d2)
	}
}
