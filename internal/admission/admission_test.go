package admission

import (
	"strings"
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func vehicle() *model.System {
	return model.MustParse(`
system V
ecu CPM cpu=200MHz mem=2MB mmu crypto gpu os=rtos cost=30
ecu Head cpu=1GHz mem=64MB mmu os=posix cost=25
network Body type=can rate=500kbps attach=CPM,Head
network BB type=ethernet rate=100Mbps attach=CPM,Head
app Base kind=da asil=C period=10ms wcet=4ms mem=256KB on=CPM
iface BaseStatus owner=Base paradigm=event payload=8B period=10ms net=Body
`)
}

func daReq(name string, period, wcet sim.Duration, memKB int) Request {
	return Request{
		App: model.App{Name: name, Kind: model.Deterministic, ASIL: model.ASILC,
			Period: period, WCET: wcet, Deadline: period, MemoryKB: memKB},
		ECU: "CPM",
	}
}

func TestAdmitFits(t *testing.T) {
	c := NewController(vehicle())
	d, err := c.Admit(daReq("New", ms(20), ms(2), 128))
	if err != nil || !d.Admitted {
		t.Fatalf("admit: %+v %v", d, err)
	}
	// The model now contains the app.
	if c.sys.App("New") == nil || c.sys.Placement["New"] != "CPM" {
		t.Error("model not updated")
	}
	// Base(4ms@200MHz→2ms /10ms = 0.2) + New(2→1ms /20ms = 0.05)
	if d.CPUUtilAfter < 0.24 || d.CPUUtilAfter > 0.26 {
		t.Errorf("util = %v", d.CPUUtilAfter)
	}
}

func TestRejectCPUOverload(t *testing.T) {
	c := NewController(vehicle())
	d := c.Check(daReq("Hog", ms(10), ms(18), 64)) // 18ms@200MHz → 9ms/10ms + base 0.2
	if d.Admitted {
		t.Fatalf("overload admitted: %+v", d)
	}
	found := false
	for _, r := range d.Reasons {
		if strings.Contains(r, "CPU") || strings.Contains(r, "utilization") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons = %v", d.Reasons)
	}
	// Check must not mutate.
	if c.sys.App("Hog") != nil {
		t.Error("Check mutated the model")
	}
}

func TestRejectMemory(t *testing.T) {
	c := NewController(vehicle())
	d := c.Check(daReq("Big", ms(100), ms(1), 4096))
	if d.Admitted {
		t.Fatal("memory overcommit admitted")
	}
}

func TestRejectDAOnPosix(t *testing.T) {
	c := NewController(vehicle())
	req := daReq("X", ms(10), ms(1), 64)
	req.ECU = "Head"
	if d := c.Check(req); d.Admitted {
		t.Fatal("DA on POSIX admitted")
	}
}

func TestRejectUnknownECUAndDuplicate(t *testing.T) {
	c := NewController(vehicle())
	req := daReq("X", ms(10), ms(1), 64)
	req.ECU = "Ghost"
	if d := c.Check(req); d.Admitted {
		t.Fatal("unknown ECU admitted")
	}
	dup := daReq("Base", ms(10), ms(1), 64)
	if d := c.Check(dup); d.Admitted {
		t.Fatal("duplicate app admitted")
	}
}

func TestHardwareRequirements(t *testing.T) {
	c := NewController(vehicle())
	req := daReq("AI", ms(50), ms(5), 128)
	req.App.NeedsGPU = true
	if d := c.Check(req); !d.Admitted {
		t.Fatalf("GPU app rejected on GPU ECU: %v", d.Reasons)
	}
	req.ECU = "Head" // no GPU there (and POSIX)
	req.App.Kind = model.NonDeterministic
	if d := c.Check(req); d.Admitted {
		t.Fatal("GPU app admitted on GPU-less ECU")
	}
}

func TestCANInterfaceAdmission(t *testing.T) {
	c := NewController(vehicle())
	req := daReq("Sensor", ms(20), ms(1), 64)
	req.Interfaces = []model.Interface{{
		Name: "SensorData", Owner: "Sensor", Paradigm: model.Event,
		PayloadBytes: 8, Period: ms(20), LatencyBound: ms(5), Network: "Body",
	}}
	d, err := c.Admit(req)
	if err != nil || !d.Admitted {
		t.Fatalf("CAN interface rejected: %+v %v", d, err)
	}
	if d.BusLoadAfter["Body"] <= 0 {
		t.Error("bus load not reported")
	}
}

func TestCANOverloadRejected(t *testing.T) {
	c := NewController(vehicle())
	req := daReq("Chatty", ms(1), 100*sim.Microsecond, 64)
	req.Interfaces = []model.Interface{{
		Name: "Chat", Owner: "Chatty", Paradigm: model.Event,
		PayloadBytes: 8, Period: 250 * sim.Microsecond, Network: "Body",
	}}
	// 8B frame = 135 stuffed bits = 270us at 500k; every 250us → >100%.
	d := c.Check(req)
	if d.Admitted {
		t.Fatalf("overloaded CAN admitted: %+v", d)
	}
}

func TestCANNeedsPeriod(t *testing.T) {
	c := NewController(vehicle())
	req := daReq("S", ms(10), ms(1), 64)
	req.Interfaces = []model.Interface{{
		Name: "Aperiodic", Owner: "S", PayloadBytes: 8, Network: "Body",
	}}
	if d := c.Check(req); d.Admitted {
		t.Fatal("aperiodic CAN interface admitted")
	}
}

func TestEthernetLoadAdmission(t *testing.T) {
	c := NewController(vehicle())
	req := Request{
		App: model.App{Name: "Cam", Kind: model.NonDeterministic, MemoryKB: 64},
		ECU: "CPM",
		Interfaces: []model.Interface{{
			Name: "Video", Owner: "Cam", Paradigm: model.Stream,
			PayloadBytes: 1400, BitsPerSecond: 60_000_000, Network: "BB",
		}},
	}
	d, err := c.Admit(req)
	if err != nil || !d.Admitted {
		t.Fatalf("60Mbps stream on 100Mbps rejected: %+v %v", d, err)
	}
	// A second 60Mbps stream busts the 75% cap.
	req2 := req
	req2.App.Name = "Cam2"
	req2.Interfaces = []model.Interface{{
		Name: "Video2", Owner: "Cam2", Paradigm: model.Stream,
		PayloadBytes: 1400, BitsPerSecond: 60_000_000, Network: "BB",
	}}
	if d := c.Check(req2); d.Admitted {
		t.Fatalf("120Mbps on 100Mbps admitted: %+v", d)
	}
}

func TestUnattachedNetworkRejected(t *testing.T) {
	sys := vehicle()
	sys.Network("Body").Attached = []string{"Head"} // CPM no longer on Body
	c := NewController(sys)
	req := daReq("S", ms(20), ms(1), 64)
	req.Interfaces = []model.Interface{{
		Name: "X", Owner: "S", PayloadBytes: 8, Period: ms(20), Network: "Body",
	}}
	if d := c.Check(req); d.Admitted {
		t.Fatal("unreachable network admitted")
	}
}

func TestRemoveFreesCapacity(t *testing.T) {
	c := NewController(vehicle())
	if _, err := c.Admit(daReq("A", ms(10), ms(10), 64)); err != nil { // 5ms scaled/10ms
		t.Fatal(err)
	}
	// Now nearly full: base 0.2 + A 0.5 = 0.7; a 0.5 app won't fit.
	if d := c.Check(daReq("B", ms(10), ms(10), 64)); d.Admitted {
		t.Fatal("over-capacity admitted")
	}
	if err := c.Remove("A"); err != nil {
		t.Fatal(err)
	}
	if d := c.Check(daReq("B", ms(10), ms(10), 64)); !d.Admitted {
		t.Fatalf("freed capacity not reusable: %v", d.Reasons)
	}
	if err := c.Remove("Ghost"); err == nil {
		t.Error("removing unknown app succeeded")
	}
}
