// Package workload generates seeded synthetic application sets and
// systems modeled on the paper's domain examples: motor/suspension
// control loops (deterministic, kHz-range periods), ADAS functions
// (deterministic, heavier, GPU-hungry) and infotainment (non-
// deterministic, bursty). It replaces the production traces a vehicle
// OEM would use, which are not available (see DESIGN.md substitutions).
package workload

import (
	"fmt"
	"math"

	"dynaplat/internal/model"
	"dynaplat/internal/sched"
	"dynaplat/internal/sim"
)

// controlPeriods are typical control-loop periods (Section 3.1: "fixed
// activation intervals").
var controlPeriods = []sim.Duration{
	sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond,
	10 * sim.Millisecond, 20 * sim.Millisecond,
}

// adasPeriods are camera/radar-pipeline periods.
var adasPeriods = []sim.Duration{
	20 * sim.Millisecond, 33 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond,
}

// ControlTasks generates n motor/suspension-style deterministic tasks
// with total utilization targetU, WCETs stated at the reference clock.
func ControlTasks(rng *sim.RNG, n int, targetU float64) []sched.Task {
	if n <= 0 {
		return nil
	}
	shares := uunifast(rng, n, targetU)
	tasks := make([]sched.Task, n)
	for i := range tasks {
		p := controlPeriods[rng.Intn(len(controlPeriods))]
		wcet := sim.Duration(float64(p) * shares[i])
		if wcet < sim.Microsecond {
			wcet = sim.Microsecond
		}
		tasks[i] = sched.Task{
			Name:   fmt.Sprintf("ctl%02d", i),
			Period: p, WCET: wcet, Deadline: p,
		}
	}
	return tasks
}

// uunifast draws n utilization shares summing to u (the standard unbiased
// task-set generator from the real-time literature).
func uunifast(rng *sim.RNG, n int, u float64) []float64 {
	shares := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		shares[i] = sum - next
		sum = next
	}
	shares[n-1] = sum
	return shares
}

// ControlApps generates deterministic model apps with the given total
// utilization and ASIL mix.
func ControlApps(rng *sim.RNG, n int, targetU float64) []*model.App {
	tasks := ControlTasks(rng, n, targetU)
	asils := []model.ASIL{model.ASILB, model.ASILC, model.ASILD}
	apps := make([]*model.App, len(tasks))
	for i, t := range tasks {
		apps[i] = &model.App{
			Name: t.Name, Kind: model.Deterministic,
			ASIL:   asils[rng.Intn(len(asils))],
			Period: t.Period, WCET: t.WCET, Deadline: t.Deadline,
			Jitter:   t.Period / 4,
			MemoryKB: rng.Range(32, 256),
			Version:  1, Replicas: 1,
		}
	}
	return apps
}

// ADASApps generates ADAS-style deterministic apps (heavy WCET, some
// needing a GPU).
func ADASApps(rng *sim.RNG, n int) []*model.App {
	apps := make([]*model.App, n)
	for i := range apps {
		p := adasPeriods[rng.Intn(len(adasPeriods))]
		apps[i] = &model.App{
			Name: fmt.Sprintf("adas%02d", i), Kind: model.Deterministic,
			ASIL:   model.ASILD,
			Period: p, WCET: sim.Duration(float64(p) * (0.1 + 0.2*rng.Float64())),
			Deadline: p, Jitter: p / 2,
			MemoryKB: rng.Range(512, 4096),
			NeedsGPU: rng.Bool(0.5),
			Version:  1, Replicas: 1,
		}
	}
	return apps
}

// InfotainmentApps generates NDA apps.
func InfotainmentApps(rng *sim.RNG, n int) []*model.App {
	apps := make([]*model.App, n)
	for i := range apps {
		apps[i] = &model.App{
			Name: fmt.Sprintf("info%02d", i), Kind: model.NonDeterministic,
			ASIL: model.QM, MemoryKB: rng.Range(1024, 16384),
			Version: 1, Replicas: 1,
		}
	}
	return apps
}

// BurstSource submits bursty NDA jobs: exponential inter-arrivals with
// the given mean, uniformly sized jobs. submit is called for each job;
// stop it with the returned cancel func.
type BurstSource struct {
	stopped bool
	// ref is the pending arrival timer. Stop cancels it so a stopped
	// source leaves no event behind in the kernel queue: a dropped ref
	// here is the PR 3 leak shape (one stale event firing into a dead
	// stopped-check), which dynalint's droppedref check now rejects.
	ref sim.EventRef
}

// Start launches the source on the kernel.
func (b *BurstSource) Start(k *sim.Kernel, rng *sim.RNG,
	meanInterarrival, jobLo, jobHi sim.Duration, submit func(sim.Duration)) {
	var next func()
	next = func() {
		if b.stopped {
			return
		}
		submit(rng.DurationRange(jobLo, jobHi))
		gap := sim.Duration(rng.Exponential(float64(meanInterarrival)))
		if gap < sim.Microsecond {
			gap = sim.Microsecond
		}
		b.ref = k.After(gap, next)
	}
	b.ref = k.After(0, next)
}

// Stop halts the source after the current event and cancels the pending
// arrival timer.
func (b *BurstSource) Stop() {
	b.stopped = true
	b.ref.Cancel()
}

// Fleet builds a complete synthetic vehicle system: nECU RTOS computing
// platforms plus one POSIX head unit on a TSN backbone, carrying nCtl
// control apps (total utilization uCtl across the fleet), nADAS ADAS
// apps and nInfo infotainment apps. Apps are left unplaced: feed the
// result to the dse package.
func Fleet(rng *sim.RNG, nECU, nCtl, nADAS, nInfo int, uCtl float64) *model.System {
	sys := model.NewSystem("fleet")
	var attach []string
	for i := 0; i < nECU; i++ {
		name := fmt.Sprintf("cpm%d", i)
		sys.ECUs = append(sys.ECUs, &model.ECU{
			Name: name, CPUMHz: 200 + 200*rng.Intn(3), MemoryKB: 8 * 1024,
			HasMMU: true, HasCryptoHW: i == 0, HasGPU: i == nECU-1,
			OS: model.OSRTOS, Cost: 15 + 10*rng.Intn(3),
		})
		attach = append(attach, name)
	}
	sys.ECUs = append(sys.ECUs, &model.ECU{
		Name: "head", CPUMHz: 1200, MemoryKB: 256 * 1024,
		HasMMU: true, OS: model.OSPOSIX, Cost: 30,
	})
	attach = append(attach, "head")
	sys.Networks = append(sys.Networks, &model.Network{
		Name: "backbone", Kind: model.NetEthernet,
		BitsPerSecond: 100_000_000, Attached: attach,
	})
	sys.Apps = append(sys.Apps, ControlApps(rng, nCtl, uCtl)...)
	sys.Apps = append(sys.Apps, ADASApps(rng, nADAS)...)
	info := InfotainmentApps(rng, nInfo)
	for _, a := range info {
		a.Candidates = []string{"head"}
	}
	sys.Apps = append(sys.Apps, info...)
	// Every control app publishes a status event on the backbone; the
	// head unit's first infotainment app subscribes (the dashboard).
	for _, a := range sys.Apps {
		if a.Kind != model.Deterministic {
			continue
		}
		sys.Interfaces = append(sys.Interfaces, &model.Interface{
			Name: a.Name + ".status", Owner: a.Name, Paradigm: model.Event,
			PayloadBytes: 16, Period: a.Period,
			LatencyBound: a.Period, Network: "backbone", Version: 1,
		})
		if nInfo > 0 {
			sys.Bindings = append(sys.Bindings, model.Binding{
				Client: info[0].Name, Interface: a.Name + ".status",
			})
		}
	}
	return sys
}
