package workload

import (
	"testing"
	"testing/quick"

	"dynaplat/internal/model"
	"dynaplat/internal/sched"
	"dynaplat/internal/sim"
)

func TestControlTasksUtilization(t *testing.T) {
	rng := sim.NewRNG(1)
	tasks := ControlTasks(rng, 10, 0.6)
	if len(tasks) != 10 {
		t.Fatalf("n = %d", len(tasks))
	}
	if err := sched.ValidateSet(tasks); err != nil {
		t.Fatal(err)
	}
	u := sched.TotalUtilization(tasks)
	if u < 0.5 || u > 0.65 {
		t.Errorf("utilization = %v, want ~0.6 (WCET clamping may shave a little)", u)
	}
}

func TestControlTasksUtilizationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8%20) + 1
		tasks := ControlTasks(sim.NewRNG(seed), n, 0.5)
		u := sched.TotalUtilization(tasks)
		// Sum of uunifast shares = 0.5, modulo 1µs WCET clamping upward.
		return u > 0.3 && u < 0.7 && sched.ValidateSet(tasks) == nil
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestControlTasksEmpty(t *testing.T) {
	if got := ControlTasks(sim.NewRNG(1), 0, 0.5); got != nil {
		t.Errorf("n=0 → %v", got)
	}
}

func TestAppGenerators(t *testing.T) {
	rng := sim.NewRNG(2)
	ctl := ControlApps(rng, 5, 0.4)
	for _, a := range ctl {
		if a.Kind != model.Deterministic || a.Period <= 0 || a.WCET <= 0 {
			t.Errorf("bad control app %+v", a)
		}
	}
	adas := ADASApps(rng, 5)
	gpu := false
	for _, a := range adas {
		if a.Kind != model.Deterministic || a.ASIL != model.ASILD {
			t.Errorf("bad adas app %+v", a)
		}
		gpu = gpu || a.NeedsGPU
	}
	info := InfotainmentApps(rng, 3)
	for _, a := range info {
		if a.Kind != model.NonDeterministic || a.ASIL != model.QM {
			t.Errorf("bad info app %+v", a)
		}
	}
}

func TestFleetValidates(t *testing.T) {
	rng := sim.NewRNG(3)
	sys := Fleet(rng, 3, 8, 2, 2, 0.8)
	// Unplaced systems must pass validation (placement rules skipped).
	rep := model.Validate(sys)
	if !rep.OK() {
		t.Fatalf("fleet invalid: %v", rep.Errors())
	}
	if len(sys.ECUs) != 4 { // 3 CPMs + head
		t.Errorf("ecus = %d", len(sys.ECUs))
	}
	if len(sys.Apps) != 12 {
		t.Errorf("apps = %d", len(sys.Apps))
	}
	// Deterministic apps publish status interfaces.
	if len(sys.Interfaces) != 10 {
		t.Errorf("interfaces = %d, want 10", len(sys.Interfaces))
	}
	if len(sys.Bindings) != 10 {
		t.Errorf("bindings = %d", len(sys.Bindings))
	}
	// Determinism: same seed, same fleet.
	sys2 := Fleet(sim.NewRNG(3), 3, 8, 2, 2, 0.8)
	if model.Format(sys) != model.Format(sys2) {
		t.Error("fleet generation not deterministic")
	}
}

func TestBurstSource(t *testing.T) {
	k := sim.NewKernel(4)
	rng := k.RNG().Split()
	var jobs []sim.Duration
	src := &BurstSource{}
	src.Start(k, rng, 10*sim.Millisecond, sim.Millisecond, 5*sim.Millisecond,
		func(d sim.Duration) { jobs = append(jobs, d) })
	k.RunUntil(sim.Time(sim.Second))
	if len(jobs) < 50 || len(jobs) > 200 {
		t.Errorf("jobs = %d, want ~100 (1s / 10ms)", len(jobs))
	}
	for _, j := range jobs {
		if j < sim.Millisecond || j > 5*sim.Millisecond {
			t.Errorf("job size %v out of range", j)
		}
	}
	src.Stop()
	n := len(jobs)
	k.RunUntil(sim.Time(2 * sim.Second))
	if len(jobs) != n {
		t.Error("source kept producing after Stop")
	}
}
