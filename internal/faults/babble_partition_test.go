package faults

import (
	"testing"

	"dynaplat/internal/can"
	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// Regression tests for the partition × babbling-idiot compose order.
// Pre-fix, the babble ticker counted BabbleFrames before handing the
// frame to Send, so a babbler on a partitioned link still "injected"
// frames in the accounting even though the partition blocked every one
// of them — injected/blocked totals were inconsistent and campaign
// reports overstated the attack traffic that actually hit the medium.

type babbleRig struct {
	k   *sim.Kernel
	bus *can.Bus
	nf  *NetFaults
}

func newBabbleRig(seed uint64) *babbleRig {
	k := sim.NewKernel(seed)
	bus := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000})
	nf := WrapNetwork(k, bus, NetConfig{})
	return &babbleRig{k: k, bus: bus, nf: nf}
}

// A babbler whose station is partitioned before it starts must be fully
// contained: nothing injected, every tick blocked, the medium idle.
func TestBabbleOnPartitionedStationFullyContained(t *testing.T) {
	r := newBabbleRig(7)
	r.nf.Partition("rogue")
	r.nf.StartBabble("rogue", 0x7FF, network.ClassBulk, 8, ms(1))
	r.k.RunUntil(sim.Time(50 * sim.Millisecond))
	if r.nf.BabbleFrames != 0 {
		t.Errorf("BabbleFrames = %d, want 0 (partitioned babbler counted as injected)", r.nf.BabbleFrames)
	}
	if r.nf.FramesBlocked != 51 { // ticks at 0..50ms inclusive
		t.Errorf("FramesBlocked = %d, want 51", r.nf.FramesBlocked)
	}
	if r.bus.FramesSent != 0 {
		t.Errorf("bus FramesSent = %d, want 0 (babble leaked through partition)", r.bus.FramesSent)
	}
}

// Partitioning mid-babble freezes both the injected count and the
// medium; healing resumes injection. The schedule is deterministic per
// seed: two identical runs agree on every counter.
func TestBabblePartitionMidRunAndHeal(t *testing.T) {
	run := func(seed uint64) (injected, blocked, sent int64) {
		r := newBabbleRig(seed)
		r.nf.StartBabble("rogue", 0x7FF, network.ClassBulk, 8, ms(1))
		r.k.RunUntil(sim.Time(20 * sim.Millisecond))
		r.nf.Partition("rogue")
		preInjected, preSent := r.nf.BabbleFrames, r.bus.FramesSent
		if preInjected != 21 { // ticks at 0..20ms inclusive
			t.Fatalf("BabbleFrames before partition = %d, want 21", preInjected)
		}
		r.k.RunUntil(sim.Time(60 * sim.Millisecond))
		if r.nf.BabbleFrames != preInjected {
			t.Errorf("BabbleFrames grew to %d during partition, want frozen at %d",
				r.nf.BabbleFrames, preInjected)
		}
		if r.bus.FramesSent != preSent {
			t.Errorf("bus FramesSent grew to %d during partition, want frozen at %d",
				r.bus.FramesSent, preSent)
		}
		// 40 blocked babble ticks (21..60ms) plus the 20ms frame that was
		// still on the bus at partition time: a partitioned station also
		// stops *hearing* in-flight traffic, so its delivery is blocked too.
		if r.nf.FramesBlocked != 41 {
			t.Errorf("FramesBlocked = %d, want 41 (40 ticks + 1 in-flight rx)", r.nf.FramesBlocked)
		}
		// Heal: the babbler was contained, not killed — it resumes.
		r.nf.Heal("rogue")
		r.k.RunUntil(sim.Time(70 * sim.Millisecond))
		if r.nf.BabbleFrames != preInjected+10 {
			t.Errorf("BabbleFrames after heal = %d, want %d", r.nf.BabbleFrames, preInjected+10)
		}
		return r.nf.BabbleFrames, r.nf.FramesBlocked, r.bus.FramesSent
	}
	i1, b1, s1 := run(42)
	i2, b2, s2 := run(42)
	if i1 != i2 || b1 != b2 || s1 != s2 {
		t.Errorf("non-deterministic babble run: (%d,%d,%d) vs (%d,%d,%d)",
			i1, b1, s1, i2, b2, s2)
	}
}
