package faults

import (
	"testing"

	"dynaplat/internal/sim"
)

// The per-event completion hooks fire at the exact virtual instants of
// the schedule — one OnInject per applied activation (at Injection.At),
// one OnRepair per completed repair (at Injection.RepairAt) — so tests
// and E22 can anchor recovery-time measurement without scraping traces.
func TestCampaignEventHooksAnchorSchedule(t *testing.T) {
	k := sim.NewKernel(7)
	c := NewCampaign(k, DefaultSpec(0xC0))
	for _, n := range []string{"cpmA", "cpmB", "cpmC"} {
		c.AddTarget(n, &fakeTarget{name: n})
	}
	type ev struct {
		at     sim.Time
		target string
		kind   Kind
	}
	var injects, repairs []ev
	c.OnInject = func(inj Injection) {
		injects = append(injects, ev{at: k.Now(), target: inj.Target, kind: inj.Kind})
		if k.Now() != inj.At {
			t.Errorf("OnInject at %v, scheduled %v", k.Now(), inj.At)
		}
	}
	c.OnRepair = func(inj Injection) {
		repairs = append(repairs, ev{at: k.Now(), target: inj.Target, kind: inj.Kind})
		if k.Now() != inj.RepairAt {
			t.Errorf("OnRepair at %v, scheduled %v", k.Now(), inj.RepairAt)
		}
	}
	c.Start()
	k.Run()

	if len(injects) != len(c.Schedule) {
		t.Fatalf("OnInject fired %d times for %d scheduled activations",
			len(injects), len(c.Schedule))
	}
	wantRepairs := 0
	for _, inj := range c.Schedule {
		if inj.RepairAt > 0 {
			wantRepairs++
		}
	}
	if len(repairs) != wantRepairs {
		t.Fatalf("OnRepair fired %d times, want %d", len(repairs), wantRepairs)
	}
	// Hook order matches the campaign log's phase records exactly.
	hi, ri := 0, 0
	for _, r := range c.Log {
		switch r.Phase {
		case PhaseInject:
			if injects[hi].target != r.Target || injects[hi].at != r.At {
				t.Fatalf("inject hook %d = %+v, log record %+v", hi, injects[hi], r)
			}
			hi++
		case PhaseRepair:
			if repairs[ri].target != r.Target || repairs[ri].at != r.At {
				t.Fatalf("repair hook %d = %+v, log record %+v", ri, repairs[ri], r)
			}
			ri++
		}
	}
}

// Installing hooks must not change the campaign's schedule or outcomes:
// the hooks observe, they do not draw randomness or schedule events.
func TestCampaignHooksDoNotPerturbSchedule(t *testing.T) {
	run := func(hooked bool) string {
		k := sim.NewKernel(11)
		c := NewCampaign(k, DefaultSpec(0xC1))
		for _, n := range []string{"a", "b"} {
			c.AddTarget(n, &fakeTarget{name: n})
		}
		if hooked {
			c.OnInject = func(Injection) {}
			c.OnRepair = func(Injection) {}
		}
		c.Start()
		k.Run()
		out := ""
		for _, r := range c.Log {
			out += r.String() + "\n"
		}
		return out
	}
	if plain, hooked := run(false), run(true); plain != hooked {
		t.Errorf("hooks perturbed the campaign:\n--- plain\n%s\n--- hooked\n%s", plain, hooked)
	}
}
