package faults

import (
	"fmt"
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

// Node must satisfy the campaign's control surface.
var _ Target = (*platform.Node)(nil)

// fakeTarget records the calls a campaign makes.
type fakeTarget struct {
	name              string
	crashes, restores int
	hangs, slowdowns  int
	hung              bool
	slow              float64
}

func (f *fakeTarget) Crash() []string {
	f.crashes++
	return []string{f.name + ".app"}
}
func (f *fakeTarget) Restore([]string) { f.restores++ }
func (f *fakeTarget) SetHung(h bool) {
	f.hung = h
	if h {
		f.hangs++
	}
}
func (f *fakeTarget) SetSlowdown(factor float64) {
	f.slow = factor
	if factor > 1 {
		f.slowdowns++
	}
}

// runCampaign builds a three-target campaign on a fresh kernel, runs it
// to completion and returns its rendered schedule and log.
func runCampaign(seed uint64, perturbKernelRNG bool) (schedule, log string, injections int) {
	k := sim.NewKernel(99)
	if perturbKernelRNG {
		// Unrelated subsystems drawing from the kernel RNG must not
		// shift the campaign's schedule.
		t := k.Every(0, ms(1), func() { k.RNG().Float64() })
		defer t.Stop()
	}
	c := NewCampaign(k, DefaultSpec(seed))
	for _, n := range []string{"cpmA", "cpmB", "cpmC"} {
		c.AddTarget(n, &fakeTarget{name: n})
	}
	c.Start()
	k.RunUntil(sim.Time(15 * sim.Second))
	return fmt.Sprintf("%+v", c.Schedule), fmt.Sprintf("%+v", c.Log), c.Injections()
}

func TestCampaignDeterministicPerSeed(t *testing.T) {
	s1, l1, n1 := runCampaign(42, false)
	s2, l2, n2 := runCampaign(42, true) // kernel-RNG noise must not matter
	if n1 == 0 {
		t.Fatal("campaign scheduled no injections")
	}
	if s1 != s2 {
		t.Errorf("schedules diverge per seed:\n%s\nvs\n%s", s1, s2)
	}
	if l1 != l2 {
		t.Errorf("logs diverge per seed:\n%s\nvs\n%s", l1, l2)
	}
	if n1 != n2 {
		t.Errorf("injections %d vs %d", n1, n2)
	}
	s3, _, _ := runCampaign(43, false)
	if s1 == s3 {
		t.Error("different seeds produced identical schedules")
	}
}

func TestCampaignRepairsAndBusyTargets(t *testing.T) {
	k := sim.NewKernel(7)
	spec := DefaultSpec(11)
	spec.MTBF = 200 * sim.Millisecond // dense: forces busy-target skips
	c := NewCampaign(k, spec)
	tgt := &fakeTarget{name: "solo"}
	c.AddTarget("solo", tgt)
	c.Start()
	k.RunUntil(sim.Time(20 * sim.Second))
	if c.Injections() == 0 {
		t.Fatal("no injections")
	}
	if c.Skipped == 0 {
		t.Error("dense single-target campaign skipped nothing")
	}
	// Every crash/reboot must have been repaired by the run's end.
	if tgt.crashes != tgt.restores {
		t.Errorf("crashes %d != restores %d", tgt.crashes, tgt.restores)
	}
	if tgt.hung {
		t.Error("target left hung after horizon + repairs")
	}
	if c.ActiveFaults() != 0 {
		t.Errorf("active faults at end = %d", c.ActiveFaults())
	}
	// Log pairs every inject with a repair (no permanent faults in the
	// default spec).
	inj, rep := 0, 0
	for _, r := range c.Log {
		if r.Phase == PhaseInject {
			inj++
		} else {
			rep++
		}
	}
	if inj != rep {
		t.Errorf("log injects %d != repairs %d", inj, rep)
	}
}

// campaignPlatform builds two ECUs each running one 10 ms ASIL-D task.
func campaignPlatform(t *testing.T, k *sim.Kernel) *platform.Platform {
	t.Helper()
	p := platform.New(k, nil)
	for _, name := range []string{"cpmA", "cpmB"} {
		node, err := p.AddNode(model.ECU{Name: name, CPUMHz: model.ReferenceMHz,
			MemoryKB: 1024, HasMMU: true, OS: model.OSRTOS}, platform.ModeIsolated, ms(1)/2)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := node.Install(model.App{Name: "task@" + name,
			Kind: model.Deterministic, ASIL: model.ASILD,
			Period: ms(10), WCET: ms(2), Deadline: ms(10), MemoryKB: 64},
			platform.Behavior{})
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestCampaignDrivesPlatformNodes(t *testing.T) {
	k := sim.NewKernel(3)
	p := campaignPlatform(t, k)
	spec := Spec{
		Seed:       5,
		Horizon:    3 * sim.Second,
		MTBF:       300 * sim.Millisecond,
		RepairMean: 100 * sim.Millisecond,
		Weights:    Weights{Crash: 1},
	}
	c := NewCampaign(k, spec)
	for _, ecu := range p.Nodes() {
		c.AddTarget(ecu, p.Node(ecu))
	}
	c.Start()
	k.RunUntil(sim.Time(10 * sim.Second))
	if c.Injections() < 3 {
		t.Fatalf("only %d injections", c.Injections())
	}
	// After horizon + repair tail, every node is healthy and every app
	// was restarted by its repair.
	for _, ecu := range p.Nodes() {
		node := p.Node(ecu)
		if node.Health() != platform.HealthUp {
			t.Errorf("node %s health = %v at end", ecu, node.Health())
		}
		for _, app := range node.Apps() {
			if node.App(app).State != platform.StateRunning {
				t.Errorf("app %s not restarted after repair", app)
			}
		}
	}
}

func TestHangPausesExecutionAndResumes(t *testing.T) {
	k := sim.NewKernel(1)
	p := campaignPlatform(t, k)
	node := p.Node("cpmA")
	inst := node.App("task@cpmA")
	k.At(sim.Time(ms(100)), func() { node.SetHung(true) })
	k.At(sim.Time(ms(200)), func() { node.SetHung(false) })
	k.RunUntil(sim.Time(ms(300)))
	// 30 periods; ~10 of them hung. App state still reads running (the
	// hang holds resources), but ~10 activations are missing.
	if inst.State != platform.StateRunning {
		t.Fatalf("state = %v (hang must not stop the app)", inst.State)
	}
	if inst.Activations < 18 || inst.Activations > 22 {
		t.Errorf("activations = %d, want ~20 (30 minus hung window)", inst.Activations)
	}
}

func TestSlowdownBreaksDeadlines(t *testing.T) {
	k := sim.NewKernel(1)
	p := campaignPlatform(t, k)
	node := p.Node("cpmA")
	inst := node.App("task@cpmA")
	k.RunUntil(sim.Time(ms(100)))
	if inst.Misses != 0 {
		t.Fatalf("misses before slowdown = %d", inst.Misses)
	}
	node.SetSlowdown(10) // 2 ms WCET -> 20 ms > 10 ms deadline
	k.RunUntil(sim.Time(ms(200)))
	if inst.Misses == 0 {
		t.Error("x10 slowdown produced no deadline misses")
	}
	node.SetSlowdown(1)
	// The backlog accumulated during the slow window drains first; after
	// that, misses must stop.
	k.RunUntil(sim.Time(ms(400)))
	drained := inst.Misses
	k.RunUntil(sim.Time(ms(600)))
	if inst.Misses != drained {
		t.Errorf("misses kept accumulating after slowdown cleared and backlog drained: %d -> %d",
			drained, inst.Misses)
	}
}

// netRig wraps a TSN backbone in the fault interceptor with a counting
// receiver on dst.
type netRig struct {
	k   *sim.Kernel
	nf  *NetFaults
	got int
}

func newNetRig(t *testing.T, cfg NetConfig) *netRig {
	t.Helper()
	k := sim.NewKernel(17)
	inner := tsn.New(k, tsn.DefaultConfig("backbone"))
	r := &netRig{k: k, nf: WrapNetwork(k, inner, cfg)}
	r.nf.Attach("src", func(network.Delivery) {})
	r.nf.Attach("dst", func(network.Delivery) { r.got++ })
	return r
}

func (r *netRig) send(n int, payload func(i int) any) {
	for i := 0; i < n; i++ {
		i := i
		r.k.At(sim.Time(i)*sim.Time(ms(1)), func() {
			var p any
			if payload != nil {
				p = payload(i)
			}
			r.nf.Send(network.Message{ID: 0x10, Src: "src", Dst: "dst",
				Class: network.ClassPriority, Bytes: 64, Payload: p})
		})
	}
}

func TestNetFaultsLoss(t *testing.T) {
	r := newNetRig(t, NetConfig{LossRate: 0.2})
	const sent = 1000
	r.send(sent, nil)
	r.k.Run()
	if r.nf.FramesDropped == 0 {
		t.Fatal("loss injection inert")
	}
	if got := int(r.nf.FramesDropped) + r.got; got != sent {
		t.Errorf("dropped %d + delivered %d != sent %d", r.nf.FramesDropped, r.got, sent)
	}
	// ~200 expected; bound loosely (deterministic per seed anyway).
	if r.nf.FramesDropped < 120 || r.nf.FramesDropped > 280 {
		t.Errorf("dropped = %d, want ~200", r.nf.FramesDropped)
	}
}

// TestNetFaultsCorruptionCaughtByE2E asserts the contract E21 relies on:
// every corrupted protected frame is caught by the E2E check (single-byte
// flips never pass CRC32), so caught + silent == FramesCorrupted with
// silent == 0 when everything is protected.
func TestNetFaultsCorruptionCaughtByE2E(t *testing.T) {
	k := sim.NewKernel(23)
	inner := tsn.New(k, tsn.DefaultConfig("backbone"))
	nf := WrapNetwork(k, inner, NetConfig{CorruptRate: 0.15})
	tx := &soa.E2ESender{DataID: 9}
	rx := &soa.E2EReceiver{DataID: 9}
	nf.Attach("src", func(network.Delivery) {})
	caught := 0
	nf.Attach("dst", func(d network.Delivery) {
		st, _ := rx.Check(d.Msg.Payload.([]byte))
		if st == soa.E2EWrongCRC || st == soa.E2EWrongID {
			caught++
		}
	})
	const sent = 800
	for i := 0; i < sent; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(ms(1)), func() {
			nf.Send(network.Message{ID: 0x20, Src: "src", Dst: "dst",
				Class: network.ClassPriority, Bytes: 32,
				Payload: tx.Protect([]byte{byte(i), byte(i >> 8)})})
		})
	}
	k.Run()
	if nf.FramesCorrupted == 0 {
		t.Fatal("corruption injection inert")
	}
	if int64(caught) != nf.FramesCorrupted {
		t.Errorf("E2E caught %d of %d corrupted frames", caught, nf.FramesCorrupted)
	}
	// Opaque (non-[]byte) payloads cannot be bit-flipped: corruption
	// degrades to a drop and is counted separately.
	r := newNetRig(t, NetConfig{CorruptRate: 0.5})
	r.send(200, func(i int) any { return i })
	r.k.Run()
	if r.nf.CorruptDropped == 0 {
		t.Fatal("opaque-payload corruption not counted")
	}
	if r.nf.FramesCorrupted != 0 {
		t.Errorf("opaque payloads reported as bit-flipped: %d", r.nf.FramesCorrupted)
	}
	if int(r.nf.CorruptDropped)+r.got != 200 {
		t.Errorf("corrupt-dropped %d + delivered %d != 200", r.nf.CorruptDropped, r.got)
	}
}

func TestNetFaultsPartition(t *testing.T) {
	r := newNetRig(t, NetConfig{})
	r.nf.Partition("src")
	r.send(10, nil)
	r.k.At(sim.Time(ms(50)), func() { r.nf.Heal("src") })
	// Second burst after the heal.
	for i := 0; i < 10; i++ {
		i := i
		r.k.At(sim.Time(ms(60+int64(i))), func() {
			r.nf.Send(network.Message{ID: 0x10, Src: "src", Dst: "dst",
				Class: network.ClassPriority, Bytes: 64})
			_ = i
		})
	}
	r.k.Run()
	if r.nf.FramesBlocked != 10 {
		t.Errorf("blocked = %d, want 10", r.nf.FramesBlocked)
	}
	if r.got != 10 {
		t.Errorf("delivered = %d, want 10 (post-heal burst only)", r.got)
	}
	if r.nf.Partitioned("src") {
		t.Error("src still partitioned after Heal")
	}
}

func TestNetFaultsBabble(t *testing.T) {
	r := newNetRig(t, NetConfig{})
	b := r.nf.StartBabble("idiot", 0x7FF, network.ClassBulk, 1400, ms(1))
	r.k.At(sim.Time(ms(100)), func() { b.Stop() })
	r.send(10, nil)
	r.k.RunUntil(sim.Time(ms(300)))
	if r.nf.BabbleFrames < 90 || r.nf.BabbleFrames > 110 {
		t.Errorf("babble frames = %d, want ~100", r.nf.BabbleFrames)
	}
	if r.got != 10 {
		t.Errorf("legit frames delivered = %d, want 10 (babble must not eat them)", r.got)
	}
}
