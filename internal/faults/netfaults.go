package faults

import (
	"fmt"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// NetConfig parameterizes the frame-level fault model of a wrapped
// network.
type NetConfig struct {
	// LossRate drops each frame independently with this probability
	// before it reaches the medium (connector faults, TX buffer drops).
	// The underlying technologies' own error models (e.g. can.Config.
	// FrameLossRate, which occupies the bus) compose with this one.
	LossRate float64
	// CorruptRate flips one payload byte per affected frame when the
	// payload is a []byte — the E2E layer above may or may not catch it.
	// Frames whose payload is not a byte slice cannot be bit-flipped;
	// corruption destroys their framing instead, so they are dropped
	// (and separately counted in CorruptDropped).
	CorruptRate float64
}

// NetFaults wraps a network.Network with a deterministic fault
// interceptor. It implements network.Network itself, so the SOA
// middleware and raw senders use it exactly like the wrapped medium.
//
// Fault decisions are drawn from a private RNG split off the kernel's
// seed at wrap time; draws happen in Send order (total-ordered by the
// kernel), so the fault sequence is reproducible.
type NetFaults struct {
	k     *sim.Kernel
	inner network.Network
	cfg   NetConfig
	rng   *sim.RNG

	partitioned map[string]bool
	phantoms    map[string]bool // babble stations we attached ourselves

	// FramesDropped counts frames destroyed by injected loss.
	FramesDropped int64
	// FramesCorrupted counts delivered frames whose []byte payload was
	// bit-flipped. Every such frame is either caught by E2E protection
	// above or is silent corruption — the engine itself cannot tell.
	FramesCorrupted int64
	// CorruptDropped counts frames whose corruption destroyed non-byte
	// framing (dropped, surfacing as loss to the layer above).
	CorruptDropped int64
	// FramesBlocked counts frames suppressed by an active partition.
	FramesBlocked int64
	// BabbleFrames counts injected babbling-idiot frames.
	BabbleFrames int64
	// Passed counts frames handed to the wrapped medium unmodified.
	Passed int64

	// tap, when non-nil, is notified of frames the fault layer destroys
	// before they reach the wrapped medium (the medium's own tap never
	// sees them). All uses are nil-checked.
	tap network.Tap
}

// WrapNetwork wraps net with the fault model. The interceptor draws its
// randomness from a stream split off the kernel RNG, so wrapping does
// not perturb draws made by other subsystems.
func WrapNetwork(k *sim.Kernel, net network.Network, cfg NetConfig) *NetFaults {
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		cfg.LossRate = 0
	}
	if cfg.CorruptRate < 0 || cfg.CorruptRate >= 1 {
		cfg.CorruptRate = 0
	}
	return &NetFaults{
		k:           k,
		inner:       net,
		cfg:         cfg,
		rng:         k.RNG().Split(),
		partitioned: map[string]bool{},
		phantoms:    map[string]bool{},
	}
}

// Name implements network.Network (transparent to the middleware).
func (f *NetFaults) Name() string { return f.inner.Name() }

// SetTap installs an observability tap for fault-layer frame kills
// (injected loss, corruption-drops, partition blocks); nil disables it.
// The wrapped medium keeps its own tap for frames that pass through.
func (f *NetFaults) SetTap(t network.Tap) { f.tap = t }

// Config returns the active frame-fault configuration.
func (f *NetFaults) Config() NetConfig { return f.cfg }

// SetConfig swaps the frame-fault rates at runtime (campaign windows).
func (f *NetFaults) SetConfig(cfg NetConfig) {
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		cfg.LossRate = 0
	}
	if cfg.CorruptRate < 0 || cfg.CorruptRate >= 1 {
		cfg.CorruptRate = 0
	}
	f.cfg = cfg
}

// Attach implements network.Network: the receiver is wrapped so a
// partitioned station also stops *hearing* traffic (including
// broadcasts), not just sending it.
func (f *NetFaults) Attach(station string, rx network.Receiver) {
	f.inner.Attach(station, func(d network.Delivery) {
		if f.partitioned[station] {
			f.FramesBlocked++
			return
		}
		rx(d)
	})
}

// Send implements network.Network, applying partition, loss and
// corruption in that order before handing the frame to the medium.
func (f *NetFaults) Send(msg network.Message) {
	if f.partitioned[msg.Src] {
		f.FramesBlocked++
		if f.tap != nil {
			f.tap.FrameLost(f.Name(), 0, &msg, "partition", f.k.Now())
		}
		return
	}
	if f.cfg.LossRate > 0 && f.rng.Bool(f.cfg.LossRate) {
		f.FramesDropped++
		f.k.Trace("faults", "net %s: dropped frame id=%#x %s->%s", f.Name(), msg.ID, msg.Src, msg.Dst)
		if f.tap != nil {
			f.tap.FrameLost(f.Name(), 0, &msg, "fault-loss", f.k.Now())
		}
		return
	}
	if f.cfg.CorruptRate > 0 && f.rng.Bool(f.cfg.CorruptRate) {
		if buf, ok := msg.Payload.([]byte); ok && len(buf) > 0 {
			// Flip one byte of a copy; the sender's buffer stays intact.
			mutated := append([]byte(nil), buf...)
			i := f.rng.Intn(len(mutated))
			mutated[i] ^= byte(1 + f.rng.Intn(255))
			msg.Payload = mutated
			f.FramesCorrupted++
			f.k.Trace("faults", "net %s: corrupted byte %d of frame id=%#x", f.Name(), i, msg.ID)
		} else {
			// Framing of an opaque payload destroyed: the receiver
			// discards the frame, i.e. corruption degrades to loss.
			f.CorruptDropped++
			f.k.Trace("faults", "net %s: corruption destroyed frame id=%#x", f.Name(), msg.ID)
			if f.tap != nil {
				f.tap.FrameLost(f.Name(), 0, &msg, "corrupt-drop", f.k.Now())
			}
			return
		}
	}
	f.Passed++
	f.inner.Send(msg)
}

// Partition cuts the stations off the network: frames from or to them
// are silently discarded until Heal. Unknown stations are fine — the
// partition applies when they first appear.
func (f *NetFaults) Partition(stations ...string) {
	for _, s := range stations {
		f.partitioned[s] = true
	}
}

// Heal reconnects previously partitioned stations.
func (f *NetFaults) Heal(stations ...string) {
	for _, s := range stations {
		delete(f.partitioned, s)
	}
}

// Partitioned reports whether a station is currently cut off.
func (f *NetFaults) Partitioned(station string) bool { return f.partitioned[station] }

// Babbler injects periodic load frames from a (usually phantom) station —
// the classic babbling-idiot failure a bus guardian must contain.
type Babbler struct {
	f      *NetFaults
	ticker *sim.Ticker
}

// StartBabble attaches station (with a discarding receiver, unless the
// caller attached it already) and floods the medium with self-addressed
// frames of the given class and size every period. The frames occupy the
// medium — arbitrating, filling queues, consuming gate windows — which
// is exactly the interference a babbling node causes.
func (f *NetFaults) StartBabble(station string, id uint32, class network.Class, bytes int, period sim.Duration) *Babbler {
	if period <= 0 {
		panic(fmt.Sprintf("faults: non-positive babble period %v", period))
	}
	if !f.phantoms[station] {
		f.phantoms[station] = true
		f.Attach(station, func(network.Delivery) {})
	}
	b := &Babbler{f: f}
	b.ticker = f.k.Every(f.k.Now(), period, func() {
		if f.partitioned[station] {
			// Compose order: partition beats babble. A babbler on a
			// partitioned link is contained — its frame never reaches
			// the medium and must NOT be counted as injected (it used
			// to inflate BabbleFrames even though Send blocked it,
			// making the injected/blocked accounting inconsistent).
			f.FramesBlocked++
			if f.tap != nil {
				msg := network.Message{ID: id, Src: station, Dst: station, Class: class, Bytes: bytes}
				f.tap.FrameLost(f.Name(), 0, &msg, "partition", f.k.Now())
			}
			return
		}
		f.BabbleFrames++
		f.Send(network.Message{
			ID: id, Src: station, Dst: station, Class: class, Bytes: bytes,
		})
	})
	return b
}

// Stop halts the babbler.
func (b *Babbler) Stop() { b.ticker.Stop() }
