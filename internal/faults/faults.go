// Package faults is dynaplat's deterministic fault-injection engine.
//
// The paper's central promise is *uncertainty management*: a dynamic
// platform must keep deterministic applications operational under ECU
// loss, network corruption and partial failure (Sections 3.3 and 3.4).
// Exercising that promise needs machinery that produces faults the way a
// vehicle meets them — bursty, concurrent, mid-protocol — while staying
// perfectly reproducible so a failure found at fault-rate 0.05 with seed
// 42 can be replayed bit-for-bit.
//
// The package provides two composable layers:
//
//   - NetFaults (netfaults.go) wraps any network.Network with a frame-
//     level fault model: loss, payload corruption (caught or silent
//     depending on E2E protection above), babbling-idiot load injection
//     and link partition. CAN, FlexRay and TSN all get the same model
//     without any changes to their internals.
//   - Campaign (campaign.go) draws a reproducible schedule of ECU fault
//     activations and repairs (crash, hang, slow-down, reboot) from
//     configurable distributions and drives it through the sim kernel.
//     ECUs are reached through the narrow Target interface, which
//     platform.Node implements.
//
// Determinism guarantee: every random draw comes from a private RNG
// split off the campaign seed, the whole schedule is materialized before
// the first event fires, and frame-level draws happen in Send order —
// which the kernel already totally orders. Two runs with the same seed
// and the same event program produce byte-identical fault sequences.
package faults

import (
	"fmt"

	"dynaplat/internal/sim"
)

// Kind classifies an injected fault.
type Kind int

const (
	// ECUCrash stops every application on the node and drops it off its
	// networks until repair.
	ECUCrash Kind = iota
	// ECUHang makes the node unresponsive — applications stop executing
	// and the node stops answering on its networks — while it keeps
	// holding its resources (memory domains, schedule slots).
	ECUHang
	// ECUSlowdown inflates execution times by a configurable factor
	// (thermal throttling, cache thrashing): the WCET assumption breaks
	// and deadline misses surface through the monitor.
	ECUSlowdown
	// ECUReboot is a crash followed by an automatic restart after the
	// configured reboot delay.
	ECUReboot
	// NetLoss is frame loss injected by NetFaults.
	NetLoss
	// NetCorruption is payload corruption injected by NetFaults.
	NetCorruption
	// NetPartition cuts one or more stations off a network.
	NetPartition
	// NetBabble is babbling-idiot load injection.
	NetBabble
)

func (k Kind) String() string {
	switch k {
	case ECUCrash:
		return "ecu-crash"
	case ECUHang:
		return "ecu-hang"
	case ECUSlowdown:
		return "ecu-slowdown"
	case ECUReboot:
		return "ecu-reboot"
	case NetLoss:
		return "net-loss"
	case NetCorruption:
		return "net-corruption"
	case NetPartition:
		return "net-partition"
	case NetBabble:
		return "net-babble"
	}
	return "unknown"
}

// Silences reports whether the kind silences its target ECU — the node
// stops executing and leaves its networks until repair (crash, hang,
// reboot). Slowdowns degrade but keep the node reachable.
func (k Kind) Silences() bool {
	return k == ECUCrash || k == ECUHang || k == ECUReboot
}

// Phase distinguishes activation from repair in the campaign log.
type Phase int

const (
	// PhaseInject marks a fault activation.
	PhaseInject Phase = iota
	// PhaseRepair marks the corresponding repair.
	PhaseRepair
)

func (p Phase) String() string {
	if p == PhaseRepair {
		return "repair"
	}
	return "inject"
}

// Record is one entry of a campaign's fault log.
type Record struct {
	At     sim.Time
	Kind   Kind
	Phase  Phase
	Target string
	Detail string
}

func (r Record) String() string {
	return fmt.Sprintf("%v %v %v %s %s", r.At, r.Phase, r.Kind, r.Target, r.Detail)
}

// Target is the narrow ECU control surface the campaign drives.
// platform.Node implements it; tests may substitute fakes.
type Target interface {
	// Crash stops every running application and marks the node down. It
	// returns the names of the applications it stopped so Restore can
	// bring exactly those back.
	Crash() []string
	// Restore clears the down state and restarts the named applications.
	Restore(apps []string)
	// SetHung toggles the unresponsive-but-resource-holding state.
	SetHung(hung bool)
	// SetSlowdown sets the execution-time inflation factor (1 = nominal).
	SetSlowdown(factor float64)
}
