package faults

import (
	"testing"

	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

// Satellite: RPC behaviour over a faulty network. The SOA middleware
// rides a TSN backbone wrapped in the fault interceptor, so CallTimeout
// and CallRetry face real injected frame loss — not a mocked provider.

type rpcRig struct {
	k           *sim.Kernel
	mw          *soa.Middleware
	nf          *NetFaults
	srv, cli    *soa.Endpoint
	handlerRuns int
}

func newRPCRig(seed uint64, cfg NetConfig) *rpcRig {
	k := sim.NewKernel(seed)
	nf := WrapNetwork(k, tsn.New(k, tsn.DefaultConfig("backbone")), cfg)
	mw := soa.New(k, nil)
	mw.AddNetwork(nf, 1400)
	r := &rpcRig{k: k, mw: mw, nf: nf}
	r.srv = mw.Endpoint("server", "ecu1")
	r.cli = mw.Endpoint("client", "ecu2")
	r.srv.Offer("diag.cfg", soa.OfferOpts{Network: "backbone",
		Handler: func(any) (int, any, sim.Duration) {
			r.handlerRuns++
			return 16, "ok", 100 * sim.Microsecond
		}})
	return r
}

// TestCallTimeoutUnderFrameLoss: without retries, a lost request or
// response surfaces as a timeout that fires exactly at the configured
// bound — never earlier, never hangs.
func TestCallTimeoutUnderFrameLoss(t *testing.T) {
	r := newRPCRig(31, NetConfig{LossRate: 0.3})
	const calls = 200
	const bound = 20 * sim.Millisecond
	answered, timedOut := 0, 0
	for i := 0; i < calls; i++ {
		i := i
		issue := sim.Time(i) * sim.Time(sim.Millisecond) * 50
		r.k.At(issue, func() {
			err := r.cli.CallTimeout("diag.cfg", 64, i, bound,
				func(soa.Event) { answered++ },
				func() {
					timedOut++
					if at := r.k.Now().Sub(issue); at != bound {
						t.Errorf("call %d timed out after %v, want %v", i, at, bound)
					}
				})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		})
	}
	r.k.Run()
	if timedOut == 0 {
		t.Fatal("30% loss produced no timeouts")
	}
	if answered+timedOut != calls {
		t.Errorf("answered %d + timedOut %d != %d (a call neither settled nor timed out)",
			answered, timedOut, calls)
	}
	if r.mw.RPCTimeouts != int64(timedOut) {
		t.Errorf("RPCTimeouts = %d, observed %d", r.mw.RPCTimeouts, timedOut)
	}
	// Each timeout means a frame was lost on the way out or back.
	if r.nf.FramesDropped == 0 {
		t.Error("loss injection inert")
	}
}

// TestCallRetryRecoversWithoutDuplicates: with the retry policy on the
// same lossy channel, nearly all calls recover — and session-keyed
// dedupe keeps the handler at most-once per logical call even when the
// request was delivered and only the response was lost.
func TestCallRetryRecoversWithoutDuplicates(t *testing.T) {
	r := newRPCRig(31, NetConfig{LossRate: 0.3})
	const calls = 200
	pol := soa.DefaultRetryPolicy()
	pol.MaxAttempts = 6
	done, failed := 0, 0
	for i := 0; i < calls; i++ {
		i := i
		r.k.At(sim.Time(i)*sim.Time(sim.Millisecond)*50, func() {
			err := r.cli.CallRetry("diag.cfg", 64, i, 20*sim.Millisecond, pol,
				func(soa.Event) { done++ }, func() { failed++ })
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		})
	}
	r.k.Run()
	if done+failed != calls {
		t.Fatalf("done %d + failed %d != %d", done, failed, calls)
	}
	if r.mw.RetryRecovered == 0 {
		t.Error("no call recovered via retry under 30% loss")
	}
	// p(fail) ~ 0.51^6 per call: expect ~0-2 exhausted, certainly < 10%.
	if failed > calls/10 {
		t.Errorf("retries exhausted on %d/%d calls", failed, calls)
	}
	if done < calls*9/10 {
		t.Errorf("only %d/%d calls succeeded with retries", done, calls)
	}
	// Idempotency: the handler never runs twice for one logical call.
	if r.handlerRuns > calls {
		t.Errorf("handler ran %d times for %d logical calls (duplicate execution)",
			r.handlerRuns, calls)
	}
	// Under 30% loss some retransmitted requests must have reached a
	// provider that had already served the session.
	if r.mw.DuplicatesSuppressed == 0 {
		t.Error("no duplicate suppressed — dedupe path unexercised")
	}
	if int64(r.handlerRuns)+r.mw.DuplicatesSuppressed < int64(done) {
		t.Errorf("handler runs %d + suppressed %d < successes %d",
			r.handlerRuns, r.mw.DuplicatesSuppressed, done)
	}
}

// TestRetryBudgetBoundsCall: a budget shorter than the backoff ladder
// caps the whole call even when attempts remain.
func TestRetryBudgetBoundsCall(t *testing.T) {
	r := newRPCRig(5, NetConfig{LossRate: 0.999999}) // clamps to 0... use partition instead
	r.nf.SetConfig(NetConfig{})
	r.nf.Partition("ecu1") // provider unreachable: every attempt times out
	pol := soa.DefaultRetryPolicy()
	pol.MaxAttempts = 100
	pol.Budget = 50 * sim.Millisecond
	start := r.k.Now()
	var failedAt sim.Time
	err := r.cli.CallRetry("diag.cfg", 64, nil, 10*sim.Millisecond, pol,
		func(soa.Event) { t.Error("call to partitioned provider succeeded") },
		func() { failedAt = r.k.Now() })
	if err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if failedAt == 0 {
		t.Fatal("budgeted call never settled")
	}
	if got := failedAt.Sub(start); got > pol.Budget {
		t.Errorf("call settled after %v, budget %v", got, pol.Budget)
	}
	if r.mw.RetryExhausted != 1 {
		t.Errorf("RetryExhausted = %d", r.mw.RetryExhausted)
	}
}
