package faults

import (
	"fmt"
	"sort"

	"dynaplat/internal/sim"
)

// Weights sets the relative probability of each ECU fault kind drawn by
// a campaign. Zero-valued weights exclude the kind; an all-zero Weights
// defaults to crash-only.
type Weights struct {
	Crash, Hang, Slowdown, Reboot float64
}

func (w Weights) total() float64 { return w.Crash + w.Hang + w.Slowdown + w.Reboot }

// DefaultWeights returns the canonical mix: mostly hard crashes, some
// hangs and reboots, occasional thermal slow-downs.
func DefaultWeights() Weights {
	return Weights{Crash: 0.5, Hang: 0.2, Slowdown: 0.1, Reboot: 0.2}
}

// Spec configures a fault campaign.
type Spec struct {
	// Seed drives every random draw of the campaign (schedule times,
	// target selection, fault kinds, repair durations).
	Seed uint64
	// Horizon bounds the activation schedule: no fault activates after
	// it (repairs may complete later).
	Horizon sim.Duration
	// MTBF is the mean time between fault activations across the whole
	// target fleet (exponential inter-arrival). <= 0 disables ECU faults.
	MTBF sim.Duration
	// RepairMean is the mean fault duration before repair (exponential).
	// <= 0 makes faults permanent (except reboots).
	RepairMean sim.Duration
	// RebootDelay is the fixed outage of an ECUReboot fault.
	RebootDelay sim.Duration
	// Weights mixes the ECU fault kinds.
	Weights Weights
	// SlowdownFactor is the execution-time inflation of ECUSlowdown
	// faults (default 4).
	SlowdownFactor float64
}

// DefaultSpec returns a moderate campaign: one fault every 2 s of
// virtual time over a 10 s horizon, repaired after 400 ms on average.
func DefaultSpec(seed uint64) Spec {
	return Spec{
		Seed:           seed,
		Horizon:        10 * sim.Second,
		MTBF:           2 * sim.Second,
		RepairMean:     400 * sim.Millisecond,
		RebootDelay:    250 * sim.Millisecond,
		Weights:        DefaultWeights(),
		SlowdownFactor: 4,
	}
}

// Injection is one planned fault activation.
type Injection struct {
	At       sim.Time
	Kind     Kind
	Target   string
	RepairAt sim.Time // zero = permanent
}

// Campaign orchestrates a reproducible fault schedule over registered
// targets and wrapped networks. Build it, register targets/networks,
// then Start before running the kernel.
type Campaign struct {
	k       *sim.Kernel
	spec    Spec
	rng     *sim.RNG
	names   []string
	targets map[string]Target
	nets    []*NetFaults
	started bool

	busy map[string]bool // target currently faulted

	// OnInject, when non-nil, is invoked immediately after an activation
	// is applied (the fault is already in effect and recorded). OnRepair
	// is invoked immediately after an activation's repair completes (the
	// target is healed and the repair recorded). Both fire at exact
	// virtual instants inside the kernel, so recovery-time measurements
	// (detect→steady, E22) and reconfig tests can anchor on them without
	// scraping traces. The hooks observe; they must not re-enter the
	// campaign.
	OnInject func(Injection)
	OnRepair func(Injection)

	// Schedule is the materialized activation plan (valid after Start).
	Schedule []Injection
	// Log records applied activations and repairs in fire order.
	Log []Record
	// Skipped counts drawn activations discarded because their target
	// was still faulted.
	Skipped int
}

// NewCampaign creates a campaign on the kernel. The campaign's RNG is
// derived from spec.Seed only — it does not consume kernel RNG draws, so
// adding a campaign never shifts the random streams of other subsystems.
func NewCampaign(k *sim.Kernel, spec Spec) *Campaign {
	if spec.SlowdownFactor <= 1 {
		spec.SlowdownFactor = 4
	}
	if spec.RebootDelay <= 0 {
		spec.RebootDelay = 250 * sim.Millisecond
	}
	if spec.Weights.total() <= 0 {
		spec.Weights = Weights{Crash: 1}
	}
	return &Campaign{
		k:       k,
		spec:    spec,
		rng:     sim.NewRNG(spec.Seed),
		targets: map[string]Target{},
		busy:    map[string]bool{},
	}
}

// AddTarget registers a faultable ECU under its name.
func (c *Campaign) AddTarget(name string, t Target) {
	if c.started {
		panic("faults: AddTarget after Start")
	}
	if _, dup := c.targets[name]; dup {
		panic(fmt.Sprintf("faults: duplicate target %q", name))
	}
	c.targets[name] = t
	c.names = append(c.names, name)
	sort.Strings(c.names)
}

// AddNetwork registers a wrapped network; ECU faults that silence a node
// (crash, hang, reboot) partition the node's station on every registered
// network for the fault's duration — a dead ECU leaves the wire.
func (c *Campaign) AddNetwork(nf *NetFaults) {
	if c.started {
		panic("faults: AddNetwork after Start")
	}
	c.nets = append(c.nets, nf)
}

// HookECULifecycle chains an ECU up/down observer onto the campaign's
// OnInject/OnRepair hooks: onDown fires at the exact instant a
// silencing fault (Kind.Silences) is applied to an ECU, onUp at its
// repair. Previously installed hooks keep firing first, so routing
// layers (the soa mesh's eviction/re-admission) and measurement hooks
// compose on one campaign.
func (c *Campaign) HookECULifecycle(onDown, onUp func(ecu string)) {
	prevInject, prevRepair := c.OnInject, c.OnRepair
	c.OnInject = func(inj Injection) {
		if prevInject != nil {
			prevInject(inj)
		}
		if inj.Kind.Silences() && onDown != nil {
			onDown(inj.Target)
		}
	}
	c.OnRepair = func(inj Injection) {
		if prevRepair != nil {
			prevRepair(inj)
		}
		if inj.Kind.Silences() && onUp != nil {
			onUp(inj.Target)
		}
	}
}

// Start materializes the activation schedule from the seed and arms a
// kernel event per activation/repair. Calling Start twice panics.
func (c *Campaign) Start() {
	if c.started {
		panic("faults: campaign started twice")
	}
	c.started = true
	if c.spec.MTBF <= 0 || len(c.names) == 0 || c.spec.Horizon <= 0 {
		return
	}
	// Draw the whole schedule up front: the RNG consumption order is a
	// pure function of the spec, independent of anything the simulation
	// does while running.
	repairAt := map[string]sim.Time{}
	t := c.k.Now()
	for {
		t = t.Add(sim.Duration(c.rng.Exponential(float64(c.spec.MTBF))))
		if t.Sub(c.k.Now()) > c.spec.Horizon {
			break
		}
		target := c.names[c.rng.Intn(len(c.names))]
		kind := c.drawKind()
		var until sim.Time
		switch {
		case kind == ECUReboot:
			until = t.Add(c.spec.RebootDelay)
		case c.spec.RepairMean > 0:
			until = t.Add(sim.Duration(c.rng.Exponential(float64(c.spec.RepairMean))))
		}
		if busyUntil, ok := repairAt[target]; ok && (busyUntil == 0 || t < busyUntil) {
			c.Skipped++ // target still faulted at this instant
			continue
		}
		repairAt[target] = until
		c.Schedule = append(c.Schedule, Injection{At: t, Kind: kind, Target: target, RepairAt: until})
	}
	for _, inj := range c.Schedule {
		inj := inj
		c.k.At(inj.At, func() { c.apply(inj) })
	}
}

// drawKind picks an ECU fault kind by weight.
func (c *Campaign) drawKind() Kind {
	w := c.spec.Weights
	x := c.rng.Float64() * w.total()
	switch {
	case x < w.Crash:
		return ECUCrash
	case x < w.Crash+w.Hang:
		return ECUHang
	case x < w.Crash+w.Hang+w.Slowdown:
		return ECUSlowdown
	default:
		return ECUReboot
	}
}

// apply fires one injection and arms its repair.
func (c *Campaign) apply(inj Injection) {
	tgt := c.targets[inj.Target]
	c.busy[inj.Target] = true
	detail := ""
	var undo func()
	switch inj.Kind {
	case ECUCrash, ECUReboot:
		stopped := tgt.Crash()
		c.partition(inj.Target)
		detail = fmt.Sprintf("stopped %d apps", len(stopped))
		undo = func() {
			c.heal(inj.Target)
			tgt.Restore(stopped)
		}
	case ECUHang:
		tgt.SetHung(true)
		c.partition(inj.Target)
		undo = func() {
			c.heal(inj.Target)
			tgt.SetHung(false)
		}
	case ECUSlowdown:
		tgt.SetSlowdown(c.spec.SlowdownFactor)
		detail = fmt.Sprintf("factor %.1f", c.spec.SlowdownFactor)
		undo = func() { tgt.SetSlowdown(1) }
	}
	c.record(Record{At: c.k.Now(), Kind: inj.Kind, Phase: PhaseInject, Target: inj.Target, Detail: detail})
	if c.OnInject != nil {
		c.OnInject(inj)
	}
	if inj.RepairAt > 0 && undo != nil {
		c.k.At(inj.RepairAt, func() {
			undo()
			c.busy[inj.Target] = false
			c.record(Record{At: c.k.Now(), Kind: inj.Kind, Phase: PhaseRepair, Target: inj.Target})
			if c.OnRepair != nil {
				c.OnRepair(inj)
			}
		})
	}
}

func (c *Campaign) partition(station string) {
	for _, nf := range c.nets {
		nf.Partition(station)
	}
}

func (c *Campaign) heal(station string) {
	for _, nf := range c.nets {
		nf.Heal(station)
	}
}

func (c *Campaign) record(r Record) {
	c.Log = append(c.Log, r)
	c.k.Trace("faults", "%s", r.String())
}

// Injections counts scheduled activations.
func (c *Campaign) Injections() int { return len(c.Schedule) }

// QuiesceAt returns the instant by which every scheduled activation and
// armed repair has fired (zero when the schedule is empty). Valid after
// Start; quiesce audits (internal/fuzz) run the kernel past this point
// before asserting that no campaign events remain live.
func (c *Campaign) QuiesceAt() sim.Time {
	var q sim.Time
	for _, inj := range c.Schedule {
		if inj.At > q {
			q = inj.At
		}
		if inj.RepairAt > q {
			q = inj.RepairAt
		}
	}
	return q
}

// ActiveFaults returns how many targets are currently faulted.
func (c *Campaign) ActiveFaults() int {
	n := 0
	for _, b := range c.busy {
		if b {
			n++
		}
	}
	return n
}
