package tsn

import (
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func TestCBSConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, DefaultConfig("x"))
	if err := n.EnableCBS(CBSConfig{Queue: -1, IdleSlopeBps: 1000}); err == nil {
		t.Error("negative queue accepted")
	}
	if err := n.EnableCBS(CBSConfig{Queue: 8, IdleSlopeBps: 1000}); err == nil {
		t.Error("out-of-range queue accepted")
	}
	if err := n.EnableCBS(CBSConfig{Queue: 5, IdleSlopeBps: 0}); err == nil {
		t.Error("zero slope accepted")
	}
	if err := n.EnableCBS(CBSConfig{Queue: 5, IdleSlopeBps: 100_000_000}); err == nil {
		t.Error("slope ≥ line rate accepted")
	}
	if err := n.EnableCBS(CBSConfig{Queue: 5, IdleSlopeBps: 10_000_000}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// throughput measures delivered priority-class bits per second with and
// without shaping under saturation.
func cbsThroughput(t *testing.T, idleSlope int64) float64 {
	t.Helper()
	k := sim.NewKernel(2)
	n := New(k, DefaultConfig("av"))
	if idleSlope > 0 {
		if err := n.EnableCBS(CBSConfig{Queue: QueuePriority, IdleSlopeBps: idleSlope}); err != nil {
			t.Fatal(err)
		}
	}
	n.Attach("cam", func(network.Delivery) {})
	var bits int64
	n.Attach("sink", func(d network.Delivery) {
		if d.Msg.Class == network.ClassPriority {
			bits += int64(d.Msg.Bytes) * 8
		}
	})
	// Saturating AV source: 1400B frames as fast as possible.
	k.Every(0, 100*sim.Microsecond, func() {
		n.Send(network.Message{Class: network.ClassPriority, Src: "cam",
			Dst: "sink", Bytes: 1400})
	})
	k.RunUntil(sim.Time(sim.Second))
	return float64(bits)
}

func TestCBSThrottlesToIdleSlope(t *testing.T) {
	unshapedBps := cbsThroughput(t, 0)
	shapedBps := cbsThroughput(t, 20_000_000)
	if unshapedBps < 80e6 {
		t.Fatalf("unshaped throughput %.0f bps implausibly low", unshapedBps)
	}
	// The shaper reserves 20 Mbps of *wire* bandwidth (payload+overhead),
	// so payload goodput lands a bit below the slope.
	if shapedBps > 21e6 {
		t.Errorf("shaped throughput %.0f bps exceeds 20Mbps reservation", shapedBps)
	}
	if shapedBps < 15e6 {
		t.Errorf("shaped throughput %.0f bps far below reservation", shapedBps)
	}
}

func TestCBSLeavesBandwidthForBulk(t *testing.T) {
	// With the AV class shaped to 20 Mbps, a saturating bulk source on a
	// lower queue must get most of the rest — without shaping, strict
	// priority starves it.
	run := func(shape bool) (bulkBits int64) {
		k := sim.NewKernel(3)
		n := New(k, DefaultConfig("av"))
		if shape {
			n.EnableCBS(CBSConfig{Queue: QueuePriority, IdleSlopeBps: 20_000_000})
		}
		n.Attach("cam", func(network.Delivery) {})
		n.Attach("data", func(network.Delivery) {})
		n.Attach("sink", func(d network.Delivery) {
			if d.Msg.Class == network.ClassBulk {
				bulkBits += int64(d.Msg.Bytes) * 8
			}
		})
		k.Every(0, 100*sim.Microsecond, func() {
			n.Send(network.Message{Class: network.ClassPriority, Src: "cam",
				Dst: "sink", Bytes: 1400})
			n.Send(network.Message{Class: network.ClassBulk, Src: "data",
				Dst: "sink", Bytes: 1400})
		})
		k.RunUntil(sim.Time(sim.Second))
		return bulkBits
	}
	starved := run(false)
	shaped := run(true)
	if shaped < 4*starved {
		t.Errorf("bulk with shaping %.1fMbps !≫ without %.1fMbps",
			float64(shaped)/1e6, float64(starved)/1e6)
	}
	if shaped < 50e6 {
		t.Errorf("bulk only got %.1f Mbps beside a 20Mbps reservation",
			float64(shaped)/1e6)
	}
}

func TestCBSControlClassUnaffected(t *testing.T) {
	// Shaping the AV queue must not delay the control class above it.
	k := sim.NewKernel(4)
	n := New(k, DefaultConfig("av"))
	n.EnableCBS(CBSConfig{Queue: QueuePriority, IdleSlopeBps: 20_000_000})
	n.Attach("cam", func(network.Delivery) {})
	n.Attach("ecu", func(network.Delivery) {})
	n.Attach("sink", func(network.Delivery) {})
	k.Every(0, 100*sim.Microsecond, func() {
		n.Send(network.Message{Class: network.ClassPriority, Src: "cam",
			Dst: "sink", Bytes: 1400})
	})
	k.Every(sim.Time(50*sim.Microsecond), 10*sim.Millisecond, func() {
		n.Send(network.Message{Class: network.ClassControl, Src: "ecu",
			Dst: "sink", Bytes: 64})
	})
	k.RunUntil(sim.Time(sim.Second))
	p100 := n.Latency(network.ClassControl).PercentileDuration(100)
	// Bounded by one MTU of blocking plus its own wire time.
	if p100 > 300*sim.Microsecond {
		t.Errorf("control p100 = %v beside shaped AV", p100)
	}
}
