// Package tsn simulates switched Ethernet with Time-Sensitive Networking
// shaping: a star-topology switch whose egress ports run 802.1Qbv
// time-aware gates over eight strict-priority queues, with guard-banding
// (a frame only starts if it completes before its gate closes).
//
// This is the upcoming mixed-criticality Ethernet scheme the paper's
// Section 5.3 describes: deterministic traffic rides time-triggered gate
// windows; non-deterministic traffic uses priority queues in the remaining
// windows and cannot interfere.
package tsn

import (
	"fmt"
	"sort"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// NumQueues is the 802.1Q priority-queue count per egress port.
const NumQueues = 8

// Queue assignment for the technology-independent traffic classes.
const (
	QueueControl  = 7
	QueuePriority = 5
	QueueBulk     = 1
)

// QueueFor maps a traffic class to its priority queue.
func QueueFor(c network.Class) int {
	switch c {
	case network.ClassControl:
		return QueueControl
	case network.ClassPriority:
		return QueuePriority
	default:
		return QueueBulk
	}
}

// GateEntry is one interval of a gate control list: the set of queues
// whose gates are open (bitmask, bit q = queue q) for Dur.
type GateEntry struct {
	OpenMask uint8
	Dur      sim.Duration
}

// AllOpen is the mask with every gate open.
const AllOpen uint8 = 0xFF

// Config parameterizes a TSN network.
type Config struct {
	Name string
	// BitsPerSecond is the line rate of every link (default 100 Mbps).
	BitsPerSecond int64
	// MaxFrameBytes is the MTU payload; larger sends panic (the SOA
	// layer segments). Default 1500.
	MaxFrameBytes int
	// FrameOverheadBytes models Ethernet header+FCS+IFG (default 42).
	FrameOverheadBytes int
	// ProcDelay is the switch processing/propagation delay per hop.
	ProcDelay sim.Duration
	// GCL is the cyclic gate control list applied at every egress port.
	// Empty means all gates always open (plain strict priority).
	GCL []GateEntry
}

// DefaultConfig returns a 100 Mbps network with no time gates.
func DefaultConfig(name string) Config {
	return Config{
		Name:               name,
		BitsPerSecond:      100_000_000,
		MaxFrameBytes:      1500,
		FrameOverheadBytes: 42,
		ProcDelay:          2 * sim.Microsecond,
	}
}

// ControlGCL builds a canonical two-window GCL: a window of ctrlWin where
// only the control gate is open, then a window of restWin where every
// other gate is open. Ablation A4 sweeps these.
func ControlGCL(ctrlWin, restWin sim.Duration) []GateEntry {
	return []GateEntry{
		{OpenMask: 1 << QueueControl, Dur: ctrlWin},
		{OpenMask: AllOpen &^ (1 << QueueControl), Dur: restWin},
	}
}

// Network is a simulated single-switch TSN network.
type Network struct {
	cfg Config
	k   *sim.Kernel
	rx  map[string]network.Receiver
	// uplinks[station] serializes station→switch; egress[station]
	// serializes switch→station under the GCL.
	uplinks map[string]*link
	egress  map[string]*link

	// Stats
	Forwarded int64
	// LatencyByClass samples end-to-end latency per traffic class.
	latency map[network.Class]*sim.Sample

	// cbsTemplates are applied to egress ports created after EnableCBS.
	cbsTemplates []CBSConfig

	tap network.Tap
}

// New creates a TSN network on the kernel.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.BitsPerSecond <= 0 {
		cfg.BitsPerSecond = 100_000_000
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 1500
	}
	if cfg.FrameOverheadBytes < 0 {
		cfg.FrameOverheadBytes = 0
	}
	var cycle sim.Duration
	for _, e := range cfg.GCL {
		if e.Dur <= 0 {
			panic("tsn: GCL entry with non-positive duration")
		}
		cycle += e.Dur
	}
	return &Network{
		cfg:     cfg,
		k:       k,
		rx:      map[string]network.Receiver{},
		uplinks: map[string]*link{},
		egress:  map[string]*link{},
		latency: map[network.Class]*sim.Sample{},
	}
}

// Name implements network.Network.
func (n *Network) Name() string { return n.cfg.Name }

// SetTap installs an observability tap; nil disables it. The untapped
// path costs one nil check per frame event.
func (n *Network) SetTap(t network.Tap) { n.tap = t }

// Attach implements network.Network.
func (n *Network) Attach(station string, rx network.Receiver) {
	n.rx[station] = rx
	// Uplinks are ungated FIFO; egress ports run the GCL and shapers.
	n.uplinks[station] = newLink(n, nil)
	eg := newLink(n, n.cfg.GCL)
	for _, cfg := range n.cbsTemplates {
		eg.enableCBS(cfg)
	}
	n.egress[station] = eg
}

// Send implements network.Network.
func (n *Network) Send(msg network.Message) {
	up, ok := n.uplinks[msg.Src]
	if !ok {
		panic(fmt.Sprintf("tsn: source %q not attached to %s", msg.Src, n.cfg.Name))
	}
	if msg.Bytes > n.cfg.MaxFrameBytes {
		panic(fmt.Sprintf("tsn: frame %dB exceeds MTU %dB", msg.Bytes, n.cfg.MaxFrameBytes))
	}
	if msg.Bytes < 0 {
		panic("tsn: negative payload size")
	}
	f := &frame{msg: msg, enqueued: n.k.Now()}
	if n.tap != nil {
		f.span = n.tap.FrameEnqueued(n.cfg.Name, &f.msg, f.enqueued)
	}
	up.enqueue(f, func() {
		// Arrived at switch: fan out to egress port(s).
		n.k.After(n.cfg.ProcDelay, func() { n.forward(f) })
	})
}

func (n *Network) forward(f *frame) {
	if f.msg.Dst != "" {
		if eg, ok := n.egress[f.msg.Dst]; ok {
			g := *f // copy so per-port completion doesn't alias
			eg.enqueue(&g, func() { n.deliver(&g) })
		} else if n.tap != nil {
			n.tap.FrameLost(n.cfg.Name, f.span, &f.msg, "no-receiver", n.k.Now())
		}
		return
	}
	names := make([]string, 0, len(n.egress))
	for s := range n.egress {
		if s != f.msg.Src {
			names = append(names, s)
		}
	}
	sort.Strings(names)
	for _, s := range names {
		g := *f
		eg := n.egress[s]
		dst := s
		eg.enqueue(&g, func() {
			g.msg.Dst = dst
			n.deliver(&g)
		})
	}
}

func (n *Network) deliver(f *frame) {
	n.Forwarded++
	d := network.Delivery{Msg: f.msg, Enqueued: f.enqueued, Delivered: n.k.Now()}
	s := n.latency[f.msg.Class]
	if s == nil {
		s = &sim.Sample{}
		n.latency[f.msg.Class] = s
	}
	s.AddDuration(d.Latency())
	if rx, ok := n.rx[f.msg.Dst]; ok && f.msg.Dst != "" {
		if n.tap != nil {
			n.tap.FrameDelivered(n.cfg.Name, f.span, &f.msg, f.msg.Dst, n.k.Now())
		}
		rx(d)
	} else if n.tap != nil {
		n.tap.FrameLost(n.cfg.Name, f.span, &f.msg, "no-receiver", n.k.Now())
	}
}

// Latency returns the recorded latency sample for a class (may be empty).
func (n *Network) Latency(c network.Class) *sim.Sample {
	if s := n.latency[c]; s != nil {
		return s
	}
	return &sim.Sample{}
}

// txTime returns wire time for a payload including Ethernet overhead.
func (n *Network) txTime(bytes int) sim.Duration {
	return network.TxTime(bytes+n.cfg.FrameOverheadBytes, n.cfg.BitsPerSecond)
}

type frame struct {
	msg      network.Message
	enqueued sim.Time
	span     uint64 // observability span handle; copies inherit it
	done     func()
}

// link is one serialized output (uplink or gated egress port).
type link struct {
	n      *Network
	gcl    []GateEntry
	cycle  sim.Duration
	queues [NumQueues][]*frame
	busy   bool
	retry  sim.EventRef
	// cbs holds per-queue credit-based shaper state (see cbs.go).
	cbs map[int]*cbsState
}

func newLink(n *Network, gcl []GateEntry) *link {
	l := &link{n: n, gcl: gcl}
	for _, e := range gcl {
		l.cycle += e.Dur
	}
	return l
}

func (l *link) enqueue(f *frame, done func()) {
	f.done = done
	q := QueueFor(f.msg.Class)
	l.queues[q] = append(l.queues[q], f)
	l.trySend()
}

// gateState reports whether queue q's gate is open at t and when the
// state next changes (zero Time means never — the state is constant).
func (l *link) gateState(q int, t sim.Time) (open bool, next sim.Time) {
	if len(l.gcl) == 0 {
		return true, 0
	}
	off := sim.Duration(t) % l.cycle
	// Locate the entry containing off.
	var acc sim.Duration
	idx := 0
	for i, e := range l.gcl {
		if off < acc+e.Dur {
			idx = i
			break
		}
		acc += e.Dur
	}
	bit := uint8(1) << q
	cur := l.gcl[idx].OpenMask&bit != 0
	// Walk forward to find the next flip, at most one full cycle.
	boundary := acc + l.gcl[idx].Dur // offset of end of current entry
	for i := 1; i <= len(l.gcl); i++ {
		e := l.gcl[(idx+i)%len(l.gcl)]
		if (e.OpenMask&bit != 0) != cur {
			return cur, t.Add(boundary - off)
		}
		boundary += e.Dur
	}
	return cur, 0 // constant for this queue
}

// trySend starts the best eligible frame, or arms a retry at the next
// gate change if something is pending but blocked.
func (l *link) trySend() {
	if l.busy {
		return
	}
	now := l.n.k.Now()
	var wake sim.Time
	for q := NumQueues - 1; q >= 0; q-- {
		if len(l.queues[q]) == 0 {
			continue
		}
		open, next := l.gateState(q, now)
		if !open {
			if next != 0 && (wake == 0 || next < wake) {
				wake = next
			}
			continue
		}
		// Credit-based shaping: a shaped queue in credit deficit waits.
		eligible, cbsWake := l.cbsEligible(q, now)
		if !eligible {
			if cbsWake != 0 && (wake == 0 || cbsWake < wake) {
				wake = cbsWake
			}
			continue
		}
		f := l.queues[q][0]
		tx := l.n.txTime(f.msg.Bytes)
		// Guard band: the frame must complete before the gate closes.
		if next != 0 && now.Add(tx) > next {
			if wake == 0 || next < wake {
				wake = next
			}
			continue
		}
		l.queues[q] = l.queues[q][1:]
		l.cbsCharge(q, tx, l.n.cfg.BitsPerSecond)
		if l.n.tap != nil {
			l.n.tap.FrameTxStart(l.n.cfg.Name, f.span, now)
		}
		l.busy = true
		l.n.k.After(tx, func() {
			l.busy = false
			f.done()
			l.trySend()
		})
		return
	}
	if wake != 0 {
		if l.retry.Pending() {
			l.retry.Cancel()
		}
		ref := l.n.k.AtPriority(wake, sim.PriorityClock, func() { l.trySend() })
		l.retry = ref
	}
}
