package tsn

// Ablation A4 (DESIGN.md §4): the control-gate window length trades
// worst-case control latency (longer wait for a short window's next
// occurrence) against bulk throughput (time stolen from the open window).
// The reported metrics expose both sides.

import (
	"fmt"
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func BenchmarkA4GateWindow(b *testing.B) {
	cycle := sim.Millisecond
	for _, ctrlWin := range []sim.Duration{
		50 * sim.Microsecond, 100 * sim.Microsecond, 250 * sim.Microsecond,
	} {
		ctrlWin := ctrlWin
		b.Run(fmt.Sprintf("ctrl=%v", ctrlWin), func(b *testing.B) {
			var ctrlP100 sim.Duration
			var bulkDone int64
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel(5)
				cfg := DefaultConfig("tt")
				cfg.GCL = ControlGCL(ctrlWin, cycle-ctrlWin)
				n := New(k, cfg)
				n.Attach("da", func(network.Delivery) {})
				n.Attach("nda", func(network.Delivery) {})
				done := int64(0)
				n.Attach("sink", func(d network.Delivery) {
					if d.Msg.Class == network.ClassBulk {
						done++
					}
				})
				k.Every(0, sim.Millisecond, func() {
					for j := 0; j < 8; j++ {
						n.Send(network.Message{Class: network.ClassBulk,
							Src: "nda", Dst: "sink", Bytes: 1500})
					}
				})
				k.Every(sim.Time(333*sim.Microsecond), 10*sim.Millisecond, func() {
					n.Send(network.Message{Class: network.ClassControl,
						Src: "da", Dst: "sink", Bytes: 16})
				})
				k.RunUntil(sim.Time(sim.Second))
				ctrlP100 = n.Latency(network.ClassControl).PercentileDuration(100)
				bulkDone = done
			}
			b.ReportMetric(float64(ctrlP100), "ctrl-p100-ns")
			b.ReportMetric(float64(bulkDone), "bulk-frames")
		})
	}
}
